(* MULT8 — scaling the paper's evaluation circuit (extension).

   The paper evaluates one 4x4 multiplier; here the same protocol runs
   on an 8x8 carry-save array (~4x the gates, double the depth) to show
   the Table 1 shape is not an artifact of circuit size.  Vectors every
   10 ns (the deeper array needs the headroom), six alternating
   0x00/0xFF vectors. *)

open Common

let period8 = 10_000.
let horizon8 = 60_000.

let ops =
  [
    { V.op_a = 0x00; op_b = 0x00 };
    { V.op_a = 0xFF; op_b = 0xFF };
    { V.op_a = 0x00; op_b = 0x00 };
    { V.op_a = 0xFF; op_b = 0xFF };
    { V.op_a = 0x00; op_b = 0x00 };
    { V.op_a = 0xFF; op_b = 0xFF };
  ]

let run () =
  section "MULT8 -- the paper's protocol on an 8x8 multiplier (extension)";
  let m = G.array_multiplier ~m:8 ~n:8 () in
  let c = m.G.mult_circuit in
  Format.printf "%a@." N.pp_summary c;
  let drives =
    V.multiplier_drives ~slope:input_slope ~period:period8 ~a_bits:m.G.ma_bits
      ~b_bits:m.G.mb_bits ops
  in
  let rd = Iddm.run (Iddm.config DL.tech) c ~drives in
  let rc = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) c ~drives in
  let sd = rd.Iddm.stats and sc = rc.Iddm.stats in
  let over = pct_more ~base:sd.Stats.events_processed sc.Stats.events_processed in
  Printf.printf "events: DDM %d (filtered %d) vs CDM %d (filtered %d): +%.0f%%\n"
    sd.Stats.events_processed sd.Stats.events_filtered sc.Stats.events_processed
    sc.Stats.events_filtered over;
  (* settled products at each vector boundary *)
  let products_ok (r : Iddm.result) =
    List.for_all
      (fun (k, op) ->
        let t = (float_of_int (k + 1) *. period8) -. 1. in
        let p =
          List.fold_left
            (fun acc (i, sid) ->
              if D.level_at r.Iddm.waveforms.(sid) ~vt:vdd2 t then acc lor (1 lsl i) else acc)
            0
            (List.mapi (fun i s -> (i, s)) m.G.product_bits)
        in
        p = V.expected_product op)
      (List.mapi (fun k op -> (k, op)) ops)
  in
  let ok_d = products_ok rd and ok_c = products_ok rc in
  Printf.printf "settled products: DDM %s, CDM %s\n"
    (if ok_d then "all correct" else "WRONG")
    (if ok_c then "all correct" else "WRONG");
  ignore horizon8;
  [
    Experiment.make ~exp_id:"MULT8" ~title:"8x8 multiplier scaling (extension)"
      [
        Experiment.observation ~agrees:(ok_d && ok_c)
          ~metric:"8x8 array settles to correct products under both models"
          ~paper:"(generalisation of Figs. 6/7)"
          ~measured:(if ok_d && ok_c then "all vectors correct" else "MISMATCH")
          ();
        Experiment.observation
          ~agrees:(over > 5.)
          ~metric:"CDM event overestimation persists at 4x the circuit size"
          ~paper:"Table 1's shape"
          ~measured:
            (Printf.sprintf "+%.0f%% (DDM %d vs CDM %d)" over sd.Stats.events_processed
               sc.Stats.events_processed)
          ();
        Experiment.observation
          ~agrees:(sd.Stats.events_filtered > sc.Stats.events_filtered / 2)
          ~metric:"degradation keeps filtering at scale"
          ~paper:"(mechanism check)"
          ~measured:
            (Printf.sprintf "filtered %d (DDM) vs %d (CDM)" sd.Stats.events_filtered
               sc.Stats.events_filtered)
          ();
      ];
  ]
