(* VDD — low-voltage operation (extension).

   The paper's introduction lists "low voltage operation" among the
   modern issues a delay model must face, and eqs. 2–3 carry an
   explicit VDD dependence: the degradation tau = (A + B*CL)/VDD grows
   as the supply drops, so low-voltage gates are {e more} inertial and
   filter wider pulses.  We derive technologies at several supplies
   from the analytical alpha-power inverter (the drive current of a
   real device drops as (VDD - Vth)^alpha, which {!AP.at_vdd} applies)
   and measure the minimum surviving pulse width of a 2-inverter chain
   in both the DDM engine and the analog reference. *)

open Common
module AP = Halotis_cmos.Alpha_power

let tech_at vdd =
  AP.to_tech
    ~name:(Printf.sprintf "alpha-%.1fV" vdd)
    ~base:DL.tech
    (AP.at_vdd AP.default_inverter vdd)
    ~sized:AP.default_sizing

let chain = lazy (G.inverter_chain ~n:2 ())

let min_surviving tech engine =
  let c = Lazy.force chain in
  let input = match N.find_signal c "in" with Some s -> s | None -> assert false in
  let vt = Halotis_tech.Tech.vdd tech /. 2. in
  let alive width =
    let drives = [ (input, Drive.pulse ~slope:input_slope ~at:1000. ~width ()) ] in
    match engine with
    | `Ddm ->
        let r = Iddm.run (Iddm.config tech) c ~drives in
        D.edge_count (Iddm.waveform r "out") ~vt = 2
    | `Analog ->
        let r = Sim.run (Sim.config ~t_stop:9000. tech) c ~drives in
        List.length (Sim.crossings (Sim.trace r "out") ~vt) = 2
  in
  (* binary search for the survival boundary at 5 ps resolution *)
  if not (alive 1500.) then None
  else begin
    let rec search lo hi =
      (* invariant: dead at lo, alive at hi *)
      if hi -. lo <= 5. then Some hi
      else begin
        let mid = (lo +. hi) /. 2. in
        if alive mid then search lo mid else search mid hi
      end
    in
    search 20. 1500.
  end

let run () =
  section "VDD -- low-voltage operation (extension)";
  print_endline
    "minimum surviving pulse width through a 2-inverter chain (alpha-power library):";
  let supplies = [ 5.0; 4.0; 3.3; 2.7 ] in
  let results =
    List.map
      (fun vdd ->
        let tech = tech_at vdd in
        (vdd, min_surviving tech `Ddm, min_surviving tech `Analog))
      supplies
  in
  let cell = function Some w -> Printf.sprintf "%.0f ps" w | None -> "none survive" in
  Table.print
    (Table.make
       ~header:[ "VDD"; "DDM threshold"; "analog threshold" ]
       ~rows:
         (List.map
            (fun (vdd, d, a) -> [ Printf.sprintf "%.1f V" vdd; cell d; cell a ])
            results));
  let thresholds which =
    List.filter_map (fun (_, d, a) -> match which with `D -> d | `A -> a) results
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | [ _ ] | [] -> true
  in
  let agreement =
    List.for_all
      (fun (_, d, a) ->
        match (d, a) with Some x, Some y -> Float.abs (x -. y) <= 80. | _, _ -> false)
      results
  in
  [
    Experiment.make ~exp_id:"VDD" ~title:"Low-voltage operation (extension)"
      [
        Experiment.observation
          ~agrees:(non_decreasing (thresholds `D) && non_decreasing (thresholds `A))
          ~metric:"filtering threshold grows as the supply drops"
          ~paper:"eq. 2: tau = (A + B*CL)/VDD -- more inertial at low VDD"
          ~measured:
            (String.concat "; "
               (List.map
                  (fun (vdd, d, a) ->
                    Printf.sprintf "%.1fV: ddm %s analog %s" vdd (cell d) (cell a))
                  results))
          ();
        Experiment.observation ~agrees:agreement
          ~metric:"DDM threshold tracks the analog one at every supply"
          ~paper:"(accuracy across operating points)"
          ~measured:(if agreement then "within 80 ps at all supplies" else "diverged")
          ();
      ];
  ]
