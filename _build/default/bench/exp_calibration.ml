(* CAL — fitting the degradation law to the electrical substrate, the
   way the authors fitted eqs. 1-3 to HSPICE.

   A lone inverter is hit with pulses of shrinking width; for each
   pulse we measure the delay of the second output transition against
   the time elapsed since the first one.  Linearising eq. 1 recovers
   (tau, T0); held-out widths check the fit predicts unseen delays. *)

open Common
module Cal = Halotis_tech.Calibrate

let circuit = lazy (G.inverter_chain ~n:1 ())

let crossings_of width =
  let c = Lazy.force circuit in
  let input = match N.find_signal c "in" with Some s -> s | None -> assert false in
  let drives = [ (input, Drive.pulse ~slope:input_slope ~at:1000. ~width ()) ] in
  let r = Sim.run (Sim.config ~dt:0.5 ~record_every:1 ~t_stop:6000. DL.tech) c ~drives in
  let ein = Sim.edges r "in" and eout = Sim.edges r "out" in
  match (ein, eout) with
  | [ _i1; i2 ], [ o1; o2 ] -> Some (i2.D.at, o1.D.at, o2.D.at)
  | _, _ -> None

let run () =
  section "CAL -- DDM parameters fitted from the electrical substrate";
  (* nominal delay from a very wide pulse *)
  match crossings_of 3000. with
  | None -> failwith "calibration: wide pulse measurement failed"
  | Some (t_in2_w, _o1w, t_out2_w) ->
      let tp0 = t_out2_w -. t_in2_w in
      let widths = [ 115.; 125.; 135.; 150.; 165.; 180.; 200.; 250.; 350.; 500. ] in
      let samples =
        List.filter_map
          (fun w ->
            match crossings_of w with
            | Some (t_in2, t_out1, t_out2) ->
                let tp = t_out2 -. t_in2 in
                let time_since_last = t_in2 +. tp0 -. t_out1 in
                Some (w, time_since_last, tp)
            | None -> None)
          widths
      in
      Table.print
        (Table.make ~header:[ "pulse width"; "T (ps)"; "measured tp (ps)" ]
           ~rows:
             (List.map
                (fun (w, t, tp) ->
                  [ Printf.sprintf "%.0f" w; Printf.sprintf "%.1f" t; Printf.sprintf "%.1f" tp ])
                samples));
      Printf.printf "nominal tp0 (wide pulse) = %.1f ps\n" tp0;
      let fit =
        Cal.fit_degradation ~tp0 ~samples:(List.map (fun (_, t, tp) -> (t, tp)) samples)
      in
      (match fit with
      | Some f ->
          Printf.printf "fit: tau = %.1f ps, T0 = %.1f ps, r^2 = %.4f\n" f.Cal.fit_tau
            f.Cal.fit_t0 f.Cal.fit_r2;
          (* library values at this load, for comparison *)
          let c = Lazy.force circuit in
          let loads = Halotis_delay.Loads.of_netlist DL.tech c in
          let gt = Halotis_tech.Tech.gate_tech DL.tech Halotis_logic.Gate_kind.Inv in
          let p = Halotis_tech.Tech.edge gt ~rising:true in
          let tau_lib =
            Halotis_tech.Tech.degradation_tau DL.tech p
              ~cl:loads.((match N.find_signal c "out" with Some s -> s | None -> 0))
          in
          Printf.printf "library tau at this load = %.1f ps\n" tau_lib;
          let within_factor k a b = a < k *. b && b < k *. a in
          [
            Experiment.make ~exp_id:"CAL" ~title:"Degradation-law calibration"
              [
                Experiment.observation
                  ~agrees:(f.Cal.fit_r2 > 0.9)
                  ~metric:"eq. 1 linearisation fits the electrical measurements"
                  ~paper:"delay decreases exponentially as pulses shorten"
                  ~measured:(Printf.sprintf "r^2 = %.4f" f.Cal.fit_r2)
                  ();
                Experiment.observation
                  ~agrees:(within_factor 3. f.Cal.fit_tau tau_lib)
                  ~metric:"fitted tau consistent with the library value"
                  ~paper:"(calibration claim)"
                  ~measured:
                    (Printf.sprintf "fit %.1f ps vs library %.1f ps" f.Cal.fit_tau tau_lib)
                  ();
              ];
          ]
      | None ->
          [
            Experiment.make ~exp_id:"CAL" ~title:"Degradation-law calibration"
              [
                Experiment.observation ~agrees:false ~metric:"fit available" ~paper:"yes"
                  ~measured:"fit failed" ();
              ];
          ])
