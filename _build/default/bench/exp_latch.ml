(* LATCH — glitch collisions triggering stored state (extension).

   The paper motivates the IDDM with race conditions and the triggering
   of metastable behaviour in latches.  This experiment combines the
   Fig. 1 structure with two NAND latches: a degraded runt drives a
   low-VT and a high-VT sense inverter, each resetting its own latch.
   Inside the degradation band the electrical reference and HALOTIS-DDM
   flip only the low-VT latch; the classical inertial model — which
   filters at the driver — resets both or neither, i.e. it gets a
   stored *state* wrong, not just a waveform. *)

open Common

let run_width width =
  let lg = G.latch_glitch_circuit () in
  let drives = [ (lg.G.lg_in, Drive.pulse ~slope:input_slope ~at:1000. ~width ()) ] in
  let rd = Iddm.run (Iddm.config DL.tech) lg.G.lg_circuit ~drives in
  let rc = Classic.run (Classic.config DL.tech) lg.G.lg_circuit ~drives in
  let ra = Sim.run (Sim.config ~t_stop:8000. DL.tech) lg.G.lg_circuit ~drives in
  let ddm sid = D.final_level rd.Iddm.waveforms.(sid) ~vt:vdd2 in
  let analog sid = Sim.value_at ra.Sim.traces.(sid) 7900. > vdd2 in
  ( (ddm lg.G.lg_q_low, ddm lg.G.lg_q_high),
    (rc.Classic.final_levels.(lg.G.lg_q_low), rc.Classic.final_levels.(lg.G.lg_q_high)),
    (analog lg.G.lg_q_low, analog lg.G.lg_q_high) )

let show (ql, qh) = Printf.sprintf "q_low=%d q_high=%d" (Bool.to_int ql) (Bool.to_int qh)

let run () =
  section "LATCH -- glitch triggering stored state (extension)";
  print_endline "final latch states after a degraded glitch (1 = held, 0 = flipped):";
  let rows =
    List.map
      (fun width ->
        let d, c, a = run_width width in
        [ Printf.sprintf "%.0f" width; show a; show d; show c ])
      [ 150.; 200.; 250.; 300.; 400.; 600. ]
  in
  Table.print
    (Table.make ~header:[ "pulse width"; "analog"; "HALOTIS-DDM"; "classical" ] ~rows);
  (* the experiment's operating point *)
  let d, c, a = run_width 250. in
  let discriminates (ql, qh) = (not ql) && qh in
  [
    Experiment.make ~exp_id:"LATCH" ~title:"Glitch triggering a latch (extension)"
      [
        Experiment.observation
          ~agrees:(discriminates d && discriminates a)
          ~metric:"DDM & electrical: only the low-VT latch flips (250 ps glitch)"
          ~paper:"(motivation: race conditions / latch triggering, Sec. 1)"
          ~measured:(Printf.sprintf "ddm %s; analog %s" (show d) (show a))
          ();
        Experiment.observation
          ~agrees:(fst c = snd c)
          ~metric:"classical model cannot split the latch states"
          ~paper:"filter-at-driver semantics"
          ~measured:(show c)
          ~note:"it resets both latches: a stored-state error, not just a waveform error"
          ();
      ];
  ]
