(* TAB1 — event statistics (paper Table 1): events and filtered events
   for HALOTIS-DDM vs HALOTIS-CDM on the two sequences, plus the
   switching-activity overestimation of CDM. *)

open Common

let measure ops =
  let rd = run_ddm ops in
  let rc = run_cdm ops in
  let ra = run_analog ops in
  let sd = rd.Iddm.stats and sc = rc.Iddm.stats in
  let actd = Act.of_iddm rd and actc = Act.of_iddm rc in
  let ea = internal_edges_analog ra in
  ( (sd.Stats.events_processed, sd.Stats.events_filtered),
    (sc.Stats.events_processed, sc.Stats.events_filtered),
    (actd, actc, ea) )

let run () =
  section "TAB1 -- simulation statistics (Table 1)";
  let rows, observations =
    List.split
      (List.map
         (fun (label, ops, paper_over) ->
           let (ed, fd), (ec, fc), (actd, actc, analog_edges) = measure ops in
           let over_events = pct_more ~base:ed ec in
           let over_act =
             Act.overestimation_pct ~reference:actd ~candidate:actc
           in
           let over_vs_analog = pct_more ~base:analog_edges actc.Act.total_transitions -. 0.
           in
           let row =
             [
               label;
               string_of_int ed;
               string_of_int ec;
               Printf.sprintf "%.0f%%" over_events;
               string_of_int fd;
               string_of_int fc;
             ]
           in
           let obs =
             [
               Experiment.observation
                 ~agrees:(over_events > 5.)
                 ~metric:(Printf.sprintf "CDM event overestimation (%s)" label)
                 ~paper:(Printf.sprintf "+%s" paper_over)
                 ~measured:(Printf.sprintf "+%.0f%% (DDM %d vs CDM %d)" over_events ed ec)
                 ~note:
                   "same direction; magnitude depends on how inertial the cell \
                    library is -- ours is calibrated against the analog substrate"
                 ();
               Experiment.observation
                 ~metric:(Printf.sprintf "filtered events, DDM vs CDM (%s)" label)
                 ~paper:"27 vs 1 / 66 vs 6"
                 ~measured:(Printf.sprintf "%d vs %d" fd fc)
                 ~note:
                   "qualitative: our HALOTIS-CDM keeps the full transition/event \
                    machinery (only the delay law changes), so rise/fall asymmetry \
                    still collapses some pulses; the paper's CDM filtered almost \
                    nothing"
                 ();
               Experiment.observation
                 ~agrees:(over_act > 5. && over_vs_analog > 5.)
                 ~metric:(Printf.sprintf "CDM switching-activity overestimation (%s)" label)
                 ~paper:"up to 40%"
                 ~measured:
                   (Printf.sprintf "+%.0f%% vs DDM, +%.0f%% vs analog reference" over_act
                      over_vs_analog)
                 ();
             ]
           in
           (row, obs))
         [
           ("seq A (0x0,7x7,5xA,Ex6,FxF)", V.paper_sequence_a, "47%");
           ("seq B (0x0,FxF,0x0,FxF,0x0)", V.paper_sequence_b, "52%");
         ])
  in
  Table.print
    (Table.make
       ~header:
         [ "sequence"; "events DDM"; "events CDM"; "overst. CDM"; "filtered DDM"; "filtered CDM" ]
       ~rows);
  [ Experiment.make ~exp_id:"TAB1" ~title:"Simulation statistics" (List.concat observations) ]
