(* HAZ — static hazard prediction vs dynamic glitch observation
   (extension).

   The hazard analysis flags every gate whose inputs can collide
   (timing sites) or pass through glitching intermediate vectors
   (function sites).  Driving the multiplier through random vector
   pairs, every gate observed *generating* a glitch (output pulse with
   monotone inputs) must be flagged — and the fraction of flagged sites
   that actually fire measures how tight the static analysis is. *)

open Common
module Hazard = Halotis_sta.Hazard

let vector_pairs = 40

let run () =
  section "HAZ -- static hazard sites vs observed glitch origins (extension)";
  let m = Lazy.force multiplier in
  let c = m.G.mult_circuit in
  let h = Hazard.analyze DL.tech c in
  let timing = List.length (Hazard.timing_sites h) in
  let total_sites = List.length (Hazard.sites h) in
  Printf.printf "static sites: %d (%d timing, %d function-only) of %d gates\n" total_sites
    timing (total_sites - timing) (N.gate_count c);
  (* drive random vector pairs; collect gates that generate glitches *)
  let rng = Halotis_util.Prng.create ~seed:2001 in
  let observed = Hashtbl.create 64 in
  let escaped = ref 0 in
  for _ = 1 to vector_pairs do
    let v1 = Halotis_util.Prng.int rng ~bound:256 in
    let v2 = Halotis_util.Prng.int rng ~bound:256 in
    let bits v i = (v lsr i) land 1 = 1 in
    let drives =
      List.mapi
        (fun i s ->
          (s, Drive.of_levels ~slope:input_slope ~initial:(bits v1 i) [ (0., bits v2 i) ]))
        (N.primary_inputs c)
    in
    let r = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) c ~drives in
    Array.iter
      (fun (g : N.gate) ->
        if D.pulses r.Iddm.waveforms.(g.N.output) ~vt:vdd2 <> [] then begin
          let inputs_monotone =
            Array.for_all
              (fun fid -> D.edge_count r.Iddm.waveforms.(fid) ~vt:vdd2 <= 1)
              g.N.fanin
          in
          if inputs_monotone then begin
            Hashtbl.replace observed g.N.gate_id ();
            if not (Hazard.is_hazardous h g.N.gate_id) then incr escaped
          end
        end)
      (N.gates c)
  done;
  let fired = Hashtbl.length observed in
  Printf.printf
    "dynamic: %d distinct gates generated glitches over %d random vector pairs; %d escaped \
     the static analysis\n"
    fired vector_pairs !escaped;
  Printf.printf "site precision on this workload: %d/%d = %.0f%%\n" fired total_sites
    (100. *. float_of_int fired /. float_of_int (max 1 total_sites));
  print_endline "top timing sites:";
  Format.printf "%a"
    (Hazard.pp_sites c)
    (List.filteri (fun i _ -> i < 5) (Hazard.timing_sites h));
  [
    Experiment.make ~exp_id:"HAZ" ~title:"Static hazard prediction (extension)"
      [
        Experiment.observation
          ~agrees:(!escaped = 0)
          ~metric:"every observed glitch origin is a flagged site"
          ~paper:"(conservatism of the static analysis)"
          ~measured:(Printf.sprintf "%d escaped of %d observed" !escaped fired)
          ();
        Experiment.observation
          ~agrees:(fired > 0)
          ~metric:"the workload exercises flagged sites"
          ~paper:"(sanity)"
          ~measured:(Printf.sprintf "%d of %d sites fired" fired total_sites)
          ();
      ];
  ]
