(* COLL — input glitch collisions (extension).

   The paper's introduction singles out "glitch collisions": two input
   transitions arriving close in time whose overlap produces an output
   glitch.  On a NAND2 with a rising on one pin and b falling Δ later,
   the output shows a negative glitch of roughly width Δ; as Δ shrinks
   the real gate's glitch degrades continuously and dies.  DDM follows
   the electrical reference; CDM keeps every glitch wider than its
   fixed filtering boundary. *)

open Common
module Builder = Halotis_netlist.Builder
module Gate_kind = Halotis_logic.Gate_kind

let nand2 () =
  let b = Builder.create "collision" in
  let a = Builder.input b "a" in
  let bb = Builder.input b "b" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g" ~inputs:[ a; bb ] ~output:y in
  Builder.mark_output b y;
  (Builder.finalize b, a, bb)

let glitch_width engine separation =
  let c, a, bb = nand2 () in
  let drives =
    [
      (a, Drive.of_levels ~slope:input_slope ~initial:false [ (1000., true) ]);
      (bb, Drive.of_levels ~slope:input_slope ~initial:true [ (1000. +. separation, false) ]);
    ]
  in
  match engine with
  | `Ddm | `Cdm -> (
      let kind = if engine = `Ddm then DM.Ddm else DM.Cdm in
      let r = Iddm.run (Iddm.config ~delay_kind:kind DL.tech) c ~drives in
      match D.pulses (Iddm.waveform r "y") ~vt:vdd2 with
      | [ p ] -> Some p.D.width
      | [] -> None
      | _ -> None)
  | `Analog -> (
      let r = Sim.run (Sim.config ~t_stop:5000. DL.tech) c ~drives in
      match Sim.edges r "y" with
      | [ e1; e2 ] -> Some (e2.D.at -. e1.D.at)
      | _ -> None)

let separations = [ 50.; 100.; 150.; 200.; 250.; 300.; 400.; 600. ]

let run () =
  section "COLL -- input glitch collisions on a NAND2 (extension)";
  print_endline
    "a rises at 1 ns, b falls Delta later; output glitch width at VDD/2 ('-' = none):";
  let cell = function Some w -> Printf.sprintf "%.0f" w | None -> "-" in
  Table.print
    (Table.make
       ~header:[ "Delta (ps)"; "analog"; "HALOTIS-DDM"; "HALOTIS-CDM" ]
       ~rows:
         (List.map
            (fun sep ->
              [
                Printf.sprintf "%.0f" sep;
                cell (glitch_width `Analog sep);
                cell (glitch_width `Ddm sep);
                cell (glitch_width `Cdm sep);
              ])
            separations));
  let first_alive engine =
    List.find_opt (fun sep -> glitch_width engine sep <> None) separations
  in
  let monotone engine =
    let widths = List.filter_map (fun sep -> glitch_width engine sep) separations in
    let rec increasing = function
      | a :: (b :: _ as rest) -> a <= b +. 1. && increasing rest
      | [ _ ] | [] -> true
    in
    increasing widths
  in
  let close =
    match (first_alive `Ddm, first_alive `Analog) with
    | Some a, Some b -> Float.abs (a -. b) <= 100.
    | (Some _ | None), (Some _ | None) -> false
  in
  [
    Experiment.make ~exp_id:"COLL" ~title:"Input glitch collisions (extension)"
      [
        Experiment.observation ~agrees:(monotone `Ddm && monotone `Analog)
          ~metric:"collision glitch grows continuously with input separation"
          ~paper:"input collisions change the gate's response (Sec. 1, ref [5])"
          ~measured:"monotone in both DDM and the electrical reference"
          ();
        Experiment.observation ~agrees:close
          ~metric:"DDM collision-glitch birth point tracks the electrical one"
          ~paper:"(accuracy claim)"
          ~measured:
            (Printf.sprintf "first visible glitch: ddm Delta=%s, analog Delta=%s"
               (match first_alive `Ddm with Some s -> Printf.sprintf "%.0f" s | None -> "none")
               (match first_alive `Analog with Some s -> Printf.sprintf "%.0f" s | None -> "none"))
          ();
      ];
  ]
