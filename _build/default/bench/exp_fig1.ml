(* FIG1 — "Inertial delay wrong results" (paper Fig. 1).

   A degraded pulse on out0 drives two inverters with different input
   thresholds (VT1 = 1.5 V, VT2 = 3.5 V).  The electrical reference and
   HALOTIS-DDM propagate it into the low-threshold branch only; the
   classical inertial-delay model cannot tell the branches apart. *)

open Common

let pulse_width = 225.

let run_width width =
  let f = G.fig1_circuit () in
  let drives c_in = [ (c_in, Drive.pulse ~slope:input_slope ~at:1000. ~width ()) ] in
  let r = Iddm.run (Iddm.config DL.tech) f.G.circuit ~drives:(drives f.G.sig_in) in
  let rc = Classic.run (Classic.config DL.tech) f.G.circuit ~drives:(drives f.G.sig_in) in
  let ra =
    Sim.run (Sim.config ~t_stop:6000. DL.tech) f.G.circuit ~drives:(drives f.G.sig_in)
  in
  (f, r, rc, ra)

let edge_counts (f, r, rc, ra) =
  let iddm name = D.edge_count (Iddm.waveform r name) ~vt:vdd2 in
  let classic name = List.length (Classic.edges_of_name rc name) in
  let analog name = List.length (Sim.edges ra name) in
  ignore f;
  (iddm, classic, analog)

let print_waveforms (f, r, rc, ra) =
  let names = [ "in"; "out0"; "out1"; "out1c"; "out2"; "out2c" ] in
  let t0 = 500. and t1 = 4000. in
  print_endline "HALOTIS-DDM (digital view, VT = VDD/2):";
  let lanes =
    List.map (fun n -> Figures.lane_of_waveform ~label:n ~vt:vdd2 (Iddm.waveform r n)) names
  in
  print_string (Figures.timing_diagram ~width:90 ~t0 ~t1 lanes);
  print_endline "analog reference, out0 voltage (runt between VT1 and VT2):";
  let tr = Sim.trace ra "out0" in
  print_string
    (Figures.voltage_lane ~width:90 ~rows:5 ~t0 ~t1 ~vdd:DL.vdd ~label:"out0" (fun t ->
         Sim.value_at tr t));
  print_endline "classical inertial model (boolean view):";
  let lanes_c =
    List.map
      (fun n ->
        let sid = match N.find_signal f.G.circuit n with Some s -> s | None -> assert false in
        Figures.lane_of_edges ~label:n ~initial:rc.Classic.initial_levels.(sid)
          rc.Classic.edges.(sid))
      names
  in
  print_string (Figures.timing_diagram ~width:90 ~t0 ~t1 lanes_c)

let run () =
  section "FIG1 -- inertial delay wrong results (Fig. 1)";
  Printf.printf "input pulse width %.0f ps, slope %.0f ps, VT1 = 1.5 V, VT2 = 3.5 V\n\n"
    pulse_width input_slope;
  let state = run_width pulse_width in
  print_waveforms state;
  let iddm, classic, analog = edge_counts state in
  let row label f =
    [ label; string_of_int (f "out1c"); string_of_int (f "out2c") ]
  in
  let table =
    Table.make
      ~header:[ "engine"; "out1c edges (low VT)"; "out2c edges (high VT)" ]
      ~rows:[ row "analog reference" analog; row "HALOTIS-DDM" iddm; row "classical inertial" classic ]
  in
  print_newline ();
  Table.print table;
  (* the discrimination bands per engine, for the record *)
  let discriminating f = f "out1c" = 2 && f "out2c" = 0 in
  let band engine_of =
    List.filter
      (fun w ->
        let st = run_width w in
        let i, c, a = edge_counts st in
        discriminating (match engine_of with `I -> i | `C -> c | `A -> a))
      [ 150.; 175.; 200.; 225.; 250.; 275.; 300. ]
  in
  let show band = String.concat "," (List.map (Printf.sprintf "%.0f") band) in
  let iddm_band = band `I and classic_band = band `C and analog_band = band `A in
  Printf.printf "\ndiscriminating widths (ps): iddm=[%s] analog=[%s] classical=[%s]\n"
    (show iddm_band) (show analog_band) (show classic_band);
  [
    Experiment.make ~exp_id:"FIG1" ~title:"Inertial delay wrong results"
      [
        Experiment.observation
          ~agrees:(discriminating iddm && discriminating analog)
          ~metric:"IDDM & electrical: pulse reaches g1 (low VT) only"
          ~paper:"out1/out1c switch, out2/out2c do not"
          ~measured:
            (Printf.sprintf "iddm out1c=%d out2c=%d; analog out1c=%d out2c=%d"
               (iddm "out1c") (iddm "out2c") (analog "out1c") (analog "out2c"))
          ();
        Experiment.observation
          ~agrees:(classic "out1c" = classic "out2c")
          ~metric:"classical inertial model treats both fanouts identically"
          ~paper:"Fig. 1(c): same waveform on both branches"
          ~measured:
            (Printf.sprintf "classic out1c=%d out2c=%d" (classic "out1c") (classic "out2c"))
          ();
        Experiment.observation
          ~agrees:(classic_band = [])
          ~metric:"classical model has no discriminating pulse width"
          ~paper:"implied by the filtering-at-driver semantics"
          ~measured:(Printf.sprintf "classical band = [%s]" (show classic_band))
          ();
      ];
  ]
