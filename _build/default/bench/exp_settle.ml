(* SETTLE — dynamic settle-time distribution (extension).

   The paper's waveforms rest on every vector settling inside its 5 ns
   slot.  This experiment drives random vector pairs through the 4x4
   multiplier and measures the distribution of settle times (last edge
   after the vector is applied), for DDM and CDM, against the static
   STA bound. *)

open Common
module Sta = Halotis_sta.Sta

let vectors = 60

let settle_times kind =
  let m = Lazy.force multiplier in
  let c = m.G.mult_circuit in
  let rng = Halotis_util.Prng.create ~seed:77 in
  List.init vectors (fun _ ->
      let v1 = Halotis_util.Prng.int rng ~bound:256 in
      let v2 = Halotis_util.Prng.int rng ~bound:256 in
      let bits v i = (v lsr i) land 1 = 1 in
      let drives =
        List.mapi
          (fun i s ->
            (s, Drive.of_levels ~slope:input_slope ~initial:(bits v1 i) [ (0., bits v2 i) ]))
          (N.primary_inputs c)
      in
      let r = Iddm.run (Iddm.config ~delay_kind:kind DL.tech) c ~drives in
      Array.fold_left
        (fun acc w ->
          List.fold_left (fun acc (e : D.edge) -> Float.max acc e.D.at) acc
            (D.edges w ~vt:vdd2))
        0. r.Iddm.waveforms)

let stats times =
  let n = float_of_int (List.length times) in
  let mean = List.fold_left ( +. ) 0. times /. n in
  let maxv = List.fold_left Float.max 0. times in
  (mean, maxv)

let run () =
  section "SETTLE -- dynamic settle-time distribution (extension)";
  let ddm = settle_times DM.Ddm and cdm = settle_times DM.Cdm in
  let mean_d, max_d = stats ddm and mean_c, max_c = stats cdm in
  let m = Lazy.force multiplier in
  let sta_bound = Sta.worst (Sta.analyze ~input_slope DL.tech m.G.mult_circuit) in
  Table.print
    (Table.make
       ~header:[ "engine"; "mean settle"; "max settle"; "static bound" ]
       ~rows:
         [
           [ "HALOTIS-DDM"; Printf.sprintf "%.0f ps" mean_d; Printf.sprintf "%.0f ps" max_d;
             Printf.sprintf "%.0f ps" sta_bound ];
           [ "HALOTIS-CDM"; Printf.sprintf "%.0f ps" mean_c; Printf.sprintf "%.0f ps" max_c;
             "" ];
         ]);
  [
    Experiment.make ~exp_id:"SETTLE" ~title:"Settle-time distribution (extension)"
      [
        Experiment.observation
          ~agrees:(max_d < period && max_c < period)
          ~metric:"every random vector settles within the paper's 5 ns slot"
          ~paper:"implied by the Figs. 6/7 setup"
          ~measured:(Printf.sprintf "max %.0f ps (DDM), %.0f ps (CDM)" max_d max_c)
          ();
        Experiment.observation
          ~agrees:(max_c <= sta_bound +. 1e-6)
          ~metric:"STA bound dominates the worst observed settle (CDM)"
          ~paper:"(conservatism)"
          ~measured:(Printf.sprintf "observed %.0f ps <= bound %.0f ps" max_c sta_bound)
          ();
        Experiment.observation
          ~agrees:(mean_d <= mean_c +. 1.)
          ~metric:"degradation never slows settling"
          ~paper:"(DDM kills glitch tails early)"
          ~measured:(Printf.sprintf "mean %.0f ps vs %.0f ps" mean_d mean_c)
          ();
      ];
  ]
