(* SWEEP — the degradation band of the paper's Section 2: between the
   wide pulses that propagate normally and the narrow pulses that are
   eliminated, there is a range where the output pulse is narrower than
   the input pulse.  A conventional delay model has no such band. *)

open Common

let chain = lazy (G.inverter_chain ~n:2 ())

let out_pulse engine width =
  let c = Lazy.force chain in
  let input = match N.find_signal c "in" with Some s -> s | None -> assert false in
  let drives = [ (input, Drive.pulse ~slope:input_slope ~at:1000. ~width ()) ] in
  match engine with
  | `Ddm -> (
      let r = Iddm.run (Iddm.config DL.tech) c ~drives in
      match D.pulses (Iddm.waveform r "out") ~vt:vdd2 with
      | [ p ] -> Some p.D.width
      | [] -> None
      | _ -> None)
  | `Cdm -> (
      let r = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) c ~drives in
      match D.pulses (Iddm.waveform r "out") ~vt:vdd2 with
      | [ p ] -> Some p.D.width
      | [] -> None
      | _ -> None)
  | `Analog -> (
      let r = Sim.run (Sim.config ~t_stop:8000. DL.tech) c ~drives in
      match Sim.edges r "out" with
      | [ e1; e2 ] -> Some (e2.D.at -. e1.D.at)
      | _ -> None)
  | `Classic -> (
      let r = Classic.run (Classic.config DL.tech) c ~drives in
      match Classic.edges_of_name r "out" with
      | [ e1; e2 ] -> Some (e2.D.at -. e1.D.at)
      | _ -> None)
  | `Transport -> (
      let r = Classic.run (Classic.config ~mode:Classic.Transport DL.tech) c ~drives in
      match Classic.edges_of_name r "out" with
      | [ e1; e2 ] -> Some (e2.D.at -. e1.D.at)
      | _ -> None)

let widths = [ 75.; 100.; 125.; 150.; 175.; 200.; 250.; 300.; 400.; 600.; 1000. ]

let run () =
  section "SWEEP -- degradation band (Section 2)";
  print_endline "output pulse width at 'out' of a 2-inverter chain (ps; '-' = eliminated):";
  let cell v = match v with Some w -> Printf.sprintf "%.0f" w | None -> "-" in
  Table.print
    (Table.make
       ~header:
         [ "input width"; "analog"; "HALOTIS-DDM"; "HALOTIS-CDM"; "classical inertial";
           "transport" ]
       ~rows:
         (List.map
            (fun w ->
              [
                Printf.sprintf "%.0f" w;
                cell (out_pulse `Analog w);
                cell (out_pulse `Ddm w);
                cell (out_pulse `Cdm w);
                cell (out_pulse `Classic w);
                cell (out_pulse `Transport w);
              ])
            widths));
  (* band boundaries for DDM *)
  let first_alive engine =
    List.find_opt (fun w -> out_pulse engine w <> None) widths
  in
  let band_exists engine =
    (* a full-swing input pulse (width >= slope) whose output survives
       visibly narrowed: degradation that a constant-delay model cannot
       produce (its output width differs from the input only by the
       fixed rise/fall delay asymmetry) *)
    List.exists
      (fun w ->
        w >= input_slope
        && match out_pulse engine w with Some o -> o < w -. 25. | None -> false)
      widths
  in
  let ddm_dead = first_alive `Ddm and analog_dead = first_alive `Analog in
  let close =
    match (ddm_dead, analog_dead) with
    | Some a, Some b -> Float.abs (a -. b) <= 75.
    | (Some _ | None), (Some _ | None) -> false
  in
  [
    Experiment.make ~exp_id:"SWEEP" ~title:"Degradation band (Section 2)"
      [
        Experiment.observation ~agrees:(band_exists `Ddm)
          ~metric:"DDM has a band where pulses shrink without dying"
          ~paper:"pulses neither eliminated nor propagated normally"
          ~measured:(if band_exists `Ddm then "band present" else "absent") ();
        Experiment.observation ~agrees:(band_exists `Analog)
          ~metric:"electrical reference shows the same continuous band"
          ~paper:"the change in behavior of a true gate is continuous"
          ~measured:(if band_exists `Analog then "band present" else "absent") ();
        Experiment.observation ~agrees:(not (band_exists `Classic))
          ~metric:"classical inertial model is all-or-nothing"
          ~paper:"conventional models behave discontinuously"
          ~measured:(if band_exists `Classic then "unexpected band" else "no band") ();
        Experiment.observation
          ~metric:"HALOTIS-CDM narrows pulses only at its filtering boundary"
          ~paper:"(implementation note)"
          ~measured:
            (if band_exists `Cdm then
               "slight narrowing right at the boundary (ramp truncation is \
                continuous even with constant delays)"
             else "no narrowing")
          ();
        Experiment.observation
          ~agrees:
            (List.for_all (fun w -> out_pulse `Transport w <> None) [ 75.; 100.; 150. ])
          ~metric:"transport delay never filters (the other end of the spectrum)"
          ~paper:"(the model the inertial delay was invented to fix)"
          ~measured:"all narrow pulses propagate under transport"
          ();
        Experiment.observation ~agrees:close
          ~metric:"DDM elimination threshold tracks the electrical one"
          ~paper:"(calibration claim)"
          ~measured:
            (Printf.sprintf "first surviving width: ddm=%s analog=%s"
               (match ddm_dead with Some w -> Printf.sprintf "%.0f" w | None -> "none")
               (match analog_dead with Some w -> Printf.sprintf "%.0f" w | None -> "none"))
          ();
      ];
  ]
