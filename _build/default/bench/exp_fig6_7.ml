(* FIG6 / FIG7 — 4x4 multiplier waveforms under the paper's two
   multiplication sequences, simulated with the analog reference
   (HSPICE substitute), HALOTIS-DDM and HALOTIS-CDM. *)

open Common
module Compare = Halotis_wave.Compare

let matching_final_levels (rd : Iddm.result) (ra : Sim.result) =
  let m = Lazy.force multiplier in
  List.for_all
    (fun sid ->
      let d = D.final_level rd.Iddm.waveforms.(sid) ~vt:vdd2 in
      let a = Sim.value_at ra.Sim.traces.(sid) horizon > vdd2 in
      d = a)
    m.G.product_bits

let settled_products_ok (rd : Iddm.result) ops =
  let m = Lazy.force multiplier in
  List.for_all
    (fun (k, op) ->
      let t = (float_of_int (k + 1) *. period) -. 1. in
      let p =
        List.fold_left
          (fun acc (i, sid) ->
            if D.level_at rd.Iddm.waveforms.(sid) ~vt:vdd2 t then acc lor (1 lsl i) else acc)
          0
          (List.mapi (fun i s -> (i, s)) m.G.product_bits)
      in
      p = V.expected_product op)
    (List.mapi (fun k op -> (k, op)) ops)

(* Edge-for-edge agreement between an IDDM run and the analog traces
   on the product bits.  The +-1 ns window absorbs the model skew that
   accumulates along the 17-level critical path (the macromodel runs
   ~30 ps/stage faster than the CDM base delay); the interesting signal
   here is missing/extra edges, i.e. glitches present in one model and
   dead in the other. *)
let agreement_with_analog (rd : Iddm.result) (ra : Sim.result) =
  let m = Lazy.force multiplier in
  Compare.merge
    (List.map
       (fun sid ->
         Compare.edges ~tolerance:1000.
           ~reference:(Sim.crossings ra.Sim.traces.(sid) ~vt:vdd2)
           ~candidate:(D.edges rd.Iddm.waveforms.(sid) ~vt:vdd2))
       m.G.product_bits)

let run_figure ~exp_id ~title ops =
  section (Printf.sprintf "%s -- multiplier waveforms, sequence %s" exp_id (sequence_label ops));
  let rd = run_ddm ops in
  let rc_iddm = run_cdm ops in
  let ra = run_analog ops in
  let diagram lanes = Figures.timing_diagram ~width:100 ~t0:0. ~t1:horizon lanes in
  Printf.printf "a) analog reference (HSPICE substitute):\n%s\n"
    (diagram (product_lanes_of_analog ra));
  Printf.printf "b) HALOTIS-DDM:\n%s\n" (diagram (product_lanes_of_iddm rd));
  Printf.printf "c) HALOTIS-CDM:\n%s\n" (diagram (product_lanes_of_iddm rc_iddm));
  let agree_ddm = agreement_with_analog rd ra in
  let agree_cdm = agreement_with_analog rc_iddm ra in
  Format.printf "DDM vs analog on the product bits: %a (agreement %.2f)@." Compare.pp
    agree_ddm (Compare.agreement agree_ddm);
  Format.printf "CDM vs analog on the product bits: %a (agreement %.2f)@." Compare.pp
    agree_cdm (Compare.agreement agree_cdm);
  let ed = internal_edges_iddm rd in
  let ec = internal_edges_iddm rc_iddm in
  let ea = internal_edges_analog ra in
  Printf.printf
    "internal signal edges: analog=%d  DDM=%d  CDM=%d  (CDM vs analog: +%.0f%%)\n" ea ed ec
    (pct_more ~base:ea ec);
  [
    Experiment.make ~exp_id ~title
      [
        Experiment.observation
          ~agrees:(matching_final_levels rd ra)
          ~metric:"DDM final output levels match the electrical reference"
          ~paper:"HALOTIS-DDM and HSPICE results are very similar"
          ~measured:(if matching_final_levels rd ra then "all 8 bits agree" else "MISMATCH")
          ();
        Experiment.observation
          ~agrees:(settled_products_ok rd ops)
          ~metric:"every vector settles to the arithmetic product"
          ~paper:"implied by Fig. waveforms"
          ~measured:(if settled_products_ok rd ops then "all vectors correct" else "MISMATCH")
          ();
        Experiment.observation
          ~agrees:(ec > ed && ed <= ea + (ea / 5))
          ~metric:"CDM shows more transitions than DDM/electrical"
          ~paper:"CDM shows many more output transitions (glitches kept)"
          ~measured:(Printf.sprintf "analog=%d ddm=%d cdm=%d" ea ed ec)
          ();
        Experiment.observation
          ~agrees:(Compare.agreement agree_ddm >= 0.75
                   && Compare.agreement agree_ddm >= Compare.agreement agree_cdm)
          ~metric:"DDM output edges match the electrical reference edge-for-edge"
          ~paper:"\"very similar\" waveforms"
          ~measured:
            (Format.asprintf "DDM agreement %.2f (%a); CDM %.2f"
               (Compare.agreement agree_ddm) Compare.pp agree_ddm
               (Compare.agreement agree_cdm))
          ();
      ];
  ]

let run_fig6 () =
  run_figure ~exp_id:"FIG6" ~title:"Sequence 0x0,7x7,5xA,Ex6,FxF waveforms"
    V.paper_sequence_a

let run_fig7 () =
  run_figure ~exp_id:"FIG7" ~title:"Sequence 0x0,FxF,0x0,FxF,0x0 waveforms"
    V.paper_sequence_b
