(* TAB2 — CPU time (paper Table 2): one Bechamel benchmark per engine
   and sequence.  The paper's claim is about relative cost, not the
   absolute seconds of a 2001 workstation: the electrical simulation is
   2-3 orders of magnitude slower than event-driven HALOTIS, and
   HALOTIS-DDM beats HALOTIS-CDM because it processes fewer events. *)

open Common
open Bechamel
open Toolkit

type row = { name : string; ns_per_run : float }

let analyze_raw raw =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> { name; ns_per_run = ns } :: acc
      | Some _ | None -> acc)
    results []

let run_benchmarks () =
  let mk name f = Test.make ~name (Staged.stage f) in
  (* The event-driven engines run in microseconds: give them a
     stabilized, properly sampled benchmark.  One analog simulation
     takes ~0.5 s, so it gets a few raw samples instead. *)
  let logic_tests =
    List.concat_map
      (fun (label, ops) ->
        [
          mk (label ^ "/halotis-ddm") (fun () -> ignore (run_ddm ops));
          mk (label ^ "/halotis-cdm") (fun () -> ignore (run_cdm ops));
          mk (label ^ "/classic") (fun () -> ignore (run_classic ops));
        ])
      [ ("seqA", V.paper_sequence_a); ("seqB", V.paper_sequence_b) ]
  in
  let analog_tests =
    List.map
      (fun (label, ops) -> mk (label ^ "/analog") (fun () -> ignore (run_analog ops)))
      [ ("seqA", V.paper_sequence_a); ("seqB", V.paper_sequence_b) ]
  in
  (* compact first: when table2 runs after other experiments the major
     heap is large and skews sub-millisecond measurements *)
  Gc.compact ();
  let logic_cfg =
    Benchmark.cfg ~limit:400 ~quota:(Time.second 1.5) ~kde:None ~stabilize:true ()
  in
  let analog_cfg =
    Benchmark.cfg ~limit:4 ~quota:(Time.second 2.0) ~kde:None ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw_logic =
    Benchmark.all logic_cfg instances (Test.make_grouped ~name:"table2" ~fmt:"%s %s" logic_tests)
  in
  let raw_analog =
    Benchmark.all analog_cfg instances
      (Test.make_grouped ~name:"table2" ~fmt:"%s %s" analog_tests)
  in
  analyze_raw raw_logic @ analyze_raw raw_analog
  |> List.sort (fun a b -> String.compare a.name b.name)

(* The CDM/DDM gap is only a few percent, below Bechamel's run-to-run
   drift for sub-millisecond workloads.  Measure it as a paired ratio:
   strictly alternating runs over the same window, so clock drift and
   heap state affect both engines equally. *)
let paired_cdm_over_ddm ops =
  for _ = 1 to 20 do
    ignore (run_ddm ops);
    ignore (run_cdm ops)
  done;
  let t_ddm = ref 0. and t_cdm = ref 0. in
  for _ = 1 to 400 do
    let t0 = Unix.gettimeofday () in
    ignore (run_ddm ops);
    let t1 = Unix.gettimeofday () in
    ignore (run_cdm ops);
    let t2 = Unix.gettimeofday () in
    t_ddm := !t_ddm +. (t1 -. t0);
    t_cdm := !t_cdm +. (t2 -. t1)
  done;
  !t_cdm /. !t_ddm

let find rows suffix =
  List.find_opt (fun r -> Filename.check_suffix r.name suffix) rows

let ratio rows label num den =
  match (find rows num, find rows den) with
  | Some a, Some b when b.ns_per_run > 0. ->
      Some (label, a.ns_per_run /. b.ns_per_run)
  | (Some _ | None), (Some _ | None) -> None

let run () =
  section "TAB2 -- CPU time (Table 2), via Bechamel";
  let rows = run_benchmarks () in
  Table.print
    (Table.make ~header:[ "benchmark"; "time per simulation" ]
       ~rows:
         (List.map
            (fun r ->
              let ms = r.ns_per_run /. 1e6 in
              [ r.name; Printf.sprintf "%.3f ms" ms ])
            rows));
  let ratios =
    List.filter_map
      (fun (label, num, den) -> ratio rows label num den)
      [
        ("analog/ddm seqA", "seqA/analog", "seqA/halotis-ddm");
        ("analog/ddm seqB", "seqB/analog", "seqB/halotis-ddm");
        ("cdm/ddm seqA", "seqA/halotis-cdm", "seqA/halotis-ddm");
        ("cdm/ddm seqB", "seqB/halotis-cdm", "seqB/halotis-ddm");
      ]
  in
  let paired_a = paired_cdm_over_ddm V.paper_sequence_a in
  let paired_b = paired_cdm_over_ddm V.paper_sequence_b in
  let ratios =
    ratios @ [ ("paired cdm/ddm seqA", paired_a); ("paired cdm/ddm seqB", paired_b) ]
  in
  List.iter (fun (label, r) -> Printf.printf "  %-20s = %.2fx\n" label r) ratios;
  let ratio_of label =
    match List.assoc_opt label ratios with Some r -> r | None -> 0.
  in
  [
    Experiment.make ~exp_id:"TAB2" ~title:"CPU time"
      [
        Experiment.observation
          ~agrees:(ratio_of "analog/ddm seqA" > 50. && ratio_of "analog/ddm seqB" > 50.)
          ~metric:"electrical reference orders of magnitude slower than HALOTIS"
          ~paper:"112.9s vs 0.39s (~290x); 123.0s vs 0.48s (~256x)"
          ~measured:
            (Printf.sprintf "%.0fx (seqA), %.0fx (seqB)" (ratio_of "analog/ddm seqA")
               (ratio_of "analog/ddm seqB"))
          ~note:
            "our reference is a macromodel, not SPICE, so the gap is smaller than \
             against true transistor-level simulation"
          ();
        (let ev kind ops =
           (match kind with `D -> run_ddm ops | `C -> run_cdm ops).Iddm.stats
             .Stats.events_processed
         in
         let da = ev `D V.paper_sequence_a and ca = ev `C V.paper_sequence_a in
         let db = ev `D V.paper_sequence_b and cb = ev `C V.paper_sequence_b in
         Experiment.observation
           ~agrees:(da < ca && db < cb)
           ~metric:"DDM does strictly less work than CDM (fewer events)"
           ~paper:"0.39s vs 0.55s; 0.48s vs 0.76s (CDM slower because more events)"
           ~measured:
             (Printf.sprintf
                "events %d vs %d (seqA), %d vs %d (seqB); paired wall-clock ratio %.2fx/%.2fx"
                da ca db cb
                (ratio_of "paired cdm/ddm seqA")
                (ratio_of "paired cdm/ddm seqB"))
           ~note:
             "per-event cost is engine-identical (see SCALE), so the speedup is the \
              event-count gap: 47-52% for the paper's strongly-inertial library, \
              6-13% for ours -- below wall-clock measurement noise on this host"
           ());
      ];
  ]
