(* Shared plumbing for the experiment harness: the paper's circuit and
   stimuli, engine shorthands, and printing helpers. *)

module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Drive = Halotis_engine.Drive
module Stats = Halotis_engine.Stats
module W = Halotis_wave.Waveform
module D = Halotis_wave.Digital
module T = Halotis_wave.Transition
module DL = Halotis_tech.Default_lib
module DM = Halotis_delay.Delay_model
module Sim = Halotis_analog.Sim
module V = Halotis_stim.Vectors
module Act = Halotis_power.Activity
module Energy = Halotis_power.Energy
module Table = Halotis_report.Table
module Figures = Halotis_report.Figures
module Experiment = Halotis_report.Experiment

let vdd2 = DL.vdd /. 2.

(* Experiment parameters mirroring the paper's evaluation: 4x4 array
   multiplier, one vector every 5 ns, 25 ns horizon. *)
let period = 5000.
let horizon = 25000.
let input_slope = 100.

let multiplier = lazy (G.array_multiplier ~m:4 ~n:4 ())

let mult_drives ops =
  let m = Lazy.force multiplier in
  V.multiplier_drives ~slope:input_slope ~period ~a_bits:m.G.ma_bits ~b_bits:m.G.mb_bits ops

let run_ddm ?(cancellation = true) ops =
  Iddm.run
    (Iddm.config ~cancellation DL.tech)
    (Lazy.force multiplier).G.mult_circuit ~drives:(mult_drives ops)

let run_cdm ops =
  Iddm.run
    (Iddm.config ~delay_kind:DM.Cdm DL.tech)
    (Lazy.force multiplier).G.mult_circuit ~drives:(mult_drives ops)

let run_classic ops =
  Classic.run (Classic.config DL.tech) (Lazy.force multiplier).G.mult_circuit
    ~drives:(mult_drives ops)

let run_analog ?(record_every = 4) ops =
  Sim.run
    (Sim.config ~record_every ~t_stop:horizon DL.tech)
    (Lazy.force multiplier).G.mult_circuit ~drives:(mult_drives ops)

let sequence_label ops = String.concat ", " (List.map (Format.asprintf "%a" V.pp_mult_op) ops)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let product_lanes_of_iddm (r : Iddm.result) =
  let m = Lazy.force multiplier in
  List.mapi
    (fun i sid ->
      Figures.lane_of_waveform ~label:(Printf.sprintf "s%d" i) ~vt:vdd2
        r.Iddm.waveforms.(sid))
    m.G.product_bits
  |> List.rev

let product_lanes_of_classic (r : Classic.result) =
  let m = Lazy.force multiplier in
  List.mapi
    (fun i sid ->
      Figures.lane_of_edges ~label:(Printf.sprintf "s%d" i)
        ~initial:r.Classic.initial_levels.(sid) r.Classic.edges.(sid))
    m.G.product_bits
  |> List.rev

let product_lanes_of_analog (r : Sim.result) =
  let m = Lazy.force multiplier in
  List.mapi
    (fun i sid ->
      let tr = r.Sim.traces.(sid) in
      Figures.lane_of_edges ~label:(Printf.sprintf "s%d" i)
        ~initial:(Sim.value_at tr 0. > vdd2)
        (Sim.crossings tr ~vt:vdd2))
    m.G.product_bits
  |> List.rev

let internal_edges_iddm (r : Iddm.result) =
  Array.fold_left
    (fun acc (s : N.signal) ->
      if s.N.is_primary_input then acc
      else acc + D.edge_count r.Iddm.waveforms.(s.N.signal_id) ~vt:vdd2)
    0
    (N.signals r.Iddm.circuit)

let internal_edges_analog (r : Sim.result) =
  Array.fold_left
    (fun acc (s : N.signal) ->
      if s.N.is_primary_input then acc
      else acc + List.length (Sim.crossings r.Sim.traces.(s.N.signal_id) ~vt:vdd2))
    0
    (N.signals r.Sim.circuit)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, t1 -. t0)

let pct_more ~base x =
  if base = 0 then 0. else 100. *. float_of_int (x - base) /. float_of_int base
