(* ABLATION — design-choice studies beyond the paper's tables:

   1. the Fig. 4 event-cancellation rule switched off (pure transport
      of every threshold crossing): quantifies how much of the IDDM
      accuracy comes from the "delete Ej-1" branch;
   2. technology sensitivity: the same workload on the fast library,
      showing the CDM overestimation is a robust shape, not a
      parameter accident;
   3. degradation strength: scaling the eq. 2 parameters shows the
      CDM-vs-DDM event gap growing monotonically with how inertial the
      library is — which is why the paper's 47-52 % and our 6-13 % are
      the same phenomenon at different operating points. *)

open Common
module Tech = Halotis_tech.Tech

(* A technology whose degradation tau (eq. 2) is scaled by [k]; k = 0
   turns degradation off entirely (tau -> ~0 never happens: we scale A
   and B, so k small means weak inertia, k large strong). *)
let scaled_degradation_tech k =
  let lookup kind =
    let gt = Tech.gate_tech DL.tech kind in
    let scale (p : Tech.edge_params) =
      { p with Tech.ddm_a = p.Tech.ddm_a *. k; ddm_b = p.Tech.ddm_b *. k }
    in
    { gt with Tech.rise = scale gt.Tech.rise; fall = scale gt.Tech.fall }
  in
  Tech.create
    ~name:(Printf.sprintf "scaled-%.1fx" k)
    ~vdd:(Tech.vdd DL.tech)
    ~wire_cap_per_fanout:(Tech.wire_cap_per_fanout DL.tech)
    ~lookup ()

let run () =
  section "ABLATION -- cancellation rule and technology sensitivity";
  (* 1. cancellation off *)
  let rows, cancel_obs =
    List.split
      (List.map
         (fun (label, ops) ->
           let on = run_ddm ops in
           let off = run_ddm ~cancellation:false ops in
           let eon = internal_edges_iddm on and eoff = internal_edges_iddm off in
           let row =
             [
               label;
               string_of_int on.Iddm.stats.Stats.events_processed;
               string_of_int off.Iddm.stats.Stats.events_processed;
               string_of_int on.Iddm.stats.Stats.events_filtered;
               string_of_int eon;
               string_of_int eoff;
             ]
           in
           let obs =
             Experiment.observation
               ~agrees:(off.Iddm.stats.Stats.events_processed
                        >= on.Iddm.stats.Stats.events_processed)
               ~metric:(Printf.sprintf "cancellation off processes >= events (%s)" label)
               ~paper:"(ablation, not in paper)"
               ~measured:
                 (Printf.sprintf "on=%d off=%d" on.Iddm.stats.Stats.events_processed
                    off.Iddm.stats.Stats.events_processed)
               ()
           in
           (row, obs))
         [ ("seq A", V.paper_sequence_a); ("seq B", V.paper_sequence_b) ])
  in
  print_endline "Fig. 4 cancellation rule:";
  Table.print
    (Table.make
       ~header:
         [ "sequence"; "events (on)"; "events (off)"; "filtered (on)"; "edges (on)"; "edges (off)" ]
       ~rows);
  (* 2. technology sensitivity *)
  let m = Lazy.force multiplier in
  let run_with tech kind =
    Iddm.run (Iddm.config ~delay_kind:kind tech) m.G.mult_circuit
      ~drives:(mult_drives V.paper_sequence_b)
  in
  let tech_rows, tech_obs =
    List.split
      (List.map
         (fun (label, tech) ->
           let d = run_with tech DM.Ddm and c = run_with tech DM.Cdm in
           let over =
             pct_more ~base:d.Iddm.stats.Stats.events_processed
               c.Iddm.stats.Stats.events_processed
           in
           ( [
               label;
               string_of_int d.Iddm.stats.Stats.events_processed;
               string_of_int c.Iddm.stats.Stats.events_processed;
               Printf.sprintf "+%.0f%%" over;
             ],
             Experiment.observation ~agrees:(over > 0.)
               ~metric:(Printf.sprintf "CDM > DDM events on %s library" label)
               ~paper:"(robustness ablation)"
               ~measured:(Printf.sprintf "+%.0f%%" over) () ))
         [
           ("default", DL.tech);
           ("fast", DL.fast_tech);
           ( "alpha-power",
             Halotis_cmos.Alpha_power.(
               to_tech ~base:DL.tech default_inverter ~sized:default_sizing) );
         ])
  in
  print_endline
    "technology sensitivity (sequence B; alpha-power = analytical Sakurai-Newton CDM):";
  Table.print
    (Table.make ~header:[ "library"; "events DDM"; "events CDM"; "overstatement" ]
       ~rows:tech_rows);
  (* 3. degradation-strength sweep *)
  let m = Lazy.force multiplier in
  let gap k =
    let run kind =
      Iddm.run
        (Iddm.config ~delay_kind:kind (scaled_degradation_tech k))
        m.G.mult_circuit
        ~drives:(mult_drives V.paper_sequence_b)
    in
    let d = run DM.Ddm and c = run DM.Cdm in
    ( d.Iddm.stats.Stats.events_processed,
      c.Iddm.stats.Stats.events_processed,
      pct_more ~base:d.Iddm.stats.Stats.events_processed
        c.Iddm.stats.Stats.events_processed )
  in
  let ks = [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let sweep = List.map (fun k -> (k, gap k)) ks in
  print_endline "degradation strength (tau scaling, sequence B):";
  Table.print
    (Table.make
       ~header:[ "tau scale"; "events DDM"; "events CDM"; "CDM overstatement" ]
       ~rows:
         (List.map
            (fun (k, (d, c, over)) ->
              [
                Printf.sprintf "%.2fx" k;
                string_of_int d;
                string_of_int c;
                Printf.sprintf "+%.0f%%" over;
              ])
            sweep));
  let overs = List.map (fun (_, (_, _, over)) -> over) sweep in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1. && non_decreasing rest
    | [ _ ] | [] -> true
  in
  let strength_obs =
    [
      Experiment.observation
        ~agrees:(non_decreasing overs)
        ~metric:"CDM overstatement grows with degradation strength"
        ~paper:"explains 47-52% (strong library) vs our 6-13% (calibrated weak library)"
        ~measured:
          (String.concat ", "
             (List.map2 (fun k o -> Printf.sprintf "%.2fx->+%.0f%%" k o) ks overs))
        ();
    ]
  in
  [
    Experiment.make ~exp_id:"ABL"
      ~title:"Ablations (cancellation rule, library & degradation-strength sensitivity)"
      (cancel_obs @ tech_obs @ strength_obs);
  ]
