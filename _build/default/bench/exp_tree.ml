(* TREE — array vs Wallace-tree multiplier glitch activity (extension).

   The paper's motivation cites glitch-power estimation [refs 6, 7];
   the canonical architectural question there is array vs tree.  This
   experiment runs the same operand sequence through the Fig. 5 array
   and a Wallace tree and measures how much of the switching is hazard
   activity under each delay model. *)

open Common
module Glitch = Halotis_power.Glitch

let measure (mult : G.multiplier) kind ops =
  let drives =
    V.multiplier_drives ~slope:input_slope ~period ~a_bits:mult.G.ma_bits
      ~b_bits:mult.G.mb_bits ops
  in
  let r = Iddm.run (Iddm.config ~delay_kind:kind DL.tech) mult.G.mult_circuit ~drives in
  let act = Act.of_iddm r in
  let glitch = Glitch.classify ~period ~vt:vdd2 r.Iddm.waveforms in
  (act.Act.total_transitions, glitch.Glitch.glitch_pulses, r)

let run () =
  section "TREE -- array vs Wallace-tree glitch activity (extension)";
  let array = G.array_multiplier ~m:4 ~n:4 () in
  let tree = G.wallace_multiplier ~m:4 ~n:4 () in
  let ops = V.paper_sequence_b in
  let depth c =
    match Halotis_netlist.Check.depth c with Some d -> d | None -> -1
  in
  Printf.printf "array: %d gates, depth %d | wallace: %d gates, depth %d\n"
    (N.gate_count array.G.mult_circuit)
    (depth array.G.mult_circuit)
    (N.gate_count tree.G.mult_circuit)
    (depth tree.G.mult_circuit);
  let rows, checks =
    List.split
      (List.map
         (fun (label, mult) ->
           let td, gd, rd = measure mult DM.Ddm ops in
           let tc, gc, _ = measure mult DM.Cdm ops in
           ignore rd;
           ( [
               label;
               string_of_int td;
               string_of_int gd;
               string_of_int tc;
               string_of_int gc;
               Printf.sprintf "+%.0f%%" (pct_more ~base:td tc);
             ],
             (gd, gc) ))
         [ ("array (Fig. 5)", array); ("wallace tree", tree) ])
  in
  Table.print
    (Table.make
       ~header:
         [ "architecture"; "edges DDM"; "glitches DDM"; "edges CDM"; "glitches CDM"; "CDM overst." ]
       ~rows);
  let (array_gd, array_gc), (tree_gd, tree_gc) =
    match checks with [ a; b ] -> (a, b) | _ -> assert false
  in
  [
    Experiment.make ~exp_id:"TREE" ~title:"Array vs Wallace-tree glitch activity (extension)"
      [
        Experiment.observation
          ~agrees:(array_gc >= array_gd && tree_gc >= tree_gd)
          ~metric:"degradation removes hazard pulses in both architectures"
          ~paper:"(extension of Table 1's mechanism)"
          ~measured:
            (Printf.sprintf "array glitches %d->%d, tree %d->%d (CDM -> DDM)" array_gc
               array_gd tree_gc tree_gd)
          ();
        Experiment.observation
          ~metric:"architecture comparison under IDDM"
          ~paper:"(no paper value; glitch-power refs 6-7 motivate it)"
          ~measured:
            (Printf.sprintf "DDM hazard pulses: array %d vs tree %d" array_gd tree_gd)
          ();
      ];
  ]
