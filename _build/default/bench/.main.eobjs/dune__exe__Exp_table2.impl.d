bench/exp_table2.ml: Analyze Bechamel Benchmark Common Experiment Filename Gc Hashtbl Iddm Instance List Measure Printf Staged Stats String Table Test Time Toolkit Unix V
