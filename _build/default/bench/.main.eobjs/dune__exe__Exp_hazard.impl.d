bench/exp_hazard.ml: Array Common D DL DM Drive Experiment Format G Halotis_sta Halotis_util Hashtbl Iddm Lazy List N Printf
