bench/exp_sweep.ml: Classic Common D DL DM Drive Experiment Float G Iddm Lazy List N Printf Sim Table
