bench/exp_fig1.ml: Array Classic Common D DL Drive Experiment Figures G Iddm List N Printf Sim String Table
