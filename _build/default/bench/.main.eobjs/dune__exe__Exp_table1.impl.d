bench/exp_table1.ml: Act Common Experiment Iddm List Printf Stats Table V
