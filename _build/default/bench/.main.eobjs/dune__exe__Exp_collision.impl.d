bench/exp_collision.ml: Common D DL DM Drive Experiment Float Halotis_logic Halotis_netlist Iddm List Printf Sim Table
