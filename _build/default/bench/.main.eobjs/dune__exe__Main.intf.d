bench/main.mli:
