bench/exp_vdd.ml: Common D DL Drive Experiment Float G Halotis_cmos Halotis_tech Iddm Lazy List N Printf Sim String Table
