bench/exp_mult8.ml: Array Common D DL DM Experiment Format G Iddm List N Printf Stats V
