bench/exp_fig6_7.ml: Array Common D Experiment Figures Format G Halotis_wave Iddm Lazy List Printf Sim V
