bench/exp_scaling.ml: Classic Common DL Drive Experiment G Gc Halotis_util Iddm List N Printf Stats Table Unix
