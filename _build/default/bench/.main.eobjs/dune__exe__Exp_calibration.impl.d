bench/exp_calibration.ml: Array Common D DL Drive Experiment G Halotis_delay Halotis_logic Halotis_tech Lazy List N Printf Sim Table
