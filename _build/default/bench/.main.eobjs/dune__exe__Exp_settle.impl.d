bench/exp_settle.ml: Array Common D DL DM Drive Experiment Float G Halotis_sta Halotis_util Iddm Lazy List N Printf Table
