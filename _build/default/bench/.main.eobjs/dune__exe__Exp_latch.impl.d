bench/exp_latch.ml: Array Bool Classic Common D DL Drive Experiment G Iddm List Printf Sim Table
