bench/exp_setup.ml: Array Common D DL Drive Experiment Float G Iddm List Printf Sim Table
