bench/exp_ablation.ml: Common DL DM Experiment G Halotis_cmos Halotis_tech Iddm Lazy List Printf Stats String Table V
