bench/exp_tree.ml: Act Common DL DM Experiment G Halotis_netlist Halotis_power Iddm List N Printf Table V
