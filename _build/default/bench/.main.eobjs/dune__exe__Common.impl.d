bench/common.ml: Array Format Halotis_analog Halotis_delay Halotis_engine Halotis_netlist Halotis_power Halotis_report Halotis_stim Halotis_tech Halotis_wave Lazy List Printf String Unix
