(* SETUP — flip-flop capture boundary and metastability onset
   (extension).

   The paper motivates accurate glitch timing with "the triggering of
   metastable behavior in latches" (refs [9-12]).  We sweep the data
   edge of a master-slave flip-flop towards its clock edge and watch:

   - both the IDDM engine and the analog reference show a capture
     boundary (enough setup: the new value is taken; too late: the old
     value survives);
   - in the analog reference the output's resolution time grows sharply
     near the boundary — the onset of metastable behaviour a pure
     digital model cannot express. *)

open Common

let t_clk = 10_000.

let run_offset offset =
  let f = G.dff () in
  let c = f.G.dff_circuit in
  let clk = Drive.of_levels ~slope:input_slope ~initial:false [ (t_clk, true) ] in
  (* d starts high and falls [offset] before the clock edge *)
  let d = Drive.of_levels ~slope:input_slope ~initial:true [ (t_clk -. offset, false) ] in
  let drives = [ (f.G.dff_clk, clk); (f.G.dff_d, d) ] in
  let rd = Iddm.run (Iddm.config DL.tech) c ~drives in
  let ra = Sim.run (Sim.config ~t_stop:(t_clk +. 8000.) DL.tech) c ~drives in
  let captured_iddm =
    not (D.level_at rd.Iddm.waveforms.(f.G.dff_q) ~vt:vdd2 (t_clk +. 7000.))
  in
  let q_trace = ra.Sim.traces.(f.G.dff_q) in
  let captured_analog = Sim.value_at q_trace (t_clk +. 7900.) < vdd2 in
  (* resolution time: last threshold crossing of q after the edge *)
  let resolution =
    List.fold_left
      (fun acc (e : D.edge) -> if e.D.at > t_clk then Float.max acc (e.D.at -. t_clk) else acc)
      0.
      (Sim.crossings q_trace ~vt:vdd2)
  in
  (captured_iddm, captured_analog, resolution)

let offsets = [ 700.; 500.; 400.; 300.; 250.; 200.; 150.; 100.; 50.; 0.; -100. ]

let run () =
  section "SETUP -- flip-flop capture boundary and metastability onset (extension)";
  Printf.printf "d falls OFFSET ps before the clock edge; did the flip-flop capture the 0?\n";
  let results = List.map (fun o -> (o, run_offset o)) offsets in
  Table.print
    (Table.make
       ~header:[ "setup offset"; "IDDM captures"; "analog captures"; "analog resolution" ]
       ~rows:
         (List.map
            (fun (o, (ci, ca, res)) ->
              [
                Printf.sprintf "%.0f ps" o;
                (if ci then "yes" else "no");
                (if ca then "yes" else "no");
                Printf.sprintf "%.0f ps" res;
              ])
            results));
  let boundary which =
    (* smallest offset that still captures *)
    List.fold_left
      (fun acc (o, (ci, ca, _)) -> if (match which with `I -> ci | `A -> ca) then Float.min acc o else acc)
      infinity results
  in
  let bi = boundary `I and ba = boundary `A in
  (* resolution near the boundary vs far from it *)
  let res_at o =
    match List.assoc_opt o results with Some (_, _, r) -> r | None -> 0.
  in
  let res_far = res_at 700. in
  let res_peak = List.fold_left (fun acc (_, (_, _, r)) -> Float.max acc r) 0. results in
  Printf.printf
    "capture boundary: iddm %.0f ps, analog %.0f ps; analog resolution %.0f ps far from \
     the edge, peaking at %.0f ps near it\n"
    bi ba res_far res_peak;
  [
    Experiment.make ~exp_id:"SETUP" ~title:"Capture boundary & metastability onset (extension)"
      [
        Experiment.observation
          ~agrees:(Float.is_finite bi && Float.is_finite ba && Float.abs (bi -. ba) <= 250.)
          ~metric:"IDDM capture boundary tracks the electrical one"
          ~paper:"(accuracy near the setup window)"
          ~measured:(Printf.sprintf "iddm %.0f ps vs analog %.0f ps" bi ba)
          ();
        Experiment.observation
          ~agrees:(res_peak > res_far +. 300.)
          ~metric:"resolution time grows near the boundary (metastability onset)"
          ~paper:"triggering of metastable behavior in latches (refs [9-12])"
          ~measured:
            (Printf.sprintf "%.0f ps far from the edge vs %.0f ps at the peak" res_far
               res_peak)
          ();
      ];
  ]
