(* Glitch collisions and stored state: the paper motivates the IDDM
   with race conditions and the triggering of latches.  Here a degraded
   runt resets the latch behind a low-VT sense inverter while the latch
   behind a high-VT sense keeps its state — and the classical inertial
   model, which filters at the driver, wrongly resets both.

   Run with:  dune exec examples/latch_trigger.exe *)

module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Drive = Halotis_engine.Drive
module Digital = Halotis_wave.Digital
module Figures = Halotis_report.Figures
module DL = Halotis_tech.Default_lib

let width = 250.

let () =
  let lg = G.latch_glitch_circuit () in
  let drives = [ (lg.G.lg_in, Drive.pulse ~slope:100. ~at:1000. ~width ()) ] in
  Printf.printf "glitch source: %.0f ps input pulse, degraded through two inverters\n" width;
  Printf.printf "both latches start with q = 1 (set)\n\n";

  let r = Iddm.run (Iddm.config DL.tech) lg.G.lg_circuit ~drives in
  let vt = DL.vdd /. 2. in
  let state sid = if Digital.final_level r.Iddm.waveforms.(sid) ~vt then "held" else "FLIPPED" in
  Printf.printf "HALOTIS-DDM:  low-VT latch %s, high-VT latch %s\n" (state lg.G.lg_q_low)
    (state lg.G.lg_q_high);

  let rc = Classic.run (Classic.config DL.tech) lg.G.lg_circuit ~drives in
  let cstate sid = if rc.Classic.final_levels.(sid) then "held" else "FLIPPED" in
  Printf.printf "classical:    low-VT latch %s, high-VT latch %s   <- state error on the \
                 high-VT latch\n\n"
    (cstate lg.G.lg_q_low) (cstate lg.G.lg_q_high);

  print_endline "IDDM view (glitch node and both latch outputs):";
  let lanes =
    List.map
      (fun name -> Figures.lane_of_waveform ~label:name ~vt (Iddm.waveform r name))
      [ "in"; "glitch"; "r_n_low"; "ll_q"; "r_n_high"; "lh_q" ]
  in
  print_string (Figures.timing_diagram ~width:80 ~t0:500. ~t1:4500. lanes)
