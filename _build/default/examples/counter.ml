(* A sequential circuit end-to-end: a 3-bit ripple counter made of
   master-slave flip-flops, clocked from a primary input.  Feedback is
   handled by the engines' relaxation DC solver; the event loop does
   the rest.

   Run with:  dune exec examples/counter.exe *)

module G = Halotis_netlist.Generators
module N = Halotis_netlist.Netlist
module Iddm = Halotis_engine.Iddm
module Digital = Halotis_wave.Digital
module Figures = Halotis_report.Figures
module DL = Halotis_tech.Default_lib

let bits = 3
let period = 5000.
let pulses = 8

let () =
  let c = G.ripple_counter ~bits () in
  Format.printf "%a@." N.pp_summary c.G.ctr_circuit;
  let clk = Halotis_stim.Vectors.clock ~slope:100. ~period ~start:2000. ~pulses () in
  let r = Iddm.run (Iddm.config DL.tech) c.G.ctr_circuit ~drives:[ (c.G.ctr_clk, clk) ] in
  Format.printf "stats: %a@.@." Halotis_engine.Stats.pp r.Iddm.stats;

  let vt = DL.vdd /. 2. in
  let horizon = 2000. +. (period *. float_of_int pulses) in
  let lanes =
    Figures.lane_of_waveform ~label:"clk" ~vt r.Iddm.waveforms.(c.G.ctr_clk)
    :: List.mapi
         (fun i s ->
           Figures.lane_of_waveform ~label:(Printf.sprintf "q%d" i) ~vt r.Iddm.waveforms.(s))
         c.G.ctr_q
  in
  print_string (Figures.timing_diagram ~width:100 ~t0:0. ~t1:horizon lanes);

  let value t =
    List.fold_left
      (fun acc (i, s) ->
        if Digital.level_at r.Iddm.waveforms.(s) ~vt t then acc lor (1 lsl i) else acc)
      0
      (List.mapi (fun i s -> (i, s)) c.G.ctr_q)
  in
  print_newline ();
  List.iter
    (fun k ->
      Printf.printf "after %d pulse%s: %d\n" k
        (if k = 1 then "" else "s")
        (value (1900. +. (period *. float_of_int k))))
    (List.init (pulses + 1) Fun.id)
