(* Working with the HNL netlist format: parse a circuit from text,
   check it structurally, simulate it, and print it back.

   Run with:  dune exec examples/netlist_io.exe *)

module N = Halotis_netlist.Netlist
module Hnl = Halotis_netlist.Hnl
module Check = Halotis_netlist.Check
module Iddm = Halotis_engine.Iddm
module Drive = Halotis_engine.Drive
module Digital = Halotis_wave.Digital
module DL = Halotis_tech.Default_lib

let source =
  {|# a 2-bit equality comparator: eq = (a0 xnor b0) and (a1 xnor b1)
circuit eq2
input a0 a1 b0 b1
output eq
gate x0 xnor2 m0 a0 b0
gate x1 xnor2 m1 a1 b1
gate g  and2  eq m0 m1
end
|}

let () =
  let circuit =
    match Hnl.parse_string source with
    | Ok c -> c
    | Error e -> Format.kasprintf failwith "parse error: %a" Hnl.pp_error e
  in
  Format.printf "parsed: %a@." N.pp_summary circuit;

  (* structural checks *)
  (match Check.structural_issues circuit with
  | [] -> print_endline "structure: clean"
  | issues ->
      List.iter (fun i -> Format.printf "issue: %a@." (Check.pp_issue circuit) i) issues);
  (match Check.depth circuit with
  | Some d -> Printf.printf "logic depth: %d\n" d
  | None -> print_endline "combinational cycle!");

  (* simulate: a = 2 constant, b sweeps 0..3 every 3 ns *)
  let sid name = match N.find_signal circuit name with Some s -> s | None -> assert false in
  let bit v i = (v lsr i) land 1 = 1 in
  let b_values = [ 0; 1; 2; 3 ] in
  let drives =
    [
      (sid "a0", Drive.constant false);
      (sid "a1", Drive.constant true);
      (sid "b0",
       Drive.of_levels ~slope:100. ~initial:(bit 0 0)
         (List.mapi (fun k v -> (float_of_int (k + 1) *. 3000., bit v 0)) (List.tl b_values)));
      (sid "b1",
       Drive.of_levels ~slope:100. ~initial:(bit 0 1)
         (List.mapi (fun k v -> (float_of_int (k + 1) *. 3000., bit v 1)) (List.tl b_values)));
    ]
  in
  let r = Iddm.run (Iddm.config DL.tech) circuit ~drives in
  let vt = DL.vdd /. 2. in
  List.iteri
    (fun k v ->
      let t = (float_of_int (k + 1) *. 3000.) -. 1. in
      let eq = Digital.level_at (Iddm.waveform r "eq") ~vt t in
      Printf.printf "a=2 b=%d -> eq=%b%s\n" v eq (if eq = (v = 2) then "" else "  WRONG"))
    b_values;

  (* print the circuit back *)
  print_newline ();
  print_endline "round-tripped HNL:";
  print_string (Hnl.to_string circuit)
