(* Static timing and hazard analysis next to dynamic simulation: the
   two adder architectures compute the same function with different
   timing profiles, and the static tools see it.

   Run with:  dune exec examples/timing_analysis.exe *)

module G = Halotis_netlist.Generators
module N = Halotis_netlist.Netlist
module Equiv = Halotis_netlist.Equiv
module Sta = Halotis_sta.Sta
module Hazard = Halotis_sta.Hazard
module Iddm = Halotis_engine.Iddm
module Drive = Halotis_engine.Drive
module Digital = Halotis_wave.Digital
module DL = Halotis_tech.Default_lib

let settle_time (adder : G.adder) =
  (* worst observed settle over a few hard vectors: carry ripple *)
  let c = adder.G.adder_circuit in
  let vectors = [ (0b1111, 0b0001); (0b0111, 0b1001); (0b1010, 0b0110) ] in
  List.fold_left
    (fun acc (x, y) ->
      let bits v i = (v lsr i) land 1 = 1 in
      let drives =
        List.mapi (fun i s -> (s, Drive.of_levels ~slope:100. ~initial:false [ (0., bits x i) ]))
          adder.G.a_bits
        @ List.mapi
            (fun i s -> (s, Drive.of_levels ~slope:100. ~initial:false [ (0., bits y i) ]))
            adder.G.b_bits
      in
      let r = Iddm.run (Iddm.config DL.tech) c ~drives in
      Array.fold_left
        (fun acc w ->
          List.fold_left (fun acc (e : Digital.edge) -> Float.max acc e.Digital.at) acc
            (Digital.edges w ~vt:2.5))
        acc r.Iddm.waveforms)
    0. vectors

let () =
  let rca = G.ripple_carry_adder ~bits:4 () in
  let cla = G.carry_lookahead_adder ~bits:4 () in

  (* same function... *)
  Format.printf "equivalence: %a@."
    Equiv.pp_verdict
    (Equiv.check rca.G.adder_circuit cla.G.adder_circuit);

  (* ...different static timing *)
  let report label (adder : G.adder) =
    let c = adder.G.adder_circuit in
    let t = Sta.analyze DL.tech c in
    let h = Hazard.analyze DL.tech c in
    Printf.printf "\n%s: %d gates, depth %s\n" label (N.gate_count c)
      (match Halotis_netlist.Check.depth c with Some d -> string_of_int d | None -> "?");
    Printf.printf "  STA worst arrival: %.0f ps\n" (Sta.worst t);
    Printf.printf "  hazard sites: %d (%d timing)\n"
      (List.length (Hazard.sites h))
      (List.length (Hazard.timing_sites h));
    Printf.printf "  observed settle on carry-ripple vectors: %.0f ps\n" (settle_time adder);
    print_endline "  critical path:";
    Format.printf "%a" (Sta.pp_path c) (Sta.critical_path t)
  in
  report "ripple-carry adder" rca;
  report "carry-lookahead adder" cla;

  (* dynamic path measurement: walk a one through every input of the
     CLA and measure input-edge -> output-edge latencies *)
  let measure_paths (adder : G.adder) =
    let c = adder.G.adder_circuit in
    let all_latencies =
      List.concat_map
        (fun input ->
          let drives =
            (input, Drive.pulse ~slope:100. ~at:1000. ~width:2000. ())
            :: List.filter_map
                 (fun s -> if s = input then None else Some (s, Drive.constant false))
                 (adder.G.a_bits @ adder.G.b_bits)
          in
          let r = Iddm.run (Iddm.config DL.tech) c ~drives in
          let cause = Digital.edges r.Iddm.waveforms.(input) ~vt:2.5 in
          List.concat_map
            (fun out ->
              Halotis_wave.Measure.latencies ~cause
                ~response:(Digital.edges r.Iddm.waveforms.(out) ~vt:2.5)
                ())
            (N.primary_outputs c))
        (adder.G.a_bits @ adder.G.b_bits)
    in
    Halotis_wave.Measure.stats all_latencies
  in
  print_newline ();
  (match measure_paths cla with
  | Some s ->
      Format.printf "CLA walking-ones path latencies: %a@." Halotis_wave.Measure.pp_stats s;
      let bound = Sta.worst (Sta.analyze DL.tech cla.G.adder_circuit) in
      Printf.printf "(all below the %.0f ps STA bound: %b)\n" bound
        (s.Halotis_wave.Measure.max_ps <= bound)
  | None -> print_endline "no paths measured");
  print_endline
    "\nThe CLA buys a flatter arrival profile with wider multi-input gates; the STA\n\
     bound always sits above the observed settle time (a property the test suite\n\
     checks on random circuits)."
