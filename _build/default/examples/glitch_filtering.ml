(* The paper's Fig. 1 scenario, end to end: a degraded pulse reaches a
   low-threshold gate but not a high-threshold one driven by the very
   same signal — something a classical inertial-delay simulator cannot
   express, because it filters pulses at the *driver*.

   Run with:  dune exec examples/glitch_filtering.exe *)

module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Drive = Halotis_engine.Drive
module Digital = Halotis_wave.Digital
module Waveform = Halotis_wave.Waveform
module Figures = Halotis_report.Figures
module Sim = Halotis_analog.Sim
module DL = Halotis_tech.Default_lib

let width = 225.

let () =
  let f = G.fig1_circuit () in
  (* g1's input threshold is 1.5 V, g2's is 4.0 V; both watch out0. *)
  let drives = [ (f.G.sig_in, Drive.pulse ~slope:100. ~at:1000. ~width ()) ] in

  Printf.printf "input pulse: %.0f ps wide\n\n" width;

  (* IDDM: per-input thresholds decide who sees the runt. *)
  let r = Iddm.run (Iddm.config DL.tech) f.G.circuit ~drives in
  let vt = DL.vdd /. 2. in
  let runt_peaks =
    Digital.runts (Iddm.waveform r "out0")
    |> List.map (fun (ru : Digital.runt) -> ru.Digital.peak)
  in
  Printf.printf "IDDM: out0 runt peak(s): %s V\n"
    (String.concat ", " (List.map (Printf.sprintf "%.2f") runt_peaks));
  let count name = Digital.edge_count (Iddm.waveform r name) ~vt in
  Printf.printf "IDDM: out1c edges = %d (g1, VT 1.5 V)  |  out2c edges = %d (g2, VT 4.0 V)\n"
    (count "out1c") (count "out2c");

  (* The electrical reference agrees. *)
  let ra = Sim.run (Sim.config ~t_stop:6000. DL.tech) f.G.circuit ~drives in
  Printf.printf "analog: out1c edges = %d  |  out2c edges = %d\n"
    (List.length (Sim.edges ra "out1c"))
    (List.length (Sim.edges ra "out2c"));

  (* The classical inertial model treats both branches identically. *)
  let rc = Classic.run (Classic.config DL.tech) f.G.circuit ~drives in
  Printf.printf "classical: out1c edges = %d  |  out2c edges = %d  <- cannot discriminate\n\n"
    (List.length (Classic.edges_of_name rc "out1c"))
    (List.length (Classic.edges_of_name rc "out2c"));

  (* Show the runt against the two thresholds. *)
  let tr = Sim.trace ra "out0" in
  print_endline "out0 (analog reference; '*' marks the waveform, 5 rows = 0..5 V):";
  print_string
    (Figures.voltage_lane ~width:80 ~rows:5 ~t0:800. ~t1:3000. ~vdd:DL.vdd ~label:"out0"
       (fun t -> Sim.value_at tr t));
  print_endline "-> the runt tops out between VT1 = 1.5 V and VT2 = 4.0 V.";

  print_newline ();
  print_endline "IDDM timing diagram:";
  let lanes =
    List.map
      (fun n -> Figures.lane_of_waveform ~label:n ~vt (Iddm.waveform r n))
      [ "in"; "out0"; "out1"; "out1c"; "out2"; "out2c" ]
  in
  print_string (Figures.timing_diagram ~width:80 ~t0:500. ~t1:4000. lanes)
