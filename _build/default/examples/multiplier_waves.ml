(* The paper's headline workload: the 4x4 carry-save array multiplier
   of Fig. 5 driven through the Fig. 6 and Fig. 7 operand sequences,
   simulated with HALOTIS-DDM, HALOTIS-CDM and the analog reference.

   Run with:  dune exec examples/multiplier_waves.exe *)

module G = Halotis_netlist.Generators
module N = Halotis_netlist.Netlist
module Iddm = Halotis_engine.Iddm
module Digital = Halotis_wave.Digital
module Vcd = Halotis_wave.Vcd
module Figures = Halotis_report.Figures
module Sim = Halotis_analog.Sim
module DL = Halotis_tech.Default_lib
module DM = Halotis_delay.Delay_model
module V = Halotis_stim.Vectors

let period = 5000.
let horizon = 25000.
let vt = DL.vdd /. 2.

let lanes_of_run m (r : Iddm.result) =
  List.mapi
    (fun i sid ->
      Figures.lane_of_waveform ~label:(Printf.sprintf "s%d" i) ~vt r.Iddm.waveforms.(sid))
    m.G.product_bits
  |> List.rev

let show_sequence m ops =
  Printf.printf "sequence: %s (one vector every %.0f ns)\n"
    (String.concat ", " (List.map (Format.asprintf "%a" V.pp_mult_op) ops))
    (period /. 1000.);
  let drives =
    V.multiplier_drives ~slope:100. ~period ~a_bits:m.G.ma_bits ~b_bits:m.G.mb_bits ops
  in
  let rd = Iddm.run (Iddm.config DL.tech) m.G.mult_circuit ~drives in
  let rc = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) m.G.mult_circuit ~drives in
  print_endline "HALOTIS-DDM:";
  print_string (Figures.timing_diagram ~width:100 ~t0:0. ~t1:horizon (lanes_of_run m rd));
  print_endline "HALOTIS-CDM (watch the extra glitches):";
  print_string (Figures.timing_diagram ~width:100 ~t0:0. ~t1:horizon (lanes_of_run m rc));
  (* settled products *)
  List.iteri
    (fun k op ->
      let t = (float_of_int (k + 1) *. period) -. 1. in
      let product =
        List.fold_left
          (fun acc (i, sid) ->
            if Digital.level_at rd.Iddm.waveforms.(sid) ~vt t then acc lor (1 lsl i) else acc)
          0
          (List.mapi (fun i s -> (i, s)) m.G.product_bits)
      in
      Format.printf "  %a -> %3d (expected %3d) %s@." V.pp_mult_op op product
        (V.expected_product op)
        (if product = V.expected_product op then "ok" else "WRONG"))
    ops;
  print_newline ();
  rd

let () =
  let m = G.array_multiplier ~m:4 ~n:4 () in
  Format.printf "%a@.@." N.pp_summary m.G.mult_circuit;
  let rd = show_sequence m V.paper_sequence_a in
  let _ = show_sequence m V.paper_sequence_b in
  (* dump the DDM run of sequence A as VCD *)
  let dumps =
    List.mapi
      (fun i sid ->
        Vcd.of_waveform ~name:(Printf.sprintf "s%d" i) ~vt rd.Iddm.waveforms.(sid))
      m.G.product_bits
  in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "halotis_mult4x4.vcd" in
  Vcd.write_file path dumps;
  Printf.printf "VCD of sequence A written to %s\n" path
