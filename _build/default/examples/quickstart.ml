(* Quickstart: build a tiny circuit, simulate it with the IDDM engine,
   and look at the results three ways (edge list, timing diagram, VCD).

   Run with:  dune exec examples/quickstart.exe *)

module Builder = Halotis_netlist.Builder
module Gate_kind = Halotis_logic.Gate_kind
module Iddm = Halotis_engine.Iddm
module Drive = Halotis_engine.Drive
module Digital = Halotis_wave.Digital
module Vcd = Halotis_wave.Vcd
module Figures = Halotis_report.Figures
module Default_lib = Halotis_tech.Default_lib

let () =
  (* 1. Describe a circuit: y = nand (a, b) buffered through an
     inverter pair. *)
  let b = Builder.create "quickstart" in
  let a = Builder.input b "a" in
  let b_in = Builder.input b "b" in
  let n1 = Builder.signal b "n1" in
  let n2 = Builder.signal b "n2" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g1" ~inputs:[ a; b_in ] ~output:n1 in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g2" ~inputs:[ n1 ] ~output:n2 in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"g3" ~inputs:[ n2 ] ~output:y in
  Builder.mark_output b y;
  let circuit = Builder.finalize b in
  Format.printf "circuit: %a@." Halotis_netlist.Netlist.pp_summary circuit;

  (* 2. Drive the inputs: [a] steps high at 1 ns; [b] carries a pulse. *)
  let drives =
    [
      (a, Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]);
      (b_in, Drive.of_levels ~slope:100. ~initial:true [ (3000., false); (3600., true) ]);
    ]
  in

  (* 3. Simulate with the degradation delay model (the default). *)
  let result = Iddm.run (Iddm.config Default_lib.tech) circuit ~drives in
  Format.printf "stats: %a@.@." Halotis_engine.Stats.pp result.Iddm.stats;

  (* 4a. Edge list of the output. *)
  let vt = Default_lib.vdd /. 2. in
  print_endline "edges on y (threshold VDD/2):";
  List.iter
    (fun e -> Format.printf "  %a@." Digital.pp_edge e)
    (Digital.edges (Iddm.waveform result "y") ~vt);

  (* 4b. ASCII timing diagram of everything. *)
  let lanes =
    List.map
      (fun name -> Figures.lane_of_waveform ~label:name ~vt (Iddm.waveform result name))
      [ "a"; "b"; "n1"; "n2"; "y" ]
  in
  print_newline ();
  print_string (Figures.timing_diagram ~width:80 ~t0:0. ~t1:6000. lanes);

  (* 4c. Export a VCD for a waveform viewer. *)
  let dumps =
    List.map
      (fun name -> Vcd.of_waveform ~name ~vt (Iddm.waveform result name))
      [ "a"; "b"; "n1"; "n2"; "y" ]
  in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "halotis_quickstart.vcd" in
  Vcd.write_file path dumps;
  Printf.printf "\nVCD written to %s\n" path
