(* The characterisation loop: export the built-in technology as a
   Liberty NLDM library, parse it back, fit the linear delay model from
   the tables, and check a simulation under the fitted technology is
   indistinguishable from the original.

   Run with:  dune exec examples/liberty_flow.exe *)

module G = Halotis_netlist.Generators
module N = Halotis_netlist.Netlist
module Iddm = Halotis_engine.Iddm
module Drive = Halotis_engine.Drive
module Digital = Halotis_wave.Digital
module DL = Halotis_tech.Default_lib
module Gate_kind = Halotis_logic.Gate_kind
module Liberty = Halotis_liberty.Liberty
module Fit = Halotis_liberty.Fit
module Writer = Halotis_liberty.Writer

let () =
  (* 1. characterise: sample the linear model onto NLDM tables *)
  let kinds = Gate_kind.all_basic in
  let text = Writer.of_tech DL.tech ~kinds in
  Printf.printf "characterised %d cells into %d bytes of Liberty\n" (List.length kinds)
    (String.length text);

  (* 2. parse and inspect *)
  let lib =
    match Liberty.parse_string text with
    | Ok l -> l
    | Error e -> Format.kasprintf failwith "parse: %a" Liberty.pp_error e
  in
  (match Liberty.find_cell lib "nand2" with
  | Some cell ->
      (match Liberty.delay cell ~rising:true ~pin:"i0" ~slope:100. ~load:15. with
      | Some d -> Printf.printf "nand2 rise delay @ (slope 100 ps, load 15 fF) = %.1f ps\n" d
      | None -> print_endline "nand2 delay lookup failed");
      Printf.printf "nand2 input capacitance: %.1f fF\n"
        (List.assoc "i0" cell.Liberty.input_caps)
  | None -> print_endline "nand2 missing");

  (* 3. fit the linear model back from the tables *)
  let fitted_tech, qualities =
    Fit.to_tech ~base:DL.tech ~kind_of_cell:Fit.default_kind_of_cell lib
  in
  List.iter
    (fun (kind, q) ->
      Printf.printf "  fitted %-6s delay rmse %.3f ps, slope rmse %.3f ps\n"
        (Gate_kind.name kind) q.Fit.delay_rmse q.Fit.slope_rmse)
    qualities;

  (* 4. the fitted technology simulates identically *)
  let m = G.array_multiplier ~m:4 ~n:4 () in
  let drives =
    Halotis_stim.Vectors.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits
      ~b_bits:m.G.mb_bits Halotis_stim.Vectors.paper_sequence_a
  in
  let r0 = Iddm.run (Iddm.config DL.tech) m.G.mult_circuit ~drives in
  let r1 = Iddm.run (Iddm.config fitted_tech) m.G.mult_circuit ~drives in
  let edges (r : Iddm.result) =
    Array.fold_left
      (fun acc w -> acc + Digital.edge_count w ~vt:(DL.vdd /. 2.))
      0 r.Iddm.waveforms
  in
  Printf.printf "\nmultiplier run: %d edges under the original library, %d under the fitted one\n"
    (edges r0) (edges r1);
  print_endline
    (if edges r0 = edges r1 then "-> identical, as expected for an exactly recovered model"
     else "-> DIFFER (unexpected)")
