examples/latch_trigger.mli:
