examples/quickstart.mli:
