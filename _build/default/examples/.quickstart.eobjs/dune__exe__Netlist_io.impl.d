examples/netlist_io.ml: Format Halotis_engine Halotis_netlist Halotis_tech Halotis_wave List Printf
