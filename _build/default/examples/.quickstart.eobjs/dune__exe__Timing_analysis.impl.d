examples/timing_analysis.ml: Array Float Format Halotis_engine Halotis_netlist Halotis_sta Halotis_tech Halotis_wave List Printf
