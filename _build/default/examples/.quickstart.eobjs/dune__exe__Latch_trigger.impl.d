examples/latch_trigger.ml: Array Halotis_engine Halotis_netlist Halotis_report Halotis_tech Halotis_wave List Printf
