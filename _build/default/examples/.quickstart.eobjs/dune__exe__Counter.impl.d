examples/counter.ml: Array Format Fun Halotis_engine Halotis_netlist Halotis_report Halotis_stim Halotis_tech Halotis_wave List Printf
