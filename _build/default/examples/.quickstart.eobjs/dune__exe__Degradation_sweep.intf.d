examples/degradation_sweep.mli:
