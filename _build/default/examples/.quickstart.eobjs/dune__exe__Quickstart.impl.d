examples/quickstart.ml: Filename Format Halotis_engine Halotis_logic Halotis_netlist Halotis_report Halotis_tech Halotis_wave List Printf
