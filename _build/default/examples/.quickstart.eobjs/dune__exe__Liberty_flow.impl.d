examples/liberty_flow.ml: Array Format Halotis_engine Halotis_liberty Halotis_logic Halotis_netlist Halotis_stim Halotis_tech Halotis_wave List Printf String
