examples/glitch_filtering.mli:
