examples/power_activity.mli:
