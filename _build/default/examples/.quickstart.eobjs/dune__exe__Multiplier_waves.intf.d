examples/multiplier_waves.mli:
