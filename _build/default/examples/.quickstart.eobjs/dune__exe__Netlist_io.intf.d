examples/netlist_io.mli:
