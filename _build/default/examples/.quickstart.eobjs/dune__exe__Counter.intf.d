examples/counter.mli:
