(* The degradation band (paper Section 2): sweep an input pulse width
   through a two-inverter chain and watch the output pulse shrink
   continuously before it dies — with a CSV export for plotting.

   Run with:  dune exec examples/degradation_sweep.exe *)

module G = Halotis_netlist.Generators
module N = Halotis_netlist.Netlist
module Iddm = Halotis_engine.Iddm
module Drive = Halotis_engine.Drive
module Digital = Halotis_wave.Digital
module Sim = Halotis_analog.Sim
module DL = Halotis_tech.Default_lib
module DM = Halotis_delay.Delay_model
module Table = Halotis_report.Table

let chain = G.inverter_chain ~n:2 ()
let input = match N.find_signal chain "in" with Some s -> s | None -> assert false
let vt = DL.vdd /. 2.

let ddm_width kind w =
  let drives = [ (input, Drive.pulse ~slope:100. ~at:1000. ~width:w ()) ] in
  let r = Iddm.run (Iddm.config ~delay_kind:kind DL.tech) chain ~drives in
  match Digital.pulses (Iddm.waveform r "out") ~vt with
  | [ p ] -> Some p.Digital.width
  | [] | _ :: _ :: _ -> None

let analog_width w =
  let drives = [ (input, Drive.pulse ~slope:100. ~at:1000. ~width:w ()) ] in
  let r = Sim.run (Sim.config ~t_stop:8000. DL.tech) chain ~drives in
  match Sim.edges r "out" with
  | [ e1; e2 ] -> Some (e2.Digital.at -. e1.Digital.at)
  | _ -> None

let () =
  let widths = List.init 37 (fun i -> 80. +. (10. *. float_of_int i)) in
  let cell = function Some w -> Printf.sprintf "%.1f" w | None -> "" in
  let rows =
    List.map
      (fun w ->
        [
          Printf.sprintf "%.0f" w;
          cell (analog_width w);
          cell (ddm_width DM.Ddm w);
          cell (ddm_width DM.Cdm w);
        ])
      widths
  in
  let table =
    Table.make ~header:[ "input_width_ps"; "analog"; "ddm"; "cdm" ] ~rows
  in
  Table.print table;
  let path = Filename.concat (Filename.get_temp_dir_name ()) "halotis_sweep.csv" in
  let oc = open_out path in
  output_string oc (Table.to_csv table);
  close_out oc;
  Printf.printf "\nCSV written to %s (empty cell = pulse eliminated)\n" path;
  (* locate the band *)
  let first p = List.find_opt p widths in
  (match
     ( first (fun w -> ddm_width DM.Ddm w <> None),
       first (fun w ->
           match ddm_width DM.Ddm w with Some o -> o > w -. 25. | None -> false) )
   with
  | Some death, Some normal ->
      Printf.printf
        "DDM: pulses below ~%.0f ps are eliminated; above ~%.0f ps they pass nearly \
         unchanged; in between they come out visibly narrowed -- the degradation band.\n"
        death normal
  | _ -> print_endline "band not located (unexpected)")
