(* Switching activity and glitch power: the practical consequence of
   the degradation model (paper Table 1).  A conventional delay model
   keeps glitches alive that physically die, so it overestimates
   switching activity — and therefore dynamic power.

   Run with:  dune exec examples/power_activity.exe *)

module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module DL = Halotis_tech.Default_lib
module DM = Halotis_delay.Delay_model
module V = Halotis_stim.Vectors
module Act = Halotis_power.Activity
module Energy = Halotis_power.Energy
module Table = Halotis_report.Table

let () =
  let m = G.array_multiplier ~m:4 ~n:4 () in
  let rows =
    List.map
      (fun (label, ops) ->
        let drives =
          V.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits
            ~b_bits:m.G.mb_bits ops
        in
        let rd = Iddm.run (Iddm.config DL.tech) m.G.mult_circuit ~drives in
        let rc =
          Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) m.G.mult_circuit ~drives
        in
        let actd = Act.of_iddm rd and actc = Act.of_iddm rc in
        let ed = Energy.of_report DL.tech m.G.mult_circuit actd in
        let ec = Energy.of_report DL.tech m.G.mult_circuit actc in
        [
          label;
          string_of_int actd.Act.total_transitions;
          string_of_int actc.Act.total_transitions;
          Printf.sprintf "+%.0f%%" (Act.overestimation_pct ~reference:actd ~candidate:actc);
          Printf.sprintf "%.1f pJ" (ed.Energy.total_fj /. 1000.);
          Printf.sprintf "%.1f pJ" (ec.Energy.total_fj /. 1000.);
          Printf.sprintf "+%.0f%%" (Energy.savings_pct ~reference:ed ~candidate:ec);
        ])
      [ ("A: 0x0,7x7,5xA,Ex6,FxF", V.paper_sequence_a);
        ("B: 0x0,FxF,0x0,FxF,0x0", V.paper_sequence_b) ]
  in
  Table.print
    (Table.make
       ~header:
         [ "sequence"; "edges DDM"; "edges CDM"; "overst."; "energy DDM"; "energy CDM"; "overst." ]
       ~rows);
  (* where does the activity live? *)
  let drives =
    V.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits ~b_bits:m.G.mb_bits
      V.paper_sequence_b
  in
  let rd = Iddm.run (Iddm.config DL.tech) m.G.mult_circuit ~drives in
  print_endline "\nbusiest signals (DDM, sequence B):";
  List.iter
    (fun (name, n) -> Printf.printf "  %-12s %d edges\n" name n)
    (Act.busiest (Act.of_iddm rd) ~n:8)
