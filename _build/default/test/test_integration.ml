(* Cross-module integration tests: the three engines against each other
   on the paper's circuits. *)

module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Hnl = Halotis_netlist.Hnl
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Drive = Halotis_engine.Drive
module D = Halotis_wave.Digital
module DL = Halotis_tech.Default_lib
module DM = Halotis_delay.Delay_model
module Sim = Halotis_analog.Sim
module V = Halotis_stim.Vectors
module Act = Halotis_power.Activity

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let sid c n = match N.find_signal c n with Some s -> s | None -> assert false

let mult = lazy (G.array_multiplier ~nand_only:false ~m:4 ~n:4 ())

let drives_for ops =
  let m = Lazy.force mult in
  V.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits ~b_bits:m.G.mb_bits ops

let product_of_levels level_of =
  let m = Lazy.force mult in
  List.fold_left
    (fun acc (i, s) -> if level_of s then acc lor (1 lsl i) else acc)
    0
    (List.mapi (fun i s -> (i, s)) m.G.product_bits)

(* The settled product just before each next vector is applied must be
   the arithmetic product, in *every* engine. *)
let check_settled_products ops level_at_time =
  List.iteri
    (fun k op ->
      let t_settle = (float_of_int (k + 1) *. 5000.) -. 1. in
      let product = product_of_levels (fun s -> level_at_time s t_settle) in
      checki
        (Format.asprintf "op %d (%a) settled" k V.pp_mult_op op)
        (V.expected_product op) product)
    ops

let test_ddm_settles_to_correct_products () =
  let m = Lazy.force mult in
  let ops = V.paper_sequence_a in
  let r = Iddm.run (Iddm.config DL.tech) m.G.mult_circuit ~drives:(drives_for ops) in
  check_settled_products ops (fun s t -> D.level_at r.Iddm.waveforms.(s) ~vt:2.5 t)

let test_cdm_settles_to_correct_products () =
  let m = Lazy.force mult in
  let ops = V.paper_sequence_b in
  let r =
    Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) m.G.mult_circuit
      ~drives:(drives_for ops)
  in
  check_settled_products ops (fun s t -> D.level_at r.Iddm.waveforms.(s) ~vt:2.5 t)

let test_analog_settles_to_correct_products () =
  let m = Lazy.force mult in
  let ops = V.paper_sequence_a in
  let r =
    Sim.run (Sim.config ~t_stop:25000. DL.tech) m.G.mult_circuit ~drives:(drives_for ops)
  in
  check_settled_products ops (fun s t -> Sim.value_at r.Sim.traces.(s) t > 2.5)

let test_random_products_all_engines () =
  let m = Lazy.force mult in
  let pad ops = { V.op_a = 0; op_b = 0 } :: ops in
  List.iter
    (fun op ->
      let ops = pad [ op ] in
      let drives = drives_for ops in
      let rd = Iddm.run (Iddm.config DL.tech) m.G.mult_circuit ~drives in
      let rc = Classic.run (Classic.config DL.tech) m.G.mult_circuit ~drives in
      let p_ddm =
        product_of_levels (fun s -> D.final_level rd.Iddm.waveforms.(s) ~vt:2.5)
      in
      let p_classic = product_of_levels (fun s -> rc.Classic.final_levels.(s)) in
      let expected = V.expected_product op in
      checki (Format.asprintf "ddm %a" V.pp_mult_op op) expected p_ddm;
      checki (Format.asprintf "classic %a" V.pp_mult_op op) expected p_classic)
    (V.random_ops ~bits:4 ~count:10 ~seed:21)

(* Edge-time agreement between DDM and the analog reference on a clean
   step through the chain: same edge count, arrival within 150 ps. *)
let test_ddm_analog_edge_alignment () =
  let c = G.inverter_chain ~n:3 () in
  let drives = [ (sid c "in", Drive.of_levels ~slope:100. ~initial:false [ (500., true) ]) ] in
  let rd = Iddm.run (Iddm.config DL.tech) c ~drives in
  let ra = Sim.run (Sim.config ~t_stop:4000. DL.tech) c ~drives in
  List.iter
    (fun name ->
      let ed = D.edges (Iddm.waveform rd name) ~vt:2.5 in
      let ea = Sim.edges ra name in
      checki (name ^ " edge count") (List.length ea) (List.length ed);
      List.iter2
        (fun (d : D.edge) (a : D.edge) ->
          checkb
            (Printf.sprintf "%s edge within 250ps (d=%.0f a=%.0f)" name d.D.at a.D.at)
            true
            (Float.abs (d.D.at -. a.D.at) < 250.))
        ed ea)
    [ "out1"; "out2"; "out" ]

(* Both engines and the analog reference agree on whether a pulse
   survives, across a coarse width sweep (away from band boundaries). *)
let test_pulse_survival_consensus () =
  let c = G.inverter_chain ~n:2 () in
  List.iter
    (fun (width, expect_alive) ->
      let drives = [ (sid c "in", Drive.pulse ~slope:100. ~at:1000. ~width ()) ] in
      let rd = Iddm.run (Iddm.config DL.tech) c ~drives in
      let ra = Sim.run (Sim.config ~t_stop:8000. DL.tech) c ~drives in
      let alive_d = D.edge_count (Iddm.waveform rd "out") ~vt:2.5 = 2 in
      let alive_a = List.length (Sim.edges ra "out") = 2 in
      checkb (Printf.sprintf "ddm width %.0f" width) expect_alive alive_d;
      checkb (Printf.sprintf "analog width %.0f" width) expect_alive alive_a)
    [ (60., false); (400., true); (800., true) ]

let test_activity_ordering_ddm_cdm () =
  (* DDM switching activity never exceeds CDM on the paper workloads *)
  let m = Lazy.force mult in
  List.iter
    (fun ops ->
      let drives = drives_for ops in
      let rd = Iddm.run (Iddm.config DL.tech) m.G.mult_circuit ~drives in
      let rc = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) m.G.mult_circuit ~drives in
      let ad = (Act.of_iddm rd).Act.total_transitions in
      let ac = (Act.of_iddm rc).Act.total_transitions in
      checkb "DDM <= CDM" true (ad <= ac))
    [ V.paper_sequence_a; V.paper_sequence_b ]

(* Random circuits with random vectored stimuli must settle, in every
   event-driven engine, to the same levels a pure functional evaluation
   of the final vector gives. *)
let static_eval c ~inputs_final =
  let levels = Array.make (N.signal_count c) false in
  Array.iter
    (fun (s : N.signal) ->
      match s.N.constant with
      | Some Halotis_logic.Value.L1 -> levels.(s.N.signal_id) <- true
      | Some (Halotis_logic.Value.L0 | Halotis_logic.Value.X | Halotis_logic.Value.Z) | None
        ->
          ())
    (N.signals c);
  List.iter2 (fun sid v -> levels.(sid) <- v) (N.primary_inputs c) inputs_final;
  (match Halotis_netlist.Check.topological_gates c with
  | Some order ->
      List.iter
        (fun gid ->
          let g = N.gate c gid in
          levels.(g.N.output) <-
            Halotis_logic.Gate_kind.eval_bool g.N.kind
              (Array.map (fun s -> levels.(s)) g.N.fanin))
        order
  | None -> Alcotest.fail "cycle");
  levels

let prop_random_circuits_settle =
  QCheck.Test.make ~name:"random circuits settle to the functional value" ~count:15
    QCheck.(pair (int_range 5 60) (int_range 2 5))
    (fun (gates, inputs) ->
      let c = G.random_combinational ~gates ~inputs ~seed:(gates + (100 * inputs)) () in
      let rng = Halotis_util.Prng.create ~seed:(gates * 7) in
      (* two random vectors, the second applied at 5 ns *)
      let vec () = List.init inputs (fun _ -> Halotis_util.Prng.bool rng) in
      let v1 = vec () and v2 = vec () in
      let drives =
        List.mapi
          (fun i sid ->
            ( sid,
              Drive.of_levels ~slope:100. ~initial:(List.nth v1 i)
                [ (5000., List.nth v2 i) ] ))
          (N.primary_inputs c)
      in
      let expected = static_eval c ~inputs_final:v2 in
      let rd = Iddm.run (Iddm.config DL.tech) c ~drives in
      let rc = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) c ~drives in
      let rcl = Classic.run (Classic.config DL.tech) c ~drives in
      List.for_all
        (fun sid ->
          D.final_level rd.Iddm.waveforms.(sid) ~vt:2.5 = expected.(sid)
          && D.final_level rc.Iddm.waveforms.(sid) ~vt:2.5 = expected.(sid)
          && rcl.Classic.final_levels.(sid) = expected.(sid))
        (N.primary_outputs c))

let test_hnl_roundtrip_preserves_simulation () =
  let f = G.fig1_circuit () in
  let c2 =
    match Hnl.parse_string (Hnl.to_string f.G.circuit) with
    | Ok c -> c
    | Error e -> Alcotest.failf "parse: %a" Hnl.pp_error e
  in
  let drives c = [ (sid c "in", Drive.pulse ~slope:100. ~at:1000. ~width:225. ()) ] in
  let r1 = Iddm.run (Iddm.config DL.tech) f.G.circuit ~drives:(drives f.G.circuit) in
  let r2 = Iddm.run (Iddm.config DL.tech) c2 ~drives:(drives c2) in
  List.iter
    (fun name ->
      checki (name ^ " same edges")
        (D.edge_count (Iddm.waveform r1 name) ~vt:2.5)
        (D.edge_count (Iddm.waveform r2 name) ~vt:2.5))
    [ "out0"; "out1c"; "out2c" ];
  checki "same event count" r1.Iddm.stats.Halotis_engine.Stats.events_processed
    r2.Iddm.stats.Halotis_engine.Stats.events_processed

let test_vcd_export_of_run () =
  let m = Lazy.force mult in
  let r =
    Iddm.run (Iddm.config DL.tech) m.G.mult_circuit ~drives:(drives_for V.paper_sequence_a)
  in
  let dumps =
    List.mapi
      (fun i s ->
        Halotis_wave.Vcd.of_waveform ~name:(Printf.sprintf "s%d" i) ~vt:2.5
          r.Iddm.waveforms.(s))
      m.G.product_bits
  in
  let text = Halotis_wave.Vcd.render dumps in
  checkb "renders" true (String.length text > 200)

let tests =
  [
    ( "integration.products",
      [
        Alcotest.test_case "ddm settles correctly" `Quick test_ddm_settles_to_correct_products;
        Alcotest.test_case "cdm settles correctly" `Quick test_cdm_settles_to_correct_products;
        Alcotest.test_case "analog settles correctly" `Slow
          test_analog_settles_to_correct_products;
        Alcotest.test_case "random ops all engines" `Quick test_random_products_all_engines;
      ] );
    ( "integration.cross_engine",
      [
        Alcotest.test_case "ddm/analog edge alignment" `Quick test_ddm_analog_edge_alignment;
        Alcotest.test_case "pulse survival consensus" `Quick test_pulse_survival_consensus;
        Alcotest.test_case "activity ordering" `Quick test_activity_ordering_ddm_cdm;
        QCheck_alcotest.to_alcotest prop_random_circuits_settle;
      ] );
    ( "integration.io",
      [
        Alcotest.test_case "hnl roundtrip simulation" `Quick
          test_hnl_roundtrip_preserves_simulation;
        Alcotest.test_case "vcd export" `Quick test_vcd_export_of_run;
      ] );
  ]
