(* Tests for the sequential substrate: gated latch, flip-flop, ripple
   counter — all running on the IDDM engine's relaxation DC solver and
   event loop. *)

module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Drive = Halotis_engine.Drive
module D = Halotis_wave.Digital
module DL = Halotis_tech.Default_lib

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let vt = 2.5

let level (r : Iddm.result) sid t = D.level_at r.Iddm.waveforms.(sid) ~vt t

(* --- gated D latch --- *)

let test_latch_transparent () =
  let l = G.d_latch () in
  (* en high: q follows d *)
  let drives =
    [
      (l.G.dl_en, Drive.constant true);
      (l.G.dl_d, Drive.of_levels ~slope:100. ~initial:false [ (2000., true); (6000., false) ]);
    ]
  in
  let r = Iddm.run (Iddm.config DL.tech) l.G.dl_circuit ~drives in
  checkb "follows up" true (level r l.G.dl_q 4000.);
  checkb "follows down" false (level r l.G.dl_q 9000.)

let test_latch_holds () =
  let l = G.d_latch () in
  (* capture 1, close the latch, wiggle d: q must hold *)
  let drives =
    [
      (l.G.dl_en, Drive.of_levels ~slope:100. ~initial:true [ (4000., false) ]);
      ( l.G.dl_d,
        Drive.of_levels ~slope:100. ~initial:false
          [ (2000., true); (6000., false); (8000., true) ] );
    ]
  in
  let r = Iddm.run (Iddm.config DL.tech) l.G.dl_circuit ~drives in
  checkb "captured" true (level r l.G.dl_q 3500.);
  checkb "holds through d wiggles" true (level r l.G.dl_q 9500.);
  checkb "qb is the complement" false (level r l.G.dl_qb 9500.)

(* --- DFF --- *)

let dff_run () =
  let f = G.dff () in
  let clk =
    Drive.of_levels ~slope:100. ~initial:false
      [
        (5000., true); (7500., false);
        (10000., true); (12500., false);
        (15000., true); (17500., false);
      ]
  in
  let d = Drive.of_levels ~slope:100. ~initial:true [ (8000., false); (13000., true) ] in
  (f, Iddm.run (Iddm.config DL.tech) f.G.dff_circuit
       ~drives:[ (f.G.dff_clk, clk); (f.G.dff_d, d) ])

let test_dff_captures_on_rising_edge () =
  let f, r = dff_run () in
  (* edge at 5 ns captures d=1; at 10 ns captures d=0; at 15 ns d=1 *)
  checkb "after edge 1" true (level r f.G.dff_q 6500.);
  checkb "after edge 2" false (level r f.G.dff_q 11500.);
  checkb "after edge 3" true (level r f.G.dff_q 16500.)

let test_dff_ignores_d_between_edges () =
  let f, r = dff_run () in
  (* d falls at 8 ns, between edges: q must not move until 10 ns *)
  checkb "still holds old value" true (level r f.G.dff_q 9500.);
  (* q changes at most once per capturing edge *)
  checkb "no extra activity" true (D.edge_count r.Iddm.waveforms.(f.G.dff_q) ~vt <= 3)

let test_dff_complementary_outputs () =
  let f, r = dff_run () in
  List.iter
    (fun t -> checkb "q = not qb" true (level r f.G.dff_q t <> level r f.G.dff_qb t))
    [ 6500.; 11500.; 16500. ]

(* --- ripple counter --- *)

let counter_run bits pulses period =
  let c = G.ripple_counter ~bits () in
  let clk = Halotis_stim.Vectors.clock ~slope:100. ~period ~start:2000. ~pulses () in
  let r =
    Iddm.run (Iddm.config ~max_events:1_000_000 DL.tech) c.G.ctr_circuit
      ~drives:[ (c.G.ctr_clk, clk) ]
  in
  (c, r)

let counter_value (c : G.counter) (r : Iddm.result) t =
  List.fold_left
    (fun acc (i, s) -> if level r s t then acc lor (1 lsl i) else acc)
    0
    (List.mapi (fun i s -> (i, s)) c.G.ctr_q)

let test_counter_counts () =
  let bits = 3 and pulses = 6 and period = 5000. in
  let c, r = counter_run bits pulses period in
  checkb "terminates" false r.Iddm.truncated;
  let modulus = 1 lsl bits in
  let v0 = counter_value c r 1000. in
  (* this ripple topology decrements once per clock pulse *)
  List.iteri
    (fun k t ->
      let v = counter_value c r t in
      checki (Printf.sprintf "after %d pulses" k) ((v0 - k + (8 * modulus)) mod modulus) v)
    (List.init (pulses + 1) (fun k -> 1900. +. (period *. float_of_int k)))

let test_counter_wraps () =
  (* 1-bit counter = toggle flip-flop; 4 pulses bring it back *)
  let c, r = counter_run 1 4 5000. in
  let v0 = counter_value c r 1000. in
  checki "wrapped" v0 (counter_value c r (1900. +. 20000.));
  checki "toggled" (1 - v0) (counter_value c r (1900. +. 5000.))

let test_counter_classic_agrees () =
  (* the classical engine counts the same way on a clean clock *)
  let bits = 2 and pulses = 3 and period = 5000. in
  let c, r = counter_run bits pulses period in
  let clk = Halotis_stim.Vectors.clock ~slope:100. ~period ~start:2000. ~pulses () in
  let rc =
    Classic.run (Classic.config DL.tech) c.G.ctr_circuit ~drives:[ (c.G.ctr_clk, clk) ]
  in
  let classic_value =
    List.fold_left
      (fun acc (i, s) -> if rc.Classic.final_levels.(s) then acc lor (1 lsl i) else acc)
      0
      (List.mapi (fun i s -> (i, s)) c.G.ctr_q)
  in
  checki "same final count" (counter_value c r 50000.) classic_value

let tests =
  [
    ( "sequential.latch",
      [
        Alcotest.test_case "transparent" `Quick test_latch_transparent;
        Alcotest.test_case "holds" `Quick test_latch_holds;
      ] );
    ( "sequential.dff",
      [
        Alcotest.test_case "captures on edge" `Quick test_dff_captures_on_rising_edge;
        Alcotest.test_case "ignores d between edges" `Quick test_dff_ignores_d_between_edges;
        Alcotest.test_case "complementary outputs" `Quick test_dff_complementary_outputs;
      ] );
    ( "sequential.counter",
      [
        Alcotest.test_case "counts" `Quick test_counter_counts;
        Alcotest.test_case "wraps" `Quick test_counter_wraps;
        Alcotest.test_case "classic agrees" `Quick test_counter_classic_agrees;
      ] );
  ]

(* --- LFSR --- *)

(* software model of the same Fibonacci XOR LFSR: state is stage 0
   first; on each clock, every stage takes its predecessor and stage 0
   takes xor of the taps *)
let lfsr_step ~bits ~taps state =
  let fb = List.fold_left (fun acc t -> acc <> List.nth state t) false taps in
  fb :: List.filteri (fun i _ -> i < bits - 1) state

let test_lfsr_matches_software_model () =
  let bits = 4 and taps = [ 2; 3 ] and pulses = 10 in
  let l = G.lfsr ~bits ~taps () in
  let period = 6000. in
  let clk = Halotis_stim.Vectors.clock ~slope:100. ~period ~start:2000. ~pulses () in
  let r =
    Iddm.run (Iddm.config ~max_events:2_000_000 DL.tech) l.G.lfsr_circuit
      ~drives:[ (l.G.lfsr_clk, clk) ]
  in
  checkb "terminates" false r.Iddm.truncated;
  let state_at t = List.map (fun s -> level r s t) l.G.lfsr_taps in
  let initial = state_at 1000. in
  let expected = ref initial in
  List.iter
    (fun k ->
      expected := lfsr_step ~bits ~taps !expected;
      let t = 1900. +. (period *. float_of_int k) in
      Alcotest.(check (list bool))
        (Printf.sprintf "state after %d pulses" k)
        !expected (state_at t))
    (List.init pulses (fun k -> k + 1))

let test_lfsr_state_evolution () =
  let bits = 3 and taps = [ 1; 2 ] in
  let l = G.lfsr ~bits ~taps () in
  let period = 6000. in
  let pulses = 6 in
  let clk = Halotis_stim.Vectors.clock ~slope:100. ~period ~start:2000. ~pulses () in
  let r =
    Iddm.run (Iddm.config ~max_events:2_000_000 DL.tech) l.G.lfsr_circuit
      ~drives:[ (l.G.lfsr_clk, clk) ]
  in
  let state_at t = List.map (fun s -> level r s t) l.G.lfsr_taps in
  let states =
    List.init (pulses + 1) (fun k -> state_at (1900. +. (period *. float_of_int k)))
  in
  let initial = List.hd states in
  checkb "starts away from lock-up" true (List.exists Fun.id initial);
  (* a maximal-length 3-bit XOR LFSR walks through 7 distinct states *)
  checkb "several distinct states" true
    (List.length (List.sort_uniq compare states) >= 5)

let tests =
  tests
  @ [
      ( "sequential.lfsr",
        [
          Alcotest.test_case "matches software model" `Quick test_lfsr_matches_software_model;
          Alcotest.test_case "state evolution" `Quick test_lfsr_state_evolution;
        ] );
    ]
