(* Edge-case hardening for the engines: unusual wiring, simultaneous
   events, constants, wide and complex gates. *)

module N = Halotis_netlist.Netlist
module Builder = Halotis_netlist.Builder
module G = Halotis_netlist.Generators
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Drive = Halotis_engine.Drive
module Stats = Halotis_engine.Stats
module D = Halotis_wave.Digital
module W = Halotis_wave.Waveform
module DL = Halotis_tech.Default_lib
module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let vt = 2.5
let sid c n = match N.find_signal c n with Some s -> s | None -> Alcotest.failf "no %s" n
let step at = Drive.of_levels ~slope:100. ~initial:false [ (at, true) ]

(* A NAND2 with both pins tied to the same signal acts as an inverter;
   both pins receive an event from each transition. *)
let test_both_pins_same_signal () =
  let b = Builder.create "tied" in
  let a = Builder.input b "a" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g" ~inputs:[ a; a ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let r = Iddm.run (Iddm.config DL.tech) c ~drives:[ (sid c "a", step 1000.) ] in
  checki "two events (one per pin)" 2 r.Iddm.stats.Stats.events_processed;
  (match D.edges (Iddm.waveform r "y") ~vt with
  | [ e ] ->
      checkb "inverts" true
        (Halotis_wave.Transition.equal_polarity e.D.polarity Halotis_wave.Transition.Falling)
  | l -> Alcotest.failf "expected one edge, got %d" (List.length l));
  (* classic handles it too *)
  let rc = Classic.run (Classic.config DL.tech) c ~drives:[ (sid c "a", step 1000.) ] in
  checkb "classic final low" false rc.Classic.final_levels.(sid c "y")

let test_constant_input_gate () =
  (* AND with one pin tied low: output stuck at 0 regardless of events *)
  let b = Builder.create "tie" in
  let a = Builder.input b "a" in
  let zero = Builder.const b Value.L0 in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.And 2) ~name:"g" ~inputs:[ a; zero ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let r = Iddm.run (Iddm.config DL.tech) c ~drives:[ (sid c "a", step 1000.) ] in
  checki "no output edges" 0 (D.edge_count (Iddm.waveform r "y") ~vt);
  checkb "all evaluations no-ops" true (r.Iddm.stats.Stats.noop_evaluations > 0)

let test_simultaneous_input_events () =
  (* two inputs of a NAND switch at exactly the same instant: output
     falls exactly once (determinism of the FIFO tie-break) *)
  let b = Builder.create "simul" in
  let a = Builder.input b "a" in
  let bb = Builder.input b "b" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g" ~inputs:[ a; bb ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let drives = [ (sid c "a", step 1000.); (sid c "b", step 1000.) ] in
  let r = Iddm.run (Iddm.config DL.tech) c ~drives in
  checki "one edge" 1 (D.edge_count (Iddm.waveform r "y") ~vt);
  let r2 = Iddm.run (Iddm.config DL.tech) c ~drives in
  checki "deterministic" r.Iddm.stats.Stats.events_processed
    r2.Iddm.stats.Stats.events_processed

let test_complex_cells_in_engine () =
  (* AOI21 and MUX2 behave per their truth tables dynamically *)
  let b = Builder.create "cells" in
  let a = Builder.input b "a" in
  let x = Builder.input b "x" in
  let s = Builder.input b "s" in
  let y_aoi = Builder.signal b "y_aoi" in
  let y_mux = Builder.signal b "y_mux" in
  let _ = Builder.add_gate b Gate_kind.Aoi21 ~name:"g1" ~inputs:[ a; x; s ] ~output:y_aoi in
  let _ = Builder.add_gate b Gate_kind.Mux2 ~name:"g2" ~inputs:[ a; x; s ] ~output:y_mux in
  Builder.mark_output b y_aoi;
  Builder.mark_output b y_mux;
  let c = Builder.finalize b in
  (* a=1 x=1 s: 0 -> 1 at 1ns.  aoi = not(a&x | s): 0 -> 0 (stays);
     mux = s ? x : a = 1 -> 1 (stays) *)
  let drives =
    [
      (sid c "a", Drive.constant true);
      (sid c "x", Drive.constant true);
      (sid c "s", step 1000.);
    ]
  in
  let r = Iddm.run (Iddm.config DL.tech) c ~drives in
  checki "aoi stays low" 0 (D.edge_count (Iddm.waveform r "y_aoi") ~vt);
  checki "mux stays high" 0 (D.edge_count (Iddm.waveform r "y_mux") ~vt);
  (* a=1 x=0: mux follows s inverted... mux = s ? 0 : 1, so s rising
     makes y_mux fall exactly once *)
  let drives2 =
    [
      (sid c "a", Drive.constant true);
      (sid c "x", Drive.constant false);
      (sid c "s", step 1000.);
    ]
  in
  let r2 = Iddm.run (Iddm.config DL.tech) c ~drives:drives2 in
  checki "mux switches once" 1 (D.edge_count (Iddm.waveform r2 "y_mux") ~vt)

let test_wide_gate_in_engine () =
  let b = Builder.create "wide" in
  let ins = List.init 4 (fun i -> Builder.input b (Printf.sprintf "i%d" i)) in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.Nand 4) ~name:"g" ~inputs:ins ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  (* three inputs high, the last one rises at staggered times: only the
     final rise flips the output *)
  let drives =
    List.mapi
      (fun i s ->
        if i < 3 then (s, Drive.constant true) else (s, step (1000. +. (200. *. float_of_int i))))
      ins
  in
  let r = Iddm.run (Iddm.config DL.tech) c ~drives in
  checki "one falling edge" 1 (D.edge_count (Iddm.waveform r "y") ~vt)

let test_fanout_stress () =
  (* a buffer tree: the step reaches all leaves exactly once *)
  let c = G.buffer_tree ~depth:4 () in
  let r = Iddm.run (Iddm.config DL.tech) c ~drives:[ (sid c "in", step 1000.) ] in
  List.iter
    (fun out -> checki "leaf switches once" 1 (D.edge_count r.Iddm.waveforms.(out) ~vt))
    (N.primary_outputs c);
  checkb "no filtering on a clean tree" true (r.Iddm.stats.Stats.events_filtered = 0)

let test_glitch_train () =
  (* a rapid train of narrow pulses into a chain: the engine terminates
     and the output sees at most as many pulses as the input *)
  let c = G.inverter_chain ~n:3 () in
  let changes =
    List.concat (List.init 10 (fun k ->
        let base = 1000. +. (400. *. float_of_int k) in
        [ (base, true); (base +. 150., false) ]))
  in
  let drives = [ (sid c "in", Drive.of_levels ~slope:100. ~initial:false changes) ] in
  let r = Iddm.run (Iddm.config DL.tech) c ~drives in
  checkb "terminates" false r.Iddm.truncated;
  let in_edges = D.edge_count (Iddm.waveform r "in") ~vt in
  let out_edges = D.edge_count (Iddm.waveform r "out") ~vt in
  checkb "no amplification" true (out_edges <= in_edges);
  checkb "degradation filtered some" true (out_edges < in_edges)

let test_zero_time_drive () =
  (* a drive switching at t = 0 is legal *)
  let c = G.inverter_chain ~n:2 () in
  let r =
    Iddm.run (Iddm.config DL.tech) c
      ~drives:[ (sid c "in", Drive.of_levels ~slope:50. ~initial:false [ (0., true) ]) ]
  in
  checki "propagates" 1 (D.edge_count (Iddm.waveform r "out") ~vt)

let test_classic_window_preemption () =
  (* input reverses before the first scheduled output transaction
     fires: classical annihilation leaves the output silent *)
  let c = G.inverter_chain ~n:1 () in
  let drives = [ (sid c "in", Drive.pulse ~slope:100. ~at:1000. ~width:60. ()) ] in
  let r = Classic.run (Classic.config DL.tech) c ~drives in
  checki "filtered" 0 (List.length (Classic.edges_of_name r "out"));
  checkb "counted as filtered" true (r.Classic.stats.Stats.events_filtered > 0)

let tests =
  [
    ( "engine.edge_cases",
      [
        Alcotest.test_case "both pins same signal" `Quick test_both_pins_same_signal;
        Alcotest.test_case "constant input" `Quick test_constant_input_gate;
        Alcotest.test_case "simultaneous events" `Quick test_simultaneous_input_events;
        Alcotest.test_case "complex cells" `Quick test_complex_cells_in_engine;
        Alcotest.test_case "wide gate" `Quick test_wide_gate_in_engine;
        Alcotest.test_case "fanout stress" `Quick test_fanout_stress;
        Alcotest.test_case "glitch train" `Quick test_glitch_train;
        Alcotest.test_case "zero-time drive" `Quick test_zero_time_drive;
        Alcotest.test_case "classic preemption" `Quick test_classic_window_preemption;
      ] );
  ]

(* Every gate kind, driven dynamically with random step vectors, must
   settle to its boolean function. *)
let prop_every_kind_settles =
  let kind_gen = QCheck.Gen.oneofl Gate_kind.all_basic in
  QCheck.Test.make ~name:"every gate kind settles to eval_bool" ~count:150
    (QCheck.make QCheck.Gen.(pair kind_gen (pair (list_size (return 4) bool) (list_size (return 4) bool))))
    (fun (kind, (v1, v2)) ->
      let arity = Gate_kind.arity kind in
      let take l = List.filteri (fun i _ -> i < arity) (l @ [ false; false; false; false ]) in
      let v1 = take v1 and v2 = take v2 in
      let b = Builder.create "k" in
      let ins = List.init arity (fun i -> Builder.input b (Printf.sprintf "i%d" i)) in
      let y = Builder.signal b "y" in
      let _ = Builder.add_gate b kind ~name:"g" ~inputs:ins ~output:y in
      Builder.mark_output b y;
      let c = Builder.finalize b in
      let drives =
        List.mapi
          (fun i s ->
            ( s,
              Drive.of_levels ~slope:100. ~initial:(List.nth v1 i)
                [ (1000., List.nth v2 i) ] ))
          ins
      in
      let r = Iddm.run (Iddm.config DL.tech) c ~drives in
      let expected = Gate_kind.eval_bool kind (Array.of_list v2) in
      D.final_level r.Iddm.waveforms.(sid c "y") ~vt = expected)

(* Drive construction algebra: a pulse is exactly the two-change level
   list. *)
let prop_pulse_is_two_levels =
  QCheck.Test.make ~name:"Drive.pulse = Drive.of_levels with two changes" ~count:200
    QCheck.(triple (float_range 10. 5000.) (float_range 10. 2000.) (float_range 10. 400.))
    (fun (at, width, slope) ->
      let p = Drive.pulse ~slope ~at ~width () in
      let l = Drive.of_levels ~slope ~initial:false [ (at, true); (at +. width, false) ] in
      p = l)

let tests =
  tests
  @ [
      ( "engine.properties",
        [
          QCheck_alcotest.to_alcotest prop_every_kind_settles;
          QCheck_alcotest.to_alcotest prop_pulse_is_two_levels;
        ] );
    ]

(* --- causality trace --- *)

let test_trace_chain () =
  let c = G.inverter_chain ~n:3 () in
  let r =
    Iddm.run (Iddm.config ~trace:true DL.tech) c ~drives:[ (sid c "in", step 1000.) ]
  in
  checki "three traced ramps" 3 (List.length r.Iddm.trace);
  (* explain the final edge on out: chain of 3 links back to the input *)
  let out = sid c "out" in
  let chain = Iddm.explain r ~signal:out ~at:1e9 in
  checki "three links" 3 (List.length chain);
  (match chain with
  | first :: _ ->
      checkb "starts from the input side" true
        (N.signal_name c first.Iddm.te_cause_signal = "in")
  | [] -> Alcotest.fail "empty chain");
  (match List.rev chain with
  | last :: _ -> checki "ends on out" out last.Iddm.te_signal
  | [] -> ());
  (* times increase along the chain *)
  let rec increasing = function
    | (a : Iddm.trace_entry) :: (b :: _ as rest) ->
        a.Iddm.te_start < b.Iddm.te_start && increasing rest
    | [ _ ] | [] -> true
  in
  checkb "chronological" true (increasing chain);
  checkb "pp renders" true
    (String.length (Format.asprintf "%a" (Iddm.pp_explanation r) chain) > 20)

let test_trace_off_by_default () =
  let c = G.inverter_chain ~n:2 () in
  let r = Iddm.run (Iddm.config DL.tech) c ~drives:[ (sid c "in", step 1000.) ] in
  checki "no trace" 0 (List.length r.Iddm.trace);
  checki "explain empty" 0 (List.length (Iddm.explain r ~signal:(sid c "out") ~at:1e9))

let test_trace_skips_annulled () =
  (* a filtered pulse: annulled ramps never appear in an explanation —
     every chain link must correspond to a segment still live in the
     waveform store *)
  let c = G.inverter_chain ~n:2 () in
  let drives = [ (sid c "in", Drive.pulse ~slope:100. ~at:1000. ~width:120. ()) ] in
  let r = Iddm.run (Iddm.config ~trace:true DL.tech) c ~drives in
  checki "out edges" 0 (D.edge_count (Iddm.waveform r "out") ~vt);
  let chain = Iddm.explain r ~signal:(sid c "out") ~at:1e9 in
  List.iter
    (fun (e : Iddm.trace_entry) ->
      let live =
        List.exists
          (fun (seg : W.segment) ->
            Float.abs (seg.W.transition.Halotis_wave.Transition.start -. e.Iddm.te_start)
            < 1e-9)
          (W.segments r.Iddm.waveforms.(e.Iddm.te_signal))
      in
      checkb "link is live" true live)
    chain;
  (* a signal with no activity at all explains to nothing *)
  let quiet = Iddm.run (Iddm.config ~trace:true DL.tech) c ~drives:[] in
  checki "quiet chain" 0 (List.length (Iddm.explain quiet ~signal:(sid c "out") ~at:1e9))

let tests =
  tests
  @ [
      ( "engine.trace",
        [
          Alcotest.test_case "chain" `Quick test_trace_chain;
          Alcotest.test_case "off by default" `Quick test_trace_off_by_default;
          Alcotest.test_case "skips annulled" `Quick test_trace_skips_annulled;
        ] );
    ]

let test_classic_transport_mode () =
  (* transport mode propagates the pulse inertial mode filters *)
  let c = G.inverter_chain ~n:2 () in
  let drives = [ (sid c "in", Drive.pulse ~slope:100. ~at:1000. ~width:60. ()) ] in
  let inertial = Classic.run (Classic.config DL.tech) c ~drives in
  let transport =
    Classic.run (Classic.config ~mode:Classic.Transport DL.tech) c ~drives
  in
  checki "inertial filters" 0 (List.length (Classic.edges_of_name inertial "out"));
  checki "transport keeps" 2 (List.length (Classic.edges_of_name transport "out"));
  checkb "width preserved" true
    (match Classic.edges_of_name transport "out" with
    | [ e1; e2 ] -> Float.abs (e2.D.at -. e1.D.at -. 60.) < 10.
    | _ -> false)

let tests =
  tests
  @ [
      ( "engine.transport",
        [ Alcotest.test_case "transport vs inertial" `Quick test_classic_transport_mode ] );
    ]
