(* Tests for Halotis_stim. *)

module V = Halotis_stim.Vectors
module Stimfile = Halotis_stim.Stimfile
module G = Halotis_netlist.Generators
module N = Halotis_netlist.Netlist
module Drive = Halotis_engine.Drive
module T = Halotis_wave.Transition

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_paper_sequences () =
  checki "A length" 5 (List.length V.paper_sequence_a);
  checki "B length" 5 (List.length V.paper_sequence_b);
  let ops = List.map (Format.asprintf "%a" V.pp_mult_op) V.paper_sequence_a in
  Alcotest.(check (list string)) "A ops" [ "0x0"; "7x7"; "5xA"; "Ex6"; "FxF" ] ops;
  let opsb = List.map (Format.asprintf "%a" V.pp_mult_op) V.paper_sequence_b in
  Alcotest.(check (list string)) "B ops" [ "0x0"; "FxF"; "0x0"; "FxF"; "0x0" ] opsb

let test_expected_product () =
  checki "7x7" 49 (V.expected_product { V.op_a = 7; op_b = 7 });
  checki "FxF" 225 (V.expected_product { V.op_a = 15; op_b = 15 });
  checki "5xA" 50 (V.expected_product { V.op_a = 5; op_b = 10 })

let test_bit () =
  checkb "bit0" true (V.bit 5 0);
  checkb "bit1" false (V.bit 5 1);
  checkb "bit2" true (V.bit 5 2)

let test_random_ops_range () =
  let ops = V.random_ops ~bits:4 ~count:50 ~seed:1 in
  checki "count" 50 (List.length ops);
  List.iter
    (fun { V.op_a; op_b } ->
      checkb "a range" true (op_a >= 0 && op_a < 16);
      checkb "b range" true (op_b >= 0 && op_b < 16))
    ops

let test_random_ops_deterministic () =
  checkb "same seed" true (V.random_ops ~bits:4 ~count:10 ~seed:3 = V.random_ops ~bits:4 ~count:10 ~seed:3);
  checkb "different seed" false
    (V.random_ops ~bits:4 ~count:10 ~seed:3 = V.random_ops ~bits:4 ~count:10 ~seed:4)

let test_bus_drives () =
  let m = G.array_multiplier ~m:4 ~n:4 () in
  let drives = V.bus_drives ~slope:100. ~period:1000. ~bits:m.G.ma_bits ~values:[ 0x0; 0xF; 0x0 ] in
  checki "one drive per bit" 4 (List.length drives);
  List.iter
    (fun (_, d) ->
      checkb "initial zero" false d.Drive.initial;
      (* each bit rises at 1000 and falls at 2000 *)
      checki "two changes" 2 (List.length d.Drive.transitions);
      match d.Drive.transitions with
      | [ t1; t2 ] ->
          checkb "rise time" true (t1.T.start = 1000.);
          checkb "fall time" true (t2.T.start = 2000.)
      | _ -> Alcotest.fail "shape")
    drives

let test_bus_drives_dedup () =
  let m = G.array_multiplier ~m:4 ~n:4 () in
  (* value never changes: no transitions at all *)
  let drives = V.bus_drives ~slope:100. ~period:1000. ~bits:m.G.ma_bits ~values:[ 0x3; 0x3; 0x3 ] in
  List.iter (fun (_, d) -> checki "no changes" 0 (List.length d.Drive.transitions)) drives

let test_bus_drives_empty () =
  let m = G.array_multiplier ~m:4 ~n:4 () in
  let drives = V.bus_drives ~slope:100. ~period:1000. ~bits:m.G.ma_bits ~values:[] in
  checki "constant drives" 4 (List.length drives);
  List.iter (fun (_, d) -> checkb "flat" true (d.Drive.transitions = [])) drives

let test_multiplier_drives () =
  let m = G.array_multiplier ~m:4 ~n:4 () in
  let drives =
    V.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits ~b_bits:m.G.mb_bits
      V.paper_sequence_a
  in
  checki "eight drives" 8 (List.length drives);
  (* initial op is 0x0: all initial levels false *)
  List.iter (fun (_, d) -> checkb "initial" false d.Drive.initial) drives

(* --- Stimfile --- *)

let sample_hsv = "# demo\nslope 50\ninput a 0 1@1000 0@2000\ninput b 1\n"

let test_stimfile_parse () =
  match Stimfile.parse_string sample_hsv with
  | Error e -> Alcotest.failf "parse error: %a" Stimfile.pp_error e
  | Ok t ->
      Alcotest.(check (float 0.)) "slope" 50. t.Stimfile.slope;
      checki "entries" 2 (List.length t.Stimfile.entries);
      let a = List.assoc "a" t.Stimfile.entries in
      checkb "a initial" false a.Drive.initial;
      checki "a transitions" 2 (List.length a.Drive.transitions);
      let b = List.assoc "b" t.Stimfile.entries in
      checkb "b constant high" true (b.Drive.initial && b.Drive.transitions = [])

let test_stimfile_roundtrip () =
  match Stimfile.parse_string sample_hsv with
  | Error e -> Alcotest.failf "parse error: %a" Stimfile.pp_error e
  | Ok t -> (
      let printed = Stimfile.to_string t in
      match Stimfile.parse_string printed with
      | Error e -> Alcotest.failf "reparse error: %a" Stimfile.pp_error e
      | Ok t2 -> Alcotest.(check string) "stable print" printed (Stimfile.to_string t2))

let test_stimfile_errors () =
  let expect_error text =
    match Stimfile.parse_string text with
    | Ok _ -> Alcotest.failf "expected failure for %S" text
    | Error _ -> ()
  in
  expect_error "slope nope\n";
  expect_error "slope -5\n";
  expect_error "input\n";
  expect_error "input a\n";
  expect_error "input a 2\n";
  expect_error "input a 0 1@\n";
  expect_error "input a 0 x@100\n";
  expect_error "input a 0 1@-5\n";
  expect_error "input a 0\ninput a 1\n";
  expect_error "bogus directive\n"

let test_stimfile_bind () =
  let c = G.inverter_chain ~n:2 () in
  (match Stimfile.parse_string "input in 0 1@500\n" with
  | Error e -> Alcotest.failf "parse: %a" Stimfile.pp_error e
  | Ok t -> (
      match Stimfile.bind t c with
      | Ok [ (sid, _) ] ->
          checkb "bound to in" true (N.signal_name c sid = "in")
      | Ok l -> Alcotest.failf "expected 1 binding, got %d" (List.length l)
      | Error m -> Alcotest.fail m));
  (match Stimfile.parse_string "input zz 0\n" with
  | Error e -> Alcotest.failf "parse: %a" Stimfile.pp_error e
  | Ok t -> checkb "unknown rejected" true (Result.is_error (Stimfile.bind t c)));
  match Stimfile.parse_string "input out 0\n" with
  | Error e -> Alcotest.failf "parse: %a" Stimfile.pp_error e
  | Ok t -> checkb "non-input rejected" true (Result.is_error (Stimfile.bind t c))

let test_stimfile_file_io () =
  let path = Filename.temp_file "halotis" ".hsv" in
  let oc = open_out path in
  output_string oc sample_hsv;
  close_out oc;
  (match Stimfile.parse_file path with
  | Ok t -> checki "entries" 2 (List.length t.Stimfile.entries)
  | Error e -> Alcotest.failf "parse: %a" Stimfile.pp_error e);
  Sys.remove path

let tests =
  [
    ( "stim.stimfile",
      [
        Alcotest.test_case "parse" `Quick test_stimfile_parse;
        Alcotest.test_case "roundtrip" `Quick test_stimfile_roundtrip;
        Alcotest.test_case "errors" `Quick test_stimfile_errors;
        Alcotest.test_case "bind" `Quick test_stimfile_bind;
        Alcotest.test_case "file io" `Quick test_stimfile_file_io;
      ] );
    ( "stim.vectors",
      [
        Alcotest.test_case "paper sequences" `Quick test_paper_sequences;
        Alcotest.test_case "expected product" `Quick test_expected_product;
        Alcotest.test_case "bit" `Quick test_bit;
        Alcotest.test_case "random range" `Quick test_random_ops_range;
        Alcotest.test_case "random deterministic" `Quick test_random_ops_deterministic;
        Alcotest.test_case "bus drives" `Quick test_bus_drives;
        Alcotest.test_case "bus dedup" `Quick test_bus_drives_dedup;
        Alcotest.test_case "bus empty" `Quick test_bus_drives_empty;
        Alcotest.test_case "multiplier drives" `Quick test_multiplier_drives;
      ] );
  ]

let test_walking_ones () =
  let p = V.walking_ones ~bits:3 in
  Alcotest.(check (list int)) "pattern" [ 0; 1; 0; 2; 0; 4; 0 ] p

let test_gray_code () =
  let g = V.gray_code ~bits:3 in
  checki "length" 8 (List.length g);
  (* exactly one bit flips between consecutive codes *)
  let rec check = function
    | a :: (b :: _ as rest) ->
        let diff = a lxor b in
        checkb "one bit" true (diff land (diff - 1) = 0 && diff <> 0);
        check rest
    | [ _ ] | [] -> ()
  in
  check g;
  (* all distinct *)
  checki "distinct" 8 (List.length (List.sort_uniq compare g))

let tests =
  tests
  @ [
      ( "stim.patterns",
        [
          Alcotest.test_case "walking ones" `Quick test_walking_ones;
          Alcotest.test_case "gray code" `Quick test_gray_code;
        ] );
    ]
