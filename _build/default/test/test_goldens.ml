(* Golden regression pins.

   These values are DELIBERATELY brittle: they pin the exact event
   counts and timings of the canonical paper workloads under the
   default technology, so that any change to the engine semantics, the
   delay models or the default library shows up as a diff here.  When a
   change is intentional (e.g. recalibrating the library), update the
   constants together with EXPERIMENTS.md. *)

module G = Halotis_netlist.Generators
module N = Halotis_netlist.Netlist
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Drive = Halotis_engine.Drive
module Stats = Halotis_engine.Stats
module D = Halotis_wave.Digital
module DL = Halotis_tech.Default_lib
module DM = Halotis_delay.Delay_model
module V = Halotis_stim.Vectors
module Sta = Halotis_sta.Sta

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mult = lazy (G.array_multiplier ~m:4 ~n:4 ())

let run kind ops =
  let m = Lazy.force mult in
  let drives =
    V.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits ~b_bits:m.G.mb_bits ops
  in
  Iddm.run (Iddm.config ~delay_kind:kind DL.tech) m.G.mult_circuit ~drives

let test_table1_event_counts () =
  let ra = run DM.Ddm V.paper_sequence_a in
  checki "DDM seqA events" 430 ra.Iddm.stats.Stats.events_processed;
  checki "DDM seqA filtered" 27 ra.Iddm.stats.Stats.events_filtered;
  let rb = run DM.Ddm V.paper_sequence_b in
  checki "DDM seqB events" 636 rb.Iddm.stats.Stats.events_processed;
  checki "DDM seqB filtered" 64 rb.Iddm.stats.Stats.events_filtered;
  let ca = run DM.Cdm V.paper_sequence_a in
  checki "CDM seqA events" 454 ca.Iddm.stats.Stats.events_processed;
  let cb = run DM.Cdm V.paper_sequence_b in
  checki "CDM seqB events" 720 cb.Iddm.stats.Stats.events_processed

let test_fig1_edge_counts () =
  let f = G.fig1_circuit () in
  let drives = [ (f.G.sig_in, Drive.pulse ~slope:100. ~at:1000. ~width:225. ()) ] in
  let r = Iddm.run (Iddm.config DL.tech) f.G.circuit ~drives in
  let count name = D.edge_count (Iddm.waveform r name) ~vt:2.5 in
  checki "out0" 2 (count "out0");
  checki "out1c" 2 (count "out1c");
  checki "out2c" 0 (count "out2c");
  let rc = Classic.run (Classic.config DL.tech) f.G.circuit ~drives in
  checki "classic out1c" 2 (List.length (Classic.edges_of_name rc "out1c"));
  checki "classic out2c" 2 (List.length (Classic.edges_of_name rc "out2c"))

let test_sta_worst_mult4x4 () =
  let m = Lazy.force mult in
  let worst = Sta.worst (Sta.analyze DL.tech m.G.mult_circuit) in
  checkb
    (Printf.sprintf "pinned 8738.3 ps, got %.1f" worst)
    true
    (Float.abs (worst -. 8738.3) < 0.5)

let test_degradation_sweep_pins () =
  (* the 2-inverter chain transfer curve at three canonical widths *)
  let c = G.inverter_chain ~n:2 () in
  let input = match N.find_signal c "in" with Some s -> s | None -> assert false in
  let out_width w =
    let drives = [ (input, Drive.pulse ~slope:100. ~at:1000. ~width:w ()) ] in
    let r = Iddm.run (Iddm.config DL.tech) c ~drives in
    match D.pulses (Iddm.waveform r "out") ~vt:2.5 with
    | [ p ] -> p.D.width
    | [] -> 0.
    | _ -> -1.
  in
  checkb "125 filtered" true (out_width 125. = 0.);
  checkb "150 -> ~112" true (Float.abs (out_width 150. -. 111.9) < 1.);
  checkb "300 -> ~300" true (Float.abs (out_width 300. -. 299.6) < 1.)

let tests =
  [
    ( "goldens",
      [
        Alcotest.test_case "table1 event counts" `Quick test_table1_event_counts;
        Alcotest.test_case "fig1 edge counts" `Quick test_fig1_edge_counts;
        Alcotest.test_case "sta worst" `Quick test_sta_worst_mult4x4;
        Alcotest.test_case "degradation pins" `Quick test_degradation_sweep_pins;
      ] );
  ]
