(* Tests for Halotis_tech: parameter plumbing, eq. 1–3 behaviour, and
   the calibration fitter. *)

module Tech = Halotis_tech.Tech
module DL = Halotis_tech.Default_lib
module Cal = Halotis_tech.Calibrate
module Gate_kind = Halotis_logic.Gate_kind

let checkb = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-6)) msg

let test_default_lib_sane () =
  checkf "vdd" 5.0 (Tech.vdd DL.tech);
  List.iter
    (fun kind ->
      let gt = Tech.gate_tech DL.tech kind in
      List.iter
        (fun rising ->
          let p = Tech.edge gt ~rising in
          checkb "d0 > 0" true (p.Tech.d0 > 0.);
          checkb "d_load >= 0" true (p.Tech.d_load >= 0.);
          checkb "s0 > 0" true (p.Tech.s0 > 0.);
          checkb "ddm_a > 0" true (p.Tech.ddm_a > 0.);
          checkb "ddm_c in range" true (p.Tech.ddm_c > 0. && p.Tech.ddm_c < Tech.vdd DL.tech))
        [ true; false ];
      checkb "input cap" true (gt.Tech.input_cap > 0.);
      checkb "vt inside rails" true
        (gt.Tech.default_vt > 0. && gt.Tech.default_vt < Tech.vdd DL.tech);
      checkf "pin factor 0" 1.0 (gt.Tech.pin_factor 0);
      checkb "pin factor grows" true (gt.Tech.pin_factor 2 >= gt.Tech.pin_factor 0))
    Gate_kind.all_basic

let test_fast_tech_faster () =
  List.iter
    (fun kind ->
      let slow = Tech.gate_tech DL.tech kind and fast = Tech.gate_tech DL.fast_tech kind in
      checkb "d0 smaller" true (fast.Tech.rise.Tech.d0 < slow.Tech.rise.Tech.d0);
      checkb "cap smaller" true (fast.Tech.input_cap < slow.Tech.input_cap))
    Gate_kind.all_basic

let inv_rise () = Tech.edge (Tech.gate_tech DL.tech Gate_kind.Inv) ~rising:true

let test_base_delay_monotone_load () =
  let p = inv_rise () in
  let d cl = Tech.base_delay p ~pin_factor:1.0 ~cl ~tau_in:100. in
  checkb "grows with load" true (d 20. > d 5.);
  checkb "grows with slope" true
    (Tech.base_delay p ~pin_factor:1.0 ~cl:10. ~tau_in:300.
    > Tech.base_delay p ~pin_factor:1.0 ~cl:10. ~tau_in:50.);
  checkb "pin factor scales" true
    (Tech.base_delay p ~pin_factor:1.2 ~cl:10. ~tau_in:100.
    > Tech.base_delay p ~pin_factor:1.0 ~cl:10. ~tau_in:100.)

let test_output_slope () =
  let p = inv_rise () in
  checkb "grows with load" true (Tech.output_slope p ~cl:30. > Tech.output_slope p ~cl:5.);
  (* degenerate parameter set is clamped, never zero or negative *)
  let degenerate = { p with Tech.s0 = -100.; s_load = 0. } in
  checkf "clamped" 1.0 (Tech.output_slope degenerate ~cl:0.)

let test_degradation_params () =
  let p = inv_rise () in
  checkb "tau grows with load" true
    (Tech.degradation_tau DL.tech p ~cl:30. > Tech.degradation_tau DL.tech p ~cl:5.);
  checkb "t0 grows with slope" true
    (Tech.degradation_t0 DL.tech p ~tau_in:300. > Tech.degradation_t0 DL.tech p ~tau_in:50.);
  checkb "t0 nonnegative" true (Tech.degradation_t0 DL.tech p ~tau_in:0. >= 0.)

(* --- eq. 1 (predicted_delay) --- *)

let test_eq1_limits () =
  let tp0 = 120. and tau = 80. and t0 = 20. in
  checkf "T -> inf" tp0 (Cal.predicted_delay ~tp0 ~tau ~t0 ~time_since_last:1e9);
  checkf "T = T0" 0. (Cal.predicted_delay ~tp0 ~tau ~t0 ~time_since_last:t0);
  checkf "T < T0 clamps" 0. (Cal.predicted_delay ~tp0 ~tau ~t0 ~time_since_last:(t0 -. 50.));
  let half = Cal.predicted_delay ~tp0 ~tau ~t0 ~time_since_last:(t0 +. (tau *. Float.log 2.)) in
  checkf "half at T0+tau ln2" (tp0 /. 2.) half

let prop_eq1_monotone =
  QCheck.Test.make ~name:"eq.1 delay monotone in T" ~count:300
    QCheck.(triple (float_range 10. 500.) (float_range 10. 500.) (pair (float_range 0. 100.) (float_range 0. 2000.)))
    (fun (tp0, tau, (t0, t)) ->
      let d1 = Cal.predicted_delay ~tp0 ~tau ~t0 ~time_since_last:t in
      let d2 = Cal.predicted_delay ~tp0 ~tau ~t0 ~time_since_last:(t +. 50.) in
      d2 >= d1 -. 1e-9)

let prop_eq1_bounded =
  QCheck.Test.make ~name:"eq.1 delay within [0, tp0]" ~count:300
    QCheck.(triple (float_range 1. 500.) (float_range 1. 500.) (pair (float_range 0. 100.) (float_range (-500.) 5000.)))
    (fun (tp0, tau, (t0, t)) ->
      let d = Cal.predicted_delay ~tp0 ~tau ~t0 ~time_since_last:t in
      d >= 0. && d <= tp0)

(* --- calibration fit --- *)

let test_fit_roundtrip () =
  let tp0 = 150. and tau = 90. and t0 = 25. in
  let samples =
    List.init 20 (fun i ->
        let t = t0 +. (10. *. float_of_int (i + 1)) in
        (t, Cal.predicted_delay ~tp0 ~tau ~t0 ~time_since_last:t))
  in
  match Cal.fit_degradation ~tp0 ~samples with
  | Some fit ->
      Alcotest.(check (float 0.5)) "tau recovered" tau fit.Cal.fit_tau;
      Alcotest.(check (float 0.5)) "t0 recovered" t0 fit.Cal.fit_t0;
      checkb "r2 ~ 1" true (fit.Cal.fit_r2 > 0.999)
  | None -> Alcotest.fail "expected a fit"

let test_fit_ignores_uninformative () =
  let tp0 = 100. in
  (* saturated samples (tp = tp0) and dead samples (tp <= 0) are noise *)
  let samples =
    [ (1000., 100.); (2000., 100.); (10., 0.); (50., 30.); (80., 55.); (120., 74.) ]
  in
  match Cal.fit_degradation ~tp0 ~samples with
  | Some fit -> checkb "tau positive" true (fit.Cal.fit_tau > 0.)
  | None -> Alcotest.fail "expected a fit from informative subset"

let test_fit_degenerate () =
  checkb "no samples" true (Cal.fit_degradation ~tp0:100. ~samples:[] = None);
  checkb "bad tp0" true (Cal.fit_degradation ~tp0:0. ~samples:[ (1., 1.) ] = None);
  (* anti-degradation (delay growing toward short T) has positive slope *)
  let samples = [ (10., 90.); (100., 50.); (200., 20.) ] in
  checkb "wrong-sign slope" true (Cal.fit_degradation ~tp0:100. ~samples = None)

let prop_fit_recovers_random_params =
  QCheck.Test.make ~name:"fit recovers synthetic (tau, T0)" ~count:100
    QCheck.(triple (float_range 50. 300.) (float_range 20. 200.) (float_range 0. 80.))
    (fun (tp0, tau, t0) ->
      let samples =
        List.init 15 (fun i ->
            let t = t0 +. (tau /. 4. *. float_of_int (i + 1)) in
            (t, Cal.predicted_delay ~tp0 ~tau ~t0 ~time_since_last:t))
      in
      match Cal.fit_degradation ~tp0 ~samples with
      | Some fit ->
          Float.abs (fit.Cal.fit_tau -. tau) /. tau < 0.05
          && Float.abs (fit.Cal.fit_t0 -. t0) < 2.
      | None -> false)

let tests =
  [
    ( "tech.library",
      [
        Alcotest.test_case "default lib sane" `Quick test_default_lib_sane;
        Alcotest.test_case "fast tech faster" `Quick test_fast_tech_faster;
        Alcotest.test_case "base delay monotone" `Quick test_base_delay_monotone_load;
        Alcotest.test_case "output slope" `Quick test_output_slope;
        Alcotest.test_case "degradation params" `Quick test_degradation_params;
      ] );
    ( "tech.eq1",
      [
        Alcotest.test_case "limits" `Quick test_eq1_limits;
        QCheck_alcotest.to_alcotest prop_eq1_monotone;
        QCheck_alcotest.to_alcotest prop_eq1_bounded;
      ] );
    ( "tech.calibrate",
      [
        Alcotest.test_case "roundtrip" `Quick test_fit_roundtrip;
        Alcotest.test_case "ignores uninformative" `Quick test_fit_ignores_uninformative;
        Alcotest.test_case "degenerate" `Quick test_fit_degenerate;
        QCheck_alcotest.to_alcotest prop_fit_recovers_random_params;
      ] );
  ]
