test/test_delay.ml: Alcotest Array Float Halotis_delay Halotis_logic Halotis_netlist Halotis_tech Printf QCheck QCheck_alcotest
