test/test_tech.ml: Alcotest Float Halotis_logic Halotis_tech List QCheck QCheck_alcotest
