test/test_cmos.ml: Alcotest Float Halotis_cmos Halotis_engine Halotis_logic Halotis_netlist Halotis_tech Halotis_wave List Printf
