test/test_stim.ml: Alcotest Filename Format Halotis_engine Halotis_netlist Halotis_stim Halotis_wave List Result Sys
