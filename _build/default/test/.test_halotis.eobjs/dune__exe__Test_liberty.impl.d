test/test_liberty.ml: Alcotest Float Halotis_liberty Halotis_logic Halotis_stim Halotis_tech Halotis_util Halotis_wave List QCheck QCheck_alcotest
