test/test_power.ml: Alcotest Array Format Halotis_delay Halotis_engine Halotis_netlist Halotis_power Halotis_stim Halotis_tech Halotis_wave List String
