test/test_engine_edge.ml: Alcotest Array Float Format Halotis_engine Halotis_logic Halotis_netlist Halotis_tech Halotis_wave List Printf QCheck QCheck_alcotest String
