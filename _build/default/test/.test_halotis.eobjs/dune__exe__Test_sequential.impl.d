test/test_sequential.ml: Alcotest Array Fun Halotis_engine Halotis_netlist Halotis_stim Halotis_tech Halotis_wave List Printf
