test/test_engine.ml: Alcotest Array Float Format Halotis_delay Halotis_engine Halotis_logic Halotis_netlist Halotis_stim Halotis_tech Halotis_wave List Printf QCheck QCheck_alcotest String
