test/test_report.ml: Alcotest Halotis_report Halotis_wave String
