test/test_logic.ml: Alcotest Array Halotis_logic List Printf QCheck QCheck_alcotest
