test/test_sta.ml: Alcotest Array Float Format Halotis_delay Halotis_engine Halotis_logic Halotis_netlist Halotis_sta Halotis_tech Halotis_util Halotis_wave List QCheck QCheck_alcotest String
