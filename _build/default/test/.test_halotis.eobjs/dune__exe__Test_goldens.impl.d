test/test_goldens.ml: Alcotest Float Halotis_delay Halotis_engine Halotis_netlist Halotis_sta Halotis_stim Halotis_tech Halotis_wave Lazy List Printf
