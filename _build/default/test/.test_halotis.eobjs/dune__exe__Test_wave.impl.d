test/test_wave.ml: Alcotest Filename Float Format Halotis_wave List QCheck QCheck_alcotest String Sys
