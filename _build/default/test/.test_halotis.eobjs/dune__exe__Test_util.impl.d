test/test_util.ml: Alcotest Float Halotis_util Int List QCheck QCheck_alcotest
