test/test_netlist.ml: Alcotest Array Bool Filename Format Halotis_engine Halotis_logic Halotis_netlist Halotis_stim Hashtbl Lazy List Printf QCheck QCheck_alcotest String Sys
