test/test_halotis.mli:
