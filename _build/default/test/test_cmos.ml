(* Tests for Halotis_cmos: the alpha-power analytical inverter model. *)

module AP = Halotis_cmos.Alpha_power
module Tech = Halotis_tech.Tech
module DL = Halotis_tech.Default_lib
module G = Halotis_netlist.Generators
module N = Halotis_netlist.Netlist
module Iddm = Halotis_engine.Iddm
module Drive = Halotis_engine.Drive
module D = Halotis_wave.Digital
module Gate_kind = Halotis_logic.Gate_kind

let checkb = Alcotest.(check bool)
let inv = AP.default_inverter

let test_delay_monotone_in_load () =
  let d cl = AP.delay inv ~rising_out:false ~cl ~tau_in:100. in
  checkb "10 < 40" true (d 10. < d 40.);
  checkb "40 < 120" true (d 40. < d 120.)

let test_delay_monotone_in_slope () =
  let d tau_in = AP.delay inv ~rising_out:true ~cl:20. ~tau_in in
  checkb "slower input slower gate" true (d 50. < d 300.)

let test_rise_fall_asymmetry () =
  (* weaker PMOS: rising output slower than falling *)
  checkb "rise slower" true
    (AP.delay inv ~rising_out:true ~cl:20. ~tau_in:100.
    > AP.delay inv ~rising_out:false ~cl:20. ~tau_in:100.);
  checkb "rise ramp longer" true
    (AP.output_slope inv ~rising_out:true ~cl:20. > AP.output_slope inv ~rising_out:false ~cl:20.)

let test_supply_scaling () =
  (* lower Vdd -> smaller gate overdrive... in this first-order model
     the charge term shrinks with Vdd (same drive current) *)
  let low = { inv with AP.vdd = 3.3 } in
  checkb "charge term scales with vdd" true
    (AP.delay low ~rising_out:false ~cl:30. ~tau_in:0.
    < AP.delay inv ~rising_out:false ~cl:30. ~tau_in:0.)

let test_edge_params_match_closed_form () =
  let base = Tech.edge (Tech.gate_tech DL.tech Gate_kind.Inv) ~rising:false in
  let p = AP.to_edge_params inv ~rising_out:false ~base in
  List.iter
    (fun (cl, tau_in) ->
      let direct = AP.delay inv ~rising_out:false ~cl ~tau_in in
      let via_params = Tech.base_delay p ~pin_factor:1.0 ~cl ~tau_in in
      checkb
        (Printf.sprintf "cl=%.0f tau=%.0f" cl tau_in)
        true
        (Float.abs (direct -. via_params) < 1e-9))
    [ (5., 50.); (20., 100.); (60., 250.) ]

let test_to_tech_simulates () =
  (* the derived technology drives the full engine *)
  let tech =
    AP.to_tech ~base:DL.tech AP.default_inverter ~sized:AP.default_sizing
  in
  let c = G.inverter_chain ~n:3 () in
  let input = match N.find_signal c "in" with Some s -> s | None -> assert false in
  let r =
    Iddm.run (Iddm.config tech) c
      ~drives:[ (input, Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ]
  in
  checkb "propagates" true (D.edge_count (Iddm.waveform r "out") ~vt:2.5 = 1);
  (* stack sizing: nand slower than inverter under the same load *)
  let gt k = Tech.gate_tech tech k in
  checkb "nand derated" true
    ((gt (Gate_kind.Nand 2)).Tech.fall.Tech.d_load > (gt Gate_kind.Inv).Tech.fall.Tech.d_load)

let test_degradation_kept_from_base () =
  let tech = AP.to_tech ~base:DL.tech AP.default_inverter ~sized:AP.default_sizing in
  let p0 = (Tech.gate_tech DL.tech Gate_kind.Inv).Tech.rise in
  let p1 = (Tech.gate_tech tech Gate_kind.Inv).Tech.rise in
  Alcotest.(check (float 1e-9)) "ddm_a" p0.Tech.ddm_a p1.Tech.ddm_a;
  Alcotest.(check (float 1e-9)) "ddm_c" p0.Tech.ddm_c p1.Tech.ddm_c

let tests =
  [
    ( "cmos.alpha_power",
      [
        Alcotest.test_case "load monotone" `Quick test_delay_monotone_in_load;
        Alcotest.test_case "slope monotone" `Quick test_delay_monotone_in_slope;
        Alcotest.test_case "rise/fall asymmetry" `Quick test_rise_fall_asymmetry;
        Alcotest.test_case "supply scaling" `Quick test_supply_scaling;
        Alcotest.test_case "closed form = params" `Quick test_edge_params_match_closed_form;
        Alcotest.test_case "derived tech simulates" `Quick test_to_tech_simulates;
        Alcotest.test_case "ddm kept" `Quick test_degradation_kept_from_base;
      ] );
  ]
