(* Tests for Halotis_analog: macromodel algebra and transient runs. *)

module N = Halotis_netlist.Netlist
module G = Halotis_netlist.Generators
module Macromodel = Halotis_analog.Macromodel
module Sim = Halotis_analog.Sim
module Drive = Halotis_engine.Drive
module D = Halotis_wave.Digital
module T = Halotis_wave.Transition
module DL = Halotis_tech.Default_lib
module Loads = Halotis_delay.Loads
module Gate_kind = Halotis_logic.Gate_kind

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-6)) msg
let sid c n =
  match N.find_signal c n with Some s -> s | None -> Alcotest.failf "no signal %s" n

(* --- fuzzy logic --- *)

let prop_fuzzy_matches_bool =
  let kind_gen = QCheck.Gen.oneofl Gate_kind.all_basic in
  QCheck.Test.make ~name:"fuzzy_eval = eval_bool on {0,1}" ~count:500
    (QCheck.make QCheck.Gen.(pair kind_gen (list_size (return 4) bool)))
    (fun (kind, bits) ->
      let n = Gate_kind.arity kind in
      let bools = Array.sub (Array.of_list (bits @ [ false; false; false; false ])) 0 n in
      let xs = Array.map (fun b -> if b then 1.0 else 0.0) bools in
      let fuzzy = Macromodel.fuzzy_eval kind xs in
      let expected = if Gate_kind.eval_bool kind bools then 1.0 else 0.0 in
      Float.abs (fuzzy -. expected) < 1e-9)

let prop_fuzzy_within_unit_interval =
  let kind_gen = QCheck.Gen.oneofl Gate_kind.all_basic in
  QCheck.Test.make ~name:"fuzzy_eval stays in [0,1]" ~count:500
    (QCheck.make
       QCheck.Gen.(pair kind_gen (list_size (return 4) (float_range 0. 1.))))
    (fun (kind, xs) ->
      let n = Gate_kind.arity kind in
      let xs = Array.sub (Array.of_list (xs @ [ 0.; 0.; 0.; 0. ])) 0 n in
      let v = Macromodel.fuzzy_eval kind xs in
      v >= -1e-9 && v <= 1. +. 1e-9)

let test_macromodel_of_gate () =
  let f = G.fig1_circuit ~vt_low:1.5 ~vt_high:3.5 () in
  let c = f.G.circuit in
  let loads = Loads.of_netlist DL.tech c in
  let g1 = match N.find_gate c "g1" with Some g -> g | None -> assert false in
  let m = Macromodel.of_gate DL.tech c ~loads g1 in
  checkf "vt from override" 1.5 m.Macromodel.vt.(0);
  checkb "tau positive" true (m.Macromodel.tau_rise > 0. && m.Macromodel.tau_fall > 0.);
  (* smooth input is 1/2 exactly at the threshold *)
  checkf "midpoint" 0.5 (Macromodel.smooth_input m ~pin:0 1.5);
  checkb "monotone" true
    (Macromodel.smooth_input m ~pin:0 3.0 > Macromodel.smooth_input m ~pin:0 1.0)

let test_goal_voltage_inverter () =
  let c = G.inverter_chain ~n:1 () in
  let loads = Loads.of_netlist DL.tech c in
  let m = Macromodel.of_gate DL.tech c ~loads 0 in
  checkb "in low -> goal high" true (Macromodel.goal_voltage m [| 0. |] > 4.9);
  checkb "in high -> goal low" true (Macromodel.goal_voltage m [| 5. |] < 0.1);
  let d = Macromodel.derivative m ~v_out:0. ~v_goal:5. in
  checkb "pulls up" true (d > 0.);
  let d2 = Macromodel.derivative m ~v_out:5. ~v_goal:0. in
  checkb "pulls down" true (d2 < 0.)

(* --- transient --- *)

let test_dc_settling () =
  let c = G.inverter_chain ~n:2 () in
  let r =
    Sim.run (Sim.config ~t_stop:2000. DL.tech) c
      ~drives:[ (sid c "in", Drive.constant true) ]
  in
  let tr = Sim.trace r "out" in
  checkb "out follows in (two inversions)" true (Sim.value_at tr 1900. > 4.5);
  let tr1 = Sim.trace r "out1" in
  checkb "middle inverted" true (Sim.value_at tr1 1900. < 0.5)

let test_step_response () =
  let c = G.inverter_chain ~n:1 () in
  let drives = [ (sid c "in", Drive.of_levels ~slope:50. ~initial:false [ (500., true) ]) ] in
  let r = Sim.run (Sim.config ~t_stop:3000. DL.tech) c ~drives in
  let tr = Sim.trace r "out" in
  checkb "starts high" true (Sim.value_at tr 100. > 4.5);
  checkb "ends low" true (Sim.value_at tr 2900. < 0.5);
  match Sim.crossings tr ~vt:2.5 with
  | [ e ] ->
      checkb "falling" true (T.equal_polarity e.D.polarity T.Falling);
      checkb "after stimulus" true (e.D.at > 500.);
      checkb "within 1ns" true (e.D.at < 1500.)
  | l -> Alcotest.failf "expected one crossing, got %d" (List.length l)

let test_glitch_degradation_continuous () =
  (* output runt amplitude grows continuously with input pulse width *)
  let c = G.inverter_chain ~n:1 () in
  let peak width =
    let drives = [ (sid c "in", Drive.pulse ~slope:50. ~at:500. ~width ()) ] in
    let r = Sim.run (Sim.config ~t_stop:3000. DL.tech) c ~drives in
    let vmin, _ = Sim.peak_in (Sim.trace r "out") ~t0:500. ~t1:2500. in
    5.0 -. vmin (* depth of the downward excursion *)
  in
  let depths = List.map peak [ 30.; 60.; 120.; 240.; 480. ] in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-6 && increasing rest
    | [ _ ] | [] -> true
  in
  checkb "monotone depths" true (increasing depths);
  checkb "narrow barely moves" true (List.nth depths 0 < 2.5);
  checkb "wide reaches rail" true (List.nth depths 4 > 4.5)

let test_threshold_sensitivity_fig1 () =
  (* the same runt is seen by the low-VT inverter and missed by the
     high-VT one: the analog ground truth of Fig. 1 *)
  let f = G.fig1_circuit () in
  let drives = [ (f.G.sig_in, Drive.pulse ~slope:100. ~at:1000. ~width:175. ()) ] in
  let r = Sim.run (Sim.config ~t_stop:8000. DL.tech) f.G.circuit ~drives in
  checki "low-VT branch fires" 2 (List.length (Sim.edges r "out1c"));
  checki "high-VT branch silent" 0 (List.length (Sim.edges r "out2c"))

let test_trace_lookup_errors () =
  let c = G.inverter_chain ~n:1 () in
  let r = Sim.run (Sim.config ~t_stop:100. DL.tech) c ~drives:[] in
  checkb "unknown raises" true
    (try
       ignore (Sim.trace r "zzz");
       false
     with Not_found -> true)

let test_config_validation () =
  checkb "bad dt" true
    (try
       ignore (Sim.config ~dt:0. ~t_stop:10. DL.tech);
       false
     with Invalid_argument _ -> true);
  checkb "bad record_every" true
    (try
       ignore (Sim.config ~record_every:0 ~t_stop:10. DL.tech);
       false
     with Invalid_argument _ -> true)

let test_value_interpolation () =
  let tr = { Sim.sample_dt = 10.; volts = [| 0.; 1.; 2. |] } in
  checkf "exact" 1. (Sim.value_at tr 10.);
  checkf "interp" 0.5 (Sim.value_at tr 5.);
  checkf "clamp low" 0. (Sim.value_at tr (-5.));
  checkf "clamp high" 2. (Sim.value_at tr 100.)

let test_peak_in () =
  let tr = { Sim.sample_dt = 10.; volts = [| 0.; 3.; 1.; 4.; 0. |] } in
  let vmin, vmax = Sim.peak_in tr ~t0:0. ~t1:40. in
  checkf "min" 0. vmin;
  checkf "max" 4. vmax;
  let vmin2, vmax2 = Sim.peak_in tr ~t0:10. ~t1:20. in
  checkf "window min" 1. vmin2;
  checkf "window max" 3. vmax2

let tests =
  [
    ( "analog.macromodel",
      [
        QCheck_alcotest.to_alcotest prop_fuzzy_matches_bool;
        QCheck_alcotest.to_alcotest prop_fuzzy_within_unit_interval;
        Alcotest.test_case "of_gate" `Quick test_macromodel_of_gate;
        Alcotest.test_case "inverter goal" `Quick test_goal_voltage_inverter;
      ] );
    ( "analog.sim",
      [
        Alcotest.test_case "dc settling" `Quick test_dc_settling;
        Alcotest.test_case "step response" `Quick test_step_response;
        Alcotest.test_case "continuous degradation" `Quick
          test_glitch_degradation_continuous;
        Alcotest.test_case "fig1 threshold sensitivity" `Quick
          test_threshold_sensitivity_fig1;
        Alcotest.test_case "trace lookup" `Quick test_trace_lookup_errors;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "interpolation" `Quick test_value_interpolation;
        Alcotest.test_case "peak_in" `Quick test_peak_in;
      ] );
  ]
