(* Tests for Halotis_wave: transitions, waveform truncation semantics,
   digitization, VCD. *)

module T = Halotis_wave.Transition
module W = Halotis_wave.Waveform
module D = Halotis_wave.Digital
module Vcd = Halotis_wave.Vcd

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-6)) msg
let vdd = 5.0
let rise ~start ~tau = T.make ~start ~slope_time:tau ~polarity:T.Rising
let fall ~start ~tau = T.make ~start ~slope_time:tau ~polarity:T.Falling

(* --- Transition --- *)

let test_transition_validation () =
  checkb "bad tau" true
    (try
       ignore (T.make ~start:0. ~slope_time:0. ~polarity:T.Rising);
       false
     with Invalid_argument _ -> true);
  checkb "nan start" true
    (try
       ignore (T.make ~start:Float.nan ~slope_time:1. ~polarity:T.Rising);
       false
     with Invalid_argument _ -> true)

let test_transition_value () =
  let tr = rise ~start:100. ~tau:100. in
  checkf "at start" 0. (T.value_at ~vdd ~v_start:0. tr 100.);
  checkf "mid" 2.5 (T.value_at ~vdd ~v_start:0. tr 150.);
  checkf "end" 5. (T.value_at ~vdd ~v_start:0. tr 200.);
  checkf "saturates" 5. (T.value_at ~vdd ~v_start:0. tr 1000.);
  let tf = fall ~start:0. ~tau:200. in
  checkf "fall mid" 2.5 (T.value_at ~vdd ~v_start:5. tf 100.);
  checkf "fall saturates" 0. (T.value_at ~vdd ~v_start:5. tf 999.)

let test_transition_crossing () =
  let tr = rise ~start:100. ~tau:100. in
  (match T.crossing ~vdd ~v_start:0. tr ~vt:2.5 with
  | Some c -> checkf "cross mid" 150. c
  | None -> Alcotest.fail "expected crossing");
  checkb "already above" true (T.crossing ~vdd ~v_start:3. tr ~vt:2.5 = None);
  (* partial start voltage *)
  (match T.crossing ~vdd ~v_start:2. tr ~vt:4.5 with
  | Some c -> checkf "from 2V" (100. +. (2.5 /. 5. *. 100.)) c
  | None -> Alcotest.fail "expected crossing");
  let tf = fall ~start:0. ~tau:100. in
  (match T.crossing ~vdd ~v_start:5. tf ~vt:2.5 with
  | Some c -> checkf "fall cross" 50. c
  | None -> Alcotest.fail "expected crossing");
  checkb "fall below" true (T.crossing ~vdd ~v_start:1. tf ~vt:2.5 = None)

let test_polarity_helpers () =
  checkb "opp" true (T.opposite T.Rising = T.Falling);
  checkb "opp2" true (T.opposite T.Falling = T.Rising);
  checkb "eq" true (T.equal_polarity T.Rising T.Rising);
  checkb "neq" false (T.equal_polarity T.Rising T.Falling);
  checkf "target r" vdd (T.target ~vdd (rise ~start:0. ~tau:1.));
  checkf "target f" 0. (T.target ~vdd (fall ~start:0. ~tau:1.))

(* --- Waveform --- *)

let test_waveform_flat () =
  let w = W.create ~vdd () in
  checkf "initial" 0. (W.value_at w 123.);
  checkb "no last" true (W.last_segment w = None);
  checkb "no crossing" true (W.crossing_of_last w ~vt:2.5 = None);
  checki "no edges" 0 (D.edge_count w ~vt:2.5)

let test_waveform_step () =
  let w = W.create ~vdd () in
  let o = W.append w (rise ~start:100. ~tau:100.) in
  checkb "accepted" true o.W.accepted;
  checkb "nothing dropped" true (o.W.dropped = []);
  checkf "before" 0. (W.value_at w 50.);
  checkf "mid" 2.5 (W.value_at w 150.);
  checkf "after" 5. (W.value_at w 500.);
  checkb "last start" true (W.last_start w = Some 100.)

let test_waveform_noop_append () =
  let w = W.create ~vdd () in
  (* falling while already at 0 V: rejected *)
  let o = W.append w (fall ~start:100. ~tau:100.) in
  checkb "not accepted" false o.W.accepted;
  checki "no segments" 0 (W.segment_count w);
  (* rising to the rail then rising again: second is a no-op *)
  ignore (W.append w (rise ~start:200. ~tau:100.));
  let o2 = W.append w (rise ~start:1000. ~tau:50.) in
  checkb "second rise rejected" false o2.W.accepted

let test_waveform_full_pulse () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  ignore (W.append w (fall ~start:400. ~tau:100.));
  checkf "plateau" 5. (W.value_at w 300.);
  checkf "fall mid" 2.5 (W.value_at w 450.);
  checkf "after" 0. (W.value_at w 600.);
  checki "two edges" 2 (D.edge_count w ~vt:2.5);
  match D.pulses w ~vt:2.5 with
  | [ p ] ->
      checkb "positive" true p.D.positive;
      checkf "width" 300. p.D.width
  | l -> Alcotest.failf "expected one pulse, got %d" (List.length l)

let test_waveform_runt_truncation () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  (* reverse at 40% of the swing: peak 2 V *)
  let o = W.append w (fall ~start:140. ~tau:100.) in
  checkb "accepted" true o.W.accepted;
  checkb "nothing dropped" true (o.W.dropped = []);
  checkf "peak" 2. (W.value_at w 140.);
  checkf "back to zero" 0. (W.value_at w 300.);
  checki "invisible at 2.5" 0 (D.edge_count w ~vt:2.5);
  checki "visible at 1.0" 2 (D.edge_count w ~vt:1.0);
  match D.runts w with
  | [ r ] ->
      checkf "runt peak" 2. r.D.peak;
      checkb "upward" true r.D.upward
  | l -> Alcotest.failf "expected one runt, got %d" (List.length l)

let test_waveform_annul () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  ignore (W.append w (fall ~start:400. ~tau:100.));
  (* a transition starting before both wipes them *)
  let o = W.append w (rise ~start:50. ~tau:10.) in
  checki "dropped both" 2 (List.length o.W.dropped);
  checkb "accepted" true o.W.accepted;
  checki "one segment" 1 (W.segment_count w);
  checkf "fast rise" 5. (W.value_at w 61.)

let test_waveform_annul_to_noop () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  (* wipe the rise and fall from 0 V: voltage never moved, so the fall
     must be rejected too *)
  let o = W.append w (fall ~start:100. ~tau:50.) in
  checki "dropped rise" 1 (List.length o.W.dropped);
  checkb "noop fall" false o.W.accepted;
  checki "empty" 0 (W.segment_count w);
  checkf "still zero" 0. (W.value_at w 1000.)

let test_waveform_same_polarity_resume () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:200.));
  ignore (W.append w (fall ~start:150. ~tau:200.));
  (* rise again from the partial fall: same polarity as first, fine *)
  let o = W.append w (rise ~start:180. ~tau:100.) in
  checkb "accepted" true o.W.accepted;
  checki "three segments" 3 (W.segment_count w);
  checkf "ends high" 5. (W.value_at w 1000.)

let test_crossing_of_last () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  (match W.crossing_of_last w ~vt:4. with
  | Some c -> checkf "crossing" 180. c
  | None -> Alcotest.fail "expected crossing");
  ignore (W.append w (fall ~start:150. ~tau:100.));
  (* fall starts at 2.5 V: crossing of 4.0 V is impossible now *)
  checkb "unreachable" true (W.crossing_of_last w ~vt:4. = None);
  match W.crossing_of_last w ~vt:1. with
  | Some c -> checkf "fall crossing" (150. +. (1.5 /. 5. *. 100.)) c
  | None -> Alcotest.fail "expected fall crossing"

let test_crossings_skip_truncated () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  ignore (W.append w (fall ~start:130. ~tau:100.));
  (* peak 1.5 V: a 2.0 V observer sees nothing, and in particular not
     the would-be rising crossing at t=140 *)
  checki "nothing at 2.0" 0 (List.length (W.crossings w ~vt:2.0));
  checki "pair at 1.0" 2 (List.length (W.crossings w ~vt:1.0))

let test_initial_high_waveform () =
  let w = W.create ~initial:vdd ~vdd () in
  ignore (W.append w (fall ~start:100. ~tau:100.));
  checkf "before" 5. (W.value_at w 0.);
  checkf "after" 0. (W.value_at w 300.);
  (match D.edges w ~vt:2.5 with
  | [ { D.polarity = p; _ } ] -> checkb "falling" true (T.equal_polarity p T.Falling)
  | l -> Alcotest.failf "expected one edge, got %d" (List.length l));
  checkb "final low" false (D.final_level w ~vt:2.5)

let test_level_at () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  ignore (W.append w (fall ~start:400. ~tau:100.));
  checkb "before" false (D.level_at w ~vt:2.5 100.);
  checkb "during" true (D.level_at w ~vt:2.5 300.);
  checkb "after" false (D.level_at w ~vt:2.5 600.)

let test_sample () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:0. ~tau:100.));
  let samples = W.sample w ~t0:0. ~t1:100. ~dt:25. in
  checki "count" 5 (List.length samples);
  let _, v = List.nth samples 2 in
  checkf "midpoint" 2.5 v

(* Random well-formed waveform construction for properties: alternate
   polarities with positive gaps, which cannot produce annulments. *)
let gen_clean_waveform =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let* gaps = list_size (return n) (float_range 10. 500.) in
    let* taus = list_size (return n) (float_range 5. 300.) in
    return (gaps, taus))

let build_clean (gaps, taus) =
  let w = W.create ~vdd () in
  let t = ref 0. in
  List.iteri
    (fun i (gap, tau) ->
      t := !t +. gap;
      let polarity = if i mod 2 = 0 then T.Rising else T.Falling in
      ignore (W.append w (T.make ~start:!t ~slope_time:tau ~polarity)))
    (List.combine gaps taus);
  w

let prop_crossings_alternate =
  QCheck.Test.make ~name:"crossings alternate in polarity" ~count:300
    (QCheck.make gen_clean_waveform) (fun spec ->
      let w = build_clean spec in
      List.for_all
        (fun vt ->
          let cs = W.crossings w ~vt in
          let rec alternating = function
            | (_, p1) :: ((_, p2) :: _ as rest) ->
                (not (T.equal_polarity p1 p2)) && alternating rest
            | [ _ ] | [] -> true
          in
          alternating cs)
        [ 0.5; 1.5; 2.5; 3.5; 4.5 ])

let prop_crossings_time_ordered =
  QCheck.Test.make ~name:"crossings are time ordered" ~count:300
    (QCheck.make gen_clean_waveform) (fun spec ->
      let w = build_clean spec in
      List.for_all
        (fun vt ->
          let ts = List.map fst (W.crossings w ~vt) in
          let rec sorted = function
            | a :: (b :: _ as rest) -> a <= b && sorted rest
            | [ _ ] | [] -> true
          in
          sorted ts)
        [ 1.0; 2.5; 4.0 ])

let prop_value_within_rails =
  QCheck.Test.make ~name:"waveform voltage stays within rails" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_clean_waveform (float_range 0. 5000.)))
    (fun (spec, t) ->
      let w = build_clean spec in
      let v = W.value_at w t in
      v >= 0. && v <= vdd)

let prop_final_level_matches_value =
  QCheck.Test.make ~name:"final level agrees with late voltage" ~count:300
    (QCheck.make gen_clean_waveform) (fun spec ->
      let w = build_clean spec in
      let late = W.value_at w 1e9 in
      (* skip knife-edge cases where the final voltage sits at vt *)
      let vt = 2.5 in
      if Float.abs (late -. vt) < 0.01 then true
      else D.final_level w ~vt = (late > vt))

(* Appending with arbitrary (unordered) starts must preserve the
   invariant that stored segments are strictly increasing in start. *)
let prop_segments_strictly_increasing =
  QCheck.Test.make ~name:"segments strictly increasing after chaotic appends" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 15)
              (triple (float_range 0. 1000.) (float_range 1. 200.) bool))
    (fun specs ->
      let w = W.create ~vdd () in
      List.iter
        (fun (start, tau, up) ->
          let polarity = if up then T.Rising else T.Falling in
          ignore (W.append w (T.make ~start ~slope_time:tau ~polarity)))
        specs;
      let rec increasing = function
        | (s1 : W.segment) :: (s2 :: _ as rest) ->
            s1.W.transition.T.start < s2.W.transition.T.start && increasing rest
        | [ _ ] | [] -> true
      in
      increasing (W.segments w))

let prop_dropped_count_conservation =
  QCheck.Test.make ~name:"appends = live segments + dropped + rejected" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 15)
              (triple (float_range 0. 1000.) (float_range 1. 200.) bool))
    (fun specs ->
      let w = W.create ~vdd () in
      let dropped = ref 0 and rejected = ref 0 in
      List.iter
        (fun (start, tau, up) ->
          let polarity = if up then T.Rising else T.Falling in
          let o = W.append w (T.make ~start ~slope_time:tau ~polarity) in
          dropped := !dropped + List.length o.W.dropped;
          if not o.W.accepted then incr rejected)
        specs;
      List.length specs = W.segment_count w + !dropped + !rejected)

(* --- Compare --- *)

module C = Halotis_wave.Compare

let edge at polarity = { D.at; polarity }

let test_compare_identical () =
  let es = [ edge 100. T.Rising; edge 500. T.Falling ] in
  let r = C.edges ~tolerance:50. ~reference:es ~candidate:es in
  checki "matched" 2 r.C.matched;
  checkb "perfect" true (C.perfect r);
  checkf "agreement" 1.0 (C.agreement r);
  checkf "mean offset" 0. r.C.mean_offset

let test_compare_offsets () =
  let reference = [ edge 100. T.Rising; edge 500. T.Falling ] in
  let candidate = [ edge 130. T.Rising; edge 490. T.Falling ] in
  let r = C.edges ~tolerance:50. ~reference ~candidate in
  checki "matched" 2 r.C.matched;
  checkf "mean" 20. r.C.mean_offset;
  checkf "max" 30. r.C.max_offset

let test_compare_missing_extra () =
  let reference = [ edge 100. T.Rising; edge 500. T.Falling ] in
  let candidate = [ edge 100. T.Rising ] in
  let r = C.edges ~tolerance:50. ~reference ~candidate in
  checki "matched" 1 r.C.matched;
  checki "missing" 1 r.C.missing;
  checki "extra" 0 r.C.extra;
  checkb "not perfect" false (C.perfect r);
  let r2 = C.edges ~tolerance:50. ~reference:candidate ~candidate:reference in
  checki "extra2" 1 r2.C.extra

let test_compare_polarity_mismatch () =
  let reference = [ edge 100. T.Rising ] in
  let candidate = [ edge 100. T.Falling ] in
  let r = C.edges ~tolerance:50. ~reference ~candidate in
  checki "no match" 0 r.C.matched;
  checki "one missing" 1 r.C.missing;
  checki "one extra" 1 r.C.extra

let test_compare_empty () =
  let r = C.edges ~tolerance:50. ~reference:[] ~candidate:[] in
  checkf "agreement of empties" 1.0 (C.agreement r)

let test_compare_merge () =
  let mk matched missing extra mean maxo =
    { C.matched; missing; extra; mean_offset = mean; max_offset = maxo }
  in
  let m = C.merge [ mk 2 0 1 10. 15.; mk 2 1 0 30. 40. ] in
  checki "matched" 4 m.C.matched;
  checki "missing" 1 m.C.missing;
  checki "extra" 1 m.C.extra;
  checkf "weighted mean" 20. m.C.mean_offset;
  checkf "max" 40. m.C.max_offset

(* --- VCD --- *)

let test_vcd_render () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  ignore (W.append w (fall ~start:400. ~tau:100.));
  let dump = Vcd.of_waveform ~name:"sig_a" ~vt:2.5 w in
  let text = Vcd.render [ dump ] in
  checkb "header" true (String.length text > 0);
  let contains needle =
    let rec scan i =
      if i + String.length needle > String.length text then false
      else if String.sub text i (String.length needle) = needle then true
      else scan (i + 1)
    in
    scan 0
  in
  checkb "has var" true (contains "$var wire 1 ! sig_a $end");
  checkb "has timescale" true (contains "$timescale 1ps $end");
  checkb "has rise tick" true (contains "#150");
  checkb "has fall tick" true (contains "#450")

let test_vcd_multi_signal_idents () =
  let w1 = W.create ~vdd () in
  let w2 = W.create ~initial:vdd ~vdd () in
  ignore (W.append w1 (rise ~start:10. ~tau:10.));
  let dumps =
    [ Vcd.of_waveform ~name:"a" ~vt:2.5 w1; Vcd.of_waveform ~name:"b" ~vt:2.5 w2 ]
  in
  let text = Vcd.render dumps in
  let count_sub needle =
    let rec scan i acc =
      if i + String.length needle > String.length text then acc
      else if String.sub text i (String.length needle) = needle then
        scan (i + 1) (acc + 1)
      else scan (i + 1) acc
    in
    scan 0 0
  in
  checki "two vars" 2 (count_sub "$var wire 1 ");
  checkb "initial b high" true (count_sub "1\"" >= 1)

let test_vcd_write_file () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:10. ~tau:10.));
  let path = Filename.temp_file "halotis" ".vcd" in
  Vcd.write_file path [ Vcd.of_waveform ~name:"x" ~vt:2.5 w ];
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  checkb "non-empty" true (len > 50)

(* --- VCD reader --- *)

module Vr = Halotis_wave.Vcd_reader

let test_vcd_roundtrip () =
  let w1 = W.create ~vdd () in
  ignore (W.append w1 (rise ~start:100. ~tau:100.));
  ignore (W.append w1 (fall ~start:400. ~tau:100.));
  let w2 = W.create ~initial:vdd ~vdd () in
  ignore (W.append w2 (fall ~start:700. ~tau:100.));
  let text =
    Vcd.render
      [ Vcd.of_waveform ~name:"a" ~vt:2.5 w1; Vcd.of_waveform ~name:"b" ~vt:2.5 w2 ]
  in
  match Vr.parse_string text with
  | Error e -> Alcotest.failf "parse: %a" Vr.pp_error e
  | Ok t -> (
      checkf "timescale" 1. t.Vr.timescale_ps;
      checki "two signals" 2 (List.length t.Vr.signals);
      (match Vr.find t "a" with
      | Some s ->
          checkb "a initial low" false s.Vr.rd_initial;
          checki "a edges" 2 (List.length s.Vr.rd_edges);
          (* writer rounds to 1 ps *)
          (match s.Vr.rd_edges with
          | [ e1; e2 ] ->
              checkb "rise time" true (Float.abs (e1.D.at -. 150.) < 1.);
              checkb "fall time" true (Float.abs (e2.D.at -. 450.) < 1.)
          | _ -> Alcotest.fail "shape")
      | None -> Alcotest.fail "a missing");
      match Vr.find t "b" with
      | Some s ->
          checkb "b initial high" true s.Vr.rd_initial;
          checki "b edges" 1 (List.length s.Vr.rd_edges)
      | None -> Alcotest.fail "b missing")

let test_vcd_reader_timescale () =
  let text = "$timescale 10ns $end\n$var wire 1 ! x $end\n$enddefinitions $end\n$dumpvars\n0!\n$end\n#5\n1!\n" in
  match Vr.parse_string text with
  | Error e -> Alcotest.failf "parse: %a" Vr.pp_error e
  | Ok t -> (
      checkf "scale" 10000. t.Vr.timescale_ps;
      match Vr.find t "x" with
      | Some s -> (
          match s.Vr.rd_edges with
          | [ e ] -> checkf "scaled time" 50000. e.D.at
          | _ -> Alcotest.fail "one edge expected")
      | None -> Alcotest.fail "x missing")

let test_vcd_reader_first_change_late () =
  (* first record at t > 0: the initial level is inferred as the
     opposite so the change is a real edge *)
  let text = "$var wire 1 ! x $end\n#100\n1!\n" in
  match Vr.parse_string text with
  | Error e -> Alcotest.failf "parse: %a" Vr.pp_error e
  | Ok t -> (
      match Vr.find t "x" with
      | Some s ->
          checkb "initial inferred low" false s.Vr.rd_initial;
          checki "edge" 1 (List.length s.Vr.rd_edges)
      | None -> Alcotest.fail "x missing")

let test_vcd_reader_errors () =
  let expect_error text =
    match Vr.parse_string text with Ok _ -> Alcotest.failf "expected error for %S" text | Error _ -> ()
  in
  expect_error "$var wire 8 ! bus $end\nb1010 !\n";
  expect_error "$var wire 1 ! x $end\nx!\n";
  expect_error "1!\n";
  expect_error "$timescale 1lightyear $end\n";
  expect_error "$var wire 1 ! x $end\n#oops\n";
  expect_error "$timescale 1ps\n" (* missing $end *)

let test_vcd_reader_duplicate_changes () =
  (* repeated same-value changes collapse into nothing *)
  let text = "$var wire 1 ! x $end\n$dumpvars\n0!\n$end\n#10\n1!\n#20\n1!\n#30\n0!\n" in
  match Vr.parse_string text with
  | Error e -> Alcotest.failf "parse: %a" Vr.pp_error e
  | Ok t -> (
      match Vr.find t "x" with
      | Some s -> checki "two real edges" 2 (List.length s.Vr.rd_edges)
      | None -> Alcotest.fail "x missing")

let tests =
  [
    ( "wave.transition",
      [
        Alcotest.test_case "validation" `Quick test_transition_validation;
        Alcotest.test_case "value" `Quick test_transition_value;
        Alcotest.test_case "crossing" `Quick test_transition_crossing;
        Alcotest.test_case "polarity helpers" `Quick test_polarity_helpers;
      ] );
    ( "wave.waveform",
      [
        Alcotest.test_case "flat" `Quick test_waveform_flat;
        Alcotest.test_case "step" `Quick test_waveform_step;
        Alcotest.test_case "no-op append" `Quick test_waveform_noop_append;
        Alcotest.test_case "full pulse" `Quick test_waveform_full_pulse;
        Alcotest.test_case "runt truncation" `Quick test_waveform_runt_truncation;
        Alcotest.test_case "annul" `Quick test_waveform_annul;
        Alcotest.test_case "annul to no-op" `Quick test_waveform_annul_to_noop;
        Alcotest.test_case "same-polarity resume" `Quick test_waveform_same_polarity_resume;
        Alcotest.test_case "crossing of last" `Quick test_crossing_of_last;
        Alcotest.test_case "crossings skip truncated" `Quick test_crossings_skip_truncated;
        Alcotest.test_case "initial high" `Quick test_initial_high_waveform;
        Alcotest.test_case "level_at" `Quick test_level_at;
        Alcotest.test_case "sample" `Quick test_sample;
        QCheck_alcotest.to_alcotest prop_crossings_alternate;
        QCheck_alcotest.to_alcotest prop_crossings_time_ordered;
        QCheck_alcotest.to_alcotest prop_value_within_rails;
        QCheck_alcotest.to_alcotest prop_final_level_matches_value;
        QCheck_alcotest.to_alcotest prop_segments_strictly_increasing;
        QCheck_alcotest.to_alcotest prop_dropped_count_conservation;
      ] );
    ( "wave.compare",
      [
        Alcotest.test_case "identical" `Quick test_compare_identical;
        Alcotest.test_case "offsets" `Quick test_compare_offsets;
        Alcotest.test_case "missing/extra" `Quick test_compare_missing_extra;
        Alcotest.test_case "polarity mismatch" `Quick test_compare_polarity_mismatch;
        Alcotest.test_case "empty" `Quick test_compare_empty;
        Alcotest.test_case "merge" `Quick test_compare_merge;
      ] );
    ( "wave.vcd",
      [
        Alcotest.test_case "render" `Quick test_vcd_render;
        Alcotest.test_case "multi-signal idents" `Quick test_vcd_multi_signal_idents;
        Alcotest.test_case "write file" `Quick test_vcd_write_file;
        Alcotest.test_case "reader roundtrip" `Quick test_vcd_roundtrip;
        Alcotest.test_case "reader timescale" `Quick test_vcd_reader_timescale;
        Alcotest.test_case "reader late first change" `Quick test_vcd_reader_first_change_late;
        Alcotest.test_case "reader errors" `Quick test_vcd_reader_errors;
        Alcotest.test_case "reader duplicate changes" `Quick test_vcd_reader_duplicate_changes;
      ] );
  ]

(* --- Measure --- *)

module M = Halotis_wave.Measure

let test_measure_latencies () =
  let e at polarity = { D.at; polarity } in
  let cause = [ e 100. T.Rising; e 500. T.Falling ] in
  let response = [ e 180. T.Falling; e 620. T.Rising ] in
  let ls = M.latencies ~cause ~response () in
  Alcotest.(check (list (float 1e-9))) "pairs" [ 80.; 120. ] ls;
  (* same-polarity matching skips the inverted response *)
  let ls2 = M.latencies ~same_polarity:true ~cause ~response () in
  Alcotest.(check (list (float 1e-9))) "rising matches rising" [ 520. ] ls2;
  match M.stats ls with
  | Some s ->
      checki "count" 2 s.M.count;
      checkf "min" 80. s.M.min_ps;
      checkf "max" 120. s.M.max_ps;
      checkf "mean" 100. s.M.mean_ps;
      checkb "pp" true (String.length (Format.asprintf "%a" M.pp_stats s) > 5)
  | None -> Alcotest.fail "stats expected"

let test_measure_empty () =
  checkb "none" true (M.stats [] = None);
  checkb "unmatched skipped" true
    (M.latencies ~cause:[ { D.at = 10.; polarity = T.Rising } ] ~response:[] () = [])

let tests =
  tests
  @ [
      ( "wave.measure",
        [
          Alcotest.test_case "latencies" `Quick test_measure_latencies;
          Alcotest.test_case "empty" `Quick test_measure_empty;
        ] );
    ]

(* --- hysteresis --- *)

let test_hysteresis_clean_pulse () =
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  ignore (W.append w (fall ~start:500. ~tau:100.));
  let es = D.edges_hysteresis w ~vt_low:1.5 ~vt_high:3.5 in
  checki "two edges" 2 (List.length es);
  match es with
  | [ e1; e2 ] ->
      (* rise reported at the vt_high crossing, fall at vt_low *)
      checkf "rise at 3.5V" (100. +. (3.5 /. 5. *. 100.)) e1.D.at;
      checkf "fall at 1.5V" (500. +. (3.5 /. 5. *. 100.)) e2.D.at
  | _ -> Alcotest.fail "shape"

let test_hysteresis_suppresses_band_runts () =
  (* a runt peaking at 2.5 V: a mid-threshold observer chatters, the
     Schmitt trigger stays silent *)
  let w = W.create ~vdd () in
  ignore (W.append w (rise ~start:100. ~tau:100.));
  ignore (W.append w (fall ~start:150. ~tau:100.));
  checki "single threshold sees it" 2 (D.edge_count w ~vt:2.0);
  checki "hysteresis silent" 0
    (List.length (D.edges_hysteresis w ~vt_low:1.5 ~vt_high:3.5))

let test_hysteresis_validation () =
  let w = W.create ~vdd () in
  checkb "raises" true
    (try
       ignore (D.edges_hysteresis w ~vt_low:3.0 ~vt_high:2.0);
       false
     with Invalid_argument _ -> true)

let test_hysteresis_initial_high () =
  let w = W.create ~initial:vdd ~vdd () in
  ignore (W.append w (fall ~start:100. ~tau:100.));
  match D.edges_hysteresis w ~vt_low:1.5 ~vt_high:3.5 with
  | [ e ] -> checkb "falling" true (T.equal_polarity e.D.polarity T.Falling)
  | l -> Alcotest.failf "expected one edge, got %d" (List.length l)

let tests =
  tests
  @ [
      ( "wave.hysteresis",
        [
          Alcotest.test_case "clean pulse" `Quick test_hysteresis_clean_pulse;
          Alcotest.test_case "band runts suppressed" `Quick
            test_hysteresis_suppresses_band_runts;
          Alcotest.test_case "validation" `Quick test_hysteresis_validation;
          Alcotest.test_case "initial high" `Quick test_hysteresis_initial_high;
        ] );
    ]
