(* Tests for Halotis_power: activity counting and energy estimates. *)

module G = Halotis_netlist.Generators
module N = Halotis_netlist.Netlist
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic
module Drive = Halotis_engine.Drive
module Act = Halotis_power.Activity
module Energy = Halotis_power.Energy
module Glitch = Halotis_power.Glitch
module W = Halotis_wave.Waveform
module T = Halotis_wave.Transition
module DL = Halotis_tech.Default_lib
module DM = Halotis_delay.Delay_model
module V = Halotis_stim.Vectors

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let sid c n = match N.find_signal c n with Some s -> s | None -> assert false

let chain_run () =
  let c = G.inverter_chain ~n:3 () in
  let drives = [ (sid c "in", Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ] in
  Iddm.run (Iddm.config DL.tech) c ~drives

let test_activity_step () =
  let r = chain_run () in
  let report = Act.of_iddm r in
  (* in + out1 + out2 + out each switch once *)
  checki "total" 4 report.Act.total_transitions;
  checki "signals listed" 4 (Array.length report.Act.per_signal);
  checki "no complete pulses" 0 report.Act.full_pulses;
  Alcotest.(check string) "label" "IDDM/DDM" report.Act.engine_label

let test_activity_classic () =
  let c = G.inverter_chain ~n:3 () in
  let drives = [ (sid c "in", Drive.of_levels ~slope:100. ~initial:false [ (1000., true) ]) ] in
  let r = Classic.run (Classic.config DL.tech) c ~drives in
  let report = Act.of_classic r in
  checki "total" 4 report.Act.total_transitions;
  Alcotest.(check string) "label" "classic" report.Act.engine_label

let test_overestimation () =
  let mk total = { Act.total_transitions = total; per_signal = [||]; full_pulses = 0; engine_label = "x" } in
  Alcotest.(check (float 1e-9)) "47%" 47.
    (Act.overestimation_pct ~reference:(mk 100) ~candidate:(mk 147));
  Alcotest.(check (float 1e-9)) "zero ref" 0.
    (Act.overestimation_pct ~reference:(mk 0) ~candidate:(mk 10))

let test_busiest () =
  let report =
    {
      Act.total_transitions = 6;
      per_signal = [| ("a", 1); ("b", 3); ("c", 2) |];
      full_pulses = 0;
      engine_label = "x";
    }
  in
  Alcotest.(check (list (pair string int))) "top2" [ ("b", 3); ("c", 2) ] (Act.busiest report ~n:2)

let test_cdm_overestimates_on_multiplier () =
  let m = G.array_multiplier ~nand_only:true ~m:4 ~n:4 () in
  let c = m.G.mult_circuit in
  let drives =
    V.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits ~b_bits:m.G.mb_bits
      V.paper_sequence_b
  in
  let rd = Iddm.run (Iddm.config DL.tech) c ~drives in
  let rc = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) c ~drives in
  let actd = Act.of_iddm rd and actc = Act.of_iddm rc in
  let over = Act.overestimation_pct ~reference:actd ~candidate:actc in
  checkb "CDM counts more switching" true (over > 5.);
  Alcotest.(check string) "cdm label" "IDDM/CDM" actc.Act.engine_label

let test_energy () =
  let r = chain_run () in
  let report = Act.of_iddm r in
  let est = Energy.of_report DL.tech r.Iddm.circuit report in
  checkb "positive" true (est.Energy.total_fj > 0.);
  (* energy is additive over the per-signal entries *)
  let sum = Array.fold_left (fun acc (_, e) -> acc +. e) 0. est.Energy.per_signal_fj in
  Alcotest.(check (float 1e-9)) "additive" est.Energy.total_fj sum;
  (* a silent circuit burns nothing *)
  let c = G.inverter_chain ~n:3 () in
  let rq = Iddm.run (Iddm.config DL.tech) c ~drives:[ (sid c "in", Drive.constant true) ] in
  let est0 = Energy.of_report DL.tech c (Act.of_iddm rq) in
  Alcotest.(check (float 1e-9)) "zero" 0. est0.Energy.total_fj

let test_energy_savings () =
  let mk total = { Energy.total_fj = total; per_signal_fj = [||]; label = "x" } in
  Alcotest.(check (float 1e-9)) "20%" 20. (Energy.savings_pct ~reference:(mk 100.) ~candidate:(mk 120.));
  Alcotest.(check (float 1e-9)) "zero ref" 0. (Energy.savings_pct ~reference:(mk 0.) ~candidate:(mk 5.))

(* --- Glitch --- *)

let pulse_train widths =
  let w = W.create ~vdd:5. () in
  let t = ref 1000. in
  List.iter
    (fun width ->
      ignore (W.append w (T.make ~start:!t ~slope_time:50. ~polarity:T.Rising));
      ignore (W.append w (T.make ~start:(!t +. width) ~slope_time:50. ~polarity:T.Falling));
      t := !t +. width +. 500.)
    widths;
  w

let test_histogram () =
  let w = pulse_train [ 120.; 130.; 350.; 2000. ] in
  let h = Glitch.pulse_width_histogram ~bucket_width:100. ~buckets:5 ~vt:2.5 [| w |] in
  checki "bucket 1 (100-200)" 2 h.Glitch.counts.(1);
  checki "bucket 3 (300-400)" 1 h.Glitch.counts.(3);
  checki "overflow" 1 h.Glitch.overflow;
  checkb "pp renders" true
    (String.length (Format.asprintf "%a" Glitch.pp_histogram h) > 10)

let test_classify () =
  (* one period: three edges -> one settling edge + one glitch pulse *)
  let w = W.create ~vdd:5. () in
  List.iter
    (fun (t, pol) -> ignore (W.append w (T.make ~start:t ~slope_time:50. ~polarity:pol)))
    [ (1000., T.Rising); (1400., T.Falling); (2000., T.Rising) ];
  let r = Glitch.classify ~period:5000. ~vt:2.5 [| w |] in
  checki "functional" 1 r.Glitch.functional_edges;
  checki "glitches" 1 r.Glitch.glitch_pulses;
  Alcotest.(check (float 1e-9)) "fraction" (2. /. 3.) r.Glitch.glitch_energy_fraction

let test_classify_clean_signal () =
  let w = W.create ~vdd:5. () in
  ignore (W.append w (T.make ~start:1000. ~slope_time:50. ~polarity:T.Rising));
  let r = Glitch.classify ~period:5000. ~vt:2.5 [| w |] in
  checki "functional" 1 r.Glitch.functional_edges;
  checki "no glitches" 0 r.Glitch.glitch_pulses;
  Alcotest.(check (float 1e-9)) "fraction" 0. r.Glitch.glitch_energy_fraction

let test_classify_bad_period () =
  checkb "raises" true
    (try
       ignore (Glitch.classify ~period:0. ~vt:2.5 [||]);
       false
     with Invalid_argument _ -> true)

let test_glitch_cdm_vs_ddm () =
  (* CDM keeps more hazard pulses alive than DDM on the paper workload *)
  let m = G.array_multiplier ~m:4 ~n:4 () in
  let drives =
    V.multiplier_drives ~slope:100. ~period:5000. ~a_bits:m.G.ma_bits ~b_bits:m.G.mb_bits
      V.paper_sequence_b
  in
  let rd = Iddm.run (Iddm.config DL.tech) m.G.mult_circuit ~drives in
  let rc = Iddm.run (Iddm.config ~delay_kind:DM.Cdm DL.tech) m.G.mult_circuit ~drives in
  let gd = Glitch.classify ~period:5000. ~vt:2.5 rd.Iddm.waveforms in
  let gc = Glitch.classify ~period:5000. ~vt:2.5 rc.Iddm.waveforms in
  checkb "cdm more glitch pulses" true (gc.Glitch.glitch_pulses > gd.Glitch.glitch_pulses)

let tests =
  [
    ( "power.glitch",
      [
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "classify" `Quick test_classify;
        Alcotest.test_case "clean signal" `Quick test_classify_clean_signal;
        Alcotest.test_case "bad period" `Quick test_classify_bad_period;
        Alcotest.test_case "cdm vs ddm" `Quick test_glitch_cdm_vs_ddm;
      ] );
    ( "power.activity",
      [
        Alcotest.test_case "step counts" `Quick test_activity_step;
        Alcotest.test_case "classic counts" `Quick test_activity_classic;
        Alcotest.test_case "overestimation pct" `Quick test_overestimation;
        Alcotest.test_case "busiest" `Quick test_busiest;
        Alcotest.test_case "cdm overestimates" `Quick test_cdm_overestimates_on_multiplier;
      ] );
    ( "power.energy",
      [
        Alcotest.test_case "cv2 accounting" `Quick test_energy;
        Alcotest.test_case "savings pct" `Quick test_energy_savings;
      ] );
  ]
