(* Tests for Halotis_logic: 4-valued algebra and gate primitives. *)

module Value = Halotis_logic.Value
module Gate_kind = Halotis_logic.Gate_kind

let checkb = Alcotest.(check bool)
let all_values = [ Value.L0; Value.L1; Value.X; Value.Z ]

let value_testable =
  Alcotest.testable (fun fmt v -> Value.pp fmt v) Value.equal

let test_value_char_roundtrip () =
  List.iter
    (fun v ->
      match Value.of_char (Value.to_char v) with
      | Some v' -> Alcotest.check value_testable "roundtrip" v v'
      | None -> Alcotest.fail "of_char failed")
    all_values;
  checkb "bad char" true (Value.of_char 'q' = None)

let test_value_bool_bridge () =
  checkb "L0" true (Value.to_bool Value.L0 = Some false);
  checkb "L1" true (Value.to_bool Value.L1 = Some true);
  checkb "X" true (Value.to_bool Value.X = None);
  checkb "Z" true (Value.to_bool Value.Z = None);
  Alcotest.check value_testable "of_bool t" Value.L1 (Value.of_bool true);
  Alcotest.check value_testable "of_bool f" Value.L0 (Value.of_bool false)

let test_value_not () =
  Alcotest.check value_testable "not 0" Value.L1 (Value.lnot Value.L0);
  Alcotest.check value_testable "not 1" Value.L0 (Value.lnot Value.L1);
  Alcotest.check value_testable "not x" Value.X (Value.lnot Value.X);
  Alcotest.check value_testable "not z" Value.X (Value.lnot Value.Z)

let test_value_dominance () =
  (* 0 dominates and, 1 dominates or, even against unknowns *)
  List.iter
    (fun v ->
      Alcotest.check value_testable "0 and v" Value.L0 (Value.land_ Value.L0 v);
      Alcotest.check value_testable "v and 0" Value.L0 (Value.land_ v Value.L0);
      Alcotest.check value_testable "1 or v" Value.L1 (Value.lor_ Value.L1 v);
      Alcotest.check value_testable "v or 1" Value.L1 (Value.lor_ v Value.L1))
    all_values

let test_value_xor_unknown () =
  Alcotest.check value_testable "x ^ 1" Value.X (Value.lxor_ Value.X Value.L1);
  Alcotest.check value_testable "1 ^ 0" Value.L1 (Value.lxor_ Value.L1 Value.L0);
  Alcotest.check value_testable "1 ^ 1" Value.L0 (Value.lxor_ Value.L1 Value.L1)

let test_value_resolve () =
  Alcotest.check value_testable "z yields" Value.L1 (Value.resolve Value.Z Value.L1);
  Alcotest.check value_testable "z yields2" Value.L0 (Value.resolve Value.L0 Value.Z);
  Alcotest.check value_testable "conflict" Value.X (Value.resolve Value.L0 Value.L1);
  Alcotest.check value_testable "agree" Value.L1 (Value.resolve Value.L1 Value.L1)

let prop_land_commutative =
  QCheck.Test.make ~name:"land commutative" ~count:100
    QCheck.(pair (int_range 0 3) (int_range 0 3))
    (fun (i, j) ->
      let v k = List.nth all_values k in
      Value.equal (Value.land_ (v i) (v j)) (Value.land_ (v j) (v i)))

let prop_lor_associative =
  QCheck.Test.make ~name:"lor associative" ~count:100
    QCheck.(triple (int_range 0 3) (int_range 0 3) (int_range 0 3))
    (fun (i, j, k) ->
      let v n = List.nth all_values n in
      Value.equal
        (Value.lor_ (v i) (Value.lor_ (v j) (v k)))
        (Value.lor_ (Value.lor_ (v i) (v j)) (v k)))

(* --- Gate kinds --- *)

let test_arity () =
  Alcotest.(check int) "inv" 1 (Gate_kind.arity Gate_kind.Inv);
  Alcotest.(check int) "nand3" 3 (Gate_kind.arity (Gate_kind.Nand 3));
  Alcotest.(check int) "mux2" 3 (Gate_kind.arity Gate_kind.Mux2);
  Alcotest.(check int) "aoi21" 3 (Gate_kind.arity Gate_kind.Aoi21)

let truth_table_2 kind expected =
  List.iteri
    (fun i expect ->
      let a = i land 2 <> 0 and b = i land 1 <> 0 in
      checkb
        (Printf.sprintf "%s(%b,%b)" (Gate_kind.name kind) a b)
        expect
        (Gate_kind.eval_bool kind [| a; b |]))
    expected

let test_truth_tables () =
  (* order: (0,0) (0,1) (1,0) (1,1) *)
  truth_table_2 (Gate_kind.And 2) [ false; false; false; true ];
  truth_table_2 (Gate_kind.Nand 2) [ true; true; true; false ];
  truth_table_2 (Gate_kind.Or 2) [ false; true; true; true ];
  truth_table_2 (Gate_kind.Nor 2) [ true; false; false; false ];
  truth_table_2 (Gate_kind.Xor 2) [ false; true; true; false ];
  truth_table_2 (Gate_kind.Xnor 2) [ true; false; false; true ];
  checkb "inv 0" true (Gate_kind.eval_bool Gate_kind.Inv [| false |]);
  checkb "inv 1" false (Gate_kind.eval_bool Gate_kind.Inv [| true |]);
  checkb "buf" true (Gate_kind.eval_bool Gate_kind.Buf [| true |])

let test_complex_cells () =
  let cases3 kind f =
    for i = 0 to 7 do
      let a = i land 4 <> 0 and b = i land 2 <> 0 and c = i land 1 <> 0 in
      checkb
        (Printf.sprintf "%s %d" (Gate_kind.name kind) i)
        (f a b c)
        (Gate_kind.eval_bool kind [| a; b; c |])
    done
  in
  cases3 Gate_kind.Aoi21 (fun a b c -> not ((a && b) || c));
  cases3 Gate_kind.Oai21 (fun a b c -> not ((a || b) && c));
  cases3 Gate_kind.Mux2 (fun a b s -> if s then b else a)

let test_wide_gates () =
  checkb "and4 all" true (Gate_kind.eval_bool (Gate_kind.And 4) [| true; true; true; true |]);
  checkb "and4 one low" false
    (Gate_kind.eval_bool (Gate_kind.And 4) [| true; true; false; true |]);
  checkb "xor3 parity" true
    (Gate_kind.eval_bool (Gate_kind.Xor 3) [| true; true; true |]);
  checkb "nor3" false (Gate_kind.eval_bool (Gate_kind.Nor 3) [| false; true; false |])

let test_eval_arity_mismatch () =
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Gate_kind.eval: expected 2 inputs, got 1") (fun () ->
      ignore (Gate_kind.eval (Gate_kind.And 2) [| Value.L1 |]))

(* Property: the 4-valued eval agrees with eval_bool on resolved inputs. *)
let prop_eval_consistent =
  let kind_gen = QCheck.Gen.oneofl Gate_kind.all_basic in
  QCheck.Test.make ~name:"eval = eval_bool on resolved inputs" ~count:500
    (QCheck.make
       QCheck.Gen.(pair kind_gen (list_size (return 4) bool)))
    (fun (kind, bits) ->
      let n = Gate_kind.arity kind in
      let bools = Array.of_list (List.filteri (fun i _ -> i < n) (bits @ [ false; false; false; false ])) in
      let bools = Array.sub bools 0 n in
      let values = Array.map Value.of_bool bools in
      Value.equal (Gate_kind.eval kind values) (Value.of_bool (Gate_kind.eval_bool kind bools)))

let prop_name_roundtrip =
  let kind_gen = QCheck.Gen.oneofl Gate_kind.all_basic in
  QCheck.Test.make ~name:"of_name (name k) = k" ~count:100 (QCheck.make kind_gen) (fun kind ->
      match Gate_kind.of_name (Gate_kind.name kind) with
      | Some k -> Gate_kind.equal k kind
      | None -> false)

let test_of_name_errors () =
  checkb "unknown" true (Gate_kind.of_name "frob" = None);
  checkb "bad arity" true (Gate_kind.of_name "nand0" = None);
  checkb "no arity" true (Gate_kind.of_name "nand" = None);
  checkb "alias" true (Gate_kind.of_name "not" = Some Gate_kind.Inv)

let test_inverting () =
  checkb "nand" true (Gate_kind.inverting (Gate_kind.Nand 2));
  checkb "inv" true (Gate_kind.inverting Gate_kind.Inv);
  checkb "and" false (Gate_kind.inverting (Gate_kind.And 2));
  checkb "xor" false (Gate_kind.inverting (Gate_kind.Xor 2))

let tests =
  [
    ( "logic.value",
      [
        Alcotest.test_case "char roundtrip" `Quick test_value_char_roundtrip;
        Alcotest.test_case "bool bridge" `Quick test_value_bool_bridge;
        Alcotest.test_case "negation" `Quick test_value_not;
        Alcotest.test_case "dominance" `Quick test_value_dominance;
        Alcotest.test_case "xor unknown" `Quick test_value_xor_unknown;
        Alcotest.test_case "resolve" `Quick test_value_resolve;
        QCheck_alcotest.to_alcotest prop_land_commutative;
        QCheck_alcotest.to_alcotest prop_lor_associative;
      ] );
    ( "logic.gate_kind",
      [
        Alcotest.test_case "arity" `Quick test_arity;
        Alcotest.test_case "truth tables" `Quick test_truth_tables;
        Alcotest.test_case "complex cells" `Quick test_complex_cells;
        Alcotest.test_case "wide gates" `Quick test_wide_gates;
        Alcotest.test_case "arity mismatch" `Quick test_eval_arity_mismatch;
        Alcotest.test_case "of_name errors" `Quick test_of_name_errors;
        Alcotest.test_case "inverting" `Quick test_inverting;
        QCheck_alcotest.to_alcotest prop_eval_consistent;
        QCheck_alcotest.to_alcotest prop_name_roundtrip;
      ] );
  ]
