(* Tests for Halotis_liberty: tables, parser, fitting, round-trip. *)

module Table2d = Halotis_liberty.Table2d
module Ast = Halotis_liberty.Ast
module Liberty = Halotis_liberty.Liberty
module Fit = Halotis_liberty.Fit
module Writer = Halotis_liberty.Writer
module Tech = Halotis_tech.Tech
module DL = Halotis_tech.Default_lib
module Gate_kind = Halotis_logic.Gate_kind
module Linfit = Halotis_util.Linfit

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-6)) msg

(* --- multiple regression (lives in util, exercised here) --- *)

let test_multiple_regression_exact () =
  (* y = 3 + 2*x1 - 0.5*x2 *)
  let rows =
    List.concat_map
      (fun x1 -> List.map (fun x2 -> ([| x1; x2 |], 3. +. (2. *. x1) -. (0.5 *. x2))) [ 0.; 1.; 5. ])
      [ 0.; 2.; 7. ]
  in
  match Linfit.multiple_regression rows with
  | Some [| c0; c1; c2 |] ->
      checkf "c0" 3. c0;
      checkf "c1" 2. c1;
      checkf "c2" (-0.5) c2
  | Some _ | None -> Alcotest.fail "expected 3 coefficients"

let test_multiple_regression_degenerate () =
  checkb "empty" true (Linfit.multiple_regression [] = None);
  checkb "too few" true (Linfit.multiple_regression [ ([| 1.; 2. |], 3.) ] = None);
  (* collinear regressors -> singular *)
  let rows = List.init 6 (fun i -> ([| float_of_int i; 2. *. float_of_int i |], 1.)) in
  checkb "singular" true (Linfit.multiple_regression rows = None)

(* --- Table2d --- *)

let grid () =
  Table2d.make ~index1:[| 0.; 10. |] ~index2:[| 0.; 100. |]
    ~values:[| [| 0.; 100. |]; [| 10.; 110. |] |]

let test_table_corners () =
  let t = grid () in
  checkf "00" 0. (Table2d.lookup t 0. 0.);
  checkf "01" 100. (Table2d.lookup t 0. 100.);
  checkf "10" 10. (Table2d.lookup t 10. 0.);
  checkf "11" 110. (Table2d.lookup t 10. 100.)

let test_table_interpolation () =
  let t = grid () in
  checkf "center" 55. (Table2d.lookup t 5. 50.);
  checkf "edge mid" 50. (Table2d.lookup t 0. 50.)

let test_table_extrapolation () =
  let t = grid () in
  checkf "beyond x1" 20. (Table2d.lookup t 20. 0.);
  checkf "below x2" (-10.) (Table2d.lookup t 0. (-10.))

let test_table_validation () =
  let bad f = try f () |> ignore; false with Invalid_argument _ -> true in
  checkb "empty index" true
    (bad (fun () -> Table2d.make ~index1:[||] ~index2:[| 1. |] ~values:[||]));
  checkb "non increasing" true
    (bad (fun () ->
         Table2d.make ~index1:[| 2.; 1. |] ~index2:[| 1. |] ~values:[| [| 0. |]; [| 0. |] |]));
  checkb "shape mismatch" true
    (bad (fun () -> Table2d.make ~index1:[| 1.; 2. |] ~index2:[| 1. |] ~values:[| [| 0. |] |]))

let test_table_single_point () =
  let t = Table2d.make ~index1:[| 5. |] ~index2:[| 7. |] ~values:[| [| 42. |] |] in
  checkf "flat everywhere" 42. (Table2d.lookup t 0. 100.);
  checki "samples" 1 (List.length (Table2d.sample_points t))

(* --- Ast parser --- *)

let sample_lib =
  {|/* sample */
library (demo) {
  time_unit : "1ps";
  cell (inv) {
    pin (a) { direction : input; capacitance : 6.0; }
    pin (y) {
      direction : output;
      timing () {
        related_pin : "a";
        cell_rise (grid) {
          index_1 ("10, 100");
          index_2 ("5, 50");
          values ("30, 60", "45, 75");
        }
        rise_transition (grid) {
          index_1 ("10, 100");
          index_2 ("5, 50");
          values ("40, 80", "40, 80");
        }
        cell_fall (grid) {
          index_1 ("10, 100");
          index_2 ("5, 50");
          values ("25, 55", "40, 70");
        }
        fall_transition (grid) {
          index_1 ("10, 100");
          index_2 ("5, 50");
          values ("35, 70", "35, 70");
        }
      }
    }
  }
}|}

let test_ast_parse () =
  match Ast.parse_string sample_lib with
  | Error e -> Alcotest.failf "parse: %a" Ast.pp_error e
  | Ok g ->
      Alcotest.(check string) "library" "library" g.Ast.g_name;
      Alcotest.(check (list string)) "args" [ "demo" ] g.Ast.g_args;
      checkb "time_unit" true (Ast.find_attr g "time_unit" = Some "1ps");
      checki "one cell" 1 (List.length (Ast.find_groups g "cell"))

let test_ast_comments_and_errors () =
  checkb "line comment" true
    (match Ast.parse_string "// hi\nlibrary (x) { }" with Ok _ -> true | Error _ -> false);
  let expect_error text =
    match Ast.parse_string text with Ok _ -> false | Error _ -> true
  in
  checkb "unterminated" true (expect_error "library (x) {");
  checkb "garbage" true (expect_error "{}");
  checkb "trailing" true (expect_error "library (x) { } extra");
  checkb "bad attr" true (expect_error "library (x) { a : ; }");
  checkb "unterminated string" true (expect_error "library (x) { a : \"oops; }")

(* --- Liberty interpretation --- *)

let parsed_lib () =
  match Liberty.parse_string sample_lib with
  | Ok l -> l
  | Error e -> Alcotest.failf "interp: %a" Liberty.pp_error e

let test_liberty_cells () =
  let l = parsed_lib () in
  Alcotest.(check string) "name" "demo" l.Liberty.lib_name;
  checki "one cell" 1 (List.length l.Liberty.cells);
  match Liberty.find_cell l "inv" with
  | None -> Alcotest.fail "inv missing"
  | Some c ->
      Alcotest.(check string) "output pin" "y" c.Liberty.output_pin;
      checkb "input cap" true (List.assoc "a" c.Liberty.input_caps = 6.0);
      checki "one arc" 1 (List.length c.Liberty.arcs)

let test_liberty_lookup () =
  let l = parsed_lib () in
  match Liberty.find_cell l "inv" with
  | None -> Alcotest.fail "inv missing"
  | Some c ->
      (match Liberty.delay c ~rising:true ~pin:"a" ~slope:10. ~load:5. with
      | Some d -> checkf "corner" 30. d
      | None -> Alcotest.fail "expected delay");
      (match Liberty.delay c ~rising:true ~pin:"a" ~slope:55. ~load:27.5 with
      | Some d -> checkf "center" 52.5 d
      | None -> Alcotest.fail "expected delay");
      checkb "unknown pin" true (Liberty.delay c ~rising:true ~pin:"zz" ~slope:1. ~load:1. = None);
      match Liberty.output_slope c ~rising:false ~pin:"a" ~slope:10. ~load:50. with
      | Some s -> checkf "fall transition" 70. s
      | None -> Alcotest.fail "expected slope"

(* --- round trip: tech -> liberty -> fitted tech --- *)

let test_roundtrip_exact () =
  let kinds = [ Gate_kind.Inv; Gate_kind.Nand 2; Gate_kind.Xor 2 ] in
  let text = Writer.of_tech DL.tech ~kinds in
  match Liberty.parse_string text with
  | Error e -> Alcotest.failf "reparse: %a" Liberty.pp_error e
  | Ok lib ->
      let fitted, qualities =
        Fit.to_tech ~base:DL.tech ~kind_of_cell:Fit.default_kind_of_cell lib
      in
      checki "all kinds fitted" (List.length kinds) (List.length qualities);
      List.iter
        (fun (_, q) ->
          checkb "delay fit exact" true (q.Fit.delay_rmse < 1e-6);
          checkb "slope fit exact" true (q.Fit.slope_rmse < 1e-6))
        qualities;
      (* fitted coefficients reproduce the base delays everywhere *)
      List.iter
        (fun kind ->
          let g0 = Tech.gate_tech DL.tech kind and g1 = Tech.gate_tech fitted kind in
          List.iter
            (fun rising ->
              List.iter
                (fun (slope, load) ->
                  let d t =
                    Tech.base_delay (Tech.edge t ~rising) ~pin_factor:1.0 ~cl:load
                      ~tau_in:slope
                  in
                  checkb "same delay" true (Float.abs (d g0 -. d g1) < 1e-6))
                [ (30., 8.); (120., 40.); (250., 15.) ])
            [ true; false ];
          checkb "cap carried" true
            (Float.abs (g0.Tech.input_cap -. g1.Tech.input_cap) < 1e-9))
        kinds

let test_fit_preserves_ddm () =
  let kinds = [ Gate_kind.Inv ] in
  let text = Writer.of_tech DL.tech ~kinds in
  match Liberty.parse_string text with
  | Error e -> Alcotest.failf "reparse: %a" Liberty.pp_error e
  | Ok lib ->
      let fitted, _ = Fit.to_tech ~base:DL.tech ~kind_of_cell:Fit.default_kind_of_cell lib in
      let p0 = Tech.edge (Tech.gate_tech DL.tech Gate_kind.Inv) ~rising:true in
      let p1 = Tech.edge (Tech.gate_tech fitted Gate_kind.Inv) ~rising:true in
      checkf "ddm_a kept" p0.Tech.ddm_a p1.Tech.ddm_a;
      checkf "ddm_c kept" p0.Tech.ddm_c p1.Tech.ddm_c

let test_fit_fallback_for_missing_cells () =
  let text = Writer.of_tech DL.tech ~kinds:[ Gate_kind.Inv ] in
  match Liberty.parse_string text with
  | Error e -> Alcotest.failf "reparse: %a" Liberty.pp_error e
  | Ok lib ->
      let fitted, _ = Fit.to_tech ~base:DL.tech ~kind_of_cell:Fit.default_kind_of_cell lib in
      (* NOR2 was not exported: falls back to the base *)
      let g0 = Tech.gate_tech DL.tech (Gate_kind.Nor 2) in
      let g1 = Tech.gate_tech fitted (Gate_kind.Nor 2) in
      checkf "fallback d0" g0.Tech.rise.Tech.d0 g1.Tech.rise.Tech.d0

let tests =
  [
    ( "liberty.regression",
      [
        Alcotest.test_case "exact" `Quick test_multiple_regression_exact;
        Alcotest.test_case "degenerate" `Quick test_multiple_regression_degenerate;
      ] );
    ( "liberty.table2d",
      [
        Alcotest.test_case "corners" `Quick test_table_corners;
        Alcotest.test_case "interpolation" `Quick test_table_interpolation;
        Alcotest.test_case "extrapolation" `Quick test_table_extrapolation;
        Alcotest.test_case "validation" `Quick test_table_validation;
        Alcotest.test_case "single point" `Quick test_table_single_point;
      ] );
    ( "liberty.parser",
      [
        Alcotest.test_case "parse" `Quick test_ast_parse;
        Alcotest.test_case "comments/errors" `Quick test_ast_comments_and_errors;
        Alcotest.test_case "cells" `Quick test_liberty_cells;
        Alcotest.test_case "lookup" `Quick test_liberty_lookup;
      ] );
    ( "liberty.fit",
      [
        Alcotest.test_case "roundtrip exact" `Quick test_roundtrip_exact;
        Alcotest.test_case "preserves ddm" `Quick test_fit_preserves_ddm;
        Alcotest.test_case "fallback" `Quick test_fit_fallback_for_missing_cells;
      ] );
  ]

let prop_liberty_never_raises =
  QCheck.Test.make ~name:"liberty parser total on garbage" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun text ->
      match Liberty.parse_string text with Ok _ | Error _ -> true)

let prop_stimfile_never_raises =
  QCheck.Test.make ~name:"stimfile parser total on garbage" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun text ->
      match Halotis_stim.Stimfile.parse_string text with Ok _ | Error _ -> true)

let prop_vcd_never_raises =
  QCheck.Test.make ~name:"vcd reader total on garbage" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun text ->
      match Halotis_wave.Vcd_reader.parse_string text with Ok _ | Error _ -> true)

let tests =
  tests
  @ [
      ( "parsers.fuzz",
        [
          QCheck_alcotest.to_alcotest prop_liberty_never_raises;
          QCheck_alcotest.to_alcotest prop_stimfile_never_raises;
          QCheck_alcotest.to_alcotest prop_vcd_never_raises;
        ] );
    ]
