(* Tests for Halotis_delay: load extraction, thresholds, CDM/DDM. *)

module N = Halotis_netlist.Netlist
module Builder = Halotis_netlist.Builder
module G = Halotis_netlist.Generators
module Tech = Halotis_tech.Tech
module DL = Halotis_tech.Default_lib
module Loads = Halotis_delay.Loads
module Thresholds = Halotis_delay.Thresholds
module DM = Halotis_delay.Delay_model
module Gate_kind = Halotis_logic.Gate_kind

let checkb = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-6)) msg

let fanout_circuit n =
  let b = Builder.create "fan" in
  let a = Builder.input b "a" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b Gate_kind.Inv ~name:"drv" ~inputs:[ a ] ~output:y in
  for i = 1 to n do
    let o = Builder.signal b (Printf.sprintf "o%d" i) in
    let _ =
      Builder.add_gate b Gate_kind.Inv ~name:(Printf.sprintf "ld%d" i) ~inputs:[ y ]
        ~output:o
    in
    Builder.mark_output b o
  done;
  Builder.finalize b

let test_loads_scale_with_fanout () =
  let c1 = fanout_circuit 1 and c4 = fanout_circuit 4 in
  let y1 = match N.find_signal c1 "y" with Some s -> s | None -> assert false in
  let y4 = match N.find_signal c4 "y" with Some s -> s | None -> assert false in
  let l1 = Loads.signal_load DL.tech c1 y1 and l4 = Loads.signal_load DL.tech c4 y4 in
  checkb "4 loads heavier" true (l4 > l1);
  let inv_cap = (Tech.gate_tech DL.tech Gate_kind.Inv).Tech.input_cap in
  let wire = Tech.wire_cap_per_fanout DL.tech in
  checkf "exact formula" ((4. *. inv_cap) +. (4. *. wire)) l4

let test_loads_unloaded_measurement () =
  let c = G.inverter_chain ~n:1 () in
  let out = match N.find_signal c "out" with Some s -> s | None -> assert false in
  let inv_cap = (Tech.gate_tech DL.tech Gate_kind.Inv).Tech.input_cap in
  checkf "one inverter equivalent" inv_cap (Loads.signal_load DL.tech c out)

let test_loads_extra_load () =
  let b = Builder.create "x" in
  let a = Builder.input b "a" in
  let y = Builder.signal b "y" in
  let _ =
    Builder.add_gate b Gate_kind.Inv ~name:"g" ~extra_load:25. ~inputs:[ a ] ~output:y
  in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let yid = match N.find_signal c "y" with Some s -> s | None -> assert false in
  let inv_cap = (Tech.gate_tech DL.tech Gate_kind.Inv).Tech.input_cap in
  checkf "extra included" (25. +. inv_cap) (Loads.signal_load DL.tech c yid)

let test_loads_table_matches_pointwise () =
  let f = G.fig1_circuit () in
  let table = Loads.of_netlist DL.tech f.G.circuit in
  Array.iteri
    (fun sid l -> checkf "table" (Loads.signal_load DL.tech f.G.circuit sid) l)
    table

let test_thresholds_override () =
  let f = G.fig1_circuit ~vt_low:1.1 ~vt_high:3.9 () in
  let c = f.G.circuit in
  let g1 = match N.find_gate c "g1" with Some g -> g | None -> assert false in
  let g2 = match N.find_gate c "g2" with Some g -> g | None -> assert false in
  let chain = match N.find_gate c "chain_a" with Some g -> g | None -> assert false in
  checkf "low override" 1.1 (Thresholds.input_vt DL.tech c g1 ~pin:0);
  checkf "high override" 3.9 (Thresholds.input_vt DL.tech c g2 ~pin:0);
  checkf "default elsewhere" 2.5 (Thresholds.input_vt DL.tech c chain ~pin:0);
  let table = Thresholds.table DL.tech c in
  checkf "table matches" 1.1 table.(g1).(0)

let base_request ?(t_event = 1000.) ?(last = None) ?(tau_in = 100.) ?(pin = 0)
    ?(rising = true) () =
  { DM.rising_out = rising; pin; tau_in; t_event; last_output_start = last }

let inv_tech () = Tech.gate_tech DL.tech Gate_kind.Inv

let test_cdm_stateless () =
  let gt = inv_tech () in
  let r1 = DM.compute DL.tech ~gate_tech:gt ~cl:10. DM.Cdm (base_request ()) in
  let r2 =
    DM.compute DL.tech ~gate_tech:gt ~cl:10. DM.Cdm (base_request ~last:(Some 999.) ())
  in
  checkf "history ignored" r1.DM.tp r2.DM.tp;
  checkb "never degraded" true (not r1.DM.degraded && not r2.DM.degraded);
  checkf "tp = nominal" r1.DM.tp_nominal r1.DM.tp

let test_ddm_no_history () =
  let gt = inv_tech () in
  let r = DM.compute DL.tech ~gate_tech:gt ~cl:10. DM.Ddm (base_request ~last:None ()) in
  checkf "full delay" r.DM.tp_nominal r.DM.tp;
  checkb "not degraded" true (not r.DM.degraded)

let test_ddm_degrades_close_history () =
  let gt = inv_tech () in
  let far =
    DM.compute DL.tech ~gate_tech:gt ~cl:10. DM.Ddm (base_request ~last:(Some (-1e6)) ())
  in
  let near =
    DM.compute DL.tech ~gate_tech:gt ~cl:10. DM.Ddm (base_request ~last:(Some 980.) ())
  in
  checkb "far = nominal" true (Float.abs (far.DM.tp -. far.DM.tp_nominal) < 1e-6);
  checkb "near degraded" true near.DM.degraded;
  checkb "near smaller" true (near.DM.tp < far.DM.tp)

let test_ddm_collapse () =
  let gt = inv_tech () in
  (* the previous output transition lies *after* the nominal instant of
     the new one (T <= T0): the delay collapses to 0 *)
  let r =
    DM.compute DL.tech ~gate_tech:gt ~cl:10. DM.Ddm
      (base_request ~t_event:1000. ~last:(Some 1500.) ())
  in
  checkf "collapsed" 0. r.DM.tp

let prop_ddm_monotone_in_history =
  QCheck.Test.make ~name:"DDM delay monotone in time since last output" ~count:200
    QCheck.(pair (float_range 0. 2000.) (float_range 0. 2000.))
    (fun (t1, t2) ->
      let gt = inv_tech () in
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      let d last =
        (DM.compute DL.tech ~gate_tech:gt ~cl:10. DM.Ddm
           (base_request ~t_event:5000. ~last:(Some (5000. -. last)) ()))
          .DM.tp
      in
      d hi >= d lo -. 1e-9)

let prop_ddm_bounded_by_cdm =
  QCheck.Test.make ~name:"DDM delay never exceeds CDM delay" ~count:200
    QCheck.(triple (float_range 0. 3000.) (float_range 1. 60.) (float_range 10. 400.))
    (fun (gap, cl, tau_in) ->
      let gt = inv_tech () in
      let req = base_request ~t_event:5000. ~last:(Some (5000. -. gap)) ~tau_in () in
      let ddm = DM.compute DL.tech ~gate_tech:gt ~cl DM.Ddm req in
      let cdm = DM.compute DL.tech ~gate_tech:gt ~cl DM.Cdm req in
      ddm.DM.tp <= cdm.DM.tp +. 1e-9 && ddm.DM.tau_out = cdm.DM.tau_out)

let test_for_gate_uses_pin_factor () =
  let b = Builder.create "p" in
  let a = Builder.input b "a" in
  let a2 = Builder.input b "a2" in
  let y = Builder.signal b "y" in
  let _ = Builder.add_gate b (Gate_kind.Nand 2) ~name:"g" ~inputs:[ a; a2 ] ~output:y in
  Builder.mark_output b y;
  let c = Builder.finalize b in
  let loads = Loads.of_netlist DL.tech c in
  let d pin = (DM.for_gate DL.tech c ~loads 0 DM.Cdm (base_request ~pin ())).DM.tp in
  checkb "pin 1 slower" true (d 1 > d 0)

let test_kind_to_string () =
  Alcotest.(check string) "cdm" "CDM" (DM.kind_to_string DM.Cdm);
  Alcotest.(check string) "ddm" "DDM" (DM.kind_to_string DM.Ddm)

let tests =
  [
    ( "delay.loads",
      [
        Alcotest.test_case "fanout scaling" `Quick test_loads_scale_with_fanout;
        Alcotest.test_case "measurement load" `Quick test_loads_unloaded_measurement;
        Alcotest.test_case "extra load" `Quick test_loads_extra_load;
        Alcotest.test_case "table pointwise" `Quick test_loads_table_matches_pointwise;
      ] );
    ( "delay.thresholds",
      [ Alcotest.test_case "override" `Quick test_thresholds_override ] );
    ( "delay.model",
      [
        Alcotest.test_case "cdm stateless" `Quick test_cdm_stateless;
        Alcotest.test_case "ddm no history" `Quick test_ddm_no_history;
        Alcotest.test_case "ddm degrades" `Quick test_ddm_degrades_close_history;
        Alcotest.test_case "ddm collapse" `Quick test_ddm_collapse;
        Alcotest.test_case "pin factor" `Quick test_for_gate_uses_pin_factor;
        Alcotest.test_case "kind names" `Quick test_kind_to_string;
        QCheck_alcotest.to_alcotest prop_ddm_monotone_in_history;
        QCheck_alcotest.to_alcotest prop_ddm_bounded_by_cdm;
      ] );
  ]
