(* Tests for Halotis_report: tables, figures, experiment records. *)

module Table = Halotis_report.Table
module Figures = Halotis_report.Figures
module Experiment = Halotis_report.Experiment
module W = Halotis_wave.Waveform
module T = Halotis_wave.Transition
module D = Halotis_wave.Digital

let checkb = Alcotest.(check bool)
let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_table_render () =
  let t = Table.make ~header:[ "seq"; "events" ] ~rows:[ [ "A"; "959" ]; [ "B"; "1312" ] ] in
  let text = Table.render t in
  checkb "header" true (contains text "| seq | events |");
  checkb "row" true (contains text "| B   | 1312   |");
  checkb "rule" true (contains text "+=====+========+")

let test_table_padding () =
  let t = Table.make ~header:[ "a"; "b"; "c" ] ~rows:[ [ "1" ] ] in
  let text = Table.render t in
  checkb "padded row renders" true (contains text "| 1 |   |   |")

let test_table_csv () =
  let t =
    Table.make ~header:[ "name"; "value" ]
      ~rows:[ [ "plain"; "1" ]; [ "with,comma"; "2" ]; [ "with\"quote"; "3" ] ]
  in
  let csv = Table.to_csv t in
  checkb "header line" true (contains csv "name,value");
  checkb "comma quoted" true (contains csv "\"with,comma\",2");
  checkb "quote escaped" true (contains csv "\"with\"\"quote\",3")

let pulse_waveform () =
  let w = W.create ~vdd:5. () in
  ignore (W.append w (T.make ~start:1000. ~slope_time:100. ~polarity:T.Rising));
  ignore (W.append w (T.make ~start:3000. ~slope_time:100. ~polarity:T.Falling));
  w

let test_timing_diagram () =
  let w = pulse_waveform () in
  let lane = Figures.lane_of_waveform ~label:"sig" ~vt:2.5 w in
  let text = Figures.timing_diagram ~width:40 ~t0:0. ~t1:5000. [ lane ] in
  checkb "label present" true (contains text "sig ");
  checkb "has low" true (contains text "_");
  checkb "has high" true (contains text "-");
  checkb "has edges" true (contains text "|");
  checkb "has axis" true (contains text "^0.0ns")

let test_timing_diagram_initial_high () =
  let lane = Figures.lane_of_edges ~label:"x" ~initial:true [] in
  let text = Figures.timing_diagram ~width:20 ~t0:0. ~t1:100. [ lane ] in
  checkb "all high" true (contains text "--------------------")

let test_timing_diagram_errors () =
  checkb "empty range" true
    (try
       ignore (Figures.timing_diagram ~t0:10. ~t1:10. []);
       false
     with Invalid_argument _ -> true)

let test_voltage_lane () =
  let w = pulse_waveform () in
  let text =
    Figures.voltage_lane ~width:40 ~rows:5 ~t0:0. ~t1:5000. ~vdd:5. ~label:"v(out)"
      (fun t -> W.value_at w t)
  in
  checkb "label" true (contains text "v(out)");
  checkb "has samples" true (contains text "*")

let test_experiment_render () =
  let e =
    Experiment.make ~exp_id:"TAB1" ~title:"Switching activity"
      [
        Experiment.observation ~agrees:true ~metric:"overestimation seq A" ~paper:"47%"
          ~measured:"21%" ~note:"weaker but same direction" ();
        Experiment.observation ~metric:"shape" ~paper:"CDM > DDM" ~measured:"CDM > DDM" ();
      ]
  in
  let text = Experiment.render e in
  checkb "id" true (contains text "TAB1");
  checkb "verdict ok" true (contains text "[OK]");
  checkb "qualitative" true (contains text "[qualitative]");
  let md = Experiment.render_markdown [ e ] in
  checkb "markdown header" true (contains md "## TAB1");
  checkb "markdown table" true (contains md "| Metric | Paper | Measured | Verdict | Note |")

let test_experiment_diverges () =
  let e =
    Experiment.make ~exp_id:"X" ~title:"t"
      [ Experiment.observation ~agrees:false ~metric:"m" ~paper:"1" ~measured:"2" () ]
  in
  checkb "diverges" true (contains (Experiment.render e) "DIVERGES")

let tests =
  [
    ( "report.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "padding" `Quick test_table_padding;
        Alcotest.test_case "csv" `Quick test_table_csv;
      ] );
    ( "report.figures",
      [
        Alcotest.test_case "timing diagram" `Quick test_timing_diagram;
        Alcotest.test_case "initial high" `Quick test_timing_diagram_initial_high;
        Alcotest.test_case "errors" `Quick test_timing_diagram_errors;
        Alcotest.test_case "voltage lane" `Quick test_voltage_lane;
      ] );
    ( "report.experiment",
      [
        Alcotest.test_case "render" `Quick test_experiment_render;
        Alcotest.test_case "diverges" `Quick test_experiment_diverges;
      ] );
  ]
