module Tech = Halotis_tech.Tech
module Gate_kind = Halotis_logic.Gate_kind

let default_slopes = [| 20.; 60.; 150.; 300. |]
let default_loads = [| 4.; 10.; 25.; 60. |]

let floats_csv a =
  String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%g") a))

let of_tech ?(slopes = default_slopes) ?(loads = default_loads) tech ~kinds =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "/* characterised from %s by HALOTIS */\n" (Tech.name tech);
  pr "library (%s) {\n" (Tech.name tech);
  pr "  time_unit : \"1ps\";\n";
  pr "  capacitive_load_unit : \"1ff\";\n";
  List.iter
    (fun kind ->
      let gt = Tech.gate_tech tech kind in
      let cell_name = Gate_kind.name kind in
      pr "  cell (%s) {\n" cell_name;
      let arity = Gate_kind.arity kind in
      for pin = 0 to arity - 1 do
        pr "    pin (i%d) {\n      direction : input;\n      capacitance : %g;\n    }\n" pin
          gt.Tech.input_cap
      done;
      pr "    pin (y) {\n      direction : output;\n";
      pr "      timing () {\n        related_pin : \"i0\";\n";
      let table name f =
        pr "        %s (grid) {\n" name;
        pr "          index_1 (\"%s\");\n" (floats_csv slopes);
        pr "          index_2 (\"%s\");\n" (floats_csv loads);
        let rows =
          Array.to_list
            (Array.map
               (fun slope ->
                 "\"" ^ floats_csv (Array.map (fun load -> f ~slope ~load) loads) ^ "\"")
               slopes)
        in
        pr "          values (%s);\n" (String.concat ", " rows);
        pr "        }\n"
      in
      let delay ~rising ~slope ~load =
        Tech.base_delay (Tech.edge gt ~rising) ~pin_factor:1.0 ~cl:load ~tau_in:slope
      in
      let transition ~rising ~slope:_ ~load =
        Tech.output_slope (Tech.edge gt ~rising) ~cl:load
      in
      table "cell_rise" (delay ~rising:true);
      table "rise_transition" (transition ~rising:true);
      table "cell_fall" (delay ~rising:false);
      table "fall_transition" (transition ~rising:false);
      pr "      }\n    }\n  }\n")
    kinds;
  pr "}\n";
  Buffer.contents buf

let write_file ?slopes ?loads path tech ~kinds =
  let oc = open_out path in
  output_string oc (of_tech ?slopes ?loads tech ~kinds);
  close_out oc
