module Tech = Halotis_tech.Tech
module Gate_kind = Halotis_logic.Gate_kind
module Linfit = Halotis_util.Linfit

type quality = { delay_rmse : float; slope_rmse : float }

let rmse residuals =
  match residuals with
  | [] -> 0.
  | _ ->
      let n = float_of_int (List.length residuals) in
      sqrt (List.fold_left (fun acc r -> acc +. (r *. r)) 0. residuals /. n)

let fit_edge ~delay ~transition ~base =
  let delay_rows =
    List.map (fun (slope, load, v) -> ([| slope; load |], v)) (Table2d.sample_points delay)
  in
  let slope_rows =
    List.map (fun (_, load, v) -> ([| load |], v)) (Table2d.sample_points transition)
  in
  match (Linfit.multiple_regression delay_rows, Linfit.multiple_regression slope_rows) with
  | Some [| d0; d_slope; d_load |], Some [| s0; s_load |] ->
      let params =
        {
          base with
          Tech.d0;
          d_slope;
          d_load;
          s0;
          s_load;
        }
      in
      let delay_res =
        List.map
          (fun (xs, y) -> y -. (d0 +. (d_slope *. xs.(0)) +. (d_load *. xs.(1))))
          delay_rows
      in
      let slope_res = List.map (fun (xs, y) -> y -. (s0 +. (s_load *. xs.(0)))) slope_rows in
      Some (params, { delay_rmse = rmse delay_res; slope_rmse = rmse slope_res })
  | _, _ -> None

let default_kind_of_cell = Gate_kind.of_name

let to_tech ?name ~base ~kind_of_cell (lib : Liberty.t) =
  let fitted = Hashtbl.create 8 in
  let qualities = ref [] in
  List.iter
    (fun (cell : Liberty.cell) ->
      match kind_of_cell cell.Liberty.cell_name with
      | None -> ()
      | Some kind -> (
          match cell.Liberty.arcs with
          | [] -> ()
          | arc :: _ -> (
              let base_gt = Tech.gate_tech base kind in
              let edge ~rising =
                let delay =
                  if rising then arc.Liberty.cell_rise else arc.Liberty.cell_fall
                in
                let transition =
                  if rising then arc.Liberty.rise_transition else arc.Liberty.fall_transition
                in
                match (delay, transition) with
                | Some d, Some t ->
                    fit_edge ~delay:d ~transition:t ~base:(Tech.edge base_gt ~rising)
                | _, _ -> None
              in
              match (edge ~rising:true, edge ~rising:false) with
              | Some (rise, qr), Some (fall, qf) ->
                  let input_cap =
                    match cell.Liberty.input_caps with
                    | (_, cap) :: _ when cap > 0. -> cap
                    | _ -> base_gt.Tech.input_cap
                  in
                  Hashtbl.replace fitted kind
                    { base_gt with Tech.rise; fall; input_cap };
                  qualities :=
                    ( kind,
                      {
                        delay_rmse = Float.max qr.delay_rmse qf.delay_rmse;
                        slope_rmse = Float.max qr.slope_rmse qf.slope_rmse;
                      } )
                    :: !qualities
              | _, _ -> ())))
    lib.Liberty.cells;
  let lookup kind =
    match Hashtbl.find_opt fitted kind with
    | Some gt -> gt
    | None -> Tech.gate_tech base kind
  in
  let tech_name =
    match name with Some n -> n | None -> lib.Liberty.lib_name ^ "-fitted"
  in
  ( Tech.create ~name:tech_name ~vdd:(Tech.vdd base)
      ~wire_cap_per_fanout:(Tech.wire_cap_per_fanout base) ~lookup (),
    List.rev !qualities )
