(** Characterisation: fitting the linear CDM of {!Halotis_tech.Tech}
    to NLDM tables, the way simulator delay models are calibrated from
    vendor libraries.

    Delay tables fit [tp = d0 + d_slope*slope + d_load*load] by
    ordinary least squares over every grid point; transition tables fit
    [tau = s0 + s_load*load].  Degradation parameters (eqs. 2–3) are
    not representable in Liberty and are inherited from a base
    technology. *)

type quality = { delay_rmse : float; slope_rmse : float }
(** Root-mean-square residuals of the two fits, in ps. *)

val fit_edge :
  delay:Table2d.t -> transition:Table2d.t -> base:Halotis_tech.Tech.edge_params ->
  (Halotis_tech.Tech.edge_params * quality) option
(** Replaces the CDM coefficients of [base] with fitted ones (keeping
    the base's DDM parameters); [None] when regression is singular. *)

val to_tech :
  ?name:string ->
  base:Halotis_tech.Tech.t ->
  kind_of_cell:(string -> Halotis_logic.Gate_kind.t option) ->
  Liberty.t ->
  Halotis_tech.Tech.t * (Halotis_logic.Gate_kind.t * quality) list
(** Builds a technology whose cells with a recognised Liberty
    counterpart (via [kind_of_cell] on the cell name) use fitted
    coefficients and the library's input capacitance, falling back to
    [base] otherwise.  The first arc of each cell characterises it;
    pin-position dependence keeps the base's [pin_factor].  Also
    returns the fit quality per replaced kind. *)

val default_kind_of_cell : string -> Halotis_logic.Gate_kind.t option
(** Cell names equal to {!Halotis_logic.Gate_kind.name} mnemonics. *)
