lib/liberty/writer.mli: Halotis_logic Halotis_tech
