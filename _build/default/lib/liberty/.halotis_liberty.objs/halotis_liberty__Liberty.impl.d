lib/liberty/liberty.ml: Array Ast Format List String Table2d
