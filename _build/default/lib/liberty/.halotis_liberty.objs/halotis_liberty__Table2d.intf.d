lib/liberty/table2d.mli:
