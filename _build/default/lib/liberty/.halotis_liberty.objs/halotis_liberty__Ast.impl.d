lib/liberty/ast.ml: Buffer Format List String
