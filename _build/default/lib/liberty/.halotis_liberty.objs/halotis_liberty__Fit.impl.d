lib/liberty/fit.ml: Array Float Halotis_logic Halotis_tech Halotis_util Hashtbl Liberty List Table2d
