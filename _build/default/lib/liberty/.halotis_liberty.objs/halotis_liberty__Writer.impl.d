lib/liberty/writer.ml: Array Buffer Halotis_logic Halotis_tech List Printf String
