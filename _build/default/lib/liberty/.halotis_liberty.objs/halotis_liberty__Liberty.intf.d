lib/liberty/liberty.mli: Ast Format Table2d
