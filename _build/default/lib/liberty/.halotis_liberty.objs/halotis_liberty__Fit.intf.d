lib/liberty/fit.mli: Halotis_logic Halotis_tech Liberty Table2d
