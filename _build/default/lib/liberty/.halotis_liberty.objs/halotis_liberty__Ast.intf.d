lib/liberty/ast.mli: Format
