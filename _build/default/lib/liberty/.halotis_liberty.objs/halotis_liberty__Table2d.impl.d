lib/liberty/table2d.ml: Array List
