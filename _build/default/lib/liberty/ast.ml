type item =
  | Group of group
  | Attr of string * string
  | Complex of string * string list

and group = { g_name : string; g_args : string list; g_items : item list }

type error = { position : int; message : string }

let pp_error fmt e = Format.fprintf fmt "offset %d: %s" e.position e.message

exception Parse_error of error

let fail position fmt =
  Format.kasprintf (fun message -> raise (Parse_error { position; message })) fmt

type token = Ident of string | Str of string | Punct of char

let is_ident_char = function
  | '(' | ')' | '{' | '}' | ';' | ':' | ',' | '"' | ' ' | '\t' | '\n' | '\r' -> false
  | _ -> true

(* Tokenize the whole input up front; each token carries its offset. *)
let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      let start = !i in
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail start "unterminated comment"
        else if text.[!i] = '*' && text.[!i + 1] = '/' then i := !i + 2
        else begin
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if c = '"' then begin
      let start = !i in
      incr i;
      let buf = Buffer.create 16 in
      while !i < n && text.[!i] <> '"' do
        Buffer.add_char buf text.[!i];
        incr i
      done;
      if !i >= n then fail start "unterminated string";
      incr i;
      tokens := (start, Str (Buffer.contents buf)) :: !tokens
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      tokens := (start, Ident (String.sub text start (!i - start))) :: !tokens
    end
    else begin
      tokens := (!i, Punct c) :: !tokens;
      incr i
    end
  done;
  List.rev !tokens

(* A tiny recursive-descent parser over the token list. *)
type cursor = { mutable rest : (int * token) list }

let peek cur = match cur.rest with [] -> None | t :: _ -> Some t

let advance cur =
  match cur.rest with
  | [] -> fail max_int "unexpected end of input"
  | t :: rest ->
      cur.rest <- rest;
      t

let expect_punct cur ch =
  match advance cur with
  | _, Punct c when c = ch -> ()
  | pos, _ -> fail pos "expected '%c'" ch

let rec parse_args cur acc =
  match peek cur with
  | Some (_, Punct ')') ->
      ignore (advance cur);
      List.rev acc
  | Some _ ->
      let arg =
        match advance cur with
        | _, Ident s | _, Str s -> s
        | pos, Punct c -> fail pos "unexpected '%c' in argument list" c
      in
      (match peek cur with
      | Some (_, Punct ',') -> ignore (advance cur)
      | Some _ | None -> ());
      parse_args cur (arg :: acc)
  | None -> fail max_int "unterminated argument list"

let rec parse_group cur name =
  let args = parse_args cur [] in
  match peek cur with
  | Some (_, Punct '{') ->
      ignore (advance cur);
      let items = parse_items cur [] in
      Group { g_name = name; g_args = args; g_items = items }
  | Some (_, Punct ';') ->
      ignore (advance cur);
      Complex (name, args)
  | Some (pos, _) -> fail pos "expected '{' or ';' after %s(...)" name
  | None -> fail max_int "unexpected end after %s(...)" name

and parse_items cur acc =
  match peek cur with
  | Some (_, Punct '}') ->
      ignore (advance cur);
      List.rev acc
  | Some (pos, Ident name) -> (
      ignore (advance cur);
      match peek cur with
      | Some (_, Punct '(') ->
          ignore (advance cur);
          parse_items cur (parse_group cur name :: acc)
      | Some (_, Punct ':') ->
          ignore (advance cur);
          let value =
            match advance cur with
            | _, Ident s | _, Str s -> s
            | pos, Punct c -> fail pos "unexpected '%c' as attribute value" c
          in
          expect_punct cur ';';
          parse_items cur (Attr (name, value) :: acc)
      | Some (pos, _) -> fail pos "expected '(' or ':' after %s" name
      | None -> fail pos "unexpected end after %s" name)
  | Some (pos, _) -> fail pos "expected an identifier or '}'"
  | None -> fail max_int "unterminated group"

let parse_string text =
  try
    let cur = { rest = tokenize text } in
    match advance cur with
    | _, Ident name -> (
        expect_punct cur '(';
        match parse_group cur name with
        | Group g ->
            (match peek cur with
            | None -> Ok g
            | Some (pos, _) -> fail pos "content after top-level group")
        | Attr _ | Complex _ -> Error { position = 0; message = "expected a group body" })
    | pos, _ -> fail pos "expected a top-level group"
  with Parse_error e -> Error e

let find_groups g name =
  List.filter_map
    (function Group child when child.g_name = name -> Some child | Group _ | Attr _ | Complex _ -> None)
    g.g_items

let find_attr g name =
  List.find_map
    (function Attr (k, v) when k = name -> Some v | Attr _ | Group _ | Complex _ -> None)
    g.g_items

let find_complex g name =
  List.find_map
    (function
      | Complex (k, args) when k = name -> Some args | Complex _ | Group _ | Attr _ -> None)
    g.g_items
