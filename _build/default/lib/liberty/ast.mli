(** Parser for the Liberty-format subset used by cell libraries.

    The grammar is the generic Liberty group structure:

    {v
    library (demo) {
      time_unit : "1ps";
      cell (inv) {
        pin (y) {
          timing () {
            related_pin : "a";
            cell_rise (tmpl) {
              index_1 ("10, 50, 200");
              index_2 ("5, 20, 80");
              values ("30, 40, 60", "45, 55, 75", "70, 85, 110");
            }
          }
        }
      }
    }
    v}

    Comments ([/* .. */] and [// ..]) are ignored.  This module only
    builds the generic tree; {!Liberty} interprets it. *)

type item =
  | Group of group
  | Attr of string * string  (** [key : value;] *)
  | Complex of string * string list  (** [key ("...", "...");] *)

and group = { g_name : string; g_args : string list; g_items : item list }

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (group, error) result
(** Parses one top-level group. *)

val find_groups : group -> string -> group list
(** Child groups with the given name. *)

val find_attr : group -> string -> string option
val find_complex : group -> string -> string list option
