(** Liberty export: characterising a {!Halotis_tech.Tech.t} into NLDM
    tables by sampling its linear model over a slope/load grid.

    Useful for interop and, paired with {!Fit.to_tech}, for round-trip
    testing: exporting the default library and re-fitting it must
    reproduce the original coefficients exactly (a linear model sampled
    on a grid is recovered exactly by least squares). *)

val of_tech :
  ?slopes:float array ->
  ?loads:float array ->
  Halotis_tech.Tech.t ->
  kinds:Halotis_logic.Gate_kind.t list ->
  string
(** [of_tech tech ~kinds] renders a Liberty document with one cell per
    kind (named by {!Halotis_logic.Gate_kind.name}); default grid:
    slopes [20, 60, 150, 300] ps, loads [4, 10, 25, 60] fF. *)

val write_file :
  ?slopes:float array ->
  ?loads:float array ->
  string ->
  Halotis_tech.Tech.t ->
  kinds:Halotis_logic.Gate_kind.t list ->
  unit
