(** Quantitative comparison of digitized waveforms across engines —
    what "HALOTIS-DDM results are very similar to HSPICE" means in
    numbers.

    Edges from two sources are greedily matched in time order within a
    tolerance window; the report counts matches, misses and extras and
    measures the time offsets of matched pairs. *)

type report = {
  matched : int;
  missing : int;  (** reference edges with no candidate counterpart *)
  extra : int;  (** candidate edges with no reference counterpart *)
  mean_offset : Halotis_util.Units.time;  (** mean |t_cand - t_ref| over matches *)
  max_offset : Halotis_util.Units.time;
}

val edges :
  tolerance:Halotis_util.Units.time ->
  reference:Digital.edge list ->
  candidate:Digital.edge list ->
  report
(** Matches candidate edges to reference edges of the same polarity
    within [tolerance].  Both lists must be time-ordered. *)

val perfect : report -> bool
(** No misses, no extras. *)

val agreement : report -> float
(** [matched / (matched + missing + extra)]; 1.0 when lists agree
    edge-for-edge (and 1.0 for two empty lists). *)

val merge : report list -> report
(** Aggregates per-signal reports into a circuit-level one. *)

val pp : Format.formatter -> report -> unit
