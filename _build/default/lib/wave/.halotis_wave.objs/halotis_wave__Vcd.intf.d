lib/wave/vcd.mli: Digital Halotis_util Waveform
