lib/wave/vcd_reader.ml: Digital Format Hashtbl List Seq String Transition
