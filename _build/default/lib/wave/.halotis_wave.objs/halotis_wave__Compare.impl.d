lib/wave/compare.ml: Digital Float Format Halotis_util List Transition
