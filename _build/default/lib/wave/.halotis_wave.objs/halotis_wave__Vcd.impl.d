lib/wave/vcd.ml: Buffer Char Digital Float List Printf String Transition Waveform
