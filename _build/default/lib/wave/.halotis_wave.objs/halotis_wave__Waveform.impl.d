lib/wave/waveform.ml: Array Halotis_util List Transition
