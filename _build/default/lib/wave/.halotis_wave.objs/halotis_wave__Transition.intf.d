lib/wave/transition.mli: Format Halotis_util
