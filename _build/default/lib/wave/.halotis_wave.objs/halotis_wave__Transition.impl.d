lib/wave/transition.ml: Float Format Halotis_util
