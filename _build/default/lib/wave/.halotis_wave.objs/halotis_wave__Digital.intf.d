lib/wave/digital.mli: Format Halotis_util Transition Waveform
