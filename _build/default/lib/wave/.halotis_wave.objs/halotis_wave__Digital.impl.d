lib/wave/digital.ml: Array Float Format Halotis_util List Transition Waveform
