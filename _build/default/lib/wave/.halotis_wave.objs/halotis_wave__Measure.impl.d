lib/wave/measure.ml: Digital Float Format Halotis_util List Transition
