lib/wave/waveform.mli: Halotis_util Transition
