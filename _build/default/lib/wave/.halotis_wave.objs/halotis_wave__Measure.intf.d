lib/wave/measure.mli: Digital Format Halotis_util
