lib/wave/vcd_reader.mli: Digital Format
