lib/wave/compare.mli: Digital Format Halotis_util
