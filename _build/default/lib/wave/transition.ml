module Approx = Halotis_util.Approx

type polarity = Rising | Falling

type t = {
  start : Halotis_util.Units.time;
  slope_time : Halotis_util.Units.time;
  polarity : polarity;
}

let make ~start ~slope_time ~polarity =
  if not (Approx.is_finite start) then invalid_arg "Transition.make: start not finite";
  if not (slope_time > 0. && Approx.is_finite slope_time) then
    invalid_arg "Transition.make: slope_time must be positive";
  { start; slope_time; polarity }

let opposite = function Rising -> Falling | Falling -> Rising
let polarity_to_string = function Rising -> "rise" | Falling -> "fall"

let equal_polarity a b =
  match (a, b) with Rising, Rising | Falling, Falling -> true | (Rising | Falling), _ -> false

let target ~vdd tr = match tr.polarity with Rising -> vdd | Falling -> 0.

let slope ~vdd tr =
  match tr.polarity with
  | Rising -> vdd /. tr.slope_time
  | Falling -> -.(vdd /. tr.slope_time)

let value_at ~vdd ~v_start tr t =
  let raw = v_start +. (slope ~vdd tr *. (t -. tr.start)) in
  match tr.polarity with
  | Rising -> Float.min raw vdd
  | Falling -> Float.max raw 0.

let crossing ~vdd ~v_start tr ~vt =
  let reachable =
    match tr.polarity with
    | Rising -> v_start < vt && vt <= vdd
    | Falling -> v_start > vt && vt >= 0.
  in
  if not reachable then None else Some (tr.start +. ((vt -. v_start) /. slope ~vdd tr))

let pp fmt tr =
  Format.fprintf fmt "%s@%a(tau=%a)" (polarity_to_string tr.polarity)
    Halotis_util.Units.pp_time tr.start Halotis_util.Units.pp_time tr.slope_time

let compare_start a b = Float.compare a.start b.start
