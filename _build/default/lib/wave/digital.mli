(** Digital abstraction of waveforms: edges, pulses and runt analysis.

    The IDDM story is about which pulses survive; this module provides
    the vocabulary to measure that on a finished waveform. *)

type edge = { at : Halotis_util.Units.time; polarity : Transition.polarity }

val edges :
  Waveform.t -> vt:Halotis_util.Units.voltage -> edge list
(** Threshold crossings in time order (see {!Waveform.crossings}). *)

val edge_count : Waveform.t -> vt:Halotis_util.Units.voltage -> int

val edges_hysteresis :
  Waveform.t ->
  vt_low:Halotis_util.Units.voltage ->
  vt_high:Halotis_util.Units.voltage ->
  edge list
(** Schmitt-trigger digitization: a rising edge requires crossing
    [vt_high], a falling edge [vt_low] ([vt_low < vt_high]).  Runts
    inside the hysteresis band produce no edges, removing the chatter a
    single threshold sees on slow or noisy ramps.
    @raise Invalid_argument when [vt_low >= vt_high]. *)

val final_level : Waveform.t -> vt:Halotis_util.Units.voltage -> bool
(** Logic level implied by the last edge (or the initial voltage). *)

val level_at :
  Waveform.t -> vt:Halotis_util.Units.voltage -> Halotis_util.Units.time -> bool
(** Logic level at a given time under threshold [vt]. *)

type pulse = {
  t_rise : Halotis_util.Units.time;
  t_fall : Halotis_util.Units.time;
  width : Halotis_util.Units.time;
  positive : bool;  (** true for a 0-1-0 pulse, false for 1-0-1 *)
}

val pulses : Waveform.t -> vt:Halotis_util.Units.voltage -> pulse list
(** Complete pulses, in time order: edges pair up disjointly
    ((e1,e2), (e3,e4), ...), so an excursion away from the settled
    level and back counts once and the rest level in between does not
    count as a pulse of the opposite polarity. *)

type runt = {
  peak : Halotis_util.Units.voltage;  (** extreme voltage the excursion reaches *)
  t_start : Halotis_util.Units.time;
  t_end : Halotis_util.Units.time;
  upward : bool;
}

val runts : Waveform.t -> runt list
(** Excursions that reverse before reaching the opposite rail —
    degraded pulses in the paper's sense.  An excursion is every
    maximal run of same-polarity segments; it is a runt when its peak
    stays strictly inside the rails. *)

val pp_edge : Format.formatter -> edge -> unit
