type signal = { rd_name : string; rd_initial : bool; rd_edges : Digital.edge list }
type t = { timescale_ps : float; signals : signal list }
type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

exception Parse_error of error

let fail line fmt = Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* whitespace-separated tokens with their line numbers *)
let tokenize text =
  let tokens = ref [] in
  List.iteri
    (fun idx line ->
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.iter (fun tok -> if tok <> "" then tokens := (idx + 1, tok) :: !tokens))
    (String.split_on_char '\n' text);
  List.rev !tokens

let unit_to_ps = function
  | "s" -> 1e12
  | "ms" -> 1e9
  | "us" -> 1e6
  | "ns" -> 1e3
  | "ps" -> 1.
  | "fs" -> 1e-3
  | _ -> -1.

(* "1ps" | "10" "ns" *)
let parse_timescale line toks =
  match toks with
  | [ single ] ->
      let digits = String.to_seq single |> Seq.take_while (fun c -> c >= '0' && c <= '9') in
      let ndigits = Seq.length digits in
      if ndigits = 0 then fail line "bad timescale %S" single
      else begin
        let mag = float_of_string (String.sub single 0 ndigits) in
        let unit = String.sub single ndigits (String.length single - ndigits) in
        let k = unit_to_ps unit in
        if k < 0. then fail line "bad timescale unit %S" unit else mag *. k
      end
  | [ mag; unit ] -> (
      match (float_of_string_opt mag, unit_to_ps unit) with
      | Some m, k when k > 0. -> m *. k
      | _, _ -> fail line "bad timescale %S %S" mag unit)
  | _ -> fail line "bad timescale"

type var_state = {
  v_name : string;
  mutable v_init : bool option;
  mutable v_last : bool option;
  mutable v_rev_edges : Digital.edge list;
}

let parse_string text =
  try
    let toks = ref (tokenize text) in
    let next () =
      match !toks with
      | [] -> None
      | t :: rest ->
          toks := rest;
          Some t
    in
    (* collect tokens until $end *)
    let rec until_end line acc =
      match next () with
      | None -> fail line "missing $end"
      | Some (_, "$end") -> List.rev acc
      | Some (_, tok) -> until_end line (tok :: acc)
    in
    let timescale = ref 1. in
    let vars : (string, var_state) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let now = ref 0. in
    let change line id value =
      match Hashtbl.find_opt vars id with
      | None -> fail line "value change for undeclared id %S" id
      | Some v -> (
          match v.v_last with
          | None ->
              if !now > 0. then begin
                v.v_init <- Some (not value);
                v.v_rev_edges <-
                  {
                    Digital.at = !now;
                    polarity = (if value then Transition.Rising else Transition.Falling);
                  }
                  :: v.v_rev_edges
              end
              else v.v_init <- Some value;
              v.v_last <- Some value
          | Some last ->
              if last <> value then begin
                v.v_rev_edges <-
                  {
                    Digital.at = !now;
                    polarity = (if value then Transition.Rising else Transition.Falling);
                  }
                  :: v.v_rev_edges;
                v.v_last <- Some value
              end)
    in
    let rec loop () =
      match next () with
      | None -> ()
      | Some (line, tok) ->
          (if tok = "$timescale" then timescale := parse_timescale line (until_end line [])
           else if tok = "$var" then begin
             match until_end line [] with
             | [ ("wire" | "reg"); "1"; id; name ] ->
                 if not (Hashtbl.mem vars id) then begin
                   Hashtbl.replace vars id
                     { v_name = name; v_init = None; v_last = None; v_rev_edges = [] };
                   order := id :: !order
                 end
             | kind :: width :: _ when kind = "wire" || kind = "reg" ->
                 if width <> "1" then fail line "only 1-bit variables are supported"
                 else fail line "malformed $var"
             | _ -> fail line "unsupported $var declaration"
           end
           else if
             tok = "$scope" || tok = "$upscope" || tok = "$enddefinitions"
             || tok = "$date" || tok = "$version" || tok = "$comment"
           then ignore (until_end line [])
           else if tok = "$dumpvars" || tok = "$dumpall" || tok = "$dumpon" then ()
           else if tok = "$end" then ()
           else if tok.[0] = '#' then begin
             match float_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
             | Some t -> now := t *. !timescale
             | None -> fail line "bad time %S" tok
           end
           else if tok.[0] = '0' || tok.[0] = '1' then begin
             if String.length tok < 2 then fail line "scalar change without id";
             change line (String.sub tok 1 (String.length tok - 1)) (tok.[0] = '1')
           end
           else if tok.[0] = 'x' || tok.[0] = 'X' || tok.[0] = 'z' || tok.[0] = 'Z' then
             fail line "unknown/high-impedance values are not supported"
           else if tok.[0] = 'b' || tok.[0] = 'B' || tok.[0] = 'r' || tok.[0] = 'R' then
             fail line "vector/real variables are not supported"
           else fail line "unexpected token %S" tok);
          loop ()
    in
    loop ();
    let signals =
      List.rev_map
        (fun id ->
          let v = Hashtbl.find vars id in
          {
            rd_name = v.v_name;
            rd_initial = (match v.v_init with Some b -> b | None -> false);
            rd_edges = List.rev v.v_rev_edges;
          })
        !order
    in
    Ok { timescale_ps = !timescale; signals }
  with Parse_error e -> Error e

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let find t name = List.find_opt (fun s -> s.rd_name = name) t.signals
