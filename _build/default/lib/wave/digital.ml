type edge = { at : Halotis_util.Units.time; polarity : Transition.polarity }

let edges w ~vt =
  List.map (fun (at, polarity) -> { at; polarity }) (Waveform.crossings w ~vt)

let edge_count w ~vt = List.length (edges w ~vt)

let edges_hysteresis w ~vt_low ~vt_high =
  if vt_low >= vt_high then invalid_arg "Digital.edges_hysteresis: need vt_low < vt_high";
  (* tag each crossing with the threshold it belongs to, merge by time,
     and keep only the state-changing ones: set on a rise through
     vt_high, reset on a fall through vt_low *)
  let tagged level =
    List.map (fun (at, pol) -> (at, pol, level)) (Waveform.crossings w ~vt:level)
  in
  let all =
    List.sort
      (fun (t1, _, _) (t2, _, _) -> Float.compare t1 t2)
      (tagged vt_high @ tagged vt_low)
  in
  let initial = Waveform.initial w > vt_high in
  let rec scan state acc = function
    | [] -> List.rev acc
    | (at, pol, level) :: rest -> (
        match (state, pol) with
        | false, Transition.Rising when level = vt_high ->
            scan true ({ at; polarity = pol } :: acc) rest
        | true, Transition.Falling when level = vt_low ->
            scan false ({ at; polarity = pol } :: acc) rest
        | (true | false), (Transition.Rising | Transition.Falling) -> scan state acc rest)
  in
  scan initial [] all

type pulse = {
  t_rise : Halotis_util.Units.time;
  t_fall : Halotis_util.Units.time;
  width : Halotis_util.Units.time;
  positive : bool;
}

let final_level w ~vt =
  match List.rev (edges w ~vt) with
  | { polarity = Transition.Rising; _ } :: _ -> true
  | { polarity = Transition.Falling; _ } :: _ -> false
  | [] -> Waveform.initial w > vt

let level_at w ~vt t =
  let before = List.filter (fun e -> e.at <= t) (edges w ~vt) in
  match List.rev before with
  | { polarity = Transition.Rising; _ } :: _ -> true
  | { polarity = Transition.Falling; _ } :: _ -> false
  | [] -> Waveform.initial w > vt

let pulses w ~vt =
  (* Edges alternate by construction.  A pulse is an excursion away
     from the settled level and back, so edges pair up disjointly:
     (e1, e2), (e3, e4), ...; the gaps in between are the signal at
     rest, not pulses. *)
  let rec pair acc = function
    | e1 :: e2 :: rest ->
        let p =
          match e1.polarity with
          | Transition.Rising ->
              { t_rise = e1.at; t_fall = e2.at; width = e2.at -. e1.at; positive = true }
          | Transition.Falling ->
              { t_rise = e2.at; t_fall = e1.at; width = e2.at -. e1.at; positive = false }
        in
        pair (p :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  pair [] (edges w ~vt)

type runt = {
  peak : Halotis_util.Units.voltage;
  t_start : Halotis_util.Units.time;
  t_end : Halotis_util.Units.time;
  upward : bool;
}

let runts w =
  let vdd = Waveform.vdd w in
  let segs = Array.of_list (Waveform.segments w) in
  let n = Array.length segs in
  let seg_end i =
    if i = n - 1 then infinity else segs.(i + 1).Waveform.transition.Transition.start
  in
  let v_end i =
    let s = segs.(i) in
    if i = n - 1 then Transition.target ~vdd s.Waveform.transition
    else
      Transition.value_at ~vdd ~v_start:s.Waveform.v_start s.Waveform.transition (seg_end i)
  in
  (* Group maximal runs of same-polarity segments into excursions. *)
  let result = ref [] in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let pol = segs.(start).Waveform.transition.Transition.polarity in
    let stop = ref start in
    while
      !stop + 1 < n
      && Transition.equal_polarity segs.(!stop + 1).Waveform.transition.Transition.polarity pol
    do
      incr stop
    done;
    let peak = v_end !stop in
    let reaches_rail =
      match pol with Transition.Rising -> peak >= vdd | Transition.Falling -> peak <= 0.
    in
    if not reaches_rail then
      result :=
        {
          peak;
          t_start = segs.(start).Waveform.transition.Transition.start;
          t_end = seg_end !stop;
          upward = (match pol with Transition.Rising -> true | Transition.Falling -> false);
        }
        :: !result;
    i := !stop + 1
  done;
  List.rev !result

let pp_edge fmt e =
  Format.fprintf fmt "%s@%a"
    (Transition.polarity_to_string e.polarity)
    Halotis_util.Units.pp_time e.at
