type stats = { count : int; min_ps : float; max_ps : float; mean_ps : float }

let latencies ?(same_polarity = false) ~cause ~response () =
  let matches (c : Digital.edge) (r : Digital.edge) =
    r.Digital.at >= c.Digital.at
    && ((not same_polarity) || Transition.equal_polarity c.Digital.polarity r.Digital.polarity)
  in
  List.filter_map
    (fun c ->
      match List.find_opt (matches c) response with
      | Some r -> Some (r.Digital.at -. c.Digital.at)
      | None -> None)
    cause

let stats = function
  | [] -> None
  | ls ->
      let count = List.length ls in
      Some
        {
          count;
          min_ps = List.fold_left Float.min infinity ls;
          max_ps = List.fold_left Float.max neg_infinity ls;
          mean_ps = List.fold_left ( +. ) 0. ls /. float_of_int count;
        }

let pp_stats fmt s =
  Format.fprintf fmt "%d edges, min %a, mean %a, max %a" s.count Halotis_util.Units.pp_time
    s.min_ps Halotis_util.Units.pp_time s.mean_ps Halotis_util.Units.pp_time s.max_ps
