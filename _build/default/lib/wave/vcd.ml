type signal_dump = {
  dump_name : string;
  dump_initial : bool;
  dump_edges : Digital.edge list;
}

let ident_of_index i =
  (* VCD identifiers: printable ASCII 33..126; use a base-94 encoding. *)
  let base = 94 and first = 33 in
  let rec build i acc =
    let digit = Char.chr (first + (i mod base)) in
    let acc = String.make 1 digit ^ acc in
    if i < base then acc else build ((i / base) - 1) acc
  in
  build i ""

let render ?(timescale_ps = 1) ?(module_name = "halotis") dumps =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "$date reproduction run $end\n";
  pr "$version HALOTIS-ocaml $end\n";
  pr "$timescale %dps $end\n" timescale_ps;
  pr "$scope module %s $end\n" module_name;
  List.iteri
    (fun i d -> pr "$var wire 1 %s %s $end\n" (ident_of_index i) d.dump_name)
    dumps;
  pr "$upscope $end\n$enddefinitions $end\n";
  pr "$dumpvars\n";
  List.iteri
    (fun i d -> pr "%c%s\n" (if d.dump_initial then '1' else '0') (ident_of_index i))
    dumps;
  pr "$end\n";
  let changes =
    List.concat
      (List.mapi
         (fun i d ->
           List.map
             (fun (e : Digital.edge) ->
               let tick =
                 int_of_float (Float.round (e.Digital.at /. float_of_int timescale_ps))
               in
               let bit =
                 match e.Digital.polarity with Transition.Rising -> '1' | Falling -> '0'
               in
               (tick, i, bit))
             d.dump_edges)
         dumps)
  in
  let sorted = List.sort compare changes in
  let last_tick = ref (-1) in
  List.iter
    (fun (tick, i, bit) ->
      if tick <> !last_tick then begin
        pr "#%d\n" tick;
        last_tick := tick
      end;
      pr "%c%s\n" bit (ident_of_index i))
    sorted;
  Buffer.contents buf

let of_waveform ~name ~vt w =
  {
    dump_name = name;
    dump_initial = Waveform.initial w > vt;
    dump_edges = Digital.edges w ~vt;
  }

let write_file path dumps =
  let oc = open_out path in
  output_string oc (render dumps);
  close_out oc
