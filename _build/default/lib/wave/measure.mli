(** Edge-to-edge latency measurement between two digitized signals —
    the bench instrument behind delay characterisation: pair each cause
    edge with the first response edge that follows it and summarise the
    latencies. *)

type stats = {
  count : int;
  min_ps : Halotis_util.Units.time;
  max_ps : Halotis_util.Units.time;
  mean_ps : Halotis_util.Units.time;
}

val latencies :
  ?same_polarity:bool ->
  cause:Digital.edge list ->
  response:Digital.edge list ->
  unit ->
  Halotis_util.Units.time list
(** For each cause edge, the delay to the earliest response edge not
    before it (and of equal polarity when [same_polarity], default
    false); cause edges with no following response are skipped.  Both
    lists must be time-ordered. *)

val stats : Halotis_util.Units.time list -> stats option
(** [None] on the empty list. *)

val pp_stats : Format.formatter -> stats -> unit
