type report = {
  matched : int;
  missing : int;
  extra : int;
  mean_offset : float;
  max_offset : float;
}

(* Greedy in-order matching: advance through both lists; a pair matches
   when polarities agree and the times are within tolerance, otherwise
   the earlier edge is declared unmatched and skipped. *)
let edges ~tolerance ~reference ~candidate =
  let rec walk refs cands matched missing extra sum maxo =
    match (refs, cands) with
    | [], [] ->
        {
          matched;
          missing;
          extra;
          mean_offset = (if matched = 0 then 0. else sum /. float_of_int matched);
          max_offset = maxo;
        }
    | [], _ :: rest -> walk [] rest matched missing (extra + 1) sum maxo
    | _ :: rest, [] -> walk rest [] matched (missing + 1) extra sum maxo
    | (r : Digital.edge) :: rrest, (c : Digital.edge) :: crest ->
        let dt = Float.abs (c.Digital.at -. r.Digital.at) in
        if dt <= tolerance && Transition.equal_polarity r.Digital.polarity c.Digital.polarity
        then walk rrest crest (matched + 1) missing extra (sum +. dt) (Float.max maxo dt)
        else if c.Digital.at < r.Digital.at then
          walk refs crest matched missing (extra + 1) sum maxo
        else walk rrest cands matched (missing + 1) extra sum maxo
  in
  walk reference candidate 0 0 0 0. 0.

let perfect r = r.missing = 0 && r.extra = 0

let agreement r =
  let total = r.matched + r.missing + r.extra in
  if total = 0 then 1.0 else float_of_int r.matched /. float_of_int total

let merge reports =
  let matched = List.fold_left (fun acc r -> acc + r.matched) 0 reports in
  let missing = List.fold_left (fun acc r -> acc + r.missing) 0 reports in
  let extra = List.fold_left (fun acc r -> acc + r.extra) 0 reports in
  let sum = List.fold_left (fun acc r -> acc +. (r.mean_offset *. float_of_int r.matched)) 0. reports in
  let max_offset = List.fold_left (fun acc r -> Float.max acc r.max_offset) 0. reports in
  {
    matched;
    missing;
    extra;
    mean_offset = (if matched = 0 then 0. else sum /. float_of_int matched);
    max_offset;
  }

let pp fmt r =
  Format.fprintf fmt "%d matched, %d missing, %d extra; offsets mean %a max %a" r.matched
    r.missing r.extra Halotis_util.Units.pp_time r.mean_offset Halotis_util.Units.pp_time
    r.max_offset
