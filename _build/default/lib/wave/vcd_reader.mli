(** Reader for the subset of VCD that {!Vcd.render} produces (and most
    digital tools emit for scalar wires): timescale, 1-bit [$var]
    declarations, [$dumpvars] initial values, and [#time] change
    records.  Vector variables and real values are rejected. *)

type signal = {
  rd_name : string;
  rd_initial : bool;
  rd_edges : Digital.edge list;  (** times in ps, chronological *)
}

type t = { timescale_ps : float; signals : signal list }

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (t, error) result
val parse_file : string -> (t, error) result

val find : t -> string -> signal option
