(** Value-change-dump (VCD) export of digitized waveforms, so runs can
    be inspected in GTKWave or any standard viewer. *)

type signal_dump = {
  dump_name : string;
  dump_initial : bool;
  dump_edges : Digital.edge list;
}

val render :
  ?timescale_ps:int ->
  ?module_name:string ->
  signal_dump list ->
  string
(** [render dumps] produces a complete VCD document.  Edge times are
    rounded to multiples of [timescale_ps] (default 1). *)

val of_waveform :
  name:string -> vt:Halotis_util.Units.voltage -> Waveform.t -> signal_dump
(** Digitizes one waveform under threshold [vt]. *)

val write_file : string -> signal_dump list -> unit
