type segment = { transition : Transition.t; v_start : Halotis_util.Units.voltage }

type t = {
  vdd : Halotis_util.Units.voltage;
  initial : Halotis_util.Units.voltage;
  mutable segs : segment array; (* chronological; live prefix of length len *)
  mutable len : int;
}

let create ?(initial = 0.) ~vdd () =
  if vdd <= 0. then invalid_arg "Waveform.create: vdd must be positive";
  { vdd; initial; segs = [||]; len = 0 }

let vdd w = w.vdd
let initial w = w.initial
let segment_count w = w.len

let segments w = Array.to_list (Array.sub w.segs 0 w.len)
let transitions w = List.map (fun s -> s.transition) (segments w)
let last_segment w = if w.len = 0 then None else Some w.segs.(w.len - 1)

let last_start w =
  match last_segment w with None -> None | Some s -> Some s.transition.Transition.start

(* Index of the last segment with start <= t, or -1. *)
let locate w t =
  let rec search lo hi =
    (* invariant: segs.(lo).start <= t (when lo >= 0), segs.(hi).start > t (when hi < len) *)
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if w.segs.(mid).transition.Transition.start <= t then search mid hi else search lo mid
    end
  in
  if w.len = 0 || w.segs.(0).transition.Transition.start > t then -1 else search 0 w.len

let value_at w t =
  let i = locate w t in
  if i < 0 then w.initial
  else begin
    let s = w.segs.(i) in
    Transition.value_at ~vdd:w.vdd ~v_start:s.v_start s.transition t
  end

type append_outcome = { dropped : Transition.t list; accepted : bool }

let push w seg =
  if w.len = Array.length w.segs then begin
    let grown = Array.make (max 16 (2 * w.len)) seg in
    Array.blit w.segs 0 grown 0 w.len;
    w.segs <- grown
  end;
  w.segs.(w.len) <- seg;
  w.len <- w.len + 1

let append w tr =
  let t0 = tr.Transition.start in
  (* Annul stored transitions starting at or after the new one. *)
  let dropped = ref [] in
  while w.len > 0 && w.segs.(w.len - 1).transition.Transition.start >= t0 do
    w.len <- w.len - 1;
    dropped := w.segs.(w.len).transition :: !dropped
  done;
  let v_start = value_at w t0 in
  let at_rail =
    match tr.Transition.polarity with
    | Transition.Rising -> v_start >= w.vdd
    | Transition.Falling -> v_start <= 0.
  in
  if at_rail then { dropped = !dropped; accepted = false }
  else begin
    push w { transition = tr; v_start };
    { dropped = !dropped; accepted = true }
  end

let crossing_of_last w ~vt =
  match last_segment w with
  | None -> None
  | Some s -> Transition.crossing ~vdd:w.vdd ~v_start:s.v_start s.transition ~vt

let crossings_with_transitions w ~vt =
  let raw = ref [] in
  for i = 0 to w.len - 1 do
    let s = w.segs.(i) in
    match Transition.crossing ~vdd:w.vdd ~v_start:s.v_start s.transition ~vt with
    | None -> ()
    | Some c ->
        let valid =
          (* Strict: a ramp truncated exactly at the crossing instant
             only touches the threshold and does not cross it. *)
          if i = w.len - 1 then true
          else c < w.segs.(i + 1).transition.Transition.start
        in
        if valid then raw := (c, s.transition) :: !raw
  done;
  let chronological = List.rev !raw in
  (* Exact-touch boundaries can record a crossing without the matching
     return crossing; enforce polarity alternation so the digital view
     is always consistent. *)
  let first_expected = if w.initial <= vt then Transition.Rising else Transition.Falling in
  let rec filter expected = function
    | [] -> []
    | (t, tr) :: rest ->
        if Transition.equal_polarity tr.Transition.polarity expected then
          (t, tr) :: filter (Transition.opposite expected) rest
        else filter expected rest
  in
  filter first_expected chronological

let crossings w ~vt =
  List.map
    (fun (t, tr) -> (t, tr.Transition.polarity))
    (crossings_with_transitions w ~vt)

let sample w ~t0 ~t1 ~dt =
  if dt <= 0. then invalid_arg "Waveform.sample: dt must be positive";
  let rec loop t acc = if t > t1 then List.rev acc else loop (t +. dt) ((t, value_at w t) :: acc) in
  loop t0 []
