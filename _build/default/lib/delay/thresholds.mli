(** Per-input threshold voltages.

    The IDDM gives every gate input its own switching threshold VT; the
    netlist may override it per pin (Fig. 1's g1/g2), otherwise the
    technology default applies. *)

val input_vt :
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  Halotis_netlist.Netlist.gate_id ->
  pin:int ->
  Halotis_util.Units.voltage
(** Effective VT of pin [pin] of a gate. *)

val table : Halotis_tech.Tech.t -> Halotis_netlist.Netlist.t -> float array array
(** [table tech c] is indexed [gate_id -> pin -> VT]. *)
