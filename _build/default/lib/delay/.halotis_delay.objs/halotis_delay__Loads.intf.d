lib/delay/loads.mli: Halotis_netlist Halotis_tech
