lib/delay/loads.ml: Array Halotis_logic Halotis_netlist Halotis_tech
