lib/delay/thresholds.ml: Array Halotis_netlist Halotis_tech
