lib/delay/delay_model.ml: Array Halotis_netlist Halotis_tech
