lib/delay/delay_model.mli: Halotis_netlist Halotis_tech
