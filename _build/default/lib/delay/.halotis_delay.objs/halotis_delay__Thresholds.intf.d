lib/delay/thresholds.mli: Halotis_netlist Halotis_tech Halotis_util
