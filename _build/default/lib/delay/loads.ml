module Netlist = Halotis_netlist.Netlist
module Tech = Halotis_tech.Tech

let signal_load tech c sid =
  let s = Netlist.signal c sid in
  let pin_caps =
    Array.fold_left
      (fun acc (gid, _pin) ->
        let g = Netlist.gate c gid in
        acc +. (Tech.gate_tech tech g.Netlist.kind).Tech.input_cap)
      0. s.Netlist.loads
  in
  let wire = Tech.wire_cap_per_fanout tech *. float_of_int (Array.length s.Netlist.loads) in
  let extra =
    match s.Netlist.driver with
    | None -> 0.
    | Some gid -> (Netlist.gate c gid).Netlist.extra_load
  in
  let measurement =
    (* A floating output still drives something in a real measurement
       setup; charge one inverter-equivalent. *)
    if Array.length s.Netlist.loads = 0 then
      (Tech.gate_tech tech Halotis_logic.Gate_kind.Inv).Tech.input_cap
    else 0.
  in
  pin_caps +. wire +. extra +. measurement

let of_netlist tech c = Array.init (Netlist.signal_count c) (signal_load tech c)
