(** The delay models of the paper.

    [Cdm] is the conventional delay model the paper compares against
    (HALOTIS-CDM): the load/slope macromodel of {!Halotis_tech.Tech}
    with no state dependence.

    [Ddm] applies the degradation law (eq. 1) on top of the same base
    delay: given the time [T] elapsed between the previous output
    transition and the (nominal) instant of the candidate one,

    [tp = tp0 * (1 - exp (-(T - T0) / tau))]

    with [tau]/[T0] from eqs. 2–3.  When [T <= T0] the computed delay
    collapses to 0: the output ramp then starts at the input event
    itself and annuls the previous ramp in the waveform store — which
    is exactly how runt pulses die in this reproduction. *)

type kind = Cdm | Ddm

val kind_to_string : kind -> string

type request = {
  rising_out : bool;  (** direction of the candidate output transition *)
  pin : int;  (** input pin whose event triggers the evaluation *)
  tau_in : float;  (** slope time of the causing input transition, ps *)
  t_event : float;  (** instant of the input event, ps *)
  last_output_start : float option;
      (** start of the most recent live output transition; [None] when
          the output never switched *)
}

type response = {
  tp : float;  (** propagation delay to the output ramp start, ps; >= 0 *)
  tau_out : float;  (** output ramp full-swing time, ps *)
  tp_nominal : float;  (** the undegraded [tp0], ps *)
  degraded : bool;  (** [tp < tp_nominal] beyond tolerance *)
}

val compute :
  Halotis_tech.Tech.t ->
  gate_tech:Halotis_tech.Tech.gate_tech ->
  cl:float ->
  kind ->
  request ->
  response
(** Evaluates the chosen model.  [cl] is the output load in fF. *)

val for_gate :
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  loads:float array ->
  Halotis_netlist.Netlist.gate_id ->
  kind ->
  request ->
  response
(** Convenience wrapper that fetches [gate_tech] and [cl] from a
    netlist and a precomputed load table. *)
