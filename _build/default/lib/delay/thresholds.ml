module Netlist = Halotis_netlist.Netlist
module Tech = Halotis_tech.Tech

let input_vt tech c gid ~pin =
  let g = Netlist.gate c gid in
  match g.Netlist.input_vt.(pin) with
  | Some vt -> vt
  | None -> (Tech.gate_tech tech g.Netlist.kind).Tech.default_vt

let table tech c =
  Array.init (Netlist.gate_count c) (fun gid ->
      let g = Netlist.gate c gid in
      Array.init (Array.length g.Netlist.fanin) (fun pin -> input_vt tech c gid ~pin))
