(** Per-signal capacitive load extraction.

    The load seen by a gate output is the sum of the input-pin
    capacitances of its fanout, a per-fanout wire estimate, and any
    explicit [extra_load] annotation on the driving gate. *)

val of_netlist : Halotis_tech.Tech.t -> Halotis_netlist.Netlist.t -> float array
(** [of_netlist tech c] gives each signal id its load in fF.  Unloaded
    signals (primary outputs with no fanout) get a default measurement
    load of one inverter input so they still switch realistically. *)

val signal_load :
  Halotis_tech.Tech.t -> Halotis_netlist.Netlist.t -> Halotis_netlist.Netlist.signal_id -> float
(** Load of a single signal (same formula as {!of_netlist}). *)
