module Tech = Halotis_tech.Tech
module Netlist = Halotis_netlist.Netlist

type kind = Cdm | Ddm

let kind_to_string = function Cdm -> "CDM" | Ddm -> "DDM"

type request = {
  rising_out : bool;
  pin : int;
  tau_in : float;
  t_event : float;
  last_output_start : float option;
}

type response = { tp : float; tau_out : float; tp_nominal : float; degraded : bool }

let compute tech ~gate_tech ~cl kind req =
  let p = Tech.edge gate_tech ~rising:req.rising_out in
  let pin_factor = gate_tech.Tech.pin_factor req.pin in
  let tp0 = Tech.base_delay p ~pin_factor ~cl ~tau_in:req.tau_in in
  let tau_out = Tech.output_slope p ~cl in
  match kind with
  | Cdm -> { tp = tp0; tau_out; tp_nominal = tp0; degraded = false }
  | Ddm -> (
      match req.last_output_start with
      | None -> { tp = tp0; tau_out; tp_nominal = tp0; degraded = false }
      | Some t_last ->
          let time_since_last = req.t_event +. tp0 -. t_last in
          let tau = Tech.degradation_tau tech p ~cl in
          let t0 = Tech.degradation_t0 tech p ~tau_in:req.tau_in in
          let tp =
            Halotis_tech.Calibrate.predicted_delay ~tp0 ~tau ~t0 ~time_since_last
          in
          { tp; tau_out; tp_nominal = tp0; degraded = tp < tp0 -. 1e-9 })

let for_gate tech c ~loads gid kind req =
  let g = Netlist.gate c gid in
  let gate_tech = Tech.gate_tech tech g.Netlist.kind in
  let cl = loads.(g.Netlist.output) in
  compute tech ~gate_tech ~cl kind req
