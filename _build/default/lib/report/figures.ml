module Digital = Halotis_wave.Digital
module Waveform = Halotis_wave.Waveform
module Transition = Halotis_wave.Transition

type lane = { label : string; initial : bool; lane_edges : Digital.edge list }

let lane_of_waveform ~label ~vt w =
  { label; initial = Waveform.initial w > vt; lane_edges = Digital.edges w ~vt }

let lane_of_edges ~label ~initial edges = { label; initial; lane_edges = edges }

let level_at lane t =
  let rec scan level = function
    | [] -> level
    | (e : Digital.edge) :: rest ->
        if e.Digital.at > t then level
        else
          scan
            (match e.Digital.polarity with Transition.Rising -> true | Falling -> false)
            rest
  in
  scan lane.initial lane.lane_edges

let timing_diagram ?(width = 100) ~t0 ~t1 lanes =
  if t1 <= t0 then invalid_arg "Figures.timing_diagram: empty time range";
  let label_width =
    List.fold_left (fun acc l -> max acc (String.length l.label)) 0 lanes
  in
  let dt = (t1 -. t0) /. float_of_int width in
  let buf = Buffer.create 1024 in
  let render_lane lane =
    Buffer.add_string buf (Printf.sprintf "%-*s " label_width lane.label);
    let prev = ref (level_at lane (t0 +. (0.5 *. dt))) in
    for col = 0 to width - 1 do
      let t = t0 +. ((float_of_int col +. 0.5) *. dt) in
      let level = level_at lane t in
      let ch =
        if level <> !prev then '|'
        else if level then '-'
        else '_'
      in
      prev := level;
      Buffer.add_char buf ch
    done;
    Buffer.add_char buf '\n'
  in
  List.iter render_lane lanes;
  (* time axis: a tick every ~20 columns, labelled in ns *)
  Buffer.add_string buf (String.make (label_width + 1) ' ');
  let tick_every = max 1 (width / 5) in
  let col = ref 0 in
  while !col < width do
    let t_ns = (t0 +. (float_of_int !col *. dt)) /. 1000. in
    let label = Printf.sprintf "^%.1fns" t_ns in
    Buffer.add_string buf label;
    let advance = max (String.length label) tick_every in
    Buffer.add_string buf (String.make (max 0 (tick_every - String.length label)) ' ');
    col := !col + advance
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let voltage_lane ?(width = 100) ?(rows = 5) ~t0 ~t1 ~vdd ~label f =
  if t1 <= t0 then invalid_arg "Figures.voltage_lane: empty time range";
  let dt = (t1 -. t0) /. float_of_int width in
  let samples =
    Array.init width (fun col -> f (t0 +. ((float_of_int col +. 0.5) *. dt)))
  in
  let buf = Buffer.create 1024 in
  for row = rows - 1 downto 0 do
    let lo = vdd *. float_of_int row /. float_of_int rows in
    let prefix = if row = rows - 1 then Printf.sprintf "%-8s" label else String.make 8 ' ' in
    Buffer.add_string buf prefix;
    Array.iter
      (fun v ->
        let bucket_hit = v >= lo in
        let in_bucket = v >= lo && v < lo +. (vdd /. float_of_int rows) in
        Buffer.add_char buf (if in_bucket then '*' else if bucket_hit then ' ' else ' '))
      samples;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
