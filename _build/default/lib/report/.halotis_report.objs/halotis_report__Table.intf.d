lib/report/table.mli:
