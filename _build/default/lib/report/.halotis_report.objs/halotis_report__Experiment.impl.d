lib/report/experiment.ml: Buffer List Printf
