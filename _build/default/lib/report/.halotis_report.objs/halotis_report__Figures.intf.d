lib/report/figures.mli: Halotis_util Halotis_wave
