lib/report/experiment.mli:
