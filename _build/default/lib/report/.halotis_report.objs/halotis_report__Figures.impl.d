lib/report/figures.ml: Array Buffer Halotis_wave List Printf String
