type t = { header : string list; rows : string list list }

let make ~header ~rows =
  let width = List.length header in
  let pad row =
    let missing = width - List.length row in
    if missing > 0 then row @ List.init missing (fun _ -> "") else row
  in
  { header; rows = List.map pad rows }

let column_widths t =
  let consider widths row =
    List.mapi
      (fun i cell ->
        let current = try List.nth widths i with Failure _ -> 0 in
        max current (String.length cell))
      row
  in
  List.fold_left consider (List.map String.length t.header) t.rows

let render t =
  let widths = column_widths t in
  let buf = Buffer.create 512 in
  let line ch =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Buffer.add_string buf (Printf.sprintf " %-*s |" w cell))
      cells;
    Buffer.add_char buf '\n'
  in
  line '-';
  row t.header;
  line '=';
  List.iter row t.rows;
  line '-';
  Buffer.contents buf

let print t = print_string (render t)

let quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line cells = String.concat "," (List.map quote cells) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"
