(** Plain-text table rendering for benchmark reports. *)

type t

val make : header:string list -> rows:string list list -> t
(** Rows shorter than the header are padded with empty cells. *)

val render : t -> string
(** ASCII box drawing with column auto-sizing. *)

val print : t -> unit
(** [render] to stdout. *)

val to_csv : t -> string
(** Comma-separated export (quotes cells containing commas). *)
