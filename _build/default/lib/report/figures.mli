(** ASCII timing diagrams — the textual equivalent of the paper's
    waveform figures (Figs. 1, 6, 7). *)

type lane = {
  label : string;
  initial : bool;
  lane_edges : Halotis_wave.Digital.edge list;
}

val lane_of_waveform :
  label:string -> vt:Halotis_util.Units.voltage -> Halotis_wave.Waveform.t -> lane

val lane_of_edges :
  label:string -> initial:bool -> Halotis_wave.Digital.edge list -> lane

val timing_diagram :
  ?width:int ->
  t0:Halotis_util.Units.time ->
  t1:Halotis_util.Units.time ->
  lane list ->
  string
(** Renders one row per lane: ['-'] high, ['_'] low, ['|'] at an edge;
    a time axis in ns underneath.  Default width 100 columns. *)

val voltage_lane :
  ?width:int ->
  ?rows:int ->
  t0:Halotis_util.Units.time ->
  t1:Halotis_util.Units.time ->
  vdd:Halotis_util.Units.voltage ->
  label:string ->
  (Halotis_util.Units.time -> Halotis_util.Units.voltage) ->
  string
(** Renders a sampled analog trace as a small character plot ([rows]
    vertical buckets, default 5) — used to show runt pulses that a
    digital lane cannot express. *)
