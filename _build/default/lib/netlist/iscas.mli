(** Reader for the ISCAS-85 ".bench" netlist format, the lingua franca
    of academic gate-level benchmarks:

    {v
    # c17
    INPUT(G1)
    INPUT(G2)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    G22 = NAND(G10, G16)
    G9 = NOT(G5)
    G8 = BUFF(G2)
    v}

    Supported functions: AND, NAND, OR, NOR, XOR, XNOR (any arity >= 2),
    NOT and BUFF (arity 1).  Names are case-insensitive for functions
    and case-sensitive for signals. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : ?name:string -> string -> (Netlist.t, error) result
(** [parse_string ~name text] parses a .bench document; [name] is the
    circuit name (default ["bench"]). *)

val parse_file : string -> (Netlist.t, error) result
(** The circuit is named after the file's basename. *)

val c17 : Netlist.t Lazy.t
(** The ISCAS-85 c17 benchmark, embedded. *)

val to_string : Netlist.t -> (string, string) result
(** Renders a circuit in .bench syntax.  Fails with a message when the
    circuit uses constructs the format cannot express (tie cells,
    AOI/OAI/MUX complex gates). *)

val write_file : string -> Netlist.t -> (unit, string) result
