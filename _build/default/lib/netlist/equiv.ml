module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value

type verdict =
  | Equivalent
  | Counterexample of { inputs : bool list; outputs_a : bool list; outputs_b : bool list }
  | Incompatible of string

let outputs_for c ~inputs =
  let pis = Netlist.primary_inputs c in
  if List.length inputs <> List.length pis then
    invalid_arg "Equiv.outputs_for: input vector length mismatch";
  let order =
    match Check.topological_gates c with
    | Some order -> order
    | None -> invalid_arg "Equiv.outputs_for: cyclic circuit"
  in
  let levels = Array.make (Netlist.signal_count c) false in
  Array.iter
    (fun (s : Netlist.signal) ->
      match s.Netlist.constant with
      | Some Value.L1 -> levels.(s.Netlist.signal_id) <- true
      | Some (Value.L0 | Value.X | Value.Z) | None -> ())
    (Netlist.signals c);
  List.iter2 (fun sid v -> levels.(sid) <- v) pis inputs;
  List.iter
    (fun gid ->
      let g = Netlist.gate c gid in
      levels.(g.Netlist.output) <-
        Gate_kind.eval_bool g.Netlist.kind (Array.map (fun sid -> levels.(sid)) g.Netlist.fanin))
    order;
  List.map (fun sid -> levels.(sid)) (Netlist.primary_outputs c)

let check ?(max_inputs = 16) a b =
  let n = List.length (Netlist.primary_inputs a) in
  if n <> List.length (Netlist.primary_inputs b) then
    Incompatible "different primary-input counts"
  else if
    List.length (Netlist.primary_outputs a) <> List.length (Netlist.primary_outputs b)
  then Incompatible "different primary-output counts"
  else if n > max_inputs then
    Incompatible (Printf.sprintf "too many inputs for exhaustive check (%d > %d)" n max_inputs)
  else if Check.topological_gates a = None || Check.topological_gates b = None then
    Incompatible "cyclic circuit"
  else begin
    let rec scan v =
      if v >= 1 lsl n then Equivalent
      else begin
        let inputs = List.init n (fun i -> (v lsr i) land 1 = 1) in
        let outputs_a = outputs_for a ~inputs and outputs_b = outputs_for b ~inputs in
        if outputs_a <> outputs_b then Counterexample { inputs; outputs_a; outputs_b }
        else scan (v + 1)
      end
    in
    scan 0
  end

let pp_verdict fmt = function
  | Equivalent -> Format.pp_print_string fmt "equivalent"
  | Incompatible reason -> Format.fprintf fmt "incompatible: %s" reason
  | Counterexample { inputs; outputs_a; outputs_b } ->
      let bits l = String.concat "" (List.map (fun b -> if b then "1" else "0") l) in
      Format.fprintf fmt "counterexample: inputs=%s a=%s b=%s" (bits inputs) (bits outputs_a)
        (bits outputs_b)
