(** Combinational equivalence checking by exhaustive functional
    evaluation — small-scale but exact, enough for the generator zoo
    (adders, the two multiplier architectures) and for HNL round-trip
    confidence.

    Circuits are compared on the correspondence of their primary-output
    lists under a shared input ordering. *)

type verdict =
  | Equivalent
  | Counterexample of { inputs : bool list; outputs_a : bool list; outputs_b : bool list }
  | Incompatible of string  (** differing input/output counts, cycles *)

val check : ?max_inputs:int -> Netlist.t -> Netlist.t -> verdict
(** [check a b] evaluates both circuits on every input vector
    (default limit 16 inputs, i.e. 65536 vectors).
    Returns [Incompatible] when interfaces differ, either circuit is
    cyclic, or the input count exceeds [max_inputs]. *)

val outputs_for : Netlist.t -> inputs:bool list -> bool list
(** Static functional evaluation of the primary outputs (declaration
    order) for one input vector (primary-input declaration order).
    @raise Invalid_argument on a cyclic circuit or wrong vector
    length. *)

val pp_verdict : Format.formatter -> verdict -> unit
