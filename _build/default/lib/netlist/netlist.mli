(** Gate-level circuit representation.

    A circuit is a bipartite graph of single-output {e gates} and
    {e signals}.  Every signal has at most one driver (a gate output or
    a primary input) and a list of loads (gate input pins).  Per-pin
    threshold-voltage overrides — the key ingredient of the IDDM
    inertial treatment — live on the gate, indexed by pin.

    Values of type {!t} are immutable; build them with
    {!Halotis_netlist.Builder}. *)

type signal_id = int
type gate_id = int

type gate = {
  gate_id : gate_id;
  gate_name : string;
  kind : Halotis_logic.Gate_kind.t;
  fanin : signal_id array;  (** input pins, in {!Halotis_logic.Gate_kind} pin order *)
  output : signal_id;
  input_vt : float option array;
      (** per-pin threshold-voltage override in volts; [None] = use the
          technology default for this gate kind and pin *)
  extra_load : float;  (** additional output load in fF (wire, probes) *)
}

type signal = {
  signal_id : signal_id;
  signal_name : string;
  driver : gate_id option;  (** [None] for primary inputs and constants *)
  loads : (gate_id * int) array;  (** (gate, pin index) pairs *)
  is_primary_input : bool;
  is_primary_output : bool;
  constant : Halotis_logic.Value.t option;
      (** tie cells: signal permanently stuck at a value *)
}

type t

val name : t -> string
val signal_count : t -> int
val gate_count : t -> int
val signal : t -> signal_id -> signal
val gate : t -> gate_id -> gate
val signals : t -> signal array
val gates : t -> gate array
val primary_inputs : t -> signal_id list
(** In declaration order. *)

val primary_outputs : t -> signal_id list
(** In declaration order. *)

val find_signal : t -> string -> signal_id option
val find_gate : t -> string -> gate_id option

val signal_name : t -> signal_id -> string
val gate_name : t -> gate_id -> string

val fanout_gates : t -> signal_id -> gate_id list
(** Distinct gates loading a signal. *)

val make :
  name:string ->
  signals:signal array ->
  gates:gate array ->
  primary_inputs:signal_id list ->
  primary_outputs:signal_id list ->
  t
(** Used by {!Halotis_netlist.Builder}; validates internal consistency
    (ids match indices, pins in range, loads consistent with fanin).
    @raise Invalid_argument on inconsistency. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, #gates, #signals, #PI, #PO. *)
