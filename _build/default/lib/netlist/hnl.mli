(** HNL — the HALOTIS netlist language.

    A tiny line-oriented structural format, enough to round-trip every
    circuit in this repository:

    {v
    # comment
    circuit mult4x4
    input a0 a1 b0 b1
    output s0 s1 s2 s3
    gate g1 nand2 n1 a0 b0            # gate NAME KIND OUT IN1 IN2 ...
    gate g0 and2  n2 a0 const0        # const0/const1 are tie cells
    gate g2 inv   s0 n1 vt0=1.5       # per-pin threshold override
    gate g3 inv   s1 n1 load=12.5     # extra output load in fF
    end
    v}

    Wires are implicit: any identifier that is not declared as input or
    tie cell is an internal signal.  Attributes accepted on a gate line:
    [vt<pin>=<volts>] and [load=<fF>]. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (Netlist.t, error) result
(** Parses a full HNL document. *)

val parse_file : string -> (Netlist.t, error) result
(** Reads and parses a file. *)

val to_string : Netlist.t -> string
(** Prints a circuit as HNL; [parse_string (to_string c)] reproduces an
    isomorphic circuit. *)

val write_file : string -> Netlist.t -> unit
