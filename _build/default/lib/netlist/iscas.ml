module Gate_kind = Halotis_logic.Gate_kind

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

exception Parse_error of error

let fail line fmt = Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip s = String.trim s

let strip_comment line =
  match String.index_opt line '#' with None -> line | Some i -> String.sub line 0 i

(* "INPUT(G1)" -> Some ("INPUT", "G1") *)
let directive line =
  match String.index_opt line '(' with
  | None -> None
  | Some i ->
      if String.length line > 0 && line.[String.length line - 1] = ')' then
        Some
          ( String.uppercase_ascii (strip (String.sub line 0 i)),
            strip (String.sub line (i + 1) (String.length line - i - 2)) )
      else None

(* "G10 = NAND(G1, G3)" -> (out, fn, operands) *)
let assignment lineno line =
  match String.index_opt line '=' with
  | None -> fail lineno "expected '=' in %S" line
  | Some eq ->
      let out = strip (String.sub line 0 eq) in
      let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
      (match directive rhs with
      | Some (fn, args) ->
          let operands = List.map strip (String.split_on_char ',' args) in
          (out, fn, List.filter (fun s -> s <> "") operands)
      | None -> fail lineno "expected FUNC(args) on the right of %S" line)

let kind_of lineno fn arity =
  match (fn, arity) with
  | "NOT", 1 -> Gate_kind.Inv
  | "BUFF", 1 | "BUF", 1 -> Gate_kind.Buf
  | "NOT", n | "BUFF", n | "BUF", n -> fail lineno "%s expects one operand, got %d" fn n
  | "AND", n when n >= 2 -> Gate_kind.And n
  | "NAND", n when n >= 2 -> Gate_kind.Nand n
  | "OR", n when n >= 2 -> Gate_kind.Or n
  | "NOR", n when n >= 2 -> Gate_kind.Nor n
  | "XOR", n when n >= 2 -> Gate_kind.Xor n
  | "XNOR", n when n >= 2 -> Gate_kind.Xnor n
  | ("AND" | "NAND" | "OR" | "NOR" | "XOR" | "XNOR"), n ->
      fail lineno "%s expects at least two operands, got %d" fn n
  | _, _ -> fail lineno "unknown function %S" fn

let parse_string ?(name = "bench") text =
  let lines = String.split_on_char '\n' text in
  try
    let b = Builder.create name in
    let outputs = ref [] in
    let gate_counter = ref 0 in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let line = strip (strip_comment raw) in
        if line <> "" then begin
          match directive line with
          | Some ("INPUT", sig_name) -> (
              try ignore (Builder.input b sig_name)
              with Invalid_argument m -> fail lineno "%s" m)
          | Some ("OUTPUT", sig_name) -> outputs := sig_name :: !outputs
          | Some _ | None ->
              let out, fn, operands = assignment lineno line in
              let kind = kind_of lineno fn (List.length operands) in
              let inputs = List.map (Builder.signal b) operands in
              let output = Builder.signal b out in
              incr gate_counter;
              (try
                 ignore
                   (Builder.add_gate b kind
                      ~name:(Printf.sprintf "g%d_%s" !gate_counter out)
                      ~inputs ~output)
               with Invalid_argument m -> fail lineno "%s" m)
        end)
      lines;
    List.iter (fun n -> Builder.mark_output b (Builder.signal b n)) (List.rev !outputs);
    try Ok (Builder.finalize b)
    with Invalid_argument m -> Error { line = 0; message = m }
  with Parse_error e -> Error e

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string ~name:(Filename.remove_extension (Filename.basename path)) text

let c17_text =
  {|# ISCAS-85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
|}

let c17 =
  lazy
    (match parse_string ~name:"c17" c17_text with
    | Ok c -> c
    | Error e -> Format.kasprintf failwith "embedded c17 failed to parse: %a" pp_error e)

let to_string c =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "# %s\n" (Netlist.name c);
  let exception Unsupported of string in
  try
    List.iter (fun sid -> pr "INPUT(%s)\n" (Netlist.signal_name c sid)) (Netlist.primary_inputs c);
    List.iter (fun sid -> pr "OUTPUT(%s)\n" (Netlist.signal_name c sid)) (Netlist.primary_outputs c);
    Array.iter
      (fun (s : Netlist.signal) ->
        if s.Netlist.constant <> None && Array.length s.Netlist.loads > 0 then
          raise (Unsupported "tie cells cannot be expressed in .bench"))
      (Netlist.signals c);
    Array.iter
      (fun (g : Netlist.gate) ->
        let fn =
          match g.Netlist.kind with
          | Halotis_logic.Gate_kind.Inv -> "NOT"
          | Halotis_logic.Gate_kind.Buf -> "BUFF"
          | Halotis_logic.Gate_kind.And _ -> "AND"
          | Halotis_logic.Gate_kind.Nand _ -> "NAND"
          | Halotis_logic.Gate_kind.Or _ -> "OR"
          | Halotis_logic.Gate_kind.Nor _ -> "NOR"
          | Halotis_logic.Gate_kind.Xor _ -> "XOR"
          | Halotis_logic.Gate_kind.Xnor _ -> "XNOR"
          | Halotis_logic.Gate_kind.Aoi21 | Halotis_logic.Gate_kind.Oai21
          | Halotis_logic.Gate_kind.Mux2 ->
              raise
                (Unsupported
                   (Printf.sprintf "complex cell %s cannot be expressed in .bench"
                      (Halotis_logic.Gate_kind.name g.Netlist.kind)))
        in
        let operands =
          Array.to_list (Array.map (Netlist.signal_name c) g.Netlist.fanin)
        in
        pr "%s = %s(%s)\n" (Netlist.signal_name c g.Netlist.output) fn
          (String.concat ", " operands))
      (Netlist.gates c);
    Ok (Buffer.contents buf)
  with Unsupported m -> Error m

let write_file path c =
  match to_string c with
  | Error _ as e -> e
  | Ok text ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Ok ()
