(** Structural analyses over a finished {!Netlist.t}: driver checks,
    combinational-cycle detection, levelization and fanout statistics.
    The simulators require [topological_gates] to succeed (purely
    combinational circuits), matching the paper's benchmark set. *)

type issue =
  | Undriven_signal of Netlist.signal_id
      (** not a PI, not a constant, and has no driver *)
  | Dangling_signal of Netlist.signal_id
      (** drives nothing and is not a primary output *)
  | Combinational_cycle of Netlist.gate_id list
      (** a cycle through these gates (in order) *)

val pp_issue : Netlist.t -> Format.formatter -> issue -> unit

val structural_issues : Netlist.t -> issue list
(** All issues, cycles reported once each. *)

val topological_gates : Netlist.t -> Netlist.gate_id list option
(** Gates in topological order (fanin before fanout), or [None] when a
    combinational cycle exists. *)

val levelize : Netlist.t -> int array option
(** [levelize c] gives each gate its logic depth (PIs at depth 0; a
    gate's level is 1 + max of its fanin signal levels), or [None] on a
    cycle. *)

val depth : Netlist.t -> int option
(** Maximum gate level; [Some 0] for an empty circuit. *)

val max_fanout : Netlist.t -> int
(** Largest number of load pins on any signal. *)

val transitive_fanin_signals : Netlist.t -> Netlist.signal_id -> Netlist.signal_id list
(** Signals (including the argument) in the cone of influence of a
    signal. *)
