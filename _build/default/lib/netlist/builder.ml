module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value

type sig_info = {
  mutable s_driver : Netlist.gate_id option;
  mutable s_loads : (Netlist.gate_id * int) list; (* reversed *)
  mutable s_is_input : bool;
  mutable s_is_output : bool;
  s_constant : Value.t option;
  s_name : string;
}

type gate_info = {
  g_name : string;
  g_kind : Gate_kind.t;
  g_fanin : Netlist.signal_id array;
  g_output : Netlist.signal_id;
  g_input_vt : float option array;
  g_extra_load : float;
}

(* A minimal growable vector (Dynarray only landed in OCaml 5.2). *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (max 16 (2 * v.len)) x in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i =
    assert (i >= 0 && i < v.len);
    v.data.(i)

  let to_array v = Array.sub v.data 0 v.len
end

type t = {
  name : string;
  sigs : sig_info Vec.t;
  gts : gate_info Vec.t;
  by_name : (string, Netlist.signal_id) Hashtbl.t;
  gate_names : (string, unit) Hashtbl.t;
  mutable inputs : Netlist.signal_id list; (* reversed *)
  mutable outputs : Netlist.signal_id list; (* reversed *)
  consts : (Value.t, Netlist.signal_id) Hashtbl.t;
  mutable fresh_counter : int;
  mutable finalized : bool;
}

let create name =
  {
    name;
    sigs = Vec.create ();
    gts = Vec.create ();
    by_name = Hashtbl.create 64;
    gate_names = Hashtbl.create 64;
    inputs = [];
    outputs = [];
    consts = Hashtbl.create 4;
    fresh_counter = 0;
    finalized = false;
  }

let check_live b = if b.finalized then invalid_arg "Builder: already finalized"

let new_signal b ~name ~constant =
  check_live b;
  if Hashtbl.mem b.by_name name then
    invalid_arg (Printf.sprintf "Builder: signal name %S already used" name);
  let id = b.sigs.Vec.len in
  let info =
    {
      s_driver = None;
      s_loads = [];
      s_is_input = false;
      s_is_output = false;
      s_constant = constant;
      s_name = name;
    }
  in
  Vec.push b.sigs info;
  Hashtbl.replace b.by_name name id;
  id

let input b name =
  let id = new_signal b ~name ~constant:None in
  (Vec.get b.sigs id).s_is_input <- true;
  b.inputs <- id :: b.inputs;
  id

let signal b name =
  match Hashtbl.find_opt b.by_name name with
  | Some id -> id
  | None -> new_signal b ~name ~constant:None

let fresh_signal ?(hint = "n") b =
  let rec next () =
    let name = Printf.sprintf "%s%d" hint b.fresh_counter in
    b.fresh_counter <- b.fresh_counter + 1;
    if Hashtbl.mem b.by_name name then next () else name
  in
  new_signal b ~name:(next ()) ~constant:None

let const b value =
  match Hashtbl.find_opt b.consts value with
  | Some id -> id
  | None ->
      let name = Printf.sprintf "const_%c" (Value.to_char value) in
      let id = new_signal b ~name ~constant:(Some value) in
      Hashtbl.replace b.consts value id;
      id

let add_gate ?name ?input_vt ?(extra_load = 0.) b kind ~inputs ~output =
  check_live b;
  let arity = Gate_kind.arity kind in
  if List.length inputs <> arity then
    invalid_arg
      (Printf.sprintf "Builder: gate kind %s expects %d inputs, got %d"
         (Gate_kind.name kind) arity (List.length inputs));
  let gname =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s_%d" (Gate_kind.name kind) b.gts.Vec.len
  in
  if Hashtbl.mem b.gate_names gname then
    invalid_arg (Printf.sprintf "Builder: gate name %S already used" gname);
  let vt =
    match input_vt with
    | None -> Array.make arity None
    | Some l ->
        if List.length l <> arity then
          invalid_arg "Builder: input_vt length must match gate arity";
        Array.of_list l
  in
  let out_info = Vec.get b.sigs output in
  if out_info.s_driver <> None then
    invalid_arg (Printf.sprintf "Builder: signal %S already driven" out_info.s_name);
  if out_info.s_is_input then
    invalid_arg (Printf.sprintf "Builder: cannot drive primary input %S" out_info.s_name);
  if out_info.s_constant <> None then
    invalid_arg (Printf.sprintf "Builder: cannot drive constant %S" out_info.s_name);
  let gid = b.gts.Vec.len in
  out_info.s_driver <- Some gid;
  List.iteri
    (fun pin sid ->
      let info = Vec.get b.sigs sid in
      info.s_loads <- (gid, pin) :: info.s_loads)
    inputs;
  let gate =
    {
      g_name = gname;
      g_kind = kind;
      g_fanin = Array.of_list inputs;
      g_output = output;
      g_input_vt = vt;
      g_extra_load = extra_load;
    }
  in
  Vec.push b.gts gate;
  Hashtbl.replace b.gate_names gname ();
  gid

let mark_output b id =
  check_live b;
  (Vec.get b.sigs id).s_is_output <- true;
  if not (List.mem id b.outputs) then b.outputs <- id :: b.outputs

let finalize b =
  check_live b;
  b.finalized <- true;
  let signals =
    Array.mapi
      (fun i (info : sig_info) ->
        {
          Netlist.signal_id = i;
          signal_name = info.s_name;
          driver = info.s_driver;
          loads = Array.of_list (List.rev info.s_loads);
          is_primary_input = info.s_is_input;
          is_primary_output = info.s_is_output;
          constant = info.s_constant;
        })
      (Vec.to_array b.sigs)
  in
  let gates =
    Array.mapi
      (fun i (g : gate_info) ->
        {
          Netlist.gate_id = i;
          gate_name = g.g_name;
          kind = g.g_kind;
          fanin = g.g_fanin;
          output = g.g_output;
          input_vt = g.g_input_vt;
          extra_load = g.g_extra_load;
        })
      (Vec.to_array b.gts)
  in
  Netlist.make ~name:b.name ~signals ~gates ~primary_inputs:(List.rev b.inputs)
    ~primary_outputs:(List.rev b.outputs)
