type issue =
  | Undriven_signal of Netlist.signal_id
  | Dangling_signal of Netlist.signal_id
  | Combinational_cycle of Netlist.gate_id list

let pp_issue c fmt = function
  | Undriven_signal id -> Format.fprintf fmt "undriven signal %s" (Netlist.signal_name c id)
  | Dangling_signal id -> Format.fprintf fmt "dangling signal %s" (Netlist.signal_name c id)
  | Combinational_cycle gids ->
      Format.fprintf fmt "combinational cycle: %s"
        (String.concat " -> " (List.map (Netlist.gate_name c) gids))

(* Kahn's algorithm over the gate graph; an edge g1 -> g2 exists when
   g1's output feeds one of g2's pins. *)
let topo_with_cycle c =
  let ngates = Netlist.gate_count c in
  let indegree = Array.make ngates 0 in
  (* one edge per load *pin*: a gate wired twice to the same signal
     contributes two edges, matching the indegree count below *)
  let gate_succs gid =
    let g = Netlist.gate c gid in
    Array.to_list
      (Array.map fst (Netlist.signal c g.Netlist.output).Netlist.loads)
  in
  for gid = 0 to ngates - 1 do
    let g = Netlist.gate c gid in
    Array.iter
      (fun sid ->
        match (Netlist.signal c sid).Netlist.driver with
        | Some _ -> indegree.(gid) <- indegree.(gid) + 1
        | None -> ())
      g.Netlist.fanin
  done;
  let queue = Queue.create () in
  Array.iteri (fun gid d -> if d = 0 then Queue.add gid queue) indegree;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let gid = Queue.pop queue in
    order := gid :: !order;
    incr visited;
    List.iter
      (fun succ ->
        indegree.(succ) <- indegree.(succ) - 1;
        if indegree.(succ) = 0 then Queue.add succ queue)
      (gate_succs gid)
  done;
  if !visited = ngates then Ok (List.rev !order)
  else begin
    (* Gates never popped have final indegree > 0 and each has at least
       one unpopped predecessor, so walking backwards must revisit a
       gate: that closes a cycle. *)
    let unpopped gid = indegree.(gid) > 0 in
    let start =
      let rec find gid = if unpopped gid then gid else find (gid + 1) in
      find 0
    in
    let predecessor gid =
      let g = Netlist.gate c gid in
      let drivers =
        Array.to_list g.Netlist.fanin
        |> List.filter_map (fun sid -> (Netlist.signal c sid).Netlist.driver)
      in
      List.find unpopped drivers
    in
    let rec walk path gid =
      if List.mem gid path then
        let rec cut = function
          | [] -> []
          | x :: rest -> if x = gid then x :: rest else cut rest
        in
        cut path (* path is in reverse walk order = forward edge order *)
      else walk (gid :: path) (predecessor gid)
    in
    Error (walk [] start)
  end

let topological_gates c = match topo_with_cycle c with Ok l -> Some l | Error _ -> None

let structural_issues c =
  let issues = ref [] in
  Array.iter
    (fun (s : Netlist.signal) ->
      let driven = s.driver <> None || s.is_primary_input || s.constant <> None in
      if not driven then issues := Undriven_signal s.signal_id :: !issues;
      if Array.length s.loads = 0 && not s.is_primary_output && s.constant = None then
        issues := Dangling_signal s.signal_id :: !issues)
    (Netlist.signals c);
  (match topo_with_cycle c with
  | Ok _ -> ()
  | Error cycle -> issues := Combinational_cycle cycle :: !issues);
  List.rev !issues

let levelize c =
  match topological_gates c with
  | None -> None
  | Some order ->
      let nsignals = Netlist.signal_count c in
      let sig_level = Array.make nsignals 0 in
      let gate_level = Array.make (Netlist.gate_count c) 0 in
      List.iter
        (fun gid ->
          let g = Netlist.gate c gid in
          let lvl =
            Array.fold_left (fun acc sid -> max acc sig_level.(sid)) 0 g.Netlist.fanin + 1
          in
          gate_level.(gid) <- lvl;
          sig_level.(g.Netlist.output) <- lvl)
        order;
      Some gate_level

let depth c =
  match levelize c with
  | None -> None
  | Some levels -> Some (Array.fold_left max 0 levels)

let max_fanout c =
  Array.fold_left
    (fun acc (s : Netlist.signal) -> max acc (Array.length s.loads))
    0 (Netlist.signals c)

let transitive_fanin_signals c sid =
  let seen = Hashtbl.create 64 in
  let rec visit sid acc =
    if Hashtbl.mem seen sid then acc
    else begin
      Hashtbl.add seen sid ();
      let acc = sid :: acc in
      match (Netlist.signal c sid).Netlist.driver with
      | None -> acc
      | Some gid ->
          Array.fold_left (fun acc fid -> visit fid acc) acc (Netlist.gate c gid).Netlist.fanin
    end
  in
  List.rev (visit sid [])
