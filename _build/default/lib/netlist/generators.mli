(** Circuit generators for the paper's benchmarks and for tests.

    Everything returns a finalized {!Netlist.t}; signal names follow
    the paper's figures where one exists. *)

val inverter_chain : ?name:string -> n:int -> unit -> Netlist.t
(** [inverter_chain ~n ()] is [in -> inv^n -> out], with the
    intermediate signals named [out1 .. out(n-1)] and the last one
    [out].  [n >= 1]. *)

val buffer_tree : ?name:string -> depth:int -> unit -> Netlist.t
(** A complete binary tree of buffers of the given depth driving
    [2^depth] outputs; used for fanout stress tests. *)

type fig1 = {
  circuit : Netlist.t;
  sig_in : Netlist.signal_id;
  sig_out0 : Netlist.signal_id;
  sig_out1 : Netlist.signal_id;
  sig_out2 : Netlist.signal_id;
  sig_out1c : Netlist.signal_id;
  sig_out2c : Netlist.signal_id;
}

val fig1_circuit : ?vt_low:float -> ?vt_high:float -> unit -> fig1
(** The circuit of the paper's Fig. 1: [in] drives a two-inverter
    chain producing [out0]; [out0] fans out to inverter [g1] whose
    input threshold is [vt_low] (default 1.5 V) and inverter [g2] with
    threshold [vt_high] (default 4.0 V); [out1]/[out2] are buffered by
    further inverters into [out1c]/[out2c]. *)

val full_adder :
  Builder.t ->
  prefix:string ->
  a:Netlist.signal_id ->
  b:Netlist.signal_id ->
  cin:Netlist.signal_id ->
  Netlist.signal_id * Netlist.signal_id
(** [full_adder b ~prefix ~a ~b ~cin] instantiates a 5-gate
    XOR/AND/OR full adder into an open builder and returns
    [(sum, carry_out)].  Gate and net names are prefixed. *)

val full_adder_nand9 :
  Builder.t ->
  prefix:string ->
  a:Netlist.signal_id ->
  b:Netlist.signal_id ->
  cin:Netlist.signal_id ->
  Netlist.signal_id * Netlist.signal_id
(** Same contract as {!full_adder} with the classic 9-NAND-gate
    mapping, closer to the standard-cell flavour of the paper's
    multiplier. *)

type adder = {
  adder_circuit : Netlist.t;
  a_bits : Netlist.signal_id list;  (** LSB first *)
  b_bits : Netlist.signal_id list;
  sum_bits : Netlist.signal_id list;  (** LSB first, includes carry-out bit *)
}

val ripple_carry_adder : ?name:string -> ?nand_only:bool -> bits:int -> unit -> adder
(** An n-bit ripple-carry adder built from full adders. *)

val carry_lookahead_adder : ?name:string -> bits:int -> unit -> adder
(** An n-bit carry-lookahead adder (4-bit lookahead groups, rippling
    group carries).  Functionally identical to
    {!ripple_carry_adder} — see [Equiv.check] — with a much flatter
    arrival profile. *)

type multiplier = {
  mult_circuit : Netlist.t;
  ma_bits : Netlist.signal_id list;  (** multiplicand, LSB first *)
  mb_bits : Netlist.signal_id list;  (** multiplier, LSB first *)
  product_bits : Netlist.signal_id list;  (** s0 .. s(m+n-1), LSB first *)
}

val array_multiplier : ?name:string -> ?nand_only:bool -> m:int -> n:int -> unit -> multiplier
(** The carry-save (Braun) array multiplier of the paper's Fig. 5: an
    AND partial-product matrix, [n - 1] rows of [m] full adders whose
    carries are saved into the next row (tie-0 inputs on the boundary
    cells, as drawn in the figure), and a final vector-merge ripple
    row, for [m + n] product bits [s0 ..].
    [array_multiplier ~m:4 ~n:4 ()] is the circuit of Figs. 6/7. *)

val random_combinational :
  ?name:string -> gates:int -> inputs:int -> seed:int -> unit -> Netlist.t
(** A random acyclic circuit for benchmarking: [gates] gates drawn from
    INV/NAND2/NOR2/XOR2 wired to earlier signals.  Every sink-less
    signal is marked as a primary output. *)

val wallace_multiplier : ?name:string -> m:int -> n:int -> unit -> multiplier
(** A Wallace-tree multiplier (column-wise 3:2 reduction, then a ripple
    vector merge).  Same interface as {!array_multiplier}; used by the
    tree-vs-array glitch ablation. *)

type sr_latch = {
  latch_circuit : Netlist.t;
  sig_s_n : Netlist.signal_id;  (** active-low set *)
  sig_r_n : Netlist.signal_id;  (** active-low reset *)
  sig_q : Netlist.signal_id;
  sig_qb : Netlist.signal_id;
}

val sr_latch : ?name:string -> unit -> sr_latch
(** A cross-coupled NAND set/reset latch — the feedback structure
    behind the paper's metastability motivation.  With both inputs
    inactive (high) the DC relaxation settles at [q = 1]. *)

type latch_glitch = {
  lg_circuit : Netlist.t;
  lg_in : Netlist.signal_id;  (** pulse input feeding the glitch source *)
  lg_glitch : Netlist.signal_id;  (** the degraded node watched by both latches *)
  lg_q_low : Netlist.signal_id;  (** state of the latch behind the low-VT sense *)
  lg_q_high : Netlist.signal_id;  (** state of the latch behind the high-VT sense *)
}

val latch_glitch_circuit : ?vt_low:float -> ?vt_high:float -> unit -> latch_glitch
(** The latch-triggering scenario, combining Fig. 1 with the paper's
    metastability motivation: an inverter chain degrades an input pulse
    into a runt; a low-VT (default 1.5 V) and a high-VT (default 4.0 V)
    sense inverter watch the same runt, each feeding the active-low
    reset of its own NAND latch (both initialised to [q = 1]).  Inside
    the degradation band the low latch flips and the high one holds —
    a *state* difference a filter-at-the-driver simulator cannot
    reproduce, since it resets both latches or neither. *)

type d_latch = {
  dl_circuit : Netlist.t;
  dl_d : Netlist.signal_id;
  dl_en : Netlist.signal_id;
  dl_q : Netlist.signal_id;
  dl_qb : Netlist.signal_id;
}

val d_latch : ?name:string -> unit -> d_latch
(** A four-NAND gated (transparent) D latch: [q] follows [d] while
    [en] is high and holds while it is low. *)

type dff = {
  dff_circuit : Netlist.t;
  dff_d : Netlist.signal_id;
  dff_clk : Netlist.signal_id;
  dff_q : Netlist.signal_id;
  dff_qb : Netlist.signal_id;
}

val dff : ?name:string -> unit -> dff
(** A positive-edge master-slave D flip-flop built from two gated
    latches and a clock inverter (nine gates).  Used by the SETUP
    experiment to probe the capture boundary and metastability onset
    the paper's introduction cites (refs [9-12]). *)

type counter = {
  ctr_circuit : Netlist.t;
  ctr_clk : Netlist.signal_id;
  ctr_q : Netlist.signal_id list;  (** LSB first *)
}

val ripple_counter : ?name:string -> bits:int -> unit -> counter
(** An asynchronous (ripple) counter of toggling flip-flops — the
    engines exercise genuine sequential feedback here, clocked only by
    the primary input. *)

type lfsr = {
  lfsr_circuit : Netlist.t;
  lfsr_clk : Netlist.signal_id;
  lfsr_taps : Netlist.signal_id list;  (** flip-flop outputs, stage 0 first *)
}

val lfsr : ?name:string -> bits:int -> taps:int list -> unit -> lfsr
(** A Fibonacci linear-feedback shift register of master-slave
    flip-flops with an XOR feedback of the given tap stages.  The DC
    relaxation starts every stage at 1 — not the XOR lock-up — so the
    register walks its sequence from the first clock edge.  Clocked
    from the primary input; used to validate sequential feedback
    against a software model. *)
