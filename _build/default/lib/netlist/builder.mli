(** Mutable construction API for {!Netlist.t}.

    Typical use:
    {[
      let b = Builder.create "demo" in
      let a = Builder.input b "a" in
      let y = Builder.fresh_signal b ~hint:"n" () in
      let _ = Builder.add_gate b ~name:"g1" Inv ~inputs:[ a ] ~output:y in
      Builder.mark_output b y;
      let circuit = Builder.finalize b
    ]} *)

type t

val create : string -> t
(** [create name] starts an empty circuit called [name]. *)

val input : t -> string -> Netlist.signal_id
(** Declares a primary input signal.
    @raise Invalid_argument if the name is taken. *)

val signal : t -> string -> Netlist.signal_id
(** Declares (or returns, if already declared by [signal]) an internal
    signal by name. *)

val fresh_signal : ?hint:string -> t -> Netlist.signal_id
(** A new internal signal with a generated unique name ([hint ^ number]). *)

val const : t -> Halotis_logic.Value.t -> Netlist.signal_id
(** A tie-cell signal stuck at the given value.  One shared signal per
    distinct value. *)

val add_gate :
  ?name:string ->
  ?input_vt:float option list ->
  ?extra_load:float ->
  t ->
  Halotis_logic.Gate_kind.t ->
  inputs:Netlist.signal_id list ->
  output:Netlist.signal_id ->
  Netlist.gate_id
(** Adds a gate.  [input_vt] lists per-pin threshold overrides in volts
    (defaults to no override).
    @raise Invalid_argument on arity mismatch, double-driven output, or
    duplicate gate name. *)

val mark_output : t -> Netlist.signal_id -> unit
(** Flags a signal as primary output (idempotent). *)

val finalize : t -> Netlist.t
(** Freezes the builder into an immutable, validated circuit.  The
    builder must not be reused afterwards.
    @raise Invalid_argument if validation fails. *)
