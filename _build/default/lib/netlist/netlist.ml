type signal_id = int
type gate_id = int

type gate = {
  gate_id : gate_id;
  gate_name : string;
  kind : Halotis_logic.Gate_kind.t;
  fanin : signal_id array;
  output : signal_id;
  input_vt : float option array;
  extra_load : float;
}

type signal = {
  signal_id : signal_id;
  signal_name : string;
  driver : gate_id option;
  loads : (gate_id * int) array;
  is_primary_input : bool;
  is_primary_output : bool;
  constant : Halotis_logic.Value.t option;
}

type t = {
  name : string;
  signals : signal array;
  gates : gate array;
  primary_inputs : signal_id list;
  primary_outputs : signal_id list;
  signal_by_name : (string, signal_id) Hashtbl.t;
  gate_by_name : (string, gate_id) Hashtbl.t;
}

let name t = t.name
let signal_count t = Array.length t.signals
let gate_count t = Array.length t.gates
let signal t id = t.signals.(id)
let gate t id = t.gates.(id)
let signals t = t.signals
let gates t = t.gates
let primary_inputs t = t.primary_inputs
let primary_outputs t = t.primary_outputs
let find_signal t n = Hashtbl.find_opt t.signal_by_name n
let find_gate t n = Hashtbl.find_opt t.gate_by_name n
let signal_name t id = t.signals.(id).signal_name
let gate_name t id = t.gates.(id).gate_name

let fanout_gates t id =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc (g, _pin) ->
      if Hashtbl.mem seen g then acc
      else begin
        Hashtbl.add seen g ();
        g :: acc
      end)
    [] t.signals.(id).loads
  |> List.rev

let validate ~signals ~gates ~primary_inputs ~primary_outputs =
  let fail fmt = Format.kasprintf invalid_arg fmt in
  let nsignals = Array.length signals and ngates = Array.length gates in
  let check_sig id = if id < 0 || id >= nsignals then fail "signal id %d out of range" id in
  let check_gate id = if id < 0 || id >= ngates then fail "gate id %d out of range" id in
  Array.iteri
    (fun i s ->
      if s.signal_id <> i then fail "signal %s: id %d at index %d" s.signal_name s.signal_id i;
      (match s.driver with Some g -> check_gate g | None -> ());
      if s.is_primary_input && s.driver <> None then
        fail "signal %s: primary input cannot have a driver" s.signal_name;
      if s.constant <> None && s.driver <> None then
        fail "signal %s: constant cannot have a driver" s.signal_name;
      Array.iter
        (fun (g, pin) ->
          check_gate g;
          let gate = gates.(g) in
          if pin < 0 || pin >= Array.length gate.fanin then
            fail "signal %s: load pin %d out of range for gate %s" s.signal_name pin
              gate.gate_name;
          if gate.fanin.(pin) <> i then
            fail "signal %s: load list disagrees with gate %s fanin" s.signal_name
              gate.gate_name)
        s.loads)
    signals;
  Array.iteri
    (fun i g ->
      if g.gate_id <> i then fail "gate %s: id %d at index %d" g.gate_name g.gate_id i;
      let arity = Halotis_logic.Gate_kind.arity g.kind in
      if Array.length g.fanin <> arity then
        fail "gate %s: %d fanin pins for kind %s" g.gate_name (Array.length g.fanin)
          (Halotis_logic.Gate_kind.name g.kind);
      if Array.length g.input_vt <> arity then
        fail "gate %s: input_vt length mismatch" g.gate_name;
      Array.iter check_sig g.fanin;
      check_sig g.output;
      if signals.(g.output).driver <> Some i then
        fail "gate %s: output signal does not record it as driver" g.gate_name)
    gates;
  List.iter
    (fun id ->
      check_sig id;
      if not signals.(id).is_primary_input then
        fail "signal %s listed as PI but not flagged" signals.(id).signal_name)
    primary_inputs;
  List.iter check_sig primary_outputs

let make ~name ~signals ~gates ~primary_inputs ~primary_outputs =
  validate ~signals ~gates ~primary_inputs ~primary_outputs;
  let signal_by_name = Hashtbl.create (Array.length signals) in
  Array.iter (fun s -> Hashtbl.replace signal_by_name s.signal_name s.signal_id) signals;
  let gate_by_name = Hashtbl.create (Array.length gates) in
  Array.iter (fun g -> Hashtbl.replace gate_by_name g.gate_name g.gate_id) gates;
  { name; signals; gates; primary_inputs; primary_outputs; signal_by_name; gate_by_name }

let pp_summary fmt t =
  Format.fprintf fmt "%s: %d gates, %d signals, %d inputs, %d outputs" t.name
    (gate_count t) (signal_count t)
    (List.length t.primary_inputs)
    (List.length t.primary_outputs)
