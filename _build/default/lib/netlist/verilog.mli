(** Structural-Verilog export.

    Emits a circuit as a flat Verilog module built from the standard
    gate primitives ([nand], [nor], [and], [or], [xor], [xnor], [not],
    [buf]), so runs can be cross-checked against any Verilog simulator.
    AOI/OAI/MUX cells are decomposed into primitives; per-pin VT
    overrides and loads are emitted as comments (no Verilog
    equivalent). *)

val to_string : Netlist.t -> string
(** A complete [module ... endmodule] document. *)

val write_file : string -> Netlist.t -> unit
