module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value

let inverter_chain ?(name = "inverter_chain") ~n () =
  assert (n >= 1);
  let b = Builder.create name in
  let src = Builder.input b "in" in
  let rec stage prev i =
    let out = if i = n then Builder.signal b "out" else Builder.signal b (Printf.sprintf "out%d" i) in
    let _ =
      Builder.add_gate b Gate_kind.Inv ~name:(Printf.sprintf "g%d" i) ~inputs:[ prev ]
        ~output:out
    in
    if i = n then out else stage out (i + 1)
  in
  let out = stage src 1 in
  Builder.mark_output b out;
  Builder.finalize b

let buffer_tree ?(name = "buffer_tree") ~depth () =
  assert (depth >= 1);
  let b = Builder.create name in
  let root = Builder.input b "in" in
  let rec expand level nodes =
    if level = depth then nodes
    else
      let next =
        List.concat_map
          (fun src ->
            let mk side =
              let out = Builder.fresh_signal ~hint:"t" b in
              let _ =
                Builder.add_gate b Gate_kind.Buf
                  ~name:(Printf.sprintf "buf_l%d_%d_%s" level out side)
                  ~inputs:[ src ] ~output:out
              in
              out
            in
            [ mk "a"; mk "b" ])
          nodes
      in
      expand (level + 1) next
  in
  let leaves = expand 0 [ root ] in
  List.iter (Builder.mark_output b) leaves;
  Builder.finalize b

type fig1 = {
  circuit : Netlist.t;
  sig_in : Netlist.signal_id;
  sig_out0 : Netlist.signal_id;
  sig_out1 : Netlist.signal_id;
  sig_out2 : Netlist.signal_id;
  sig_out1c : Netlist.signal_id;
  sig_out2c : Netlist.signal_id;
}

let fig1_circuit ?(vt_low = 1.5) ?(vt_high = 4.0) () =
  let b = Builder.create "fig1" in
  let sig_in = Builder.input b "in" in
  let mid = Builder.signal b "mid" in
  let sig_out0 = Builder.signal b "out0" in
  let sig_out1 = Builder.signal b "out1" in
  let sig_out2 = Builder.signal b "out2" in
  let sig_out1c = Builder.signal b "out1c" in
  let sig_out2c = Builder.signal b "out2c" in
  let inv ?input_vt gname inputs output =
    ignore (Builder.add_gate b Gate_kind.Inv ~name:gname ?input_vt ~inputs ~output)
  in
  inv "chain_a" [ sig_in ] mid;
  inv "chain_b" [ mid ] sig_out0;
  inv ~input_vt:[ Some vt_low ] "g1" [ sig_out0 ] sig_out1;
  inv ~input_vt:[ Some vt_high ] "g2" [ sig_out0 ] sig_out2;
  inv "g1c" [ sig_out1 ] sig_out1c;
  inv "g2c" [ sig_out2 ] sig_out2c;
  List.iter (Builder.mark_output b) [ sig_out0; sig_out1; sig_out1c; sig_out2; sig_out2c ];
  let circuit = Builder.finalize b in
  { circuit; sig_in; sig_out0; sig_out1; sig_out2; sig_out1c; sig_out2c }

let full_adder b ~prefix ~a ~b:bb ~cin =
  let net suffix = Builder.signal b (prefix ^ "_" ^ suffix) in
  let axb = net "axb" in
  let sum = net "s" in
  let ab = net "ab" in
  let cx = net "cx" in
  let cout = net "cout" in
  let g kind gname inputs output =
    ignore (Builder.add_gate b kind ~name:(prefix ^ "_" ^ gname) ~inputs ~output)
  in
  g (Gate_kind.Xor 2) "x1" [ a; bb ] axb;
  g (Gate_kind.Xor 2) "x2" [ axb; cin ] sum;
  g (Gate_kind.And 2) "a1" [ a; bb ] ab;
  g (Gate_kind.And 2) "a2" [ axb; cin ] cx;
  g (Gate_kind.Or 2) "o1" [ ab; cx ] cout;
  (sum, cout)

let full_adder_nand9 b ~prefix ~a ~b:bb ~cin =
  let net suffix = Builder.signal b (prefix ^ "_" ^ suffix) in
  let g gname inputs output =
    ignore (Builder.add_gate b (Gate_kind.Nand 2) ~name:(prefix ^ "_" ^ gname) ~inputs ~output)
  in
  (* First half: axb = a xor b through four NANDs. *)
  let n1 = net "n1" in
  let n2 = net "n2" in
  let n3 = net "n3" in
  let axb = net "axb" in
  g "g1" [ a; bb ] n1;
  g "g2" [ a; n1 ] n2;
  g "g3" [ bb; n1 ] n3;
  g "g4" [ n2; n3 ] axb;
  (* Second half: sum = axb xor cin; cout = nand (n5, n1). *)
  let n5 = net "n5" in
  let n6 = net "n6" in
  let n7 = net "n7" in
  let sum = net "s" in
  let cout = net "cout" in
  g "g5" [ axb; cin ] n5;
  g "g6" [ axb; n5 ] n6;
  g "g7" [ cin; n5 ] n7;
  g "g8" [ n6; n7 ] sum;
  g "g9" [ n5; n1 ] cout;
  (sum, cout)

type adder = {
  adder_circuit : Netlist.t;
  a_bits : Netlist.signal_id list;
  b_bits : Netlist.signal_id list;
  sum_bits : Netlist.signal_id list;
}

let ripple_carry_adder ?(name = "rca") ?(nand_only = false) ~bits () =
  assert (bits >= 1);
  let b = Builder.create name in
  let a_bits = List.init bits (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let b_bits = List.init bits (fun i -> Builder.input b (Printf.sprintf "b%d" i)) in
  let fa = if nand_only then full_adder_nand9 else full_adder in
  let zero = Builder.const b Value.L0 in
  let rec chain i cin sums =
    if i = bits then (List.rev sums, cin)
    else begin
      let a = List.nth a_bits i and bb = List.nth b_bits i in
      let sum, cout = fa b ~prefix:(Printf.sprintf "fa%d" i) ~a ~b:bb ~cin in
      chain (i + 1) cout (sum :: sums)
    end
  in
  let sums, carry = chain 0 zero [] in
  let sum_bits = sums @ [ carry ] in
  List.iter (Builder.mark_output b) sum_bits;
  { adder_circuit = Builder.finalize b; a_bits; b_bits; sum_bits }

type multiplier = {
  mult_circuit : Netlist.t;
  ma_bits : Netlist.signal_id list;
  mb_bits : Netlist.signal_id list;
  product_bits : Netlist.signal_id list;
}

(* The carry-save (Braun) array of the paper's Fig. 5.

   Row 0 holds the raw partial products; in each later row j, cell i is
   a full adder combining pp(i,j), the diagonal sum S(i+1, j-1) from
   the previous row, and the carry C(i, j-1) saved by the same column
   of the previous row — the tie-0 inputs of the figure appear on the
   boundary cells.  Product bit s_j is S(0, j); after the last row a
   ripple (vector-merge) adder produces the high bits.  Carries thus
   propagate row-to-row instead of rippling within a row, which keeps
   the critical path short, exactly as in the figure. *)
let array_multiplier ?name ?(nand_only = false) ~m ~n () =
  assert (m >= 1 && n >= 1);
  let cname = match name with Some s -> s | None -> Printf.sprintf "mult%dx%d" m n in
  let b = Builder.create cname in
  let ma_bits = List.init m (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let mb_bits = List.init n (fun j -> Builder.input b (Printf.sprintf "b%d" j)) in
  let ma = Array.of_list ma_bits and mb = Array.of_list mb_bits in
  let zero = Builder.const b Value.L0 in
  let fa = if nand_only then full_adder_nand9 else full_adder in
  let pp i j =
    let out = Builder.signal b (Printf.sprintf "pp_%d_%d" i j) in
    let _ =
      Builder.add_gate b (Gate_kind.And 2)
        ~name:(Printf.sprintf "ppg_%d_%d" i j)
        ~inputs:[ ma.(i); mb.(j) ]
        ~output:out
    in
    out
  in
  let sums = ref (Array.init m (fun i -> pp i 0)) in
  let carries = ref (Array.make m zero) in
  let products = ref [ !sums.(0) ] in
  for j = 1 to n - 1 do
    let next_sums = Array.make m zero and next_carries = Array.make m zero in
    for i = 0 to m - 1 do
      let diagonal = if i < m - 1 then !sums.(i + 1) else zero in
      let sum, cout =
        fa b ~prefix:(Printf.sprintf "fa_%d_%d" i j) ~a:(pp i j) ~b:diagonal
          ~cin:!carries.(i)
      in
      next_sums.(i) <- sum;
      next_carries.(i) <- cout
    done;
    sums := next_sums;
    carries := next_carries;
    products := !sums.(0) :: !products
  done;
  (* Vector merge: at weight n+k combine S(k+1, n-1) with C(k, n-1). *)
  let high = ref [] in
  let carry = ref zero in
  for k = 0 to m - 1 do
    let x = if k < m - 1 then !sums.(k + 1) else zero in
    let sum, cout = fa b ~prefix:(Printf.sprintf "vm_%d" k) ~a:x ~b:!carries.(k) ~cin:!carry in
    (* the very top vector-merge carry is provably 0 (the product fits
       in m+n bits); it stays internal and unloaded *)
    high := sum :: !high;
    carry := cout
  done;
  let product_bits = List.rev !products @ List.rev !high in
  List.iter (Builder.mark_output b) product_bits;
  (* the top vector-merge carry is provably 0 (a product always fits in
     m+n bits); expose it as an output so it is not dangling *)
  Builder.mark_output b !carry;
  { mult_circuit = Builder.finalize b; ma_bits; mb_bits; product_bits }

let random_combinational ?(name = "random") ~gates ~inputs ~seed () =
  assert (gates >= 1 && inputs >= 1);
  let rng = Halotis_util.Prng.create ~seed in
  let b = Builder.create name in
  let pool = ref (Array.init inputs (fun i -> Builder.input b (Printf.sprintf "in%d" i))) in
  let kinds = [| Gate_kind.Inv; Gate_kind.Nand 2; Gate_kind.Nor 2; Gate_kind.Xor 2 |] in
  let loaded = Hashtbl.create (gates * 2) in
  for g = 0 to gates - 1 do
    let kind = kinds.(Halotis_util.Prng.int rng ~bound:(Array.length kinds)) in
    let pick () =
      let sid = !pool.(Halotis_util.Prng.int rng ~bound:(Array.length !pool)) in
      Hashtbl.replace loaded sid ();
      sid
    in
    let ins = List.init (Gate_kind.arity kind) (fun _ -> pick ()) in
    let out = Builder.fresh_signal ~hint:"w" b in
    let _ = Builder.add_gate b kind ~name:(Printf.sprintf "rg%d" g) ~inputs:ins ~output:out in
    let extended = Array.make (Array.length !pool + 1) out in
    Array.blit !pool 0 extended 0 (Array.length !pool);
    pool := extended
  done;
  Array.iter (fun sid -> if not (Hashtbl.mem loaded sid) then Builder.mark_output b sid) !pool;
  Builder.finalize b

type sr_latch = {
  latch_circuit : Netlist.t;
  sig_s_n : Netlist.signal_id;
  sig_r_n : Netlist.signal_id;
  sig_q : Netlist.signal_id;
  sig_qb : Netlist.signal_id;
}

let sr_latch_into builder ~prefix ~s_n ~r_n =
  let q = Builder.signal builder (prefix ^ "_q") in
  let qb = Builder.signal builder (prefix ^ "_qb") in
  let _ =
    Builder.add_gate builder (Gate_kind.Nand 2) ~name:(prefix ^ "_n1") ~inputs:[ s_n; qb ]
      ~output:q
  in
  let _ =
    Builder.add_gate builder (Gate_kind.Nand 2) ~name:(prefix ^ "_n2") ~inputs:[ r_n; q ]
      ~output:qb
  in
  (q, qb)

let sr_latch ?(name = "sr_latch") () =
  let b = Builder.create name in
  let sig_s_n = Builder.input b "s_n" in
  let sig_r_n = Builder.input b "r_n" in
  let sig_q, sig_qb = sr_latch_into b ~prefix:"l" ~s_n:sig_s_n ~r_n:sig_r_n in
  Builder.mark_output b sig_q;
  Builder.mark_output b sig_qb;
  { latch_circuit = Builder.finalize b; sig_s_n; sig_r_n; sig_q; sig_qb }

type latch_glitch = {
  lg_circuit : Netlist.t;
  lg_in : Netlist.signal_id;
  lg_glitch : Netlist.signal_id;
  lg_q_low : Netlist.signal_id;
  lg_q_high : Netlist.signal_id;
}

let latch_glitch_circuit ?(vt_low = 1.5) ?(vt_high = 4.0) () =
  let b = Builder.create "latch_glitch" in
  let lg_in = Builder.input b "in" in
  let mid = Builder.signal b "mid" in
  let glitch = Builder.signal b "glitch" in
  let r_n_low = Builder.signal b "r_n_low" in
  let r_n_high = Builder.signal b "r_n_high" in
  let s_n = Builder.const b Value.L1 in
  let inv ?input_vt gname inputs output =
    ignore (Builder.add_gate b Gate_kind.Inv ~name:gname ?input_vt ~inputs ~output)
  in
  (* two-inverter chain degrades the input pulse into a runt on glitch *)
  inv "chain_a" [ lg_in ] mid;
  inv "chain_b" [ mid ] glitch;
  (* the Fig. 1 pair: a low-threshold and a high-threshold inverter
     watch the same runt, each turning it into an active-low reset
     pulse for its own latch *)
  inv ~input_vt:[ Some vt_low ] "sense_low" [ glitch ] r_n_low;
  inv ~input_vt:[ Some vt_high ] "sense_high" [ glitch ] r_n_high;
  let q_low, qb_low = sr_latch_into b ~prefix:"ll" ~s_n ~r_n:r_n_low in
  let q_high, qb_high = sr_latch_into b ~prefix:"lh" ~s_n ~r_n:r_n_high in
  List.iter (Builder.mark_output b) [ q_low; qb_low; q_high; qb_high; glitch ];
  {
    lg_circuit = Builder.finalize b;
    lg_in;
    lg_glitch = glitch;
    lg_q_low = q_low;
    lg_q_high = q_high;
  }

(* Wallace-tree multiplier: column-wise 3:2 reduction of the partial
   products, then a ripple vector-merge.  Structurally very different
   from the Fig. 5 array (log-depth reduction, XOR-heavy), which makes
   it the natural foil for glitch-activity comparisons. *)
let wallace_multiplier ?name ~m ~n () =
  assert (m >= 1 && n >= 1);
  let cname = match name with Some s -> s | None -> Printf.sprintf "wallace%dx%d" m n in
  let b = Builder.create cname in
  let ma_bits = List.init m (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let mb_bits = List.init n (fun j -> Builder.input b (Printf.sprintf "b%d" j)) in
  let ma = Array.of_list ma_bits and mb = Array.of_list mb_bits in
  let zero = Builder.const b Value.L0 in
  let counter = ref 0 in
  let fresh_prefix tag =
    incr counter;
    Printf.sprintf "%s%d" tag !counter
  in
  let half_adder a x =
    let prefix = fresh_prefix "ha" in
    let sum = Builder.signal b (prefix ^ "_s") in
    let carry = Builder.signal b (prefix ^ "_c") in
    let _ =
      Builder.add_gate b (Gate_kind.Xor 2) ~name:(prefix ^ "_x") ~inputs:[ a; x ] ~output:sum
    in
    let _ =
      Builder.add_gate b (Gate_kind.And 2) ~name:(prefix ^ "_a") ~inputs:[ a; x ]
        ~output:carry
    in
    (sum, carry)
  in
  let width = m + n in
  let columns = Array.make width [] in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let out = Builder.signal b (Printf.sprintf "pp_%d_%d" i j) in
      let _ =
        Builder.add_gate b (Gate_kind.And 2)
          ~name:(Printf.sprintf "ppg_%d_%d" i j)
          ~inputs:[ ma.(i); mb.(j) ]
          ~output:out
      in
      columns.(i + j) <- out :: columns.(i + j)
    done
  done;
  (* 3:2 reduction rounds *)
  let needs_reduction () = Array.exists (fun col -> List.length col > 2) columns in
  while needs_reduction () do
    let next = Array.make width [] in
    Array.iteri
      (fun w col ->
        let rec reduce = function
          | a :: x :: y :: rest ->
              let sum, carry = full_adder b ~prefix:(fresh_prefix "cs") ~a ~b:x ~cin:y in
              next.(w) <- sum :: next.(w);
              if w + 1 < width then next.(w + 1) <- carry :: next.(w + 1);
              reduce rest
          | [ a; x ] when List.length col > 2 ->
              (* only compress pairs in columns that are shrinking *)
              let sum, carry = half_adder a x in
              next.(w) <- sum :: next.(w);
              if w + 1 < width then next.(w + 1) <- carry :: next.(w + 1);
              []
          | remainder ->
              next.(w) <- List.rev_append remainder next.(w);
              []
        in
        ignore (reduce col))
      columns;
    Array.blit next 0 columns 0 width
  done;
  (* vector merge: every column now has at most two entries *)
  let product_bits = ref [] in
  let carry = ref zero in
  for w = 0 to width - 1 do
    match columns.(w) with
    | [] ->
        product_bits := !carry :: !product_bits;
        carry := zero
    | [ a ] ->
        let sum, c = half_adder a !carry in
        product_bits := sum :: !product_bits;
        carry := c
    | [ a; x ] ->
        let sum, c = full_adder b ~prefix:(fresh_prefix "vm") ~a ~b:x ~cin:!carry in
        product_bits := sum :: !product_bits;
        carry := c
    | _ :: _ :: _ :: _ -> assert false
  done;
  let product_bits = List.rev !product_bits in
  List.iter (Builder.mark_output b) product_bits;
  { mult_circuit = Builder.finalize b; ma_bits; mb_bits; product_bits }

(* Carry-lookahead adder: generate/propagate per bit and a two-level
   AND-OR lookahead within 4-bit groups, group carries rippling.  Same
   function as the ripple-carry adder with a very different timing
   profile — the STA and hazard analyses tell them apart. *)
let carry_lookahead_adder ?(name = "cla") ~bits () =
  assert (bits >= 1);
  let b = Builder.create name in
  let a_bits = List.init bits (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let b_bits = List.init bits (fun i -> Builder.input b (Printf.sprintf "b%d" i)) in
  let a = Array.of_list a_bits and bb = Array.of_list b_bits in
  let zero = Builder.const b Value.L0 in
  let g gate_kind gname inputs output =
    ignore (Builder.add_gate b gate_kind ~name:gname ~inputs ~output)
  in
  let p = Array.make bits zero and gn = Array.make bits zero in
  for i = 0 to bits - 1 do
    let pi = Builder.signal b (Printf.sprintf "p%d" i) in
    let gi = Builder.signal b (Printf.sprintf "g%d" i) in
    g (Gate_kind.Xor 2) (Printf.sprintf "px%d" i) [ a.(i); bb.(i) ] pi;
    g (Gate_kind.And 2) (Printf.sprintf "ga%d" i) [ a.(i); bb.(i) ] gi;
    p.(i) <- pi;
    gn.(i) <- gi
  done;
  (* carries: c.(i) is the carry into bit i; groups of 4 share the
     lookahead from the group's carry-in *)
  let c = Array.make (bits + 1) zero in
  let group_start = ref 0 in
  while !group_start < bits do
    let s = !group_start in
    let limit = min (s + 4) bits in
    for i = s + 1 to limit do
      (* c_i = g_{i-1} | p_{i-1}g_{i-2} | ... | p_{i-1}..p_s c_s *)
      let terms = ref [] in
      for k = s to i - 1 do
        (* product p_{i-1} .. p_{k+1} (g_k | [c_s when k = s]) *)
        let factors = ref [ gn.(k) ] in
        for j = k + 1 to i - 1 do
          factors := p.(j) :: !factors
        done;
        let term =
          match !factors with
          | [ single ] -> single
          | fs ->
              let t = Builder.signal b (Printf.sprintf "t%d_%d" i k) in
              g (Gate_kind.And (List.length fs)) (Printf.sprintf "ta%d_%d" i k) fs t;
              t
        in
        terms := term :: !terms
      done;
      (* carry-in term: p_{i-1}..p_s c_s *)
      if c.(s) != zero then begin
        let factors = ref [ c.(s) ] in
        for j = s to i - 1 do
          factors := p.(j) :: !factors
        done;
        let t = Builder.signal b (Printf.sprintf "tc%d" i) in
        g (Gate_kind.And (List.length !factors)) (Printf.sprintf "tca%d" i) !factors t;
        terms := t :: !terms
      end;
      let ci =
        match !terms with
        | [ single ] -> single
        | ts ->
            let ci = Builder.signal b (Printf.sprintf "c%d" i) in
            g (Gate_kind.Or (List.length ts)) (Printf.sprintf "co%d" i) ts ci;
            ci
      in
      c.(i) <- ci
    done;
    group_start := limit
  done;
  let sum_bits =
    List.init bits (fun i ->
        let si = Builder.signal b (Printf.sprintf "s%d" i) in
        g (Gate_kind.Xor 2) (Printf.sprintf "sx%d" i) [ p.(i); c.(i) ] si;
        si)
    @ [ c.(bits) ]
  in
  List.iter (Builder.mark_output b) sum_bits;
  { adder_circuit = Builder.finalize b; a_bits; b_bits; sum_bits }

type d_latch = {
  dl_circuit : Netlist.t;
  dl_d : Netlist.signal_id;
  dl_en : Netlist.signal_id;
  dl_q : Netlist.signal_id;
  dl_qb : Netlist.signal_id;
}

(* Gated (transparent) D latch, four NANDs:
   n1 = nand(d, en); n2 = nand(n1, en); q = nand(n1, qb); qb = nand(n2, q). *)
let d_latch_into b ~prefix ~d ~en =
  let net suffix = Builder.signal b (prefix ^ "_" ^ suffix) in
  let g gname inputs output =
    ignore
      (Builder.add_gate b (Gate_kind.Nand 2) ~name:(prefix ^ "_" ^ gname) ~inputs ~output)
  in
  let n1 = net "n1" in
  let n2 = net "n2" in
  let q = net "q" in
  let qb = net "qb" in
  g "g1" [ d; en ] n1;
  g "g2" [ n1; en ] n2;
  g "g3" [ n1; qb ] q;
  g "g4" [ n2; q ] qb;
  (q, qb)

let d_latch ?(name = "d_latch") () =
  let b = Builder.create name in
  let dl_d = Builder.input b "d" in
  let dl_en = Builder.input b "en" in
  let dl_q, dl_qb = d_latch_into b ~prefix:"l" ~d:dl_d ~en:dl_en in
  Builder.mark_output b dl_q;
  Builder.mark_output b dl_qb;
  { dl_circuit = Builder.finalize b; dl_d; dl_en; dl_q; dl_qb }

type dff = {
  dff_circuit : Netlist.t;
  dff_d : Netlist.signal_id;
  dff_clk : Netlist.signal_id;
  dff_q : Netlist.signal_id;
  dff_qb : Netlist.signal_id;
}

(* Positive-edge master-slave flip-flop: the master latch is
   transparent while the clock is low, the slave while it is high. *)
let dff_into b ~prefix ~d ~clk =
  let nclk = Builder.signal b (prefix ^ "_nclk") in
  let _ =
    Builder.add_gate b Gate_kind.Inv ~name:(prefix ^ "_ck") ~inputs:[ clk ] ~output:nclk
  in
  let mq, _mqb = d_latch_into b ~prefix:(prefix ^ "_m") ~d ~en:nclk in
  let q, qb = d_latch_into b ~prefix:(prefix ^ "_s") ~d:mq ~en:clk in
  (q, qb)

let dff ?(name = "dff") () =
  let b = Builder.create name in
  let dff_d = Builder.input b "d" in
  let dff_clk = Builder.input b "clk" in
  let dff_q, dff_qb = dff_into b ~prefix:"f" ~d:dff_d ~clk:dff_clk in
  Builder.mark_output b dff_q;
  Builder.mark_output b dff_qb;
  { dff_circuit = Builder.finalize b; dff_d; dff_clk; dff_q; dff_qb }

type counter = {
  ctr_circuit : Netlist.t;
  ctr_clk : Netlist.signal_id;
  ctr_q : Netlist.signal_id list;  (** LSB first *)
}

(* Asynchronous (ripple) counter: each stage is a DFF toggling on the
   falling edge of the previous stage's q (clocked by qb). *)
let ripple_counter ?(name = "counter") ~bits () =
  assert (bits >= 1);
  let b = Builder.create name in
  let ctr_clk = Builder.input b "clk" in
  let rec stage i clk qs =
    if i = bits then List.rev qs
    else begin
      let prefix = Printf.sprintf "b%d" i in
      (* d = qb: toggle on each active clock edge *)
      let d = Builder.signal b (prefix ^ "_s_qb") in
      (* d_latch_into/dff_into create <prefix>_s_qb as the slave's qb,
         so referencing it first wires the toggle feedback *)
      let q, qb = dff_into b ~prefix ~d ~clk in
      ignore qb;
      Builder.mark_output b q;
      stage (i + 1) q (q :: qs)
    end
  in
  let ctr_q = stage 0 ctr_clk [] in
  { ctr_circuit = Builder.finalize b; ctr_clk; ctr_q }

type lfsr = {
  lfsr_circuit : Netlist.t;
  lfsr_clk : Netlist.signal_id;
  lfsr_taps : Netlist.signal_id list;  (** flip-flop outputs, stage 0 first *)
}

(* Fibonacci LFSR: a shift register of master-slave flip-flops with an
   XOR of the tap stages feeding stage 0.  The DC relaxation
   initialises every latch to q = 1 (see [Dc]), which is not the XOR
   lock-up state (all zeros), so the register walks its sequence from
   the first clock edge. *)
let lfsr ?(name = "lfsr") ~bits ~taps () =
  assert (bits >= 2);
  assert (taps <> [] && List.for_all (fun t -> t >= 0 && t < bits) taps);
  let b = Builder.create name in
  let lfsr_clk = Builder.input b "clk" in
  let feedback = Builder.signal b "feedback" in
  let qs = ref [] in
  let d = ref feedback in
  for i = 0 to bits - 1 do
    let q, _qb = dff_into b ~prefix:(Printf.sprintf "s%d" i) ~d:!d ~clk:lfsr_clk in
    Builder.mark_output b q;
    qs := q :: !qs;
    d := q
  done;
  let stages = List.rev !qs in
  (match List.map (fun t -> List.nth stages t) taps with
  | [ single ] ->
      ignore (Builder.add_gate b Gate_kind.Buf ~name:"fb" ~inputs:[ single ] ~output:feedback)
  | tap_signals ->
      ignore
        (Builder.add_gate b
           (Gate_kind.Xor (List.length tap_signals))
           ~name:"fb" ~inputs:tap_signals ~output:feedback));
  { lfsr_circuit = Builder.finalize b; lfsr_clk; lfsr_taps = stages }
