module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

exception Parse_error of error

let fail line fmt = Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

(* A gate-line attribute: vt<pin>=<float> or load=<float>. *)
type attr = Vt of int * float | Load of float

let parse_attr lineno tok =
  match String.index_opt tok '=' with
  | None -> None
  | Some i ->
      let key = String.sub tok 0 i in
      let value = String.sub tok (i + 1) (String.length tok - i - 1) in
      let fvalue () =
        match float_of_string_opt value with
        | Some f -> f
        | None -> fail lineno "bad numeric attribute value %S" value
      in
      if key = "load" then Some (Load (fvalue ()))
      else if String.length key > 2 && String.sub key 0 2 = "vt" then begin
        match int_of_string_opt (String.sub key 2 (String.length key - 2)) with
        | Some pin -> Some (Vt (pin, fvalue ()))
        | None -> fail lineno "bad attribute %S" tok
      end
      else fail lineno "unknown attribute %S" tok

let parse_string text =
  let lines = String.split_on_char '\n' text in
  try
    let builder = ref None in
    let ended = ref false in
    let get_builder lineno =
      match !builder with
      | Some b -> b
      | None -> fail lineno "missing 'circuit NAME' header"
    in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let tokens = tokenize (strip_comment raw) in
        match tokens with
        | [] -> ()
        | _ when !ended -> fail lineno "content after 'end'"
        | [ "circuit"; name ] ->
            if !builder <> None then fail lineno "duplicate 'circuit' header";
            builder := Some (Builder.create name)
        | "circuit" :: _ -> fail lineno "usage: circuit NAME"
        | "input" :: names ->
            let b = get_builder lineno in
            if names = [] then fail lineno "usage: input NAME...";
            List.iter
              (fun n ->
                try ignore (Builder.input b n)
                with Invalid_argument m -> fail lineno "%s" m)
              names
        | "output" :: names ->
            let b = get_builder lineno in
            if names = [] then fail lineno "usage: output NAME...";
            List.iter (fun n -> Builder.mark_output b (Builder.signal b n)) names
        | "gate" :: name :: kind_name :: out :: rest ->
            let b = get_builder lineno in
            let kind =
              match Gate_kind.of_name kind_name with
              | Some k -> k
              | None -> fail lineno "unknown gate kind %S" kind_name
            in
            let arity = Gate_kind.arity kind in
            let rec split_ins acc n = function
              | tok :: rest when n > 0 -> split_ins (tok :: acc) (n - 1) rest
              | rest -> (List.rev acc, rest)
            in
            let ins, attr_toks = split_ins [] arity rest in
            if List.length ins <> arity then
              fail lineno "gate %s: kind %s needs %d inputs" name kind_name arity;
            let attrs = List.filter_map (parse_attr lineno) attr_toks in
            let leftovers =
              List.filter (fun tok -> parse_attr lineno tok = None) attr_toks
            in
            (match leftovers with
            | [] -> ()
            | tok :: _ -> fail lineno "unexpected token %S" tok);
            let operand tok =
              match tok with
              | "const0" -> Builder.const b Value.L0
              | "const1" -> Builder.const b Value.L1
              | _ -> Builder.signal b tok
            in
            let inputs = List.map operand ins in
            let output = Builder.signal b out in
            let vt = Array.make arity None in
            let extra_load = ref 0. in
            List.iter
              (function
                | Vt (pin, v) ->
                    if pin < 0 || pin >= arity then
                      fail lineno "gate %s: vt pin %d out of range" name pin;
                    vt.(pin) <- Some v
                | Load l -> extra_load := l)
              attrs;
            (try
               ignore
                 (Builder.add_gate b kind ~name ~input_vt:(Array.to_list vt)
                    ~extra_load:!extra_load ~inputs ~output)
             with Invalid_argument m -> fail lineno "%s" m)
        | [ "end" ] ->
            ignore (get_builder lineno);
            ended := true
        | tok :: _ -> fail lineno "unknown directive %S" tok)
      lines;
    match !builder with
    | None -> Error { line = 0; message = "empty document" }
    | Some b ->
        if not !ended then Error { line = List.length lines; message = "missing 'end'" }
        else begin
          try Ok (Builder.finalize b)
          with Invalid_argument m -> Error { line = 0; message = m }
        end
  with Parse_error e -> Error e

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string c =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "circuit %s\n" (Netlist.name c);
  (match Netlist.primary_inputs c with
  | [] -> ()
  | ins -> pr "input %s\n" (String.concat " " (List.map (Netlist.signal_name c) ins)));
  (match Netlist.primary_outputs c with
  | [] -> ()
  | outs -> pr "output %s\n" (String.concat " " (List.map (Netlist.signal_name c) outs)));
  Array.iter
    (fun (g : Netlist.gate) ->
      let operand sid =
        let s = Netlist.signal c sid in
        match s.Netlist.constant with
        | Some Value.L0 -> "const0"
        | Some Value.L1 -> "const1"
        | Some (Value.X | Value.Z) | None -> s.Netlist.signal_name
      in
      let ins = Array.to_list (Array.map operand g.Netlist.fanin) in
      let attrs = Buffer.create 16 in
      Array.iteri
        (fun pin vt ->
          match vt with
          | Some v -> Printf.ksprintf (Buffer.add_string attrs) " vt%d=%g" pin v
          | None -> ())
        g.Netlist.input_vt;
      if g.Netlist.extra_load <> 0. then
        Printf.ksprintf (Buffer.add_string attrs) " load=%g" g.Netlist.extra_load;
      pr "gate %s %s %s %s%s\n" g.Netlist.gate_name
        (Gate_kind.name g.Netlist.kind)
        (Netlist.signal_name c g.Netlist.output)
        (String.concat " " ins) (Buffer.contents attrs))
    (Netlist.gates c);
  pr "end\n";
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
