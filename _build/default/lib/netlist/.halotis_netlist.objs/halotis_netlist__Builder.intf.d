lib/netlist/builder.mli: Halotis_logic Netlist
