lib/netlist/generators.mli: Builder Netlist
