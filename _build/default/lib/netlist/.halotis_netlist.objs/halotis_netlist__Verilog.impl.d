lib/netlist/verilog.ml: Array Buffer Halotis_logic List Netlist Printf String
