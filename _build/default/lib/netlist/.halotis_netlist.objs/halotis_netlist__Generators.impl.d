lib/netlist/generators.ml: Array Builder Halotis_logic Halotis_util Hashtbl List Netlist Printf
