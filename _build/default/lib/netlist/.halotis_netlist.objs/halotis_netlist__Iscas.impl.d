lib/netlist/iscas.ml: Array Buffer Builder Filename Format Halotis_logic List Netlist Printf String
