lib/netlist/equiv.mli: Format Netlist
