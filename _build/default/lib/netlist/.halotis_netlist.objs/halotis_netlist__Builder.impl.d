lib/netlist/builder.ml: Array Halotis_logic Hashtbl List Netlist Printf
