lib/netlist/hnl.mli: Format Netlist
