lib/netlist/check.ml: Array Format Hashtbl List Netlist Queue String
