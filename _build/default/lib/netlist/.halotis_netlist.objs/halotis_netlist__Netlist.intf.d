lib/netlist/netlist.mli: Format Halotis_logic
