lib/netlist/equiv.ml: Array Check Format Halotis_logic List Netlist Printf String
