lib/netlist/hnl.ml: Array Buffer Builder Format Halotis_logic List Netlist Printf String
