lib/netlist/iscas.mli: Format Lazy Netlist
