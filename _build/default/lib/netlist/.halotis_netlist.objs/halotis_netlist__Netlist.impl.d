lib/netlist/netlist.ml: Array Format Halotis_logic Hashtbl List
