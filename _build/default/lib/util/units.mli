(** Physical scalars used throughout HALOTIS.

    All times are in picoseconds, voltages in volts and capacitances in
    femtofarads, carried as plain [float]s.  This module centralises the
    conventions and the formatting helpers so the rest of the code never
    hard-codes a unit conversion. *)

type time = float
(** Time in picoseconds. *)

type voltage = float
(** Voltage in volts. *)

type capacitance = float
(** Capacitance in femtofarads. *)

val ps : float -> time
(** [ps x] is [x] picoseconds. *)

val ns : float -> time
(** [ns x] is [x] nanoseconds expressed in picoseconds. *)

val time_to_ns : time -> float
(** [time_to_ns t] converts a picosecond time to nanoseconds. *)

val volts : float -> voltage
(** [volts x] is [x] volts. *)

val ff : float -> capacitance
(** [ff x] is [x] femtofarads. *)

val pp_time : Format.formatter -> time -> unit
(** Prints a time with an adaptive unit ([ps] or [ns]). *)

val pp_voltage : Format.formatter -> voltage -> unit
(** Prints a voltage in volts with three decimals. *)

val pp_capacitance : Format.formatter -> capacitance -> unit
(** Prints a capacitance in femtofarads. *)

val time_to_string : time -> string
(** [time_to_string t] is [Format.asprintf "%a" pp_time t]. *)
