(** Tolerant floating-point comparisons.

    Event times are produced by chains of arithmetic on ramp slopes;
    comparing them for strict equality is meaningless.  All simulator
    code that needs "same instant" or "at least as late" semantics goes
    through this module so the tolerance is defined exactly once. *)

val default_eps : float
(** Absolute tolerance used by the [~eps]-less variants, in the unit of
    the compared quantity (picoseconds for times). *)

val equal : ?eps:float -> float -> float -> bool
(** [equal a b] is true when [|a - b| <= eps]. *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b] is true when [a <= b + eps]. *)

val geq : ?eps:float -> float -> float -> bool
(** [geq a b] is true when [a >= b - eps]. *)

val lt : ?eps:float -> float -> float -> bool
(** [lt a b] is true when [a < b - eps] (strictly before, beyond the
    tolerance). *)

val gt : ?eps:float -> float -> float -> bool
(** [gt a b] is true when [a > b + eps]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] bounds [x] into [\[lo, hi\]]. *)

val is_finite : float -> bool
(** [is_finite x] is true when [x] is neither NaN nor infinite. *)
