(** Deterministic splittable pseudo-random generator (splitmix64).

    Benchmarks and property tests need reproducible random workloads
    that do not depend on the global [Random] state; this PRNG is
    seeded explicitly and can be split into independent streams. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split g] derives an independent generator, advancing [g]. *)

val int : t -> bound:int -> int
(** [int g ~bound] is uniform in [\[0, bound)], [bound > 0]. *)

val float : t -> bound:float -> float
(** [float g ~bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bits64 : t -> int64
(** The raw next 64-bit word. *)
