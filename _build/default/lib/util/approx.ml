let default_eps = 1e-6

let equal ?(eps = default_eps) a b = Float.abs (a -. b) <= eps
let leq ?(eps = default_eps) a b = a <= b +. eps
let geq ?(eps = default_eps) a b = a >= b -. eps
let lt ?(eps = default_eps) a b = a < b -. eps
let gt ?(eps = default_eps) a b = a > b +. eps

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let is_finite x = Float.is_finite x
