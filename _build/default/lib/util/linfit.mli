(** Small numeric fitting helpers used by the DDM calibration pass.

    The degradation law (paper eq. 1) linearises as
    [ln (1 - tp / tp0) = -(T - T0) / tau], so fitting [tau] and [T0]
    from electrical measurements reduces to ordinary least squares on
    transformed samples. *)

val linear_regression : (float * float) list -> (float * float) option
(** [linear_regression samples] fits [y = a * x + b] and returns
    [(a, b)], or [None] when there are fewer than two distinct
    abscissae. *)

val r_squared : (float * float) list -> a:float -> b:float -> float
(** [r_squared samples ~a ~b] is the coefficient of determination of
    the fit [y = a * x + b] on [samples] (1.0 = perfect). *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val multiple_regression : ((float array * float) list) -> float array option
(** [multiple_regression rows] fits [y = c0 + c1*x1 + ... + cn*xn] by
    ordinary least squares; each row is [(\[|x1; ...; xn|\], y)].
    Returns [\[|c0; c1; ...; cn|\]], or [None] when rows are
    inconsistent in width, too few, or the normal equations are
    singular. *)
