lib/util/prng.mli:
