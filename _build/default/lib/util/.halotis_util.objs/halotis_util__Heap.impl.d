lib/util/heap.ml: Array Float Int List
