lib/util/approx.mli:
