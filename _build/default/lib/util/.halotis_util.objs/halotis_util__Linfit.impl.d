lib/util/linfit.ml: Array Float List
