lib/util/linfit.mli:
