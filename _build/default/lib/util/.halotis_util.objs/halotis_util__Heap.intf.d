lib/util/heap.mli:
