(* Array-based binary heap.  Each entry records its current array index
   so handles can remove it in O(log n).  [seq] is a monotonically
   increasing stamp used to break key ties FIFO. *)

type 'a entry = {
  key : float;
  seq : int;
  value : 'a;
  mutable index : int; (* -1 once popped or removed *)
}

type 'a handle = 'a entry

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let length h = h.size
let is_empty h = h.size = 0

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap h i j =
  let a = h.data.(i) and b = h.data.(j) in
  h.data.(i) <- b;
  h.data.(j) <- a;
  a.index <- j;
  b.index <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < h.size && entry_lt h.data.(left) h.data.(i) then left else i in
  let smallest =
    if right < h.size && entry_lt h.data.(right) h.data.(smallest) then right else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let grow h =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let dummy = h.data.(0) in
    let data = Array.make (max 8 (2 * capacity)) dummy in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let insert h ~key value =
  let entry = { key; seq = h.next_seq; value; index = h.size } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 8 entry else grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1);
  entry

(* Remove the entry currently stored at index [i]. *)
let remove_at h i =
  let entry = h.data.(i) in
  entry.index <- -1;
  h.size <- h.size - 1;
  if i < h.size then begin
    let last = h.data.(h.size) in
    h.data.(i) <- last;
    last.index <- i;
    (* The moved entry may need to travel either way. *)
    sift_up h i;
    sift_down h last.index
  end

let pop_min h =
  if h.size = 0 then None
  else begin
    let entry = h.data.(0) in
    remove_at h 0;
    Some (entry.key, entry.value)
  end

let peek_min h = if h.size = 0 then None else Some (h.data.(0).key, h.data.(0).value)

let mem _h handle = handle.index >= 0

let remove h handle =
  if handle.index < 0 then false
  else begin
    assert (h.data.(handle.index) == handle);
    remove_at h handle.index;
    true
  end

let key_of _h handle = if handle.index >= 0 then Some handle.key else None

let to_sorted_list h =
  let live = Array.sub h.data 0 h.size in
  let copy = Array.to_list live in
  let compare_entry a b =
    match Float.compare a.key b.key with 0 -> Int.compare a.seq b.seq | c -> c
  in
  List.map (fun e -> (e.key, e.value)) (List.sort compare_entry copy)
