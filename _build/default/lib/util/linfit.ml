let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let linear_regression samples =
  let n = List.length samples in
  if n < 2 then None
  else begin
    let xs = List.map fst samples and ys = List.map snd samples in
    let mx = mean xs and my = mean ys in
    let sxx = List.fold_left (fun acc x -> acc +. ((x -. mx) *. (x -. mx))) 0. xs in
    let sxy =
      List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0. samples
    in
    if sxx = 0. then None
    else begin
      let a = sxy /. sxx in
      Some (a, my -. (a *. mx))
    end
  end

let r_squared samples ~a ~b =
  let ys = List.map snd samples in
  let my = mean ys in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. my) *. (y -. my))) 0. ys in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let r = y -. ((a *. x) +. b) in
        acc +. (r *. r))
      0. samples
  in
  if ss_tot = 0. then if ss_res = 0. then 1. else 0. else 1. -. (ss_res /. ss_tot)

(* Ordinary least squares via the normal equations, solved by Gaussian
   elimination with partial pivoting.  Dimensions are tiny (number of
   regressors + 1), so numerical sophistication is unnecessary. *)
let multiple_regression rows =
  match rows with
  | [] -> None
  | (first, _) :: _ ->
      let k = Array.length first + 1 in
      if List.length rows < k then None
      else if List.exists (fun (xs, _) -> Array.length xs <> k - 1) rows then None
      else begin
        (* design row: [1; x1; ...; xn] *)
        let design (xs, _) = Array.append [| 1. |] xs in
        let a = Array.make_matrix k k 0. in
        let b = Array.make k 0. in
        List.iter
          (fun ((_, y) as row) ->
            let d = design row in
            for i = 0 to k - 1 do
              b.(i) <- b.(i) +. (d.(i) *. y);
              for j = 0 to k - 1 do
                a.(i).(j) <- a.(i).(j) +. (d.(i) *. d.(j))
              done
            done)
          rows;
        (* Gaussian elimination with partial pivoting *)
        let singular = ref false in
        for col = 0 to k - 1 do
          let pivot = ref col in
          for r = col + 1 to k - 1 do
            if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
          done;
          if Float.abs a.(!pivot).(col) < 1e-12 then singular := true
          else begin
            if !pivot <> col then begin
              let tmp = a.(col) in
              a.(col) <- a.(!pivot);
              a.(!pivot) <- tmp;
              let tb = b.(col) in
              b.(col) <- b.(!pivot);
              b.(!pivot) <- tb
            end;
            for r = col + 1 to k - 1 do
              let f = a.(r).(col) /. a.(col).(col) in
              for c = col to k - 1 do
                a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
              done;
              b.(r) <- b.(r) -. (f *. b.(col))
            done
          end
        done;
        if !singular then None
        else begin
          let x = Array.make k 0. in
          for i = k - 1 downto 0 do
            let s = ref b.(i) in
            for j = i + 1 to k - 1 do
              s := !s -. (a.(i).(j) *. x.(j))
            done;
            x.(i) <- !s /. a.(i).(i)
          done;
          Some x
        end
      end
