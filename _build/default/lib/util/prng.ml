(* splitmix64: tiny, fast, and statistically adequate for workload
   generation.  Reference: Steele, Lea & Flood, OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = bits64 g }

let int g ~bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  raw mod bound

let float g ~bound =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (raw /. 9007199254740992.)

let bool g = Int64.logand (bits64 g) 1L = 1L
