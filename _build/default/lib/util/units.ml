type time = float
type voltage = float
type capacitance = float

let ps x = x
let ns x = x *. 1000.
let time_to_ns t = t /. 1000.
let volts x = x
let ff x = x

let pp_time fmt t =
  if Float.abs t >= 1000. then Format.fprintf fmt "%.3fns" (t /. 1000.)
  else Format.fprintf fmt "%.1fps" t

let pp_voltage fmt v = Format.fprintf fmt "%.3fV" v
let pp_capacitance fmt c = Format.fprintf fmt "%.2ffF" c
let time_to_string t = Format.asprintf "%a" pp_time t
