(** Binary min-heap with removable entries and deterministic ordering.

    This is the backbone of the HALOTIS event queue: the Fig. 4
    simulation algorithm needs to cancel a *pending* event when a newer
    transition invalidates it, so every insertion returns a handle that
    supports O(log n) removal.

    Entries are ordered by their [float] key; ties are broken by
    insertion order (FIFO), which makes simulations deterministic. *)

type 'a t
(** A heap holding payloads of type ['a]. *)

type 'a handle
(** A handle onto an inserted entry, usable to remove it later. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** Number of live entries. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val insert : 'a t -> key:float -> 'a -> 'a handle
(** [insert h ~key v] adds [v] with priority [key] and returns its
    handle. *)

val pop_min : 'a t -> (float * 'a) option
(** [pop_min h] removes and returns the entry with the smallest key
    (FIFO among equal keys), or [None] if the heap is empty. *)

val peek_min : 'a t -> (float * 'a) option
(** [peek_min h] is like {!pop_min} without removing the entry. *)

val remove : 'a t -> 'a handle -> bool
(** [remove h hd] deletes the entry behind [hd].  Returns [false] when
    the entry was already popped or removed (removal is idempotent). *)

val mem : 'a t -> 'a handle -> bool
(** [mem h hd] is true while the entry behind [hd] is still queued. *)

val key_of : 'a t -> 'a handle -> float option
(** [key_of h hd] is the key of a still-queued entry. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** [to_sorted_list h] drains nothing: returns the live entries in pop
    order.  O(n log n); intended for tests and debugging. *)
