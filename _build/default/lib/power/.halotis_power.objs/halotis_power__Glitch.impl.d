lib/power/glitch.ml: Array Float Format Halotis_wave Hashtbl List String
