lib/power/glitch.mli: Format Halotis_util Halotis_wave
