lib/power/energy.ml: Activity Array Halotis_delay Halotis_netlist Halotis_tech
