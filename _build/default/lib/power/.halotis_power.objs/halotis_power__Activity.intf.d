lib/power/activity.mli: Halotis_engine Halotis_util
