lib/power/activity.ml: Array Halotis_delay Halotis_engine Halotis_netlist Halotis_tech Halotis_wave Int List
