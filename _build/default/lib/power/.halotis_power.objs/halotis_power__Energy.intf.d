lib/power/energy.mli: Activity Halotis_netlist Halotis_tech
