(** Switching-activity measurement.

    Table 1's point is that a conventional delay model lets glitches
    propagate that physically die, overestimating switching activity —
    and hence dynamic power — by tens of percent.  This module counts
    committed signal transitions for each engine's result under a
    common threshold so the comparison is apples-to-apples. *)

type report = {
  total_transitions : int;  (** edges summed over all signals *)
  per_signal : (string * int) array;  (** by signal, netlist order *)
  full_pulses : int;  (** complete pulses observed *)
  engine_label : string;
}

val of_iddm : ?vt:Halotis_util.Units.voltage -> Halotis_engine.Iddm.result -> report
(** Digitizes every waveform at [vt] (default VDD/2) and counts
    edges. *)

val of_classic : Halotis_engine.Classic.result -> report
(** Classic commits boolean edges directly. *)

val overestimation_pct : reference:report -> candidate:report -> float
(** [100 * (candidate - reference) / reference]; the paper reports CDM
    overestimating DDM by 47 % and 52 % on its two sequences.
    0 when the reference saw no transitions. *)

val busiest : report -> n:int -> (string * int) list
(** The [n] most active signals, descending. *)
