(** Dynamic-energy estimation from switching counts.

    Standard CV² accounting: each committed transition on a signal
    charges or discharges that signal's load, costing
    [1/2 * C_L * VDD^2].  Units: fF x V^2 = fJ. *)

type estimate = {
  total_fj : float;
  per_signal_fj : (string * float) array;
  label : string;
}

val of_report :
  Halotis_tech.Tech.t -> Halotis_netlist.Netlist.t -> Activity.report -> estimate
(** Combines an activity report with the netlist's load table. *)

val savings_pct : reference:estimate -> candidate:estimate -> float
(** Percentage by which [candidate] exceeds [reference] — the glitch
    power overestimation expressed in energy. *)
