module Netlist = Halotis_netlist.Netlist
module Tech = Halotis_tech.Tech

type estimate = {
  total_fj : float;
  per_signal_fj : (string * float) array;
  label : string;
}

let of_report tech c (report : Activity.report) =
  let vdd = Tech.vdd tech in
  let loads = Halotis_delay.Loads.of_netlist tech c in
  let per_signal_fj =
    Array.mapi
      (fun sid (name, count) ->
        (name, 0.5 *. loads.(sid) *. vdd *. vdd *. float_of_int count))
      report.Activity.per_signal
  in
  let total_fj = Array.fold_left (fun acc (_, e) -> acc +. e) 0. per_signal_fj in
  { total_fj; per_signal_fj; label = report.Activity.engine_label }

let savings_pct ~reference ~candidate =
  if reference.total_fj = 0. then 0.
  else 100. *. (candidate.total_fj -. reference.total_fj) /. reference.total_fj
