module Digital = Halotis_wave.Digital
module Waveform = Halotis_wave.Waveform

type histogram = { bucket_width : float; counts : int array; overflow : int }

let pulse_width_histogram ?(bucket_width = 100.) ?(buckets = 10) ~vt waveforms =
  let counts = Array.make buckets 0 in
  let overflow = ref 0 in
  Array.iter
    (fun w ->
      List.iter
        (fun (p : Digital.pulse) ->
          let bucket = int_of_float (Float.floor (p.Digital.width /. bucket_width)) in
          if bucket >= buckets then incr overflow
          else counts.(bucket) <- counts.(bucket) + 1)
        (Digital.pulses w ~vt))
    waveforms;
  { bucket_width; counts; overflow = !overflow }

let pp_histogram fmt h =
  Array.iteri
    (fun i n ->
      Format.fprintf fmt "  %4.0f-%4.0f ps: %s (%d)@."
        (float_of_int i *. h.bucket_width)
        (float_of_int (i + 1) *. h.bucket_width)
        (String.make (min n 60) '#') n)
    h.counts;
  if h.overflow > 0 then Format.fprintf fmt "  wider      : (%d)@." h.overflow

type glitch_report = {
  functional_edges : int;
  glitch_pulses : int;
  glitch_energy_fraction : float;
}

let classify ~period ~vt waveforms =
  if period <= 0. then invalid_arg "Glitch.classify: period must be positive";
  let functional = ref 0 and glitch = ref 0 in
  Array.iter
    (fun w ->
      let edges = Digital.edges w ~vt in
      (* group edges by the vector period they fall into *)
      let by_period = Hashtbl.create 8 in
      List.iter
        (fun (e : Digital.edge) ->
          let k = int_of_float (Float.floor (e.Digital.at /. period)) in
          let old = try Hashtbl.find by_period k with Not_found -> 0 in
          Hashtbl.replace by_period k (old + 1))
        edges;
      Hashtbl.iter
        (fun _k n ->
          (* the last change settles the period; of the remaining n-1
             edges, each hazard pulse takes two *)
          if n > 0 then begin
            incr functional;
            glitch := !glitch + ((n - 1) / 2)
          end)
        by_period)
    waveforms;
  let total_edges = !functional + (2 * !glitch) in
  {
    functional_edges = !functional;
    glitch_pulses = !glitch;
    glitch_energy_fraction =
      (if total_edges = 0 then 0. else float_of_int (2 * !glitch) /. float_of_int total_edges);
  }
