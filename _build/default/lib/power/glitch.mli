(** Glitch analysis: which pulses are functional transitions and which
    are hazards, and how wide they are.

    Heuristic: on a vectored workload with period [period], the circuit
    is meant to settle to one value per vector, so within one period a
    signal's {e last} level change is functional and every earlier
    complete pulse is a glitch.  Degradation shifts the pulse-width
    histogram left and empties it; a conventional model keeps it
    full — the mechanism behind Table 1. *)

type histogram = {
  bucket_width : Halotis_util.Units.time;
  counts : int array;  (** bucket [i] counts pulses in [[i*w, (i+1)*w)] *)
  overflow : int;  (** pulses wider than the last bucket *)
}

val pulse_width_histogram :
  ?bucket_width:Halotis_util.Units.time ->
  ?buckets:int ->
  vt:Halotis_util.Units.voltage ->
  Halotis_wave.Waveform.t array ->
  histogram
(** Histogram of complete pulse widths over a set of waveforms
    (default 100 ps buckets, 10 of them). *)

val pp_histogram : Format.formatter -> histogram -> unit

type glitch_report = {
  functional_edges : int;  (** final settling edge of each signal-period *)
  glitch_pulses : int;  (** complete pulses before settling *)
  glitch_energy_fraction : float;
      (** fraction of switching edges that belong to glitches *)
}

val classify :
  period:Halotis_util.Units.time ->
  vt:Halotis_util.Units.voltage ->
  Halotis_wave.Waveform.t array ->
  glitch_report
(** Splits each signal's activity per vector period into the functional
    settling edge and the hazard pulses before it. *)
