module Netlist = Halotis_netlist.Netlist
module Digital = Halotis_wave.Digital
module Tech = Halotis_tech.Tech
module Iddm = Halotis_engine.Iddm
module Classic = Halotis_engine.Classic

type report = {
  total_transitions : int;
  per_signal : (string * int) array;
  full_pulses : int;
  engine_label : string;
}

let of_iddm ?vt (r : Iddm.result) =
  let vt =
    match vt with Some v -> v | None -> Tech.vdd r.Iddm.run_config.Iddm.tech /. 2.
  in
  let c = r.Iddm.circuit in
  let pulses = ref 0 in
  let per_signal =
    Array.map
      (fun (s : Netlist.signal) ->
        let w = r.Iddm.waveforms.(s.Netlist.signal_id) in
        pulses := !pulses + List.length (Digital.pulses w ~vt);
        (s.Netlist.signal_name, Digital.edge_count w ~vt))
      (Netlist.signals c)
  in
  let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 per_signal in
  let label =
    "IDDM/" ^ Halotis_delay.Delay_model.kind_to_string r.Iddm.run_config.Iddm.delay_kind
  in
  { total_transitions = total; per_signal; full_pulses = !pulses; engine_label = label }

let of_classic (r : Classic.result) =
  let c = r.Classic.circuit in
  let pulses = ref 0 in
  let per_signal =
    Array.map
      (fun (s : Netlist.signal) ->
        let edges = r.Classic.edges.(s.Netlist.signal_id) in
        let rec count_pulses = function
          | _ :: _ :: rest -> 1 + count_pulses rest
          | [ _ ] | [] -> 0
        in
        pulses := !pulses + count_pulses edges;
        (s.Netlist.signal_name, List.length edges))
      (Netlist.signals c)
  in
  let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 per_signal in
  { total_transitions = total; per_signal; full_pulses = !pulses; engine_label = "classic" }

let overestimation_pct ~reference ~candidate =
  if reference.total_transitions = 0 then 0.
  else
    100.
    *. float_of_int (candidate.total_transitions - reference.total_transitions)
    /. float_of_int reference.total_transitions

let busiest report ~n =
  let sorted =
    List.sort
      (fun (_, a) (_, b) -> Int.compare b a)
      (Array.to_list report.per_signal)
  in
  List.filteri (fun i _ -> i < n) sorted
