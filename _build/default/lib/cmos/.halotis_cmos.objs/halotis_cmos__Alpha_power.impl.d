lib/cmos/alpha_power.ml: Float Halotis_logic Halotis_tech
