lib/cmos/alpha_power.mli: Halotis_logic Halotis_tech Halotis_util
