module Tech = Halotis_tech.Tech
module Gate_kind = Halotis_logic.Gate_kind

type device = { vth : float; alpha : float; i_d0 : float }

type inverter = {
  vdd : float;
  nmos : device;
  pmos : device;
  c_intrinsic : float;
}

let default_inverter =
  {
    vdd = 5.0;
    nmos = { vth = 0.8; alpha = 1.3; i_d0 = 1.5 };
    pmos = { vth = 0.9; alpha = 1.3; i_d0 = 1.0 };
    c_intrinsic = 4.0;
  }

(* The device doing the work: pull-up (PMOS) for a rising output. *)
let driver inv ~rising_out = if rising_out then inv.pmos else inv.nmos

(* Input-slope sensitivity: 1/2 - (1 - vth/Vdd) / (1 + alpha).  With
   fF, V and mA, the charge term C*V/I comes out directly in ps. *)
let slope_coefficient inv dev =
  let vthn = dev.vth /. inv.vdd in
  Float.max 0. (0.5 -. ((1. -. vthn) /. (1. +. dev.alpha)))

let delay inv ~rising_out ~cl ~tau_in =
  let dev = driver inv ~rising_out in
  let c_total = cl +. inv.c_intrinsic in
  (slope_coefficient inv dev *. tau_in) +. (c_total *. inv.vdd /. (2. *. dev.i_d0))

(* Full-swing ramp time of the output: the saturation discharge slope
   C dV/dt = I_D0, widened by the usual 10-90 -> rail-to-rail factor. *)
let output_slope inv ~rising_out ~cl =
  let dev = driver inv ~rising_out in
  let c_total = cl +. inv.c_intrinsic in
  Float.max 1.0 (1.5 *. c_total *. inv.vdd /. dev.i_d0)

let to_edge_params inv ~rising_out ~base =
  let dev = driver inv ~rising_out in
  {
    base with
    Tech.d0 = inv.c_intrinsic *. inv.vdd /. (2. *. dev.i_d0);
    d_load = inv.vdd /. (2. *. dev.i_d0);
    d_slope = slope_coefficient inv dev;
    s0 = 1.5 *. inv.c_intrinsic *. inv.vdd /. dev.i_d0;
    s_load = 1.5 *. inv.vdd /. dev.i_d0;
  }

let default_sizing = function
  | Gate_kind.Inv -> 1.0
  | Gate_kind.Buf -> 0.9
  | Gate_kind.Nand n | Gate_kind.Nor n -> 0.75 /. (1. +. (0.15 *. float_of_int (max 0 (n - 2))))
  | Gate_kind.And n | Gate_kind.Or n -> 0.6 /. (1. +. (0.15 *. float_of_int (max 0 (n - 2))))
  | Gate_kind.Xor _ | Gate_kind.Xnor _ -> 0.45
  | Gate_kind.Aoi21 | Gate_kind.Oai21 -> 0.65
  | Gate_kind.Mux2 -> 0.5

let scaled inv k =
  {
    inv with
    nmos = { inv.nmos with i_d0 = inv.nmos.i_d0 *. k };
    pmos = { inv.pmos with i_d0 = inv.pmos.i_d0 *. k };
    c_intrinsic = inv.c_intrinsic *. Float.max 0.5 k;
  }

let at_vdd inv vdd =
  let rescale (d : device) =
    let num = Float.max 0.05 (vdd -. d.vth) in
    let den = Float.max 0.05 (inv.vdd -. d.vth) in
    { d with i_d0 = d.i_d0 *. ((num /. den) ** d.alpha) }
  in
  { inv with vdd; nmos = rescale inv.nmos; pmos = rescale inv.pmos }

let to_tech ?(name = "alpha-power") ~base inv ~sized =
  let vt_scale = inv.vdd /. Tech.vdd base in
  let lookup kind =
    let gt = Tech.gate_tech base kind in
    let cell = scaled inv (sized kind) in
    {
      gt with
      Tech.rise = to_edge_params cell ~rising_out:true ~base:gt.Tech.rise;
      fall = to_edge_params cell ~rising_out:false ~base:gt.Tech.fall;
      (* thresholds track the supply (midpoint switching) *)
      default_vt = gt.Tech.default_vt *. vt_scale;
    }
  in
  Tech.create ~name ~vdd:inv.vdd ~wire_cap_per_fanout:(Tech.wire_cap_per_fanout base)
    ~lookup ()
