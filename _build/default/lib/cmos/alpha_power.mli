(** Analytical CMOS inverter timing from the alpha-power-law MOSFET
    model (Sakurai & Newton, JSSC 1990) — the modelling lineage behind
    the paper's conventional-delay references [1–4].

    A transistor in saturation drives [I_D = I_D0 * ((Vgs - Vth) /
    (Vdd - Vth))^alpha]; the inverter delay for a ramp input then has
    the closed form

    [tp = tau_in * (1/2 - (1 - vth) / (1 + alpha)) + C_L * Vdd / (2 * I_D0)]

    (input-slope term plus charge-displacement term), and the output
    transition time follows the full-swing discharge [C_L * Vdd /
    I_D0], scaled to the ramp convention used by the engines.  The
    point is not nanometre accuracy but the correct structure: delay
    affine in load and input slope — exactly the CDM shape the
    technology layer assumes, now derived from device parameters
    instead of postulated. *)

type device = {
  vth : float;  (** threshold voltage, V (same sign convention for N and P) *)
  alpha : float;  (** velocity-saturation index, 1 (strong sat.) .. 2 (long channel) *)
  i_d0 : float;  (** drive current at Vgs = Vdd, mA *)
}

type inverter = {
  vdd : float;  (** supply, V *)
  nmos : device;  (** pull-down *)
  pmos : device;  (** pull-up *)
  c_intrinsic : float;  (** self-load (drain junctions), fF *)
}

val default_inverter : inverter
(** 0.6 um-flavoured values: Vdd 5 V, Vth 0.8/0.9 V, alpha 1.3,
    1.5/1.0 mA drives. *)

val delay :
  inverter -> rising_out:bool -> cl:float -> tau_in:float -> Halotis_util.Units.time
(** Propagation delay (input 50 % to output ramp start, the engine
    convention), ps.  [cl] in fF. *)

val output_slope : inverter -> rising_out:bool -> cl:float -> Halotis_util.Units.time
(** Full-swing output ramp time, ps. *)

val to_edge_params :
  inverter -> rising_out:bool -> base:Halotis_tech.Tech.edge_params ->
  Halotis_tech.Tech.edge_params
(** Closed-form CDM coefficients ([d0]/[d_load]/[d_slope]/[s0]/[s_load])
    derived from the device parameters, degradation parameters kept
    from [base]. *)

val to_tech :
  ?name:string -> base:Halotis_tech.Tech.t -> inverter ->
  sized:(Halotis_logic.Gate_kind.t -> float) ->
  Halotis_tech.Tech.t
(** A technology whose every cell is the analytical inverter scaled by
    [sized kind] (drive-strength multiplier: > 1 = stronger, i.e.
    faster): the standard equivalent-inverter reduction for gate
    networks.  Thresholds, caps and DDM parameters come from [base]. *)

val default_sizing : Halotis_logic.Gate_kind.t -> float
(** Series stacks derate the drive: inverter 1.0, 2-input NAND/NOR
    ~0.75, wider and XOR-class cells lower. *)

val at_vdd : inverter -> float -> inverter
(** [at_vdd inv vdd] rescales the drive currents with the alpha-power
    law itself, [I_D0' = I_D0 * ((vdd - vth) / (vdd_ref - vth))^alpha]
    — the textbook low-voltage slowdown (delay grows roughly as
    [vdd / (vdd - vth)^alpha]). *)
