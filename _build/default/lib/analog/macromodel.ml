module Gate_kind = Halotis_logic.Gate_kind
module Netlist = Halotis_netlist.Netlist
module Tech = Halotis_tech.Tech

type t = {
  kind : Gate_kind.t;
  vt : float array;
  switch_width : float;
  tau_rise : float;
  tau_fall : float;
  transport : float;
  vdd : float;
}

let of_gate tech c ~loads ?(switch_width = 0.5) gid =
  let g = Netlist.gate c gid in
  let gt = Tech.gate_tech tech g.Netlist.kind in
  let cl = loads.(g.Netlist.output) in
  let vt =
    Array.init (Array.length g.Netlist.fanin) (fun pin ->
        Halotis_delay.Thresholds.input_vt tech c gid ~pin)
  in
  {
    kind = g.Netlist.kind;
    vt;
    switch_width;
    tau_rise = Tech.output_slope (Tech.edge gt ~rising:true) ~cl /. 2.2;
    tau_fall = Tech.output_slope (Tech.edge gt ~rising:false) ~cl /. 2.2;
    transport =
      (let lag (p : Tech.edge_params) = p.Tech.d0 +. (p.Tech.d_load *. cl) in
       (lag (Tech.edge gt ~rising:true) +. lag (Tech.edge gt ~rising:false)) /. 2.);
    vdd = Tech.vdd tech;
  }

let sigmoid x = 1. /. (1. +. Float.exp (-.x))

let smooth_input m ~pin v = sigmoid ((v -. m.vt.(pin)) /. m.switch_width)

(* Fuzzy-logic extension: and = product, not = complement. *)
let fuzzy_eval kind xs =
  let n = Array.length xs in
  assert (n = Gate_kind.arity kind);
  let conj () = Array.fold_left ( *. ) 1. xs in
  let disj () = 1. -. Array.fold_left (fun acc x -> acc *. (1. -. x)) 1. xs in
  let fxor a b = (a *. (1. -. b)) +. (b *. (1. -. a)) in
  let parity () = Array.fold_left fxor 0. xs in
  match kind with
  | Gate_kind.Buf -> xs.(0)
  | Gate_kind.Inv -> 1. -. xs.(0)
  | Gate_kind.And _ -> conj ()
  | Gate_kind.Nand _ -> 1. -. conj ()
  | Gate_kind.Or _ -> disj ()
  | Gate_kind.Nor _ -> 1. -. disj ()
  | Gate_kind.Xor _ -> parity ()
  | Gate_kind.Xnor _ -> 1. -. parity ()
  | Gate_kind.Aoi21 ->
      let ab = xs.(0) *. xs.(1) in
      1. -. (1. -. ((1. -. ab) *. (1. -. xs.(2))))
  | Gate_kind.Oai21 ->
      let a_or_b = 1. -. ((1. -. xs.(0)) *. (1. -. xs.(1))) in
      1. -. (a_or_b *. xs.(2))
  | Gate_kind.Mux2 -> ((1. -. xs.(2)) *. xs.(0)) +. (xs.(2) *. xs.(1))

let goal_voltage m vins =
  let xs = Array.mapi (fun pin v -> smooth_input m ~pin v) vins in
  m.vdd *. fuzzy_eval m.kind xs

let derivative m ~v_out ~v_goal =
  let tau = if v_goal >= v_out then m.tau_rise else m.tau_fall in
  (v_goal -. v_out) /. tau
