lib/analog/macromodel.ml: Array Float Halotis_delay Halotis_logic Halotis_netlist Halotis_tech
