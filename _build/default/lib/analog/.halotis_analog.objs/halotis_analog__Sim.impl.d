lib/analog/sim.ml: Array Float Halotis_delay Halotis_engine Halotis_logic Halotis_netlist Halotis_tech Halotis_util Halotis_wave Hashtbl List Macromodel Printf
