lib/analog/macromodel.mli: Halotis_logic Halotis_netlist Halotis_tech Halotis_util
