lib/analog/sim.mli: Halotis_engine Halotis_netlist Halotis_tech Halotis_util Halotis_wave
