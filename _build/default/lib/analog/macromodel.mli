(** Continuous gate macromodel — the electrical reference substrate.

    The paper validates HALOTIS against HSPICE with 0.6 um transistor
    models; this sealed environment has no SPICE, so the reference is a
    first-order nonlinear macromodel with the two properties the
    comparison actually relies on:

    - {e continuous glitch degradation}: the output is an RC node, so a
      narrow input pulse produces a partial-swing runt that shrinks
      smoothly with pulse width (the physical origin of eq. 1's
      exponential, per the authors' PATMOS'97 analysis);
    - {e input-threshold dependence}: each input pin is read through a
      smooth switching characteristic centred on that pin's VT, so two
      gates with different transfer curves respond differently to the
      same runt (Fig. 1's g1/g2).

    Concretely, a gate computes a target voltage
    [v_goal = VDD * F(x_1 .. x_n)] where [x_i = sigma ((v_i - VT_i) / w)]
    and [F] is the fuzzy-logic extension of its boolean function, and
    the output node follows [dv/dt = (v_goal - v) / tau_rc] with
    separate rise/fall time constants derived from the technology's
    output-slope model. *)

type t = {
  kind : Halotis_logic.Gate_kind.t;
  vt : float array;  (** per-pin switching centre, V *)
  switch_width : float;  (** sigmoid width w, V *)
  tau_rise : float;  (** RC time constant for pull-up, ps *)
  tau_fall : float;  (** ps *)
  transport : float;
      (** intrinsic (load-independent) propagation delay, ps: the
          simulator reads gate inputs this far in the past, standing in
          for the channel transit the RC stage does not capture *)
  vdd : float;
}

val of_gate :
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  loads:float array ->
  ?switch_width:float ->
  Halotis_netlist.Netlist.gate_id ->
  t
(** Derives the macromodel of one gate instance (default sigmoid width
    0.5 V); [tau_rc = tau_out / 2.2], the usual 10–90 % conversion. *)

val smooth_input : t -> pin:int -> Halotis_util.Units.voltage -> float
(** The normalised activation [x_i] of one pin at a given voltage. *)

val goal_voltage : t -> Halotis_util.Units.voltage array -> Halotis_util.Units.voltage
(** Target output voltage for the given input voltages. *)

val fuzzy_eval : Halotis_logic.Gate_kind.t -> float array -> float
(** The fuzzy-logic extension [F]: restricted to {0,1} inputs it equals
    {!Halotis_logic.Gate_kind.eval_bool}.  Exposed for tests. *)

val derivative :
  t -> v_out:Halotis_util.Units.voltage -> v_goal:Halotis_util.Units.voltage -> float
(** [dv/dt] in V/ps. *)
