(** Transient simulation of the macromodel network — the reproduction's
    stand-in for the paper's HSPICE runs.

    Explicit Euler over all gate output nodes with a fixed step
    (default 1 ps, well below every RC constant in the default
    technology); primary inputs follow their drive ramps analytically;
    node voltages are recorded every [record_every] steps. *)

type config = {
  tech : Halotis_tech.Tech.t;
  dt : Halotis_util.Units.time;  (** integration step, ps *)
  record_every : int;  (** store one sample every N steps *)
  t_stop : Halotis_util.Units.time;
  switch_width : Halotis_util.Units.voltage;  (** macromodel sigmoid width *)
}

val config :
  ?dt:Halotis_util.Units.time ->
  ?record_every:int ->
  ?switch_width:Halotis_util.Units.voltage ->
  t_stop:Halotis_util.Units.time ->
  Halotis_tech.Tech.t ->
  config
(** Defaults: dt 1 ps, record every 2 steps, sigmoid width 0.5 V. *)

type trace = {
  sample_dt : Halotis_util.Units.time;
  volts : float array;  (** sample [i] is the voltage at [i * sample_dt] *)
}

type result = {
  circuit : Halotis_netlist.Netlist.t;
  run_config : config;
  traces : trace array;  (** per signal id *)
  steps : int;  (** integration steps executed *)
}

val run :
  config ->
  Halotis_netlist.Netlist.t ->
  drives:(Halotis_netlist.Netlist.signal_id * Halotis_engine.Drive.t) list ->
  result
(** @raise Invalid_argument on oscillating feedback (no DC fixed
    point) or a bad drive. *)

val trace : result -> string -> trace
(** @raise Not_found for unknown signal names. *)

val value_at : trace -> Halotis_util.Units.time -> Halotis_util.Units.voltage
(** Linear interpolation between samples. *)

val crossings :
  trace -> vt:Halotis_util.Units.voltage -> Halotis_wave.Digital.edge list
(** Interpolated threshold crossings, time-ordered. *)

val edges :
  ?vt:Halotis_util.Units.voltage -> result -> string -> Halotis_wave.Digital.edge list
(** Digitized view of one signal (default threshold VDD/2). *)

val peak_in :
  trace ->
  t0:Halotis_util.Units.time ->
  t1:Halotis_util.Units.time ->
  Halotis_util.Units.voltage * Halotis_util.Units.voltage
(** [(vmin, vmax)] reached inside a window — runt amplitude probing. *)
