module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Waveform = Halotis_wave.Waveform
module Transition = Halotis_wave.Transition
module Digital = Halotis_wave.Digital
module Tech = Halotis_tech.Tech
module Value = Halotis_logic.Value
module Gate_kind = Halotis_logic.Gate_kind
module Drive = Halotis_engine.Drive

type config = {
  tech : Tech.t;
  dt : float;
  record_every : int;
  t_stop : float;
  switch_width : float;
}

let config ?(dt = 1.0) ?(record_every = 2) ?(switch_width = 0.5) ~t_stop tech =
  if dt <= 0. then invalid_arg "Sim.config: dt must be positive";
  if record_every < 1 then invalid_arg "Sim.config: record_every must be >= 1";
  { tech; dt; record_every; t_stop; switch_width }

type trace = { sample_dt : float; volts : float array }

type result = {
  circuit : Netlist.t;
  run_config : config;
  traces : trace array;
  steps : int;
}

let dc_levels c drives_tbl =
  let input_level sid =
    match Hashtbl.find_opt drives_tbl sid with
    | Some (d : Drive.t) -> d.Drive.initial
    | None -> false
  in
  Halotis_engine.Dc.levels c ~input_level

let run cfg c ~drives =
  let drives_tbl = Hashtbl.create 16 in
  List.iter
    (fun (sid, d) ->
      Drive.check d;
      if not (Netlist.signal c sid).Netlist.is_primary_input then
        invalid_arg
          (Printf.sprintf "Sim.run: drive on non-input signal %s" (Netlist.signal_name c sid));
      Hashtbl.replace drives_tbl sid d)
    drives;
  let vdd = Tech.vdd cfg.tech in
  let nsignals = Netlist.signal_count c and ngates = Netlist.gate_count c in
  let levels = dc_levels c drives_tbl in
  let v = Array.init nsignals (fun sid -> if levels.(sid) then vdd else 0.) in
  (* Primary-input waveforms evaluated analytically each step. *)
  let input_wf = Array.make nsignals None in
  Hashtbl.iter
    (fun sid (d : Drive.t) ->
      let w = Waveform.create ~initial:(if d.Drive.initial then vdd else 0.) ~vdd () in
      List.iter (fun tr -> ignore (Waveform.append w tr)) d.Drive.transitions;
      input_wf.(sid) <- Some w)
    drives_tbl;
  let loads = Halotis_delay.Loads.of_netlist cfg.tech c in
  let models =
    Array.init ngates (fun gid ->
        Macromodel.of_gate cfg.tech c ~loads ~switch_width:cfg.switch_width gid)
  in
  let gate_out = Array.init ngates (fun gid -> (Netlist.gate c gid).Netlist.output) in
  let gate_fanin = Array.init ngates (fun gid -> (Netlist.gate c gid).Netlist.fanin) in
  let steps = int_of_float (Float.ceil (cfg.t_stop /. cfg.dt)) in
  let nsamples = (steps / cfg.record_every) + 1 in
  let traces =
    Array.init nsignals (fun _ ->
        { sample_dt = cfg.dt *. float_of_int cfg.record_every; volts = Array.make nsamples 0. })
  in
  let record sample_idx =
    if sample_idx < nsamples then
      for sid = 0 to nsignals - 1 do
        traces.(sid).volts.(sample_idx) <- v.(sid)
      done
  in
  record 0;
  let vins_scratch = Array.init ngates (fun gid -> Array.make (Array.length gate_fanin.(gid)) 0.) in
  let dv = Array.make ngates 0. in
  (* Ring buffer of recent node voltages: gates read their inputs
     [transport] ago, standing in for the intrinsic channel delay. *)
  let delay_steps =
    Array.map (fun m -> int_of_float (Float.round (m.Macromodel.transport /. cfg.dt))) models
  in
  let h_cap = Array.fold_left (fun acc d -> max acc d) 0 delay_steps + 2 in
  let hist = Array.init nsignals (fun sid -> Array.make h_cap v.(sid)) in
  for step = 1 to steps do
    let t = cfg.dt *. float_of_int step in
    (* Inputs follow their drive ramps exactly. *)
    Array.iteri
      (fun sid wopt ->
        match wopt with Some w -> v.(sid) <- Waveform.value_at w t | None -> ())
      input_wf;
    (* Gate output derivatives from the delayed state (Jacobi step),
       then commit; avoids order dependence along gate ids. *)
    for gid = 0 to ngates - 1 do
      let fanin = gate_fanin.(gid) in
      let vins = vins_scratch.(gid) in
      let delayed = max 0 (step - 1 - delay_steps.(gid)) in
      let slot = delayed mod h_cap in
      for pin = 0 to Array.length fanin - 1 do
        vins.(pin) <- hist.(fanin.(pin)).(slot)
      done;
      let goal = Macromodel.goal_voltage models.(gid) vins in
      dv.(gid) <- Macromodel.derivative models.(gid) ~v_out:v.(gate_out.(gid)) ~v_goal:goal
    done;
    for gid = 0 to ngates - 1 do
      let sid = gate_out.(gid) in
      v.(sid) <- Halotis_util.Approx.clamp ~lo:0. ~hi:vdd (v.(sid) +. (cfg.dt *. dv.(gid)))
    done;
    let write_slot = step mod h_cap in
    for sid = 0 to nsignals - 1 do
      hist.(sid).(write_slot) <- v.(sid)
    done;
    if step mod cfg.record_every = 0 then record (step / cfg.record_every)
  done;
  { circuit = c; run_config = cfg; traces; steps }

let trace result name =
  match Netlist.find_signal result.circuit name with
  | Some sid -> result.traces.(sid)
  | None -> raise Not_found

let value_at tr t =
  let n = Array.length tr.volts in
  if n = 0 then 0.
  else begin
    let pos = t /. tr.sample_dt in
    let i = int_of_float (Float.floor pos) in
    if i < 0 then tr.volts.(0)
    else if i >= n - 1 then tr.volts.(n - 1)
    else begin
      let frac = pos -. float_of_int i in
      tr.volts.(i) +. (frac *. (tr.volts.(i + 1) -. tr.volts.(i)))
    end
  end

let crossings tr ~vt =
  let n = Array.length tr.volts in
  let out = ref [] in
  for i = 0 to n - 2 do
    let a = tr.volts.(i) and b = tr.volts.(i + 1) in
    let t0 = tr.sample_dt *. float_of_int i in
    if a <= vt && b > vt then begin
      let frac = (vt -. a) /. (b -. a) in
      out :=
        { Digital.at = t0 +. (frac *. tr.sample_dt); polarity = Transition.Rising } :: !out
    end
    else if a >= vt && b < vt then begin
      let frac = (a -. vt) /. (a -. b) in
      out :=
        { Digital.at = t0 +. (frac *. tr.sample_dt); polarity = Transition.Falling } :: !out
    end
  done;
  List.rev !out

let edges ?vt result name =
  let vt = match vt with Some x -> x | None -> Tech.vdd result.run_config.tech /. 2. in
  crossings (trace result name) ~vt

let peak_in tr ~t0 ~t1 =
  let n = Array.length tr.volts in
  let i0 = max 0 (int_of_float (Float.floor (t0 /. tr.sample_dt))) in
  let i1 = min (n - 1) (int_of_float (Float.ceil (t1 /. tr.sample_dt))) in
  let vmin = ref infinity and vmax = ref neg_infinity in
  for i = i0 to i1 do
    vmin := Float.min !vmin tr.volts.(i);
    vmax := Float.max !vmax tr.volts.(i)
  done;
  if !vmin > !vmax then (0., 0.) else (!vmin, !vmax)
