type t = L0 | L1 | X | Z

let equal a b =
  match (a, b) with
  | L0, L0 | L1, L1 | X, X | Z, Z -> true
  | (L0 | L1 | X | Z), _ -> false

let to_char = function L0 -> '0' | L1 -> '1' | X -> 'x' | Z -> 'z'

let of_char = function
  | '0' -> Some L0
  | '1' -> Some L1
  | 'x' | 'X' -> Some X
  | 'z' | 'Z' -> Some Z
  | _ -> None

let pp fmt v = Format.pp_print_char fmt (to_char v)
let to_bool = function L0 -> Some false | L1 -> Some true | X | Z -> None
let of_bool b = if b then L1 else L0
let lnot = function L0 -> L1 | L1 -> L0 | X | Z -> X

let land_ a b =
  match (a, b) with
  | L0, _ | _, L0 -> L0
  | L1, L1 -> L1
  | (L1 | X | Z), (X | Z) | (X | Z), L1 -> X

let lor_ a b =
  match (a, b) with
  | L1, _ | _, L1 -> L1
  | L0, L0 -> L0
  | (L0 | X | Z), (X | Z) | (X | Z), L0 -> X

let lxor_ a b =
  match (to_bool a, to_bool b) with
  | Some x, Some y -> of_bool (x <> y)
  | (Some _ | None), _ -> X

let resolve a b =
  match (a, b) with
  | Z, v | v, Z -> v
  | L0, L0 -> L0
  | L1, L1 -> L1
  | (L0 | L1 | X), (L0 | L1 | X) -> X
