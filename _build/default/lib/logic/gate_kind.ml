type t =
  | Buf
  | Inv
  | And of int
  | Nand of int
  | Or of int
  | Nor of int
  | Xor of int
  | Xnor of int
  | Aoi21
  | Oai21
  | Mux2

let arity = function
  | Buf | Inv -> 1
  | And n | Nand n | Or n | Nor n | Xor n | Xnor n -> n
  | Aoi21 | Oai21 | Mux2 -> 3

let check_arity kind len =
  if len <> arity kind then
    invalid_arg
      (Printf.sprintf "Gate_kind.eval: expected %d inputs, got %d" (arity kind) len)

let fold_values f init inputs =
  Array.fold_left f init inputs

let eval kind inputs =
  check_arity kind (Array.length inputs);
  match kind with
  | Buf -> ( match inputs.(0) with Value.L0 -> Value.L0 | L1 -> L1 | X | Z -> X)
  | Inv -> Value.lnot inputs.(0)
  | And _ -> fold_values Value.land_ Value.L1 inputs
  | Nand _ -> Value.lnot (fold_values Value.land_ Value.L1 inputs)
  | Or _ -> fold_values Value.lor_ Value.L0 inputs
  | Nor _ -> Value.lnot (fold_values Value.lor_ Value.L0 inputs)
  | Xor _ -> fold_values Value.lxor_ Value.L0 inputs
  | Xnor _ -> Value.lnot (fold_values Value.lxor_ Value.L0 inputs)
  | Aoi21 -> Value.lnot (Value.lor_ (Value.land_ inputs.(0) inputs.(1)) inputs.(2))
  | Oai21 -> Value.lnot (Value.land_ (Value.lor_ inputs.(0) inputs.(1)) inputs.(2))
  | Mux2 -> (
      match Value.to_bool inputs.(2) with
      | Some false -> inputs.(0)
      | Some true -> inputs.(1)
      | None -> if Value.equal inputs.(0) inputs.(1) then inputs.(0) else Value.X)

let eval_bool kind inputs =
  check_arity kind (Array.length inputs);
  let conj () = Array.for_all Fun.id inputs in
  let disj () = Array.exists Fun.id inputs in
  let parity () = Array.fold_left (fun acc b -> acc <> b) false inputs in
  match kind with
  | Buf -> inputs.(0)
  | Inv -> not inputs.(0)
  | And _ -> conj ()
  | Nand _ -> not (conj ())
  | Or _ -> disj ()
  | Nor _ -> not (disj ())
  | Xor _ -> parity ()
  | Xnor _ -> not (parity ())
  | Aoi21 -> not ((inputs.(0) && inputs.(1)) || inputs.(2))
  | Oai21 -> not ((inputs.(0) || inputs.(1)) && inputs.(2))
  | Mux2 -> if inputs.(2) then inputs.(1) else inputs.(0)

let inverting = function
  | Inv | Nand _ | Nor _ | Aoi21 | Oai21 -> true
  | Buf | And _ | Or _ | Xor _ | Xnor _ | Mux2 -> false

let name = function
  | Buf -> "buf"
  | Inv -> "inv"
  | And n -> Printf.sprintf "and%d" n
  | Nand n -> Printf.sprintf "nand%d" n
  | Or n -> Printf.sprintf "or%d" n
  | Nor n -> Printf.sprintf "nor%d" n
  | Xor n -> Printf.sprintf "xor%d" n
  | Xnor n -> Printf.sprintf "xnor%d" n
  | Aoi21 -> "aoi21"
  | Oai21 -> "oai21"
  | Mux2 -> "mux2"

let of_name s =
  let arity_suffix prefix =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      int_of_string_opt (String.sub s plen (String.length s - plen))
    else None
  in
  match s with
  | "buf" -> Some Buf
  | "inv" | "not" -> Some Inv
  | "aoi21" -> Some Aoi21
  | "oai21" -> Some Oai21
  | "mux2" -> Some Mux2
  | _ -> (
      let candidates =
        [
          ("and", fun n -> And n);
          ("nand", fun n -> Nand n);
          ("nor", fun n -> Nor n);
          ("or", fun n -> Or n);
          ("xnor", fun n -> Xnor n);
          ("xor", fun n -> Xor n);
        ]
      in
      let try_one acc (prefix, make) =
        match acc with
        | Some _ -> acc
        | None -> (
            match arity_suffix prefix with
            | Some n when n >= 1 -> Some (make n)
            | Some _ | None -> None)
      in
      List.fold_left try_one None candidates)

let all_basic =
  [ Buf; Inv; And 2; Nand 2; Nand 3; Or 2; Nor 2; Xor 2; Xnor 2; Aoi21; Oai21; Mux2 ]

let pp fmt kind = Format.pp_print_string fmt (name kind)

let equal a b =
  match (a, b) with
  | Buf, Buf | Inv, Inv | Aoi21, Aoi21 | Oai21, Oai21 | Mux2, Mux2 -> true
  | And n, And m | Nand n, Nand m | Or n, Or m | Nor n, Nor m | Xor n, Xor m | Xnor n, Xnor m
    ->
      n = m
  | (Buf | Inv | And _ | Nand _ | Or _ | Nor _ | Xor _ | Xnor _ | Aoi21 | Oai21 | Mux2), _ ->
      false
