(** Four-valued logic used by the event-driven engines.

    [L0]/[L1] are the resolved rails, [X] is unknown (uninitialised or
    conflicting), [Z] is high impedance.  The IDDM engine works mostly
    with resolved values — an input only changes value when a waveform
    actually crosses its threshold — but [X] is needed at time zero and
    [Z] for undriven nets. *)

type t = L0 | L1 | X | Z

val equal : t -> t -> bool
val to_char : t -> char
val of_char : char -> t option
val pp : Format.formatter -> t -> unit

val to_bool : t -> bool option
(** [to_bool v] is [Some] for the resolved rails, [None] for [X]/[Z]. *)

val of_bool : bool -> t

val lnot : t -> t
(** Logical negation; [X]/[Z] stay unknown. *)

val land_ : t -> t -> t
(** Conjunction with dominance: [L0] wins over unknowns. *)

val lor_ : t -> t -> t
(** Disjunction with dominance: [L1] wins over unknowns. *)

val lxor_ : t -> t -> t
(** Exclusive or; any unknown operand yields [X]. *)

val resolve : t -> t -> t
(** Bus resolution of two drivers: [Z] yields to anything, conflicting
    rails give [X]. *)
