lib/logic/value.ml: Format
