lib/logic/gate_kind.ml: Array Format Fun List Printf String Value
