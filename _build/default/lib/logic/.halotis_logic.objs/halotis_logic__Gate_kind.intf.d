lib/logic/gate_kind.mli: Format Value
