lib/logic/value.mli: Format
