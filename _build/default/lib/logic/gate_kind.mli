(** Gate primitives supported by the netlist and the three engines.

    Each primitive has one output.  N-ary kinds carry their arity; the
    complex cells (AOI/OAI/MUX) have fixed pin lists.  Pin order is the
    order of the [inputs] array of a netlist gate. *)

type t =
  | Buf
  | Inv
  | And of int
  | Nand of int
  | Or of int
  | Nor of int
  | Xor of int
  | Xnor of int
  | Aoi21  (** out = not ((a and b) or c); pins a, b, c *)
  | Oai21  (** out = not ((a or b) and c); pins a, b, c *)
  | Mux2  (** out = if s then b else a; pins a, b, s *)

val arity : t -> int
(** Number of input pins.  N-ary constructors must have arity >= 1
    ([Buf]/[Inv] are the one-input forms). *)

val eval : t -> Value.t array -> Value.t
(** [eval kind inputs] computes the output value.
    @raise Invalid_argument when the array length differs from
    [arity kind]. *)

val eval_bool : t -> bool array -> bool
(** Boolean fast path used by the classical engine and by workload
    checking; same arity contract as {!eval}. *)

val inverting : t -> bool
(** Whether a lone rising input edge can only produce a falling output
    edge (NAND/NOR/INV family).  XOR-like gates are reported as
    non-inverting. *)

val name : t -> string
(** Canonical lowercase mnemonic, e.g. ["nand2"], ["inv"]. *)

val of_name : string -> t option
(** Parses mnemonics produced by {!name}. *)

val all_basic : t list
(** A representative list of kinds used by tests and generators. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
