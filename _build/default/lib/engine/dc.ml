module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value

let seed_levels c ~input_level =
  let levels = Array.make (Netlist.signal_count c) false in
  Array.iter
    (fun (s : Netlist.signal) ->
      if s.Netlist.is_primary_input then
        levels.(s.Netlist.signal_id) <- input_level s.Netlist.signal_id
      else
        match s.Netlist.constant with
        | Some Value.L1 -> levels.(s.Netlist.signal_id) <- true
        | Some (Value.L0 | Value.X | Value.Z) | None -> ())
    (Netlist.signals c);
  levels

let eval_gate c levels gid =
  let g = Netlist.gate c gid in
  Gate_kind.eval_bool g.Netlist.kind (Array.map (fun sid -> levels.(sid)) g.Netlist.fanin)

let levels c ~input_level =
  let levels = seed_levels c ~input_level in
  match Check.topological_gates c with
  | Some order ->
      List.iter
        (fun gid -> levels.((Netlist.gate c gid).Netlist.output) <- eval_gate c levels gid)
        order;
      levels
  | None ->
      (* Feedback: Gauss-Seidel sweeps in gate-id order until a sweep
         changes nothing.  Any fixed point is reached within #gates
         sweeps; beyond that the loop oscillates. *)
      let ngates = Netlist.gate_count c in
      let rec sweep remaining =
        if remaining = 0 then
          invalid_arg "Dc.levels: feedback loop does not settle (oscillator?)"
        else begin
          let changed = ref false in
          for gid = 0 to ngates - 1 do
            let out = (Netlist.gate c gid).Netlist.output in
            let v = eval_gate c levels gid in
            if levels.(out) <> v then begin
              levels.(out) <- v;
              changed := true
            end
          done;
          if !changed then sweep (remaining - 1)
        end
      in
      sweep (ngates + 2);
      levels
