(** Primary-input stimulus: an initial logic level and a time-ordered
    list of ramp transitions applied to one input signal. *)

type t = {
  initial : bool;
  transitions : Halotis_wave.Transition.t list;  (** sorted by start time *)
}

val constant : bool -> t
(** An input that never moves. *)

val of_levels :
  slope:Halotis_util.Units.time ->
  initial:bool ->
  (Halotis_util.Units.time * bool) list ->
  t
(** [of_levels ~slope ~initial changes] builds a drive from
    [(time, level)] pairs (sorted internally); consecutive duplicates
    of the same level are dropped.  Each change becomes a ramp of the
    given slope starting at its time. *)

val pulse :
  slope:Halotis_util.Units.time ->
  at:Halotis_util.Units.time ->
  width:Halotis_util.Units.time ->
  ?initial:bool ->
  unit ->
  t
(** A single positive pulse (or negative when [initial] is [true]). *)

val check : t -> unit
(** @raise Invalid_argument when transitions are unordered. *)
