module Transition = Halotis_wave.Transition

type t = { initial : bool; transitions : Transition.t list }

let constant initial = { initial; transitions = [] }

let of_levels ~slope ~initial changes =
  let sorted = List.sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) changes in
  let rec build level acc = function
    | [] -> List.rev acc
    | (t, v) :: rest ->
        if v = level then build level acc rest
        else begin
          let polarity = if v then Transition.Rising else Transition.Falling in
          let tr = Transition.make ~start:t ~slope_time:slope ~polarity in
          build v (tr :: acc) rest
        end
  in
  { initial; transitions = build initial [] sorted }

let pulse ~slope ~at ~width ?(initial = false) () =
  of_levels ~slope ~initial [ (at, not initial); (at +. width, initial) ]

let check d =
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        if a.Transition.start > b.Transition.start then
          invalid_arg "Drive.check: transitions out of order"
        else ordered rest
    | [ _ ] | [] -> ()
  in
  ordered d.transitions
