lib/engine/dc.mli: Halotis_netlist
