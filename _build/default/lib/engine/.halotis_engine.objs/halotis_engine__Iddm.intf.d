lib/engine/iddm.mli: Drive Format Halotis_delay Halotis_netlist Halotis_tech Halotis_util Halotis_wave Stats
