lib/engine/iddm.ml: Array Dc Drive Float Format Halotis_delay Halotis_logic Halotis_netlist Halotis_tech Halotis_util Halotis_wave Hashtbl List Printf Stats
