lib/engine/dc.ml: Array Halotis_logic Halotis_netlist List
