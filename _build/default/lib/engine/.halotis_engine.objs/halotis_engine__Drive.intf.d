lib/engine/drive.mli: Halotis_util Halotis_wave
