lib/engine/classic.mli: Drive Halotis_netlist Halotis_tech Halotis_util Halotis_wave Stats
