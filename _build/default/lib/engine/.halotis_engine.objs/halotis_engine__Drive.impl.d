lib/engine/drive.ml: Float Halotis_wave List
