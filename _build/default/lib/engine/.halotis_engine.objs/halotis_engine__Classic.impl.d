lib/engine/classic.ml: Array Dc Drive Float Halotis_delay Halotis_logic Halotis_netlist Halotis_tech Halotis_util Halotis_wave Hashtbl List Printf Stats
