(** Event-count bookkeeping — the raw material of the paper's Table 1.

    "Events" are threshold crossings scheduled on gate inputs;
    "filtered events" are pending events cancelled by the Fig. 4 rule
    when a newer transition truncates or annuls the waveform they were
    computed from. *)

type t = {
  mutable events_scheduled : int;
  mutable events_processed : int;
  mutable events_filtered : int;  (** cancellations — Table 1's "Filtered events" *)
  mutable transitions_emitted : int;  (** output transitions appended to waveforms *)
  mutable transitions_annulled : int;  (** stored transitions wiped by later ones *)
  mutable noop_evaluations : int;  (** gate evaluations that left the output unchanged *)
}

val create : unit -> t
val copy : t -> t
val pp : Format.formatter -> t -> unit
