(** DC operating point shared by all engines.

    Acyclic circuits are solved exactly in topological order.  Circuits
    with feedback (latches — the paper's metastability motivation) are
    solved by bounded Gauss–Seidel relaxation over the gates in id
    order; a bistable loop settles into the state that relaxation from
    all-low reaches, which is deterministic and documented behaviour.
    Oscillating feedback (e.g. a ring oscillator) has no fixed point
    and is rejected. *)

val levels :
  Halotis_netlist.Netlist.t ->
  input_level:(Halotis_netlist.Netlist.signal_id -> bool) ->
  bool array
(** [levels c ~input_level] is each signal's initial logic level, given
    the primary-input levels.  Constants override everything.
    @raise Invalid_argument when relaxation does not converge. *)
