type t = {
  mutable events_scheduled : int;
  mutable events_processed : int;
  mutable events_filtered : int;
  mutable transitions_emitted : int;
  mutable transitions_annulled : int;
  mutable noop_evaluations : int;
}

let create () =
  {
    events_scheduled = 0;
    events_processed = 0;
    events_filtered = 0;
    transitions_emitted = 0;
    transitions_annulled = 0;
    noop_evaluations = 0;
  }

let copy t =
  {
    events_scheduled = t.events_scheduled;
    events_processed = t.events_processed;
    events_filtered = t.events_filtered;
    transitions_emitted = t.transitions_emitted;
    transitions_annulled = t.transitions_annulled;
    noop_evaluations = t.noop_evaluations;
  }

let pp fmt t =
  Format.fprintf fmt
    "events: %d scheduled, %d processed, %d filtered; transitions: %d emitted, %d annulled; %d no-op evals"
    t.events_scheduled t.events_processed t.events_filtered t.transitions_emitted
    t.transitions_annulled t.noop_evaluations
