lib/sta/hazard.ml: Array Float Format Halotis_delay Halotis_netlist Halotis_tech Halotis_util List
