lib/sta/sta.ml: Array Float Format Halotis_delay Halotis_logic Halotis_netlist Halotis_tech Halotis_util List
