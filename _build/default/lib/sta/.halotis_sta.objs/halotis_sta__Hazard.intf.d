lib/sta/hazard.mli: Format Halotis_netlist Halotis_tech Halotis_util
