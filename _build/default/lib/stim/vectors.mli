(** Stimulus vectors: operand sequences for the arithmetic circuits,
    including the two multiplication sequences of the paper's
    evaluation (Figs. 6/7, Tables 1/2). *)

type mult_op = { op_a : int; op_b : int }

val pp_mult_op : Format.formatter -> mult_op -> unit
(** Prints ["ExB"]-style hex, as in the paper's figures. *)

val paper_sequence_a : mult_op list
(** 0x0, 7x7, 5xA, Ex6, FxF — the Fig. 6 / Table 1 row 1 sequence. *)

val paper_sequence_b : mult_op list
(** 0x0, FxF, 0x0, FxF, 0x0 — the Fig. 7 / Table 1 row 2 sequence. *)

val expected_product : mult_op -> int

val random_ops : bits:int -> count:int -> seed:int -> mult_op list
(** Uniformly random operand pairs. *)

val walking_ones : bits:int -> int list
(** The classic delay-test pattern [0; 1; 0; 2; 0; 4; ...]: each bit
    pulses alone against a quiet background. *)

val gray_code : bits:int -> int list
(** All [2^bits] values in Gray order: exactly one input bit changes
    per vector, isolating single-input transitions. *)

val bit : int -> int -> bool
(** [bit v i] is bit [i] of [v]. *)

val bus_drives :
  slope:Halotis_util.Units.time ->
  period:Halotis_util.Units.time ->
  bits:Halotis_netlist.Netlist.signal_id list ->
  values:int list ->
  (Halotis_netlist.Netlist.signal_id * Halotis_engine.Drive.t) list
(** [bus_drives ~slope ~period ~bits ~values] drives a bus (LSB-first
    signal list) through a sequence of integer values, one every
    [period]; the first value is the initial (t=0) state and each
    subsequent value is applied at [k * period]. *)

val clock :
  ?duty:float ->
  slope:Halotis_util.Units.time ->
  period:Halotis_util.Units.time ->
  start:Halotis_util.Units.time ->
  pulses:int ->
  unit ->
  Halotis_engine.Drive.t
(** A clock drive: [pulses] rising edges at [start], [start + period],
    ..., each high for [duty * period] (default 0.5), initially low. *)

val multiplier_drives :
  slope:Halotis_util.Units.time ->
  period:Halotis_util.Units.time ->
  a_bits:Halotis_netlist.Netlist.signal_id list ->
  b_bits:Halotis_netlist.Netlist.signal_id list ->
  mult_op list ->
  (Halotis_netlist.Netlist.signal_id * Halotis_engine.Drive.t) list
(** Drives both operand buses through an operation sequence. *)
