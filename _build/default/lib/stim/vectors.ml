module Drive = Halotis_engine.Drive

type mult_op = { op_a : int; op_b : int }

let pp_mult_op fmt { op_a; op_b } = Format.fprintf fmt "%Xx%X" op_a op_b

let paper_sequence_a =
  [
    { op_a = 0x0; op_b = 0x0 };
    { op_a = 0x7; op_b = 0x7 };
    { op_a = 0x5; op_b = 0xA };
    { op_a = 0xE; op_b = 0x6 };
    { op_a = 0xF; op_b = 0xF };
  ]

let paper_sequence_b =
  [
    { op_a = 0x0; op_b = 0x0 };
    { op_a = 0xF; op_b = 0xF };
    { op_a = 0x0; op_b = 0x0 };
    { op_a = 0xF; op_b = 0xF };
    { op_a = 0x0; op_b = 0x0 };
  ]

let expected_product { op_a; op_b } = op_a * op_b

let random_ops ~bits ~count ~seed =
  let rng = Halotis_util.Prng.create ~seed in
  let bound = 1 lsl bits in
  List.init count (fun _ ->
      {
        op_a = Halotis_util.Prng.int rng ~bound;
        op_b = Halotis_util.Prng.int rng ~bound;
      })

let bit v i = (v lsr i) land 1 = 1

let bus_drives ~slope ~period ~bits ~values =
  match values with
  | [] -> List.map (fun sid -> (sid, Drive.constant false)) bits
  | first :: rest ->
      List.mapi
        (fun i sid ->
          let initial = bit first i in
          let changes =
            List.mapi (fun k v -> (period *. float_of_int (k + 1), bit v i)) rest
          in
          (sid, Drive.of_levels ~slope ~initial changes))
        bits

let multiplier_drives ~slope ~period ~a_bits ~b_bits ops =
  bus_drives ~slope ~period ~bits:a_bits ~values:(List.map (fun o -> o.op_a) ops)
  @ bus_drives ~slope ~period ~bits:b_bits ~values:(List.map (fun o -> o.op_b) ops)

let clock ?(duty = 0.5) ~slope ~period ~start ~pulses () =
  if not (duty > 0. && duty < 1.) then invalid_arg "Vectors.clock: duty must be in (0, 1)";
  if pulses < 0 then invalid_arg "Vectors.clock: pulses must be non-negative";
  let changes =
    List.concat
      (List.init pulses (fun k ->
           let base = start +. (period *. float_of_int k) in
           [ (base, true); (base +. (duty *. period), false) ]))
  in
  Drive.of_levels ~slope ~initial:false changes

let walking_ones ~bits =
  assert (bits >= 1);
  List.concat (List.init bits (fun i -> [ 0; 1 lsl i ])) @ [ 0 ]

let gray_code ~bits =
  assert (bits >= 1);
  List.init (1 lsl bits) (fun i -> i lxor (i lsr 1))
