lib/stim/stimfile.ml: Buffer Format Halotis_engine Halotis_netlist Halotis_wave Hashtbl List Printf String
