lib/stim/vectors.mli: Format Halotis_engine Halotis_netlist Halotis_util
