lib/stim/vectors.ml: Format Halotis_engine Halotis_util List
