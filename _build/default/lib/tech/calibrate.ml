type fit = { fit_tau : float; fit_t0 : float; fit_r2 : float }

let predicted_delay ~tp0 ~tau ~t0 ~time_since_last =
  if tp0 <= 0. then 0.
  else begin
    let raw = tp0 *. (1. -. Float.exp (-.(time_since_last -. t0) /. tau)) in
    Halotis_util.Approx.clamp ~lo:0. ~hi:tp0 raw
  end

let fit_degradation ~tp0 ~samples =
  if tp0 <= 0. then None
  else begin
    let informative =
      List.filter_map
        (fun (t, tp) ->
          if tp > 0. && tp < tp0 then Some (t, Float.log (1. -. (tp /. tp0))) else None)
        samples
    in
    match Halotis_util.Linfit.linear_regression informative with
    | None -> None
    | Some (slope, intercept) ->
        if slope >= 0. then None
        else begin
          let tau = -1. /. slope in
          let t0 = intercept *. tau in
          let r2 = Halotis_util.Linfit.r_squared informative ~a:slope ~b:intercept in
          Some { fit_tau = tau; fit_t0 = t0; fit_r2 = r2 }
        end
  end
