(** The synthetic 0.6 um-flavoured CMOS library used throughout the
    reproduction.

    The paper's multiplier was designed in a 0.6 um technology at
    VDD = 5 V.  We do not have the authors' cell library; these numbers
    are chosen in the ranges published in the companion DDM papers
    (PATMOS'97/'00, ISCAS'00): inverter intrinsic delay of a few tens
    of ps, output slopes of ~100 ps at typical loads, degradation tau
    of the order of 100 ps and T0 a fraction of the input slope.  The
    calibration test (see [Calibrate]) checks these parameters are
    self-consistent with the analog substrate. *)

val tech : Tech.t
(** VDD = 5 V, wire cap 2 fF per fanout pin. *)

val fast_tech : Tech.t
(** A scaled variant (~40 % faster, lighter loads) used by ablation
    benches to show parameter sensitivity. *)

val vdd : Halotis_util.Units.voltage
(** Convenience: [Tech.vdd tech]. *)
