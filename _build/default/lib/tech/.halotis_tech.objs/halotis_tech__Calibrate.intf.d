lib/tech/calibrate.mli:
