lib/tech/tech.ml: Float Halotis_logic
