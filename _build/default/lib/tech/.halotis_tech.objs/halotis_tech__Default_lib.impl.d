lib/tech/default_lib.ml: Halotis_logic Tech
