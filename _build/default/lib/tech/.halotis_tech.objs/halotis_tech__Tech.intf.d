lib/tech/tech.mli: Halotis_logic Halotis_util
