lib/tech/default_lib.mli: Halotis_util Tech
