lib/tech/calibrate.ml: Float Halotis_util List
