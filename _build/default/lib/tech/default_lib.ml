module Gate_kind = Halotis_logic.Gate_kind

let vdd = 5.0

(* Inverter edges are the reference point; every other cell is derived
   by family/arity scaling, the usual shortcut when no foundry data is
   available.  Falling edges are slightly faster (stronger NMOS). *)
let inv_rise =
  {
    Tech.d0 = 55.0;
    d_load = 7.0;
    d_slope = 0.12;
    s0 = 70.0;
    s_load = 9.0;
    ddm_a = 190.0;
    ddm_b = 26.0;
    ddm_c = 1.35;
  }

let inv_fall =
  {
    Tech.d0 = 48.0;
    d_load = 6.2;
    d_slope = 0.11;
    s0 = 62.0;
    s_load = 8.0;
    ddm_a = 170.0;
    ddm_b = 24.0;
    ddm_c = 1.25;
  }

let scale k (p : Tech.edge_params) =
  {
    p with
    Tech.d0 = p.Tech.d0 *. k;
    s0 = p.s0 *. k;
    ddm_a = p.ddm_a *. k;
  }

let default_pin_factor i = 1.0 +. (0.08 *. float_of_int i)

let cell ?(pin_factor = default_pin_factor) ~rise_k ~fall_k ~input_cap () =
  {
    Tech.rise = scale rise_k inv_rise;
    fall = scale fall_k inv_fall;
    input_cap;
    default_vt = vdd /. 2.;
    pin_factor;
  }

(* Stack penalty: each input beyond the second slows the series stack. *)
let arity_k n = 1.0 +. (0.15 *. float_of_int (max 0 (n - 2)))

let lookup kind =
  match kind with
  | Gate_kind.Inv -> cell ~rise_k:1.0 ~fall_k:1.0 ~input_cap:6.0 ()
  | Gate_kind.Buf -> cell ~rise_k:1.8 ~fall_k:1.8 ~input_cap:5.0 ()
  | Gate_kind.Nand n ->
      (* parallel pull-up: fast rise; series pull-down: slow fall *)
      cell ~rise_k:(1.1 *. arity_k n) ~fall_k:(1.35 *. arity_k n) ~input_cap:5.5 ()
  | Gate_kind.Nor n ->
      cell ~rise_k:(1.45 *. arity_k n) ~fall_k:(1.1 *. arity_k n) ~input_cap:5.5 ()
  | Gate_kind.And n -> cell ~rise_k:(1.7 *. arity_k n) ~fall_k:(1.8 *. arity_k n) ~input_cap:5.0 ()
  | Gate_kind.Or n -> cell ~rise_k:(1.8 *. arity_k n) ~fall_k:(1.7 *. arity_k n) ~input_cap:5.0 ()
  | Gate_kind.Xor n | Gate_kind.Xnor n ->
      cell ~rise_k:(2.2 *. arity_k n) ~fall_k:(2.2 *. arity_k n) ~input_cap:9.0 ()
  | Gate_kind.Aoi21 | Gate_kind.Oai21 -> cell ~rise_k:1.5 ~fall_k:1.5 ~input_cap:6.0 ()
  | Gate_kind.Mux2 -> cell ~rise_k:2.0 ~fall_k:2.0 ~input_cap:7.0 ()

let tech = Tech.create ~name:"synthetic-0.6um" ~vdd ~wire_cap_per_fanout:2.0 ~lookup ()

let fast_lookup kind =
  let gt = lookup kind in
  let quicken (p : Tech.edge_params) =
    {
      p with
      Tech.d0 = p.Tech.d0 *. 0.6;
      d_load = p.d_load *. 0.7;
      s0 = p.s0 *. 0.6;
      s_load = p.s_load *. 0.7;
      ddm_a = p.ddm_a *. 0.6;
      ddm_b = p.ddm_b *. 0.7;
    }
  in
  {
    gt with
    Tech.rise = quicken gt.Tech.rise;
    fall = quicken gt.Tech.fall;
    input_cap = gt.Tech.input_cap *. 0.8;
  }

let fast_tech =
  Tech.create ~name:"synthetic-0.6um-fast" ~vdd ~wire_cap_per_fanout:1.5 ~lookup:fast_lookup ()
