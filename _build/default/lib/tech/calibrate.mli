(** Fitting DDM parameters from measurements, the way the authors
    fitted eqs. 1–3 to HSPICE.

    Eq. 1 linearises as
    [ln (1 - tp / tp0) = -(T - T0) / tau], i.e. a line in [T] with
    slope [-1 / tau] and intercept [T0 / tau]; ordinary least squares
    recovers both parameters. *)

type fit = {
  fit_tau : float;  (** ps *)
  fit_t0 : float;  (** ps *)
  fit_r2 : float;  (** goodness of the linearised fit *)
}

val fit_degradation : tp0:float -> samples:(float * float) list -> fit option
(** [fit_degradation ~tp0 ~samples] takes [(T, tp)] pairs — output
    delay [tp] observed when the gate output last switched [T] ps
    earlier — and the nominal delay [tp0].  Samples with
    [tp >= tp0] or [tp <= 0] carry no degradation information and are
    ignored; [None] when fewer than two informative samples remain or
    the regression is degenerate (non-negative slope). *)

val predicted_delay : tp0:float -> tau:float -> t0:float -> time_since_last:float -> float
(** Eq. 1 itself: [tp0 * (1 - exp (-(T - T0) / tau))], clamped to
    [\[0, tp0\]].  Shared with the delay model so tests can check the
    fit round-trips. *)
