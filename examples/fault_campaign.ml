(* SET fault injection: strike the Fig. 1 circuit with random
   single-event transients and compare how the degradation delay model
   and the classical inertial filter classify the outcomes.

   Run with:  dune exec examples/fault_campaign.exe *)

module G = Halotis_netlist.Generators
module Drive = Halotis_engine.Drive
module Default_lib = Halotis_tech.Default_lib
module Site = Halotis_fault.Site
module Inject = Halotis_fault.Inject
module Campaign = Halotis_fault.Campaign
module Fault_report = Halotis_fault.Fault_report

let () =
  (* 1. The victim circuit: Fig. 1's two-threshold fanout.  A pulse
     peaking between the sibling inverters' thresholds (1.5 V and
     4.0 V) enters one branch and not the other — exactly the regime
     where boolean inertial filtering and the degradation model
     disagree. *)
  let f = G.fig1_circuit () in
  let c = f.G.circuit in
  let drives =
    [ (f.G.sig_in, Drive.of_levels ~slope:100. ~initial:false [ (2000., true) ]) ]
  in

  (* 2. A campaign: 30 strikes at PRNG-sampled sites, 60 ps pulses
     (runts peaking at 3.0 V), deterministic under the seed. *)
  let cfg engine =
    Campaign.config ~engine ~seed:11 ~n:30
      ~pulse:(Inject.pulse ~width:60. ())
      ~t_stop:8000. ()
  in
  let ddm = Campaign.run (cfg Campaign.Ddm) Default_lib.tech c ~drives in
  print_string (Fault_report.to_text ddm);

  (* 3. Replay the exact same strikes under the classical engine and
     compare the verdicts site by site. *)
  let sites = List.map (fun (v : Campaign.verdict) -> v.Campaign.vd_site) ddm.Campaign.cam_verdicts in
  let classic =
    Campaign.run
      { (cfg Campaign.Classic_inertial) with Campaign.sites = Some sites }
      Default_lib.tech c ~drives
  in
  print_newline ();
  Printf.printf "ddm:     %s\n" (Fault_report.summary ddm);
  Printf.printf "classic: %s\n" (Fault_report.summary classic);
  let disagree =
    List.fold_left2
      (fun acc (a : Campaign.verdict) (b : Campaign.verdict) ->
        if a.Campaign.vd_outcome <> b.Campaign.vd_outcome then acc + 1 else acc)
      0 ddm.Campaign.cam_verdicts classic.Campaign.cam_verdicts
  in
  Printf.printf "the engines disagree on %d of %d strikes\n" disagree
    (List.length sites)
