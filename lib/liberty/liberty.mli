(** Interpretation of a parsed Liberty tree as a cell library: NLDM
    delay/transition tables per timing arc, input pin capacitances. *)

type arc = {
  related_pin : string;
  cell_rise : Table2d.t option;  (** delay to a rising output: (input slope, load) *)
  cell_fall : Table2d.t option;
  rise_transition : Table2d.t option;  (** output slope of a rising output *)
  fall_transition : Table2d.t option;
}

type cell = {
  cell_name : string;
  output_pin : string;
  input_caps : (string * float) list;  (** pin name -> capacitance, fF *)
  arcs : arc list;  (** one per related input pin *)
}

type t = { lib_name : string; cells : cell list }

type error = { message : string }

val pp_error : Format.formatter -> error -> unit

val of_ast : Ast.group -> (t, error) result
(** Interprets a parsed [library (...) { ... }] group.  Cells without
    any recognisable output pin are skipped; cells whose output pin
    carries no timing groups are kept with [arcs = []] (static analysis
    flags them, table consumers skip them). *)

val parse_string : string -> (t, error) result
val parse_file : string -> (t, error) result

val find_cell : t -> string -> cell option

val delay :
  cell -> rising:bool -> pin:string -> slope:float -> load:float -> float option
(** NLDM delay lookup on the arc related to [pin]; [None] when the arc
    or table is absent. *)

val output_slope :
  cell -> rising:bool -> pin:string -> slope:float -> load:float -> float option
