type arc = {
  related_pin : string;
  cell_rise : Table2d.t option;
  cell_fall : Table2d.t option;
  rise_transition : Table2d.t option;
  fall_transition : Table2d.t option;
}

type cell = {
  cell_name : string;
  output_pin : string;
  input_caps : (string * float) list;
  arcs : arc list;
}

type t = { lib_name : string; cells : cell list }

type error = { message : string }

let pp_error fmt e = Format.pp_print_string fmt e.message

exception Interp_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Interp_error m)) fmt

let floats_of_strings where strings =
  List.concat_map
    (fun s ->
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
      |> List.map (fun x ->
             match float_of_string_opt x with
             | Some f -> f
             | None -> fail "%s: bad number %S" where x))
    strings

let table_of_group (g : Ast.group) =
  let index name =
    match Ast.find_complex g name with
    | Some args -> Array.of_list (floats_of_strings name args)
    | None -> fail "table %s: missing %s" g.Ast.g_name name
  in
  let index1 = index "index_1" and index2 = index "index_2" in
  let rows =
    match Ast.find_complex g "values" with
    | Some args -> List.map (fun row -> Array.of_list (floats_of_strings "values" [ row ])) args
    | None -> fail "table %s: missing values" g.Ast.g_name
  in
  try Table2d.make ~index1 ~index2 ~values:(Array.of_list rows)
  with Invalid_argument m -> fail "table %s: %s" g.Ast.g_name m

let arc_of_timing (timing : Ast.group) =
  let related_pin =
    match Ast.find_attr timing "related_pin" with
    | Some p -> p
    | None -> fail "timing group without related_pin"
  in
  let table name =
    match Ast.find_groups timing name with
    | [ g ] -> Some (table_of_group g)
    | [] -> None
    | _ :: _ :: _ -> fail "duplicate %s table" name
  in
  {
    related_pin;
    cell_rise = table "cell_rise";
    cell_fall = table "cell_fall";
    rise_transition = table "rise_transition";
    fall_transition = table "fall_transition";
  }

let cell_of_group (cg : Ast.group) =
  let cell_name = match cg.Ast.g_args with n :: _ -> n | [] -> fail "cell without a name" in
  let pins = Ast.find_groups cg "pin" in
  let pin_name (p : Ast.group) =
    match p.Ast.g_args with n :: _ -> n | [] -> fail "pin without a name"
  in
  let input_caps =
    List.filter_map
      (fun p ->
        match Ast.find_attr p "direction" with
        | Some "input" ->
            let cap =
              match Ast.find_attr p "capacitance" with
              | Some c -> (
                  match float_of_string_opt c with
                  | Some f -> f
                  | None -> fail "cell %s: bad capacitance %S" cell_name c)
              | None -> 0.
            in
            Some (pin_name p, cap)
        | Some _ | None -> None)
      pins
  in
  let output =
    List.find_opt
      (fun p ->
        Ast.find_attr p "direction" = Some "output" || Ast.find_groups p "timing" <> [])
      pins
  in
  match output with
  | None -> None
  | Some out ->
      (* Cells with an output pin but no timing groups are kept with
         [arcs = []] so static analysis can flag them; consumers that
         need tables ([Fit.to_tech]) skip them. *)
      let arcs = List.map arc_of_timing (Ast.find_groups out "timing") in
      Some { cell_name; output_pin = pin_name out; input_caps; arcs }

let of_ast (g : Ast.group) =
  try
    if g.Ast.g_name <> "library" then fail "expected a library group, got %s" g.Ast.g_name;
    let lib_name = match g.Ast.g_args with n :: _ -> n | [] -> "unnamed" in
    let cells = List.filter_map cell_of_group (Ast.find_groups g "cell") in
    Ok { lib_name; cells }
  with Interp_error message -> Error { message }

let parse_string text =
  match Ast.parse_string text with
  | Ok g -> of_ast g
  | Error e -> Error { message = Format.asprintf "%a" Ast.pp_error e }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let find_cell t name = List.find_opt (fun c -> c.cell_name = name) t.cells

let arc_for cell pin = List.find_opt (fun a -> a.related_pin = pin) cell.arcs

let delay cell ~rising ~pin ~slope ~load =
  match arc_for cell pin with
  | None -> None
  | Some arc -> (
      match if rising then arc.cell_rise else arc.cell_fall with
      | Some table -> Some (Table2d.lookup table slope load)
      | None -> None)

let output_slope cell ~rising ~pin ~slope ~load =
  match arc_for cell pin with
  | None -> None
  | Some arc -> (
      match if rising then arc.rise_transition else arc.fall_transition with
      | Some table -> Some (Table2d.lookup table slope load)
      | None -> None)
