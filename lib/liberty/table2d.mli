(** Two-dimensional lookup tables with bilinear interpolation — the
    NLDM representation industrial libraries use for cell delay and
    output-transition data (indexed here by input slope and output
    load). *)

type t

val make : index1:float array -> index2:float array -> values:float array array -> t
(** [make ~index1 ~index2 ~values] builds a table; [values.(i).(j)]
    corresponds to [(index1.(i), index2.(j))].
    @raise Invalid_argument when an index is empty or not strictly
    increasing, or the value matrix does not match the index sizes. *)

val lookup : t -> float -> float -> float
(** [lookup t x1 x2] interpolates bilinearly inside the grid and
    extrapolates linearly from the border cells outside it. *)

val index1 : t -> float array
val index2 : t -> float array
val values : t -> float array array

val monotone : ?tolerance:float -> t -> [ `Index1 | `Index2 ] -> bool
(** Whether values are non-decreasing along the given axis (every other
    coordinate held fixed), allowing dips up to [tolerance].  Delay and
    transition tables should be monotone in output load ([`Index2]);
    violations usually mean corrupted characterisation data. *)

val sample_points : t -> (float * float * float) list
(** All grid points as [(x1, x2, value)] — fitting input. *)
