type t = { index1 : float array; index2 : float array; values : float array array }

let strictly_increasing a =
  let ok = ref (Array.length a > 0) in
  for i = 0 to Array.length a - 2 do
    if a.(i) >= a.(i + 1) then ok := false
  done;
  !ok

let make ~index1 ~index2 ~values =
  if not (strictly_increasing index1) then
    invalid_arg "Table2d.make: index_1 must be non-empty and strictly increasing";
  if not (strictly_increasing index2) then
    invalid_arg "Table2d.make: index_2 must be non-empty and strictly increasing";
  if Array.length values <> Array.length index1 then
    invalid_arg "Table2d.make: row count must match index_1";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length index2 then
        invalid_arg "Table2d.make: column count must match index_2")
    values;
  { index1; index2; values }

(* Index of the cell [i, i+1] whose span covers x; clamped to the
   border cells so callers extrapolate linearly outside the grid. *)
let cell index x =
  let n = Array.length index in
  if n = 1 then 0
  else begin
    let rec search lo hi =
      (* invariant: index.(lo) <= x < index.(hi), cells exist *)
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if index.(mid) <= x then search mid hi else search lo mid
      end
    in
    if x < index.(0) then 0
    else if x >= index.(n - 1) then n - 2
    else search 0 (n - 1)
  end

let fraction index i x =
  if Array.length index = 1 then 0.
  else (x -. index.(i)) /. (index.(i + 1) -. index.(i))

let lookup t x1 x2 =
  let i = cell t.index1 x1 and j = cell t.index2 x2 in
  let fi = fraction t.index1 i x1 and fj = fraction t.index2 j x2 in
  let get r c =
    let r = min r (Array.length t.index1 - 1) and c = min c (Array.length t.index2 - 1) in
    t.values.(r).(c)
  in
  let v00 = get i j and v01 = get i (j + 1) and v10 = get (i + 1) j in
  let v11 = get (i + 1) (j + 1) in
  ((1. -. fi) *. (((1. -. fj) *. v00) +. (fj *. v01)))
  +. (fi *. (((1. -. fj) *. v10) +. (fj *. v11)))

let index1 t = t.index1
let index2 t = t.index2
let values t = t.values

let monotone ?(tolerance = 0.) t axis =
  let ok = ref true in
  let ni = Array.length t.index1 and nj = Array.length t.index2 in
  (match axis with
  | `Index1 ->
      for j = 0 to nj - 1 do
        for i = 0 to ni - 2 do
          if t.values.(i + 1).(j) < t.values.(i).(j) -. tolerance then ok := false
        done
      done
  | `Index2 ->
      for i = 0 to ni - 1 do
        for j = 0 to nj - 2 do
          if t.values.(i).(j + 1) < t.values.(i).(j) -. tolerance then ok := false
        done
      done);
  !ok

let sample_points t =
  List.concat
    (Array.to_list
       (Array.mapi
          (fun i x1 ->
            Array.to_list (Array.mapi (fun j x2 -> (x1, x2, t.values.(i).(j))) t.index2))
          t.index1))
