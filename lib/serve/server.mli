(** The [halotis serve] daemon: sessions, dispatch and transports.

    One server owns one {!Circuit_cache} and a configuration of
    per-session guardrail defaults.  Each connection gets its own
    session table, sequential request ids (1, 2, 3, ...) and hello
    gate; {!handle_line} is the pure request-line to response-line
    function every transport (stdio, unix socket, in-process tests and
    benches) shares. *)

type config = {
  cf_cache_size : int;  (** compiled-circuit LRU capacity *)
  cf_max_events : int option;  (** default per-session event budget *)
  cf_max_transitions : int option;
      (** default per-session transition (memory) budget *)
  cf_watchdog : bool;  (** oscillation watchdog on by default? *)
  cf_tech : Halotis_tech.Tech.t;
  cf_overlay : Halotis_tech.Param_overlay.t;
      (** parameter overlay every session's circuit is priced under;
          its fingerprint is part of the compiled-circuit cache key, so
          two corners of the same source never alias a compilation *)
}

val default_config : unit -> config
(** Default technology library, cache capacity 8, 10M events, 5M
    transitions, watchdog on — serve sessions are guarded by default
    (interactive sessions have no natural horizon). *)

type t

val create : config -> t
val cache : t -> Circuit_cache.t

val stopping : t -> bool
(** Set by a [shutdown] request; transports stop accepting after the
    current line. *)

type conn
(** One client connection: session table, expected next id, hello
    state. *)

val connect : t -> conn

val handle_line : conn -> string -> string
(** Maps one request line to one response line (no trailing newline).
    Never raises: parse failures, protocol violations and
    {!Halotis_guard.Diag.Fail} all become error responses. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Reads newline-delimited requests until EOF or [shutdown], writing
    one flushed response line each.  Blank lines are ignored. *)

val serve_stdio : t -> unit

val serve_socket : t -> path:string -> unit
(** Binds a unix-domain socket at [path] (replacing a stale file),
    accepts connections sequentially, and removes the socket on exit.
    A [shutdown] request stops the accept loop after its connection
    closes. *)
