(** One interactive serve session: a {!Halotis_engine.Sim.Session}
    plus the bookkeeping the protocol layer needs — a monotone time
    frontier, the last commanded level of every primary input, and
    JSON rendering of every query reply.

    All validation errors raise {!Halotis_guard.Diag.Fail} with stable
    codes the server maps to protocol error replies: ["unknown-signal"],
    ["not-an-input"], ["past-time"], ["bad-request"]. *)

type t

val create :
  id:int ->
  engine:Halotis_engine.Sim.engine ->
  compiled:Halotis_engine.Compiled.t ->
  drives:(Halotis_netlist.Netlist.signal_id * Halotis_engine.Drive.t) list ->
  slope:float ->
  budget:Halotis_guard.Budget.t ->
  watchdog:Halotis_guard.Watchdog.config option ->
  t_stop:float option ->
  t
(** Seeds drives (typically from a bound stimulus file) without
    simulating anything.  [slope] is the default ramp slope for
    [set_input]/[inject] requests that omit one.
    @raise Invalid_argument as {!Halotis_engine.Sim.Session.start}
    does. *)

val id : t -> int
val circuit : t -> Halotis_netlist.Netlist.t

val frontier : t -> float
(** The highest instant ever passed to {!advance}; stimulus strictly
    before it is rejected with the ["past-time"] code. *)

val set_input : t -> signal:string -> at:float -> level:bool -> slope:float option -> bool
(** Commands a primary input to [level] via one linear ramp starting at
    [at].  Returns [false] (and appends nothing) when the input is
    already at that level — sessions are level-commanded, not
    edge-commanded, so replaying the same command is idempotent. *)

val inject : t -> signal:string -> at:float -> width:float -> slope:float option -> up:bool -> unit
(** Splices a live SET pulse: a leading ramp at [at] ([up] chooses its
    polarity) and the reversing ramp [width] later. *)

val advance : t -> upto:float -> Halotis_util.Json.t
(** Moves the frontier to [upto] and processes every event at or before
    it; replies with the session status object (time, end_time, event
    and transition counters, truncated flag, stop reason, finished). *)

val query_edges : t -> string option -> Halotis_util.Json.t
(** Digitized edges of one signal, or of every primary output. *)

val query_waveform : t -> string -> Halotis_util.Json.t
(** Raw ramp segments of one signal (waveform engines always). *)

val query_offenders : t -> int -> Halotis_util.Json.t
(** The [n] busiest signals by committed edge count. *)

val query_stats : t -> Halotis_util.Json.t
(** Full engine counters plus the status object. *)

val status : t -> Halotis_util.Json.t
(** The status object without advancing — the [load] reply's core. *)
