(** The compiled-circuit cache: a content-hash-keyed LRU over
    {!Halotis_engine.Compiled.t}.

    A [load] request hashes the circuit's source bytes
    ({!key_of_source}); a hit reuses the parsed, elaborated and
    CSR-flattened netlist together with its priced
    {!Halotis_delay.Delay_model.Cache} coefficients, skipping the whole
    setup pipeline.  Every open session holds its own reference to the
    compiled structure, so eviction only drops the cache's entry — live
    sessions keep simulating on the evicted structure safely.

    The cache is single-threaded, like the server that owns it. *)

type t

val create : capacity:int -> t
(** Capacity is clamped to at least 1. *)

val key_of_source : string -> string
(** Content hash (hex digest) of the circuit's source bytes plus
    whatever the caller folds in.  The server runs one technology, but
    it concatenates the parse recipe and the parameter-overlay
    fingerprint into the hashed text, so two corners of the same source
    never alias a compilation. *)

val find_or_compile :
  t -> key:string -> compile:(unit -> Halotis_engine.Compiled.t) -> Halotis_engine.Compiled.t * bool
(** Returns the compiled circuit and whether it was a cache hit.  On a
    miss, [compile] runs (parse + flatten + price), the least recently
    used entry is evicted if the cache is full, and the fresh entry is
    inserted.  [compile]'s exceptions propagate without corrupting the
    cache. *)

val entries : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val capacity : t -> int

val to_json : t -> Halotis_util.Json.t
(** [{"entries", "capacity", "hits", "misses", "evictions"}] — the
    [cache-stats] reply (deterministic, golden-safe). *)
