(** The [halotis serve] wire protocol: newline-delimited JSON.

    Each request is one compact JSON object on one line carrying a
    sequential ["id"] (1, 2, 3, ... per connection) plus an ["op"];
    each response is one line echoing that id with either a ["result"]
    or a structured ["error"].  The first request of a connection must
    be [hello] with a protocol [version] the server supports
    ({!version}); everything else is rejected until then.

    This module is pure data: requests/responses to and from
    {!Halotis_util.Json.t}, no I/O.  The QCheck suite round-trips
    {!request_of_json} over {!request_to_json} for every constructor. *)

val version : int
(** The protocol generation this build speaks (1). *)

type circuit_source =
  | Path of string  (** server-side file path, [.hnl] or [.bench] *)
  | Inline of string  (** HNL source text carried in the request *)

type load = {
  ld_circuit : circuit_source;
  ld_engine : string;  (** ["ddm"] or ["cdm"]; sessions are waveform-engine only *)
  ld_stim : string option;  (** optional server-side [.hsv] stimulus path *)
  ld_t_stop : float option;  (** session horizon, ps *)
  ld_max_events : int option;  (** per-session override of the server default *)
  ld_max_transitions : int option;  (** per-session override of the memory cap *)
  ld_watchdog : bool option;  (** per-session override of the watchdog default *)
}

type query =
  | Q_edges of string option
      (** digitized edges of one signal, or of every primary output *)
  | Q_waveform of string  (** raw ramp segments of one signal *)
  | Q_offenders of int  (** the [n] busiest signals *)
  | Q_stats  (** engine counters, stop reason, session clock *)

type upto =
  | Upto of float  (** absolute target instant, ps *)
  | Dt of float  (** step relative to the session frontier *)

type request =
  | Hello of int  (** protocol version the client speaks *)
  | Load of load  (** open a session; replies with its id *)
  | Set_input of {
      si_session : int;
      si_signal : string;
      si_at : float;
      si_level : bool;
      si_slope : float option;  (** ramp slope, ps; server default if absent *)
    }
  | Advance of { ad_session : int; ad_upto : upto }
  | Query of { qu_session : int; qu_query : query }
  | Inject of {
      in_session : int;
      in_signal : string;
      in_at : float;
      in_width : float;
      in_slope : float option;
      in_up : bool;  (** [true]: rising leading edge (an "up" SET pulse) *)
    }
  | Close of int
  | Cache_stats
  | Shutdown

val request_to_json : request -> Halotis_util.Json.t
(** Without the ["id"] field — framing adds it (see
    {!request_to_line}). *)

val request_of_json : Halotis_util.Json.t -> (request, string) result
(** Ignores an ["id"] field if present.  Total inverse of
    {!request_to_json}. *)

type error = { err_code : string; err_message : string }
(** Protocol error reply: a stable machine code (["parse"],
    ["protocol"], ["bad-request"], ["unknown-session"], or a
    {!Halotis_guard.Diag} code such as ["netlist-parse"] /
    ["unknown-signal"] / ["past-time"]) plus a human message. *)

type response = { rp_id : int option; rp_payload : (Halotis_util.Json.t, error) result }
(** [rp_id] is [None] only when the request line was unparseable (no id
    could be recovered). *)

val ok : id:int -> Halotis_util.Json.t -> response
val err : ?id:int -> code:string -> string -> response
val response_to_json : response -> Halotis_util.Json.t
val response_of_json : Halotis_util.Json.t -> (response, string) result

val request_to_line : id:int -> request -> string
(** One compact line (no trailing newline), ["id"] first. *)

val response_to_line : response -> string
