module Json = Halotis_util.Json
module Transition = Halotis_wave.Transition

let version = 1

type circuit_source = Path of string | Inline of string

type load = {
  ld_circuit : circuit_source;
  ld_engine : string;
  ld_stim : string option;
  ld_t_stop : float option;
  ld_max_events : int option;
  ld_max_transitions : int option;
  ld_watchdog : bool option;
}

type query =
  | Q_edges of string option
  | Q_waveform of string
  | Q_offenders of int
  | Q_stats

type upto = Upto of float | Dt of float

type request =
  | Hello of int
  | Load of load
  | Set_input of {
      si_session : int;
      si_signal : string;
      si_at : float;
      si_level : bool;
      si_slope : float option;
    }
  | Advance of { ad_session : int; ad_upto : upto }
  | Query of { qu_session : int; qu_query : query }
  | Inject of {
      in_session : int;
      in_signal : string;
      in_at : float;
      in_width : float;
      in_slope : float option;
      in_up : bool;
    }
  | Close of int
  | Cache_stats
  | Shutdown

(* --- encoding --- *)

let num f = Json.Num f
let inum i = Json.Num (float_of_int i)
let opt name conv = function None -> [] | Some v -> [ (name, conv v) ]

let request_to_json = function
  | Hello v -> Json.Obj [ ("op", Json.Str "hello"); ("version", inum v) ]
  | Load l ->
      Json.Obj
        (("op", Json.Str "load")
         :: (match l.ld_circuit with
            | Path p -> [ ("circuit", Json.Str p) ]
            | Inline s -> [ ("source", Json.Str s) ])
        @ [ ("engine", Json.Str l.ld_engine) ]
        @ opt "stim" (fun s -> Json.Str s) l.ld_stim
        @ opt "t_stop" num l.ld_t_stop
        @ opt "max_events" inum l.ld_max_events
        @ opt "max_transitions" inum l.ld_max_transitions
        @ opt "watchdog" (fun b -> Json.Bool b) l.ld_watchdog)
  | Set_input s ->
      Json.Obj
        ([
           ("op", Json.Str "set_input");
           ("session", inum s.si_session);
           ("signal", Json.Str s.si_signal);
           ("at", num s.si_at);
           ("level", Json.Bool s.si_level);
         ]
        @ opt "slope" num s.si_slope)
  | Advance a ->
      Json.Obj
        [
          ("op", Json.Str "advance");
          ("session", inum a.ad_session);
          (match a.ad_upto with Upto t -> ("upto", num t) | Dt t -> ("dt", num t));
        ]
  | Query q ->
      let what =
        match q.qu_query with
        | Q_edges sigopt ->
            [ ("what", Json.Str "edges") ] @ opt "signal" (fun s -> Json.Str s) sigopt
        | Q_waveform s -> [ ("what", Json.Str "waveform"); ("signal", Json.Str s) ]
        | Q_offenders n -> [ ("what", Json.Str "offenders"); ("n", inum n) ]
        | Q_stats -> [ ("what", Json.Str "stats") ]
      in
      Json.Obj (("op", Json.Str "query") :: ("session", inum q.qu_session) :: what)
  | Inject i ->
      Json.Obj
        ([
           ("op", Json.Str "inject");
           ("session", inum i.in_session);
           ("signal", Json.Str i.in_signal);
           ("at", num i.in_at);
           ("width", num i.in_width);
         ]
        @ opt "slope" num i.in_slope
        @ [ ("polarity", Json.Str (if i.in_up then "up" else "down")) ])
  | Close s -> Json.Obj [ ("op", Json.Str "close"); ("session", inum s) ]
  | Cache_stats -> Json.Obj [ ("op", Json.Str "cache-stats") ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]

(* --- decoding --- *)

let field name j = Json.member name j

let int_field name j =
  match field name j with
  | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let float_field name j =
  match field name j with
  | Some (Json.Num f) -> Ok f
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  match field name j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let bool_field name j =
  match field name j with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_of name f j =
  match field name j with
  | None -> Ok None
  | Some _ -> Result.map (fun v -> Some v) (f name j)

let ( let* ) = Result.bind

let request_of_json j =
  let* op = str_field "op" j in
  match op with
  | "hello" ->
      let* v = int_field "version" j in
      Ok (Hello v)
  | "load" ->
      let* ld_circuit =
        match (field "circuit" j, field "source" j) with
        | Some (Json.Str p), None -> Ok (Path p)
        | None, Some (Json.Str s) -> Ok (Inline s)
        | Some _, Some _ -> Error "give either \"circuit\" or \"source\", not both"
        | _ -> Error "load needs a \"circuit\" path or inline \"source\""
      in
      let* ld_engine = str_field "engine" j in
      let* ld_stim = opt_of "stim" str_field j in
      let* ld_t_stop = opt_of "t_stop" float_field j in
      let* ld_max_events = opt_of "max_events" int_field j in
      let* ld_max_transitions = opt_of "max_transitions" int_field j in
      let* ld_watchdog = opt_of "watchdog" bool_field j in
      Ok
        (Load
           {
             ld_circuit;
             ld_engine;
             ld_stim;
             ld_t_stop;
             ld_max_events;
             ld_max_transitions;
             ld_watchdog;
           })
  | "set_input" ->
      let* si_session = int_field "session" j in
      let* si_signal = str_field "signal" j in
      let* si_at = float_field "at" j in
      let* si_level = bool_field "level" j in
      let* si_slope = opt_of "slope" float_field j in
      Ok (Set_input { si_session; si_signal; si_at; si_level; si_slope })
  | "advance" ->
      let* ad_session = int_field "session" j in
      let* ad_upto =
        match (field "upto" j, field "dt" j) with
        | Some (Json.Num t), None -> Ok (Upto t)
        | None, Some (Json.Num t) -> Ok (Dt t)
        | Some _, Some _ -> Error "give either \"upto\" or \"dt\", not both"
        | _ -> Error "advance needs an \"upto\" instant or a \"dt\" step"
      in
      Ok (Advance { ad_session; ad_upto })
  | "query" ->
      let* qu_session = int_field "session" j in
      let* what = str_field "what" j in
      let* qu_query =
        match what with
        | "edges" ->
            let* s = opt_of "signal" str_field j in
            Ok (Q_edges s)
        | "waveform" ->
            let* s = str_field "signal" j in
            Ok (Q_waveform s)
        | "offenders" ->
            let* n = int_field "n" j in
            Ok (Q_offenders n)
        | "stats" -> Ok Q_stats
        | w -> Error (Printf.sprintf "unknown query %S" w)
      in
      Ok (Query { qu_session; qu_query })
  | "inject" ->
      let* in_session = int_field "session" j in
      let* in_signal = str_field "signal" j in
      let* in_at = float_field "at" j in
      let* in_width = float_field "width" j in
      let* in_slope = opt_of "slope" float_field j in
      let* in_up =
        match field "polarity" j with
        | None | Some (Json.Str "up") -> Ok true
        | Some (Json.Str "down") -> Ok false
        | Some _ -> Error "field \"polarity\" must be \"up\" or \"down\""
      in
      Ok (Inject { in_session; in_signal; in_at; in_width; in_slope; in_up })
  | "close" ->
      let* s = int_field "session" j in
      Ok (Close s)
  | "cache-stats" -> Ok Cache_stats
  | "shutdown" -> Ok Shutdown
  | op -> Error (Printf.sprintf "unknown op %S" op)

(* --- responses --- *)

type error = { err_code : string; err_message : string }

type response = { rp_id : int option; rp_payload : (Json.t, error) result }

let ok ~id payload = { rp_id = Some id; rp_payload = Ok payload }

let err ?id ~code message =
  { rp_id = id; rp_payload = Error { err_code = code; err_message = message } }

let response_to_json r =
  let id = match r.rp_id with Some i -> inum i | None -> Json.Null in
  match r.rp_payload with
  | Ok payload ->
      Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", payload) ]
  | Error e ->
      Json.Obj
        [
          ("id", id);
          ("ok", Json.Bool false);
          ( "error",
            Json.Obj
              [ ("code", Json.Str e.err_code); ("message", Json.Str e.err_message) ] );
        ]

let response_of_json j =
  let* id =
    match field "id" j with
    | Some Json.Null -> Ok None
    | Some (Json.Num f) when Float.is_integer f -> Ok (Some (int_of_float f))
    | _ -> Error "response \"id\" must be an integer or null"
  in
  let* ok_flag = bool_field "ok" j in
  if ok_flag then
    match field "result" j with
    | Some payload -> Ok { rp_id = id; rp_payload = Ok payload }
    | None -> Error "ok response without \"result\""
  else
    match field "error" j with
    | Some e ->
        let* err_code = str_field "code" e in
        let* err_message = str_field "message" e in
        Ok { rp_id = id; rp_payload = Error { err_code; err_message } }
    | None -> Error "error response without \"error\""

(* --- wire framing --- *)

let with_id ~id = function
  | Json.Obj fields -> Json.Obj (("id", inum id) :: fields)
  | j -> j

let request_to_line ~id r = Json.to_string ~indent:false (with_id ~id (request_to_json r))
let response_to_line r = Json.to_string ~indent:false (response_to_json r)
