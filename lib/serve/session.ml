module Json = Halotis_util.Json
module Netlist = Halotis_netlist.Netlist
module Transition = Halotis_wave.Transition
module Waveform = Halotis_wave.Waveform
module Digital = Halotis_wave.Digital
module Sim = Halotis_engine.Sim
module Compiled = Halotis_engine.Compiled
module Stats = Halotis_engine.Stats
module Stop = Halotis_guard.Stop
module Diag = Halotis_guard.Diag

type t = {
  se_id : int;
  se_engine : Sim.engine;
  se_compiled : Compiled.t;
  se_sim : Sim.Session.t;
  se_slope : float;
  mutable se_frontier : float;
  se_levels : bool array; (* latest commanded level, primary inputs only *)
}

let drive_final_level (d : Halotis_engine.Drive.t) =
  List.fold_left
    (fun _ (tr : Transition.t) -> tr.Transition.polarity = Transition.Rising)
    d.Halotis_engine.Drive.initial d.Halotis_engine.Drive.transitions

let create ~id ~engine ~compiled ~drives ~slope ~budget ~watchdog ~t_stop =
  let spec =
    Sim.spec ~drives ?t_stop ~budget ?watchdog
      ~overlay:compiled.Compiled.overlay ~tech:compiled.Compiled.tech
      compiled.Compiled.circuit
  in
  let sim = Sim.Session.start ~compiled engine spec in
  let levels = Array.make compiled.Compiled.nsignals false in
  List.iter (fun (sid, d) -> levels.(sid) <- drive_final_level d) drives;
  {
    se_id = id;
    se_engine = engine;
    se_compiled = compiled;
    se_sim = sim;
    se_slope = slope;
    se_frontier = 0.;
    se_levels = levels;
  }

let id t = t.se_id
let circuit t = t.se_compiled.Compiled.circuit
let frontier t = t.se_frontier

let signal_id t name =
  match Netlist.find_signal (circuit t) name with
  | Some sid -> sid
  | None ->
      Diag.fail ~code:"unknown-signal"
        (Printf.sprintf "circuit %s has no signal named %s" (Netlist.name (circuit t)) name)

let check_not_past t ~at =
  if at < t.se_frontier then
    Diag.fail ~code:"past-time"
      (Printf.sprintf
         "instant %g ps is before the session frontier %g ps (already simulated)" at
         t.se_frontier)

let set_input t ~signal ~at ~level ~slope =
  let sid = signal_id t signal in
  if not (Netlist.signal (circuit t) sid).Netlist.is_primary_input then
    Diag.fail ~code:"not-an-input"
      (Printf.sprintf "%s is not a primary input" signal);
  check_not_past t ~at;
  let slope = match slope with Some s -> s | None -> t.se_slope in
  if t.se_levels.(sid) = level then false
  else begin
    t.se_levels.(sid) <- level;
    let tr =
      Transition.make ~start:at ~slope_time:slope
        ~polarity:(if level then Transition.Rising else Transition.Falling)
    in
    Sim.Session.set_input t.se_sim ~signal:sid [ tr ];
    true
  end

let inject t ~signal ~at ~width ~slope ~up =
  let sid = signal_id t signal in
  check_not_past t ~at;
  if width <= 0. then Diag.fail ~code:"bad-request" "pulse width must be positive";
  let slope = match slope with Some s -> s | None -> t.se_slope in
  let lead = if up then Transition.Rising else Transition.Falling in
  Sim.Session.inject t.se_sim
    {
      Sim.inj_signal = sid;
      inj_ramps =
        [
          Transition.make ~start:at ~slope_time:slope ~polarity:lead;
          Transition.make ~start:(at +. width) ~slope_time:slope
            ~polarity:(Transition.opposite lead);
        ];
    }

(* --- result rendering --- *)

let polarity_str = function Transition.Rising -> "rise" | Transition.Falling -> "fall"

let edge_json (e : Digital.edge) =
  Json.Obj [ ("at", Json.Num e.Digital.at); ("polarity", Json.Str (polarity_str e.Digital.polarity)) ]

let status_json t (r : Sim.result) =
  [
    ("time", Json.Num t.se_frontier);
    ("end_time", Json.Num r.Sim.rs_end_time);
    ("events", Json.Num (float_of_int r.Sim.rs_stats.Stats.events_processed));
    ( "transitions",
      Json.Num (float_of_int r.Sim.rs_stats.Stats.transitions_emitted) );
    ("truncated", Json.Bool r.Sim.rs_truncated);
    ("stopped_by", Stop.to_json r.Sim.rs_stopped_by);
    ("finished", Json.Bool (Sim.Session.finished t.se_sim));
  ]

let advance t ~upto =
  check_not_past t ~at:upto;
  t.se_frontier <- upto;
  let r = Sim.Session.advance t.se_sim ~upto in
  Json.Obj (status_json t r)

let query_edges t sigopt =
  let r = Sim.Session.snapshot t.se_sim in
  let named =
    match sigopt with
    | Some name ->
        let sid = signal_id t name in
        [ (name, (Sim.edges r).(sid)) ]
    | None -> Sim.output_edges r
  in
  Json.Obj
    [
      ( "edges",
        Json.Arr
          (List.map
             (fun (name, es) ->
               Json.Obj
                 [ ("signal", Json.Str name); ("edges", Json.Arr (List.map edge_json es)) ])
             named) );
    ]

let query_waveform t name =
  let sid = signal_id t name in
  let r = Sim.Session.snapshot t.se_sim in
  match Sim.iddm r with
  | None -> Diag.fail ~code:"bad-request" "waveform queries need a waveform engine"
  | Some ir ->
      let wf = ir.Halotis_engine.Iddm.waveforms.(sid) in
      let segs =
        List.map
          (fun (s : Waveform.segment) ->
            Json.Obj
              [
                ("start", Json.Num s.Waveform.transition.Transition.start);
                ("slope", Json.Num s.Waveform.transition.Transition.slope_time);
                ( "polarity",
                  Json.Str (polarity_str s.Waveform.transition.Transition.polarity) );
                ("v_start", Json.Num s.Waveform.v_start);
              ])
          (Waveform.segments wf)
      in
      Json.Obj
        [
          ("signal", Json.Str name);
          ("initial", Json.Num (Waveform.initial wf));
          ("segments", Json.Arr segs);
        ]

let query_offenders t n =
  let r = Sim.Session.snapshot t.se_sim in
  Json.Obj
    [
      ( "offenders",
        Json.Arr
          (List.map
             (fun (name, k) ->
               Json.Obj
                 [ ("signal", Json.Str name); ("edges", Json.Num (float_of_int k)) ])
             (Sim.top_offenders ~n r)) );
    ]

let query_stats t =
  let r = Sim.Session.snapshot t.se_sim in
  Json.Obj (("stats", Stats.to_json r.Sim.rs_stats) :: status_json t r)

let status t = Json.Obj (status_json t (Sim.Session.snapshot t.se_sim))
