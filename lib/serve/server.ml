module Json = Halotis_util.Json
module P = Protocol
module Netlist = Halotis_netlist.Netlist
module Hnl = Halotis_netlist.Hnl
module Iscas = Halotis_netlist.Iscas
module Stimfile = Halotis_stim.Stimfile
module Sim = Halotis_engine.Sim
module Compiled = Halotis_engine.Compiled
module Budget = Halotis_guard.Budget
module Watchdog = Halotis_guard.Watchdog
module Diag = Halotis_guard.Diag

type config = {
  cf_cache_size : int;
  cf_max_events : int option;
  cf_max_transitions : int option;
  cf_watchdog : bool;
  cf_tech : Halotis_tech.Tech.t;
  cf_overlay : Halotis_tech.Param_overlay.t;
}

let default_config () =
  {
    cf_cache_size = 8;
    cf_max_events = Some 10_000_000;
    cf_max_transitions = Some 5_000_000;
    cf_watchdog = true;
    cf_tech = Halotis_tech.Default_lib.tech;
    cf_overlay = Halotis_tech.Param_overlay.empty;
  }

type t = {
  cfg : config;
  cache : Circuit_cache.t;
  mutable stopping : bool;
}

let create cfg = { cfg; cache = Circuit_cache.create ~capacity:cfg.cf_cache_size; stopping = false }
let cache t = t.cache
let stopping t = t.stopping

type conn = {
  server : t;
  mutable next_id : int;  (** the id the next request must carry *)
  mutable greeted : bool;
  sessions : (int, Session.t) Hashtbl.t;
  mutable next_session : int;
}

let connect server =
  { server; next_id = 1; greeted = false; sessions = Hashtbl.create 8; next_session = 1 }

(* --- circuit loading --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let strip_ext name = Filename.remove_extension (Filename.basename name)

(* The cache key covers the parse recipe, not just the bytes: the same
   source text means different circuits under ISCAS and HNL rules. *)
let parse_recipe = function
  | P.Inline _ -> "hnl:inline"
  | P.Path p ->
      if Filename.check_suffix p ".bench" then "iscas:" ^ strip_ext p else "hnl:"

let circuit_bytes = function
  | P.Inline s -> s
  | P.Path p -> ( try read_file p with Sys_error m -> Diag.fail ~code:"io" m)

let parse_circuit source text =
  match source with
  | P.Path p when Filename.check_suffix p ".bench" -> (
      match Iscas.parse_string ~name:(strip_ext p) text with
      | Ok c -> c
      | Error e ->
          Diag.fail ~code:"iscas-parse" ~file:p ~line:e.Iscas.line e.Iscas.message)
  | P.Path p -> (
      match Hnl.parse_string text with
      | Ok c -> c
      | Error e -> Diag.fail ~code:"netlist-parse" ~file:p ~line:e.Hnl.line e.Hnl.message)
  | P.Inline _ -> (
      match Hnl.parse_string text with
      | Ok c -> c
      | Error e -> Diag.fail ~code:"netlist-parse" ~line:e.Hnl.line e.Hnl.message)

(* --- request handlers --- *)

let find_session conn sid =
  match Hashtbl.find_opt conn.sessions sid with
  | Some s -> s
  | None -> Diag.fail ~code:"unknown-session" (Printf.sprintf "no open session %d" sid)

let signal_names c ids = Json.Arr (List.map (fun sid -> Json.Str (Netlist.signal_name c sid)) ids)

let handle_load conn (l : P.load) =
  let engine =
    match Sim.engine_of_string l.P.ld_engine with
    | Some ((Sim.Ddm | Sim.Cdm) as e) -> e
    | Some Sim.Classic_inertial ->
        Diag.fail ~code:"bad-request"
          "sessions need a waveform engine: \"ddm\" or \"cdm\""
    | None -> Diag.fail ~code:"bad-request" (Printf.sprintf "unknown engine %S" l.P.ld_engine)
  in
  let text = circuit_bytes l.P.ld_circuit in
  let overlay = conn.server.cfg.cf_overlay in
  (* The key also covers the parameter overlay's fingerprint: two
     corners of the same source must never alias a compiled circuit. *)
  let key =
    Circuit_cache.key_of_source
      (parse_recipe l.P.ld_circuit ^ "\x00" ^ text ^ "\x00"
      ^ Halotis_tech.Param_overlay.fingerprint overlay)
  in
  let compiled, hit =
    Circuit_cache.find_or_compile conn.server.cache ~key ~compile:(fun () ->
        Compiled.compile ~overlay conn.server.cfg.cf_tech
          (parse_circuit l.P.ld_circuit text))
  in
  let circuit = compiled.Compiled.circuit in
  let drives, slope =
    match l.P.ld_stim with
    | None -> ([], 100.)
    | Some path -> (
        match Stimfile.parse_file path with
        | Error e ->
            Diag.fail ~code:"stim-parse" ~file:path ~line:e.Stimfile.line e.Stimfile.message
        | Ok sf -> (
            match Stimfile.bind sf circuit with
            | Error m -> Diag.fail ~code:"stim-bind" ~file:path m
            | Ok drives -> (drives, sf.Stimfile.slope)))
  in
  let cfg = conn.server.cfg in
  let pick ov default = match ov with Some v -> Some v | None -> default in
  let budget =
    {
      Budget.unlimited with
      Budget.max_events = pick l.P.ld_max_events cfg.cf_max_events;
      max_transitions = pick l.P.ld_max_transitions cfg.cf_max_transitions;
    }
  in
  let watchdog =
    if match l.P.ld_watchdog with Some b -> b | None -> cfg.cf_watchdog then
      Some (Watchdog.config ())
    else None
  in
  let id = conn.next_session in
  let session =
    Session.create ~id ~engine ~compiled ~drives ~slope ~budget ~watchdog
      ~t_stop:l.P.ld_t_stop
  in
  conn.next_session <- id + 1;
  Hashtbl.replace conn.sessions id session;
  Json.Obj
    [
      ("session", Json.Num (float_of_int id));
      ("circuit", Json.Str (Netlist.name circuit));
      ("engine", Json.Str (Sim.engine_to_string engine));
      ("cache", Json.Str (if hit then "hit" else "miss"));
      ("inputs", signal_names circuit (Netlist.primary_inputs circuit));
      ("outputs", signal_names circuit (Netlist.primary_outputs circuit));
      ("time", Json.Num 0.);
    ]

let handle_request conn = function
  | P.Hello v ->
      if v <> P.version then
        Diag.fail ~code:"protocol"
          (Printf.sprintf "unsupported protocol version %d (server speaks %d)" v P.version);
      conn.greeted <- true;
      Json.Obj [ ("server", Json.Str "halotis"); ("protocol", Json.Num (float_of_int P.version)) ]
  | P.Load l -> handle_load conn l
  | P.Set_input { si_session; si_signal; si_at; si_level; si_slope } ->
      let session = find_session conn si_session in
      let changed =
        Session.set_input session ~signal:si_signal ~at:si_at ~level:si_level
          ~slope:si_slope
      in
      Json.Obj [ ("changed", Json.Bool changed); ("time", Json.Num (Session.frontier session)) ]
  | P.Advance { ad_session; ad_upto } ->
      let session = find_session conn ad_session in
      let upto =
        match ad_upto with
        | P.Upto t -> t
        | P.Dt d ->
            if d < 0. then Diag.fail ~code:"bad-request" "\"dt\" must be non-negative";
            Session.frontier session +. d
      in
      Session.advance session ~upto
  | P.Query { qu_session; qu_query } -> (
      let session = find_session conn qu_session in
      match qu_query with
      | P.Q_edges sigopt -> Session.query_edges session sigopt
      | P.Q_waveform s -> Session.query_waveform session s
      | P.Q_offenders n -> Session.query_offenders session n
      | P.Q_stats -> Session.query_stats session)
  | P.Inject { in_session; in_signal; in_at; in_width; in_slope; in_up } ->
      let session = find_session conn in_session in
      Session.inject session ~signal:in_signal ~at:in_at ~width:in_width
        ~slope:in_slope ~up:in_up;
      Json.Obj [ ("injected", Json.Bool true); ("signal", Json.Str in_signal) ]
  | P.Close sid ->
      if not (Hashtbl.mem conn.sessions sid) then
        Diag.fail ~code:"unknown-session" (Printf.sprintf "no open session %d" sid);
      Hashtbl.remove conn.sessions sid;
      Json.Obj [ ("closed", Json.Num (float_of_int sid)) ]
  | P.Cache_stats -> Circuit_cache.to_json conn.server.cache
  | P.Shutdown ->
      conn.server.stopping <- true;
      Json.Obj [ ("stopping", Json.Bool true) ]

let handle_line conn line =
  let response =
    match Json.parse_strict line with
    | Error e -> P.err ~code:"parse" (Json.parse_error_to_string e)
    | Ok j -> (
        match Json.member "id" j with
        | Some (Json.Num f) when Float.is_integer f -> (
            let id = int_of_float f in
            if id <> conn.next_id then
              P.err ~id ~code:"protocol"
                (Printf.sprintf "out-of-order request: expected id %d, got %d" conn.next_id id)
            else begin
              conn.next_id <- id + 1;
              match P.request_of_json j with
              | Error m -> P.err ~id ~code:"bad-request" m
              | Ok req -> (
                  if (not conn.greeted) && req <> P.Hello P.version then
                    P.err ~id ~code:"protocol"
                      (Printf.sprintf "the first request must be {\"op\":\"hello\",\"version\":%d}"
                         P.version)
                  else
                    try P.ok ~id (handle_request conn req) with
                    | Diag.Fail d -> P.err ~id ~code:d.Diag.code d.Diag.message
                    | Invalid_argument m -> P.err ~id ~code:"bad-request" m
                    | Sys_error m -> P.err ~id ~code:"io" m)
            end)
        | _ -> P.err ~code:"protocol" "every request needs an integer \"id\"")
  in
  P.response_to_line response

(* --- transports --- *)

let serve_channels t ic oc =
  let conn = connect t in
  let reader = Json.Lines.of_channel ic in
  let rec loop () =
    if not t.stopping then
      match Json.Lines.next reader with
      | None -> ()
      | Some line ->
          if String.trim line <> "" then begin
            output_string oc (handle_line conn line);
            output_char oc '\n';
            flush oc
          end;
          loop ()
  in
  loop ()

let serve_stdio t = serve_channels t stdin stdout

let serve_socket t ~path =
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      while not t.stopping do
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (try serve_channels t ic oc with Sys_error _ | End_of_file -> ());
        (try flush oc with Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      done)
