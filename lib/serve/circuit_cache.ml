module Compiled = Halotis_engine.Compiled

type entry = { ce_compiled : Compiled.t; mutable ce_stamp : int }

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 16;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let key_of_source source = Digest.to_hex (Digest.string source)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.ce_stamp -> acc
        | _ -> Some (k, e.ce_stamp))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1
  | None -> ()

let find_or_compile t ~key ~compile =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.ce_stamp <- t.clock;
      t.hits <- t.hits + 1;
      (e.ce_compiled, true)
  | None ->
      let cp = compile () in
      if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
      Hashtbl.replace t.tbl key { ce_compiled = cp; ce_stamp = t.clock };
      t.misses <- t.misses + 1;
      (cp, false)

let entries t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let capacity t = t.capacity

let to_json t =
  Halotis_util.Json.Obj
    [
      ("entries", Halotis_util.Json.Num (float_of_int (entries t)));
      ("capacity", Halotis_util.Json.Num (float_of_int t.capacity));
      ("hits", Halotis_util.Json.Num (float_of_int t.hits));
      ("misses", Halotis_util.Json.Num (float_of_int t.misses));
      ("evictions", Halotis_util.Json.Num (float_of_int t.evictions));
    ]
