(** Resource budgets for a simulation run.

    A budget bounds how much work a run may do before it is stopped
    gracefully.  All limits are optional; {!unlimited} disables them
    all.  The hot loop pays one countdown decrement and one branch per
    event via {!Monitor.hit}; the expensive checks (wall clock, queue
    occupancy) only run every [interval] events.  The event budget is
    exact: the monitor refills the countdown with
    [min interval (remaining events)], so a run with
    [max_events = Some n] processes exactly [n] events before
    stopping. *)

type t = {
  max_events : int option;  (** processed (non-stale) events *)
  max_wall_s : float option;  (** wall-clock seconds *)
  max_queue : int option;  (** event-queue occupancy (live + stale slots) *)
  max_sim_time : float option;  (** simulated time horizon, ps *)
  max_transitions : int option;
      (** committed output transitions across all waveform stores — the
          memory cap: per-signal transition arrays grow with every
          accepted ramp even when the event-queue budget holds, so a
          long-lived session bounds them here.  Enforced by the engines
          themselves (the monitor never sees transition counts): once
          the store holds this many committed transitions, the next
          live gate event stops the run with
          {!Stop.Transition_cap} *)
}

val unlimited : t

val make :
  ?max_events:int ->
  ?max_wall_s:float ->
  ?max_queue:int ->
  ?max_sim_time:float ->
  ?max_transitions:int ->
  unit ->
  t

val is_unlimited : t -> bool

(** The per-run checking state.  One monitor per engine run; not
    reusable across runs (it owns the wall-clock start time and the
    event countdown). *)
module Monitor : sig
  type budget = t
  type t

  val create : ?interval:int -> budget -> t
  (** [interval] is how many events pass between slow-path checks
      (default 1024).  The event budget stays exact regardless of
      [interval]. *)

  val hit : t -> queue:int -> Stop.t option
  (** Call once per live event, {e before} processing it.  [queue] is
      the current event-queue occupancy (only inspected on the slow
      path, so passing a cheap upper bound such as heap length is
      fine).  [None] means the event may be processed; [Some reason]
      means the budget disallows it and the caller must stop — exactly
      [max_events] events get processed under an event budget.  After a
      trip, further calls are unspecified. *)

  val events_seen : t -> int
  (** Events accounted so far (exact, including the countdown in
      flight). *)
end
