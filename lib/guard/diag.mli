(** Structured diagnostics.

    Parsers and engine setup used to fail with bare [Failure]/
    [Invalid_argument] exceptions — no file, no line, no advice, and a
    backtrace in the user's face.  A {!t} carries everything a tool
    needs to render a useful message once, in one place: severity, a
    stable machine-readable code, an optional source location, the
    message, and an optional one-line hint.  The CLI catches {!Fail}
    and prints {!to_string} without a backtrace; JSON emitters embed
    {!to_json}. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  code : string;  (** stable slug, e.g. ["netlist-parse"], ["dc-unstable"] *)
  file : string option;
  line : int option;
  message : string;
  hint : string option;
}

exception Fail of t
(** The one exception guarded code is allowed to throw for user-facing
    failures. *)

val make :
  ?severity:severity ->
  ?file:string ->
  ?line:int ->
  ?hint:string ->
  code:string ->
  string ->
  t
(** [make ~code msg] builds a diagnostic; severity defaults to
    [Error]. *)

val fail : ?file:string -> ?line:int -> ?hint:string -> code:string -> string -> 'a
(** [fail ~code msg] raises {!Fail} with an [Error] diagnostic. *)

val to_string : t -> string
(** ["error[netlist-parse]: c17.hnl:12: unknown gate kind 'nand9'"],
    followed by ["  hint: ..."] on its own line when a hint is
    present. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Halotis_util.Json.t
(** Object with [severity]/[code]/[message] and, when present,
    [file]/[line]/[hint]. *)
