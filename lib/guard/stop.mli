(** Why a simulation run ended.

    The HALOTIS algorithm (Fig. 4) assumes every run quiesces; real
    deployments cannot.  Instead of hanging on a ring oscillator or
    dying with an exception after minutes of work, the engines stop
    {e gracefully} — partial waveforms are kept, statistics stay
    consistent — and record the reason here.  [Completed] covers both
    queue exhaustion (natural quiescence) and reaching an explicit
    [t_stop] horizon; everything else is a guardrail trip and marks the
    results as partial. *)

type t =
  | Completed  (** queue drained or the [t_stop] horizon was reached *)
  | Event_budget of int  (** processed-event budget hit (the limit) *)
  | Wall_clock of float  (** wall-clock budget hit (the limit, seconds) *)
  | Queue_cap of int  (** event-queue occupancy cap exceeded (the cap) *)
  | Sim_time of float  (** simulated-time budget hit (the limit, ps) *)
  | Transition_cap of int
      (** committed-transition (waveform memory) budget hit (the cap) *)
  | Oscillation of string list
      (** the watchdog found non-quiescing signals and the run was
          configured to halt; carries the offending signal names
          (the feedback SCC's outputs, sorted) *)

val completed : t -> bool
(** [true] only for [Completed]: the results cover the whole requested
    run. *)

val to_string : t -> string
(** Stable one-token-ish rendering, e.g. ["event-budget(1000)"] or
    ["oscillation(a,b,c)"]; ["completed"] for {!Completed}.  Used in
    logs, stats and report documents. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Halotis_util.Json.t
(** [Null] for [Completed], otherwise an object
    [{"reason": ..., "limit": ...}] (["signals"] for oscillation). *)

val exit_code : t -> int
(** The CLI contract (documented in [doc/robustness.md]): 0 for
    {!Completed}, 3 for any resource-budget trip, 4 for an oscillation
    halt. *)

val degraded_exit_code : int
(** [5] — the exit code of a run that completed {e degraded}: a
    supervised campaign quarantined one or more poison sites instead of
    failing, so the report is whole except for the explicitly listed
    quarantined work (documented in [doc/robustness.md]). *)

val worst_exit_code : int list -> int
(** Folds many per-worker exit codes into the one a parent process
    reports: [0] only when every code is [0]; otherwise the most severe
    contributor wins — a hard error (any code outside the 0/3/4/5
    contract, e.g. [1] or a signal death) over a degraded completion
    ({!degraded_exit_code}) over an oscillation halt ([4]) over a
    budget trip ([3]).  [0] for the empty list. *)
