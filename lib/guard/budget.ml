type t = {
  max_events : int option;
  max_wall_s : float option;
  max_queue : int option;
  max_sim_time : float option;
  max_transitions : int option;
}

let unlimited =
  {
    max_events = None;
    max_wall_s = None;
    max_queue = None;
    max_sim_time = None;
    max_transitions = None;
  }

let make ?max_events ?max_wall_s ?max_queue ?max_sim_time ?max_transitions () =
  { max_events; max_wall_s; max_queue; max_sim_time; max_transitions }

let is_unlimited b =
  b.max_events = None && b.max_wall_s = None && b.max_queue = None && b.max_sim_time = None
  && b.max_transitions = None

module Monitor = struct
  type budget = t

  type t = {
    budget : budget;
    interval : int;
    mutable countdown : int;  (* events left before the next slow-path check *)
    mutable fill : int;  (* what countdown was last refilled to *)
    mutable events : int;  (* events accounted at the last refill *)
    wall_start : float;
  }

  let refill m =
    let fill =
      match m.budget.max_events with
      | Some lim -> min m.interval (lim - m.events)
      | None -> m.interval
    in
    m.fill <- fill;
    m.countdown <- fill

  let create ?(interval = 1024) budget =
    let interval = max 1 interval in
    let wall_start = if budget.max_wall_s <> None then Unix.gettimeofday () else 0. in
    let m = { budget; interval; countdown = 0; fill = 0; events = 0; wall_start } in
    refill m;
    m

  let events_seen m = m.events + (m.fill - max 0 m.countdown)

  (* Slow path: runs once per [interval] events (or at the event-budget
     boundary).  Refills the countdown so the fast path stays a single
     decrement + branch. *)
  let check m ~queue =
    (* The event that tripped the fast path has consumed no fill slot
       yet: account the exhausted fill, decide, and only count the
       in-flight event if it is admitted — this keeps the event budget
       exact whatever the interval. *)
    m.events <- m.events + m.fill;
    m.fill <- 0;
    m.countdown <- 0;
    let b = m.budget in
    let stop =
      match b.max_events with
      | Some lim when m.events >= lim -> Some (Stop.Event_budget lim)
      | _ -> (
          match b.max_queue with
          | Some cap when queue > cap -> Some (Stop.Queue_cap cap)
          | _ -> (
              match b.max_wall_s with
              | Some lim when Unix.gettimeofday () -. m.wall_start >= lim ->
                  Some (Stop.Wall_clock lim)
              | _ -> None))
    in
    (match stop with
    | None ->
        m.events <- m.events + 1;
        refill m
    | Some _ -> ());
    stop

  let hit m ~queue =
    m.countdown <- m.countdown - 1;
    if m.countdown >= 0 then None else check m ~queue
end
