module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check

type mode = Halt | Degrade

type config = { window : float; threshold : int; wd_mode : mode }

let default_window = 10_000.
let default_threshold = 256

let config ?(window = default_window) ?(threshold = default_threshold) ?(mode = Halt) () =
  { window; threshold; wd_mode = mode }

type t = {
  cfg : config;
  counts : int array;  (* events on this signal inside the current window *)
  win_start : float array;  (* where this signal's current window began *)
}

let create cfg ~nsignals =
  { cfg; counts = Array.make nsignals 0; win_start = Array.make nsignals neg_infinity }

let mode t = t.cfg.wd_mode

let record t ~signal ~now =
  if now -. t.win_start.(signal) > t.cfg.window then begin
    t.win_start.(signal) <- now;
    t.counts.(signal) <- 1;
    false
  end
  else begin
    let c = t.counts.(signal) + 1 in
    t.counts.(signal) <- c;
    c >= t.cfg.threshold
  end

let freeze_set netlist ~signal =
  match (Netlist.signal netlist signal).Netlist.driver with
  | None -> [ signal ]
  | Some driver -> (
      let scc =
        List.find_opt (fun gs -> List.mem driver gs) (Check.sccs netlist)
      in
      match scc with
      | Some gates when List.length gates > 1 ->
          List.sort_uniq compare
            (List.map (fun g -> (Netlist.gate netlist g).Netlist.output) gates)
      | _ -> [ signal ])

let offender_names netlist signals =
  List.sort compare (List.map (Netlist.signal_name netlist) signals)

let suggest_threshold ?(window = default_window) ~scc_gates () =
  (* A feedback loop of [scc_gates] gates oscillates with a period of
     roughly 2 x scc_gates x one gate delay (~50 ps in the built-in
     technology), so each loop signal toggles about
     window / (scc_gates * 50) times per window.  Half that rate trips
     on a genuine oscillator well within one window while staying far
     above what quiescing logic produces; the floor keeps tiny loops
     (an inverter pair) from tripping on legitimate bursts. *)
  let scc_gates = max 1 scc_gates in
  let expected = window /. (50. *. float_of_int scc_gates) in
  max 16 (int_of_float (expected /. 2.))
