(** Oscillation watchdog.

    A combinational feedback loop with odd inversion parity (a ring
    oscillator) never quiesces under the classic/CDM engines — the run
    spins forever inside [t_stop].  The watchdog tracks, per signal,
    how many output events fire inside a sliding window of {e simulated}
    time; a signal that exceeds [threshold] events per [window] is
    oscillating.  Depending on {!mode} the engine then either halts the
    run ([Stop.Oscillation]) or freezes the oscillating feedback loop —
    every signal of the SCC that drives the offender — to [X] and lets
    the rest of the circuit continue. *)

type mode =
  | Halt  (** stop the whole run, naming the offending signals *)
  | Degrade
      (** freeze the offending SCC's signals to [X] and continue
          simulating the rest of the circuit *)

type config = {
  window : float;  (** sliding window width, ps *)
  threshold : int;  (** events per window that count as oscillation *)
  wd_mode : mode;
}

val default_window : float
(** 10_000 ps. *)

val default_threshold : int
(** 256 events per window — far above anything a quiescing circuit
    produces, low enough to trip within microseconds of simulated
    oscillation. *)

val config : ?window:float -> ?threshold:int -> ?mode:mode -> unit -> config

type t

val create : config -> nsignals:int -> t

val mode : t -> mode

val record : t -> signal:int -> now:float -> bool
(** Account one committed output event on [signal] at simulated time
    [now] (event times on one signal are non-decreasing).  Returns
    [true] when this signal just crossed the oscillation threshold. *)

val freeze_set : Halotis_netlist.Netlist.t -> signal:int -> int list
(** The signals to freeze when [signal] trips: the outputs of every
    gate in the SCC containing [signal]'s driver (the whole feedback
    loop — freezing just one signal would leave the rest of the ring
    churning).  Falls back to [[signal]] when the driver is not in any
    multi-gate SCC. *)

val offender_names : Halotis_netlist.Netlist.t -> int list -> string list
(** Sorted signal names for a freeze set, for messages and
    [Stop.Oscillation]. *)

val suggest_threshold : ?window:float -> scc_gates:int -> unit -> int
(** A trip threshold tuned to a feedback loop of [scc_gates] gates
    (e.g. the size of a preflight NL008 finding's SCC): half the event
    rate a ring of that size sustains per [window] (default
    {!default_window}), floored at 16.  Smaller loops oscillate faster,
    so they get a {e higher} suggested threshold — the suggestion stays
    comfortably between real oscillation and quiescing activity. *)
