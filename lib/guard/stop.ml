module Json = Halotis_util.Json

type t =
  | Completed
  | Event_budget of int
  | Wall_clock of float
  | Queue_cap of int
  | Sim_time of float
  | Transition_cap of int
  | Oscillation of string list

let completed = function Completed -> true | _ -> false

let to_string = function
  | Completed -> "completed"
  | Event_budget n -> Printf.sprintf "event-budget(%d)" n
  | Wall_clock s -> Printf.sprintf "wall-clock(%gs)" s
  | Queue_cap n -> Printf.sprintf "queue-cap(%d)" n
  | Sim_time t -> Printf.sprintf "sim-time(%gps)" t
  | Transition_cap n -> Printf.sprintf "transition-cap(%d)" n
  | Oscillation names -> Printf.sprintf "oscillation(%s)" (String.concat "," names)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let to_json = function
  | Completed -> Json.Null
  | Event_budget n ->
      Json.Obj [ ("reason", Json.Str "event-budget"); ("limit", Json.Num (float_of_int n)) ]
  | Wall_clock s -> Json.Obj [ ("reason", Json.Str "wall-clock"); ("limit", Json.Num s) ]
  | Queue_cap n ->
      Json.Obj [ ("reason", Json.Str "queue-cap"); ("limit", Json.Num (float_of_int n)) ]
  | Sim_time t -> Json.Obj [ ("reason", Json.Str "sim-time"); ("limit", Json.Num t) ]
  | Transition_cap n ->
      Json.Obj
        [ ("reason", Json.Str "transition-cap"); ("limit", Json.Num (float_of_int n)) ]
  | Oscillation names ->
      Json.Obj
        [
          ("reason", Json.Str "oscillation");
          ("signals", Json.Arr (List.map (fun n -> Json.Str n) names));
        ]

let exit_code = function
  | Completed -> 0
  | Event_budget _ | Wall_clock _ | Queue_cap _ | Sim_time _ | Transition_cap _ -> 3
  | Oscillation _ -> 4

let degraded_exit_code = 5

let worst_exit_code codes =
  (* hard errors (anything outside the 0/3/4/5 contract) dominate, then
     degradation (quarantined work), then oscillation, then budget
     trips; 0 only when every contributor completed *)
  let severity = function 0 -> 0 | 3 -> 1 | 4 -> 2 | 5 -> 3 | _ -> 4 in
  List.fold_left (fun acc c -> if severity c > severity acc then c else acc) 0 codes
