module Json = Halotis_util.Json

type severity = Error | Warning | Note

type t = {
  severity : severity;
  code : string;
  file : string option;
  line : int option;
  message : string;
  hint : string option;
}

exception Fail of t

let make ?(severity = Error) ?file ?line ?hint ~code message =
  { severity; code; file; line; message; hint }

let fail ?file ?line ?hint ~code message =
  raise (Fail (make ?file ?line ?hint ~code message))

let severity_string = function Error -> "error" | Warning -> "warning" | Note -> "note"

let to_string t =
  let b = Buffer.create 80 in
  Buffer.add_string b (severity_string t.severity);
  Buffer.add_char b '[';
  Buffer.add_string b t.code;
  Buffer.add_string b "]: ";
  (match t.file with
  | Some f ->
      Buffer.add_string b f;
      (match t.line with
      | Some l ->
          Buffer.add_char b ':';
          Buffer.add_string b (string_of_int l)
      | None -> ());
      Buffer.add_string b ": "
  | None -> ());
  Buffer.add_string b t.message;
  (match t.hint with
  | Some h ->
      Buffer.add_string b "\n  hint: ";
      Buffer.add_string b h
  | None -> ());
  Buffer.contents b

let pp fmt t = Format.pp_print_string fmt (to_string t)

let to_json t =
  let opt k f v rest = match v with None -> rest | Some x -> (k, f x) :: rest in
  Json.Obj
    (("severity", Json.Str (severity_string t.severity))
    :: ("code", Json.Str t.code)
    :: opt "file" (fun f -> Json.Str f) t.file
         (opt "line"
            (fun l -> Json.Num (float_of_int l))
            t.line
            (("message", Json.Str t.message)
            :: opt "hint" (fun h -> Json.Str h) t.hint [])))
