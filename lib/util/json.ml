type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- emitter --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string ?(indent = true) v =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_string f)
    | Str s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (key, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape_string buf key;
            Buffer.add_string buf (if indent then ": " else ":");
            emit (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* --- parser --- *)

type parse_error = { pe_offset : int; pe_msg : string }

let parse_error_to_string e = Printf.sprintf "%s at offset %d" e.pe_msg e.pe_offset

exception Bad of int * string

let parse_strict text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" ch)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = text.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub text !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
             | Some code -> utf8_of_code buf code
             | None -> fail "bad \\u escape")
         | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (key, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error { pe_offset = !pos; pe_msg = "trailing garbage" } else Ok v
  with Bad (at, msg) -> Error { pe_offset = at; pe_msg = msg }

let parse text = Result.map_error parse_error_to_string (parse_strict text)

(* --- newline-delimited streams --- *)

module Lines = struct
  type reader = {
    refill : bytes -> int;  (* 0 = end of stream *)
    chunk : bytes;
    mutable acc : string;  (* bytes read but not yet consumed *)
    mutable eof : bool;
  }

  let of_channel ic =
    {
      refill = (fun b -> input ic b 0 (Bytes.length b));
      chunk = Bytes.create 4096;
      acc = "";
      eof = false;
    }

  let of_string s =
    { refill = (fun _ -> 0); chunk = Bytes.create 1; acc = s; eof = true }

  let strip_cr line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

  let rec next r =
    match String.index_opt r.acc '\n' with
    | Some i ->
        let line = String.sub r.acc 0 i in
        r.acc <- String.sub r.acc (i + 1) (String.length r.acc - i - 1);
        Some (strip_cr line)
    | None ->
        if r.eof then None
        else begin
          let k = r.refill r.chunk in
          if k = 0 then r.eof <- true
          else r.acc <- r.acc ^ Bytes.sub_string r.chunk 0 k;
          next r
        end

  let leftover r = r.acc

  let fold r ~init ~f =
    let rec go acc = match next r with None -> acc | Some l -> go (f acc l) in
    go init

  let to_list r = List.rev (fold r ~init:[] ~f:(fun acc l -> l :: acc))
end

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr items -> items | _ -> []
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
