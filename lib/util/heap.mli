(** Binary min-heap with removable entries and deterministic ordering.

    Every insertion returns a handle that supports O(log n) removal —
    what Fig. 4's "delete Ej-1" cancellation needs when implemented
    eagerly.  The simulation engines themselves use the {!Unboxed}
    specialisation below with lazy (tombstone) cancellation; this boxed
    polymorphic heap remains the general-purpose / reference
    implementation (the equivalence suite's reference kernels are built
    on it).

    Entries are ordered by their [float] key; ties are broken by the
    explicit [~rank] when one is supplied at insertion, else by
    insertion order (FIFO).  Either way the order is a strict total
    order, which makes simulations deterministic; an {e intrinsic} rank
    (one derived from the entry's identity rather than from history)
    additionally makes the pop order reproducible across runs that
    insert the same entries in different orders — what cone
    re-simulation needs to replay a full run's tie resolution. *)

type 'a t
(** A heap holding payloads of type ['a]. *)

type 'a handle
(** A handle onto an inserted entry, usable to remove it later. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** Number of live entries. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val insert : 'a t -> key:float -> ?rank:int -> 'a -> 'a handle
(** [insert h ~key v] adds [v] with priority [key] and returns its
    handle.  [rank] overrides the FIFO tie-break stamp; mixing ranked
    and unranked insertions in one heap interleaves the two rank
    spaces and is almost never what you want. *)

val pop_min : 'a t -> (float * 'a) option
(** [pop_min h] removes and returns the entry with the smallest key
    (FIFO among equal keys), or [None] if the heap is empty. *)

val peek_min : 'a t -> (float * 'a) option
(** [peek_min h] is like {!pop_min} without removing the entry. *)

val remove : 'a t -> 'a handle -> bool
(** [remove h hd] deletes the entry behind [hd].  Returns [false] when
    the entry was already popped or removed (removal is idempotent). *)

val mem : 'a t -> 'a handle -> bool
(** [mem h hd] is true while the entry behind [hd] is still queued. *)

val key_of : 'a t -> 'a handle -> float option
(** [key_of h hd] is the key of a still-queued entry. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** [to_sorted_list h] drains nothing: returns the live entries in pop
    order.  O(n log n); intended for tests and debugging. *)

(** Structure-of-arrays specialisation for the simulation hot path.

    The polymorphic heap above stores one boxed record per entry, so
    every sift comparison chases a pointer before it can read the key.
    [Unboxed] keeps the keys in a flat [float array] (unboxed by the
    OCaml runtime), with parallel arrays for the insertion stamps and
    the payloads, arranged as a 4-ary tree: sift operations touch only
    contiguous unboxed scalars, at half the depth of a binary heap.
    Payloads are plain [int]s — engines store pool-slot indices — so
    insertion and popping never allocate and sifting carries no write
    barrier.

    Ordering is identical to the boxed heap: ascending key, with ties
    broken by the explicit [~rank] when supplied, else FIFO.  There is
    no entry removal — engines that cancel lazily (tombstone flags on
    the payload) never need it. *)
module Unboxed : sig
  type t

  type handle = int
  (** The entry's insertion stamp.  Valid only for the heap that
      returned it. *)

  val create : ?capacity:int -> unit -> t
  (** [create ()] is a fresh empty heap; [capacity] pre-sizes the
      arrays. *)

  val length : t -> int
  val is_empty : t -> bool

  val insert : t -> key:float -> ?rank:int -> int -> handle
  (** [rank] overrides the FIFO tie-break stamp (see the boxed
      {!insert}). *)

  val min_key : t -> float
  (** Key of the next entry to pop, without allocation.
      @raise Invalid_argument on an empty heap. *)

  val pop : t -> int
  (** Removes and returns the payload with the smallest key (FIFO among
      equal keys), without allocating.  Pair with {!min_key} when the
      key is also needed.
      @raise Invalid_argument on an empty heap. *)

  val pop_min : t -> (float * int) option
  (** Allocating convenience wrapper over {!min_key} + {!pop}. *)

  val to_sorted_list : t -> (float * int) list
  (** Live entries in pop order; O(n log n), for tests and debugging. *)
end
