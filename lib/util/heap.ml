(* Array-based binary heap.  Each entry records its current array index
   so handles can remove it in O(log n).  [seq] is the tie-break rank:
   the caller's [~rank] when given, else a monotonically increasing
   insertion stamp (FIFO among equal keys). *)

type 'a entry = {
  key : float;
  seq : int;
  value : 'a;
  mutable index : int; (* -1 once popped or removed *)
}

type 'a handle = 'a entry

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let length h = h.size
let is_empty h = h.size = 0

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap h i j =
  let a = h.data.(i) and b = h.data.(j) in
  h.data.(i) <- b;
  h.data.(j) <- a;
  a.index <- j;
  b.index <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < h.size && entry_lt h.data.(left) h.data.(i) then left else i in
  let smallest =
    if right < h.size && entry_lt h.data.(right) h.data.(smallest) then right else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let grow h =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let dummy = h.data.(0) in
    let data = Array.make (max 8 (2 * capacity)) dummy in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let insert h ~key ?rank value =
  let seq = match rank with Some r -> r | None -> h.next_seq in
  let entry = { key; seq; value; index = h.size } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 8 entry else grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1);
  entry

(* Remove the entry currently stored at index [i]. *)
let remove_at h i =
  let entry = h.data.(i) in
  entry.index <- -1;
  h.size <- h.size - 1;
  if i < h.size then begin
    let last = h.data.(h.size) in
    h.data.(i) <- last;
    last.index <- i;
    (* The moved entry may need to travel either way. *)
    sift_up h i;
    sift_down h last.index
  end

let pop_min h =
  if h.size = 0 then None
  else begin
    let entry = h.data.(0) in
    remove_at h 0;
    Some (entry.key, entry.value)
  end

let peek_min h = if h.size = 0 then None else Some (h.data.(0).key, h.data.(0).value)

let mem _h handle = handle.index >= 0

let remove h handle =
  if handle.index < 0 then false
  else begin
    assert (h.data.(handle.index) == handle);
    remove_at h handle.index;
    true
  end

let key_of _h handle = if handle.index >= 0 then Some handle.key else None

let to_sorted_list h =
  let live = Array.sub h.data 0 h.size in
  let copy = Array.to_list live in
  let compare_entry a b =
    match Float.compare a.key b.key with 0 -> Int.compare a.seq b.seq | c -> c
  in
  List.map (fun e -> (e.key, e.value)) (List.sort compare_entry copy)

(* Structure-of-arrays variant: keys live in a flat float array, so the
   sift loops read unboxed floats from contiguous memory.  [ids.(i)]
   breaks key ties: the caller's [~rank] when given, else an insertion
   stamp (FIFO).  Payloads are plain ints (engines store pool-slot
   indices), so sifting moves immediates with no write barrier and
   insertion never allocates.

   The tree is 4-ary: half the depth of a binary heap, and the four
   children of a node occupy one cache line of the keys array, so a
   sift-down level costs a single line fetch.  Heap shape does not
   affect observable behaviour — (key, id) is a strict total order, so
   every correct heap pops the same sequence. *)
module Unboxed = struct
  type t = {
    mutable keys : float array;
    mutable ids : int array;
    mutable vals : int array; (* only the first [size] slots are live *)
    mutable size : int;
    mutable next_id : int;
  }

  type handle = int

  let create ?(capacity = 0) () =
    {
      keys = Array.make capacity 0.;
      ids = Array.make capacity 0;
      vals = Array.make capacity 0;
      size = 0;
      next_id = 0;
    }

  let length h = h.size
  let is_empty h = h.size = 0

  (* (key, id) of slot [i] precedes (k, id). *)
  let slot_lt h i k id =
    let ki = h.keys.(i) in
    ki < k || (ki = k && h.ids.(i) < id)

  (* Hole-based sifts: the displaced entry is held in registers and
     written exactly once, halving the stores of swap-based sifting. *)
  let sift_up h start k id v =
    let i = ref start in
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 4 in
      if slot_lt h parent k id then continue := false
      else begin
        h.keys.(!i) <- h.keys.(parent);
        h.ids.(!i) <- h.ids.(parent);
        h.vals.(!i) <- h.vals.(parent);
        i := parent
      end
    done;
    h.keys.(!i) <- k;
    h.ids.(!i) <- id;
    h.vals.(!i) <- v

  let sift_down h start k id v =
    let i = ref start in
    let continue = ref true in
    while !continue do
      let first = (4 * !i) + 1 in
      if first >= h.size then continue := false
      else begin
        let last = min (first + 3) (h.size - 1) in
        let child = ref first in
        for c = first + 1 to last do
          if
            h.keys.(c) < h.keys.(!child)
            || (h.keys.(c) = h.keys.(!child) && h.ids.(c) < h.ids.(!child))
          then child := c
        done;
        let child = !child in
        if slot_lt h child k id then begin
          h.keys.(!i) <- h.keys.(child);
          h.ids.(!i) <- h.ids.(child);
          h.vals.(!i) <- h.vals.(child);
          i := child
        end
        else continue := false
      end
    done;
    h.keys.(!i) <- k;
    h.ids.(!i) <- id;
    h.vals.(!i) <- v

  let grow h =
    let capacity = Array.length h.keys in
    if h.size = capacity then begin
      let cap = max 8 (2 * capacity) in
      let keys = Array.make cap 0. and ids = Array.make cap 0 and vals = Array.make cap 0 in
      Array.blit h.keys 0 keys 0 h.size;
      Array.blit h.ids 0 ids 0 h.size;
      Array.blit h.vals 0 vals 0 h.size;
      h.keys <- keys;
      h.ids <- ids;
      h.vals <- vals
    end

  let insert h ~key ?rank v =
    grow h;
    let id = match rank with Some r -> r | None -> h.next_id in
    h.next_id <- h.next_id + 1;
    h.size <- h.size + 1;
    sift_up h (h.size - 1) key id v;
    id

  let min_key h = if h.size = 0 then invalid_arg "Heap.Unboxed.min_key: empty" else h.keys.(0)

  let pop h =
    if h.size = 0 then invalid_arg "Heap.Unboxed.pop: empty";
    let v = h.vals.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then
      sift_down h 0 h.keys.(h.size) h.ids.(h.size) h.vals.(h.size);
    v

  let pop_min h =
    if h.size = 0 then None
    else begin
      (* read the key before [pop] restructures the root *)
      let k = h.keys.(0) in
      Some (k, pop h)
    end

  let to_sorted_list h =
    let entries = Array.init h.size (fun i -> (h.keys.(i), h.ids.(i), h.vals.(i))) in
    Array.sort
      (fun (ka, ia, _) (kb, ib, _) ->
        match Float.compare ka kb with 0 -> Int.compare ia ib | c -> c)
      entries;
    Array.fold_right (fun (k, _, v) acc -> (k, v) :: acc) entries []
end
