(** A minimal JSON value type with an emitter and a parser — enough for
    the machine-parseable report documents ([halotis lint --format
    json], [halotis faults --format json]) and for the test suite to
    round-trip them, without pulling an external dependency into the
    toolchain image. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialises; [indent] (default true) pretty-prints with two-space
    indentation.  Strings are escaped per RFC 8259; integral numbers
    print without a decimal point. *)

val parse : string -> (t, string) result
(** Recursive-descent parser for the subset emitted by {!to_string}
    plus standard escapes (including [\uXXXX], encoded to UTF-8).
    Errors carry a character offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val to_list : t -> t list
(** Elements of an [Arr]; [[]] otherwise. *)

val to_float : t -> float option
val to_str : t -> string option
