(** A minimal JSON value type with an emitter and a parser — enough for
    the machine-parseable report documents ([halotis lint --format
    json], [halotis faults --format json]) and for the test suite to
    round-trip them, without pulling an external dependency into the
    toolchain image. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialises; [indent] (default true) pretty-prints with two-space
    indentation.  Strings are escaped per RFC 8259; integral numbers
    print without a decimal point. *)

type parse_error = {
  pe_offset : int;  (** byte offset of the defect *)
  pe_msg : string;  (** e.g. ["unterminated string"], ["trailing garbage"] *)
}
(** A structured parse failure — what a wire peer gets back instead of
    a best-effort value.  Unterminated strings, truncated escapes and
    garbage after the value are all hard errors. *)

val parse_error_to_string : parse_error -> string
(** ["<msg> at offset <n>"]. *)

val parse_strict : string -> (t, parse_error) result
(** Recursive-descent parser for the subset emitted by {!to_string}
    plus standard escapes (including [\uXXXX], encoded to UTF-8).
    Rejects anything that is not exactly one JSON value: an
    unterminated string or a value followed by trailing bytes is an
    [Error], never a truncated [Ok]. *)

val parse : string -> (t, string) result
(** {!parse_strict} with the error rendered by
    {!parse_error_to_string}. *)

(** Newline-delimited streams — the framing shared by the [halotis
    serve] wire protocol and the fault-journal loader.  A {!Lines.reader}
    yields complete ['\n']-terminated lines (terminator stripped, a
    trailing ['\r'] too); a final unterminated fragment — a torn write,
    a peer dying mid-request — is never yielded as a line and stays
    readable via {!Lines.leftover}. *)
module Lines : sig
  type reader

  val of_channel : in_channel -> reader
  (** Reads incrementally (blocks only for the next available chunk),
      so it serves interactive transports as well as files. *)

  val of_string : string -> reader

  val next : reader -> string option
  (** The next complete line, [None] at end of stream. *)

  val leftover : reader -> string
  (** After {!next} returns [None]: the unterminated tail, [""] when
      the stream ended cleanly. *)

  val fold : reader -> init:'a -> f:('a -> string -> 'a) -> 'a
  val to_list : reader -> string list
end

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val to_list : t -> t list
(** Elements of an [Arr]; [[]] otherwise. *)

val to_float : t -> float option
val to_str : t -> string option
