(** Splicing a SET pulse into a simulation.

    A radiation-induced transient is modelled as two opposed linear
    ramps [width] apart, sharing one [slope]: the node is pulled
    towards the opposite rail and released.  When [width < slope] the
    pulse never reaches the far rail — a runt whose survival through
    the fanout cone is exactly what the degradation model decides. *)

type pulse = {
  width : Halotis_util.Units.time;  (** leading-to-trailing edge separation, ps *)
  slope : Halotis_util.Units.time;  (** full-swing time of both ramps, ps *)
}

val pulse : ?slope:Halotis_util.Units.time -> width:Halotis_util.Units.time -> unit -> pulse
(** Default slope: 100 ps (the conventional input-ramp slope).
    @raise Invalid_argument when [width <= 0] or [slope <= 0]. *)

val transitions :
  at:Halotis_util.Units.time ->
  polarity:Halotis_wave.Transition.polarity ->
  pulse ->
  Halotis_wave.Transition.t list
(** The two ramps of the SET: leading edge at [at], trailing (opposed)
    edge at [at +. width]. *)

val injection : Site.t -> pulse -> Halotis_engine.Sim.injection
(** The site's pulse as an engine-agnostic {!Halotis_engine.Sim}
    injection: any engine run through the facade splices (or, for the
    classic engine, boolean-abstracts) the same two ramps. *)

val iddm_injection : Site.t -> pulse -> Halotis_engine.Iddm.injection
(** The site's pulse in the IDDM engine's native representation. *)

val classic_injection :
  Site.t ->
  pulse ->
  Halotis_netlist.Netlist.signal_id * (Halotis_util.Units.time * bool) list
(** The boolean abstraction for {!Halotis_engine.Classic}: two value
    toggles at the ramps' 50 % instants. *)
