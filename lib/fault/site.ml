module Netlist = Halotis_netlist.Netlist
module Iddm = Halotis_engine.Iddm
module Transition = Halotis_wave.Transition
module Digital = Halotis_wave.Digital
module Waveform = Halotis_wave.Waveform
module Prng = Halotis_util.Prng

type t = {
  st_signal : Netlist.signal_id;
  st_gate : Netlist.gate_id;
  st_polarity : Transition.polarity;
  st_at : float;
}

let compare a b =
  match Int.compare a.st_signal b.st_signal with
  | 0 -> (
      match Float.compare a.st_at b.st_at with
      | 0 ->
          Int.compare
            (match a.st_polarity with Transition.Rising -> 0 | Transition.Falling -> 1)
            (match b.st_polarity with Transition.Rising -> 0 | Transition.Falling -> 1)
      | c -> c)
  | c -> c

let candidates c =
  Array.to_list (Netlist.signals c)
  |> List.filter_map (fun (s : Netlist.signal) ->
         match (s.Netlist.driver, s.Netlist.constant) with
         | Some _, None -> Some s.Netlist.signal_id
         | _ -> None)

let polarity_at ~baseline sid ~at =
  let vdd = Waveform.vdd baseline.Iddm.waveforms.(sid) in
  if Digital.level_at baseline.Iddm.waveforms.(sid) ~vt:(vdd /. 2.) at then
    Transition.Falling
  else Transition.Rising

let of_signal ~baseline sid ~at =
  let c = baseline.Iddm.circuit in
  let gate =
    match (Netlist.signal c sid).Netlist.driver with
    | Some g -> g
    | None -> invalid_arg "Site.of_signal: not a gate output"
  in
  { st_signal = sid; st_gate = gate; st_polarity = polarity_at ~baseline sid ~at; st_at = at }

let exhaustive ~baseline ~times =
  let sites =
    List.concat_map
      (fun sid -> List.map (fun at -> of_signal ~baseline sid ~at) times)
      (candidates baseline.Iddm.circuit)
  in
  List.sort compare sites

let sample ~baseline ~prng ~n ~t0 ~t1 =
  if t1 <= t0 then invalid_arg "Site.sample: empty time window";
  let cands = Array.of_list (candidates baseline.Iddm.circuit) in
  if Array.length cands = 0 then invalid_arg "Site.sample: circuit has no gate outputs";
  List.init n (fun _ ->
      let sid = cands.(Prng.int prng ~bound:(Array.length cands)) in
      let at = t0 +. Prng.float prng ~bound:(t1 -. t0) in
      of_signal ~baseline sid ~at)

let grid ~t0 ~t1 ~points =
  if points <= 0 then invalid_arg "Site.grid: points must be positive";
  let step = (t1 -. t0) /. float_of_int points in
  List.init points (fun i -> t0 +. (step *. (float_of_int i +. 0.5)))

let pp c fmt s =
  Format.fprintf fmt "%s/%s %s @@ %a"
    (Netlist.gate_name c s.st_gate)
    (Netlist.signal_name c s.st_signal)
    (Transition.polarity_to_string s.st_polarity)
    Halotis_util.Units.pp_time s.st_at
