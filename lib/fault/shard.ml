module Stop = Halotis_guard.Stop
module Diag = Halotis_guard.Diag

(* Core-count autodetection for [--jobs 0].  [getconf] is POSIX and
   respects the process's scheduling restrictions on glibc; [sysctl]
   covers the BSDs and macOS, and the /proc/cpuinfo scan is the last
   resort for stripped-down Linux containers.  Never raises — an
   undetectable count degrades to serial.  The parsing is split from
   the process/file plumbing so tests can stub the readers. *)

let parse_core_count line =
  match int_of_string_opt (String.trim line) with
  | Some n when n >= 1 -> Some n
  | _ -> None

let count_cpuinfo_processors contents =
  let n = ref 0 in
  String.split_on_char '\n' contents
  |> List.iter (fun line ->
         if String.length line >= 9 && String.sub line 0 9 = "processor" then incr n);
  if !n > 0 then Some !n else None

let read_command_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (input_line ic) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some l -> Some l
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let read_file_contents path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let detect_cores ?(getconf = fun () -> read_command_line "getconf _NPROCESSORS_ONLN 2>/dev/null")
    ?(sysctl = fun () -> read_command_line "sysctl -n hw.ncpu 2>/dev/null")
    ?(cpuinfo = fun () -> read_file_contents "/proc/cpuinfo") () =
  match Option.bind (getconf ()) parse_core_count with
  | Some n -> n
  | None -> (
      match Option.bind (sysctl ()) parse_core_count with
      | Some n -> n
      | None -> (
          match Option.bind (cpuinfo ()) count_cpuinfo_processors with
          | Some n -> n
          | None -> 1))

let available_cores () = detect_cores ()

let range ~total ~jobs k =
  if total < 0 then invalid_arg "Shard.range: total must be non-negative";
  if jobs <= 0 then invalid_arg "Shard.range: jobs must be positive";
  if k < 0 || k >= jobs then invalid_arg "Shard.range: worker index out of range";
  (k * total / jobs, (k + 1) * total / jobs)

let ranges ~total ~jobs = List.init jobs (fun k -> range ~total ~jobs k)

let journal_path base k = Printf.sprintf "%s.%d" base k
let stderr_path base k = Printf.sprintf "%s.%d.err" base k

let parse_spec s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let k = String.sub s 0 i in
      let n = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt k, int_of_string_opt n) with
      | Some k, Some n when 0 <= k && k < n -> Some (k, n)
      | _ -> None)

let spec_to_string (k, n) = Printf.sprintf "%d/%d" k n

type worker = {
  wk_index : int;
  wk_range : int * int;
  wk_journal : string;
  wk_pid : int;
}

let spawn ?stderr_file ~argv ~index ~range ~journal () =
  let err_fd, close_err =
    match stderr_file with
    | None -> (Unix.stderr, fun () -> ())
    | Some path ->
        let fd =
          Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        (fd, fun () -> Unix.close fd)
  in
  let pid =
    Fun.protect ~finally:close_err (fun () ->
        Unix.create_process Sys.executable_name (Array.of_list argv) Unix.stdin
          Unix.stdout err_fd)
  in
  { wk_index = index; wk_range = range; wk_journal = journal; wk_pid = pid }

(* The last few stderr lines of a dead worker, for replay into the
   supervisor's diagnostic.  Best effort: a missing or empty capture
   file yields []. *)
let stderr_tail ?(lines = 5) path =
  match read_file_contents path with
  | None -> []
  | Some contents ->
      let all =
        String.split_on_char '\n' contents
        |> List.filter (fun l -> String.trim l <> "")
      in
      let n = List.length all in
      List.filteri (fun i _ -> i >= n - lines) all

let wait_all workers =
  List.map
    (fun w ->
      let rec wait () =
        match Unix.waitpid [] w.wk_pid with
        | _, status -> (w, status)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ())
    workers

let status_exit_code = function
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 1

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

let exit_code results =
  Stop.worst_exit_code (List.map (fun (_, st) -> status_exit_code st) results)

let load_merged ~base ~jobs =
  let parts =
    List.filter_map
      (fun k ->
        let path = journal_path base k in
        if Sys.file_exists path then Some (Journal.load path) else None)
      (List.init jobs (fun k -> k))
  in
  if parts = [] then
    Diag.fail ~code:"journal-merge"
      (Printf.sprintf "no shard journal found at %s.0 .. %s.%d" base base (jobs - 1));
  Journal.merge parts
