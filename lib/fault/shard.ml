module Stop = Halotis_guard.Stop
module Diag = Halotis_guard.Diag

(* Core-count autodetection for [--jobs 0].  [getconf] is POSIX and
   respects the process's scheduling restrictions on glibc; the
   /proc/cpuinfo fallback covers systems without it.  Never raises —
   an undetectable count degrades to serial. *)
let available_cores () =
  let from_getconf () =
    try
      let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
      let line = try Some (input_line ic) with End_of_file -> None in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some l -> int_of_string_opt (String.trim l)
      | _ -> None
    with Unix.Unix_error _ | Sys_error _ -> None
  in
  let from_proc () =
    try
      let ic = open_in "/proc/cpuinfo" in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if String.length line >= 9 && String.sub line 0 9 = "processor" then incr n
             done
           with End_of_file -> ());
          if !n > 0 then Some !n else None)
    with Sys_error _ -> None
  in
  match from_getconf () with
  | Some n when n >= 1 -> n
  | _ -> ( match from_proc () with Some n -> n | None -> 1)

let range ~total ~jobs k =
  if total < 0 then invalid_arg "Shard.range: total must be non-negative";
  if jobs <= 0 then invalid_arg "Shard.range: jobs must be positive";
  if k < 0 || k >= jobs then invalid_arg "Shard.range: worker index out of range";
  (k * total / jobs, (k + 1) * total / jobs)

let ranges ~total ~jobs = List.init jobs (fun k -> range ~total ~jobs k)

let journal_path base k = Printf.sprintf "%s.%d" base k

let parse_spec s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let k = String.sub s 0 i in
      let n = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt k, int_of_string_opt n) with
      | Some k, Some n when 0 <= k && k < n -> Some (k, n)
      | _ -> None)

let spec_to_string (k, n) = Printf.sprintf "%d/%d" k n

type worker = {
  wk_index : int;
  wk_range : int * int;
  wk_journal : string;
  wk_pid : int;
}

let spawn ~argv ~index ~range ~journal =
  let pid =
    Unix.create_process Sys.executable_name (Array.of_list argv) Unix.stdin
      Unix.stdout Unix.stderr
  in
  { wk_index = index; wk_range = range; wk_journal = journal; wk_pid = pid }

let wait_all workers =
  List.map
    (fun w ->
      let rec wait () =
        match Unix.waitpid [] w.wk_pid with
        | _, status -> (w, status)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ())
    workers

let status_exit_code = function
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 1

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

let exit_code results =
  Stop.worst_exit_code (List.map (fun (_, st) -> status_exit_code st) results)

let load_merged ~base ~jobs =
  let parts =
    List.filter_map
      (fun k ->
        let path = journal_path base k in
        if Sys.file_exists path then Some (Journal.load path) else None)
      (List.init jobs (fun k -> k))
  in
  if parts = [] then
    Diag.fail ~code:"journal-merge"
      (Printf.sprintf "no shard journal found at %s.0 .. %s.%d" base base (jobs - 1));
  Journal.merge parts
