(** Deterministic Monte Carlo SET fault-injection campaigns.

    A campaign runs one baseline simulation, enumerates injection
    sites from it ({!Site}), re-runs the chosen engine once per site
    with the SET spliced in, and classifies every run:

    - {e propagated} — at least one primary output's edge list differs
      from the baseline: the transient became an observable soft error;
    - {e electrically masked} — the pulse entered the fanout cone but
      died on the way: it was degraded/annulled below threshold
      (IDDM), inertially rejected (classic), or produced only runts
      and cancelled events, and no primary output moved;
    - {e logically masked} — fanout gates evaluated but their other
      input values blocked the pulse (only no-op evaluations beyond
      the baseline).

    When a run shows both electrical and logical evidence, electrical
    masking wins — the taxonomy asks whether the pulse {e could} have
    been stopped by gate values alone, and it could not.

    Identical seeds reproduce identical site lists, verdicts and
    reports byte-for-byte: the only randomness is
    {!Halotis_util.Prng} seeded explicitly, and runs are classified in
    site order. *)

type engine = Halotis_engine.Sim.engine = Ddm | Cdm | Classic_inertial
(** Re-export of the facade's engine type: a campaign config names the
    same engines {!Halotis_engine.Sim.run} dispatches on. *)

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

type outcome =
  | Propagated
  | Electrically_masked
  | Logically_masked
  | Timed_out
      (** the per-site resource budget ({!config.site_budget}) stopped
          the injected run before it finished: no masking verdict can
          be trusted, but the campaign carries on *)

val outcome_to_string : outcome -> string
val outcome_of_string : string -> outcome option

type verdict = {
  vd_site : Site.t;
  vd_outcome : outcome;
  vd_po_edges_delta : int;
      (** net extra primary-output edges vs baseline (0 unless propagated) *)
  vd_first_diff_output : string option;
      (** name of the first differing primary output *)
  vd_stats : Halotis_engine.Stats.t;
      (** injected-run counters minus baseline ({!Halotis_engine.Stats.diff}) *)
  vd_pruned : bool;
      (** the outcome was proven statically and the site never
          simulated; [vd_stats] is all zeros *)
}

type config = {
  engine : engine;
  seed : int;
  n : int;  (** sampled injections when no explicit site list is given *)
  pulse : Inject.pulse;
  t_stop : Halotis_util.Units.time;  (** simulation horizon, ps *)
  window : (Halotis_util.Units.time * Halotis_util.Units.time) option;
      (** injection time window; default [(0, t_stop)] *)
  site_budget : Halotis_guard.Budget.t;
      (** resource budget applied to each {e injected} run (never to
          the baselines); a trip yields a {!Timed_out} verdict instead
          of aborting the campaign *)
  prune : bool;
      (** skip sites whose masking verdict the static survival analysis
          ({!Halotis_sta.Survival}) proves from the baseline alone.
          Pruned sites get the proven outcome with zero delta counters
          and [vd_pruned = true]; taxonomy counts are identical to an
          unpruned campaign.  Silently inert for the classic engine,
          under a finite [site_budget] (where a pruned site could
          otherwise differ from its simulated {!Timed_out} verdict),
          and under a non-empty [overlay] (the survival bounds are
          priced at the nominal corner). *)
  incremental : bool;
      (** answer each site by incremental cone re-simulation
          ({!Halotis_engine.Sim.Cone}) when the graft is provably exact,
          falling back to a full per-site re-run otherwise — verdicts,
          reports and journals are byte-identical either way, only
          [cam_cone] and the wall clock change.  Default on.  Silently
          inert for the classic engine, under a finite [site_budget],
          and for baselines the cone machinery refuses (truncated,
          watchdog-frozen or tie-hazardous).  Overlay-aware: the cone
          prices its compiled circuit at [overlay]'s corner. *)
  overlay : Halotis_tech.Param_overlay.t;
      (** parameter corner {e every} run of the campaign — baselines
          and injected runs alike — prices its coefficients at.  Empty
          (the default) reproduces the nominal campaign
          byte-for-byte.  Monte-Carlo variation campaigns
          ([halotis vary]) run one campaign per sampled overlay. *)
  sites : Site.t list option;
      (** explicit site list overriding the PRNG-sampled one — pass
          the same list to several campaigns to compare engines (or
          corners) on identical strikes *)
  range : (int * int) option;
      (** the global site-index slice [\[lo, hi)] this run owns (the
          shard protocol); [None] covers the whole campaign *)
  completed : verdict list;
      (** verdicts already decided (typically loaded from a
          {!Journal}) — must match the range's leading sites
          one-for-one; only the remaining sites are simulated *)
  quarantined : int list;
      (** global site indices the supervisor gave up on: skipped
          entirely and surfaced in [cam_quarantined] *)
  limit : int option;
      (** cap on {e fresh} sites simulated this call; the campaign is
          then [cam_complete = false] *)
}

val default : config
(** The nominal campaign: DDM, seed 1, 100 injections, a
    150 ps / 100 ps pulse, a 10 000 ps horizon, unlimited per-site
    budget, no static pruning, incremental cone re-simulation on,
    empty overlay, whole range, nothing completed, nothing
    quarantined, no limit.  Override fields with [{ default with ... }]
    or build through {!config}. *)

val config :
  ?engine:engine ->
  ?seed:int ->
  ?n:int ->
  ?pulse:Inject.pulse ->
  ?window:Halotis_util.Units.time * Halotis_util.Units.time ->
  ?site_budget:Halotis_guard.Budget.t ->
  ?prune:bool ->
  ?incremental:bool ->
  ?overlay:Halotis_tech.Param_overlay.t ->
  ?sites:Site.t list ->
  ?range:int * int ->
  ?completed:verdict list ->
  ?quarantined:int list ->
  ?limit:int ->
  t_stop:Halotis_util.Units.time ->
  unit ->
  config
(** {!default} with the horizon set and any field overridden.
    @raise Invalid_argument when [n < 0] or [t_stop <= 0]. *)

type t = {
  cam_circuit : Halotis_netlist.Netlist.t;
  cam_config : config;
  cam_verdicts : verdict list;  (** in site order *)
  cam_baseline_stats : Halotis_engine.Stats.t;
  cam_total_stats : Halotis_engine.Stats.t;
      (** all injected runs merged ({!Halotis_engine.Stats.merge});
          rebuilt from per-verdict deltas so a resumed campaign gets
          the identical total an uninterrupted one does *)
  cam_sites_total : int;  (** sites the {e whole} campaign comprises *)
  cam_complete : bool;
      (** false when [limit] stopped the campaign early — the verdict
          list covers only a prefix of the (range's) sites *)
  cam_range : (int * int) option;
      (** the global index range [\[lo, hi)] this value covers; [None]
          for a whole-campaign run *)
  cam_cone : Halotis_engine.Sim.Cone.totals option;
      (** incremental accounting (exact/fallback site counts, cone
          sizes) when cone re-simulation was armed; [None] when it was
          off or refused.  Never rendered into reports — report bytes
          must not depend on the engine path. *)
  cam_quarantined : (int * Site.t) list;
      (** sites the supervisor quarantined (global index, site), in
          index order: they own no verdict, and the campaign is
          {e degraded} — whole except for exactly this list.  Empty for
          unsupervised campaigns. *)
}

val run :
  ?on_verdict:(int -> verdict -> unit) ->
  config ->
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  drives:(Halotis_netlist.Netlist.signal_id * Halotis_engine.Drive.t) list ->
  t
(** Runs the campaign; every engine run goes through
    {!Halotis_engine.Sim.run}, priced at [config.overlay]'s corner.
    Sites come from [config.sites] when given, otherwise from the
    seeded PRNG sample; they are always enumerated against a DDM
    baseline (the reference levels), whatever [config.engine] simulates
    the strikes.

    Sharding: [config.range = Some (lo, hi)] claims global site
    indices [\[lo, hi)] of the deterministic enumeration — the slice a
    worker process owns.  Verdict indices reported through
    [on_verdict] stay global, so shard journals merge by index
    ({!Journal.merge}).

    Checkpoint/resume: [config.completed] supplies verdicts already
    decided — typically loaded from a {!Journal} — which must match
    the range's leading sites one-for-one; only the remaining sites
    are simulated, so an interrupted-then-resumed campaign returns a
    value byte-identical (through {!Fault_report}) to a
    straight-through one.  [config.quarantined] lists global site
    indices the supervisor gave up on: they are skipped entirely
    (never simulated, never journaled as verdicts) and surface in
    [cam_quarantined]; [completed] then covers the range's leading
    {e non-quarantined} sites.  [config.limit] caps how many {e fresh}
    sites get simulated this call (the campaign is then
    [cam_complete = false]).  [on_verdict] fires after each fresh site
    with its global index — the journaling hook.
    @raise Invalid_argument on an empty window or site list trouble.
    @raise Halotis_guard.Diag.Fail ([journal-mismatch]) when
    [completed] does not match the campaign's site list, or
    ([shard-range]) when [range] exceeds the enumeration. *)

val run_legacy :
  ?sites:Site.t list ->
  ?range:int * int ->
  ?completed:verdict list ->
  ?quarantined:int list ->
  ?limit:int ->
  ?on_verdict:(int -> verdict -> unit) ->
  config ->
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  drives:(Halotis_netlist.Netlist.signal_id * Halotis_engine.Drive.t) list ->
  t
  [@@deprecated
    "use Campaign.run with the per-call knobs (sites/range/completed/\
     quarantined/limit) folded into Campaign.config"]
(** The pre-overlay calling convention: per-call knobs as optional
    arguments overriding whatever the config carries.  Equivalent to
    [run ?on_verdict { cfg with sites; range; completed; quarantined;
    limit }].  Kept for one release. *)

val counts : t -> int * int * int
(** [(propagated, electrically_masked, logically_masked)] —
    {!Timed_out} verdicts are counted by {!timed_out} alone. *)

val pruned_count : t -> int
(** Number of verdicts decided statically ([vd_pruned]). *)

val timed_out : t -> int
(** Number of {!Timed_out} verdicts. *)

val masking_rate : t -> float
(** Fraction of injections that did {e not} propagate; 0 on an empty
    campaign. *)

val vulnerability : t -> (Halotis_netlist.Netlist.gate_id * int) list
(** Gates ranked by number of propagated strikes on their output,
    descending (ties by gate id); gates with none are omitted. *)

val hazard_crosscheck :
  t -> Halotis_sta.Hazard.t -> (verdict * bool) list
(** Each propagated verdict paired with whether the strike instant
    falls inside the victim signal's static arrival-uncertainty window
    ({!Halotis_sta.Hazard.window}) — [false] flags soft errors the
    static analysis gives no timing cover for. *)
