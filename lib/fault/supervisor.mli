(** Fault-tolerant campaign supervision.

    {!Shard} gives a campaign N one-shot workers: spawn, wait, merge.
    One worker dying — OOM kill, node eviction, a site whose injected
    run trips a simulator bug — loses its whole remaining range and
    fails the campaign.  The supervisor replaces that with a
    work-queue of {e chunks} (sub-ranges of the global site
    enumeration, each with its own shard journal) dispatched to a
    bounded pool:

    - {e heartbeats} — supervised workers fsync every verdict and
      maintain a progress cursor ({!Journal.cursor_path}); a worker
      whose cursor stops advancing for [worker_timeout] seconds is
      killed and its chunk re-queued;
    - {e retry with backoff} — a crashed, killed or incompletely
      exited worker's chunk is re-queued after
      [backoff * 2^(attempt-1)] seconds; the journal already holds the
      completed prefix, so the retry resumes at the first unjournaled
      site.  A chunk that fails more than [max_retries] times aborts
      the campaign ([worker-retries]);
    - {e poison quarantine} — the {e blame site} of a failure is the
      first unjournaled site of the chunk.  When the same site is
      blamed [poison_after] consecutive times, the supervisor writes a
      [q] record for it into the chunk journal and moves on: the
      campaign completes {e degraded}
      ({!Halotis_guard.Stop.degraded_exit_code}) instead of failing,
      with the quarantined sites listed explicitly in the report.

    Because every verdict is journaled under its global site index and
    retries replay into the same chunk journal, the merged campaign
    report is byte-identical to a serial [--jobs 1] run — quarantined
    sites are the only permitted delta, and they are enumerated.

    Chunk journals reuse {!Shard.journal_path} naming ([base.ID]), so
    an interrupted supervised campaign — or a legacy one-shot sharded
    one — resumes: {!run} scans existing [base.N] files, adopts their
    header ranges as chunks, and covers any missing indices with fresh
    chunks. *)

type config = {
  sv_jobs : int;  (** worker-pool size *)
  sv_chunk_sites : int;  (** max sites per chunk; [0] = auto (~4/worker) *)
  sv_worker_timeout : float;
      (** seconds without cursor progress before a stall kill *)
  sv_max_retries : int;  (** per-chunk failure cap before aborting *)
  sv_poison_after : int;
      (** consecutive same-site blames before quarantine *)
  sv_backoff : float;  (** base retry delay, seconds (doubles per attempt) *)
  sv_poll_interval : float;  (** pool polling period, seconds *)
}

val config :
  ?chunk_sites:int ->
  ?worker_timeout:float ->
  ?max_retries:int ->
  ?poison_after:int ->
  ?backoff:float ->
  ?poll_interval:float ->
  jobs:int ->
  unit ->
  config
(** Defaults: auto chunk size, 30 s timeout, 10 retries, quarantine
    after 3 consecutive blames, 50 ms base backoff, 20 ms poll.
    @raise Invalid_argument on non-positive [jobs]/[worker_timeout],
    negative [chunk_sites]/[max_retries], or [poison_after < 1]. *)

type outcome = {
  sv_exit_code : int;
      (** {!Halotis_guard.Stop.worst_exit_code} over the final chunk
          exit codes, with {!Halotis_guard.Stop.degraded_exit_code}
          folded in when anything was quarantined.  Recovering a chunk
          after retries is {e not} an error — only final outcomes
          count. *)
  sv_quarantined : int list;  (** quarantined global site indices, sorted *)
  sv_retries : int;  (** total worker failures handled (respawns) *)
  sv_kills : int;  (** stall kills among them *)
  sv_slots : int;
      (** [1 + max chunk id] — pass as [jobs] to {!Shard.load_merged}
          to pick up every chunk journal *)
}

val auto_chunk_sites : total:int -> jobs:int -> int
(** The chunk size [sv_chunk_sites = 0] resolves to: about four chunks
    per worker, at least 1. *)

val plan_chunks : total:int -> chunk_sites:int -> (int * int) list
(** The half-open ranges a fresh (no existing journals) supervised
    campaign splits [\[0, total)] into, in order: every chunk holds
    [chunk_sites] sites except a shorter final one.  Exposed for
    tests.
    @raise Invalid_argument on negative [total] or [chunk_sites < 1]. *)

val run :
  config ->
  total:int ->
  base:string ->
  worker_argv:(range:int * int -> journal:string -> string list) ->
  check:(Journal.header -> unit) ->
  mk_header:(range:int * int -> Journal.header) ->
  ?log:(string -> unit) ->
  unit ->
  outcome
(** Supervises a campaign of [total] global sites.  [worker_argv]
    builds the complete argv (program name at its head) of a worker
    owning [range] and journaling to [journal] — the CLI's [--range]
    worker mode, which must fsync per verdict and maintain the cursor.
    [check] validates a pre-existing chunk journal's header against
    the campaign (raise {!Halotis_guard.Diag.Fail} [journal-mismatch]
    on a stale file); [mk_header] builds the header the supervisor
    uses when it must create a chunk journal itself to write a
    quarantine record.  [log] receives progress and
    [worker-stall]/[site-quarantined] warning lines (default:
    silent); dead workers' stderr capture tails
    ({!Shard.stderr_tail}) are replayed into those warnings.

    On return every chunk journal covers its range (verdicts plus [q]
    records); the caller merges with {!Shard.load_merged}
    [~jobs:outcome.sv_slots].
    @raise Halotis_guard.Diag.Fail ([worker-retries]) when a chunk
    exhausts [sv_max_retries]. *)
