module Transition = Halotis_wave.Transition
module Iddm = Halotis_engine.Iddm
module Sim = Halotis_engine.Sim

type pulse = { width : float; slope : float }

let pulse ?(slope = 100.) ~width () =
  if width <= 0. then invalid_arg "Inject.pulse: width must be positive";
  if slope <= 0. then invalid_arg "Inject.pulse: slope must be positive";
  { width; slope }

let transitions ~at ~polarity p =
  [
    Transition.make ~start:at ~slope_time:p.slope ~polarity;
    Transition.make ~start:(at +. p.width) ~slope_time:p.slope
      ~polarity:(Transition.opposite polarity);
  ]

let injection (site : Site.t) p =
  {
    Sim.inj_signal = site.Site.st_signal;
    inj_ramps = transitions ~at:site.Site.st_at ~polarity:site.Site.st_polarity p;
  }

let iddm_injection (site : Site.t) p =
  {
    Iddm.inj_signal = site.Site.st_signal;
    inj_transitions = transitions ~at:site.Site.st_at ~polarity:site.Site.st_polarity p;
  }

let classic_injection (site : Site.t) p =
  let mid = p.slope /. 2. in
  let leading = site.Site.st_polarity = Transition.Rising in
  ( site.Site.st_signal,
    [
      (site.Site.st_at +. mid, leading);
      (site.Site.st_at +. p.width +. mid, not leading);
    ] )
