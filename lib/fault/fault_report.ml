module Netlist = Halotis_netlist.Netlist
module Stats = Halotis_engine.Stats
module Transition = Halotis_wave.Transition
module Json = Halotis_util.Json

(* Shared with the simulate --json output; emits the same seven
   counters this module always did, plus a [stopped_by] member only for
   runs a guardrail stopped. *)
let stats_json = Stats.to_json

let verdict_json c (v : Campaign.verdict) =
  let site = v.Campaign.vd_site in
  Json.Obj
    ([
       ("gate", Json.Str (Netlist.gate_name c site.Site.st_gate));
       ("signal", Json.Str (Netlist.signal_name c site.Site.st_signal));
       ("at", Json.Num site.Site.st_at);
       ("polarity", Json.Str (Transition.polarity_to_string site.Site.st_polarity));
       ("outcome", Json.Str (Campaign.outcome_to_string v.Campaign.vd_outcome));
       ("po_edges_delta", Json.Num (float_of_int v.Campaign.vd_po_edges_delta));
     ]
    @ (match v.Campaign.vd_first_diff_output with
      | Some name -> [ ("first_diff_output", Json.Str name) ]
      | None -> [])
    @ (if v.Campaign.vd_pruned then [ ("pruned", Json.Bool true) ] else [])
    @ [ ("stats_delta", stats_json v.Campaign.vd_stats) ])

let to_json (t : Campaign.t) =
  let c = t.Campaign.cam_circuit in
  let cfg = t.Campaign.cam_config in
  let propagated, electrical, logical = Campaign.counts t in
  let t0, t1 =
    match cfg.Campaign.window with Some w -> w | None -> (0., cfg.Campaign.t_stop)
  in
  Json.Obj
    [
      ("tool", Json.Str "halotis-faults");
      ("version", Json.Num 1.);
      ("circuit", Json.Str (Netlist.name c));
      ("engine", Json.Str (Campaign.engine_to_string cfg.Campaign.engine));
      ("seed", Json.Num (float_of_int cfg.Campaign.seed));
      ("injections", Json.Num (float_of_int (List.length t.Campaign.cam_verdicts)));
      ("sites_total", Json.Num (float_of_int t.Campaign.cam_sites_total));
      (* pruned/simulated counts live outside "summary" on purpose: the
         taxonomy summary of a pruned campaign must stay byte-identical
         to its unpruned twin's *)
      ("sites_pruned", Json.Num (float_of_int (Campaign.pruned_count t)));
      ( "sites_simulated",
        Json.Num
          (float_of_int
             (List.length t.Campaign.cam_verdicts - Campaign.pruned_count t)) );
      ( "sites_quarantined",
        Json.Num (float_of_int (List.length t.Campaign.cam_quarantined)) );
      ("partial", Json.Bool (not t.Campaign.cam_complete));
      (* always present (false/0/[] when clean) so a supervised campaign
         that recovered every site stays byte-identical to a serial one *)
      ("degraded", Json.Bool (t.Campaign.cam_quarantined <> []));
      ( "pulse",
        Json.Obj
          [
            ("width", Json.Num cfg.Campaign.pulse.Inject.width);
            ("slope", Json.Num cfg.Campaign.pulse.Inject.slope);
          ] );
      ("t_stop", Json.Num cfg.Campaign.t_stop);
      ("window", Json.Arr [ Json.Num t0; Json.Num t1 ]);
      ( "summary",
        Json.Obj
          [
            ("propagated", Json.Num (float_of_int propagated));
            ("electrically_masked", Json.Num (float_of_int electrical));
            ("logically_masked", Json.Num (float_of_int logical));
            ("timed_out", Json.Num (float_of_int (Campaign.timed_out t)));
            ("masking_rate", Json.Num (Campaign.masking_rate t));
          ] );
      ( "vulnerable_gates",
        Json.Arr
          (List.map
             (fun (gid, hits) ->
               Json.Obj
                 [
                   ("gate", Json.Str (Netlist.gate_name c gid));
                   ("propagated", Json.Num (float_of_int hits));
                 ])
             (Campaign.vulnerability t)) );
      ( "quarantined_sites",
        Json.Arr
          (List.map
             (fun (idx, (site : Site.t)) ->
               Json.Obj
                 [
                   ("index", Json.Num (float_of_int idx));
                   ("gate", Json.Str (Netlist.gate_name c site.Site.st_gate));
                   ("signal", Json.Str (Netlist.signal_name c site.Site.st_signal));
                   ("at", Json.Num site.Site.st_at);
                   ( "polarity",
                     Json.Str (Transition.polarity_to_string site.Site.st_polarity)
                   );
                 ])
             t.Campaign.cam_quarantined) );
      ("verdicts", Json.Arr (List.map (verdict_json c) t.Campaign.cam_verdicts));
      ("baseline_stats", stats_json t.Campaign.cam_baseline_stats);
      ("total_stats", stats_json t.Campaign.cam_total_stats);
    ]

let to_string t = Json.to_string (to_json t)

let summary (t : Campaign.t) =
  let propagated, electrical, logical = Campaign.counts t in
  Printf.sprintf "n=%d propagated=%d electrical=%d logical=%d masking-rate=%.2f"
    (List.length t.Campaign.cam_verdicts)
    propagated electrical logical (Campaign.masking_rate t)

let to_text (t : Campaign.t) =
  let c = t.Campaign.cam_circuit in
  let cfg = t.Campaign.cam_config in
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let propagated, electrical, logical = Campaign.counts t in
  let n = List.length t.Campaign.cam_verdicts in
  let pct k = if n = 0 then 0. else 100. *. float_of_int k /. float_of_int n in
  addf "SET fault-injection campaign: %s\n" (Netlist.name c);
  addf "engine %s, seed %d, %d injections, pulse %.0f ps wide / %.0f ps slope\n"
    (Campaign.engine_to_string cfg.Campaign.engine)
    cfg.Campaign.seed n cfg.Campaign.pulse.Inject.width cfg.Campaign.pulse.Inject.slope;
  addf "horizon %.0f ps\n\n" cfg.Campaign.t_stop;
  addf "outcomes:\n";
  addf "  propagated           %4d  (%5.1f%%)\n" propagated (pct propagated);
  addf "  electrically masked  %4d  (%5.1f%%)\n" electrical (pct electrical);
  addf "  logically masked     %4d  (%5.1f%%)\n" logical (pct logical);
  addf "  timed out            %4d  (%5.1f%%)\n" (Campaign.timed_out t)
    (pct (Campaign.timed_out t));
  addf "  masking rate         %.2f\n" (Campaign.masking_rate t);
  let pruned = Campaign.pruned_count t in
  if pruned > 0 then
    addf "  statically pruned    %4d  (%d simulated)\n" pruned (n - pruned);
  if not t.Campaign.cam_complete then
    addf "  PARTIAL: %d of %d sites simulated\n" n t.Campaign.cam_sites_total;
  (match t.Campaign.cam_quarantined with
  | [] -> ()
  | qs ->
      addf "  DEGRADED: %d site%s quarantined by the supervisor\n" (List.length qs)
        (if List.length qs = 1 then "" else "s");
      List.iter
        (fun (idx, site) ->
          addf "    site %d: %s\n" idx (Format.asprintf "%a" (Site.pp c) site))
        qs);
  (match Campaign.vulnerability t with
  | [] -> addf "\nno gate propagated a strike\n"
  | ranked ->
      addf "\nmost vulnerable gates:\n";
      List.iteri
        (fun i (gid, hits) ->
          if i < 10 then addf "  %-16s %d propagated\n" (Netlist.gate_name c gid) hits)
        ranked);
  addf "\nverdicts:\n";
  List.iter
    (fun (v : Campaign.verdict) ->
      addf "  %-20s %s%s%s\n"
        (Format.asprintf "%a" (Site.pp c) v.Campaign.vd_site)
        (Campaign.outcome_to_string v.Campaign.vd_outcome)
        (if v.Campaign.vd_pruned then " [pruned]" else "")
        (match v.Campaign.vd_first_diff_output with
        | Some po -> Printf.sprintf " (first at %s)" po
        | None -> ""))
    t.Campaign.cam_verdicts;
  Buffer.contents buf
