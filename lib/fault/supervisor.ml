module Stop = Halotis_guard.Stop
module Diag = Halotis_guard.Diag

type config = {
  sv_jobs : int;
  sv_chunk_sites : int;
  sv_worker_timeout : float;
  sv_max_retries : int;
  sv_poison_after : int;
  sv_backoff : float;
  sv_poll_interval : float;
}

let config ?(chunk_sites = 0) ?(worker_timeout = 30.) ?(max_retries = 10)
    ?(poison_after = 3) ?(backoff = 0.05) ?(poll_interval = 0.02) ~jobs () =
  if jobs < 1 then invalid_arg "Supervisor.config: jobs must be positive";
  if chunk_sites < 0 then invalid_arg "Supervisor.config: chunk_sites must be >= 0";
  if worker_timeout <= 0. then
    invalid_arg "Supervisor.config: worker_timeout must be positive";
  if max_retries < 0 then invalid_arg "Supervisor.config: max_retries must be >= 0";
  if poison_after < 1 then invalid_arg "Supervisor.config: poison_after must be >= 1";
  {
    sv_jobs = jobs;
    sv_chunk_sites = chunk_sites;
    sv_worker_timeout = worker_timeout;
    sv_max_retries = max_retries;
    sv_poison_after = poison_after;
    sv_backoff = backoff;
    sv_poll_interval = poll_interval;
  }

type outcome = {
  sv_exit_code : int;
  sv_quarantined : int list;
  sv_retries : int;
  sv_kills : int;
  sv_slots : int;
}

(* ---- chunk planning ------------------------------------------------ *)

let auto_chunk_sites ~total ~jobs =
  (* ~4 chunks per worker keeps the lost-work bound small without
     drowning in process spawns *)
  max 1 ((total + (4 * jobs) - 1) / (4 * jobs))

let split_run ~chunk_sites (lo, hi) =
  let rec go acc lo =
    if lo >= hi then List.rev acc
    else
      let mid = min hi (lo + chunk_sites) in
      go ((lo, mid) :: acc) mid
  in
  go [] lo

let plan_chunks ~total ~chunk_sites =
  if total < 0 then invalid_arg "Supervisor.plan_chunks: total must be >= 0";
  if chunk_sites < 1 then invalid_arg "Supervisor.plan_chunks: chunk_sites must be >= 1";
  split_run ~chunk_sites (0, total)

(* Runs of [\[0, total)] not covered by any of [ranges]. *)
let uncovered ~total ranges =
  let covered = Array.make (max total 1) false in
  List.iter
    (fun (lo, hi) ->
      for i = max 0 lo to min total hi - 1 do
        covered.(i) <- true
      done)
    ranges;
  let runs = ref [] in
  let start = ref None in
  for i = 0 to total - 1 do
    match (!start, covered.(i)) with
    | None, false -> start := Some i
    | Some s, true ->
        runs := (s, i) :: !runs;
        start := None
    | _ -> ()
  done;
  (match !start with Some s -> runs := (s, total) :: !runs | None -> ());
  List.rev !runs

(* ---- supervisor state ---------------------------------------------- *)

type chunk = {
  ch_id : int;
  ch_range : int * int;
  ch_journal : string;
  mutable ch_retries : int;
  mutable ch_last_blame : int option;
  mutable ch_streak : int;
  mutable ch_ready_at : float;
}

type running = {
  rn_chunk : chunk;
  rn_worker : Shard.worker;
  mutable rn_last_cursor : int;
  mutable rn_last_progress : float;
}

let mk_chunk ~base ~id ~range =
  {
    ch_id = id;
    ch_range = range;
    ch_journal = Shard.journal_path base id;
    ch_retries = 0;
    ch_last_blame = None;
    ch_streak = 0;
    ch_ready_at = 0.;
  }

(* Existing [base.N] chunk journals from an interrupted supervised (or
   legacy sharded) campaign: their header ranges become resumed chunks.
   Unparseable files (a worker died inside the header write) carry no
   data and are removed so the final merge never trips over them. *)
let scan_existing ~base ~total ~check =
  let dir = Filename.dirname base in
  let name = Filename.basename base in
  let prefix = name ^ "." in
  let plen = String.length prefix in
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list files
  |> List.filter_map (fun f ->
         if String.length f <= plen || String.sub f 0 plen <> prefix then None
         else
           match int_of_string_opt (String.sub f plen (String.length f - plen)) with
           | None -> None
           | Some id -> (
               let path = Filename.concat dir f in
               match Journal.load path with
               | hdr, _ ->
                   check hdr;
                   (match hdr.Journal.jh_range with
                   | Some (lo, hi) when 0 <= lo && lo < hi && hi <= total ->
                       Some (id, (lo, hi))
                   | _ -> None)
               | exception Diag.Fail _ ->
                   (try Sys.remove path with Sys_error _ -> ());
                   None))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let plan ~base ~total ~chunk_sites ~check =
  let existing = scan_existing ~base ~total ~check in
  let used = List.map fst existing in
  let fresh_runs = uncovered ~total (List.map snd existing) in
  let fresh_ranges = List.concat_map (split_run ~chunk_sites) fresh_runs in
  let next_id = ref 0 in
  let fresh_id () =
    while List.mem !next_id used do
      incr next_id
    done;
    let id = !next_id in
    incr next_id;
    id
  in
  List.map (fun (id, range) -> mk_chunk ~base ~id ~range) existing
  @ List.map (fun range -> mk_chunk ~base ~id:(fresh_id ()) ~range) fresh_ranges

(* ---- journal inspection -------------------------------------------- *)

(* The length of the contiguous entry prefix a chunk journal holds,
   i.e. the first unjournaled (blame) index is [lo + prefix].  A
   missing or unloadable journal holds nothing. *)
let journal_prefix ~range:(lo, hi) path =
  match Journal.load path with
  | _, entries ->
      let n = ref 0 in
      List.iter (fun (idx, _) -> if idx = lo + !n then incr n) entries;
      min !n (hi - lo)
  | exception Diag.Fail _ -> 0

let chunk_complete chunk =
  let lo, hi = chunk.ch_range in
  journal_prefix ~range:chunk.ch_range chunk.ch_journal = hi - lo

(* ---- the supervision loop ------------------------------------------ *)

let warn log ~code ?hint msg =
  log (Diag.to_string (Diag.make ~severity:Diag.Warning ?hint ~code msg))

let run cfg ~total ~base ~worker_argv ~check ~mk_header ?(log = fun _ -> ()) () =
  let chunks = plan ~base ~total ~chunk_sites:cfg.sv_chunk_sites ~check in
  let slots =
    1 + List.fold_left (fun acc c -> max acc c.ch_id) (-1) chunks
  in
  let queue = ref chunks in
  let running = ref [] in
  let done_codes = ref [] in
  let quarantined = ref [] in
  let retries = ref 0 in
  let kills = ref 0 in
  let spawn chunk =
    let lo, hi = chunk.ch_range in
    let argv = worker_argv ~range:chunk.ch_range ~journal:chunk.ch_journal in
    let w =
      Shard.spawn
        ~stderr_file:(Shard.stderr_path base chunk.ch_id)
        ~argv ~index:chunk.ch_id ~range:chunk.ch_range ~journal:chunk.ch_journal
        ()
    in
    log
      (Printf.sprintf "supervisor: chunk %d [%d,%d) -> pid %d%s" chunk.ch_id lo hi
         w.Shard.wk_pid
         (if chunk.ch_retries > 0 then Printf.sprintf " (retry %d)" chunk.ch_retries
          else ""));
    running :=
      {
        rn_chunk = chunk;
        rn_worker = w;
        rn_last_cursor = -1;
        rn_last_progress = Unix.gettimeofday ();
      }
      :: !running
  in
  let quarantine chunk blame =
    (* the supervisor owns the q record: create the journal if the
       workers never even wrote the header *)
    let w =
      if Sys.file_exists chunk.ch_journal then
        match Journal.load chunk.ch_journal with
        | _ -> Journal.open_append chunk.ch_journal
        | exception Diag.Fail _ ->
            Journal.open_new chunk.ch_journal (mk_header ~range:chunk.ch_range)
      else Journal.open_new chunk.ch_journal (mk_header ~range:chunk.ch_range)
    in
    Journal.write_quarantine w blame;
    Journal.close w;
    quarantined := blame :: !quarantined;
    warn log ~code:"site-quarantined"
      ~hint:"the report is degraded: the site is listed under quarantined_sites"
      (Printf.sprintf
         "site %d crashed or hung %d consecutive workers and was quarantined" blame
         chunk.ch_streak);
    chunk.ch_last_blame <- None;
    chunk.ch_streak <- 0;
    (* the identified cause is gone: give the chunk a fresh retry budget *)
    chunk.ch_retries <- 0
  in
  let handle_failure ~reason chunk =
    incr retries;
    chunk.ch_retries <- chunk.ch_retries + 1;
    let lo, hi = chunk.ch_range in
    let prefix = journal_prefix ~range:chunk.ch_range chunk.ch_journal in
    let blame = lo + prefix in
    let tail = Shard.stderr_tail (Shard.stderr_path base chunk.ch_id) in
    let tail_s =
      if tail = [] then ""
      else Printf.sprintf "; worker stderr: %s" (String.concat " | " tail)
    in
    warn log ~code:"worker-stall"
      (Printf.sprintf "chunk %d [%d,%d) worker %s at site %d (attempt %d)%s"
         chunk.ch_id lo hi reason blame chunk.ch_retries tail_s);
    if blame < hi then begin
      (match chunk.ch_last_blame with
      | Some b when b = blame -> chunk.ch_streak <- chunk.ch_streak + 1
      | _ -> chunk.ch_streak <- 1);
      chunk.ch_last_blame <- Some blame;
      if chunk.ch_streak >= cfg.sv_poison_after then quarantine chunk blame
    end
    else begin
      (* journal already covers the range: the worker died after the
         work was durable, so the retry only has to merge and exit *)
      chunk.ch_last_blame <- None;
      chunk.ch_streak <- 0
    end;
    if chunk.ch_retries > cfg.sv_max_retries then begin
      (* don't orphan the rest of the pool on the way out *)
      List.iter
        (fun r ->
          (try Unix.kill r.rn_worker.Shard.wk_pid Sys.sigkill
           with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] r.rn_worker.Shard.wk_pid)
          with Unix.Unix_error _ -> ())
        !running;
      Diag.fail ~code:"worker-retries"
        ~hint:"raise --max-retries or investigate the worker stderr capture"
        (Printf.sprintf "chunk %d [%d,%d) failed %d times; giving up%s" chunk.ch_id
           lo hi chunk.ch_retries tail_s)
    end;
    let delay =
      if chunk.ch_retries = 0 then 0.
      else cfg.sv_backoff *. (2. ** float_of_int (min (chunk.ch_retries - 1) 6))
    in
    chunk.ch_ready_at <- Unix.gettimeofday () +. delay;
    queue := !queue @ [ chunk ]
  in
  let reap r status =
    running := List.filter (fun r' -> r' != r) !running;
    match status with
    | Unix.WEXITED n when n = 0 || n = 3 || n = 4 ->
        if chunk_complete r.rn_chunk then done_codes := n :: !done_codes
        else
          handle_failure
            ~reason:
              (Printf.sprintf "exited %d with an incomplete journal" n)
            r.rn_chunk
    | status ->
        handle_failure
          ~reason:(Printf.sprintf "died (%s)" (Shard.status_to_string status))
          r.rn_chunk
  in
  let kill_stalled r =
    incr kills;
    (try Unix.kill r.rn_worker.Shard.wk_pid Sys.sigkill
     with Unix.Unix_error _ -> ());
    let rec wait () =
      match Unix.waitpid [] r.rn_worker.Shard.wk_pid with
      | _, status -> status
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    let _status = wait () in
    running := List.filter (fun r' -> r' != r) !running;
    handle_failure
      ~reason:
        (Printf.sprintf "made no journal progress for %.1fs and was killed"
           cfg.sv_worker_timeout)
      r.rn_chunk
  in
  while !queue <> [] || !running <> [] do
    let now = Unix.gettimeofday () in
    (* fill free slots with ready chunks *)
    let rec fill () =
      if List.length !running < cfg.sv_jobs then
        match List.partition (fun c -> c.ch_ready_at <= now) !queue with
        | ready :: rest_ready, waiting ->
            queue := rest_ready @ waiting;
            spawn ready;
            fill ()
        | [], _ -> ()
    in
    fill ();
    (* poll the pool: reap exits, heartbeat the rest *)
    let pool = !running in
    List.iter
      (fun r ->
        match Unix.waitpid [ Unix.WNOHANG ] r.rn_worker.Shard.wk_pid with
        | 0, _ ->
            let cursor =
              match Journal.read_cursor (Journal.cursor_path r.rn_chunk.ch_journal) with
              | Some c -> c
              | None -> -1
            in
            if cursor > r.rn_last_cursor then begin
              r.rn_last_cursor <- cursor;
              r.rn_last_progress <- Unix.gettimeofday ()
            end
            else if Unix.gettimeofday () -. r.rn_last_progress > cfg.sv_worker_timeout
            then kill_stalled r
        | _, status -> reap r status
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            (* already reaped somehow: judge by the journal alone *)
            reap r (Unix.WEXITED 0))
      pool;
    if !running <> [] || !queue <> [] then Unix.sleepf cfg.sv_poll_interval
  done;
  let quarantined = List.sort_uniq Int.compare !quarantined in
  let codes =
    if quarantined <> [] then Stop.degraded_exit_code :: !done_codes else !done_codes
  in
  {
    sv_exit_code = Stop.worst_exit_code codes;
    sv_quarantined = quarantined;
    sv_retries = !retries;
    sv_kills = !kills;
    sv_slots = slots;
  }
