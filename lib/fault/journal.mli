(** Append-only campaign checkpoint journal.

    A campaign that dies minutes in loses every verdict it computed;
    the journal makes the work durable.  The writer appends one line
    per verdict as {!Campaign.run}'s [on_verdict] hook fires, fsyncing
    every [sync_every] lines, so after a crash or kill at any point the
    file holds a (possibly truncated) prefix of the campaign.
    [halotis faults --resume] loads it, revalidates the header against
    the requested campaign, and hands the verdicts to {!Campaign.run}'s
    [completed] — producing a final report byte-identical to an
    uninterrupted run.

    Format (line-oriented text, one record per line):
    - [# halotis-faults journal v3] — magic first line (v1 files, which
      predate static pruning, and v2 files, which predate quarantine
      records, still load);
    - [! circuit NAME] and
      [! params ENGINE SEED N WIDTH SLOPE T_STOP W0 W1 PRUNE] — the
      campaign fingerprint (floats printed with [%h], lossless; [PRUNE]
      is [p] or [-], absent in v1);
    - [! range LO HI] — optional: the global site-index range a shard
      worker owns (absent from serial journals, whose bytes are
      unchanged from the pre-sharding format);
    - [v IDX SIGNAL GATE POL AT OUTCOME PO_DELTA FIRST_DIFF 7xCOUNTER STOP \[p\]]
      — one verdict: the {e global} site index, site ids, hex-float
      strike instant, outcome token, the stats delta, a stop token
      ([-] = completed), and a trailing [p] only on statically pruned
      verdicts (so unpruned records are byte-identical to v1's);
    - [q IDX] — site [IDX] was quarantined by the campaign supervisor
      (it repeatedly crashed or hung workers) and owns no verdict: the
      explicit record of a degraded campaign (v3).

    {!load} tolerates a torn final line (the crash wrote half a record)
    by discarding it; any earlier corruption is an error.  Shard
    journals from one campaign {!merge} by global index into the serial
    journal's record stream; {!contiguous} then recovers the plain
    entry list (or pinpoints the missing site after a worker died).

    Supervised workers additionally maintain a {e progress cursor} — a
    sidecar file ({!cursor_path}) holding the highest fsync'd entry
    index — which the supervisor polls as a heartbeat and to pick the
    blame site after a kill. *)

type header = {
  jh_circuit : string;
  jh_engine : Campaign.engine;
  jh_seed : int;
  jh_n : int;
  jh_width : float;
  jh_slope : float;
  jh_t_stop : float;
  jh_window : (float * float) option;
  jh_range : (int * int) option;
      (** the shard's global site-index range [\[lo, hi)]; [None] for a
          serial (whole-campaign) journal *)
  jh_prune : bool;
      (** the campaign ran with static pruning; [false] for v1 journals.
          [Campaign.config.incremental] is deliberately absent from the
          fingerprint: cone re-simulation is result-invariant, so a
          journal resumes across incremental modes — prune is recorded
          only because pruned campaigns write different verdict
          records *)
  jh_overlay : string option;
      (** {!Halotis_tech.Param_overlay.fingerprint} of the campaign's
          parameter overlay, or [None] for the nominal (empty) corner.
          Nominal journals carry no overlay token at all, so their
          bytes are unchanged from the pre-overlay format — and a
          zero-sigma [vary] sample journal is byte-identical to the
          plain [faults] one. *)
}

val header_of : circuit:string -> ?range:int * int -> Campaign.config -> header

val check : header -> circuit:string -> ?range:int * int -> Campaign.config -> unit
(** Validates the journal fingerprint against the campaign about to run,
    including the shard range (default: expect a serial journal).
    @raise Halotis_guard.Diag.Fail ([journal-mismatch]) naming the
    first campaign parameter that differs. *)

type entry =
  | Verdict of Campaign.verdict  (** a decided site *)
  | Quarantined
      (** the supervisor gave up on this site: no verdict exists, and
          the campaign report is degraded but whole otherwise *)

type writer

val open_new : ?sync_every:int -> ?cursor:bool -> string -> header -> writer
(** Creates (or truncates) the journal, writes and fsyncs the header.
    [sync_every] (default 8) is how many verdicts may sit unsynced.
    [cursor] (default false) additionally maintains the fsync'd
    progress-cursor sidecar at {!cursor_path}. *)

val open_append : ?sync_every:int -> ?cursor:bool -> string -> writer
(** Opens an existing journal for appending after a {!load}; writes
    nothing until {!write}. *)

val write : writer -> int -> Campaign.verdict -> unit
(** Appends verdict line [IDX]; fsyncs when the unsynced count reaches
    [sync_every]. *)

val write_quarantine : writer -> int -> unit
(** Appends a quarantine record for site [IDX] — written by the
    supervisor, never by a worker. *)

val close : writer -> unit
(** Final flush + fsync + close. *)

val cursor_path : string -> string
(** [cursor_path journal] is ["journal.cursor"], the sidecar holding
    the highest fsync'd entry index as one ASCII integer. *)

val read_cursor : string -> int option
(** Reads a cursor sidecar (pass the {e journal} path's
    {!cursor_path}); [None] when missing or torn.  The value may
    understate the journal's true progress (the sidecar is synced after
    the journal) but never overstates it. *)

val load : string -> header * (int * entry) list
(** Parses a journal: the header and the entries paired with their
    global site indices, which must be strictly increasing (a shard
    journal starts at its range's [lo], not 0).  A torn final line is
    silently dropped.
    @raise Halotis_guard.Diag.Fail ([journal-parse]) on a missing or
    malformed file. *)

val contiguous : first:int -> (int * entry) list -> entry list
(** Checks the indices run [first, first+1, ...] without gaps and drops
    them — the bridge from {!load}/{!merge} output to
    {!Campaign.run}'s [completed]/[quarantined] (via {!partition}).
    @raise Halotis_guard.Diag.Fail ([journal-merge]) naming the first
    missing site. *)

val partition : first:int -> entry list -> Campaign.verdict list * int list
(** Splits a {!contiguous} entry list (whose first entry owns global
    index [first]) into the completed verdicts, in order, and the
    global indices of the quarantined sites — the two inputs
    {!Campaign.run} resumes from. *)

val merge :
  (header * (int * entry) list) list ->
  header * (int * entry) list
(** Merges shard journals from one campaign into a single index-sorted
    record stream (the serial journal's content).  Headers must agree
    on everything but [jh_range] (the result's is [None]); records
    sharing an index must be byte-identical (overlapping re-runs
    collapse, disagreement is fatal).  Gaps are allowed here — a dead
    worker's missing slice surfaces in {!contiguous}, after the
    survivors' work has been preserved.
    @raise Halotis_guard.Diag.Fail ([journal-merge]) on an empty list,
    mismatched headers or conflicting records. *)
