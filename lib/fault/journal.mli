(** Append-only campaign checkpoint journal.

    A campaign that dies minutes in loses every verdict it computed;
    the journal makes the work durable.  The writer appends one line
    per verdict as {!Campaign.run}'s [on_verdict] hook fires, fsyncing
    every [sync_every] lines, so after a crash or kill at any point the
    file holds a (possibly truncated) prefix of the campaign.
    [halotis faults --resume] loads it, revalidates the header against
    the requested campaign, and hands the verdicts to {!Campaign.run}'s
    [completed] — producing a final report byte-identical to an
    uninterrupted run.

    Format (line-oriented text, one record per line):
    - [# halotis-faults journal v2] — magic first line (v1 files, which
      predate static pruning, still load);
    - [! circuit NAME] and
      [! params ENGINE SEED N WIDTH SLOPE T_STOP W0 W1 PRUNE] — the
      campaign fingerprint (floats printed with [%h], lossless; [PRUNE]
      is [p] or [-], absent in v1);
    - [! range LO HI] — optional: the global site-index range a shard
      worker owns (absent from serial journals, whose bytes are
      unchanged from the pre-sharding format);
    - [v IDX SIGNAL GATE POL AT OUTCOME PO_DELTA FIRST_DIFF 7xCOUNTER STOP \[p\]]
      — one verdict: the {e global} site index, site ids, hex-float
      strike instant, outcome token, the stats delta, a stop token
      ([-] = completed), and a trailing [p] only on statically pruned
      verdicts (so unpruned records are byte-identical to v1's).

    {!load} tolerates a torn final line (the crash wrote half a record)
    by discarding it; any earlier corruption is an error.  Shard
    journals from one campaign {!merge} by global index into the serial
    journal's record stream; {!contiguous} then recovers the plain
    verdict list (or pinpoints the missing site after a worker died). *)

type header = {
  jh_circuit : string;
  jh_engine : Campaign.engine;
  jh_seed : int;
  jh_n : int;
  jh_width : float;
  jh_slope : float;
  jh_t_stop : float;
  jh_window : (float * float) option;
  jh_range : (int * int) option;
      (** the shard's global site-index range [\[lo, hi)]; [None] for a
          serial (whole-campaign) journal *)
  jh_prune : bool;
      (** the campaign ran with static pruning; [false] for v1 journals.
          [Campaign.config.incremental] is deliberately absent from the
          fingerprint: cone re-simulation is result-invariant, so a
          journal resumes across incremental modes — prune is recorded
          only because pruned campaigns write different verdict
          records *)
}

val header_of : circuit:string -> ?range:int * int -> Campaign.config -> header

val check : header -> circuit:string -> ?range:int * int -> Campaign.config -> unit
(** Validates the journal fingerprint against the campaign about to run,
    including the shard range (default: expect a serial journal).
    @raise Halotis_guard.Diag.Fail ([journal-mismatch]) naming the
    first campaign parameter that differs. *)

type writer

val open_new : ?sync_every:int -> string -> header -> writer
(** Creates (or truncates) the journal, writes and fsyncs the header.
    [sync_every] (default 8) is how many verdicts may sit unsynced. *)

val open_append : ?sync_every:int -> string -> writer
(** Opens an existing journal for appending after a {!load}; writes
    nothing until {!write}. *)

val write : writer -> int -> Campaign.verdict -> unit
(** Appends verdict line [IDX]; fsyncs when the unsynced count reaches
    [sync_every]. *)

val close : writer -> unit
(** Final flush + fsync + close. *)

val load : string -> header * (int * Campaign.verdict) list
(** Parses a journal: the header and the verdicts paired with their
    global site indices, which must be strictly increasing (a shard
    journal starts at its range's [lo], not 0).  A torn final line is
    silently dropped.
    @raise Halotis_guard.Diag.Fail ([journal-parse]) on a missing or
    malformed file. *)

val contiguous : first:int -> (int * Campaign.verdict) list -> Campaign.verdict list
(** Checks the indices run [first, first+1, ...] without gaps and drops
    them — the bridge from {!load}/{!merge} output to
    {!Campaign.run}'s [completed].
    @raise Halotis_guard.Diag.Fail ([journal-merge]) naming the first
    missing site. *)

val merge :
  (header * (int * Campaign.verdict) list) list ->
  header * (int * Campaign.verdict) list
(** Merges shard journals from one campaign into a single index-sorted
    record stream (the serial journal's content).  Headers must agree
    on everything but [jh_range] (the result's is [None]); records
    sharing an index must be byte-identical (overlapping re-runs
    collapse, disagreement is fatal).  Gaps are allowed here — a dead
    worker's missing slice surfaces in {!contiguous}, after the
    survivors' work has been preserved.
    @raise Halotis_guard.Diag.Fail ([journal-merge]) on an empty list,
    mismatched headers or conflicting records. *)
