(** Append-only campaign checkpoint journal.

    A campaign that dies minutes in loses every verdict it computed;
    the journal makes the work durable.  The writer appends one line
    per verdict as {!Campaign.run}'s [on_verdict] hook fires, fsyncing
    every [sync_every] lines, so after a crash or kill at any point the
    file holds a (possibly truncated) prefix of the campaign.
    [halotis faults --resume] loads it, revalidates the header against
    the requested campaign, and hands the verdicts to {!Campaign.run}'s
    [completed] — producing a final report byte-identical to an
    uninterrupted run.

    Format (line-oriented text, one record per line):
    - [# halotis-faults journal v1] — magic first line;
    - [! circuit NAME] and
      [! params ENGINE SEED N WIDTH SLOPE T_STOP W0 W1] — the campaign
      fingerprint (floats printed with [%h], lossless);
    - [v IDX SIGNAL GATE POL AT OUTCOME PO_DELTA FIRST_DIFF 7xCOUNTER STOP]
      — one verdict: site ids, hex-float strike instant, outcome
      token, the stats delta, and a stop token ([-] = completed).

    {!load} tolerates a torn final line (the crash wrote half a record)
    by discarding it; any earlier corruption or an index gap is an
    error. *)

type header = {
  jh_circuit : string;
  jh_engine : Campaign.engine;
  jh_seed : int;
  jh_n : int;
  jh_width : float;
  jh_slope : float;
  jh_t_stop : float;
  jh_window : (float * float) option;
}

val header_of : circuit:string -> Campaign.config -> header

val check : header -> circuit:string -> Campaign.config -> unit
(** @raise Halotis_guard.Diag.Fail ([journal-mismatch]) naming the
    first campaign parameter that differs. *)

type writer

val open_new : ?sync_every:int -> string -> header -> writer
(** Creates (or truncates) the journal, writes and fsyncs the header.
    [sync_every] (default 8) is how many verdicts may sit unsynced. *)

val open_append : ?sync_every:int -> string -> writer
(** Opens an existing journal for appending after a {!load}; writes
    nothing until {!write}. *)

val write : writer -> int -> Campaign.verdict -> unit
(** Appends verdict line [IDX]; fsyncs when the unsynced count reaches
    [sync_every]. *)

val close : writer -> unit
(** Final flush + fsync + close. *)

val load : string -> header * Campaign.verdict list
(** Parses a journal: the header and the verdicts in index order
    (indices must be [0, 1, ...] consecutive).  A torn final line is
    silently dropped.
    @raise Halotis_guard.Diag.Fail ([journal-parse]) on a missing or
    malformed file. *)
