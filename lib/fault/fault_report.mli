(** Campaign reports: the human-readable and machine-parseable faces
    of a {!Campaign.t}.

    Both renderings are deterministic functions of the campaign value —
    no timestamps, no table order depending on hashing — so identical
    seeds produce byte-identical reports (the reproducibility contract
    golden-tested in the suite). *)

val to_json : Campaign.t -> Halotis_util.Json.t
(** The report document: tool/version header, configuration, outcome
    summary with masking rate, per-site verdicts and the
    most-vulnerable-gate ranking.  The degradation fields ([degraded],
    [sites_quarantined], [quarantined_sites]) are always present —
    [false]/[0]/[[]] on a clean campaign — so a supervised run that
    recovered everything is byte-identical to a serial one. *)

val to_string : Campaign.t -> string
(** [to_string t] is {!to_json} serialised. *)

val to_text : Campaign.t -> string
(** Human-readable report: configuration header, outcome summary,
    vulnerable-gate table and one verdict line per site. *)

val summary : Campaign.t -> string
(** One line: ["n=50 propagated=12 electrical=30 logical=8
    masking-rate=0.76"]. *)
