module Netlist = Halotis_netlist.Netlist
module Sim = Halotis_engine.Sim
module Stats = Halotis_engine.Stats
module Digital = Halotis_wave.Digital
module Transition = Halotis_wave.Transition
module Hazard = Halotis_sta.Hazard
module Survival = Halotis_sta.Survival
module Delay_model = Halotis_delay.Delay_model
module Prng = Halotis_util.Prng
module Stop = Halotis_guard.Stop
module Budget = Halotis_guard.Budget
module Diag = Halotis_guard.Diag

type engine = Sim.engine = Ddm | Cdm | Classic_inertial

let engine_to_string = Sim.engine_to_string
let engine_of_string = Sim.engine_of_string

type outcome = Propagated | Electrically_masked | Logically_masked | Timed_out

let outcome_to_string = function
  | Propagated -> "propagated"
  | Electrically_masked -> "electrically-masked"
  | Logically_masked -> "logically-masked"
  | Timed_out -> "timed-out"

let outcome_of_string = function
  | "propagated" -> Some Propagated
  | "electrically-masked" -> Some Electrically_masked
  | "logically-masked" -> Some Logically_masked
  | "timed-out" -> Some Timed_out
  | _ -> None

type verdict = {
  vd_site : Site.t;
  vd_outcome : outcome;
  vd_po_edges_delta : int;
  vd_first_diff_output : string option;
  vd_stats : Stats.t;
  vd_pruned : bool;
}

type config = {
  engine : engine;
  seed : int;
  n : int;
  pulse : Inject.pulse;
  t_stop : float;
  window : (float * float) option;
  site_budget : Budget.t;
  prune : bool;
  incremental : bool;
  overlay : Halotis_tech.Param_overlay.t;
  sites : Site.t list option;
  range : (int * int) option;
  completed : verdict list;
  quarantined : int list;
  limit : int option;
}

let default =
  {
    engine = Ddm;
    seed = 1;
    n = 100;
    pulse = Inject.pulse ~width:150. ();
    t_stop = 10_000.;
    window = None;
    site_budget = Budget.unlimited;
    prune = false;
    incremental = true;
    overlay = Halotis_tech.Param_overlay.empty;
    sites = None;
    range = None;
    completed = [];
    quarantined = [];
    limit = None;
  }

let config ?(engine = Ddm) ?(seed = 1) ?(n = 100) ?(pulse = Inject.pulse ~width:150. ())
    ?window ?(site_budget = Budget.unlimited) ?(prune = false) ?(incremental = true)
    ?(overlay = Halotis_tech.Param_overlay.empty) ?sites ?range ?(completed = [])
    ?(quarantined = []) ?limit ~t_stop () =
  if n < 0 then invalid_arg "Campaign.config: n must be non-negative";
  if t_stop <= 0. then invalid_arg "Campaign.config: t_stop must be positive";
  {
    engine;
    seed;
    n;
    pulse;
    t_stop;
    window;
    site_budget;
    prune;
    incremental;
    overlay;
    sites;
    range;
    completed;
    quarantined;
    limit;
  }

type t = {
  cam_circuit : Netlist.t;
  cam_config : config;
  cam_verdicts : verdict list;
  cam_baseline_stats : Stats.t;
  cam_total_stats : Stats.t;
  cam_sites_total : int;
  cam_complete : bool;
  cam_range : (int * int) option;
  cam_cone : Sim.Cone.totals option;
  cam_quarantined : (int * Site.t) list;
}

(* One injected run reduced to what classification needs: per-signal
   digital edges and the engine counters. *)
type observed = { ob_edges : Digital.edge list array; ob_stats : Stats.t }

let classify ~c ~is_classic ~(base : observed) ~(site : Site.t) (inj : observed) =
  let delta = Stats.diff inj.ob_stats base.ob_stats in
  let victim = site.Site.st_signal in
  let differs sid = inj.ob_edges.(sid) <> base.ob_edges.(sid) in
  let pos = Netlist.primary_outputs c in
  let po_diff = List.filter differs pos in
  let po_edges_delta =
    List.fold_left
      (fun acc sid ->
        acc + List.length inj.ob_edges.(sid) - List.length base.ob_edges.(sid))
      0 pos
  in
  let outcome =
    if po_diff <> [] then Propagated
    else begin
      let downstream_differs =
        Array.exists
          (fun (s : Netlist.signal) ->
            s.Netlist.signal_id <> victim && differs s.Netlist.signal_id)
          (Netlist.signals c)
      in
      (* The classic engine records the forced victim toggles as
         emitted transitions; subtract them so only fanout responses
         count as electrical activity. *)
      let victim_extra =
        List.length inj.ob_edges.(victim) - List.length base.ob_edges.(victim)
      in
      let emitted_downstream =
        delta.Stats.transitions_emitted - if is_classic then victim_extra else 0
      in
      if downstream_differs then Electrically_masked
      else if
        emitted_downstream > 0
        || delta.Stats.transitions_annulled > 0
        || delta.Stats.events_filtered > 0
      then Electrically_masked
      else if delta.Stats.noop_evaluations > 0 then Logically_masked
      else
        (* The strike never even registered at a fanout input: a
           sub-threshold runt, dead on the struck node itself. *)
        Electrically_masked
    end
  in
  {
    vd_site = site;
    vd_outcome = outcome;
    vd_po_edges_delta = po_edges_delta;
    vd_first_diff_output = (match po_diff with [] -> None | sid :: _ -> Some (Netlist.signal_name c sid));
    vd_stats = delta;
    vd_pruned = false;
  }

let run ?on_verdict cfg tech c ~drives =
  let { sites; range; completed; quarantined; limit; _ } = cfg in
  (* Every engine run flows through the {!Sim} facade; the baseline
     never carries the per-site budget — it is the reference every
     verdict is diffed against, so it must be whole.  Every run — the
     baselines included — prices its coefficients at [cfg.overlay]'s
     corner. *)
  let spec ?injections ?budget () =
    Sim.spec ~drives ?injections ~t_stop:cfg.t_stop ?budget
      ~overlay:cfg.overlay ~tech c
  in
  let ddm_baseline_run = Sim.run Sim.Ddm (spec ()) in
  let ddm_baseline =
    match Sim.iddm ddm_baseline_run with Some r -> r | None -> assert false
  in
  let sites =
    match sites with
    | Some s -> s
    | None ->
        let t0, t1 = match cfg.window with Some w -> w | None -> (0., cfg.t_stop) in
        let prng = Prng.create ~seed:cfg.seed in
        Site.sample ~baseline:ddm_baseline ~prng ~n:cfg.n ~t0 ~t1
  in
  let observe (r : Sim.result) =
    { ob_edges = Sim.edges r; ob_stats = r.Sim.rs_stats }
  in
  let base_run =
    match cfg.engine with
    | Ddm -> ddm_baseline_run
    | Cdm | Classic_inertial -> Sim.run cfg.engine (spec ())
  in
  let base = observe base_run in
  (* Static pruning oracle.  Only armed when every injected run would
     be whole anyway: a finite per-site budget can turn a provably
     masked site into [Timed_out], and pruning must never change a
     verdict.  The classic engine has no pulse-width semantics to bound
     statically, and the survival analysis prices its bounds straight
     from [tech], so a non-empty overlay (a sampled corner) disarms it
     too. *)
  let pruner =
    if
      not
        (cfg.prune
        && Budget.is_unlimited cfg.site_budget
        && Halotis_tech.Param_overlay.is_empty cfg.overlay)
    then None
    else
      match cfg.engine with
      | Classic_inertial -> None
      | Ddm | Cdm -> (
          let kind =
            match cfg.engine with Ddm -> Delay_model.Ddm | _ -> Delay_model.Cdm
          in
          match Sim.iddm base_run with
          | None -> None
          | Some baseline ->
              Some
                (Survival.pruner ~kind tech c ~baseline ~t_stop:cfg.t_stop
                   ~width:cfg.pulse.Inject.width ~slope:cfg.pulse.Inject.slope))
  in
  (* Incremental cone re-simulation.  Armed only when every injected
     run would be whole anyway (unlimited per-site budget — a cone run
     cannot reproduce the exact trip point of a budgeted full run) and
     the engine has waveform semantics; [Sim.Cone.create] additionally
     refuses a truncated or tie-hazardous baseline.  When armed, a site
     whose cone graft is exact skips the full re-run entirely; any
     fallback re-runs it the old way, so verdicts, reports and journals
     are byte-identical with the optimization on or off. *)
  let cone_ctx =
    if not (cfg.incremental && Budget.is_unlimited cfg.site_budget) then None
    else
      match cfg.engine with
      | Classic_inertial -> None
      | Ddm | Cdm -> Sim.Cone.create cfg.engine (spec ()) ~baseline:base_run
  in
  let run_site_full site =
    observe
      (Sim.run cfg.engine
         (spec ~injections:[ Inject.injection site cfg.pulse ] ~budget:cfg.site_budget ()))
  in
  let run_site site =
    match cone_ctx with
    | None -> run_site_full site
    | Some ctx -> (
        match Sim.Cone.run_site ctx (Inject.injection site cfg.pulse) with
        | Sim.Cone.Exact { edges; stats; _ } -> { ob_edges = edges; ob_stats = stats }
        | Sim.Cone.Fallback _ -> run_site_full site)
  in
  let is_classic = cfg.engine = Classic_inertial in
  let site_arr = Array.of_list sites in
  let nsites = Array.length site_arr in
  (* [range] restricts this call to global site indices [lo, hi) — the
     shard protocol.  The default covers everything. *)
  let lo, hi = match range with Some r -> r | None -> (0, nsites) in
  if lo < 0 || hi < lo || hi > nsites then
    Diag.fail ~code:"shard-range"
      (Printf.sprintf "shard range [%d, %d) does not fit the %d-site campaign" lo hi
         nsites);
  (* Quarantined sites (the supervisor gave up on them) are carved out
     of the range: they are never simulated, own no verdict, and are
     reported explicitly — the only permitted delta against an
     unsupervised run. *)
  let quarantined = List.sort_uniq Int.compare quarantined in
  List.iter
    (fun i ->
      if i < lo || i >= hi then
        Diag.fail ~code:"journal-mismatch"
          (Printf.sprintf "quarantined site %d is outside the campaign range [%d, %d)" i
             lo hi))
    quarantined;
  (* [active]: the global indices this run still owns, in order. *)
  let active =
    Array.of_list
      (List.filter
         (fun i -> not (List.mem i quarantined))
         (List.init (hi - lo) (fun i -> lo + i)))
  in
  let nactive = Array.length active in
  (* Resume: [completed] must be a verdict-for-verdict prefix of the
     (range's slice of the) deterministic site list — anything else
     means the journal belongs to a different campaign. *)
  let ncompleted = List.length completed in
  if ncompleted > nactive then
    Diag.fail ~code:"journal-mismatch"
      (Printf.sprintf "journal has %d verdicts but the campaign range has only %d sites"
         ncompleted nactive);
  List.iteri
    (fun i (v : verdict) ->
      if Site.compare site_arr.(active.(i)) v.vd_site <> 0 then
        Diag.fail ~code:"journal-mismatch"
          (Printf.sprintf
             "journal verdict %d was recorded at a different site — wrong seed, circuit or \
              campaign parameters"
             active.(i)))
    completed;
  let fresh_total = nactive - ncompleted in
  let fresh_count =
    match limit with Some k -> min (max 0 k) fresh_total | None -> fresh_total
  in
  let static_verdict site =
    match pruner with
    | None -> None
    | Some pr -> (
        match
          Survival.site_verdict pr ~signal:site.Site.st_signal
            ~rising:(site.Site.st_polarity = Transition.Rising)
            ~at:site.Site.st_at
        with
        | Survival.Unknown -> None
        | Survival.Proven_electrically_masked -> Some Electrically_masked
        | Survival.Proven_logically_masked -> Some Logically_masked)
  in
  let fresh = ref [] in
  for i = 0 to fresh_count - 1 do
    let idx = active.(ncompleted + i) in
    let site = site_arr.(idx) in
    let v =
      match static_verdict site with
      | Some outcome ->
          (* proven statically: no injected run happens, so the verdict
             carries zero delta counters *)
          {
            vd_site = site;
            vd_outcome = outcome;
            vd_po_edges_delta = 0;
            vd_first_diff_output = None;
            vd_stats = Stats.create ();
            vd_pruned = true;
          }
      | None ->
          let inj = run_site site in
          if not (Stop.completed inj.ob_stats.Stats.stopped_by) then
            (* the per-site budget tripped: the run is a prefix, so no
               verdict about masking can be trusted — record the trip *)
            {
              vd_site = site;
              vd_outcome = Timed_out;
              vd_po_edges_delta = 0;
              vd_first_diff_output = None;
              vd_stats = Stats.diff inj.ob_stats base.ob_stats;
              vd_pruned = false;
            }
          else classify ~c ~is_classic ~base ~site inj
    in
    (match on_verdict with Some f -> f idx v | None -> ());
    fresh := v :: !fresh
  done;
  let verdicts = completed @ List.rev !fresh in
  (* Rebuild the all-runs total from the per-verdict deltas: the raw
     counters of run [i] are [delta_i + base], integer-exact, so a
     resumed campaign reconstructs the same total an uninterrupted one
     accumulates.  Pruned sites never ran, so they contribute
     nothing. *)
  let total = Stats.create () in
  List.iter
    (fun (v : verdict) ->
      if not v.vd_pruned then begin
        Stats.merge total v.vd_stats;
        Stats.merge total base.ob_stats
      end)
    verdicts;
  {
    cam_circuit = c;
    cam_config = cfg;
    cam_verdicts = verdicts;
    cam_baseline_stats = Stats.copy base.ob_stats;
    cam_total_stats = total;
    cam_sites_total = nsites;
    cam_complete = List.length verdicts = nactive;
    cam_range = range;
    cam_cone = Option.map Sim.Cone.totals cone_ctx;
    cam_quarantined = List.map (fun i -> (i, site_arr.(i))) quarantined;
  }

let run_legacy ?sites ?range ?(completed = []) ?(quarantined = []) ?limit
    ?on_verdict cfg tech c ~drives =
  run ?on_verdict
    { cfg with sites; range; completed; quarantined; limit }
    tech c ~drives

let counts t =
  List.fold_left
    (fun (p, e, l) v ->
      match v.vd_outcome with
      | Propagated -> (p + 1, e, l)
      | Electrically_masked -> (p, e + 1, l)
      | Logically_masked -> (p, e, l + 1)
      | Timed_out -> (p, e, l))
    (0, 0, 0) t.cam_verdicts

let pruned_count t =
  List.fold_left (fun n v -> if v.vd_pruned then n + 1 else n) 0 t.cam_verdicts

let timed_out t =
  List.fold_left
    (fun n v -> if v.vd_outcome = Timed_out then n + 1 else n)
    0 t.cam_verdicts

let masking_rate t =
  let p, e, l = counts t in
  let n = p + e + l in
  if n = 0 then 0. else float_of_int (e + l) /. float_of_int n

let vulnerability t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if v.vd_outcome = Propagated then
        let g = v.vd_site.Site.st_gate in
        Hashtbl.replace tbl g (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g)))
    t.cam_verdicts;
  Hashtbl.fold (fun g n acc -> (g, n) :: acc) tbl []
  |> List.sort (fun (ga, na) (gb, nb) ->
         match Int.compare nb na with 0 -> Int.compare ga gb | c -> c)

let hazard_crosscheck t h =
  List.filter_map
    (fun v ->
      if v.vd_outcome <> Propagated then None
      else
        let covered =
          match Hazard.window h v.vd_site.Site.st_signal with
          | Some w ->
              v.vd_site.Site.st_at >= w.Hazard.earliest
              && v.vd_site.Site.st_at <= w.Hazard.latest
          | None -> false
        in
        Some (v, covered))
    t.cam_verdicts
