(** Multi-process campaign sharding.

    A campaign's site enumeration is deterministic (seeded PRNG or an
    exhaustive grid), so N worker processes can share it without any
    coordination: worker [k] of [N] claims the contiguous global index
    range {!range}[ ~total ~jobs k] and journals its verdicts — with
    their global indices — into its own shard journal
    ({!journal_path}).  The parent forks the workers (re-executing its
    own binary with [--shard k/N]), waits, merges the shard journals
    ({!Journal.merge}) and renders a report byte-identical to the
    serial run.

    Crash recovery falls out of the journal: a dead worker's completed
    verdicts survive in its shard file, and re-running the parent with
    [--resume] hands each worker its existing journal so only the
    missing suffix of each range is simulated.

    This module holds the process plumbing (range arithmetic, worker
    spawn via [Unix.create_process], wait loop, exit-code folding); the
    argv a worker receives is the caller's business — the CLI
    reconstructs its own campaign flags. *)

val available_cores : unit -> int
(** The number of processor cores available to this process — what
    [faults --jobs 0] resolves to.  Asks [getconf _NPROCESSORS_ONLN]
    first, then [sysctl -n hw.ncpu] (the BSD/macOS spelling), then
    counts [/proc/cpuinfo] processor lines, and returns [1] when no
    source answers.  Never raises. *)

val detect_cores :
  ?getconf:(unit -> string option) ->
  ?sysctl:(unit -> string option) ->
  ?cpuinfo:(unit -> string option) ->
  unit ->
  int
(** {!available_cores} with injectable readers, for testing the
    fallback chain without the host's real core count: [getconf] and
    [sysctl] yield the command's first output line (or [None] on
    failure), [cpuinfo] the whole file's contents.  A reader whose
    output does not parse to a count [>= 1] falls through to the
    next. *)

val parse_core_count : string -> int option
(** Parses one command-output line into a core count: whitespace is
    trimmed, and anything that is not an integer [>= 1] is [None]. *)

val count_cpuinfo_processors : string -> int option
(** Counts [processor] lines in [/proc/cpuinfo]-format contents;
    [None] when there are none (the caller falls through). *)

val range : total:int -> jobs:int -> int -> int * int
(** [range ~total ~jobs k] is worker [k]'s half-open global site-index
    range [\[k*total/jobs, (k+1)*total/jobs)].  The ranges of
    [0 .. jobs-1] partition [\[0, total)] with sizes differing by at
    most one.
    @raise Invalid_argument unless [0 <= k < jobs] and [total >= 0]. *)

val ranges : total:int -> jobs:int -> (int * int) list
(** All [jobs] ranges in worker order. *)

val journal_path : string -> int -> string
(** [journal_path base k] is ["base.k"] — where worker [k]'s shard
    journal lives. *)

val stderr_path : string -> int -> string
(** [stderr_path base k] is ["base.k.err"] — where worker [k]'s
    captured stderr lands when the caller passes it to {!spawn}. *)

val parse_spec : string -> (int * int) option
(** Parses a [--shard] argument ["K/N"] into [(k, n)]; [None] unless
    [0 <= k < n]. *)

val spec_to_string : int * int -> string

type worker = {
  wk_index : int;
  wk_range : int * int;
  wk_journal : string;
  wk_pid : int;
}

val spawn :
  ?stderr_file:string ->
  argv:string list ->
  index:int ->
  range:int * int ->
  journal:string ->
  unit ->
  worker
(** Forks worker [index] by re-executing [Sys.executable_name] with
    [argv] (complete, including the program name at its head); the
    child inherits stdin/stdout, and stderr too unless [stderr_file]
    redirects it into a fresh capture file (created/truncated). *)

val stderr_tail : ?lines:int -> string -> string list
(** The last [lines] (default 5) non-blank lines of a worker's stderr
    capture file; [[]] when the file is missing or empty.  Replayed
    into the supervisor's diagnostics after a worker dies. *)

val wait_all : worker list -> (worker * Unix.process_status) list
(** Blocks until every worker has exited, in worker order.  Never
    raises on a worker that died to a signal — the status records it. *)

val status_exit_code : Unix.process_status -> int
(** [WEXITED n] is [n]; a signalled or stopped worker is a hard error
    ([1]). *)

val status_to_string : Unix.process_status -> string
(** ["exit 0"], ["signal -9"], ... for progress messages. *)

val exit_code : (worker * Unix.process_status) list -> int
(** The parent's verdict over all workers
    ({!Halotis_guard.Stop.worst_exit_code} of the per-worker codes). *)

val load_merged :
  base:string -> jobs:int -> Journal.header * (int * Journal.entry) list
(** Loads every existing shard journal [base.0 .. base.(jobs-1)] and
    {!Journal.merge}s them.  Shard files that do not exist (a worker
    died before writing its header) are skipped — the gap surfaces in
    {!Journal.contiguous}.
    @raise Halotis_guard.Diag.Fail ([journal-merge]) when no shard
    journal exists at all, or on merge conflicts. *)
