(** SET injection sites: where, when and which way a particle strike
    perturbs the circuit.

    A site is a gate output × pulse polarity × injection instant.  The
    polarity is always {e away} from the node's quiescent level at the
    strike instant (a strike on a node already at the rail it pulls
    towards is a no-op), so enumeration needs a baseline run to know
    the level each node sits at over time. *)

type t = {
  st_signal : Halotis_netlist.Netlist.signal_id;  (** struck node (a gate output) *)
  st_gate : Halotis_netlist.Netlist.gate_id;  (** the gate driving it *)
  st_polarity : Halotis_wave.Transition.polarity;
      (** direction of the SET's leading edge *)
  st_at : Halotis_util.Units.time;  (** strike instant, ps *)
}

val compare : t -> t -> int
(** Total order (signal, time, polarity) — the deterministic iteration
    order of exhaustive campaigns. *)

val candidates : Halotis_netlist.Netlist.t -> Halotis_netlist.Netlist.signal_id list
(** Gate-output signals in id order — every strikeable node.  Primary
    inputs and tie cells are excluded (input strikes are stimulus
    edits, not SETs on logic). *)

val polarity_at :
  baseline:Halotis_engine.Iddm.result ->
  Halotis_netlist.Netlist.signal_id ->
  at:Halotis_util.Units.time ->
  Halotis_wave.Transition.polarity
(** The perturbing direction at [at]: [Rising] when the baseline level
    (at VDD/2) is low, [Falling] when high. *)

val of_signal :
  baseline:Halotis_engine.Iddm.result ->
  Halotis_netlist.Netlist.signal_id ->
  at:Halotis_util.Units.time ->
  t
(** A single site on the given gate output at [at], polarity from the
    baseline ({!polarity_at}).
    @raise Invalid_argument when the signal has no driving gate. *)

val exhaustive :
  baseline:Halotis_engine.Iddm.result ->
  times:Halotis_util.Units.time list ->
  t list
(** Every candidate node × every instant, polarity from the baseline;
    ordered by {!compare}. *)

val sample :
  baseline:Halotis_engine.Iddm.result ->
  prng:Halotis_util.Prng.t ->
  n:int ->
  t0:Halotis_util.Units.time ->
  t1:Halotis_util.Units.time ->
  t list
(** [n] sites drawn uniformly (node × instant in [\[t0, t1)]) from the
    given PRNG state — identical seeds yield identical site lists. *)

val grid :
  t0:Halotis_util.Units.time ->
  t1:Halotis_util.Units.time ->
  points:int ->
  Halotis_util.Units.time list
(** [points] instants evenly spread over [\[t0, t1)] — the time axis of
    exhaustive campaigns. *)

val pp : Halotis_netlist.Netlist.t -> Format.formatter -> t -> unit
(** ["g5_G22/G22 rising @ 1234.5 ps"]. *)
