module Stats = Halotis_engine.Stats
module Transition = Halotis_wave.Transition
module Stop = Halotis_guard.Stop
module Diag = Halotis_guard.Diag

type header = {
  jh_circuit : string;
  jh_engine : Campaign.engine;
  jh_seed : int;
  jh_n : int;
  jh_width : float;
  jh_slope : float;
  jh_t_stop : float;
  jh_window : (float * float) option;
  jh_range : (int * int) option;
  jh_prune : bool;
  jh_overlay : string option;
}

(* v2 added the prune flag to the params line and a trailing marker on
   pruned verdict records; v3 adds quarantine records ([q IDX]) written
   by the campaign supervisor.  A non-nominal parameter overlay adds an
   optional trailing [ov:<hex>] token to the params line — absent for
   the empty overlay, so nominal v3 journals are byte-identical to the
   pre-overlay format.  v1 and v2 files still load. *)
let magic_v1 = "# halotis-faults journal v1"
let magic_v2 = "# halotis-faults journal v2"
let magic = "# halotis-faults journal v3"

let overlay_fingerprint (cfg : Campaign.config) =
  if Halotis_tech.Param_overlay.is_empty cfg.Campaign.overlay then None
  else Some (Halotis_tech.Param_overlay.fingerprint cfg.Campaign.overlay)

let header_of ~circuit ?range (cfg : Campaign.config) =
  {
    jh_circuit = circuit;
    jh_engine = cfg.Campaign.engine;
    jh_seed = cfg.Campaign.seed;
    jh_n = cfg.Campaign.n;
    jh_width = cfg.Campaign.pulse.Inject.width;
    jh_slope = cfg.Campaign.pulse.Inject.slope;
    jh_t_stop = cfg.Campaign.t_stop;
    jh_window = cfg.Campaign.window;
    jh_range = range;
    jh_prune = cfg.Campaign.prune;
    jh_overlay = overlay_fingerprint cfg;
  }

let check h ~circuit ?range (cfg : Campaign.config) =
  let fail what = Diag.fail ~code:"journal-mismatch"
      (Printf.sprintf "journal was written for a different campaign: %s differs" what)
  in
  if h.jh_circuit <> circuit then fail "circuit";
  if h.jh_engine <> cfg.Campaign.engine then fail "engine";
  if h.jh_seed <> cfg.Campaign.seed then fail "seed";
  if h.jh_n <> cfg.Campaign.n then fail "n";
  if h.jh_width <> cfg.Campaign.pulse.Inject.width then fail "pulse width";
  if h.jh_slope <> cfg.Campaign.pulse.Inject.slope then fail "pulse slope";
  if h.jh_t_stop <> cfg.Campaign.t_stop then fail "t_stop";
  if h.jh_window <> cfg.Campaign.window then fail "window";
  if h.jh_range <> range then fail "shard range";
  if h.jh_prune <> cfg.Campaign.prune then fail "prune mode";
  if h.jh_overlay <> overlay_fingerprint cfg then fail "parameter overlay"
(* [cfg.incremental] is deliberately NOT part of the fingerprint: cone
   re-simulation is result-invariant (byte-identical verdicts), so a
   journal written with it on resumes cleanly with it off and vice
   versa.  Prune is fingerprinted because it changes verdict records
   (zero-delta pruned entries); incremental never does. *)

(* %h prints a lossless hex float; float_of_string reads it back
   bit-exactly, which is what makes resumed reports byte-identical. *)
let fstr = Printf.sprintf "%h"

let stop_token = function
  | Stop.Completed -> "-"
  | Stop.Event_budget n -> "E" ^ string_of_int n
  | Stop.Wall_clock s -> "W" ^ fstr s
  | Stop.Queue_cap n -> "Q" ^ string_of_int n
  | Stop.Sim_time t -> "T" ^ fstr t
  | Stop.Transition_cap n -> "C" ^ string_of_int n
  | Stop.Oscillation names -> "O" ^ String.concat ";" names

let stop_of_token tok =
  if tok = "-" then Some Stop.Completed
  else if String.length tok < 2 then None
  else
    let rest = String.sub tok 1 (String.length tok - 1) in
    match tok.[0] with
    | 'E' -> Option.map (fun n -> Stop.Event_budget n) (int_of_string_opt rest)
    | 'W' -> Option.map (fun s -> Stop.Wall_clock s) (float_of_string_opt rest)
    | 'Q' -> Option.map (fun n -> Stop.Queue_cap n) (int_of_string_opt rest)
    | 'T' -> Option.map (fun t -> Stop.Sim_time t) (float_of_string_opt rest)
    | 'C' -> Option.map (fun n -> Stop.Transition_cap n) (int_of_string_opt rest)
    | 'O' -> Some (Stop.Oscillation (String.split_on_char ';' rest))
    | _ -> None

type entry = Verdict of Campaign.verdict | Quarantined

let verdict_line idx (v : Campaign.verdict) =
  let site = v.Campaign.vd_site in
  let s = v.Campaign.vd_stats in
  Printf.sprintf "v %d %d %d %c %s %s %d %s %d %d %d %d %d %d %d %s%s" idx
    site.Site.st_signal site.Site.st_gate
    (match site.Site.st_polarity with Transition.Rising -> 'R' | Transition.Falling -> 'F')
    (fstr site.Site.st_at)
    (Campaign.outcome_to_string v.Campaign.vd_outcome)
    v.Campaign.vd_po_edges_delta
    (match v.Campaign.vd_first_diff_output with Some n -> n | None -> "-")
    s.Stats.events_scheduled s.Stats.events_processed s.Stats.events_filtered
    s.Stats.stale_skipped s.Stats.transitions_emitted s.Stats.transitions_annulled
    s.Stats.noop_evaluations
    (stop_token s.Stats.stopped_by)
    (* the trailing marker exists only on pruned records, so unpruned
       v2 lines are byte-identical to v1 ones *)
    (if v.Campaign.vd_pruned then " p" else "")

let quarantine_line idx = Printf.sprintf "q %d" idx

let entry_line idx = function
  | Verdict v -> verdict_line idx v
  | Quarantined -> quarantine_line idx

let parse_verdict_line line =
  (* 17 tokens = an unpruned record (also every v1 record); an 18th
     token "p" marks a pruned one. *)
  let tokens, vd_pruned =
    match String.split_on_char ' ' line with
    | [
        "v"; _; _; _; _; _; _; _; _; _; _; _; _; _; _; _; _; "p";
      ] as l ->
        (List.filteri (fun i _ -> i < 17) l, true)
    | l -> (l, false)
  in
  match tokens with
  | [
   "v"; idx; sig_; gate; pol; at; outcome; po_delta; first_diff; es; ep; ef; ss; te; ta;
   ne; stop;
  ] -> (
      let ( let* ) = Option.bind in
      let* idx = int_of_string_opt idx in
      let* st_signal = int_of_string_opt sig_ in
      let* st_gate = int_of_string_opt gate in
      let* st_polarity =
        match pol with
        | "R" -> Some Transition.Rising
        | "F" -> Some Transition.Falling
        | _ -> None
      in
      let* st_at = float_of_string_opt at in
      let* vd_outcome = Campaign.outcome_of_string outcome in
      let* vd_po_edges_delta = int_of_string_opt po_delta in
      let vd_first_diff_output = if first_diff = "-" then None else Some first_diff in
      let* es = int_of_string_opt es in
      let* ep = int_of_string_opt ep in
      let* ef = int_of_string_opt ef in
      let* ss = int_of_string_opt ss in
      let* te = int_of_string_opt te in
      let* ta = int_of_string_opt ta in
      let* ne = int_of_string_opt ne in
      let* stopped_by = stop_of_token stop in
      let vd_stats = Stats.create () in
      vd_stats.Stats.events_scheduled <- es;
      vd_stats.Stats.events_processed <- ep;
      vd_stats.Stats.events_filtered <- ef;
      vd_stats.Stats.stale_skipped <- ss;
      vd_stats.Stats.transitions_emitted <- te;
      vd_stats.Stats.transitions_annulled <- ta;
      vd_stats.Stats.noop_evaluations <- ne;
      vd_stats.Stats.stopped_by <- stopped_by;
      Some
        ( idx,
          {
            Campaign.vd_site = { Site.st_signal; st_gate; st_polarity; st_at };
            vd_outcome;
            vd_po_edges_delta;
            vd_first_diff_output;
            vd_stats;
            vd_pruned;
          } ))
  | _ -> None

let parse_entry_line line =
  match String.split_on_char ' ' line with
  | [ "q"; idx ] ->
      Option.map (fun idx -> (idx, Quarantined)) (int_of_string_opt idx)
  | _ ->
      Option.map (fun (idx, v) -> (idx, Verdict v)) (parse_verdict_line line)

(* --- progress cursor ------------------------------------------------

   A sidecar file ("journal.cursor") holding the highest fsync'd entry
   index as one ASCII integer — the supervisor's heartbeat.  It is
   rewritten in place and fsync'd only {e after} the journal itself has
   been synced, so it may understate progress (a kill between the two
   fsyncs) but never overstate it. *)

let cursor_path path = path ^ ".cursor"

let read_cursor path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> int_of_string_opt (String.trim content)
  | exception Sys_error _ -> None

let write_cursor_fd fd idx =
  let s = string_of_int idx ^ "\n" in
  let b = Bytes.of_string s in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let rec put o =
    if o < Bytes.length b then put (o + Unix.write fd b o (Bytes.length b - o))
  in
  put 0;
  Unix.ftruncate fd (Bytes.length b);
  Unix.fsync fd

type writer = {
  oc : out_channel;
  sync_every : int;
  mutable unsynced : int;
  cursor_fd : Unix.file_descr option;
  mutable last_idx : int;  (** highest entry index written; [-1] = none yet *)
}

let sync w =
  flush w.oc;
  Unix.fsync (Unix.descr_of_out_channel w.oc);
  w.unsynced <- 0;
  match w.cursor_fd with
  | Some fd when w.last_idx >= 0 -> write_cursor_fd fd w.last_idx
  | Some _ | None -> ()

let open_cursor ~cursor path =
  if not cursor then None
  else
    Some (Unix.openfile (cursor_path path) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644)

let open_new ?(sync_every = 8) ?(cursor = false) path h =
  let oc = open_out path in
  let w =
    {
      oc;
      sync_every = max 1 sync_every;
      unsynced = 0;
      cursor_fd = open_cursor ~cursor path;
      last_idx = -1;
    }
  in
  output_string oc (magic ^ "\n");
  output_string oc (Printf.sprintf "! circuit %s\n" h.jh_circuit);
  let w0, w1 =
    match h.jh_window with Some (a, b) -> (fstr a, fstr b) | None -> ("-", "-")
  in
  output_string oc
    (Printf.sprintf "! params %s %d %d %s %s %s %s %s %s%s\n"
       (Campaign.engine_to_string h.jh_engine)
       h.jh_seed h.jh_n (fstr h.jh_width) (fstr h.jh_slope) (fstr h.jh_t_stop) w0 w1
       (if h.jh_prune then "p" else "-")
       (* the nominal corner writes nothing, keeping pre-overlay
          journal bytes unchanged *)
       (match h.jh_overlay with Some fp -> " ov:" ^ fp | None -> ""));
  (* serial journals carry no range line, so their bytes are unchanged
     from the pre-sharding format *)
  (match h.jh_range with
  | Some (lo, hi) -> output_string oc (Printf.sprintf "! range %d %d\n" lo hi)
  | None -> ());
  sync w;
  w

let open_append ?(sync_every = 8) ?(cursor = false) path =
  (* A torn final record (the crash wrote half a line) must go before
     appending, or the next verdict line would begin mid-record and a
     later {!load} would reject the file. *)
  let keep =
    let content = In_channel.with_open_bin path In_channel.input_all in
    match String.rindex_opt content '\n' with Some i -> i + 1 | None -> 0
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd keep;
  ignore (Unix.lseek fd keep Unix.SEEK_SET);
  let oc = Unix.out_channel_of_descr fd in
  {
    oc;
    sync_every = max 1 sync_every;
    unsynced = 0;
    cursor_fd = open_cursor ~cursor path;
    last_idx = -1;
  }

let write_entry w idx e =
  output_string w.oc (entry_line idx e ^ "\n");
  w.last_idx <- idx;
  w.unsynced <- w.unsynced + 1;
  if w.unsynced >= w.sync_every then sync w

let write w idx v = write_entry w idx (Verdict v)
let write_quarantine w idx = write_entry w idx Quarantined

let close w =
  sync w;
  (match w.cursor_fd with Some fd -> Unix.close fd | None -> ());
  close_out w.oc

let parse_fail path msg =
  Diag.fail ~file:path ~code:"journal-parse" msg
    ~hint:"re-run without --resume to start the campaign over"

let load path =
  let content =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg -> Diag.fail ~code:"journal-parse" msg
  in
  (* The shared newline-delimited reader yields complete lines only: a
     torn write can only affect the tail, and a half-written final
     record stays in [leftover] and never parses. *)
  let lines = Halotis_util.Json.Lines.to_list (Halotis_util.Json.Lines.of_string content) in
  match lines with
  | [] -> parse_fail path "empty journal"
  | m :: rest when m = magic || m = magic_v2 || m = magic_v1 -> (
      let circuit, rest =
        match rest with
        | l :: tl when String.length l > 10 && String.sub l 0 10 = "! circuit " ->
            (String.sub l 10 (String.length l - 10), tl)
        | _ -> parse_fail path "missing '! circuit' line"
      in
      let header, rest =
        match rest with
        | l :: tl -> (
            (* v1 params lines have no prune token: normalise to "-".
               The optional trailing [ov:<hex>] overlay token is
               normalised the other way, peeled off first. *)
            let fields, overlay =
              let f = String.split_on_char ' ' l in
              match List.rev f with
              | last :: rev_rest
                when String.length last > 3 && String.sub last 0 3 = "ov:" ->
                  (List.rev rev_rest, Some (String.sub last 3 (String.length last - 3)))
              | _ -> (f, None)
            in
            let fields =
              match fields with
              | [ _; _; _; _; _; _; _; _; _; _ ] as f -> f @ [ "-" ]
              | f -> f
            in
            match fields with
            | [ "!"; "params"; engine; seed; n; width; slope; t_stop; w0; w1; prune ] -> (
                let parsed =
                  let ( let* ) = Option.bind in
                  let* jh_engine = Campaign.engine_of_string engine in
                  let* jh_seed = int_of_string_opt seed in
                  let* jh_n = int_of_string_opt n in
                  let* jh_width = float_of_string_opt width in
                  let* jh_slope = float_of_string_opt slope in
                  let* jh_t_stop = float_of_string_opt t_stop in
                  let* jh_window =
                    match (w0, w1) with
                    | "-", "-" -> Some None
                    | _ -> (
                        match (float_of_string_opt w0, float_of_string_opt w1) with
                        | Some a, Some b -> Some (Some (a, b))
                        | _ -> None)
                  in
                  let* jh_prune =
                    match prune with "p" -> Some true | "-" -> Some false | _ -> None
                  in
                  Some
                    {
                      jh_circuit = circuit;
                      jh_engine;
                      jh_seed;
                      jh_n;
                      jh_width;
                      jh_slope;
                      jh_t_stop;
                      jh_window;
                      jh_range = None;
                      jh_prune;
                      jh_overlay = overlay;
                    }
                in
                match parsed with
                | Some h -> (h, tl)
                | None -> parse_fail path "malformed '! params' line")
            | _ -> parse_fail path "missing '! params' line")
        | [] -> parse_fail path "missing '! params' line"
      in
      (* optional shard-range line, written by worker journals only *)
      let header, rest =
        match rest with
        | l :: tl when String.length l > 8 && String.sub l 0 8 = "! range " -> (
            match String.split_on_char ' ' l with
            | [ "!"; "range"; lo; hi ] -> (
                match (int_of_string_opt lo, int_of_string_opt hi) with
                | Some lo, Some hi -> ({ header with jh_range = Some (lo, hi) }, tl)
                | _ -> parse_fail path "malformed '! range' line")
            | _ -> parse_fail path "malformed '! range' line")
        | _ -> (header, rest)
      in
      let vlines = List.filter (fun l -> l <> "") rest in
      let nlines = List.length vlines in
      let verdicts = List.mapi (fun i l -> (l, i = nlines - 1)) vlines in
      let rec collect acc prev = function
        | [] -> List.rev acc
        | (line, is_last) :: tl -> (
            match parse_entry_line line with
            | Some (idx, e) when idx > prev -> collect ((idx, e) :: acc) idx tl
            | Some _ | None ->
                (* only the final record may be torn; anything earlier
                   is corruption (including an index that runs
                   backwards) *)
                if is_last then List.rev acc
                else parse_fail path (Printf.sprintf "corrupt verdict record: %S" line))
      in
      (header, collect [] (-1) verdicts))
  | _ -> parse_fail path "not a halotis-faults journal (bad magic line)"

let contiguous ~first indexed =
  List.mapi
    (fun i (idx, e) ->
      if idx <> first + i then
        Diag.fail ~code:"journal-merge"
          ~hint:"a worker died before journaling this site; re-run with --resume to fill the gap"
          (Printf.sprintf "verdict for site %d is missing (found %d instead)" (first + i)
             idx)
      else e)
    indexed

let partition ~first entries =
  let rec go i vs qs = function
    | [] -> (List.rev vs, List.rev qs)
    | Verdict v :: tl -> go (i + 1) (v :: vs) qs tl
    | Quarantined :: tl -> go (i + 1) vs (i :: qs) tl
  in
  go first [] [] entries

let merge parts =
  match parts with
  | [] -> Diag.fail ~code:"journal-merge" "no journals to merge"
  | (h0, _) :: _ ->
      let strip h = { h with jh_range = None } in
      List.iteri
        (fun k (h, _) ->
          if strip h <> strip h0 then
            Diag.fail ~code:"journal-merge"
              (Printf.sprintf
                 "shard journal %d was written for a different campaign than shard 0" k))
        parts;
      let all = List.concat_map snd parts in
      let sorted = List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) all in
      (* Equal records for the same site (an overlap from a re-run
         shard) collapse; different ones mean the shards simulated
         different campaigns — or a retry re-simulated a site another
         attempt quarantined — and nothing can be trusted. *)
      let rec dedupe = function
        | (ia, ea) :: ((ib, eb) :: _ as tl) when ia = ib ->
            if entry_line ia ea = entry_line ib eb then dedupe tl
            else
              Diag.fail ~code:"journal-merge"
                (Printf.sprintf "shard journals disagree on the verdict for site %d" ia)
        | x :: tl -> x :: dedupe tl
        | [] -> []
      in
      (strip h0, dedupe sorted)
