type issue =
  | Undriven_signal of Netlist.signal_id
  | Dangling_signal of Netlist.signal_id
  | Unused_primary_input of Netlist.signal_id
  | Combinational_cycle of Netlist.gate_id list

let pp_issue c fmt = function
  | Undriven_signal id -> Format.fprintf fmt "undriven signal %s" (Netlist.signal_name c id)
  | Dangling_signal id -> Format.fprintf fmt "dangling signal %s" (Netlist.signal_name c id)
  | Unused_primary_input id ->
      Format.fprintf fmt "unused primary input %s" (Netlist.signal_name c id)
  | Combinational_cycle gids ->
      Format.fprintf fmt "combinational cycle: %s"
        (String.concat " -> " (List.map (Netlist.gate_name c) gids))

(* Kahn's algorithm over the gate graph; an edge g1 -> g2 exists when
   g1's output feeds one of g2's pins. *)
let topo_with_cycle c =
  let ngates = Netlist.gate_count c in
  let indegree = Array.make ngates 0 in
  (* one edge per load *pin*: a gate wired twice to the same signal
     contributes two edges, matching the indegree count below *)
  let gate_succs gid =
    let g = Netlist.gate c gid in
    Array.to_list
      (Array.map fst (Netlist.signal c g.Netlist.output).Netlist.loads)
  in
  for gid = 0 to ngates - 1 do
    let g = Netlist.gate c gid in
    Array.iter
      (fun sid ->
        match (Netlist.signal c sid).Netlist.driver with
        | Some _ -> indegree.(gid) <- indegree.(gid) + 1
        | None -> ())
      g.Netlist.fanin
  done;
  let queue = Queue.create () in
  Array.iteri (fun gid d -> if d = 0 then Queue.add gid queue) indegree;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let gid = Queue.pop queue in
    order := gid :: !order;
    incr visited;
    List.iter
      (fun succ ->
        indegree.(succ) <- indegree.(succ) - 1;
        if indegree.(succ) = 0 then Queue.add succ queue)
      (gate_succs gid)
  done;
  if !visited = ngates then Ok (List.rev !order)
  else begin
    (* Gates never popped have final indegree > 0 and each has at least
       one unpopped predecessor, so walking backwards must revisit a
       gate: that closes a cycle. *)
    let unpopped gid = indegree.(gid) > 0 in
    let start =
      let rec find gid = if unpopped gid then gid else find (gid + 1) in
      find 0
    in
    let predecessor gid =
      let g = Netlist.gate c gid in
      let drivers =
        Array.to_list g.Netlist.fanin
        |> List.filter_map (fun sid -> (Netlist.signal c sid).Netlist.driver)
      in
      List.find unpopped drivers
    in
    let rec walk path gid =
      if List.mem gid path then
        (* [path] is most-recent-first; the entries from its head down
           to the revisited gate are the cycle (anything older is the
           acyclic tail walked before entering it).  Head-first order is
           forward edge order: each kept gate feeds the next, and the
           revisited gate feeds the head. *)
        let rec take = function
          | [] -> []
          | x :: rest -> if x = gid then [ x ] else x :: take rest
        in
        take path
      else walk (gid :: path) (predecessor gid)
    in
    Error (walk [] start)
  end

let topological_gates c = match topo_with_cycle c with Ok l -> Some l | Error _ -> None

let find_cycle c = match topo_with_cycle c with Ok _ -> None | Error cycle -> Some cycle

(* Iterative Tarjan over the gate graph (explicit frame stack: gate
   graphs can be deep enough that recursion is a liability). *)
let sccs c =
  let n = Netlist.gate_count c in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let succs gid = Netlist.fanout_gates c (Netlist.gate c gid).Netlist.output in
  let frames = Stack.create () in
  let open_frame gid =
    index.(gid) <- !counter;
    lowlink.(gid) <- !counter;
    incr counter;
    stack := gid :: !stack;
    on_stack.(gid) <- true;
    Stack.push (gid, ref (succs gid)) frames
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      open_frame root;
      while not (Stack.is_empty frames) do
        let gid, remaining = Stack.top frames in
        match !remaining with
        | succ :: rest ->
            remaining := rest;
            if index.(succ) = -1 then open_frame succ
            else if on_stack.(succ) then lowlink.(gid) <- min lowlink.(gid) index.(succ)
        | [] ->
            ignore (Stack.pop frames);
            (match Stack.top_opt frames with
            | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(gid)
            | None -> ());
            if lowlink.(gid) = index.(gid) then begin
              let rec pop acc =
                match !stack with
                | member :: rest ->
                    stack := rest;
                    on_stack.(member) <- false;
                    if member = gid then member :: acc else pop (member :: acc)
                | [] -> assert false
              in
              let component = pop [] in
              let cyclic =
                match component with
                | [ only ] -> List.mem only (succs only) (* self-loop *)
                | _ -> true
              in
              if cyclic then result := component :: !result
            end
      done
    end
  done;
  List.rev !result

let structural_issues c =
  let issues = ref [] in
  Array.iter
    (fun (s : Netlist.signal) ->
      let driven = s.driver <> None || s.is_primary_input || s.constant <> None in
      if not driven then issues := Undriven_signal s.signal_id :: !issues;
      if Array.length s.loads = 0 && not s.is_primary_output && s.constant = None then
        if s.is_primary_input then
          issues := Unused_primary_input s.signal_id :: !issues
        else issues := Dangling_signal s.signal_id :: !issues)
    (Netlist.signals c);
  List.iter (fun scc -> issues := Combinational_cycle scc :: !issues) (sccs c);
  List.rev !issues

let levelize c =
  match topological_gates c with
  | None -> None
  | Some order ->
      let nsignals = Netlist.signal_count c in
      let sig_level = Array.make nsignals 0 in
      let gate_level = Array.make (Netlist.gate_count c) 0 in
      List.iter
        (fun gid ->
          let g = Netlist.gate c gid in
          let lvl =
            Array.fold_left (fun acc sid -> max acc sig_level.(sid)) 0 g.Netlist.fanin + 1
          in
          gate_level.(gid) <- lvl;
          sig_level.(g.Netlist.output) <- lvl)
        order;
      Some gate_level

let depth c =
  match levelize c with
  | None -> None
  | Some levels -> Some (Array.fold_left max 0 levels)

let max_fanout c =
  Array.fold_left
    (fun acc (s : Netlist.signal) -> max acc (Array.length s.loads))
    0 (Netlist.signals c)

let transitive_fanin_signals c sid =
  let seen = Hashtbl.create 64 in
  let rec visit sid acc =
    if Hashtbl.mem seen sid then acc
    else begin
      Hashtbl.add seen sid ();
      let acc = sid :: acc in
      match (Netlist.signal c sid).Netlist.driver with
      | None -> acc
      | Some gid ->
          Array.fold_left (fun acc fid -> visit fid acc) acc (Netlist.gate c gid).Netlist.fanin
    end
  in
  List.rev (visit sid [])

let pi_reachable_gates c =
  let nsignals = Netlist.signal_count c in
  let ngates = Netlist.gate_count c in
  let sig_seen = Array.make nsignals false in
  let gate_seen = Array.make ngates false in
  let queue = Queue.create () in
  List.iter
    (fun sid ->
      sig_seen.(sid) <- true;
      Queue.add sid queue)
    (Netlist.primary_inputs c);
  while not (Queue.is_empty queue) do
    let sid = Queue.pop queue in
    List.iter
      (fun gid ->
        if not gate_seen.(gid) then begin
          gate_seen.(gid) <- true;
          let out = (Netlist.gate c gid).Netlist.output in
          if not sig_seen.(out) then begin
            sig_seen.(out) <- true;
            Queue.add out queue
          end
        end)
      (Netlist.fanout_gates c sid)
  done;
  gate_seen

let constant_signals c =
  let nsignals = Netlist.signal_count c in
  let value = Array.make nsignals Halotis_logic.Value.X in
  Array.iter
    (fun (s : Netlist.signal) ->
      match s.Netlist.constant with
      | Some v -> value.(s.Netlist.signal_id) <- v
      | None -> ())
    (Netlist.signals c);
  (* Fixpoint constant propagation; converges on cyclic graphs too
     because values only move X -> rail, never back. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (g : Netlist.gate) ->
        let out = g.Netlist.output in
        if Halotis_logic.Value.equal value.(out) Halotis_logic.Value.X then begin
          let ins = Array.map (fun sid -> value.(sid)) g.Netlist.fanin in
          let v = Halotis_logic.Gate_kind.eval g.Netlist.kind ins in
          match v with
          | Halotis_logic.Value.L0 | Halotis_logic.Value.L1 ->
              value.(out) <- v;
              changed := true
          | Halotis_logic.Value.X | Halotis_logic.Value.Z -> ()
        end)
      (Netlist.gates c)
  done;
  value
