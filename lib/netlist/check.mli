(** Structural analyses over a finished {!Netlist.t}: driver checks,
    combinational-cycle enumeration, levelization, reachability and
    fanout statistics.  The simulators require [topological_gates] to
    succeed (purely combinational circuits), matching the paper's
    benchmark set.  The rule-based front end over these analyses lives
    in [Halotis_lint]. *)

type issue =
  | Undriven_signal of Netlist.signal_id
      (** not a PI, not a constant, and has no driver *)
  | Dangling_signal of Netlist.signal_id
      (** an internal or gate-driven signal that drives nothing and is
          not a primary output *)
  | Unused_primary_input of Netlist.signal_id
      (** a primary input with no loads — deliberate or not, it is
          distinct from a genuinely dangling internal wire *)
  | Combinational_cycle of Netlist.gate_id list
      (** one strongly connected component of the gate graph with at
          least one feedback edge *)

val pp_issue : Netlist.t -> Format.formatter -> issue -> unit

val structural_issues : Netlist.t -> issue list
(** All issues; every cyclic SCC is reported once. *)

val topological_gates : Netlist.t -> Netlist.gate_id list option
(** Gates in topological order (fanin before fanout), or [None] when a
    combinational cycle exists. *)

val find_cycle : Netlist.t -> Netlist.gate_id list option
(** A witness cycle in forward edge order (each gate feeds the next,
    the last feeds the first), or [None] when the circuit is acyclic. *)

val sccs : Netlist.t -> Netlist.gate_id list list
(** Every cyclic strongly connected component of the gate graph
    (Tarjan), including single-gate self-loops; unlike {!find_cycle}
    this enumerates {e all} feedback regions. *)

val levelize : Netlist.t -> int array option
(** [levelize c] gives each gate its logic depth (PIs at depth 0; a
    gate's level is 1 + max of its fanin signal levels), or [None] on a
    cycle. *)

val depth : Netlist.t -> int option
(** Maximum gate level; [Some 0] for an empty circuit. *)

val max_fanout : Netlist.t -> int
(** Largest number of load pins on any signal. *)

val transitive_fanin_signals : Netlist.t -> Netlist.signal_id -> Netlist.signal_id list
(** Signals (including the argument) in the cone of influence of a
    signal. *)

val pi_reachable_gates : Netlist.t -> bool array
(** Per-gate flag: reachable from at least one primary input through
    the signal/gate graph.  Gates fed only by tie cells (or by nothing)
    are unreachable. *)

val constant_signals : Netlist.t -> Halotis_logic.Value.t array
(** Per-signal statically known value under constant propagation from
    the tie cells ([X] when not determined).  Converges on cyclic
    circuits. *)
