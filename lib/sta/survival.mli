(** Static SET pulse-survival analysis — abstract interpretation over
    pulse-width intervals.

    A single-event transient at a gate output is a pair of ramps: a
    leading edge away from the settled rail and a trailing edge back,
    separated by the pulse width [w].  As the pulse crosses a fanout
    input it is filtered by that pin's threshold [VT] (a ramp-start
    separation below [slope * VT/VDD] never crosses), and as it passes
    through a gate the trailing edge is delayed by the DDM degradation
    map (eqs. 1-3) while the leading edge's delay can collapse to 0 —
    so the width transforms through a per-gate transfer function.

    This module computes conservative {e interval} bounds
    [\[w_lo, w_hi\]] on the surviving width, per signal and per leading
    polarity, propagated topologically through the fanout cone using
    exactly the cached per-(gate, edge) coefficients the event kernel
    evaluates ({!Halotis_delay.Delay_model.Cache.edge_coefficients}).
    Two consumers:

    {ul
    {- {!analyze} — the baseline-free vulnerability map behind
       [halotis survival] and the preflight lints: per-gate attenuation
       bounds and the weakest injected width whose upper bound can
       still reach each primary output.  It assumes a quiescent circuit
       and non-interfering single-pulse propagation (reconvergent pulse
       collisions are not modelled), so it is advisory.}
    {- {!pruner} / {!site_verdict} — the campaign-facing side.  Built
       from a {e completed} engine baseline, it only ever returns a
       proven verdict when the dynamic outcome is certain: the site
       must lie in the settled tail of the baseline, the cone analysis
       aborts to {!Unknown} on reconvergence, straddled thresholds,
       mid-rail levels or a possible primary-output crossing.  The
       soundness contract — checked by a QCheck property against the
       IDDM engine — is that a pruned site's dynamic verdict equals the
       proven one; in particular no dynamically [Propagated] site is
       ever pruned.}} *)

module Netlist = Halotis_netlist.Netlist

(** {1 Site verdicts} *)

type verdict =
  | Proven_electrically_masked
      (** the pulse certainly dies electrically: every fanout threshold
          filters it, or it provably degrades away inside the cone
          without ever crossing a primary output's digital threshold *)
  | Proven_logically_masked
      (** the pulse certainly fires every fanout input but every
          receiving gate is logically insensitive to it at the settled
          input vector *)
  | Unknown  (** not provable statically — simulate the site *)

val verdict_to_string : verdict -> string

(** {1 Campaign pruner} *)

type pruner

val pruner :
  kind:Halotis_delay.Delay_model.kind ->
  Halotis_tech.Tech.t ->
  Netlist.t ->
  baseline:Halotis_engine.Iddm.result ->
  t_stop:float ->
  width:float ->
  slope:float ->
  pruner
(** [pruner ~kind tech c ~baseline ~t_stop ~width ~slope] prepares the
    static verdict oracle for a campaign injecting [width]/[slope]
    pulses under delay model [kind], against the given {e completed}
    baseline run of the same engine.  If the baseline is partial,
    frozen, cyclic or does not settle to the rails, every subsequent
    {!site_verdict} is {!Unknown}. *)

val site_verdict :
  pruner -> signal:Netlist.signal_id -> rising:bool -> at:float -> verdict
(** Static verdict for injecting the pruner's pulse at [signal] at time
    [at], leading edge rising iff [rising].  Only sites strictly after
    the baseline's last activity can be proven. *)

(** {1 Baseline-free vulnerability map} *)

type t

val analyze :
  ?width:float ->
  ?slope:float ->
  ?kind:Halotis_delay.Delay_model.kind ->
  Halotis_tech.Tech.t ->
  Netlist.t ->
  t
(** [analyze tech c] propagates a canonical pulse (default width 150 ps,
    slope 100 ps — the campaign defaults) from every candidate site
    through its fanout cone under the upper-bound transfer function.
    @raise Halotis_guard.Diag.Fail on a combinational cycle. *)

val width : t -> float
val slope : t -> float

val candidates : t -> Netlist.signal_id list
(** The injectable sites the analysis covered: driven signals not
    proven constant, in ascending id order. *)

val gate_attenuation : t -> Netlist.gate_id -> float option
(** Conservative bound on the width change of the canonical pulse
    across one gate: [Some d] means a surviving pulse leaves the gate
    at most [d] ps wider than it arrived (negative = guaranteed
    attenuation); [None] means every input threshold of the gate
    filters the canonical pulse outright. *)

val surviving_width : t -> Netlist.signal_id -> rising:bool -> float
(** Weakest injected width at this signal whose upper bound can still
    produce a digital edge at some primary output ([infinity] when no
    width can — the cone filters everything, or no output is
    reachable).  Widths strictly below the returned value are proven
    masked under the analysis' quiescence assumption. *)

val weakest_surviving : t -> (Netlist.signal_id * float) list
(** Per primary output, in declaration order: the weakest injected
    width (over all candidate sites) whose bound reaches that output;
    [infinity] when the output is unreachable by any feasible pulse. *)

val all_sites_filtered : t -> bool
(** True when {e no} candidate site's canonical pulse can reach any
    primary output — the campaign's site list is degenerate (lint
    NL020). *)

val to_json : t -> Halotis_util.Json.t
val pp_text : Format.formatter -> t -> unit
