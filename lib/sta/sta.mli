(** Static timing analysis over the conventional delay model.

    A companion tool to the simulator, in the spirit of the path-delay
    work the paper builds on (Kayssi et al. [3]): topological worst-case
    arrival times per signal and polarity, plus critical-path
    extraction.

    Semantics are conservative with respect to the event-driven
    engines: the arrival time of a signal is an upper bound on the
    instant its waveform completes its last ramp, so for any stimulus
    applied at the analysis' input arrival times, every simulated edge
    of an acyclic circuit lands at or before the reported arrival
    (checked by property test against the IDDM engine in CDM mode). *)

type arrival = {
  rise_at : Halotis_util.Units.time;  (** worst instant a rising ramp completes *)
  fall_at : Halotis_util.Units.time;
  slope : Halotis_util.Units.time;  (** output ramp full-swing time used downstream *)
}

type t

val analyze :
  ?input_arrival:Halotis_util.Units.time ->
  ?input_slope:Halotis_util.Units.time ->
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  t
(** Worst-case analysis with all primary inputs switching at
    [input_arrival] (default 0) with [input_slope] (default 100 ps).
    @raise Halotis_guard.Diag.Fail (code [cyclic-circuit], with a
    witness cycle) on a combinational cycle. *)

val fail_cyclic : Halotis_netlist.Netlist.t -> what:string -> 'a
(** Rejects a cyclic circuit with a [cyclic-circuit] diagnostic naming
    a witness cycle; shared by every static analysis in this library.
    @raise Halotis_guard.Diag.Fail always. *)

val arrival : t -> Halotis_netlist.Netlist.signal_id -> arrival

val worst : t -> Halotis_util.Units.time
(** Latest arrival over the primary outputs (0 for a circuit without
    outputs). *)

val worst_output : t -> Halotis_netlist.Netlist.signal_id option
(** The primary output achieving {!worst}. *)

type path_step = {
  step_gate : Halotis_netlist.Netlist.gate_id;
  step_pin : int;
  step_signal : Halotis_netlist.Netlist.signal_id;  (** the gate's output *)
  step_rising : bool;  (** polarity of the output ramp on the path *)
  step_at : Halotis_util.Units.time;
}

val critical_path : t -> path_step list
(** The gate chain realising {!worst}, input-side first; empty when the
    worst output is an undriven signal. *)

val pp_path : Halotis_netlist.Netlist.t -> Format.formatter -> path_step list -> unit
(** One line per hop: gate, pin, output signal, polarity, arrival. *)

val slack :
  t -> period:Halotis_util.Units.time ->
  (Halotis_netlist.Netlist.signal_id * Halotis_util.Units.time) list
(** Per primary output, [period - arrival] (static signals excluded):
    negative slack means the output misses a cycle of that period. *)

val min_period : t -> Halotis_util.Units.time
(** The smallest period with non-negative slack everywhere — {!worst}
    under another name, for clock-planning readability. *)
