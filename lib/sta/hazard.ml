module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Tech = Halotis_tech.Tech

type window = { earliest : float; latest : float }
type kind = Timing | Function
type site = { hz_gate : Netlist.gate_id; hz_kind : kind; hz_window_overlap : float }

type t = {
  circuit : Netlist.t;
  windows : window option array; (* per signal *)
  site_list : site list;
}

let analyze ?(input_slope = 100.) tech c =
  let order =
    match Check.topological_gates c with
    | Some order -> order
    | None -> Sta.fail_cyclic c ~what:"Hazard.analyze"
  in
  let loads = Halotis_delay.Loads.of_netlist tech c in
  let nsignals = Netlist.signal_count c in
  let windows = Array.make nsignals None in
  (* conservative upper bound on the slope of the ramps a signal can
     carry, needed because tp grows with the input slope *)
  let max_slope = Array.make nsignals input_slope in
  Array.iter
    (fun (s : Netlist.signal) ->
      if s.Netlist.is_primary_input then
        windows.(s.Netlist.signal_id) <- Some { earliest = 0.; latest = input_slope })
    (Netlist.signals c);
  List.iter
    (fun gid ->
      let g = Netlist.gate c gid in
      let gt = Tech.gate_tech tech g.Netlist.kind in
      let cl = loads.(g.Netlist.output) in
      let tau_out ~rising = Tech.output_slope (Tech.edge gt ~rising) ~cl in
      let tau_out_max = Float.max (tau_out ~rising:true) (tau_out ~rising:false) in
      let acc = ref None in
      Array.iteri
        (fun pin fid ->
          match windows.(fid) with
          | None -> ()
          | Some win ->
              let pf = gt.Tech.pin_factor pin in
              let tp ~rising ~tau_in =
                Tech.base_delay (Tech.edge gt ~rising) ~pin_factor:pf ~cl ~tau_in
              in
              (* earliest: fastest edge, sharpest plausible slope *)
              let tp_min = Float.min (tp ~rising:true ~tau_in:0.) (tp ~rising:false ~tau_in:0.) in
              let tp_max =
                Float.max
                  (tp ~rising:true ~tau_in:max_slope.(fid) +. tau_out ~rising:true)
                  (tp ~rising:false ~tau_in:max_slope.(fid) +. tau_out ~rising:false)
              in
              let e = win.earliest +. tp_min and l = win.latest +. tp_max in
              acc :=
                Some
                  (match !acc with
                  | None -> { earliest = e; latest = l }
                  | Some w -> { earliest = Float.min w.earliest e; latest = Float.max w.latest l }))
        g.Netlist.fanin;
      windows.(g.Netlist.output) <- !acc;
      max_slope.(g.Netlist.output) <- tau_out_max)
    order;
  (* collision sites: pairwise window overlap on >= 2 switching inputs *)
  let site_list = ref [] in
  Array.iter
    (fun (g : Netlist.gate) ->
      let wins =
        Array.to_list g.Netlist.fanin
        |> List.filter_map (fun fid -> windows.(fid))
      in
      if List.length wins >= 2 then begin
        let arr = Array.of_list wins in
        let overlap = ref 0. in
        for i = 0 to Array.length arr - 1 do
          for j = i + 1 to Array.length arr - 1 do
            let a = arr.(i) and b = arr.(j) in
            let o = Float.min a.latest b.latest -. Float.max a.earliest b.earliest in
            if o > !overlap then overlap := o
          done
        done;
        let site =
          if !overlap > 0. then
            { hz_gate = g.Netlist.gate_id; hz_kind = Timing; hz_window_overlap = !overlap }
          else { hz_gate = g.Netlist.gate_id; hz_kind = Function; hz_window_overlap = 0. }
        in
        site_list := site :: !site_list
      end)
    (Netlist.gates c);
  let site_list =
    List.sort
      (fun a b ->
        match (a.hz_kind, b.hz_kind) with
        | Timing, Function -> -1
        | Function, Timing -> 1
        | (Timing | Function), _ ->
            Float.compare b.hz_window_overlap a.hz_window_overlap)
      !site_list
  in
  { circuit = c; windows; site_list }

let window t sid = t.windows.(sid)
let sites t = t.site_list
let timing_sites t = List.filter (fun s -> s.hz_kind = Timing) t.site_list
let is_hazardous t gid = List.exists (fun s -> s.hz_gate = gid) t.site_list

let pp_sites c fmt sites =
  List.iter
    (fun s ->
      match s.hz_kind with
      | Timing ->
          Format.fprintf fmt "  %-16s timing, overlap %a@."
            (Netlist.gate_name c s.hz_gate)
            Halotis_util.Units.pp_time s.hz_window_overlap
      | Function ->
          Format.fprintf fmt "  %-16s function hazard only@."
            (Netlist.gate_name c s.hz_gate))
    sites
