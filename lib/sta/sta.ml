module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Tech = Halotis_tech.Tech
module Gate_kind = Halotis_logic.Gate_kind
module Delay_model = Halotis_delay.Delay_model

type arrival = { rise_at : float; fall_at : float; slope : float }

type best_cause = { from_pin : int; from_rising : bool }

type t = {
  circuit : Netlist.t;
  arrivals : arrival array; (* per signal *)
  causes : (best_cause option * best_cause option) array;
      (* per gate: argmax cause of (rise, fall) at its output *)
}

(* Can an input edge of polarity [in_rising] on any pin produce an
   output edge of polarity [out_rising]?  Unate gates constrain the
   combination; XOR-like gates allow both. *)
let can_cause kind ~in_rising ~out_rising =
  match kind with
  | Gate_kind.Inv | Gate_kind.Nand _ | Gate_kind.Nor _ | Gate_kind.Aoi21 | Gate_kind.Oai21
    ->
      in_rising <> out_rising
  | Gate_kind.Buf | Gate_kind.And _ | Gate_kind.Or _ -> in_rising = out_rising
  | Gate_kind.Xor _ | Gate_kind.Xnor _ | Gate_kind.Mux2 -> true

(* Shared no-backtrace rejection of cyclic circuits for every static
   analysis in this library: a structured diagnostic naming a witness
   cycle beats [Invalid_argument] with no context. *)
let fail_cyclic c ~what =
  let witness =
    match Check.find_cycle c with
    | Some cycle ->
        String.concat " -> "
          (List.map (Netlist.gate_name c) (cycle @ [ List.hd cycle ]))
    | None -> "<no witness>"
  in
  Halotis_guard.Diag.fail ~code:"cyclic-circuit"
    ~hint:"static analyses need an acyclic gate graph; break the feedback loop or simulate with the oscillation watchdog instead"
    (Printf.sprintf "%s: circuit %s has a combinational cycle: %s" what
       (Netlist.name c) witness)

let analyze ?(input_arrival = 0.) ?(input_slope = 100.) tech c =
  let order =
    match Check.topological_gates c with
    | Some order -> order
    | None -> fail_cyclic c ~what:"Sta.analyze"
  in
  let nsignals = Netlist.signal_count c in
  let never = neg_infinity in
  let arrivals =
    Array.init nsignals (fun sid ->
        let s = Netlist.signal c sid in
        if s.Netlist.is_primary_input then
          {
            rise_at = input_arrival +. input_slope;
            fall_at = input_arrival +. input_slope;
            slope = input_slope;
          }
        else { rise_at = never; fall_at = never; slope = input_slope })
  in
  let loads = Halotis_delay.Loads.of_netlist tech c in
  let causes = Array.make (Netlist.gate_count c) (None, None) in
  List.iter
    (fun gid ->
      let g = Netlist.gate c gid in
      let gt = Tech.gate_tech tech g.Netlist.kind in
      let cl = loads.(g.Netlist.output) in
      let eval ~out_rising =
        let p = Tech.edge gt ~rising:out_rising in
        let tau_out = Tech.output_slope p ~cl in
        let best = ref never and best_cause = ref None in
        Array.iteri
          (fun pin fid ->
            let fa = arrivals.(fid) in
            List.iter
              (fun in_rising ->
                if can_cause g.Netlist.kind ~in_rising ~out_rising then begin
                  let at = if in_rising then fa.rise_at else fa.fall_at in
                  if at > never then begin
                    let tp =
                      Tech.base_delay p
                        ~pin_factor:(gt.Tech.pin_factor pin)
                        ~cl ~tau_in:fa.slope
                    in
                    let total = at +. tp +. tau_out in
                    if total > !best then begin
                      best := total;
                      best_cause := Some { from_pin = pin; from_rising = in_rising }
                    end
                  end
                end)
              [ true; false ])
          g.Netlist.fanin;
        (!best, !best_cause, tau_out)
      in
      let rise_at, rise_cause, tau_r = eval ~out_rising:true in
      let fall_at, fall_cause, tau_f = eval ~out_rising:false in
      arrivals.(g.Netlist.output) <-
        { rise_at; fall_at; slope = Float.max tau_r tau_f };
      causes.(gid) <- (rise_cause, fall_cause))
    order;
  { circuit = c; arrivals; causes }

let arrival t sid = t.arrivals.(sid)

let output_arrivals t =
  List.filter_map
    (fun sid ->
      let a = t.arrivals.(sid) in
      let v = Float.max a.rise_at a.fall_at in
      if v > neg_infinity then Some (sid, v) else None)
    (Netlist.primary_outputs t.circuit)

let worst t = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. (output_arrivals t)

let worst_output t =
  match
    List.sort (fun (_, a) (_, b) -> Float.compare b a) (output_arrivals t)
  with
  | (sid, _) :: _ -> Some sid
  | [] -> None

type path_step = {
  step_gate : Netlist.gate_id;
  step_pin : int;
  step_signal : Netlist.signal_id;
  step_rising : bool;
  step_at : float;
}

let critical_path t =
  match worst_output t with
  | None -> []
  | Some sid ->
      let rec walk sid rising acc =
        match (Netlist.signal t.circuit sid).Netlist.driver with
        | None -> acc
        | Some gid ->
            let rise_cause, fall_cause = t.causes.(gid) in
            let cause = if rising then rise_cause else fall_cause in
            (match cause with
            | None -> acc
            | Some { from_pin; from_rising } ->
                let a = t.arrivals.(sid) in
                let step =
                  {
                    step_gate = gid;
                    step_pin = from_pin;
                    step_signal = sid;
                    step_rising = rising;
                    step_at = (if rising then a.rise_at else a.fall_at);
                  }
                in
                walk (Netlist.gate t.circuit gid).Netlist.fanin.(from_pin) from_rising
                  (step :: acc))
      in
      let a = t.arrivals.(sid) in
      walk sid (a.rise_at >= a.fall_at) []

let pp_path c fmt steps =
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-14s pin %d -> %-12s %s at %a@."
        (Netlist.gate_name c s.step_gate)
        s.step_pin
        (Netlist.signal_name c s.step_signal)
        (if s.step_rising then "rise" else "fall")
        Halotis_util.Units.pp_time s.step_at)
    steps

let slack t ~period =
  List.map (fun (sid, arrival) -> (sid, period -. arrival)) (output_arrivals t)

let min_period = worst
