(** Static hazard analysis: which gates {e can} produce collision
    glitches.

    For every signal we compute, besides the latest arrival of
    {!Sta.analyze}, the {e earliest} possible arrival (min-delay
    analysis).  A multi-input gate whose input uncertainty windows
    [\[min, max\]] overlap can see input collisions — the glitch
    sources of the paper's introduction.  The dynamic engines then
    confirm or refute each site.

    This is a conservative analysis: every dynamically observed glitch
    on a vectored workload originates at a flagged gate (checked by
    property test), but flagged gates need not glitch for a particular
    vector pair. *)

type window = {
  earliest : Halotis_util.Units.time;
  latest : Halotis_util.Units.time;
}

type kind =
  | Timing  (** input uncertainty windows overlap: a race can glitch *)
  | Function
      (** >= 2 inputs switch but their windows are disjoint: pulses can
          still arise from the intermediate input vector (always for
          XOR-like gates, input-vector-dependent for unate ones) *)

type site = {
  hz_gate : Halotis_netlist.Netlist.gate_id;
  hz_kind : kind;
  hz_window_overlap : Halotis_util.Units.time;
      (** width of the pairwise input-window overlap, ps; 0 for
          {!Function} sites *)
}

type t

val analyze :
  ?input_slope:Halotis_util.Units.time ->
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  t
(** Min/max arrival analysis with all inputs switching at time 0.
    @raise Halotis_guard.Diag.Fail (code [cyclic-circuit], with a
    witness cycle) on a combinational cycle. *)

val window : t -> Halotis_netlist.Netlist.signal_id -> window option
(** Arrival uncertainty window of a signal; [None] when it cannot
    switch (constant cone). *)

val sites : t -> site list
(** Every gate with >= 2 switching inputs — the complete set of
    potential glitch sources (conservative: any glitch a simulation
    generates at a gate with monotone inputs originates at a site).
    {!Timing} sites first, by decreasing overlap, then {!Function}
    sites. *)

val timing_sites : t -> site list
(** Just the {!Timing} subset. *)

val is_hazardous : t -> Halotis_netlist.Netlist.gate_id -> bool

val pp_sites : Halotis_netlist.Netlist.t -> Format.formatter -> site list -> unit
