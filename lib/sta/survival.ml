module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Tech = Halotis_tech.Tech
module Calibrate = Halotis_tech.Calibrate
module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value
module Delay_model = Halotis_delay.Delay_model
module Cache = Halotis_delay.Delay_model.Cache
module Thresholds = Halotis_delay.Thresholds
module Loads = Halotis_delay.Loads
module Waveform = Halotis_wave.Waveform
module Iddm = Halotis_engine.Iddm
module Stats = Halotis_engine.Stats
module Stop = Halotis_guard.Stop
module Json = Halotis_util.Json

type verdict = Proven_electrically_masked | Proven_logically_masked | Unknown

let verdict_to_string = function
  | Proven_electrically_masked -> "proven-electrically-masked"
  | Proven_logically_masked -> "proven-logically-masked"
  | Unknown -> "unknown"

(* Safety margin (ps) around every threshold comparison: the engine and
   this analysis compute the same crossings with differently associated
   float expressions, so equality-zone sites are never decided
   statically. *)
let margin = 1e-6

(* The abstract domain: one SET pulse on a wire, as interval bounds.
   [pb_w] is the ramp-start separation of the two pulse edges; the
   slope intervals collapse to points everywhere except after a merge
   in the baseline-free may-analysis. *)
type pb = {
  pb_rising : bool;  (* leading-edge polarity; the wire rests at the opposite rail *)
  pb_sl_lo : float;  (* leading-edge slope time bounds, ps *)
  pb_sl_hi : float;
  pb_st_lo : float;  (* trailing-edge slope time bounds, ps *)
  pb_st_hi : float;
  pb_w_lo : float;  (* ramp-start separation bounds, ps *)
  pb_w_hi : float;
}

let pb_point ~rising ~slope ~width =
  {
    pb_rising = rising;
    pb_sl_lo = slope;
    pb_sl_hi = slope;
    pb_st_lo = slope;
    pb_st_hi = slope;
    pb_w_lo = width;
    pb_w_hi = width;
  }

(* Shared per-circuit context; the delay coefficients come from the
   same cache the event kernel reads, so the transfer function bounds
   exactly the numbers a simulation would evaluate. *)
type ctx = {
  cx_tech : Tech.t;
  cx_c : Netlist.t;
  cx_kind : Delay_model.kind;
  cx_vdd : float;
  cx_vt : float array array;
  cx_cache : Cache.t;
  cx_order : Netlist.gate_id list;
}

let ctx_make ~kind tech c ~order =
  let loads = Loads.of_netlist tech c in
  {
    cx_tech = tech;
    cx_c = c;
    cx_kind = kind;
    cx_vdd = Tech.vdd tech;
    cx_vt = Thresholds.table tech c;
    cx_cache = Cache.create tech c ~loads;
    cx_order = order;
  }

(* Voltage fraction of the leading edge's swing up to [vt]: how far the
   ramp must travel (as a fraction of full swing) before the pin sees
   the edge. *)
let vt_frac cx pb ~vt =
  if vt <= 0. || vt >= cx.cx_vdd then None
  else Some (if pb.pb_rising then vt /. cx.cx_vdd else (cx.cx_vdd -. vt) /. cx.cx_vdd)

(* Separation of the two threshold crossings at a pin, as a function of
   the ramp-start separation [w] (only meaningful when the pulse fires,
   i.e. [w > sl * frac]).  [q = min (w / sl) 1] is the fraction of full
   swing the leading ramp travels before the trailing one truncates
   it.  Monotone increasing in [w] and [st], decreasing in [sl]. *)
let cross_sep ~frac ~sl ~st w = w +. (st *. (Float.min (w /. sl) 1. -. frac)) -. (sl *. frac)

type fate =
  | Dead  (* the pulse certainly never crosses this pin's threshold *)
  | Fires of float * float  (* certain crossing; [wc_lo, wc_hi] crossing separation *)
  | Straddle of float  (* undecided; [wc_hi] bound if it does fire *)

(* May-analysis view of a fate: the crossing-separation interval if the
   pulse possibly fires, [None] if it certainly dies. *)
let fate_bounds = function
  | Dead -> None
  | Fires (lo, hi) -> Some (lo, hi)
  | Straddle hi -> Some (0., hi)

let pin_fate cx pb ~vt =
  match vt_frac cx pb ~vt with
  | None -> None
  | Some frac ->
      let tc_lo = pb.pb_sl_lo *. frac and tc_hi = pb.pb_sl_hi *. frac in
      if pb.pb_w_hi <= tc_lo -. margin then Some Dead
      else if pb.pb_w_lo >= tc_hi +. margin then begin
        let wc_lo =
          Float.max 0. (cross_sep ~frac ~sl:pb.pb_sl_hi ~st:pb.pb_st_lo pb.pb_w_lo)
        in
        let wc_hi = cross_sep ~frac ~sl:pb.pb_sl_lo ~st:pb.pb_st_hi pb.pb_w_hi in
        Some (Fires (wc_lo, wc_hi))
      end
      else Some (Straddle (Float.max 0. (cross_sep ~frac ~sl:pb.pb_sl_lo ~st:pb.pb_st_hi pb.pb_w_hi)))

(* The per-gate width transfer function.  The leading output edge's
   delay is bounded below by 0 (full DDM collapse), the trailing one
   above by eq. 1 evaluated at the largest feasible time-since-last
   [T_hi = wc_hi + tp0_t - tp1_lo] — eq. 1 is monotone in T, and tau /
   T0 come from the engine's own cached (clamped) coefficients. *)
let through_gate cx ~gid ~pin ~rising_out ~wc_lo ~wc_hi ~(pb : pb) =
  let co_l = Cache.edge_coefficients cx.cx_cache gid ~rising:rising_out in
  let co_t = Cache.edge_coefficients cx.cx_cache gid ~rising:(not rising_out) in
  let pf = Cache.pin_factor cx.cx_cache gid ~pin in
  let tp0 (co : Cache.edge_coefficients) tau_in =
    pf *. (co.Cache.ec_d_base +. (co.Cache.ec_d_slope *. tau_in))
  in
  let tp0_l_a = tp0 co_l pb.pb_sl_lo and tp0_l_b = tp0 co_l pb.pb_sl_hi in
  let tp0_l_lo = Float.min tp0_l_a tp0_l_b and tp0_l_hi = Float.max tp0_l_a tp0_l_b in
  let tp0_t_a = tp0 co_t pb.pb_st_lo and tp0_t_b = tp0 co_t pb.pb_st_hi in
  let tp0_t_lo = Float.min tp0_t_a tp0_t_b and tp0_t_hi = Float.max tp0_t_a tp0_t_b in
  let tp1_lo, tp1_hi, tp2_lo, tp2_hi =
    match cx.cx_kind with
    | Delay_model.Cdm -> (tp0_l_lo, tp0_l_hi, tp0_t_lo, tp0_t_hi)
    | Delay_model.Ddm ->
        let t0_a = Float.max 0. (co_t.Cache.ec_t0_coef *. pb.pb_st_lo)
        and t0_b = Float.max 0. (co_t.Cache.ec_t0_coef *. pb.pb_st_hi) in
        let t0_lo = Float.min t0_a t0_b in
        let tp1_lo = Float.min 0. tp0_l_lo in
        let t_hi = wc_hi +. tp0_t_hi -. tp1_lo in
        let tp2_hi =
          Float.max 0.
            (Calibrate.predicted_delay ~tp0:tp0_t_hi ~tau:co_t.Cache.ec_ddm_tau ~t0:t0_lo
               ~time_since_last:t_hi)
        in
        (tp1_lo, Float.max 0. tp0_l_hi, Float.min 0. tp0_t_lo, tp2_hi)
  in
  let w_out_lo = Float.max 0. (wc_lo +. tp2_lo -. tp1_hi) in
  let w_out_hi = wc_hi +. tp2_hi -. tp1_lo in
  if w_out_hi <= 0. then None
  else
    Some
      {
        pb_rising = rising_out;
        pb_sl_lo = co_l.Cache.ec_tau_out;
        pb_sl_hi = co_l.Cache.ec_tau_out;
        pb_st_lo = co_t.Cache.ec_tau_out;
        pb_st_hi = co_t.Cache.ec_tau_out;
        pb_w_lo = w_out_lo;
        pb_w_hi = w_out_hi;
      }

(* Can the pulse put a digital edge (VDD/2 crossing) on its wire? *)
let may_cross_digital pb = pb.pb_w_hi > (0.5 *. pb.pb_sl_lo) -. margin

(* {1 Campaign pruner} *)

type pruner = {
  pr_ok : bool;
  pr_cx : ctx;
  pr_levels : bool array;  (* settled digital level per signal *)
  pr_quiet : float;  (* end of the last baseline ramp anywhere, ps *)
  pr_t_stop : float;
  pr_width : float;
  pr_slope : float;
  pr_po : bool array;
}

let pruner ~kind tech c ~baseline ~t_stop ~width ~slope =
  let nsignals = Netlist.signal_count c in
  let vdd = Tech.vdd tech in
  let levels = Array.make nsignals false in
  let po = Array.make nsignals false in
  List.iter (fun sid -> po.(sid) <- true) (Netlist.primary_outputs c);
  let quiet = ref 0. in
  let ok = ref true in
  let order =
    match Check.topological_gates c with
    | Some o -> o
    | None ->
        ok := false;
        []
  in
  if baseline.Iddm.stats.Stats.stopped_by <> Stop.Completed then ok := false;
  if baseline.Iddm.frozen <> [] then ok := false;
  if !ok then
    (* Settled levels and the global quiescence point.  Amplitude
       arguments are only sound against rails, so a baseline that does
       not settle exactly (X levels, mid-rail floats) disables the
       pruner wholesale. *)
    for sid = 0 to nsignals - 1 do
      let wf = baseline.Iddm.waveforms.(sid) in
      Waveform.iter_segments wf (fun (seg : Waveform.segment) ->
          let tr = seg.Waveform.transition in
          let fin = tr.Halotis_wave.Transition.start +. tr.Halotis_wave.Transition.slope_time in
          if fin > !quiet then quiet := fin);
      let v = Waveform.value_at wf Float.max_float in
      if v = 0. then levels.(sid) <- false
      else if v = vdd then levels.(sid) <- true
      else ok := false
    done;
  {
    pr_ok = !ok;
    pr_cx = ctx_make ~kind tech c ~order;
    pr_levels = levels;
    pr_quiet = !quiet;
    pr_t_stop = t_stop;
    pr_width = width;
    pr_slope = slope;
    pr_po = po;
  }

exception Not_provable

(* Every flip pattern of [pins] (against the settled input vector)
   evaluates the gate; used to decide whether a gate is insensitive
   (all patterns keep the settled output — every event is a no-op) or
   sensitive (every pattern flips it — the first crossing emits). *)
let flip_evals c levels gid pins =
  let g = Netlist.gate c gid in
  let k = List.length pins in
  if k > 12 then raise Not_provable;
  let pins = Array.of_list pins in
  let base = Array.map (fun fid -> levels.(fid)) g.Netlist.fanin in
  let out0 = levels.(g.Netlist.output) in
  if Gate_kind.eval_bool g.Netlist.kind base <> out0 then raise Not_provable;
  let results = ref [] in
  for mask = 1 to (1 lsl k) - 1 do
    let inputs = Array.copy base in
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then inputs.(pins.(i)) <- not inputs.(pins.(i))
    done;
    results := Gate_kind.eval_bool g.Netlist.kind inputs :: !results
  done;
  (out0, !results)

let site_verdict pr ~signal ~rising ~at =
  if not pr.pr_ok then Unknown
  else
    try
      let cx = pr.pr_cx in
      let c = cx.cx_c in
      let nsignals = Netlist.signal_count c in
      (* Only the settled tail of the baseline is decidable: the pulse
         must neither annul pending activity nor start from a moving
         waveform, and its injected polarity must leave the rail. *)
      if at <= pr.pr_quiet +. margin then raise Not_provable;
      if rising = pr.pr_levels.(signal) then raise Not_provable;
      let pb0 = pb_point ~rising ~slope:pr.pr_slope ~width:pr.pr_width in
      let po_safe pb = pb.pb_w_hi <= (0.5 *. pb.pb_sl_lo) -. margin in
      if pr.pr_po.(signal) && not (po_safe pb0) then raise Not_provable;
      let u0 = at +. pr.pr_width +. pr.pr_slope in
      let u_ok = u0 <= pr.pr_t_stop in
      (* First hop: fates of every fanout pin of the victim, grouped by
         gate, plus each gate's sensitivity at the settled vector. *)
      let loads = (Netlist.signal c signal).Netlist.loads in
      let by_gate = Hashtbl.create 8 in
      Array.iter
        (fun (g, pin) ->
          Hashtbl.replace by_gate g (pin :: Option.value ~default:[] (Hashtbl.find_opt by_gate g)))
        loads;
      let any_dead = ref false in
      let all_fire = ref (Array.length loads > 0) in
      let all_insensitive = ref true in
      let emission_certain = ref false in
      (* gates that may emit, each with its single live pin's crossing bound *)
      let emitters = ref [] in
      Hashtbl.iter
        (fun gid pins ->
          let fates =
            List.map
              (fun pin ->
                match pin_fate cx pb0 ~vt:cx.cx_vt.(gid).(pin) with
                | None -> raise Not_provable
                | Some f -> (pin, f))
              pins
          in
          let non_dead = List.filter (fun (_, f) -> f <> Dead) fates in
          if List.exists (fun (_, f) -> f = Dead) fates then any_dead := true;
          if not (List.for_all (fun (_, f) -> match f with Fires _ -> true | _ -> false) fates)
          then all_fire := false;
          if non_dead <> [] then begin
            let out0, evals = flip_evals c pr.pr_levels gid (List.map fst non_dead) in
            let insensitive = List.for_all (fun v -> v = out0) evals in
            let sensitive = List.for_all (fun v -> v <> out0) evals in
            if not insensitive then begin
              all_insensitive := false;
              if
                sensitive
                && List.exists (fun (_, f) -> match f with Fires _ -> true | _ -> false) non_dead
                && u_ok
              then emission_certain := true;
              (* a possibly-emitting gate with >= 2 live pins sees flip
                 patterns whose output pulse shape we do not model *)
              match non_dead with
              | [ (pin, f) ] ->
                  let wc_lo, wc_hi =
                    match f with Fires (lo, hi) -> (lo, hi) | Straddle hi -> (0., hi) | Dead -> assert false
                  in
                  emitters := (gid, pin, wc_lo, wc_hi) :: !emitters
              | _ -> raise Not_provable
            end
          end)
        by_gate;
      if Array.length loads > 0 && !all_fire && !all_insensitive then begin
        (* Every fanout input certainly fires and every evaluation is a
           no-op: the dynamic run records only [noop_evaluations] —
           provided every crossing is processed before the horizon. *)
        if u_ok then Proven_logically_masked else raise Not_provable
      end
      else begin
        (* Electrical masking needs the logically-masked dynamic bucket
           ruled out: either some pin's scheduled leading crossing is
           certainly tombstoned by the trailing splice
           ([events_filtered > 0]), or an emission is certain, or the
           strike has no fanout at all. *)
        if not (!any_dead || Array.length loads = 0 || !emission_certain) then
          raise Not_provable;
        (* Upper-bound cone walk from every possible emitter: the proof
           obligation is that no primary output can see a digital
           edge.  Aborts on reconvergence (two live pulses meeting). *)
        let pulse = Array.make nsignals None in
        List.iter
          (fun (gid, pin, wc_lo, wc_hi) ->
            let g = Netlist.gate c gid in
            let rising_out = not pr.pr_levels.(g.Netlist.output) in
            match through_gate cx ~gid ~pin ~rising_out ~wc_lo ~wc_hi ~pb:pb0 with
            | None -> ()
            | Some pb' ->
                if pr.pr_po.(g.Netlist.output) && not (po_safe pb') then raise Not_provable;
                (match pulse.(g.Netlist.output) with
                | Some _ -> raise Not_provable
                | None -> ());
                pulse.(g.Netlist.output) <- Some pb')
          !emitters;
        List.iter
          (fun gid ->
            let g = Netlist.gate c gid in
            let live = ref [] in
            Array.iteri
              (fun pin fid ->
                (* the victim's own pulse was consumed by the first-hop
                   analysis above; only emitted cone pulses walk here *)
                match pulse.(fid) with
                | None -> ()
                | Some pb -> (
                    match pin_fate cx pb ~vt:cx.cx_vt.(gid).(pin) with
                    | None -> raise Not_provable
                    | Some Dead -> ()
                    | Some (Fires (lo, hi)) -> live := (pin, pb, lo, hi) :: !live
                    | Some (Straddle hi) -> live := (pin, pb, 0., hi) :: !live))
              g.Netlist.fanin;
            match !live with
            | [] -> ()
            | _ :: _ :: _ -> raise Not_provable
            | [ (pin, pb, wc_lo, wc_hi) ] ->
                let out0, evals = flip_evals c pr.pr_levels gid [ pin ] in
                if List.for_all (fun v -> v = out0) evals then ()
                else begin
                  let rising_out = not pr.pr_levels.(g.Netlist.output) in
                  match through_gate cx ~gid ~pin ~rising_out ~wc_lo ~wc_hi ~pb with
                  | None -> ()
                  | Some pb' ->
                      if pr.pr_po.(g.Netlist.output) && not (po_safe pb') then
                        raise Not_provable;
                      (match pulse.(g.Netlist.output) with
                      | Some _ -> raise Not_provable
                      | None -> ());
                      pulse.(g.Netlist.output) <- Some pb'
                end)
          cx.cx_order;
        Proven_electrically_masked
      end
    with Not_provable -> Unknown

(* {1 Baseline-free vulnerability map} *)

let can_cause kind ~in_rising ~out_rising =
  match kind with
  | Gate_kind.Inv | Gate_kind.Nand _ | Gate_kind.Nor _ | Gate_kind.Aoi21 | Gate_kind.Oai21 ->
      in_rising <> out_rising
  | Gate_kind.Buf | Gate_kind.And _ | Gate_kind.Or _ -> in_rising = out_rising
  | Gate_kind.Xor _ | Gate_kind.Xnor _ | Gate_kind.Mux2 -> true

type t = {
  an_cx : ctx;
  an_width : float;
  an_slope : float;
  an_blocked : bool array;  (* gate output forced constant: can never emit *)
  an_candidates : Netlist.signal_id list;
  an_atten : float option array;
  an_reach : (Netlist.signal_id * bool) -> bool;  (* canonical pulse reaches some PO *)
  an_surviving : float array array Lazy.t;  (* [sid].[0=rising,1=falling] *)
  an_weakest : (Netlist.signal_id * float) list Lazy.t;
}

let pb_merge a b =
  {
    pb_rising = a.pb_rising;
    pb_sl_lo = Float.min a.pb_sl_lo b.pb_sl_lo;
    pb_sl_hi = Float.max a.pb_sl_hi b.pb_sl_hi;
    pb_st_lo = Float.min a.pb_st_lo b.pb_st_lo;
    pb_st_hi = Float.max a.pb_st_hi b.pb_st_hi;
    pb_w_lo = Float.min a.pb_w_lo b.pb_w_lo;
    pb_w_hi = Float.max a.pb_w_hi b.pb_w_hi;
  }

(* May-propagation with unknown input vectors: every non-blocked gate
   is assumed sensitizable, output polarities follow gate unateness,
   merges widen component-wise.  Returns, per signal, the per-polarity
   pulse bound reaching it (index 0 = rising leading edge). *)
let static_walk cx blocked ~sid0 ~rising0 ~width ~slope =
  let nsignals = Netlist.signal_count cx.cx_c in
  let pulse = Array.make (2 * nsignals) None in
  let slot sid rising = (2 * sid) + if rising then 0 else 1 in
  let put sid pb =
    let i = slot sid pb.pb_rising in
    pulse.(i) <- Some (match pulse.(i) with None -> pb | Some old -> pb_merge old pb)
  in
  put sid0 (pb_point ~rising:rising0 ~slope ~width);
  List.iter
    (fun gid ->
      let g = Netlist.gate cx.cx_c gid in
      if not blocked.(gid) then
        Array.iteri
          (fun pin fid ->
            List.iter
              (fun in_rising ->
                match pulse.(slot fid in_rising) with
                | None -> ()
                | Some pb -> (
                    match Option.bind (pin_fate cx pb ~vt:cx.cx_vt.(gid).(pin)) fate_bounds with
                    | None -> ()
                    | Some (wc_lo, wc_hi) ->
                        List.iter
                          (fun out_rising ->
                            if can_cause g.Netlist.kind ~in_rising ~out_rising then
                              match
                                through_gate cx ~gid ~pin ~rising_out:out_rising ~wc_lo
                                  ~wc_hi ~pb
                              with
                              | None -> ()
                              | Some pb' -> put g.Netlist.output pb')
                          [ true; false ]))
              [ true; false ])
          g.Netlist.fanin)
    cx.cx_order;
  fun sid rising -> pulse.(slot sid rising)

let reached_pos cx blocked ~pos ~sid0 ~rising0 ~width ~slope =
  let at_ = static_walk cx blocked ~sid0 ~rising0 ~width ~slope in
  List.filter
    (fun po ->
      List.exists
        (fun r -> match at_ po r with Some pb -> may_cross_digital pb | None -> false)
        [ true; false ])
    pos

let w_search_max = 1e6

let min_surviving_width cx blocked ~pos ~sid0 ~rising0 ~slope ~hits =
  let reaches w =
    List.exists hits (reached_pos cx blocked ~pos ~sid0 ~rising0 ~width:w ~slope)
  in
  if not (reaches w_search_max) then infinity
  else begin
    let lo = ref 0. and hi = ref w_search_max in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if reaches mid then hi := mid else lo := mid
    done;
    !hi
  end

let analyze ?(width = 150.) ?(slope = 100.) ?(kind = Delay_model.Ddm) tech c =
  let order =
    match Check.topological_gates c with
    | Some o -> o
    | None -> Sta.fail_cyclic c ~what:"Survival.analyze"
  in
  let cx = ctx_make ~kind tech c ~order in
  let constants = Check.constant_signals c in
  let blocked =
    Array.map
      (fun (g : Netlist.gate) ->
        match constants.(g.Netlist.output) with Value.L0 | Value.L1 -> true | _ -> false)
      (Netlist.gates c)
  in
  let candidates =
    Array.to_list (Netlist.signals c)
    |> List.filter_map (fun (s : Netlist.signal) ->
           match (s.Netlist.driver, s.Netlist.constant) with
           | Some _, None -> Some s.Netlist.signal_id
           | _ -> None)
  in
  let pos = Netlist.primary_outputs c in
  (* Per-gate attenuation bound: the canonical pulse straight into each
     pin; worst (most amplifying) surviving width change across pins
     and polarities, [None] when every pin filters it. *)
  let atten =
    Array.map
      (fun (g : Netlist.gate) ->
        let gid = g.Netlist.gate_id in
        let best = ref None in
        Array.iteri
          (fun pin _ ->
            List.iter
              (fun in_rising ->
                let pb = pb_point ~rising:in_rising ~slope ~width in
                match Option.bind (pin_fate cx pb ~vt:cx.cx_vt.(gid).(pin)) fate_bounds with
                | None -> ()
                | Some (wc_lo, wc_hi) ->
                    List.iter
                      (fun out_rising ->
                        if can_cause g.Netlist.kind ~in_rising ~out_rising then
                          match
                            through_gate cx ~gid ~pin ~rising_out:out_rising ~wc_lo
                              ~wc_hi ~pb
                          with
                          | None -> ()
                          | Some pb' ->
                              let d = pb'.pb_w_hi -. width in
                              best :=
                                Some
                                  (match !best with
                                  | None -> d
                                  | Some b -> Float.max b d))
                      [ true; false ])
              [ true; false ])
          g.Netlist.fanin;
        !best)
      (Netlist.gates c)
  in
  let reach (sid, rising) =
    reached_pos cx blocked ~pos ~sid0:sid ~rising0:rising ~width ~slope <> []
  in
  let surviving =
    lazy
      (let a = Array.make_matrix (Netlist.signal_count c) 2 infinity in
       List.iter
         (fun sid ->
           List.iter
             (fun rising ->
               a.(sid).(if rising then 0 else 1) <-
                 min_surviving_width cx blocked ~pos ~sid0:sid ~rising0:rising ~slope
                   ~hits:(fun _ -> true))
             [ true; false ])
         candidates;
       a)
  in
  let weakest =
    lazy
      (List.map
         (fun po ->
           let best = ref infinity in
           List.iter
             (fun sid ->
               List.iter
                 (fun rising ->
                   let w =
                     min_surviving_width cx blocked ~pos:[ po ] ~sid0:sid ~rising0:rising
                       ~slope ~hits:(fun p -> p = po)
                   in
                   if w < !best then best := w)
                 [ true; false ])
             candidates;
           (po, !best))
         pos)
  in
  {
    an_cx = cx;
    an_width = width;
    an_slope = slope;
    an_blocked = blocked;
    an_candidates = candidates;
    an_atten = atten;
    an_reach = reach;
    an_surviving = surviving;
    an_weakest = weakest;
  }

let width t = t.an_width
let slope t = t.an_slope
let candidates t = t.an_candidates
let gate_attenuation t gid = t.an_atten.(gid)
let surviving_width t sid ~rising = (Lazy.force t.an_surviving).(sid).(if rising then 0 else 1)
let weakest_surviving t = Lazy.force t.an_weakest

let all_sites_filtered t =
  t.an_candidates <> []
  && List.for_all
       (fun sid -> not (t.an_reach (sid, true) || t.an_reach (sid, false)))
       t.an_candidates

let num_or_null v = if Float.is_finite v then Json.Num v else Json.Null

let to_json t =
  let c = t.an_cx.cx_c in
  Json.Obj
    [
      ("tool", Json.Str "halotis-survival");
      ("circuit", Json.Str (Netlist.name c));
      ("delay_model", Json.Str (Delay_model.kind_to_string t.an_cx.cx_kind));
      ("pulse", Json.Obj [ ("width", Json.Num t.an_width); ("slope", Json.Num t.an_slope) ]);
      ( "gates",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun (g : Netlist.gate) ->
                  Json.Obj
                    [
                      ("gate", Json.Str g.Netlist.gate_name);
                      ( "attenuation_bound",
                        match t.an_atten.(g.Netlist.gate_id) with
                        | None -> Json.Null
                        | Some d -> Json.Num d );
                      ("blocked", Json.Bool t.an_blocked.(g.Netlist.gate_id));
                    ])
                (Netlist.gates c))) );
      ( "outputs",
        Json.Arr
          (List.map
             (fun (po, w) ->
               Json.Obj
                 [
                   ("output", Json.Str (Netlist.signal_name c po));
                   ("weakest_surviving_width", num_or_null w);
                 ])
             (weakest_surviving t)) );
      ( "sites",
        Json.Arr
          (List.map
             (fun sid ->
               Json.Obj
                 [
                   ("signal", Json.Str (Netlist.signal_name c sid));
                   ("rise", num_or_null (surviving_width t sid ~rising:true));
                   ("fall", num_or_null (surviving_width t sid ~rising:false));
                 ])
             t.an_candidates) );
      ("degenerate", Json.Bool (all_sites_filtered t));
    ]

let pp_text fmt t =
  let c = t.an_cx.cx_c in
  Format.fprintf fmt "survival map of %s (%s, pulse %g/%g ps)@." (Netlist.name c)
    (Delay_model.kind_to_string t.an_cx.cx_kind)
    t.an_width t.an_slope;
  Format.fprintf fmt "per-gate attenuation bound (surviving width change, ps):@.";
  Array.iter
    (fun (g : Netlist.gate) ->
      match t.an_atten.(g.Netlist.gate_id) with
      | None -> Format.fprintf fmt "  %-16s filters the pulse@." g.Netlist.gate_name
      | Some d ->
          Format.fprintf fmt "  %-16s %+.2f%s@." g.Netlist.gate_name d
            (if t.an_blocked.(g.Netlist.gate_id) then " (constant output: blocked)" else ""))
    (Netlist.gates c);
  Format.fprintf fmt "weakest surviving width per output:@.";
  List.iter
    (fun (po, w) ->
      if Float.is_finite w then
        Format.fprintf fmt "  %-16s %.2f ps@." (Netlist.signal_name c po) w
      else Format.fprintf fmt "  %-16s unreachable@." (Netlist.signal_name c po))
    (weakest_surviving t);
  if all_sites_filtered t then
    Format.fprintf fmt "every candidate site is filtered: the site list is degenerate@."
