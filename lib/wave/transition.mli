(** A transition: the linear-ramp stimulus primitive of HALOTIS.

    The paper approximates every signal change by a linear curve
    determined by the instant it begins ([start], the paper's [t0]) and
    its rise or fall time ([slope_time], the paper's tau_x): the ramp
    moves from wherever the signal is towards the corresponding rail
    (VDD when rising, 0 when falling) at rate [vdd / slope_time].

    A transition says nothing about its starting voltage — that is
    waveform context (see {!Waveform}); a heavily degraded pulse is a
    ramp that gets interrupted before reaching the rail. *)

type polarity = Rising | Falling

type t = {
  start : Halotis_util.Units.time;  (** the paper's [t0], ps *)
  slope_time : Halotis_util.Units.time;
      (** the paper's tau: time a full 0→VDD swing would take; > 0 *)
  polarity : polarity;
}

val make :
  start:Halotis_util.Units.time ->
  slope_time:Halotis_util.Units.time ->
  polarity:polarity ->
  t
(** @raise Invalid_argument when [slope_time <= 0] or [start] is not
    finite. *)

val opposite : polarity -> polarity
val polarity_to_string : polarity -> string
val equal_polarity : polarity -> polarity -> bool

val target : vdd:Halotis_util.Units.voltage -> t -> Halotis_util.Units.voltage
(** The rail the ramp heads to: [vdd] when rising, [0] when falling. *)

val slope : vdd:Halotis_util.Units.voltage -> t -> float
(** Signed voltage slope in V/ps. *)

val value_at :
  vdd:Halotis_util.Units.voltage ->
  v_start:Halotis_util.Units.voltage ->
  t ->
  Halotis_util.Units.time ->
  Halotis_util.Units.voltage
(** [value_at ~vdd ~v_start tr t] is the ramp voltage at time
    [t >= tr.start], starting from [v_start] and saturating at the
    target rail. *)

val crossing :
  vdd:Halotis_util.Units.voltage ->
  v_start:Halotis_util.Units.voltage ->
  t ->
  vt:Halotis_util.Units.voltage ->
  Halotis_util.Units.time option
(** [crossing ~vdd ~v_start tr ~vt] is the instant the unbounded ramp
    crosses threshold [vt], when [vt] lies strictly between [v_start]
    and the target rail (reaching the rail itself counts).  [None] when
    the ramp starts at or beyond [vt]. *)

(** {1 Scalar ramp math}

    Record-free variants used by hot paths that keep ramp parameters in
    flat arrays ({!Waveform}'s segment store).  They compute exactly the
    same float expressions as the record-taking functions above, which
    delegate to them. *)

val value_at_ramp :
  vdd:Halotis_util.Units.voltage ->
  v_start:Halotis_util.Units.voltage ->
  start:Halotis_util.Units.time ->
  slope_time:Halotis_util.Units.time ->
  rising:bool ->
  Halotis_util.Units.time ->
  Halotis_util.Units.voltage
(** Scalar {!value_at}. *)

val crossing_ramp :
  vdd:Halotis_util.Units.voltage ->
  v_start:Halotis_util.Units.voltage ->
  start:Halotis_util.Units.time ->
  slope_time:Halotis_util.Units.time ->
  rising:bool ->
  vt:Halotis_util.Units.voltage ->
  Halotis_util.Units.time
(** Scalar {!crossing}; [Float.nan] (never a legitimate crossing
    instant) when the ramp does not cross [vt]. *)

val pp : Format.formatter -> t -> unit

val compare_start : t -> t -> int
(** Orders by [start]. *)
