type segment = { transition : Transition.t; v_start : Halotis_util.Units.voltage }

(* Structure-of-arrays segment store: the ramp parameters live in flat
   unboxed float arrays (polarity as one byte each) so the hot append /
   crossing path reads contiguous scalars instead of chasing boxed
   segment and transition records.  [segment] values are materialised
   on demand for the inspection API. *)
type t = {
  vdd : Halotis_util.Units.voltage;
  initial : Halotis_util.Units.voltage;
  mutable starts : float array; (* chronological; live prefix of length len *)
  mutable slopes : float array;
  mutable vstarts : float array; (* waveform value at the ramp start *)
  mutable pols : Bytes.t; (* '\001' = rising *)
  mutable len : int;
}

let create ?(initial = 0.) ~vdd () =
  if vdd <= 0. then invalid_arg "Waveform.create: vdd must be positive";
  { vdd; initial; starts = [||]; slopes = [||]; vstarts = [||]; pols = Bytes.empty; len = 0 }

let vdd w = w.vdd
let initial w = w.initial
let segment_count w = w.len

let rising_at w i = Bytes.get w.pols i = '\001'

let transition_at w i =
  {
    Transition.start = w.starts.(i);
    slope_time = w.slopes.(i);
    polarity = (if rising_at w i then Transition.Rising else Transition.Falling);
  }

let segment_at w i = { transition = transition_at w i; v_start = w.vstarts.(i) }

let get_segment w i =
  if i < 0 || i >= w.len then invalid_arg "Waveform.get_segment: index out of bounds";
  segment_at w i

let segments w = List.init w.len (segment_at w)
let transitions w = List.init w.len (transition_at w)
let last_segment w = if w.len = 0 then None else Some (segment_at w (w.len - 1))

let iter_segments w f =
  for i = 0 to w.len - 1 do
    f (segment_at w i)
  done

let fold_segments w ~init ~f =
  let acc = ref init in
  for i = 0 to w.len - 1 do
    acc := f !acc (segment_at w i)
  done;
  !acc

let last_start w = if w.len = 0 then None else Some w.starts.(w.len - 1)
let last_start_or_nan w = if w.len = 0 then Float.nan else w.starts.(w.len - 1)

(* Index of the last segment with start <= t, or -1. *)
let locate w t =
  let rec search lo hi =
    (* invariant: starts.(lo) <= t (when lo >= 0), starts.(hi) > t (when hi < len) *)
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if w.starts.(mid) <= t then search mid hi else search lo mid
    end
  in
  if w.len = 0 || w.starts.(0) > t then -1 else search 0 w.len

let value_at w t =
  let i = locate w t in
  if i < 0 then w.initial
  else
    Transition.value_at_ramp ~vdd:w.vdd ~v_start:w.vstarts.(i) ~start:w.starts.(i)
      ~slope_time:w.slopes.(i) ~rising:(rising_at w i) t

type append_outcome = { dropped : Transition.t list; accepted : bool }

let push w ~start ~slope_time ~rising ~v_start =
  if w.len = Array.length w.starts then begin
    let cap = max 16 (2 * w.len) in
    let grow a = let g = Array.make cap 0. in Array.blit a 0 g 0 w.len; g in
    w.starts <- grow w.starts;
    w.slopes <- grow w.slopes;
    w.vstarts <- grow w.vstarts;
    let pols = Bytes.make cap '\000' in
    Bytes.blit w.pols 0 pols 0 w.len;
    w.pols <- pols
  end;
  w.starts.(w.len) <- start;
  w.slopes.(w.len) <- slope_time;
  w.vstarts.(w.len) <- v_start;
  Bytes.set w.pols w.len (if rising then '\001' else '\000');
  w.len <- w.len + 1

let append w tr =
  let t0 = tr.Transition.start in
  (* Annul stored transitions starting at or after the new one. *)
  let dropped = ref [] in
  while w.len > 0 && w.starts.(w.len - 1) >= t0 do
    w.len <- w.len - 1;
    dropped := transition_at w w.len :: !dropped
  done;
  (* Tail fast path: after the annulment loop the last live segment (if
     any) starts strictly before [t0], so it governs the value there —
     no need for [value_at]'s binary search over the history. *)
  let v_start =
    if w.len = 0 then w.initial
    else begin
      let i = w.len - 1 in
      Transition.value_at_ramp ~vdd:w.vdd ~v_start:w.vstarts.(i) ~start:w.starts.(i)
        ~slope_time:w.slopes.(i) ~rising:(rising_at w i) t0
    end
  in
  let rising =
    match tr.Transition.polarity with Transition.Rising -> true | Transition.Falling -> false
  in
  let at_rail = if rising then v_start >= w.vdd else v_start <= 0. in
  if at_rail then { dropped = !dropped; accepted = false }
  else begin
    push w ~start:t0 ~slope_time:tr.Transition.slope_time ~rising ~v_start;
    { dropped = !dropped; accepted = true }
  end

let last_crossing w ~vt =
  if w.len = 0 then Float.nan
  else begin
    let i = w.len - 1 in
    Transition.crossing_ramp ~vdd:w.vdd ~v_start:w.vstarts.(i) ~start:w.starts.(i)
      ~slope_time:w.slopes.(i) ~rising:(rising_at w i) ~vt
  end

let crossing_of_last w ~vt =
  let c = last_crossing w ~vt in
  if Float.is_nan c then None else Some c

let crossings_with_transitions w ~vt =
  let raw = ref [] in
  for i = 0 to w.len - 1 do
    let c =
      Transition.crossing_ramp ~vdd:w.vdd ~v_start:w.vstarts.(i) ~start:w.starts.(i)
        ~slope_time:w.slopes.(i) ~rising:(rising_at w i) ~vt
    in
    if not (Float.is_nan c) then begin
      let valid =
        (* Strict: a ramp truncated exactly at the crossing instant
           only touches the threshold and does not cross it. *)
        if i = w.len - 1 then true else c < w.starts.(i + 1)
      in
      if valid then raw := (c, transition_at w i) :: !raw
    end
  done;
  let chronological = List.rev !raw in
  (* Exact-touch boundaries can record a crossing without the matching
     return crossing; enforce polarity alternation so the digital view
     is always consistent. *)
  let first_expected = if w.initial <= vt then Transition.Rising else Transition.Falling in
  let rec filter expected = function
    | [] -> []
    | (t, tr) :: rest ->
        if Transition.equal_polarity tr.Transition.polarity expected then
          (t, tr) :: filter (Transition.opposite expected) rest
        else filter expected rest
  in
  filter first_expected chronological

let crossings w ~vt =
  List.map
    (fun (t, tr) -> (t, tr.Transition.polarity))
    (crossings_with_transitions w ~vt)

let sample w ~t0 ~t1 ~dt =
  if dt <= 0. then invalid_arg "Waveform.sample: dt must be positive";
  let rec loop t acc = if t > t1 then List.rev acc else loop (t +. dt) ((t, value_at w t) :: acc) in
  loop t0 []
