(** Piecewise-linear signal waveform built from an ordered list of
    {!Transition.t}s.

    This implements the paper's list-type transition store with the
    crucial IDDM property: appending a transition that starts {e before}
    previously stored transitions {e annuls} them — a degraded pulse
    that collapses to nothing leaves no trace, and the engine cancels
    the events those annulled transitions had generated (Fig. 4's
    "delete Ej-1" branch).

    Each stored segment records the voltage the ramp starts from, so
    runt pulses (ramps truncated before the rail) are represented
    exactly. *)

type segment = {
  transition : Transition.t;
  v_start : Halotis_util.Units.voltage;  (** waveform value at [transition.start] *)
}

type t

val create : ?initial:Halotis_util.Units.voltage -> vdd:Halotis_util.Units.voltage -> unit -> t
(** [create ~vdd ()] starts a flat waveform at [initial] (default 0 V). *)

val vdd : t -> Halotis_util.Units.voltage
val initial : t -> Halotis_util.Units.voltage

type append_outcome = {
  dropped : Transition.t list;
      (** stored transitions annulled because they start at or after the
          new transition, oldest first *)
  accepted : bool;
      (** [false] when the new ramp was a no-op (the waveform value at
          its start already sits at the target rail), in which case it
          was not stored *)
}

val append : t -> Transition.t -> append_outcome
(** Adds a transition, truncating/annulling as described above. *)

val segment_count : t -> int

val segments : t -> segment list
(** Oldest first. *)

val iter_segments : t -> (segment -> unit) -> unit
(** [iter_segments w f] applies [f] to every live segment, oldest
    first, without materialising a list — the hot-path alternative to
    {!segments}. *)

val get_segment : t -> int -> segment
(** [get_segment w i] is the [i]-th live segment (chronological,
    0-based).  O(1).
    @raise Invalid_argument when [i] is out of bounds. *)

val fold_segments : t -> init:'a -> f:('a -> segment -> 'a) -> 'a
(** Left fold over live segments, oldest first, without materialising a
    list. *)

val transitions : t -> Transition.t list
(** Oldest first. *)

val last_segment : t -> segment option

val last_start : t -> Halotis_util.Units.time option
(** Start time of the most recent live transition — the gate-state
    clock the degradation model measures its [T] against. *)

val last_start_or_nan : t -> Halotis_util.Units.time
(** Allocation-free {!last_start}: [Float.nan] (never a legitimate
    start instant) when the waveform has no live transition. *)

val value_at : t -> Halotis_util.Units.time -> Halotis_util.Units.voltage
(** Waveform voltage at any time (flat before the first transition,
    saturated after the last). *)

val crossing_of_last :
  t -> vt:Halotis_util.Units.voltage -> Halotis_util.Units.time option
(** The instant the most recent ramp crosses [vt], if it does.  This is
    the event-generation primitive: the last segment extends to its
    rail, so the crossing is definitive until a newer transition
    truncates it. *)

val last_crossing : t -> vt:Halotis_util.Units.voltage -> Halotis_util.Units.time
(** Allocation-free {!crossing_of_last}: [Float.nan] (never a
    legitimate crossing instant) when the last ramp does not cross
    [vt] or the waveform is empty. *)

val crossings :
  t -> vt:Halotis_util.Units.voltage -> (Halotis_util.Units.time * Transition.polarity) list
(** Every crossing of level [vt] over the whole waveform, in time
    order: the digital abstraction of the analog-ish record.  Runt
    segments that never reach [vt] contribute nothing. *)

val crossings_with_transitions :
  t -> vt:Halotis_util.Units.voltage ->
  (Halotis_util.Units.time * Transition.t) list
(** Like {!crossings} but pairs each crossing with the transition whose
    ramp produced it (the crossing polarity is the transition's).  Used
    to seed events from primary-input waveforms, where the event must
    carry the causing ramp's slope. *)

val sample :
  t -> t0:Halotis_util.Units.time -> t1:Halotis_util.Units.time -> dt:Halotis_util.Units.time ->
  (Halotis_util.Units.time * Halotis_util.Units.voltage) list
(** Uniform sampling, for plots and analog comparison. *)
