(** Value-change-dump (VCD) export of digitized waveforms, so runs can
    be inspected in GTKWave or any standard viewer. *)

type signal_dump = {
  dump_name : string;
  dump_initial : bool;
  dump_edges : Digital.edge list;
  dump_x_from : float option;
      (** dump [x] from this instant on (a guardrail froze the signal
          or truncated the run); edges at or after it are dropped *)
}

val render :
  ?timescale_ps:int ->
  ?module_name:string ->
  ?comment:string ->
  signal_dump list ->
  string
(** [render dumps] produces a complete VCD document.  Edge times are
    rounded to multiples of [timescale_ps] (default 1).  [comment]
    becomes a [$comment ... $end] header line — how partial dumps from
    a budget-stopped run are marked. *)

val of_waveform :
  name:string ->
  vt:Halotis_util.Units.voltage ->
  ?x_from:float ->
  Waveform.t ->
  signal_dump
(** Digitizes one waveform under threshold [vt]. *)

val write_file : ?comment:string -> string -> signal_dump list -> unit
