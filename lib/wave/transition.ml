module Approx = Halotis_util.Approx

type polarity = Rising | Falling

type t = {
  start : Halotis_util.Units.time;
  slope_time : Halotis_util.Units.time;
  polarity : polarity;
}

let make ~start ~slope_time ~polarity =
  if not (Approx.is_finite start) then invalid_arg "Transition.make: start not finite";
  if not (slope_time > 0. && Approx.is_finite slope_time) then
    invalid_arg "Transition.make: slope_time must be positive";
  { start; slope_time; polarity }

let opposite = function Rising -> Falling | Falling -> Rising
let polarity_to_string = function Rising -> "rise" | Falling -> "fall"

let equal_polarity a b =
  match (a, b) with Rising, Rising | Falling, Falling -> true | (Rising | Falling), _ -> false

let target ~vdd tr = match tr.polarity with Rising -> vdd | Falling -> 0.

(* Scalar (record-free) ramp math: the waveform store keeps its
   segments in flat arrays and evaluates ramps through these; the
   record-taking functions below delegate here so both paths compute
   the exact same float expressions. *)

let slope_ramp ~vdd ~slope_time ~rising =
  if rising then vdd /. slope_time else -.(vdd /. slope_time)

let value_at_ramp ~vdd ~v_start ~start ~slope_time ~rising t =
  let raw = v_start +. (slope_ramp ~vdd ~slope_time ~rising *. (t -. start)) in
  if rising then Float.min raw vdd else Float.max raw 0.

let crossing_ramp ~vdd ~v_start ~start ~slope_time ~rising ~vt =
  let reachable = if rising then v_start < vt && vt <= vdd else v_start > vt && vt >= 0. in
  if not reachable then Float.nan
  else start +. ((vt -. v_start) /. slope_ramp ~vdd ~slope_time ~rising)

let is_rising = function Rising -> true | Falling -> false

let slope ~vdd tr = slope_ramp ~vdd ~slope_time:tr.slope_time ~rising:(is_rising tr.polarity)

let value_at ~vdd ~v_start tr t =
  value_at_ramp ~vdd ~v_start ~start:tr.start ~slope_time:tr.slope_time
    ~rising:(is_rising tr.polarity) t

let crossing ~vdd ~v_start tr ~vt =
  let c =
    crossing_ramp ~vdd ~v_start ~start:tr.start ~slope_time:tr.slope_time
      ~rising:(is_rising tr.polarity) ~vt
  in
  if Float.is_nan c then None else Some c

let pp fmt tr =
  Format.fprintf fmt "%s@%a(tau=%a)" (polarity_to_string tr.polarity)
    Halotis_util.Units.pp_time tr.start Halotis_util.Units.pp_time tr.slope_time

let compare_start a b = Float.compare a.start b.start
