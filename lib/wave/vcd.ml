type signal_dump = {
  dump_name : string;
  dump_initial : bool;
  dump_edges : Digital.edge list;
  dump_x_from : float option;
}

let ident_of_index i =
  (* VCD identifiers: printable ASCII 33..126; use a base-94 encoding. *)
  let base = 94 and first = 33 in
  let rec build i acc =
    let digit = Char.chr (first + (i mod base)) in
    let acc = String.make 1 digit ^ acc in
    if i < base then acc else build ((i / base) - 1) acc
  in
  build i ""

let render ?(timescale_ps = 1) ?(module_name = "halotis") ?comment dumps =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "$date reproduction run $end\n";
  pr "$version HALOTIS-ocaml $end\n";
  (match comment with Some c -> pr "$comment %s $end\n" c | None -> ());
  pr "$timescale %dps $end\n" timescale_ps;
  pr "$scope module %s $end\n" module_name;
  List.iteri
    (fun i d -> pr "$var wire 1 %s %s $end\n" (ident_of_index i) d.dump_name)
    dumps;
  pr "$upscope $end\n$enddefinitions $end\n";
  pr "$dumpvars\n";
  List.iteri
    (fun i d -> pr "%c%s\n" (if d.dump_initial then '1' else '0') (ident_of_index i))
    dumps;
  pr "$end\n";
  let tick_of at = int_of_float (Float.round (at /. float_of_int timescale_ps)) in
  let changes =
    List.concat
      (List.mapi
         (fun i d ->
           (* A frozen signal goes to x at the freeze instant and stays
              there: later edges (there should be none) are dropped. *)
           let edges =
             match d.dump_x_from with
             | None -> d.dump_edges
             | Some t ->
                 List.filter (fun (e : Digital.edge) -> e.Digital.at < t) d.dump_edges
           in
           let xs =
             match d.dump_x_from with
             | None -> []
             | Some t -> [ (tick_of t, i, 'x') ]
           in
           xs
           @ List.map
               (fun (e : Digital.edge) ->
                 let bit =
                   match e.Digital.polarity with Transition.Rising -> '1' | Falling -> '0'
                 in
                 (tick_of e.Digital.at, i, bit))
               edges)
         dumps)
  in
  let sorted = List.sort compare changes in
  let last_tick = ref (-1) in
  List.iter
    (fun (tick, i, bit) ->
      if tick <> !last_tick then begin
        pr "#%d\n" tick;
        last_tick := tick
      end;
      pr "%c%s\n" bit (ident_of_index i))
    sorted;
  Buffer.contents buf

let of_waveform ~name ~vt ?x_from w =
  {
    dump_name = name;
    dump_initial = Waveform.initial w > vt;
    dump_edges = Digital.edges w ~vt;
    dump_x_from = x_from;
  }

let write_file ?comment path dumps =
  let oc = open_out path in
  output_string oc (render ?comment dumps);
  close_out oc
