module Netlist = Halotis_netlist.Netlist
module Tech = Halotis_tech.Tech
module DM = Halotis_delay.Delay_model
module Transition = Halotis_wave.Transition
module Waveform = Halotis_wave.Waveform
module Digital = Halotis_wave.Digital
module Vcd = Halotis_wave.Vcd
module Budget = Halotis_guard.Budget

type engine = Ddm | Cdm | Classic_inertial

let engine_to_string = function
  | Ddm -> "ddm"
  | Cdm -> "cdm"
  | Classic_inertial -> "classic"

let engine_of_string = function
  | "ddm" -> Some Ddm
  | "cdm" -> Some Cdm
  | "classic" -> Some Classic_inertial
  | _ -> None

let engine_display_name = function
  | Ddm -> DM.kind_to_string DM.Ddm
  | Cdm -> DM.kind_to_string DM.Cdm
  | Classic_inertial -> "classic"

type injection = {
  inj_signal : Netlist.signal_id;
  inj_ramps : Transition.t list;
}

type spec = {
  sp_circuit : Netlist.t;
  sp_drives : (Netlist.signal_id * Drive.t) list;
  sp_tech : Tech.t;
  sp_overlay : Halotis_tech.Param_overlay.t;
  sp_t_stop : Halotis_util.Units.time option;
  sp_injections : injection list;
  sp_budget : Budget.t;
  sp_watchdog : Halotis_guard.Watchdog.config option;
  sp_trace : bool;
}

let spec ?(drives = []) ?(injections = []) ?t_stop ?(budget = Budget.unlimited)
    ?watchdog ?(trace = false) ?(overlay = Halotis_tech.Param_overlay.empty)
    ~tech circuit =
  {
    sp_circuit = circuit;
    sp_drives = drives;
    sp_tech = tech;
    sp_overlay = overlay;
    sp_t_stop = t_stop;
    sp_injections = injections;
    sp_budget = budget;
    sp_watchdog = watchdog;
    sp_trace = trace;
  }

type raw = Iddm_result of Iddm.result | Classic_result of Classic.result

type result = {
  rs_engine : engine;
  rs_spec : spec;
  rs_stats : Stats.t;
  rs_end_time : Halotis_util.Units.time;
  rs_truncated : bool;
  rs_stopped_by : Halotis_guard.Stop.t;
  rs_frozen : (Netlist.signal_id * Halotis_util.Units.time) list;
  rs_vt : Halotis_util.Units.voltage;
  rs_raw : raw;
  rs_edges : Digital.edge list array Lazy.t;
  rs_initial_levels : bool array Lazy.t;
}

(* The classic engine sees each ramp as an instantaneous value switch
   at its 50 % point — the same abstraction it applies to input drives
   ([start + slope_time / 2], see {!Classic.run}). *)
let classic_toggles ramps =
  List.map
    (fun (tr : Transition.t) ->
      (tr.Transition.start +. (tr.Transition.slope_time /. 2.),
       tr.Transition.polarity = Transition.Rising))
    ramps

(* The IDDM-side run configuration and injection shape shared by
   one-shot runs and sessions. *)
let iddm_config engine spec =
  let kind = match engine with Cdm -> DM.Cdm | _ -> DM.Ddm in
  Iddm.config ~overlay:spec.sp_overlay ~delay_kind:kind ?t_stop:spec.sp_t_stop
    ~trace:spec.sp_trace ~budget:spec.sp_budget ?watchdog:spec.sp_watchdog
    spec.sp_tech

let iddm_injections spec =
  List.map
    (fun i -> { Iddm.inj_signal = i.inj_signal; inj_transitions = i.inj_ramps })
    spec.sp_injections

let wrap_iddm engine spec ~vt (r : Iddm.result) =
  {
    rs_engine = engine;
    rs_spec = spec;
    rs_stats = r.Iddm.stats;
    rs_end_time = r.Iddm.end_time;
    rs_truncated = r.Iddm.truncated;
    rs_stopped_by = r.Iddm.stopped_by;
    rs_frozen = r.Iddm.frozen;
    rs_vt = vt;
    rs_raw = Iddm_result r;
    rs_edges = lazy (Array.map (fun wf -> Digital.edges wf ~vt) r.Iddm.waveforms);
    rs_initial_levels =
      lazy (Array.map (fun wf -> Waveform.initial wf > vt) r.Iddm.waveforms);
  }

let run engine spec =
  let c = spec.sp_circuit in
  let vt = Tech.vdd spec.sp_tech /. 2. in
  match engine with
  | Ddm | Cdm ->
      let r =
        Iddm.run ~injections:(iddm_injections spec) (iddm_config engine spec) c
          ~drives:spec.sp_drives
      in
      wrap_iddm engine spec ~vt r
  | Classic_inertial ->
      let cfg =
        Classic.config ~overlay:spec.sp_overlay ?t_stop:spec.sp_t_stop
          ~budget:spec.sp_budget ?watchdog:spec.sp_watchdog spec.sp_tech
      in
      let injections =
        List.map
          (fun i -> (i.inj_signal, classic_toggles i.inj_ramps))
          spec.sp_injections
      in
      let r = Classic.run ~injections cfg c ~drives:spec.sp_drives in
      {
        rs_engine = engine;
        rs_spec = spec;
        rs_stats = r.Classic.stats;
        rs_end_time = r.Classic.end_time;
        rs_truncated = r.Classic.truncated;
        rs_stopped_by = r.Classic.stopped_by;
        rs_frozen = r.Classic.frozen;
        rs_vt = vt;
        rs_raw = Classic_result r;
        rs_edges = lazy r.Classic.edges;
        rs_initial_levels = lazy r.Classic.initial_levels;
      }

let edges r = Lazy.force r.rs_edges
let initial_levels r = Lazy.force r.rs_initial_levels

let output_edges r =
  let c = r.rs_spec.sp_circuit in
  let edges = edges r in
  List.map
    (fun sid -> (Netlist.signal_name c sid, edges.(sid)))
    (Netlist.primary_outputs c)

let vcd_dumps r =
  let c = r.rs_spec.sp_circuit in
  match r.rs_raw with
  | Iddm_result ir ->
      Array.to_list
        (Array.map
           (fun (s : Netlist.signal) ->
             Vcd.of_waveform ~name:s.Netlist.signal_name ~vt:r.rs_vt
               ?x_from:(List.assoc_opt s.Netlist.signal_id r.rs_frozen)
               ir.Iddm.waveforms.(s.Netlist.signal_id))
           (Netlist.signals c))
  | Classic_result cr ->
      Array.to_list
        (Array.map
           (fun (s : Netlist.signal) ->
             {
               Vcd.dump_name = s.Netlist.signal_name;
               dump_initial = cr.Classic.initial_levels.(s.Netlist.signal_id);
               dump_edges = cr.Classic.edges.(s.Netlist.signal_id);
               dump_x_from = List.assoc_opt s.Netlist.signal_id r.rs_frozen;
             })
           (Netlist.signals c))

let top_offenders ?(n = 5) r =
  let c = r.rs_spec.sp_circuit in
  let edges = edges r in
  let counts = ref [] in
  Array.iteri
    (fun sid es ->
      let k = List.length es in
      if k > 0 then counts := (sid, k) :: !counts)
    edges;
  let sorted =
    List.sort
      (fun (ia, ka) (ib, kb) ->
        match Int.compare kb ka with 0 -> Int.compare ia ib | cmp -> cmp)
      !counts
  in
  List.filteri (fun i _ -> i < n) sorted
  |> List.map (fun (sid, k) -> (Netlist.signal_name c sid, k))

let iddm r = match r.rs_raw with Iddm_result ir -> Some ir | Classic_result _ -> None

let classic r =
  match r.rs_raw with Classic_result cr -> Some cr | Iddm_result _ -> None

let replay_hazard r =
  match r.rs_raw with
  | Iddm_result ir -> ir.Iddm.replay_hazard
  | Classic_result _ -> false

(* Incremental cone re-simulation: the fault-campaign fast path.  For
   an injection on [victim], only the victim's static fanout cone can
   ever diverge from the baseline — so instead of re-running the whole
   circuit, re-run the cone twice (without and with the pulse), diff
   those two small runs, and graft the diff onto the full baseline.

   Soundness rests on the runs being replayable: the event queue
   resolves equal-key ties by intrinsic pin-slot rank, so a cone replay
   pops coinciding events exactly as the full run did — the one history
   it cannot reconstruct is a retroactive invalidation (tp <= 0
   rewriting a waveform below an already-processed crossing), flagged
   as {!Iddm.result.replay_hazard} and checked in the full baseline
   (once at [create]; a hazardous baseline disables the context), in
   the cone replay of the baseline (per victim, plus a belt-and-braces
   edge comparison against the baseline itself), and in the injected
   cone run (per site).  Any hazard, any guardrail trip, or a
   driverless victim returns [Fallback] and the caller runs the site
   the old way; verdicts are byte-identical either way. *)
module Cone = struct
  module Compiled_ = Compiled
  module Stop = Halotis_guard.Stop

  type totals = {
    ct_exact : int;
    ct_fallback : int;
    ct_cone_gates : int;
    ct_cone_events : int;
  }

  (* Per-victim memo: campaigns strike the same driver outputs many
     times, and the cone plus its baseline replay depend only on the
     victim. *)
  type victim_entry = { ve_cone : Compiled_.cone; ve_base : Iddm.result }
  type victim_state = Good of victim_entry | Bad of string

  type ctx = {
    cx_engine : engine;
    cx_spec : spec;
    cx_cfg : Iddm.config;
    cx_compiled : Compiled_.t;
    cx_levels : bool array;
    cx_baseline : Iddm.result;
    cx_base_edges : Digital.edge list array; (* full-baseline digitized view *)
    cx_base_stats : Stats.t;
    cx_vt : Halotis_util.Units.voltage;
    cx_victims : (int, victim_state) Hashtbl.t;
    mutable cx_exact : int;
    mutable cx_fallback : int;
    mutable cx_cone_gates : int;
    mutable cx_cone_events : int;
  }

  type outcome =
    | Exact of {
        edges : Digital.edge list array;
        stats : Stats.t;
        cone_gates : int;
        cone_events : int;
      }
    | Fallback of string

  let create engine spec ~baseline =
    match engine with
    | Classic_inertial -> None
    | Ddm | Cdm -> (
        if baseline.rs_engine <> engine then None
        else
          match baseline.rs_raw with
          | Classic_result _ -> None
          | Iddm_result br ->
              if
                (not (Stop.completed br.Iddm.stopped_by))
                || br.Iddm.replay_hazard
                || br.Iddm.frozen <> []
              then None
              else begin
                let c = spec.sp_circuit in
                let drives_tbl = Hashtbl.create 16 in
                List.iter (fun (sid, d) -> Hashtbl.replace drives_tbl sid d) spec.sp_drives;
                let input_level sid =
                  match Hashtbl.find_opt drives_tbl sid with
                  | Some (d : Drive.t) -> d.Drive.initial
                  | None -> false
                in
                Some
                  {
                    cx_engine = engine;
                    cx_spec = spec;
                    cx_cfg = iddm_config engine spec;
                    cx_compiled =
                      Compiled_.compile ~overlay:spec.sp_overlay spec.sp_tech c;
                    cx_levels = Dc.levels c ~input_level;
                    cx_baseline = br;
                    cx_base_edges = Lazy.force baseline.rs_edges;
                    cx_base_stats = baseline.rs_stats;
                    cx_vt = baseline.rs_vt;
                    cx_victims = Hashtbl.create 64;
                    cx_exact = 0;
                    cx_fallback = 0;
                    cx_cone_gates = 0;
                    cx_cone_events = 0;
                  }
              end)

  let run_cone ctx ~cone ~injections =
    Iddm.advance
      (Iddm.start_cone ~injections ~compiled:ctx.cx_compiled ~cone
         ~baseline:ctx.cx_baseline ~levels:ctx.cx_levels ctx.cx_cfg
         ctx.cx_spec.sp_circuit)
      ~upto:infinity

  (* The baseline cone replay must land exactly on the full baseline:
     completed, hazard-free, and digitizing to the same edges on every
     member signal.  The edge comparison is the dirty-frontier check
     made static — any divergence (which hazard-freedom should already
     exclude) is caught here once per victim rather than trusted. *)
  let victim_entry ctx victim =
    match Hashtbl.find_opt ctx.cx_victims victim with
    | Some st -> st
    | None ->
        let st =
          if (Netlist.signal ctx.cx_spec.sp_circuit victim).Netlist.driver = None then
            Bad "victim has no driver gate (primary input or constant)"
          else begin
            let cone = Compiled_.fanout_cone ctx.cx_compiled ~victim in
            let base = run_cone ctx ~cone ~injections:[] in
            if not (Stop.completed base.Iddm.stopped_by) then
              Bad "baseline cone replay tripped a guardrail"
            else if base.Iddm.replay_hazard then Bad "baseline cone replay hazard"
            else if base.Iddm.frozen <> [] then Bad "baseline cone replay froze signals"
            else if
              Array.exists
                (fun sid ->
                  Digital.edges base.Iddm.waveforms.(sid) ~vt:ctx.cx_vt
                  <> ctx.cx_base_edges.(sid))
                cone.Compiled_.cone_signals
            then Bad "baseline cone replay diverged from the baseline"
            else Good { ve_cone = cone; ve_base = base }
          end
        in
        Hashtbl.replace ctx.cx_victims victim st;
        st

  let run_site ctx (i : injection) =
    let fallback reason =
      ctx.cx_fallback <- ctx.cx_fallback + 1;
      Fallback reason
    in
    if i.inj_signal < 0 || i.inj_signal >= Array.length ctx.cx_base_edges then
      fallback "injection on unknown signal"
    else
      match victim_entry ctx i.inj_signal with
      | Bad reason -> fallback reason
      | Good { ve_cone; ve_base } -> (
          let inj =
            run_cone ctx ~cone:ve_cone
              ~injections:[ { Iddm.inj_signal = i.inj_signal; inj_transitions = i.inj_ramps } ]
          in
          if not (Stop.completed inj.Iddm.stopped_by) then
            fallback "injected cone run tripped a guardrail"
          else if inj.Iddm.replay_hazard then fallback "injected cone run replay hazard"
          else if inj.Iddm.frozen <> [] then fallback "injected cone run froze signals"
          else begin
            (* Graft: member signals re-digitized from the injected cone
               run, every other signal aliasing the baseline edge list
               (structurally — and physically — equal, so classification
               compares them for free).  The stats are the baseline's
               plus the cone delta, which equals the full-run counters
               exactly when the runs are order-deterministic. *)
            let edges = Array.copy ctx.cx_base_edges in
            Array.iter
              (fun sid -> edges.(sid) <- Digital.edges inj.Iddm.waveforms.(sid) ~vt:ctx.cx_vt)
              ve_cone.Compiled_.cone_signals;
            let stats = Stats.copy ctx.cx_base_stats in
            Stats.merge stats (Stats.diff inj.Iddm.stats ve_base.Iddm.stats);
            let cone_gates = Array.length ve_cone.Compiled_.cone_gates in
            let cone_events = inj.Iddm.stats.Stats.events_processed in
            ctx.cx_exact <- ctx.cx_exact + 1;
            ctx.cx_cone_gates <- ctx.cx_cone_gates + cone_gates;
            ctx.cx_cone_events <- ctx.cx_cone_events + cone_events;
            Exact { edges; stats; cone_gates; cone_events }
          end)

  let totals ctx =
    {
      ct_exact = ctx.cx_exact;
      ct_fallback = ctx.cx_fallback;
      ct_cone_gates = ctx.cx_cone_gates;
      ct_cone_events = ctx.cx_cone_events;
    }
end

module Session = struct
  type t = {
    ss_engine : engine;
    ss_spec : spec;
    ss_vt : Halotis_util.Units.voltage;
    ss_sess : Iddm.session;
  }

  let start ?compiled engine spec =
    match engine with
    | Classic_inertial ->
        invalid_arg
          "Sim.Session.start: resumable sessions need a waveform engine (ddm or cdm)"
    | Ddm | Cdm ->
        let sess =
          Iddm.start ~injections:(iddm_injections spec) ?compiled
            (iddm_config engine spec) spec.sp_circuit ~drives:spec.sp_drives
        in
        {
          ss_engine = engine;
          ss_spec = spec;
          ss_vt = Tech.vdd spec.sp_tech /. 2.;
          ss_sess = sess;
        }

  let wrap t r = wrap_iddm t.ss_engine t.ss_spec ~vt:t.ss_vt r
  let advance t ~upto = wrap t (Iddm.advance t.ss_sess ~upto)
  let snapshot t = wrap t (Iddm.session_result t.ss_sess)
  let set_input t ~signal ramps = Iddm.session_set_input t.ss_sess signal ramps

  let inject t (i : injection) =
    Iddm.session_inject t.ss_sess
      { Iddm.inj_signal = i.inj_signal; inj_transitions = i.inj_ramps }

  let time t = Iddm.session_time t.ss_sess
  let finished t = Iddm.session_finished t.ss_sess
  let engine t = t.ss_engine
  let spec t = t.ss_spec
end
