module Netlist = Halotis_netlist.Netlist
module Tech = Halotis_tech.Tech
module DM = Halotis_delay.Delay_model
module Transition = Halotis_wave.Transition
module Waveform = Halotis_wave.Waveform
module Digital = Halotis_wave.Digital
module Vcd = Halotis_wave.Vcd
module Budget = Halotis_guard.Budget

type engine = Ddm | Cdm | Classic_inertial

let engine_to_string = function
  | Ddm -> "ddm"
  | Cdm -> "cdm"
  | Classic_inertial -> "classic"

let engine_of_string = function
  | "ddm" -> Some Ddm
  | "cdm" -> Some Cdm
  | "classic" -> Some Classic_inertial
  | _ -> None

let engine_display_name = function
  | Ddm -> DM.kind_to_string DM.Ddm
  | Cdm -> DM.kind_to_string DM.Cdm
  | Classic_inertial -> "classic"

type injection = {
  inj_signal : Netlist.signal_id;
  inj_ramps : Transition.t list;
}

type spec = {
  sp_circuit : Netlist.t;
  sp_drives : (Netlist.signal_id * Drive.t) list;
  sp_tech : Tech.t;
  sp_t_stop : Halotis_util.Units.time option;
  sp_injections : injection list;
  sp_budget : Budget.t;
  sp_watchdog : Halotis_guard.Watchdog.config option;
  sp_trace : bool;
}

let spec ?(drives = []) ?(injections = []) ?t_stop ?(budget = Budget.unlimited)
    ?watchdog ?(trace = false) ~tech circuit =
  {
    sp_circuit = circuit;
    sp_drives = drives;
    sp_tech = tech;
    sp_t_stop = t_stop;
    sp_injections = injections;
    sp_budget = budget;
    sp_watchdog = watchdog;
    sp_trace = trace;
  }

type raw = Iddm_result of Iddm.result | Classic_result of Classic.result

type result = {
  rs_engine : engine;
  rs_spec : spec;
  rs_stats : Stats.t;
  rs_end_time : Halotis_util.Units.time;
  rs_truncated : bool;
  rs_stopped_by : Halotis_guard.Stop.t;
  rs_frozen : (Netlist.signal_id * Halotis_util.Units.time) list;
  rs_vt : Halotis_util.Units.voltage;
  rs_raw : raw;
  rs_edges : Digital.edge list array Lazy.t;
  rs_initial_levels : bool array Lazy.t;
}

(* The classic engine sees each ramp as an instantaneous value switch
   at its 50 % point — the same abstraction it applies to input drives
   ([start + slope_time / 2], see {!Classic.run}). *)
let classic_toggles ramps =
  List.map
    (fun (tr : Transition.t) ->
      (tr.Transition.start +. (tr.Transition.slope_time /. 2.),
       tr.Transition.polarity = Transition.Rising))
    ramps

(* The IDDM-side run configuration and injection shape shared by
   one-shot runs and sessions. *)
let iddm_config engine spec =
  let kind = match engine with Cdm -> DM.Cdm | _ -> DM.Ddm in
  Iddm.config ~delay_kind:kind ?t_stop:spec.sp_t_stop ~trace:spec.sp_trace
    ~budget:spec.sp_budget ?watchdog:spec.sp_watchdog spec.sp_tech

let iddm_injections spec =
  List.map
    (fun i -> { Iddm.inj_signal = i.inj_signal; inj_transitions = i.inj_ramps })
    spec.sp_injections

let wrap_iddm engine spec ~vt (r : Iddm.result) =
  {
    rs_engine = engine;
    rs_spec = spec;
    rs_stats = r.Iddm.stats;
    rs_end_time = r.Iddm.end_time;
    rs_truncated = r.Iddm.truncated;
    rs_stopped_by = r.Iddm.stopped_by;
    rs_frozen = r.Iddm.frozen;
    rs_vt = vt;
    rs_raw = Iddm_result r;
    rs_edges = lazy (Array.map (fun wf -> Digital.edges wf ~vt) r.Iddm.waveforms);
    rs_initial_levels =
      lazy (Array.map (fun wf -> Waveform.initial wf > vt) r.Iddm.waveforms);
  }

let run engine spec =
  let c = spec.sp_circuit in
  let vt = Tech.vdd spec.sp_tech /. 2. in
  match engine with
  | Ddm | Cdm ->
      let r =
        Iddm.run ~injections:(iddm_injections spec) (iddm_config engine spec) c
          ~drives:spec.sp_drives
      in
      wrap_iddm engine spec ~vt r
  | Classic_inertial ->
      let cfg =
        Classic.config ?t_stop:spec.sp_t_stop ~budget:spec.sp_budget
          ?watchdog:spec.sp_watchdog spec.sp_tech
      in
      let injections =
        List.map
          (fun i -> (i.inj_signal, classic_toggles i.inj_ramps))
          spec.sp_injections
      in
      let r = Classic.run ~injections cfg c ~drives:spec.sp_drives in
      {
        rs_engine = engine;
        rs_spec = spec;
        rs_stats = r.Classic.stats;
        rs_end_time = r.Classic.end_time;
        rs_truncated = r.Classic.truncated;
        rs_stopped_by = r.Classic.stopped_by;
        rs_frozen = r.Classic.frozen;
        rs_vt = vt;
        rs_raw = Classic_result r;
        rs_edges = lazy r.Classic.edges;
        rs_initial_levels = lazy r.Classic.initial_levels;
      }

let edges r = Lazy.force r.rs_edges
let initial_levels r = Lazy.force r.rs_initial_levels

let output_edges r =
  let c = r.rs_spec.sp_circuit in
  let edges = edges r in
  List.map
    (fun sid -> (Netlist.signal_name c sid, edges.(sid)))
    (Netlist.primary_outputs c)

let vcd_dumps r =
  let c = r.rs_spec.sp_circuit in
  match r.rs_raw with
  | Iddm_result ir ->
      Array.to_list
        (Array.map
           (fun (s : Netlist.signal) ->
             Vcd.of_waveform ~name:s.Netlist.signal_name ~vt:r.rs_vt
               ?x_from:(List.assoc_opt s.Netlist.signal_id r.rs_frozen)
               ir.Iddm.waveforms.(s.Netlist.signal_id))
           (Netlist.signals c))
  | Classic_result cr ->
      Array.to_list
        (Array.map
           (fun (s : Netlist.signal) ->
             {
               Vcd.dump_name = s.Netlist.signal_name;
               dump_initial = cr.Classic.initial_levels.(s.Netlist.signal_id);
               dump_edges = cr.Classic.edges.(s.Netlist.signal_id);
               dump_x_from = List.assoc_opt s.Netlist.signal_id r.rs_frozen;
             })
           (Netlist.signals c))

let top_offenders ?(n = 5) r =
  let c = r.rs_spec.sp_circuit in
  let edges = edges r in
  let counts = ref [] in
  Array.iteri
    (fun sid es ->
      let k = List.length es in
      if k > 0 then counts := (sid, k) :: !counts)
    edges;
  let sorted =
    List.sort
      (fun (ia, ka) (ib, kb) ->
        match Int.compare kb ka with 0 -> Int.compare ia ib | cmp -> cmp)
      !counts
  in
  List.filteri (fun i _ -> i < n) sorted
  |> List.map (fun (sid, k) -> (Netlist.signal_name c sid, k))

let iddm r = match r.rs_raw with Iddm_result ir -> Some ir | Classic_result _ -> None

let classic r =
  match r.rs_raw with Classic_result cr -> Some cr | Iddm_result _ -> None

module Session = struct
  type t = {
    ss_engine : engine;
    ss_spec : spec;
    ss_vt : Halotis_util.Units.voltage;
    ss_sess : Iddm.session;
  }

  let start ?compiled engine spec =
    match engine with
    | Classic_inertial ->
        invalid_arg
          "Sim.Session.start: resumable sessions need a waveform engine (ddm or cdm)"
    | Ddm | Cdm ->
        let sess =
          Iddm.start ~injections:(iddm_injections spec) ?compiled
            (iddm_config engine spec) spec.sp_circuit ~drives:spec.sp_drives
        in
        {
          ss_engine = engine;
          ss_spec = spec;
          ss_vt = Tech.vdd spec.sp_tech /. 2.;
          ss_sess = sess;
        }

  let wrap t r = wrap_iddm t.ss_engine t.ss_spec ~vt:t.ss_vt r
  let advance t ~upto = wrap t (Iddm.advance t.ss_sess ~upto)
  let snapshot t = wrap t (Iddm.session_result t.ss_sess)
  let set_input t ~signal ramps = Iddm.session_set_input t.ss_sess signal ramps

  let inject t (i : injection) =
    Iddm.session_inject t.ss_sess
      { Iddm.inj_signal = i.inj_signal; inj_transitions = i.inj_ramps }

  let time t = Iddm.session_time t.ss_sess
  let finished t = Iddm.session_finished t.ss_sess
  let engine t = t.ss_engine
  let spec t = t.ss_spec
end
