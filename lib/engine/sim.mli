(** The engine-agnostic simulation facade.

    Every consumer that used to dispatch on "which engine am I
    running?" — the CLI's [simulate]/[compare]/[faults] commands, fault
    campaigns, injected re-runs — goes through this module instead:
    one {!spec} describes the run (circuit, drives, injections,
    guardrails, horizon) and {!run} executes it on the chosen engine,
    returning a {!result} whose common view (digitized edges, initial
    levels, statistics, stop reason) is engine-independent.  The
    engine-specific payload stays reachable through {!raw} for callers
    that genuinely need waveforms ([ddm]/[cdm]) or boolean levels
    ([classic]).

    Injections are engine-agnostic too: a list of linear ramps spliced
    into a victim signal.  The IDDM engines consume the ramps verbatim;
    the classic engine abstracts each ramp to an instantaneous value
    toggle at its 50 % point ([start + slope_time / 2]) — exactly the
    boolean abstraction [doc/faults.md] describes, so
    {!Halotis_fault} campaigns produce bit-identical verdicts through
    this facade. *)

type engine = Ddm | Cdm | Classic_inertial

val engine_to_string : engine -> string
(** ["ddm"], ["cdm"] or ["classic"] — the CLI/report token. *)

val engine_of_string : string -> engine option

val engine_display_name : engine -> string
(** ["DDM"], ["CDM"] or ["classic"] — the human-facing label used by
    [simulate] output (matches the historical
    {!Halotis_delay.Delay_model.kind_to_string} rendering). *)

type injection = {
  inj_signal : Halotis_netlist.Netlist.signal_id;  (** victim signal *)
  inj_ramps : Halotis_wave.Transition.t list;
      (** ramps spliced into the victim, time-ordered; a SET pulse is a
          leading ramp plus its reversal [width] later *)
}

type spec = {
  sp_circuit : Halotis_netlist.Netlist.t;
  sp_drives : (Halotis_netlist.Netlist.signal_id * Drive.t) list;
  sp_tech : Halotis_tech.Tech.t;
  sp_overlay : Halotis_tech.Param_overlay.t;
      (** parameter corner every engine run of this spec prices its
          coefficients at; empty (the default) is bit-identical to
          pricing straight from [sp_tech] *)
  sp_t_stop : Halotis_util.Units.time option;  (** simulation horizon *)
  sp_injections : injection list;
  sp_budget : Halotis_guard.Budget.t;
  sp_watchdog : Halotis_guard.Watchdog.config option;
  sp_trace : bool;  (** causality tracing; IDDM engines only *)
}

val spec :
  ?drives:(Halotis_netlist.Netlist.signal_id * Drive.t) list ->
  ?injections:injection list ->
  ?t_stop:Halotis_util.Units.time ->
  ?budget:Halotis_guard.Budget.t ->
  ?watchdog:Halotis_guard.Watchdog.config ->
  ?trace:bool ->
  ?overlay:Halotis_tech.Param_overlay.t ->
  tech:Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  spec
(** Defaults: no drives, no injections, no horizon, unlimited budget,
    no watchdog, tracing off, empty overlay. *)

type raw =
  | Iddm_result of Iddm.result  (** [Ddm] and [Cdm] runs *)
  | Classic_result of Classic.result

type result = {
  rs_engine : engine;
  rs_spec : spec;
  rs_stats : Stats.t;
  rs_end_time : Halotis_util.Units.time;
  rs_truncated : bool;
  rs_stopped_by : Halotis_guard.Stop.t;
  rs_frozen : (Halotis_netlist.Netlist.signal_id * Halotis_util.Units.time) list;
  rs_vt : Halotis_util.Units.voltage;
      (** the digitization threshold of the common view: VDD/2 of
          [sp_tech] *)
  rs_raw : raw;
  rs_edges : Halotis_wave.Digital.edge list array Lazy.t;
      (** memoization cell behind {!edges}; force through the accessor *)
  rs_initial_levels : bool array Lazy.t;
      (** memoization cell behind {!initial_levels} *)
}

val run : engine -> spec -> result
(** Runs the spec on the chosen engine.  This is the {e only}
    engine-dispatch point in the code base: [Ddm]/[Cdm] configure and
    call {!Iddm.run}; [Classic_inertial] abstracts the ramps to
    toggles and calls {!Classic.run}.
    @raise Invalid_argument as the underlying engines do (unsettled DC
    point, unknown injection signal, bad drive). *)

(** {1 Common result view} *)

val edges : result -> Halotis_wave.Digital.edge list array
(** Per-signal digitized edges at [rs_vt], indexed by signal id —
    computed from the waveforms for IDDM runs, taken verbatim from the
    classic engine.  Memoized: the first call digitizes, later calls
    are free. *)

val initial_levels : result -> bool array
(** Per-signal initial logic level (also memoized). *)

val output_edges : result -> (string * Halotis_wave.Digital.edge list) list
(** Primary outputs in declaration order, with their edges. *)

val vcd_dumps : result -> Halotis_wave.Vcd.signal_dump list
(** Every signal as a VCD dump, watchdog-frozen intervals marked [x] —
    the payload of [simulate --vcd] for any engine. *)

val top_offenders : ?n:int -> result -> (string * int) list
(** The [n] (default 5) signals with the most committed edges,
    descending (ties by signal id) — the watchdog's event-rate view of
    a finished run, available whether or not a watchdog ran or
    tripped.  Signals with no edges are omitted. *)

(** {1 Engine-specific access} *)

val iddm : result -> Iddm.result option
(** The full IDDM result (waveforms, trace) — [None] for classic runs. *)

val classic : result -> Classic.result option

val replay_hazard : result -> bool
(** Whether the run retroactively invalidated an already-processed
    event (see {!Iddm.result.replay_hazard}); always [false] for
    classic runs, which cone re-simulation does not cover anyway. *)

(** {1 Incremental cone re-simulation}

    The fault-campaign fast path: an injection on [victim] can only
    perturb the victim's static fanout cone ({!Compiled.fanout_cone}),
    so instead of re-running the whole circuit per site, a {!Cone.ctx}
    re-runs just the cone twice — once clean, once with the pulse —
    and grafts the difference onto the full baseline.  The grafted
    edges and statistics are {e exactly} what a full injected run would
    produce whenever every involved run is replayable
    (hazard-free, see {!Iddm.result.replay_hazard}) and no guardrail
    trips; every other case returns {!Cone.Fallback} and the caller
    re-simulates the site in full, so campaign verdicts are
    byte-identical with the optimization on or off. *)
module Cone : sig
  type ctx

  (** Cumulative accounting across {!run_site} calls, for reporting a
      campaign's incremental behaviour (bench and CLI summaries; never
      part of verdict bytes). *)
  type totals = {
    ct_exact : int;  (** sites answered by the cone graft *)
    ct_fallback : int;  (** sites that fell back to a full re-run *)
    ct_cone_gates : int;  (** total cone gates over exact sites *)
    ct_cone_events : int;
        (** total injected-cone events processed over exact sites *)
  }

  type outcome =
    | Exact of {
        edges : Halotis_wave.Digital.edge list array;
            (** per-signal digitized edges of the injected run: cone
                members re-digitized, all others aliasing the baseline
                lists *)
        stats : Stats.t;
            (** baseline counters plus the cone delta — equal to the
                full injected run's counters *)
        cone_gates : int;
        cone_events : int;
      }
    | Fallback of string  (** human-readable reason; run the site in full *)

  val create : engine -> spec -> baseline:result -> ctx option
  (** Compiles the circuit, captures the baseline's DC operating point
      and digitized view, and arms the per-victim memo.  [spec] must be
      the baseline's spec (same circuit, drives, tech, horizon) and
      [baseline] its finished result on [engine].  Returns [None] —
      incremental disabled for the whole campaign — for the classic
      engine, an engine/baseline mismatch, or a baseline that is
      truncated, watchdog-frozen or replay-hazardous. *)

  val run_site : ctx -> injection -> outcome
  (** One injection site.  Cone construction and the clean cone replay
      are memoized per victim signal; the injected cone run is fresh.
      Falls back (never raises) on driverless victims, guardrail trips,
      replay hazards, or a cone replay that fails to reproduce the
      baseline edges. *)

  val totals : ctx -> totals
end

(** {1 Resumable sessions}

    The facade over {!Iddm.start}/{!Iddm.advance}: a run that pauses
    between events, accepts fresh stimulus while paused, and — advanced
    in steps — stays bit-identical to a one-shot {!run} of the same
    spec.  Only the waveform engines support sessions; the classic
    engine remains one-shot. *)
module Session : sig
  type t

  val start : ?compiled:Compiled.t -> engine -> spec -> t
  (** Seeds the spec's drives and injections without processing any
      event.  [compiled] shares a pre-flattened circuit (see
      {!Compiled}); it must be for exactly the spec's netlist and tech.
      @raise Invalid_argument for [Classic_inertial], or as {!run}
      does (unsettled DC point, bad drive, unknown injection signal). *)

  val advance : t -> upto:Halotis_util.Units.time -> result
  (** Processes every queued event at or before [upto] (clamped to the
      spec's horizon); [upto = infinity] finishes the run.  The result
      aliases the session's live state — query it before advancing
      again (its lazy edge view digitizes at force time). *)

  val snapshot : t -> result
  (** The current result without advancing (same aliasing caveat). *)

  val set_input :
    t -> signal:Halotis_netlist.Netlist.signal_id -> Halotis_wave.Transition.t list -> unit
  (** Appends fresh ramps to a primary input and propagates them
      through the engine's own cancellation/fan-out machinery, waking a
      quiesced session.  Ramps must lie at or after the last [advance]
      horizon. @raise Invalid_argument for non-input signals. *)

  val inject : t -> injection -> unit
  (** Splices a live SET pulse, queued at its first ramp's instant —
      exactly like a [start]-time injection not yet reached. *)

  val time : t -> Halotis_util.Units.time
  (** Time of the last processed event. *)

  val finished : t -> bool
  (** No queued event can ever run again (drained, past the horizon, or
      guardrail-stopped); fresh stimulus clears the drained case. *)

  val engine : t -> engine
  val spec : t -> spec
end
