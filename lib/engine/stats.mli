(** Event-count bookkeeping — the raw material of the paper's Table 1.

    "Events" are threshold crossings scheduled on gate inputs;
    "filtered events" are pending events cancelled by the Fig. 4 rule
    when a newer transition truncates or annuls the waveform they were
    computed from. *)

type t = {
  mutable events_scheduled : int;
  mutable events_processed : int;
  mutable events_filtered : int;  (** cancellations — Table 1's "Filtered events" *)
  mutable stale_skipped : int;
      (** tombstoned events discarded when the queue reached them — the
          lazy-cancellation kernel marks a cancelled event dead in place
          instead of restructuring the heap, and reclaims it here.  In
          an {!Iddm} run that drains its queue,
          [stale_skipped = events_filtered]; purely diagnostic, not
          part of {!total} *)
  mutable transitions_emitted : int;  (** output transitions appended to waveforms *)
  mutable transitions_annulled : int;  (** stored transitions wiped by later ones *)
  mutable noop_evaluations : int;  (** gate evaluations that left the output unchanged *)
  mutable stopped_by : Halotis_guard.Stop.t;
      (** why the run ended; anything other than [Completed] means the
          counters (and the waveforms they describe) are partial *)
}

val create : unit -> t
val copy : t -> t

val merge : t -> t -> unit
(** [merge into t] accumulates [t]'s counters into [into] — the
    aggregation primitive of fault-injection campaigns, which sum event
    counts across many runs.  [into.stopped_by] keeps its value unless
    it is [Completed], in which case it takes [t]'s (so an aggregate is
    marked partial as soon as any contributing run was). *)

val diff : t -> t -> t
(** [diff a b] is a fresh record of per-counter differences [a - b]:
    what an injected run cost {e beyond} its baseline.  Counters may be
    negative when [b] outgrew [a].  [stopped_by] is taken from [a]. *)

val total : t -> int
(** Sum of all counters — a scalar activity measure. *)

val pp : Format.formatter -> t -> unit
(** Appends ["; stopped: <reason>"] only when the run did not
    complete. *)

val to_json : t -> Halotis_util.Json.t
(** Counters as a JSON object (field order matches the record); a
    [stopped_by] member is present only when the run did not complete.
    Shared by the simulate [--json] output and fault reports. *)
