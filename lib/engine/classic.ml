module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Transition = Halotis_wave.Transition
module Digital = Halotis_wave.Digital
module Tech = Halotis_tech.Tech
module Delay_model = Halotis_delay.Delay_model
module Heap = Halotis_util.Heap
module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value
module Stop = Halotis_guard.Stop
module Budget = Halotis_guard.Budget
module Watchdog = Halotis_guard.Watchdog

type mode = Inertial | Transport

type config = {
  tech : Tech.t;
  overlay : Halotis_tech.Param_overlay.t;
  t_stop : float option;
  max_events : int;
  mode : mode;
  budget : Budget.t;
  watchdog : Watchdog.config option;
}

let config ?(overlay = Halotis_tech.Param_overlay.empty) ?t_stop
    ?(max_events = 10_000_000) ?(mode = Inertial)
    ?(budget = Budget.unlimited) ?watchdog tech =
  { tech; overlay; t_stop; max_events; mode; budget; watchdog }

type result = {
  circuit : Netlist.t;
  edges : Digital.edge list array;
  initial_levels : bool array;
  final_levels : bool array;
  stats : Stats.t;
  end_time : float;
  truncated : bool;
  stopped_by : Stop.t;
  frozen : (Netlist.signal_id * float) list;
}

(* Per-signal deque of live pending transaction slots, oldest at
   [txq_head].  Preemption trims a suffix (newest first), commits
   consume the head; both O(1), allocation-free, and popped
   transactions are reclaimed immediately instead of leaking until the
   next preemption scan. *)
type tx_queue = {
  mutable txq_buf : int array;
  mutable txq_head : int;
  mutable txq_tail : int;
}

let txq_push txq slot =
  let cap = Array.length txq.txq_buf in
  if txq.txq_tail = cap then begin
    let live = txq.txq_tail - txq.txq_head in
    if txq.txq_head > 0 && 2 * live <= cap then
      Array.blit txq.txq_buf txq.txq_head txq.txq_buf 0 live
    else begin
      let buf = Array.make (max 4 (2 * cap)) (-1) in
      Array.blit txq.txq_buf txq.txq_head buf 0 live;
      txq.txq_buf <- buf
    end;
    txq.txq_head <- 0;
    txq.txq_tail <- live
  end;
  txq.txq_buf.(txq.txq_tail) <- slot;
  txq.txq_tail <- txq.txq_tail + 1

(* Hot netlist structure flattened into CSR-style int arrays, built
   once at setup — the per-event path never touches the boxed gate
   records (see the matching comment in {!Iddm}).

   Transactions live in a recycled structure-of-arrays pool and are
   passed around as small-int slots (heap payloads are bare ints), so
   the steady-state hot path allocates nothing.  [tx_dead] is the
   lazy-cancellation tombstone: preempted transactions are marked dead
   in place and discarded (and recycled) when the queue surfaces them.
   A slot sits in the queue exactly once, so recycling at pop time is
   single-free by construction. *)
type state = {
  cfg : config;
  value : bool array; (* committed signal values *)
  pending : tx_queue array; (* per signal: live scheduled driver transactions *)
  queue : Heap.Unboxed.t;
  rev_edges : Digital.edge list array; (* newest first *)
  g_kind : Gate_kind.t array; (* gate -> logic function *)
  g_out : int array; (* gate -> output signal *)
  g_base : int array; (* gate -> first slot in [g_fanin]; length ngates + 1 *)
  g_fanin : int array; (* flattened gate fanin signals *)
  fan_off : int array; (* signal -> first fanout edge; length nsignals + 1 *)
  fan_gate : int array; (* fanout edge -> loading gate (distinct per signal) *)
  fan_pin : int array; (* fanout edge -> first pin of that gate on the signal *)
  (* transaction pool: parallel arrays indexed by slot *)
  mutable tx_sid : int array;
  mutable tx_at : float array;
  mutable tx_value : Bytes.t; (* '\001' = drive high *)
  mutable tx_dead : Bytes.t;
  mutable tx_free : int array; (* stack of recycled slots *)
  mutable tx_free_top : int;
  cache : Delay_model.Cache.t;
  stats : Stats.t;
  (* guardrails *)
  c : Netlist.t;
  wd : Watchdog.t option;
  frozen : Bytes.t; (* signal -> '\001' once the watchdog froze it *)
  mutable frozen_on : bool;
  mutable rev_frozen : (int * float) list;
  mutable stop : Stop.t;
}

let grow_pool st =
  let cap = Array.length st.tx_sid in
  let ncap = max 64 (2 * cap) in
  let si = Array.make ncap (-1) in
  Array.blit st.tx_sid 0 si 0 cap;
  st.tx_sid <- si;
  let at = Array.make ncap 0. in
  Array.blit st.tx_at 0 at 0 cap;
  st.tx_at <- at;
  let va = Bytes.make ncap '\000' in
  Bytes.blit st.tx_value 0 va 0 cap;
  st.tx_value <- va;
  let de = Bytes.make ncap '\000' in
  Bytes.blit st.tx_dead 0 de 0 cap;
  st.tx_dead <- de;
  let free = Array.make ncap 0 in
  for i = 0 to ncap - cap - 1 do
    free.(i) <- cap + i
  done;
  st.tx_free <- free;
  st.tx_free_top <- ncap - cap

let alloc_tx st =
  if st.tx_free_top = 0 then grow_pool st;
  st.tx_free_top <- st.tx_free_top - 1;
  st.tx_free.(st.tx_free_top)

let free_tx st slot =
  st.tx_free.(st.tx_free_top) <- slot;
  st.tx_free_top <- st.tx_free_top + 1

(* Allocate, fill and enqueue a transaction slot (heap only; the caller
   decides whether it also enters a pending deque). *)
let enqueue_tx st ~sid ~at ~value =
  let slot = alloc_tx st in
  st.tx_sid.(slot) <- sid;
  st.tx_at.(slot) <- at;
  Bytes.set st.tx_value slot (if value then '\001' else '\000');
  Bytes.set st.tx_dead slot '\000';
  ignore (Heap.Unboxed.insert st.queue ~key:at slot);
  slot

(* The value the driver will settle to once pending transactions fire. *)
let scheduled_target st sid =
  let txq = st.pending.(sid) in
  if txq.txq_head < txq.txq_tail then
    Bytes.get st.tx_value (txq.txq_buf.(txq.txq_tail - 1)) = '\001'
  else st.value.(sid)

(* Classical inertial scheduling on signal [sid]. *)
let schedule_inertial st sid ~at ~value ~window =
  (* Transport preemption: kill pending transactions at or after [at] —
     a suffix of the (time-sorted) deque, tombstoned in place. *)
  let txq = st.pending.(sid) in
  let i = ref (txq.txq_tail - 1) in
  while !i >= txq.txq_head && st.tx_at.(txq.txq_buf.(!i)) >= at do
    Bytes.set st.tx_dead txq.txq_buf.(!i) '\001';
    st.stats.Stats.events_filtered <- st.stats.Stats.events_filtered + 1;
    decr i
  done;
  txq.txq_tail <- !i + 1;
  let target =
    if txq.txq_head < txq.txq_tail then
      Bytes.get st.tx_value (txq.txq_buf.(txq.txq_tail - 1)) = '\001'
    else st.value.(sid)
  in
  if target = value then st.stats.Stats.noop_evaluations <- st.stats.Stats.noop_evaluations + 1
  else begin
    (* Inertial rejection: a reversal closer than the gate's window to
       the previous pending transaction annihilates with it.  Transport
       mode never rejects. *)
    if
      txq.txq_head < txq.txq_tail
      && st.cfg.mode = Inertial
      && at -. st.tx_at.(txq.txq_buf.(txq.txq_tail - 1)) < window
    then begin
      Bytes.set st.tx_dead txq.txq_buf.(txq.txq_tail - 1) '\001';
      txq.txq_tail <- txq.txq_tail - 1;
      st.stats.Stats.events_filtered <- st.stats.Stats.events_filtered + 2
    end
    else begin
      let slot = enqueue_tx st ~sid ~at ~value in
      txq_push txq slot;
      st.stats.Stats.events_scheduled <- st.stats.Stats.events_scheduled + 1
    end
  end

(* [Gate_kind.eval_bool] over committed values via the flat fanin
   table, without building a per-call input array. *)
let rec all_v (value : bool array) fanin base n i =
  i >= n || (value.(fanin.(base + i)) && all_v value fanin base n (i + 1))

let rec any_v (value : bool array) fanin base n i =
  i < n && (value.(fanin.(base + i)) || any_v value fanin base n (i + 1))

let rec parity_v (value : bool array) fanin base n i acc =
  if i >= n then acc else parity_v value fanin base n (i + 1) (acc <> value.(fanin.(base + i)))

let eval_gate st gid =
  let base = st.g_base.(gid) in
  let n = st.g_base.(gid + 1) - base in
  let v i = st.value.(st.g_fanin.(base + i)) in
  match st.g_kind.(gid) with
  | Gate_kind.Buf -> v 0
  | Gate_kind.Inv -> not (v 0)
  | Gate_kind.And _ -> all_v st.value st.g_fanin base n 0
  | Gate_kind.Nand _ -> not (all_v st.value st.g_fanin base n 0)
  | Gate_kind.Or _ -> any_v st.value st.g_fanin base n 0
  | Gate_kind.Nor _ -> not (any_v st.value st.g_fanin base n 0)
  | Gate_kind.Xor _ -> parity_v st.value st.g_fanin base n 0 false
  | Gate_kind.Xnor _ -> not (parity_v st.value st.g_fanin base n 0 false)
  | Gate_kind.Aoi21 -> not ((v 0 && v 1) || v 2)
  | Gate_kind.Oai21 -> not ((v 0 || v 1) && v 2)
  | Gate_kind.Mux2 -> if v 2 then v 1 else v 0

(* A watchdog trip: in [Halt] mode flag the whole run for stopping; in
   [Degrade] mode freeze the offending feedback loop so no new
   transactions get scheduled on it while the rest keeps simulating. *)
let watchdog_trip st wd ~signal ~at =
  let fs = Watchdog.freeze_set st.c ~signal in
  match Watchdog.mode wd with
  | Watchdog.Halt -> st.stop <- Stop.Oscillation (Watchdog.offender_names st.c fs)
  | Watchdog.Degrade ->
      List.iter
        (fun s ->
          if Bytes.get st.frozen s = '\000' then begin
            Bytes.set st.frozen s '\001';
            st.rev_frozen <- (s, at) :: st.rev_frozen
          end)
        fs;
      st.frozen_on <- true

let evaluate_fanout st ~now sid =
  (* A gate with several pins on [sid] evaluates once per pin in the
     paper's event model; one evaluation per distinct gate suffices
     here because values, not thresholds, drive the baseline. *)
  for e = st.fan_off.(sid) to st.fan_off.(sid + 1) - 1 do
    let gid = st.fan_gate.(e) in
    let new_out = eval_gate st gid in
    let out_sid = st.g_out.(gid) in
    if st.frozen_on && Bytes.get st.frozen out_sid = '\001' then
      (* frozen output: the gate evaluated but schedules nothing *)
      st.stats.Stats.noop_evaluations <- st.stats.Stats.noop_evaluations + 1
    else if new_out <> scheduled_target st out_sid then begin
      Delay_model.Cache.eval st.cache gid Delay_model.Cdm ~rising_out:new_out
        ~pin:st.fan_pin.(e) ~tau_in:0. ~t_event:now ~last_output_start:Float.nan;
      let tp = Delay_model.Cache.tp st.cache in
      schedule_inertial st out_sid ~at:(now +. tp) ~value:new_out ~window:tp
    end
    else st.stats.Stats.noop_evaluations <- st.stats.Stats.noop_evaluations + 1
  done

let dc_levels c drives_tbl =
  let input_level sid =
    match Hashtbl.find_opt drives_tbl sid with
    | Some (d : Drive.t) -> d.Drive.initial
    | None -> false
  in
  Dc.levels c ~input_level

let run ?(injections = []) cfg c ~drives =
  let drives_tbl = Hashtbl.create 16 in
  List.iter
    (fun (sid, d) ->
      Drive.check d;
      if not (Netlist.signal c sid).Netlist.is_primary_input then
        invalid_arg
          (Printf.sprintf "Classic.run: drive on non-input signal %s"
             (Netlist.signal_name c sid));
      Hashtbl.replace drives_tbl sid d)
    drives;
  let levels = dc_levels c drives_tbl in
  let nsignals = Netlist.signal_count c and ngates = Netlist.gate_count c in
  let loads = Halotis_delay.Loads.of_netlist cfg.tech c in
  let g_kind = Array.init ngates (fun gid -> (Netlist.gate c gid).Netlist.kind) in
  let g_out = Array.init ngates (fun gid -> (Netlist.gate c gid).Netlist.output) in
  let g_base = Array.make (ngates + 1) 0 in
  for gid = 0 to ngates - 1 do
    g_base.(gid + 1) <- g_base.(gid) + Array.length (Netlist.gate c gid).Netlist.fanin
  done;
  let g_fanin = Array.make (max 1 g_base.(ngates)) (-1) in
  for gid = 0 to ngates - 1 do
    Array.iteri
      (fun pin sid -> g_fanin.(g_base.(gid) + pin) <- sid)
      (Netlist.gate c gid).Netlist.fanin
  done;
  (* Distinct fanout gates per signal, with the first pin each has on
     it — what the former per-event [Netlist.fanout_gates] computed. *)
  let fanouts =
    Array.init nsignals (fun sid ->
        List.map
          (fun gid ->
            let g = Netlist.gate c gid in
            let rec find i = if g.Netlist.fanin.(i) = sid then i else find (i + 1) in
            (gid, find 0))
          (Netlist.fanout_gates c sid))
  in
  let fan_off = Array.make (nsignals + 1) 0 in
  for sid = 0 to nsignals - 1 do
    fan_off.(sid + 1) <- fan_off.(sid) + List.length fanouts.(sid)
  done;
  let nedges = fan_off.(nsignals) in
  let fan_gate = Array.make (max 1 nedges) 0 and fan_pin = Array.make (max 1 nedges) 0 in
  for sid = 0 to nsignals - 1 do
    List.iteri
      (fun k (gid, pin) ->
        fan_gate.(fan_off.(sid) + k) <- gid;
        fan_pin.(fan_off.(sid) + k) <- pin)
      fanouts.(sid)
  done;
  let st =
    {
      cfg;
      value = Array.copy levels;
      pending = Array.init nsignals (fun _ -> { txq_buf = [||]; txq_head = 0; txq_tail = 0 });
      queue = Heap.Unboxed.create ~capacity:64 ();
      rev_edges = Array.make nsignals [];
      g_kind;
      g_out;
      g_base;
      g_fanin;
      fan_off;
      fan_gate;
      fan_pin;
      tx_sid = [||];
      tx_at = [||];
      tx_value = Bytes.empty;
      tx_dead = Bytes.empty;
      tx_free = [||];
      tx_free_top = 0;
      cache = Delay_model.Cache.create ~overlay:cfg.overlay cfg.tech c ~loads;
      stats = Stats.create ();
      c;
      wd = Option.map (fun w -> Watchdog.create w ~nsignals) cfg.watchdog;
      frozen = Bytes.make nsignals '\000';
      frozen_on = false;
      rev_frozen = [];
      stop = Stop.Completed;
    }
  in
  (* Seed input switches at the ramps' 50% instants. *)
  Hashtbl.iter
    (fun sid (d : Drive.t) ->
      List.iter
        (fun (tr : Transition.t) ->
          let at = tr.Transition.start +. (tr.Transition.slope_time /. 2.) in
          let value =
            match tr.Transition.polarity with
            | Transition.Rising -> true
            | Transition.Falling -> false
          in
          let slot = enqueue_tx st ~sid ~at ~value in
          txq_push st.pending.(sid) slot;
          st.stats.Stats.events_scheduled <- st.stats.Stats.events_scheduled + 1)
        d.Drive.transitions)
    drives_tbl;
  (* Injections: forced value toggles on arbitrary signals (the
     boolean abstraction of a SET pulse).  They go into the queue but
     deliberately NOT into the signal's pending-transaction deque: a
     particle strike is not a driver transaction, so earlier driver
     activity must not preempt it.  Fanout gates still apply the
     classical inertial filter to the pulse they observe. *)
  List.iter
    (fun (sid, toggles) ->
      if sid < 0 || sid >= nsignals then
        invalid_arg "Classic.run: injection on unknown signal";
      List.iter (fun (at, value) -> ignore (enqueue_tx st ~sid ~at ~value)) toggles)
    injections;
  (* Main loop; see the matching comment in {!Iddm} — the horizon folds
     [t_stop] and the budget's [max_sim_time], the monitor folds the
     legacy [max_events]. *)
  let horizon, horizon_stop =
    match (cfg.t_stop, cfg.budget.Budget.max_sim_time) with
    | None, None -> (infinity, Stop.Completed)
    | Some ts, None -> (ts, Stop.Completed)
    | None, Some mt -> (mt, Stop.Sim_time mt)
    | Some ts, Some mt -> if mt < ts then (mt, Stop.Sim_time mt) else (ts, Stop.Completed)
  in
  let monitor =
    let b = cfg.budget in
    let max_events =
      match b.Budget.max_events with
      | Some n -> Some (min n cfg.max_events)
      | None -> Some cfg.max_events
    in
    Budget.Monitor.create { b with Budget.max_events }
  in
  let max_tr =
    match cfg.budget.Budget.max_transitions with Some n -> n | None -> max_int
  in
  let end_time = ref 0. in
  let continue = ref true in
  while !continue do
    if Heap.Unboxed.is_empty st.queue then continue := false
    else begin
      let t = Heap.Unboxed.min_key st.queue in
      if t > horizon then begin
        st.stop <- horizon_stop;
        continue := false
      end
      else begin
        let slot = Heap.Unboxed.pop st.queue in
        if Bytes.get st.tx_dead slot = '\001' then begin
          st.stats.Stats.stale_skipped <- st.stats.Stats.stale_skipped + 1;
          free_tx st slot
        end
        else if st.stats.Stats.transitions_emitted >= max_tr then begin
          (* committed-edge (memory) cap: same pre-event check as the
             IDDM engine's *)
          free_tx st slot;
          st.stop <- Stop.Transition_cap max_tr;
          continue := false
        end
        else begin
          match Budget.Monitor.hit monitor ~queue:(Heap.Unboxed.length st.queue) with
          | Some reason ->
              free_tx st slot;
              st.stop <- reason;
              continue := false
          | None ->
              st.stats.Stats.events_processed <- st.stats.Stats.events_processed + 1;
              end_time := Float.max !end_time t;
              let sid = st.tx_sid.(slot) in
              let value = Bytes.get st.tx_value slot = '\001' in
              (* reclaim a committed driver transaction from its deque;
                 injected toggles were never entered *)
              let txq = st.pending.(sid) in
              if txq.txq_head < txq.txq_tail && txq.txq_buf.(txq.txq_head) = slot then
                txq.txq_head <- txq.txq_head + 1;
              free_tx st slot;
              if
                st.value.(sid) <> value
                && not (st.frozen_on && Bytes.get st.frozen sid = '\001')
              then begin
                st.value.(sid) <- value;
                let polarity = if value then Transition.Rising else Transition.Falling in
                st.rev_edges.(sid) <- { Digital.at = t; polarity } :: st.rev_edges.(sid);
                st.stats.Stats.transitions_emitted <-
                  st.stats.Stats.transitions_emitted + 1;
                (match st.wd with
                | Some wd ->
                    if Watchdog.record wd ~signal:sid ~now:t then
                      watchdog_trip st wd ~signal:sid ~at:t
                | None -> ());
                evaluate_fanout st ~now:t sid
              end;
              (* a Halt-mode watchdog trip *)
              if not (Stop.completed st.stop) then continue := false
        end
      end
    end
  done;
  let final_stop = st.stop in
  st.stats.Stats.stopped_by <- final_stop;
  {
    circuit = c;
    edges = Array.map List.rev st.rev_edges;
    initial_levels = levels;
    final_levels = st.value;
    stats = st.stats;
    end_time = !end_time;
    truncated = not (Stop.completed final_stop);
    stopped_by = final_stop;
    frozen = List.rev st.rev_frozen;
  }

let edges_of_name result name =
  match Netlist.find_signal result.circuit name with
  | Some sid -> result.edges.(sid)
  | None -> raise Not_found
