module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Transition = Halotis_wave.Transition
module Digital = Halotis_wave.Digital
module Tech = Halotis_tech.Tech
module Delay_model = Halotis_delay.Delay_model
module Heap = Halotis_util.Heap
module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value

type mode = Inertial | Transport

type config = { tech : Tech.t; t_stop : float option; max_events : int; mode : mode }

let config ?t_stop ?(max_events = 10_000_000) ?(mode = Inertial) tech =
  { tech; t_stop; max_events; mode }

type result = {
  circuit : Netlist.t;
  edges : Digital.edge list array;
  initial_levels : bool array;
  final_levels : bool array;
  stats : Stats.t;
  end_time : float;
  truncated : bool;
}

type transaction = { tx_value : bool; tx_window : float }

type state = {
  cfg : config;
  c : Netlist.t;
  value : bool array; (* committed signal values *)
  pending : ((Netlist.signal_id * transaction) Heap.handle * float * bool) list array;
      (* per signal: scheduled driver transactions (handle, time, value) *)
  queue : (Netlist.signal_id * transaction) Heap.t;
  rev_edges : Digital.edge list array; (* newest first *)
  loads : float array;
  stats : Stats.t;
}

(* The value the driver will settle to once pending transactions fire. *)
let scheduled_target st sid =
  let live = List.filter (fun (h, _, _) -> Heap.mem st.queue h) st.pending.(sid) in
  st.pending.(sid) <- live;
  match live with (_, _, v) :: _ -> v | [] -> st.value.(sid)

(* Classical inertial scheduling on signal [sid]. *)
let schedule_inertial st sid ~at ~value ~window =
  (* Transport preemption: kill pending transactions at or after [at]. *)
  let keep (h, t, _) =
    if not (Heap.mem st.queue h) then false
    else if t >= at then begin
      ignore (Heap.remove st.queue h);
      st.stats.Stats.events_filtered <- st.stats.Stats.events_filtered + 1;
      false
    end
    else true
  in
  st.pending.(sid) <- List.filter keep st.pending.(sid);
  let target = match st.pending.(sid) with (_, _, v) :: _ -> v | [] -> st.value.(sid) in
  if target = value then st.stats.Stats.noop_evaluations <- st.stats.Stats.noop_evaluations + 1
  else begin
    (* Inertial rejection: a reversal closer than the gate's window to
       the previous pending transaction annihilates with it.  Transport
       mode never rejects. *)
    match st.pending.(sid) with
    | (h, t_prev, _) :: rest when st.cfg.mode = Inertial && at -. t_prev < window ->
        ignore (Heap.remove st.queue h);
        st.pending.(sid) <- rest;
        st.stats.Stats.events_filtered <- st.stats.Stats.events_filtered + 2
    | _ ->
        let handle = Heap.insert st.queue ~key:at (sid, { tx_value = value; tx_window = window }) in
        st.pending.(sid) <- (handle, at, value) :: st.pending.(sid);
        st.stats.Stats.events_scheduled <- st.stats.Stats.events_scheduled + 1
  end

let evaluate_fanout st ~now sid =
  (* A gate with several pins on [sid] evaluates once per pin in the
     paper's event model; one evaluation per distinct gate suffices
     here because values, not thresholds, drive the baseline. *)
  List.iter
    (fun gid ->
      let g = Netlist.gate st.c gid in
      let ins = Array.map (fun fid -> st.value.(fid)) g.Netlist.fanin in
      let new_out = Gate_kind.eval_bool g.Netlist.kind ins in
      if new_out <> scheduled_target st g.Netlist.output then begin
        let pin =
          let rec find i = if g.Netlist.fanin.(i) = sid then i else find (i + 1) in
          find 0
        in
        let req =
          {
            Delay_model.rising_out = new_out;
            pin;
            tau_in = 0.;
            t_event = now;
            last_output_start = None;
          }
        in
        let resp =
          Delay_model.for_gate st.cfg.tech st.c ~loads:st.loads gid Delay_model.Cdm req
        in
        schedule_inertial st g.Netlist.output ~at:(now +. resp.Delay_model.tp) ~value:new_out
          ~window:resp.Delay_model.tp
      end
      else st.stats.Stats.noop_evaluations <- st.stats.Stats.noop_evaluations + 1)
    (Netlist.fanout_gates st.c sid)

let dc_levels c drives_tbl =
  let input_level sid =
    match Hashtbl.find_opt drives_tbl sid with
    | Some (d : Drive.t) -> d.Drive.initial
    | None -> false
  in
  Dc.levels c ~input_level

let run ?(injections = []) cfg c ~drives =
  let drives_tbl = Hashtbl.create 16 in
  List.iter
    (fun (sid, d) ->
      Drive.check d;
      if not (Netlist.signal c sid).Netlist.is_primary_input then
        invalid_arg
          (Printf.sprintf "Classic.run: drive on non-input signal %s"
             (Netlist.signal_name c sid));
      Hashtbl.replace drives_tbl sid d)
    drives;
  let levels = dc_levels c drives_tbl in
  let nsignals = Netlist.signal_count c in
  let st =
    {
      cfg;
      c;
      value = Array.copy levels;
      pending = Array.make nsignals [];
      queue = Heap.create ();
      rev_edges = Array.make nsignals [];
      loads = Halotis_delay.Loads.of_netlist cfg.tech c;
      stats = Stats.create ();
    }
  in
  (* Seed input switches at the ramps' 50% instants. *)
  Hashtbl.iter
    (fun sid (d : Drive.t) ->
      List.iter
        (fun (tr : Transition.t) ->
          let at = tr.Transition.start +. (tr.Transition.slope_time /. 2.) in
          let value =
            match tr.Transition.polarity with
            | Transition.Rising -> true
            | Transition.Falling -> false
          in
          let handle = Heap.insert st.queue ~key:at (sid, { tx_value = value; tx_window = 0. }) in
          st.pending.(sid) <- (handle, at, value) :: st.pending.(sid);
          st.stats.Stats.events_scheduled <- st.stats.Stats.events_scheduled + 1)
        d.Drive.transitions)
    drives_tbl;
  (* Injections: forced value toggles on arbitrary signals (the
     boolean abstraction of a SET pulse).  They go into the queue but
     deliberately NOT into the signal's pending-transaction list: a
     particle strike is not a driver transaction, so earlier driver
     activity must not preempt it.  Fanout gates still apply the
     classical inertial filter to the pulse they observe. *)
  List.iter
    (fun (sid, toggles) ->
      if sid < 0 || sid >= nsignals then
        invalid_arg "Classic.run: injection on unknown signal";
      List.iter
        (fun (at, value) ->
          ignore (Heap.insert st.queue ~key:at (sid, { tx_value = value; tx_window = 0. })))
        toggles)
    injections;
  let end_time = ref 0. in
  let truncated = ref false in
  let continue = ref true in
  while !continue do
    match Heap.pop_min st.queue with
    | None -> continue := false
    | Some (t, (sid, tx)) -> (
        match cfg.t_stop with
        | Some stop when t > stop -> continue := false
        | Some _ | None ->
            st.stats.Stats.events_processed <- st.stats.Stats.events_processed + 1;
            end_time := Float.max !end_time t;
            if st.value.(sid) <> tx.tx_value then begin
              st.value.(sid) <- tx.tx_value;
              let polarity =
                if tx.tx_value then Transition.Rising else Transition.Falling
              in
              st.rev_edges.(sid) <- { Digital.at = t; polarity } :: st.rev_edges.(sid);
              st.stats.Stats.transitions_emitted <-
                st.stats.Stats.transitions_emitted + 1;
              evaluate_fanout st ~now:t sid
            end;
            if st.stats.Stats.events_processed >= cfg.max_events then begin
              truncated := true;
              continue := false
            end)
  done;
  {
    circuit = c;
    edges = Array.map List.rev st.rev_edges;
    initial_levels = levels;
    final_levels = st.value;
    stats = st.stats;
    end_time = !end_time;
    truncated = !truncated;
  }

let edges_of_name result name =
  match Netlist.find_signal result.circuit name with
  | Some sid -> result.edges.(sid)
  | None -> raise Not_found
