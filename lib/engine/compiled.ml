module Netlist = Halotis_netlist.Netlist
module Tech = Halotis_tech.Tech
module Delay_model = Halotis_delay.Delay_model

type t = {
  circuit : Netlist.t;
  tech : Tech.t;
  nsignals : int;
  ngates : int;
  npins : int;
  g_kind : Halotis_logic.Gate_kind.t array;
  g_out : int array;
  g_base : int array;
  pin_fanin : int array;
  pin_vt : float array;
  fan_off : int array;
  fan_gate : int array;
  fan_pin : int array;
  cache : Delay_model.Cache.t;
}

let compile tech c =
  let nsignals = Netlist.signal_count c and ngates = Netlist.gate_count c in
  let g_kind = Array.init ngates (fun gid -> (Netlist.gate c gid).Netlist.kind) in
  let g_out = Array.init ngates (fun gid -> (Netlist.gate c gid).Netlist.output) in
  let g_base = Array.make (ngates + 1) 0 in
  for gid = 0 to ngates - 1 do
    g_base.(gid + 1) <- g_base.(gid) + Array.length (Netlist.gate c gid).Netlist.fanin
  done;
  let npins = g_base.(ngates) in
  let pin_fanin = Array.make (max 1 npins) (-1) in
  let vt_table = Halotis_delay.Thresholds.table tech c in
  let pin_vt = Array.make (max 1 npins) 0. in
  for gid = 0 to ngates - 1 do
    let g = Netlist.gate c gid in
    let base = g_base.(gid) in
    Array.iteri
      (fun pin sid ->
        pin_fanin.(base + pin) <- sid;
        pin_vt.(base + pin) <- vt_table.(gid).(pin))
      g.Netlist.fanin
  done;
  let fan_off = Array.make (nsignals + 1) 0 in
  for sid = 0 to nsignals - 1 do
    fan_off.(sid + 1) <- fan_off.(sid) + Array.length (Netlist.signal c sid).Netlist.loads
  done;
  let nedges = fan_off.(nsignals) in
  let fan_gate = Array.make (max 1 nedges) 0 and fan_pin = Array.make (max 1 nedges) 0 in
  for sid = 0 to nsignals - 1 do
    Array.iteri
      (fun k (lg, lpin) ->
        fan_gate.(fan_off.(sid) + k) <- lg;
        fan_pin.(fan_off.(sid) + k) <- lpin)
      (Netlist.signal c sid).Netlist.loads
  done;
  let loads = Halotis_delay.Loads.of_netlist tech c in
  {
    circuit = c;
    tech;
    nsignals;
    ngates;
    npins;
    g_kind;
    g_out;
    g_base;
    pin_fanin;
    pin_vt;
    fan_off;
    fan_gate;
    fan_pin;
    cache = Delay_model.Cache.create tech c ~loads;
  }
