module Netlist = Halotis_netlist.Netlist
module Tech = Halotis_tech.Tech
module Param_overlay = Halotis_tech.Param_overlay
module Delay_model = Halotis_delay.Delay_model

type t = {
  circuit : Netlist.t;
  tech : Tech.t;
  overlay : Param_overlay.t;
  nsignals : int;
  ngates : int;
  npins : int;
  g_kind : Halotis_logic.Gate_kind.t array;
  g_out : int array;
  g_base : int array;
  pin_fanin : int array;
  pin_vt : float array;
  fan_off : int array;
  fan_gate : int array;
  fan_pin : int array;
  cache : Delay_model.Cache.t;
}

type cone = {
  cone_victim : int;
  cone_gates : int array;
  cone_signals : int array;
  cone_signal_member : Bytes.t;
  cone_bnd_gate : int array;
  cone_bnd_pin : int array;
}

(* The static fanout cone of a victim signal: its driver gate plus the
   transitive fanout closure.  Closure over fanout means a perturbation
   of the victim can only ever schedule events on cone-gate pins, so a
   run restricted to these gates is self-contained; the driver gate is
   included because its native output activity interleaves with (and is
   degraded by) the spliced pulse on the victim waveform itself. *)
let fanout_cone cp ~victim =
  if victim < 0 || victim >= cp.nsignals then
    invalid_arg "Compiled.fanout_cone: unknown signal";
  let smem = Bytes.make cp.nsignals '\000' in
  let gmem = Bytes.make (max 1 cp.ngates) '\000' in
  Bytes.set smem victim '\001';
  (match (Netlist.signal cp.circuit victim).Netlist.driver with
  | Some g -> Bytes.set gmem g '\001'
  | None -> ());
  let work = ref [ victim ] in
  while !work <> [] do
    match !work with
    | [] -> ()
    | sid :: rest ->
        work := rest;
        for e = cp.fan_off.(sid) to cp.fan_off.(sid + 1) - 1 do
          let g = cp.fan_gate.(e) in
          if Bytes.get gmem g = '\000' then begin
            Bytes.set gmem g '\001';
            let out = cp.g_out.(g) in
            if Bytes.get smem out = '\000' then begin
              Bytes.set smem out '\001';
              work := out :: !work
            end
          end
        done
  done;
  let gates = ref [] and signals = ref [] in
  for g = cp.ngates - 1 downto 0 do
    if Bytes.get gmem g = '\001' then gates := g :: !gates
  done;
  for s = cp.nsignals - 1 downto 0 do
    if Bytes.get smem s = '\001' then signals := s :: !signals
  done;
  (* Boundary feeds: cone-gate pins driven from outside the cone.  A
     cone-restricted run replays the baseline crossings of these pins
     verbatim — the rest of the circuit cannot be perturbed by the
     victim, so its waveforms are already final. *)
  let bnd_gate = ref [] and bnd_pin = ref [] in
  List.iter
    (fun g ->
      let base = cp.g_base.(g) in
      for pin = 0 to cp.g_base.(g + 1) - base - 1 do
        if Bytes.get smem cp.pin_fanin.(base + pin) = '\000' then begin
          bnd_gate := g :: !bnd_gate;
          bnd_pin := pin :: !bnd_pin
        end
      done)
    (List.rev !gates);
  {
    cone_victim = victim;
    cone_gates = Array.of_list !gates;
    cone_signals = Array.of_list !signals;
    cone_signal_member = smem;
    cone_bnd_gate = Array.of_list (List.rev !bnd_gate);
    cone_bnd_pin = Array.of_list (List.rev !bnd_pin);
  }

let compile ?(overlay = Param_overlay.empty) tech c =
  let nsignals = Netlist.signal_count c and ngates = Netlist.gate_count c in
  let g_kind = Array.init ngates (fun gid -> (Netlist.gate c gid).Netlist.kind) in
  let g_out = Array.init ngates (fun gid -> (Netlist.gate c gid).Netlist.output) in
  let g_base = Array.make (ngates + 1) 0 in
  for gid = 0 to ngates - 1 do
    g_base.(gid + 1) <- g_base.(gid) + Array.length (Netlist.gate c gid).Netlist.fanin
  done;
  let npins = g_base.(ngates) in
  let pin_fanin = Array.make (max 1 npins) (-1) in
  let vt_table = Halotis_delay.Thresholds.table tech c in
  let pin_vt = Array.make (max 1 npins) 0. in
  let scaled = not (Param_overlay.is_empty overlay) in
  for gid = 0 to ngates - 1 do
    let g = Netlist.gate c gid in
    let base = g_base.(gid) in
    let vts = if scaled then Param_overlay.vt_scale overlay ~gate:gid else 1.0 in
    Array.iteri
      (fun pin sid ->
        pin_fanin.(base + pin) <- sid;
        pin_vt.(base + pin) <-
          (if scaled then vt_table.(gid).(pin) *. vts else vt_table.(gid).(pin)))
      g.Netlist.fanin
  done;
  let fan_off = Array.make (nsignals + 1) 0 in
  for sid = 0 to nsignals - 1 do
    fan_off.(sid + 1) <- fan_off.(sid) + Array.length (Netlist.signal c sid).Netlist.loads
  done;
  let nedges = fan_off.(nsignals) in
  let fan_gate = Array.make (max 1 nedges) 0 and fan_pin = Array.make (max 1 nedges) 0 in
  for sid = 0 to nsignals - 1 do
    Array.iteri
      (fun k (lg, lpin) ->
        fan_gate.(fan_off.(sid) + k) <- lg;
        fan_pin.(fan_off.(sid) + k) <- lpin)
      (Netlist.signal c sid).Netlist.loads
  done;
  let loads = Halotis_delay.Loads.of_netlist tech c in
  {
    circuit = c;
    tech;
    overlay;
    nsignals;
    ngates;
    npins;
    g_kind;
    g_out;
    g_base;
    pin_fanin;
    pin_vt;
    fan_off;
    fan_gate;
    fan_pin;
    cache = Delay_model.Cache.create ~overlay tech c ~loads;
  }
