module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Waveform = Halotis_wave.Waveform
module Transition = Halotis_wave.Transition
module Digital = Halotis_wave.Digital
module Tech = Halotis_tech.Tech
module Delay_model = Halotis_delay.Delay_model
module Heap = Halotis_util.Heap
module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value

type config = {
  tech : Tech.t;
  delay_kind : Delay_model.kind;
  cancellation : bool;
  t_stop : float option;
  max_events : int;
  trace : bool;
}

let config ?(delay_kind = Delay_model.Ddm) ?(cancellation = true) ?t_stop
    ?(max_events = 10_000_000) ?(trace = false) tech =
  { tech; delay_kind; cancellation; t_stop; max_events; trace }

type trace_entry = {
  te_signal : Netlist.signal_id;
  te_start : float;
  te_gate : Netlist.gate_id;
  te_pin : int;
  te_cause_signal : Netlist.signal_id;
  te_event_time : float;
}

type result = {
  circuit : Netlist.t;
  run_config : config;
  waveforms : Waveform.t array;
  stats : Stats.t;
  end_time : float;
  truncated : bool;
  trace : trace_entry list;
}

type injection = {
  inj_signal : Netlist.signal_id;
  inj_transitions : Transition.t list;
}

(* A pin event: the causing ramp crossed pin [ev_pin] of gate
   [ev_gate]'s threshold, in the direction and with the slope recorded
   here.  An injection event splices external transitions (a SET
   pulse) into a signal's waveform when its instant is reached, so the
   spliced ramps degrade and threshold-cross like native ones. *)
type event =
  | Pin_event of { ev_gate : Netlist.gate_id; ev_pin : int; ev_rising : bool; ev_tau_in : float }
  | Inject_event of injection

type state = {
  cfg : config;
  c : Netlist.t;
  mutable rev_trace : trace_entry list;
  wf : Waveform.t array;
  vt : float array array; (* gate -> pin -> VT *)
  loads : float array; (* signal -> fF *)
  input_level : bool array array; (* gate -> pin -> level *)
  out_target : bool array; (* gate -> target logic of last output transition *)
  queue : event Heap.t;
  pending : (event Heap.handle * float) list array array;
      (* gate -> pin -> scheduled-but-unprocessed events, with keys *)
  stats : Stats.t;
}

let dc_levels c drives_tbl =
  let input_level sid =
    match Hashtbl.find_opt drives_tbl sid with
    | Some (d : Drive.t) -> d.Drive.initial
    | None -> false
  in
  Dc.levels c ~input_level

let schedule st ~key ~gate ~pin ~rising ~tau_in =
  let handle =
    Heap.insert st.queue ~key
      (Pin_event { ev_gate = gate; ev_pin = pin; ev_rising = rising; ev_tau_in = tau_in })
  in
  st.pending.(gate).(pin) <- (handle, key) :: st.pending.(gate).(pin);
  st.stats.Stats.events_scheduled <- st.stats.Stats.events_scheduled + 1

(* Fig. 4's "delete Ej-1": drop every pending event on this input whose
   instant falls at or after the start of the newly appended ramp —
   the waveform from that point on is governed by the new ramp, so
   those crossings can no longer happen. *)
let cancel_invalidated st ~gate ~pin ~from_time =
  let keep (handle, key) =
    if not (Heap.mem st.queue handle) then false
    else if key >= from_time then begin
      ignore (Heap.remove st.queue handle);
      st.stats.Stats.events_filtered <- st.stats.Stats.events_filtered + 1;
      false
    end
    else true
  in
  st.pending.(gate).(pin) <- List.filter keep st.pending.(gate).(pin)

(* Propagate a freshly appended transition on [sid] to its fanout:
   cancel invalidated pending events, then schedule the new crossing. *)
let fan_out st sid (outcome : Waveform.append_outcome) (tr : Transition.t) =
  let s = Netlist.signal st.c sid in
  Array.iter
    (fun (lg, lpin) ->
      if st.cfg.cancellation then
        cancel_invalidated st ~gate:lg ~pin:lpin ~from_time:tr.Transition.start;
      if outcome.Waveform.accepted then begin
        match Waveform.crossing_of_last st.wf.(sid) ~vt:st.vt.(lg).(lpin) with
        | Some crossing ->
            schedule st ~key:crossing ~gate:lg ~pin:lpin
              ~rising:
                (match tr.Transition.polarity with
                | Transition.Rising -> true
                | Transition.Falling -> false)
              ~tau_in:tr.Transition.slope_time
        | None -> ()
      end)
    s.Netlist.loads

let process_pin_event st ~now ~gate ~pin ~rising ~tau_in =
  let g = Netlist.gate st.c gate in
  st.input_level.(gate).(pin) <- rising;
  let new_out = Gate_kind.eval_bool g.Netlist.kind st.input_level.(gate) in
  if new_out = st.out_target.(gate) then
    st.stats.Stats.noop_evaluations <- st.stats.Stats.noop_evaluations + 1
  else begin
    let out_sid = g.Netlist.output in
    let req =
      {
        Delay_model.rising_out = new_out;
        pin;
        tau_in;
        t_event = now;
        last_output_start = Waveform.last_start st.wf.(out_sid);
      }
    in
    let resp =
      Delay_model.for_gate st.cfg.tech st.c ~loads:st.loads gate st.cfg.delay_kind req
    in
    let tr =
      Transition.make ~start:(now +. resp.Delay_model.tp)
        ~slope_time:resp.Delay_model.tau_out
        ~polarity:(if new_out then Transition.Rising else Transition.Falling)
    in
    st.out_target.(gate) <- new_out;
    let outcome = Waveform.append st.wf.(out_sid) tr in
    st.stats.Stats.transitions_annulled <-
      st.stats.Stats.transitions_annulled + List.length outcome.Waveform.dropped;
    if outcome.Waveform.accepted then begin
      st.stats.Stats.transitions_emitted <- st.stats.Stats.transitions_emitted + 1;
      if st.cfg.trace then
        st.rev_trace <-
          {
            te_signal = out_sid;
            te_start = tr.Transition.start;
            te_gate = gate;
            te_pin = pin;
            te_cause_signal = g.Netlist.fanin.(pin);
            te_event_time = now;
          }
          :: st.rev_trace
    end;
    fan_out st out_sid outcome tr
  end

(* Splice an injection's transitions into the victim waveform exactly
   as a driving gate would append its own ramps: degradation,
   truncation and event cancellation all apply.  The splice itself is
   external stimulus, so — like primary-input drives — it does not
   count towards [transitions_emitted]. *)
let process_injection st inj =
  List.iter
    (fun (tr : Transition.t) ->
      let outcome = Waveform.append st.wf.(inj.inj_signal) tr in
      fan_out st inj.inj_signal outcome tr)
    inj.inj_transitions

let process_event st ~now ev =
  match ev with
  | Pin_event { ev_gate; ev_pin; ev_rising; ev_tau_in } ->
      process_pin_event st ~now ~gate:ev_gate ~pin:ev_pin ~rising:ev_rising
        ~tau_in:ev_tau_in
  | Inject_event inj -> process_injection st inj

let run ?(injections = []) cfg c ~drives =
  let drives_tbl = Hashtbl.create 16 in
  List.iter
    (fun (sid, d) ->
      Drive.check d;
      if not (Netlist.signal c sid).Netlist.is_primary_input then
        invalid_arg
          (Printf.sprintf "Iddm.run: drive on non-input signal %s" (Netlist.signal_name c sid));
      Hashtbl.replace drives_tbl sid d)
    drives;
  let levels = dc_levels c drives_tbl in
  let vdd = Tech.vdd cfg.tech in
  let nsignals = Netlist.signal_count c and ngates = Netlist.gate_count c in
  let wf =
    Array.init nsignals (fun sid ->
        Waveform.create ~initial:(if levels.(sid) then vdd else 0.) ~vdd ())
  in
  let input_level =
    Array.init ngates (fun gid ->
        Array.map (fun sid -> levels.(sid)) (Netlist.gate c gid).Netlist.fanin)
  in
  let out_target =
    Array.init ngates (fun gid -> levels.((Netlist.gate c gid).Netlist.output))
  in
  let st =
    {
      cfg;
      c;
      rev_trace = [];
      wf;
      vt = Halotis_delay.Thresholds.table cfg.tech c;
      loads = Halotis_delay.Loads.of_netlist cfg.tech c;
      input_level;
      out_target;
      queue = Heap.create ();
      pending =
        Array.init ngates (fun gid ->
            Array.make (Array.length (Netlist.gate c gid).Netlist.fanin) []);
      stats = Stats.create ();
    }
  in
  (* Seed: apply the primary-input drives, then schedule the crossings
     the finished input waveforms actually contain. *)
  Hashtbl.iter
    (fun sid (d : Drive.t) ->
      List.iter (fun tr -> ignore (Waveform.append st.wf.(sid) tr)) d.Drive.transitions)
    drives_tbl;
  Hashtbl.iter
    (fun sid (_ : Drive.t) ->
      let s = Netlist.signal c sid in
      Array.iter
        (fun (lg, lpin) ->
          List.iter
            (fun (crossing, (tr : Transition.t)) ->
              schedule st ~key:crossing ~gate:lg ~pin:lpin
                ~rising:
                  (match tr.Transition.polarity with
                  | Transition.Rising -> true
                  | Transition.Falling -> false)
                ~tau_in:tr.Transition.slope_time)
            (Waveform.crossings_with_transitions st.wf.(sid) ~vt:st.vt.(lg).(lpin)))
        s.Netlist.loads)
    drives_tbl;
  (* Injections enter the queue as first-class events so the splice
     happens at its instant, after any earlier native activity on the
     victim has been appended. *)
  List.iter
    (fun inj ->
      if inj.inj_signal < 0 || inj.inj_signal >= nsignals then
        invalid_arg "Iddm.run: injection on unknown signal";
      match inj.inj_transitions with
      | [] -> ()
      | first :: _ ->
          ignore (Heap.insert st.queue ~key:first.Transition.start (Inject_event inj)))
    injections;
  (* Main loop. *)
  let end_time = ref 0. in
  let truncated = ref false in
  let continue = ref true in
  while !continue do
    match Heap.pop_min st.queue with
    | None -> continue := false
    | Some (t, ev) -> (
        match cfg.t_stop with
        | Some stop when t > stop -> continue := false
        | Some _ | None ->
            (* Injection splices are stimulus, not simulation work; only
               pin events count as processed. *)
            (match ev with
            | Pin_event _ ->
                st.stats.Stats.events_processed <- st.stats.Stats.events_processed + 1
            | Inject_event _ -> ());
            end_time := Float.max !end_time t;
            process_event st ~now:t ev;
            if st.stats.Stats.events_processed >= cfg.max_events then begin
              truncated := true;
              continue := false
            end)
  done;
  {
    circuit = c;
    run_config = cfg;
    waveforms = st.wf;
    stats = st.stats;
    end_time = !end_time;
    truncated = !truncated;
    trace = List.rev st.rev_trace;
  }

(* The most recent traced ramp on [signal] at or before [at].  The
   trace is chronological but annulled ramps also appear in it; accept
   only entries that still correspond to a live segment. *)
let live_entry result ~signal ~at =
  let live_starts =
    List.map
      (fun (s : Waveform.segment) -> s.Waveform.transition.Transition.start)
      (Waveform.segments result.waveforms.(signal))
  in
  List.fold_left
    (fun acc e ->
      if
        e.te_signal = signal
        && e.te_start <= at
        && List.exists (fun t -> Float.abs (t -. e.te_start) < 1e-9) live_starts
      then
        match acc with
        | Some best when best.te_start >= e.te_start -> acc
        | Some _ | None -> Some e
      else acc)
    None result.trace

let explain result ~signal ~at =
  let rec walk signal at acc =
    match live_entry result ~signal ~at with
    | None -> acc
    | Some e -> walk e.te_cause_signal e.te_event_time (e :: acc)
  in
  walk signal at []

let pp_explanation result fmt chain =
  List.iter
    (fun e ->
      Format.fprintf fmt "  %a: %s (pin %d, from %s at %a) -> %s@."
        Halotis_util.Units.pp_time e.te_start
        (Netlist.gate_name result.circuit e.te_gate)
        e.te_pin
        (Netlist.signal_name result.circuit e.te_cause_signal)
        Halotis_util.Units.pp_time e.te_event_time
        (Netlist.signal_name result.circuit e.te_signal))
    chain

let waveform result name =
  match Netlist.find_signal result.circuit name with
  | Some sid -> result.waveforms.(sid)
  | None -> raise Not_found

let waveform_of_id result sid = result.waveforms.(sid)

let output_edges ?vt result =
  let vt = match vt with Some v -> v | None -> Tech.vdd result.run_config.tech /. 2. in
  List.map
    (fun sid ->
      (Netlist.signal_name result.circuit sid, Digital.edges result.waveforms.(sid) ~vt))
    (Netlist.primary_outputs result.circuit)
