module Netlist = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Waveform = Halotis_wave.Waveform
module Transition = Halotis_wave.Transition
module Digital = Halotis_wave.Digital
module Tech = Halotis_tech.Tech
module Delay_model = Halotis_delay.Delay_model
module Heap = Halotis_util.Heap
module Gate_kind = Halotis_logic.Gate_kind
module Value = Halotis_logic.Value
module Stop = Halotis_guard.Stop
module Budget = Halotis_guard.Budget
module Watchdog = Halotis_guard.Watchdog

type config = {
  tech : Tech.t;
  overlay : Halotis_tech.Param_overlay.t;
  delay_kind : Delay_model.kind;
  cancellation : bool;
  t_stop : float option;
  max_events : int;
  trace : bool;
  budget : Budget.t;
  watchdog : Watchdog.config option;
}

let config ?(overlay = Halotis_tech.Param_overlay.empty)
    ?(delay_kind = Delay_model.Ddm) ?(cancellation = true) ?t_stop
    ?(max_events = 10_000_000) ?(trace = false) ?(budget = Budget.unlimited) ?watchdog tech =
  { tech; overlay; delay_kind; cancellation; t_stop; max_events; trace; budget; watchdog }

type trace_entry = {
  te_signal : Netlist.signal_id;
  te_start : float;
  te_gate : Netlist.gate_id;
  te_pin : int;
  te_cause_signal : Netlist.signal_id;
  te_event_time : float;
}

type result = {
  circuit : Netlist.t;
  run_config : config;
  waveforms : Waveform.t array;
  stats : Stats.t;
  end_time : float;
  truncated : bool;
  stopped_by : Stop.t;
  frozen : (Netlist.signal_id * float) list;
  replay_hazard : bool;
  trace : trace_entry list;
}

type injection = {
  inj_signal : Netlist.signal_id;
  inj_transitions : Transition.t list;
}

(* Per-pin deque of scheduled-but-unprocessed events (pool slots),
   oldest at [pq_head].  Because every cancellation at time T is
   followed by at most one fresh crossing at a key >= T, the live
   events of a pin are always sorted by key: cancellation trims a
   suffix (newest first), processing consumes the head — both O(1) per
   event, no allocation, no per-pop heap surgery, and no dead-handle
   leak. *)
type pin_queue = {
  mutable pq_buf : int array;
  mutable pq_head : int;
  mutable pq_tail : int;
}

let pq_push pq slot =
  let cap = Array.length pq.pq_buf in
  if pq.pq_tail = cap then begin
    let live = pq.pq_tail - pq.pq_head in
    if pq.pq_head > 0 && 2 * live <= cap then
      (* plenty of consumed slots at the front: slide instead of grow *)
      Array.blit pq.pq_buf pq.pq_head pq.pq_buf 0 live
    else begin
      let buf = Array.make (max 4 (2 * cap)) (-1) in
      Array.blit pq.pq_buf pq.pq_head buf 0 live;
      pq.pq_buf <- buf
    end;
    pq.pq_head <- 0;
    pq.pq_tail <- live
  end;
  pq.pq_buf.(pq.pq_tail) <- slot;
  pq.pq_tail <- pq.pq_tail + 1

(* The netlist's gate records, fanin arrays and load lists are boxed
   structures scattered across the heap; chasing them per event costs
   more cache misses than the arithmetic it feeds.  The run state holds
   a flattened copy instead: every (gate, pin) pair owns a slot in
   globally indexed arrays ([g_base.(gate) + pin]), and fanout is an
   edge list in CSR form.  All of it is built once at setup.

   Events live in a recycled structure-of-arrays pool and are passed
   around as small-int slots: scheduling writes a few flat-array cells
   and pushes the slot into the queue (whose payloads are bare ints),
   so the steady-state hot path allocates nothing — in particular no
   short-lived records survive a minor collection and get promoted.
   [ev_dead] is the lazy-cancellation tombstone: Fig. 4's "delete
   Ej-1" marks the slot dead in place instead of restructuring the
   heap, and the main loop discards (and recycles) it when it
   surfaces.  A slot sits in the queue exactly once, so recycling at
   pop time is single-free by construction. *)
type state = {
  cfg : config;
  c : Netlist.t;
  mutable rev_trace : trace_entry list;
  wf : Waveform.t array;
  g_kind : Gate_kind.t array; (* gate -> logic function *)
  g_out : int array; (* gate -> output signal *)
  g_base : int array; (* gate -> first pin slot; length ngates + 1 *)
  pin_fanin : int array; (* pin slot -> driving signal *)
  pin_vt : float array; (* pin slot -> switching threshold *)
  pin_level : Bytes.t; (* pin slot -> current logic level, '\000' / '\001' *)
  pending : pin_queue array; (* pin slot -> live scheduled events; [||] = off *)
  fan_off : int array; (* signal -> first fanout edge; length nsignals + 1 *)
  fan_gate : int array; (* fanout edge -> loading gate *)
  fan_pin : int array; (* fanout edge -> pin of that gate *)
  out_target : bool array; (* gate -> target logic of last output transition *)
  queue : Heap.Unboxed.t;
  (* event pool: parallel arrays indexed by slot *)
  mutable ev_gate : int array; (* -1 = injection splice *)
  mutable ev_pin : int array; (* injection index when ev_gate = -1 *)
  mutable ev_tau : float array; (* causing ramp's slope time *)
  mutable ev_key : float array; (* event instant *)
  mutable ev_rising : Bytes.t;
  mutable ev_dead : Bytes.t;
  mutable ev_free : int array; (* stack of recycled slots *)
  mutable ev_free_top : int;
  cache : Delay_model.Cache.t; (* compiled delay coefficients (shareable) *)
  mutable injections : injection array; (* grows when a live session injects *)
  max_tr : int; (* committed-transition cap; max_int when unbudgeted *)
  stats : Stats.t;
  (* guardrails *)
  wd : Watchdog.t option;
  frozen : Bytes.t; (* signal -> '\001' once the watchdog froze it *)
  mutable frozen_on : bool; (* cheap gate on the frozen lookups *)
  mutable rev_frozen : (int * float) list;
  mutable stop : Stop.t; (* Completed until a guardrail trips *)
  (* Replay-hazard bookkeeping: cone re-simulation (see {!start_cone})
     reconstructs a pin's event history from the {e final} baseline
     waveform of its driving signal.  That reconstruction is exact
     except in one case: a degradation delay of tp <= 0 makes a gate
     rewrite its output ramp from a start at or before an event this
     run already popped on a loading pin — the popped event's crossing
     is no longer part of the final waveform, so a replay seeded from
     it would miss the event.  [last_pop.(slot)] is the key of the
     newest event processed on each pin; an append whose cancellation
     front reaches at or below it flags the run. *)
  last_pop : float array; (* pin slot -> key of newest processed event *)
  mutable replay_hazard : bool;
}

(* Heap tie-break ranks: intrinsic to the event's identity, so equal-key
   pop order is reproducible across runs that insert the same events in
   different orders (a cone replay vs the full run).  Pin events rank by
   their globally unique pin slot; injection splices rank below every
   pin slot, in registration order. *)
let splice_rank idx = idx - max_int

let grow_pool st =
  let cap = Array.length st.ev_gate in
  let ncap = max 64 (2 * cap) in
  let gi = Array.make ncap (-1) in
  Array.blit st.ev_gate 0 gi 0 cap;
  st.ev_gate <- gi;
  let pi = Array.make ncap (-1) in
  Array.blit st.ev_pin 0 pi 0 cap;
  st.ev_pin <- pi;
  let ta = Array.make ncap 0. in
  Array.blit st.ev_tau 0 ta 0 cap;
  st.ev_tau <- ta;
  let ke = Array.make ncap 0. in
  Array.blit st.ev_key 0 ke 0 cap;
  st.ev_key <- ke;
  let ri = Bytes.make ncap '\000' in
  Bytes.blit st.ev_rising 0 ri 0 cap;
  st.ev_rising <- ri;
  let de = Bytes.make ncap '\000' in
  Bytes.blit st.ev_dead 0 de 0 cap;
  st.ev_dead <- de;
  (* the free stack is empty when the pool grows; refill with the slots
     just minted *)
  let free = Array.make ncap 0 in
  for i = 0 to ncap - cap - 1 do
    free.(i) <- cap + i
  done;
  st.ev_free <- free;
  st.ev_free_top <- ncap - cap

let alloc_event st =
  if st.ev_free_top = 0 then grow_pool st;
  st.ev_free_top <- st.ev_free_top - 1;
  st.ev_free.(st.ev_free_top)

let free_event st slot =
  st.ev_free.(st.ev_free_top) <- slot;
  st.ev_free_top <- st.ev_free_top + 1

let dc_levels c drives_tbl =
  let input_level sid =
    match Hashtbl.find_opt drives_tbl sid with
    | Some (d : Drive.t) -> d.Drive.initial
    | None -> false
  in
  Dc.levels c ~input_level

(* [Gate_kind.eval_bool] over the flat level bytes, without building a
   per-call input array.  Same boolean function, same arity handling. *)
let rec all_set lv base n i =
  i >= n || (Bytes.get lv (base + i) <> '\000' && all_set lv base n (i + 1))

let rec any_set lv base n i =
  i < n && (Bytes.get lv (base + i) <> '\000' || any_set lv base n (i + 1))

let rec parity_set lv base n i acc =
  if i >= n then acc else parity_set lv base n (i + 1) (acc <> (Bytes.get lv (base + i) <> '\000'))

let eval_gate kind lv base n =
  let v i = Bytes.get lv (base + i) <> '\000' in
  match (kind : Gate_kind.t) with
  | Buf -> v 0
  | Inv -> not (v 0)
  | And _ -> all_set lv base n 0
  | Nand _ -> not (all_set lv base n 0)
  | Or _ -> any_set lv base n 0
  | Nor _ -> not (any_set lv base n 0)
  | Xor _ -> parity_set lv base n 0 false
  | Xnor _ -> not (parity_set lv base n 0 false)
  | Aoi21 -> not ((v 0 && v 1) || v 2)
  | Oai21 -> not ((v 0 || v 1) && v 2)
  | Mux2 -> if v 2 then v 1 else v 0

let schedule st ~key ~gate ~pin ~slot ~rising ~tau_in =
  let ev = alloc_event st in
  st.ev_gate.(ev) <- gate;
  st.ev_pin.(ev) <- pin;
  st.ev_tau.(ev) <- tau_in;
  st.ev_key.(ev) <- key;
  Bytes.set st.ev_rising ev (if rising then '\001' else '\000');
  Bytes.set st.ev_dead ev '\000';
  ignore (Heap.Unboxed.insert st.queue ~key ~rank:slot ev);
  if st.cfg.cancellation then pq_push st.pending.(slot) ev;
  st.stats.Stats.events_scheduled <- st.stats.Stats.events_scheduled + 1

(* Fig. 4's "delete Ej-1": drop every pending event on this input whose
   instant falls at or after the start of the newly appended ramp —
   the waveform from that point on is governed by the new ramp, so
   those crossings can no longer happen.  The invalidated events form
   a suffix of the pin's (key-sorted) deque; each is tombstoned in
   place and reclaimed when the queue reaches it. *)
let cancel_invalidated st ~slot ~from_time =
  (* The newly appended ramp rewrites the waveform from [from_time] on.
     If this pin already processed an event at or after that instant
     (possible only when degradation drives tp <= 0), the final
     waveform no longer records that event — a cone replay seeded from
     final waveforms would diverge here, so flag the run. *)
  if from_time <= st.last_pop.(slot) then st.replay_hazard <- true;
  let pq = st.pending.(slot) in
  let buf = pq.pq_buf in
  let i = ref (pq.pq_tail - 1) in
  while !i >= pq.pq_head && st.ev_key.(buf.(!i)) >= from_time do
    Bytes.set st.ev_dead buf.(!i) '\001';
    st.stats.Stats.events_filtered <- st.stats.Stats.events_filtered + 1;
    decr i
  done;
  pq.pq_tail <- !i + 1

(* Propagate a freshly appended transition on [sid] to its fanout:
   cancel invalidated pending events, then schedule the new crossing. *)
let fan_out st sid (outcome : Waveform.append_outcome) (tr : Transition.t) =
  let rising =
    match tr.Transition.polarity with Transition.Rising -> true | Transition.Falling -> false
  in
  for e = st.fan_off.(sid) to st.fan_off.(sid + 1) - 1 do
    let lg = st.fan_gate.(e) in
    let lpin = st.fan_pin.(e) in
    let slot = st.g_base.(lg) + lpin in
    if st.cfg.cancellation then
      cancel_invalidated st ~slot ~from_time:tr.Transition.start;
    if outcome.Waveform.accepted then begin
      let crossing = Waveform.last_crossing st.wf.(sid) ~vt:st.pin_vt.(slot) in
      if not (Float.is_nan crossing) then
        schedule st ~key:crossing ~gate:lg ~pin:lpin ~slot ~rising
          ~tau_in:tr.Transition.slope_time
    end
  done

(* A watchdog trip: in [Halt] mode flag the whole run for stopping; in
   [Degrade] mode freeze the offending feedback loop so its events die
   out while the rest of the circuit keeps simulating. *)
let watchdog_trip st wd ~signal ~at =
  let fs = Watchdog.freeze_set st.c ~signal in
  match Watchdog.mode wd with
  | Watchdog.Halt -> st.stop <- Stop.Oscillation (Watchdog.offender_names st.c fs)
  | Watchdog.Degrade ->
      List.iter
        (fun s ->
          if Bytes.get st.frozen s = '\000' then begin
            Bytes.set st.frozen s '\001';
            st.rev_frozen <- (s, at) :: st.rev_frozen
          end)
        fs;
      st.frozen_on <- true

let process_pin_event st ~now ~gate ~pin ~rising ~tau_in =
  let base = st.g_base.(gate) in
  Bytes.set st.pin_level (base + pin) (if rising then '\001' else '\000');
  let new_out = eval_gate st.g_kind.(gate) st.pin_level base (st.g_base.(gate + 1) - base) in
  if new_out = st.out_target.(gate) then
    st.stats.Stats.noop_evaluations <- st.stats.Stats.noop_evaluations + 1
  else if st.frozen_on && Bytes.get st.frozen st.g_out.(gate) = '\001' then
    (* frozen output: the gate evaluated but emits nothing *)
    st.stats.Stats.noop_evaluations <- st.stats.Stats.noop_evaluations + 1
  else begin
    let out_sid = st.g_out.(gate) in
    Delay_model.Cache.eval st.cache gate st.cfg.delay_kind ~rising_out:new_out ~pin
      ~tau_in ~t_event:now
      ~last_output_start:(Waveform.last_start_or_nan st.wf.(out_sid));
    let tr =
      Transition.make
        ~start:(now +. Delay_model.Cache.tp st.cache)
        ~slope_time:(Delay_model.Cache.tau_out st.cache)
        ~polarity:(if new_out then Transition.Rising else Transition.Falling)
    in
    st.out_target.(gate) <- new_out;
    let outcome = Waveform.append st.wf.(out_sid) tr in
    st.stats.Stats.transitions_annulled <-
      st.stats.Stats.transitions_annulled + List.length outcome.Waveform.dropped;
    if outcome.Waveform.accepted then begin
      st.stats.Stats.transitions_emitted <- st.stats.Stats.transitions_emitted + 1;
      (match st.wd with
      | Some wd ->
          if Watchdog.record wd ~signal:out_sid ~now:tr.Transition.start then
            watchdog_trip st wd ~signal:out_sid ~at:tr.Transition.start
      | None -> ());
      if st.cfg.trace then
        st.rev_trace <-
          {
            te_signal = out_sid;
            te_start = tr.Transition.start;
            te_gate = gate;
            te_pin = pin;
            te_cause_signal = st.pin_fanin.(base + pin);
            te_event_time = now;
          }
          :: st.rev_trace
    end;
    fan_out st out_sid outcome tr
  end

(* Splice an injection's transitions into the victim waveform exactly
   as a driving gate would append its own ramps: degradation,
   truncation and event cancellation all apply.  The splice itself is
   external stimulus, so — like primary-input drives — it does not
   count towards [transitions_emitted]. *)
let process_injection st inj =
  List.iter
    (fun (tr : Transition.t) ->
      let outcome = Waveform.append st.wf.(inj.inj_signal) tr in
      fan_out st inj.inj_signal outcome tr)
    inj.inj_transitions

(* Register an injection and queue its splice as a first-class event so
   it happens at its instant, after any earlier native activity on the
   victim has been appended.  Also the live-session [inject] path: the
   injection array grows, never shrinks, so pool slots referencing
   earlier indices stay valid. *)
let add_injection st inj =
  if inj.inj_signal < 0 || inj.inj_signal >= Array.length st.wf then
    invalid_arg "Iddm.run: injection on unknown signal";
  match inj.inj_transitions with
  | [] -> ()
  | first :: _ ->
      let idx = Array.length st.injections in
      st.injections <- Array.append st.injections [| inj |];
      let ev = alloc_event st in
      st.ev_gate.(ev) <- -1;
      st.ev_pin.(ev) <- idx;
      st.ev_tau.(ev) <- 0.;
      st.ev_key.(ev) <- first.Transition.start;
      Bytes.set st.ev_rising ev '\000';
      Bytes.set st.ev_dead ev '\000';
      ignore
        (Heap.Unboxed.insert st.queue ~key:first.Transition.start
           ~rank:(splice_rank idx) ev)

(* A paused run: the state plus everything the main loop kept in locals
   when [run] was monolithic.  [s_done] means no queued event can ever
   be processed again (drained, past the horizon, or a guardrail/
   watchdog stop) — fresh stimulus may clear it, a non-[Completed] stop
   never does. *)
type session = {
  st : state;
  monitor : Budget.Monitor.t;
  s_horizon : float;
  s_horizon_stop : Stop.t;
  mutable s_end_time : float;
  mutable s_done : bool;
}

(* The per-run state shared by a whole-circuit [start] and a
   cone-restricted [start_cone]: everything except the waveform/level
   seeding policy, which is the caller's. *)
let make_state cfg c (cp : Compiled.t) ~wf ~pin_level ~out_target =
  let nsignals = cp.Compiled.nsignals and npins = cp.Compiled.npins in
  {
    cfg;
    c;
    rev_trace = [];
    wf;
    g_kind = cp.Compiled.g_kind;
    g_out = cp.Compiled.g_out;
    g_base = cp.Compiled.g_base;
    pin_fanin = cp.Compiled.pin_fanin;
    pin_vt = cp.Compiled.pin_vt;
    pin_level;
    pending =
      (if cfg.cancellation then
         Array.init npins (fun _ -> { pq_buf = [||]; pq_head = 0; pq_tail = 0 })
       else [||]);
    fan_off = cp.Compiled.fan_off;
    fan_gate = cp.Compiled.fan_gate;
    fan_pin = cp.Compiled.fan_pin;
    out_target;
    queue = Heap.Unboxed.create ~capacity:64 ();
    ev_gate = [||];
    ev_pin = [||];
    ev_tau = [||];
    ev_key = [||];
    ev_rising = Bytes.empty;
    ev_dead = Bytes.empty;
    ev_free = [||];
    ev_free_top = 0;
    cache = cp.Compiled.cache;
    injections = [||];
    max_tr =
      (match cfg.budget.Budget.max_transitions with Some n -> n | None -> max_int);
    stats = Stats.create ();
    wd = Option.map (fun w -> Watchdog.create w ~nsignals) cfg.watchdog;
    frozen = Bytes.make nsignals '\000';
    frozen_on = false;
    rev_frozen = [];
    stop = Stop.Completed;
    last_pop = Array.make (max 1 npins) neg_infinity;
    replay_hazard = false;
  }

(* The simulated-time horizon folds [t_stop] and the budget's
   [max_sim_time] into one comparison (recording which bound applied);
   the legacy [max_events] safety net folds into the budget monitor,
   which is exact, so both paths process the same events the old
   per-event counter check did. *)
let make_session st =
  let cfg = st.cfg in
  let horizon, horizon_stop =
    match (cfg.t_stop, cfg.budget.Budget.max_sim_time) with
    | None, None -> (infinity, Stop.Completed)
    | Some ts, None -> (ts, Stop.Completed)
    | None, Some mt -> (mt, Stop.Sim_time mt)
    | Some ts, Some mt -> if mt < ts then (mt, Stop.Sim_time mt) else (ts, Stop.Completed)
  in
  let monitor =
    let b = cfg.budget in
    let max_events =
      match b.Budget.max_events with
      | Some n -> Some (min n cfg.max_events)
      | None -> Some cfg.max_events
    in
    Budget.Monitor.create { b with Budget.max_events }
  in
  { st; monitor; s_horizon = horizon; s_horizon_stop = horizon_stop;
    s_end_time = 0.; s_done = false }

let start ?(injections = []) ?compiled cfg c ~drives =
  let drives_tbl = Hashtbl.create 16 in
  List.iter
    (fun (sid, d) ->
      Drive.check d;
      if not (Netlist.signal c sid).Netlist.is_primary_input then
        invalid_arg
          (Printf.sprintf "Iddm.run: drive on non-input signal %s" (Netlist.signal_name c sid));
      Hashtbl.replace drives_tbl sid d)
    drives;
  let levels = dc_levels c drives_tbl in
  let vdd = Tech.vdd cfg.tech in
  (* Everything that depends only on (netlist, tech) comes precompiled
     or is compiled here; per-run state is built fresh below. *)
  let cp =
    match compiled with
    | Some cp ->
        if cp.Compiled.circuit != c then
          invalid_arg "Iddm.start: compiled structure is for a different netlist";
        if cp.Compiled.tech != cfg.tech then
          invalid_arg "Iddm.start: compiled structure is for a different technology";
        if not (Halotis_tech.Param_overlay.equal cp.Compiled.overlay cfg.overlay)
        then
          invalid_arg "Iddm.start: compiled structure is for a different overlay";
        cp
    | None -> Compiled.compile ~overlay:cfg.overlay cfg.tech c
  in
  let nsignals = cp.Compiled.nsignals and npins = cp.Compiled.npins in
  let ngates = cp.Compiled.ngates in
  let wf =
    Array.init nsignals (fun sid ->
        Waveform.create ~initial:(if levels.(sid) then vdd else 0.) ~vdd ())
  in
  let pin_level = Bytes.make (max 1 npins) '\000' in
  for p = 0 to npins - 1 do
    Bytes.set pin_level p (if levels.(cp.Compiled.pin_fanin.(p)) then '\001' else '\000')
  done;
  let out_target =
    Array.init ngates (fun gid -> levels.(cp.Compiled.g_out.(gid)))
  in
  let st = make_state cfg c cp ~wf ~pin_level ~out_target in
  (* Seed: apply the primary-input drives, then schedule the crossings
     the finished input waveforms actually contain. *)
  Hashtbl.iter
    (fun sid (d : Drive.t) ->
      List.iter (fun tr -> ignore (Waveform.append st.wf.(sid) tr)) d.Drive.transitions)
    drives_tbl;
  Hashtbl.iter
    (fun sid (_ : Drive.t) ->
      for e = st.fan_off.(sid) to st.fan_off.(sid + 1) - 1 do
        let lg = st.fan_gate.(e) in
        let lpin = st.fan_pin.(e) in
        let slot = st.g_base.(lg) + lpin in
        List.iter
          (fun (crossing, (tr : Transition.t)) ->
            schedule st ~key:crossing ~gate:lg ~pin:lpin ~slot
              ~rising:
                (match tr.Transition.polarity with
                | Transition.Rising -> true
                | Transition.Falling -> false)
              ~tau_in:tr.Transition.slope_time)
          (Waveform.crossings_with_transitions st.wf.(sid) ~vt:st.pin_vt.(slot))
      done)
    drives_tbl;
  List.iter (fun inj -> add_injection st inj) injections;
  make_session st

(* Cone-restricted re-simulation: fresh waveforms for the cone's member
   signals, the finished [baseline] waveforms aliased (read-only)
   everywhere else.  Boundary feeds replay the baseline crossings of
   their driving signals verbatim — exactly the events the full run
   processed on those pins, because a processed pin event and a final
   waveform crossing are the same thing whenever the baseline was free
   of replay hazards (the caller's obligation, see {!Sim.Cone}), and
   intrinsic heap ranks make the replay resolve equal-key ties exactly
   as the full run did.  From there the cone evolves under the same
   kernel as a full run; with the injection spliced in, the delta
   against the baseline cone run equals the full-run delta, which is
   all campaign classification consumes. *)
let start_cone ?(injections = []) ~compiled:cp ~(cone : Compiled.cone) ~(baseline : result)
    ~levels cfg c =
  if cp.Compiled.circuit != c then
    invalid_arg "Iddm.start_cone: compiled structure is for a different netlist";
  if cp.Compiled.tech != cfg.tech then
    invalid_arg "Iddm.start_cone: compiled structure is for a different technology";
  if not (Halotis_tech.Param_overlay.equal cp.Compiled.overlay cfg.overlay) then
    invalid_arg "Iddm.start_cone: compiled structure is for a different overlay";
  if not cfg.cancellation then
    (* without Fig. 4 cancellation, processed events and final-waveform
       crossings no longer coincide, so the seeding below is unsound *)
    invalid_arg "Iddm.start_cone: requires event cancellation";
  let nsignals = cp.Compiled.nsignals and npins = cp.Compiled.npins in
  let ngates = cp.Compiled.ngates in
  if Array.length baseline.waveforms <> nsignals then
    invalid_arg "Iddm.start_cone: baseline is for a different netlist";
  if Array.length levels <> nsignals then
    invalid_arg "Iddm.start_cone: DC level array is for a different netlist";
  let vdd = Tech.vdd cfg.tech in
  let member = cone.Compiled.cone_signal_member in
  let wf =
    Array.init nsignals (fun sid ->
        if Bytes.get member sid = '\001' then
          Waveform.create ~initial:(if levels.(sid) then vdd else 0.) ~vdd ()
        else baseline.waveforms.(sid))
  in
  let pin_level = Bytes.make (max 1 npins) '\000' in
  for p = 0 to npins - 1 do
    Bytes.set pin_level p (if levels.(cp.Compiled.pin_fanin.(p)) then '\001' else '\000')
  done;
  let out_target = Array.init ngates (fun gid -> levels.(cp.Compiled.g_out.(gid))) in
  let st = make_state cfg c cp ~wf ~pin_level ~out_target in
  (* Seed: replay each boundary feed's final baseline waveform into the
     cone, the same way [start] replays primary-input drives. *)
  Array.iteri
    (fun k lg ->
      let lpin = cone.Compiled.cone_bnd_pin.(k) in
      let slot = st.g_base.(lg) + lpin in
      let sid = st.pin_fanin.(slot) in
      List.iter
        (fun (crossing, (tr : Transition.t)) ->
          schedule st ~key:crossing ~gate:lg ~pin:lpin ~slot
            ~rising:
              (match tr.Transition.polarity with
              | Transition.Rising -> true
              | Transition.Falling -> false)
            ~tau_in:tr.Transition.slope_time)
        (Waveform.crossings_with_transitions st.wf.(sid) ~vt:st.pin_vt.(slot)))
    cone.Compiled.cone_bnd_gate;
  List.iter
    (fun inj ->
      if inj.inj_signal < 0 || inj.inj_signal >= nsignals then
        invalid_arg "Iddm.start_cone: injection on unknown signal";
      (* an injection outside the cone would append to an aliased
         baseline waveform — a correctness bug, not a fallback case *)
      if Bytes.get member inj.inj_signal <> '\001' then
        invalid_arg "Iddm.start_cone: injection outside the cone";
      add_injection st inj)
    injections;
  make_session st

let snapshot sess =
  let st = sess.st in
  st.stats.Stats.stopped_by <- st.stop;
  {
    circuit = st.c;
    run_config = st.cfg;
    waveforms = st.wf;
    stats = st.stats;
    end_time = sess.s_end_time;
    truncated = not (Stop.completed st.stop);
    stopped_by = st.stop;
    frozen = List.rev st.rev_frozen;
    replay_hazard = st.replay_hazard;
    trace = List.rev st.rev_trace;
  }

(* The main loop, paused at [upto].  Pausing is free: the loop always
   inspects the heap minimum {e before} popping, so stopping short of
   the horizon leaves the queue exactly as a one-shot run would have it
   at that point — resuming pops the same events in the same order, and
   the stepped run stays bit-identical to the one-shot run (the
   equivalence suite pins this down). *)
let advance sess ~upto =
  let st = sess.st in
  let continue = ref (not sess.s_done) in
  while !continue do
    if Heap.Unboxed.is_empty st.queue then begin
      sess.s_done <- true;
      continue := false
    end
    else begin
      let t = Heap.Unboxed.min_key st.queue in
      if t > sess.s_horizon then begin
        st.stop <- sess.s_horizon_stop;
        sess.s_done <- true;
        continue := false
      end
      else if t > upto then continue := false
      else begin
        let ev = Heap.Unboxed.pop st.queue in
        if Bytes.get st.ev_dead ev = '\001' then begin
          (* a cancelled (tombstoned) event surfacing: recycle it *)
          st.stats.Stats.stale_skipped <- st.stats.Stats.stale_skipped + 1;
          free_event st ev
        end
        else begin
          let gate = st.ev_gate.(ev) in
          let pin = st.ev_pin.(ev) in
          (* Injection splices are stimulus, not simulation work; only
             pin events count as processed (and against the budget). *)
          if gate < 0 then begin
            sess.s_end_time <- Float.max sess.s_end_time t;
            free_event st ev;
            process_injection st st.injections.(pin)
          end
          else if st.stats.Stats.transitions_emitted >= st.max_tr then begin
            (* the waveform stores are full: the memory cap refuses
               further gate activity *)
            free_event st ev;
            st.stop <- Stop.Transition_cap st.max_tr;
            sess.s_done <- true;
            continue := false
          end
          else begin
            match Budget.Monitor.hit sess.monitor ~queue:(Heap.Unboxed.length st.queue) with
            | Some reason ->
                free_event st ev;
                st.stop <- reason;
                sess.s_done <- true;
                continue := false
            | None ->
                sess.s_end_time <- Float.max sess.s_end_time t;
                st.stats.Stats.events_processed <- st.stats.Stats.events_processed + 1;
                st.last_pop.(st.g_base.(gate) + pin) <- t;
                let rising = Bytes.get st.ev_rising ev = '\001' in
                let tau_in = st.ev_tau.(ev) in
                if st.cfg.cancellation then begin
                  (* the oldest live entry of its pin deque is this event *)
                  let pq = st.pending.(st.g_base.(gate) + pin) in
                  if pq.pq_head < pq.pq_tail && pq.pq_buf.(pq.pq_head) = ev then
                    pq.pq_head <- pq.pq_head + 1
                end;
                free_event st ev;
                process_pin_event st ~now:t ~gate ~pin ~rising ~tau_in;
                (* a Halt-mode watchdog trip inside process_pin_event *)
                if not (Stop.completed st.stop) then begin
                  sess.s_done <- true;
                  continue := false
                end
          end
        end
      end
    end
  done;
  snapshot sess

let run ?injections ?compiled cfg c ~drives =
  advance (start ?injections ?compiled cfg c ~drives) ~upto:infinity

(* Fresh stimulus can wake a quiesced session; a guardrail stop is
   final. *)
let revive sess =
  if
    sess.s_done
    && Stop.completed sess.st.stop
    && not (Heap.Unboxed.is_empty sess.st.queue)
  then sess.s_done <- false

let session_set_input sess sid transitions =
  let st = sess.st in
  if sid < 0 || sid >= Array.length st.wf then
    invalid_arg "Iddm.session_set_input: unknown signal";
  if not (Netlist.signal st.c sid).Netlist.is_primary_input then
    invalid_arg
      (Printf.sprintf "Iddm.session_set_input: drive on non-input signal %s"
         (Netlist.signal_name st.c sid));
  List.iter
    (fun (tr : Transition.t) ->
      let outcome = Waveform.append st.wf.(sid) tr in
      fan_out st sid outcome tr)
    transitions;
  revive sess

let session_inject sess inj =
  add_injection sess.st inj;
  revive sess

let session_time sess = sess.s_end_time
let session_finished sess = sess.s_done
let session_result sess = snapshot sess

(* The most recent traced ramp on [signal] at or before [at].  The
   trace is chronological but annulled ramps also appear in it; accept
   only entries that still correspond to a live segment.  The live
   starts are strictly increasing, so one sorted-array binary search
   per trace entry replaces the former O(trace x segments) scan. *)
let live_entry result ~signal ~at =
  let wf = result.waveforms.(signal) in
  let n = Waveform.segment_count wf in
  let starts =
    Array.init n (fun i ->
        (Waveform.get_segment wf i).Waveform.transition.Transition.start)
  in
  let is_live t =
    (* index of the first start > t; any start within tolerance of [t]
       is adjacent to that insertion point *)
    let lo = ref 0 and hi = ref n in
    while !hi > !lo do
      let mid = (!lo + !hi) / 2 in
      if starts.(mid) <= t then lo := mid + 1 else hi := mid
    done;
    let near i = i >= 0 && i < n && Float.abs (starts.(i) -. t) < 1e-9 in
    near (!lo - 1) || near !lo
  in
  List.fold_left
    (fun acc e ->
      if e.te_signal = signal && e.te_start <= at && is_live e.te_start then
        match acc with
        | Some best when best.te_start >= e.te_start -> acc
        | Some _ | None -> Some e
      else acc)
    None result.trace

let explain result ~signal ~at =
  let rec walk signal at acc =
    match live_entry result ~signal ~at with
    | None -> acc
    | Some e -> walk e.te_cause_signal e.te_event_time (e :: acc)
  in
  walk signal at []

let pp_explanation result fmt chain =
  List.iter
    (fun e ->
      Format.fprintf fmt "  %a: %s (pin %d, from %s at %a) -> %s@."
        Halotis_util.Units.pp_time e.te_start
        (Netlist.gate_name result.circuit e.te_gate)
        e.te_pin
        (Netlist.signal_name result.circuit e.te_cause_signal)
        Halotis_util.Units.pp_time e.te_event_time
        (Netlist.signal_name result.circuit e.te_signal))
    chain

let waveform result name =
  match Netlist.find_signal result.circuit name with
  | Some sid -> result.waveforms.(sid)
  | None -> raise Not_found

let waveform_of_id result sid = result.waveforms.(sid)

let output_edges ?vt result =
  let vt = match vt with Some v -> v | None -> Tech.vdd result.run_config.tech /. 2. in
  List.map
    (fun sid ->
      (Netlist.signal_name result.circuit sid, Digital.edges result.waveforms.(sid) ~vt))
    (Netlist.primary_outputs result.circuit)
