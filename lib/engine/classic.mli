(** The conventional event-driven simulator HALOTIS is compared
    against: boolean values, one implicit switching threshold, and the
    classical inertial-delay rule — a pulse narrower than the gate
    delay is rejected {e at the driving gate's output}, so either every
    fanout sees it or none does.  This is the model whose "wrong
    results" the paper's Fig. 1(c) demonstrates.

    Scheduling semantics per gate output (textbook VHDL-style inertial
    drivers): a new transaction preempts pending transactions scheduled
    at or after it; a transaction landing closer than the gate's own
    delay to the previous pending one annihilates with it (the pulse is
    filtered and the output never moves). *)

type mode =
  | Inertial  (** pulses narrower than the gate delay annihilate (default) *)
  | Transport  (** pure delay lines: every pulse propagates *)

type config = {
  tech : Halotis_tech.Tech.t;
  overlay : Halotis_tech.Param_overlay.t;
      (** parameter corner the gate delays are priced at; empty (the
          default) is bit-identical to pricing straight from [tech] *)
  t_stop : Halotis_util.Units.time option;
  max_events : int;
  mode : mode;
  budget : Halotis_guard.Budget.t;
      (** resource guardrails (see {!Iddm.config}); the classic engine
          is the one that genuinely needs them — a ring oscillator
          never quiesces here *)
  watchdog : Halotis_guard.Watchdog.config option;
}

val config :
  ?overlay:Halotis_tech.Param_overlay.t ->
  ?t_stop:Halotis_util.Units.time ->
  ?max_events:int ->
  ?mode:mode ->
  ?budget:Halotis_guard.Budget.t ->
  ?watchdog:Halotis_guard.Watchdog.config ->
  Halotis_tech.Tech.t ->
  config

type result = {
  circuit : Halotis_netlist.Netlist.t;
  edges : Halotis_wave.Digital.edge list array;
      (** committed value changes per signal, time-ordered *)
  initial_levels : bool array;
  final_levels : bool array;
  stats : Stats.t;
  end_time : Halotis_util.Units.time;
  truncated : bool;
      (** true when a guardrail stopped the run; the edges are a valid
          prefix of the full run *)
  stopped_by : Halotis_guard.Stop.t;
      (** the precise stop reason ([Completed] iff [not truncated]) *)
  frozen : (Halotis_netlist.Netlist.signal_id * Halotis_util.Units.time) list;
      (** signals a [Degrade]-mode watchdog froze, with the freeze
          instant — their values are meaningless (X) from that time on *)
}

val run :
  ?injections:(Halotis_netlist.Netlist.signal_id * (Halotis_util.Units.time * bool) list) list ->
  config ->
  Halotis_netlist.Netlist.t ->
  drives:(Halotis_netlist.Netlist.signal_id * Drive.t) list ->
  result
(** Input ramps are abstracted to instantaneous switches at their 50 %
    point ([start + slope_time / 2]).

    [injections] are forced [(time, value)] toggles on arbitrary
    signals — the boolean abstraction of a SET strike.  Fanout gates
    apply the classical inertial filter to the resulting pulse, which
    is precisely the model {!Halotis_fault} campaigns compare against
    the IDDM treatment.
    @raise Invalid_argument when an injection names an unknown
    signal. *)

val edges_of_name : result -> string -> Halotis_wave.Digital.edge list
(** @raise Not_found for unknown names. *)
