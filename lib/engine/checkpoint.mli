(** Waveform-prefix checkpoints for budget-stopped runs.

    A [simulate] run that trips a guardrail (event budget, wall clock,
    queue cap...) used to leave nothing behind but an exit code and a
    warning; re-running with a bigger budget repeats all the work.  A
    checkpoint makes the stopped run's state durable: every signal's
    committed waveform prefix — the exact piecewise-linear record the
    IDDM engine built up to the stop instant — serialized losslessly
    ([%h] floats), plus the stop reason and end time, so a later
    invocation (or an external tool) can inspect precisely where and
    why the run stopped.

    {b Scope.}  This is deliberately the {e waveform} prefix, not the
    full engine state: the pending event queue, per-gate degradation
    clocks and watchdog counters are not serialized, so a checkpoint
    cannot yet be re-animated into a running session mid-flight —
    resuming re-seeds from the original stimulus and replays (full
    event-queue resume is future work, tracked in ROADMAP.md).  What a
    checkpoint {e does} guarantee: a lossless, deterministic record of
    everything the stopped run committed, byte-identical across re-runs
    of the same spec.

    Only the waveform engines ([ddm]/[cdm]) carry enough state to
    checkpoint; classic runs raise. *)

type signal_state = {
  ck_signal : int;  (** signal id in the run's circuit *)
  ck_initial : float;  (** waveform voltage before the first segment *)
  ck_segments : Halotis_wave.Waveform.segment list;  (** oldest first *)
}

type t = {
  ck_circuit : string;
  ck_engine : string;  (** {!Sim.engine_to_string} token *)
  ck_end_time : float;  (** last processed event's instant *)
  ck_stop : string;  (** {!Halotis_guard.Stop.to_string} token *)
  ck_vdd : float;
  ck_signals : signal_state list;  (** every signal, id-ascending *)
}

val of_result : Sim.result -> t
(** Captures a finished (or stopped) run's waveform state.
    @raise Invalid_argument for a classic run (no waveforms exist). *)

val write : string -> t -> unit
(** Serializes to a line-oriented text file ([%h] floats, lossless);
    atomic enough for its purpose — written whole, then closed. *)

val load : string -> t
(** Parses a checkpoint file back; {!write} then {!load} roundtrips
    exactly (bitwise-equal floats).
    @raise Halotis_guard.Diag.Fail ([checkpoint-parse]) on a missing or
    malformed file. *)

val to_string : t -> string
(** The exact bytes {!write} produces. *)
