module Stop = Halotis_guard.Stop
module Json = Halotis_util.Json

type t = {
  mutable events_scheduled : int;
  mutable events_processed : int;
  mutable events_filtered : int;
  mutable stale_skipped : int;
  mutable transitions_emitted : int;
  mutable transitions_annulled : int;
  mutable noop_evaluations : int;
  mutable stopped_by : Stop.t;
}

let create () =
  {
    events_scheduled = 0;
    events_processed = 0;
    events_filtered = 0;
    stale_skipped = 0;
    transitions_emitted = 0;
    transitions_annulled = 0;
    noop_evaluations = 0;
    stopped_by = Stop.Completed;
  }

let copy t =
  {
    events_scheduled = t.events_scheduled;
    events_processed = t.events_processed;
    events_filtered = t.events_filtered;
    stale_skipped = t.stale_skipped;
    transitions_emitted = t.transitions_emitted;
    transitions_annulled = t.transitions_annulled;
    noop_evaluations = t.noop_evaluations;
    stopped_by = t.stopped_by;
  }

let merge into t =
  into.events_scheduled <- into.events_scheduled + t.events_scheduled;
  into.events_processed <- into.events_processed + t.events_processed;
  into.events_filtered <- into.events_filtered + t.events_filtered;
  into.stale_skipped <- into.stale_skipped + t.stale_skipped;
  into.transitions_emitted <- into.transitions_emitted + t.transitions_emitted;
  into.transitions_annulled <- into.transitions_annulled + t.transitions_annulled;
  into.noop_evaluations <- into.noop_evaluations + t.noop_evaluations;
  if Stop.completed into.stopped_by then into.stopped_by <- t.stopped_by

let diff a b =
  {
    events_scheduled = a.events_scheduled - b.events_scheduled;
    events_processed = a.events_processed - b.events_processed;
    events_filtered = a.events_filtered - b.events_filtered;
    stale_skipped = a.stale_skipped - b.stale_skipped;
    transitions_emitted = a.transitions_emitted - b.transitions_emitted;
    transitions_annulled = a.transitions_annulled - b.transitions_annulled;
    noop_evaluations = a.noop_evaluations - b.noop_evaluations;
    stopped_by = a.stopped_by;
  }

let total t =
  t.events_scheduled + t.events_processed + t.events_filtered + t.transitions_emitted
  + t.transitions_annulled + t.noop_evaluations

let pp fmt t =
  Format.fprintf fmt
    "events: %d scheduled, %d processed, %d filtered, %d stale-skipped; transitions: %d emitted, %d annulled; %d no-op evals"
    t.events_scheduled t.events_processed t.events_filtered t.stale_skipped
    t.transitions_emitted t.transitions_annulled t.noop_evaluations;
  if not (Stop.completed t.stopped_by) then
    Format.fprintf fmt "; stopped: %s" (Stop.to_string t.stopped_by)

let to_json t =
  let fields =
    [
      ("events_scheduled", Json.Num (float_of_int t.events_scheduled));
      ("events_processed", Json.Num (float_of_int t.events_processed));
      ("events_filtered", Json.Num (float_of_int t.events_filtered));
      ("stale_skipped", Json.Num (float_of_int t.stale_skipped));
      ("transitions_emitted", Json.Num (float_of_int t.transitions_emitted));
      ("transitions_annulled", Json.Num (float_of_int t.transitions_annulled));
      ("noop_evaluations", Json.Num (float_of_int t.noop_evaluations));
    ]
  in
  if Stop.completed t.stopped_by then Json.Obj fields
  else Json.Obj (fields @ [ ("stopped_by", Stop.to_json t.stopped_by) ])
