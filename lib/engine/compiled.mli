(** A circuit compiled for the event kernel, independent of any one
    run.

    {!Iddm.run} used to rebuild these structures at every invocation:
    the CSR-flattened netlist (per-(gate, pin) slot arrays and the
    fanout edge list), the per-pin switching thresholds, and the
    {!Halotis_delay.Delay_model.Cache} delay coefficients.  All of them
    depend only on the netlist and the technology — never on drives,
    injections or budgets — so a long-lived service compiles once and
    starts many sessions against the same {!t} (the compiled-circuit
    cache of [lib/serve] stores exactly these).

    Sharing discipline: every array here is read-only to the engines
    (per-run state — waveforms, pin levels, pending queues, event pools
    — lives in the run itself).  The delay cache carries a small
    scratch buffer written by each [eval] and read back immediately, so
    a {!t} may be shared by any number of {e interleaved} sessions in
    one thread but must not be used from several threads at once. *)

type t = {
  circuit : Halotis_netlist.Netlist.t;
  tech : Halotis_tech.Tech.t;
  nsignals : int;
  ngates : int;
  npins : int;  (** total (gate, pin) slots; [g_base.(ngates)] *)
  g_kind : Halotis_logic.Gate_kind.t array;  (** gate -> logic function *)
  g_out : int array;  (** gate -> output signal *)
  g_base : int array;  (** gate -> first pin slot; length [ngates + 1] *)
  pin_fanin : int array;  (** pin slot -> driving signal *)
  pin_vt : float array;  (** pin slot -> switching threshold *)
  fan_off : int array;  (** signal -> first fanout edge; length [nsignals + 1] *)
  fan_gate : int array;  (** fanout edge -> loading gate *)
  fan_pin : int array;  (** fanout edge -> pin of that gate *)
  cache : Halotis_delay.Delay_model.Cache.t;
      (** per-(gate, edge) delay coefficients for this tech *)
}

val compile : Halotis_tech.Tech.t -> Halotis_netlist.Netlist.t -> t
(** Flattens the netlist and prices the delay coefficients.  Pure
    setup: performs no simulation and touches no global state. *)
