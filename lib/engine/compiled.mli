(** A circuit compiled for the event kernel, independent of any one
    run.

    {!Iddm.run} used to rebuild these structures at every invocation:
    the CSR-flattened netlist (per-(gate, pin) slot arrays and the
    fanout edge list), the per-pin switching thresholds, and the
    {!Halotis_delay.Delay_model.Cache} delay coefficients.  All of them
    depend only on the netlist and the technology — never on drives,
    injections or budgets — so a long-lived service compiles once and
    starts many sessions against the same {!t} (the compiled-circuit
    cache of [lib/serve] stores exactly these).

    Sharing discipline: every array here is read-only to the engines
    (per-run state — waveforms, pin levels, pending queues, event pools
    — lives in the run itself).  The delay cache carries a small
    scratch buffer written by each [eval] and read back immediately, so
    a {!t} may be shared by any number of {e interleaved} sessions in
    one thread but must not be used from several threads at once. *)

type t = {
  circuit : Halotis_netlist.Netlist.t;
  tech : Halotis_tech.Tech.t;
  overlay : Halotis_tech.Param_overlay.t;
      (** the parameter corner the delay coefficients and pin
          thresholds below were priced at; empty for the nominal
          circuit *)
  nsignals : int;
  ngates : int;
  npins : int;  (** total (gate, pin) slots; [g_base.(ngates)] *)
  g_kind : Halotis_logic.Gate_kind.t array;  (** gate -> logic function *)
  g_out : int array;  (** gate -> output signal *)
  g_base : int array;  (** gate -> first pin slot; length [ngates + 1] *)
  pin_fanin : int array;  (** pin slot -> driving signal *)
  pin_vt : float array;  (** pin slot -> switching threshold *)
  fan_off : int array;  (** signal -> first fanout edge; length [nsignals + 1] *)
  fan_gate : int array;  (** fanout edge -> loading gate *)
  fan_pin : int array;  (** fanout edge -> pin of that gate *)
  cache : Halotis_delay.Delay_model.Cache.t;
      (** per-(gate, edge) delay coefficients for this tech *)
}

val compile :
  ?overlay:Halotis_tech.Param_overlay.t ->
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  t
(** Flattens the netlist and prices the delay coefficients.  Pure
    setup: performs no simulation and touches no global state.
    [overlay] (default empty) prices every coefficient — delay cache
    and pin switching thresholds — at the given parameter corner; the
    empty overlay is skipped entirely, so the compiled bytes match the
    historical overlay-free path bit-for-bit. *)

(** {1 Fanout cones}

    The static region a perturbation of one signal can reach: the
    substrate of incremental fault-campaign re-simulation
    ({!Iddm.start_cone}, {!Sim.Cone}). *)

type cone = {
  cone_victim : int;  (** the perturbed signal *)
  cone_gates : int array;
      (** member gates, ascending: the victim's driver (when it has
          one) plus the transitive fanout closure *)
  cone_signals : int array;
      (** member signals, ascending: the victim and every member
          gate's output *)
  cone_signal_member : Bytes.t;
      (** signal -> ['\001'] iff member; length [nsignals] *)
  cone_bnd_gate : int array;
      (** boundary feeds: member-gate pins whose driving signal is
          outside the cone, as parallel (gate, pin) arrays in
          ascending gate order *)
  cone_bnd_pin : int array;
}

val fanout_cone : t -> victim:int -> cone
(** BFS over the CSR fanout arrays.  The closure property — a member
    gate's output is always a member signal — means events born inside
    the cone can never reach a non-member gate, so a cone-restricted
    run needs no runtime escape check; only the boundary feeds (whose
    waveforms the rest of the circuit fixes independently of the
    victim) cross into it.
    @raise Invalid_argument on an out-of-range signal id. *)
