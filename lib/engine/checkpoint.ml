module Transition = Halotis_wave.Transition
module Waveform = Halotis_wave.Waveform
module Stop = Halotis_guard.Stop
module Diag = Halotis_guard.Diag

type signal_state = {
  ck_signal : int;
  ck_initial : float;
  ck_segments : Waveform.segment list;
}

type t = {
  ck_circuit : string;
  ck_engine : string;
  ck_end_time : float;
  ck_stop : string;
  ck_vdd : float;
  ck_signals : signal_state list;
}

let of_result (r : Sim.result) =
  match Sim.iddm r with
  | None ->
      invalid_arg
        "Checkpoint.of_result: classic runs have no waveform state to checkpoint"
  | Some ir ->
      let wfs = ir.Iddm.waveforms in
      let c = r.Sim.rs_spec.Sim.sp_circuit in
      let signals =
        List.init (Array.length wfs) (fun sid ->
            let wf = wfs.(sid) in
            {
              ck_signal = sid;
              ck_initial = Waveform.initial wf;
              ck_segments = Waveform.segments wf;
            })
      in
      {
        ck_circuit = Halotis_netlist.Netlist.name c;
        ck_engine = Sim.engine_to_string r.Sim.rs_engine;
        ck_end_time = r.Sim.rs_end_time;
        ck_stop = Stop.to_string r.Sim.rs_stopped_by;
        ck_vdd = (match wfs with [||] -> 5.0 | _ -> Waveform.vdd wfs.(0));
        ck_signals = signals;
      }

(* --- serialization ---

   Line-oriented text, every float printed with [%h] so the roundtrip
   is bitwise exact:

     # halotis-checkpoint v1
     ! circuit NAME
     ! engine ddm
     ! end %h
     ! stop TOKEN
     ! vdd %h
     s SID %h NSEGS          (one per signal: id, initial V, segment count)
     t %h %h r|f %h          (one per segment: start, slope_time, polarity, v_start)
*)

let magic = "# halotis-checkpoint v1"

let pol_token = function Transition.Rising -> "r" | Transition.Falling -> "f"

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (magic ^ "\n");
  Printf.bprintf b "! circuit %s\n" t.ck_circuit;
  Printf.bprintf b "! engine %s\n" t.ck_engine;
  Printf.bprintf b "! end %h\n" t.ck_end_time;
  Printf.bprintf b "! stop %s\n" t.ck_stop;
  Printf.bprintf b "! vdd %h\n" t.ck_vdd;
  List.iter
    (fun s ->
      Printf.bprintf b "s %d %h %d\n" s.ck_signal s.ck_initial
        (List.length s.ck_segments);
      List.iter
        (fun (seg : Waveform.segment) ->
          let tr = seg.Waveform.transition in
          Printf.bprintf b "t %h %h %s %h\n" tr.Transition.start
            tr.Transition.slope_time
            (pol_token tr.Transition.polarity)
            seg.Waveform.v_start)
        s.ck_segments)
    t.ck_signals;
  Buffer.contents b

let write path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

(* --- parsing --- *)

let fail fmt = Printf.ksprintf (fun m -> Diag.fail ~code:"checkpoint-parse" m) fmt

let parse_float ln s =
  try float_of_string s with Failure _ -> fail "line %d: bad float %S" ln s

let parse_int ln s =
  try int_of_string s with Failure _ -> fail "line %d: bad integer %S" ln s

let parse_pol ln = function
  | "r" -> Transition.Rising
  | "f" -> Transition.Falling
  | s -> fail "line %d: bad polarity %S" ln s

let split s = String.split_on_char ' ' s |> List.filter (fun f -> f <> "")

let load path =
  let lines =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | l -> go (l :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    with Sys_error m -> Diag.fail ~code:"checkpoint-parse" m
  in
  let arr = Array.of_list lines in
  let n = Array.length arr in
  if n = 0 || arr.(0) <> magic then fail "not a checkpoint file (bad magic)";
  let circuit = ref "" and engine = ref "" and end_time = ref 0. in
  let stop = ref "completed" and vdd = ref 5.0 in
  let pos = ref 1 in
  let header_done = ref false in
  while (not !header_done) && !pos < n do
    let ln = !pos + 1 in
    match split arr.(!pos) with
    | "!" :: "circuit" :: rest ->
        circuit := String.concat " " rest;
        incr pos
    | [ "!"; "engine"; e ] ->
        engine := e;
        incr pos
    | [ "!"; "end"; v ] ->
        end_time := parse_float ln v;
        incr pos
    | "!" :: "stop" :: rest ->
        stop := String.concat " " rest;
        incr pos
    | [ "!"; "vdd"; v ] ->
        vdd := parse_float ln v;
        incr pos
    | "s" :: _ -> header_done := true
    | [] -> incr pos
    | _ -> fail "line %d: unrecognized header line %S" ln arr.(!pos)
  done;
  let signals = ref [] in
  while !pos < n do
    let ln = !pos + 1 in
    (match split arr.(!pos) with
    | [ "s"; sid; init; nsegs ] ->
        let sid = parse_int ln sid in
        let init = parse_float ln init in
        let nsegs = parse_int ln nsegs in
        incr pos;
        let segs = ref [] in
        for _ = 1 to nsegs do
          if !pos >= n then fail "truncated: signal %d is missing segments" sid;
          let ln = !pos + 1 in
          (match split arr.(!pos) with
          | [ "t"; start; slope; pol; v0 ] ->
              let tr =
                Transition.make ~start:(parse_float ln start)
                  ~slope_time:(parse_float ln slope)
                  ~polarity:(parse_pol ln pol)
              in
              segs :=
                { Waveform.transition = tr; v_start = parse_float ln v0 }
                :: !segs
          | _ -> fail "line %d: expected a segment record" ln);
          incr pos
        done;
        signals :=
          { ck_signal = sid; ck_initial = init; ck_segments = List.rev !segs }
          :: !signals
    | [] -> incr pos
    | _ -> fail "line %d: expected a signal record" ln);
  done;
  {
    ck_circuit = !circuit;
    ck_engine = !engine;
    ck_end_time = !end_time;
    ck_stop = !stop;
    ck_vdd = !vdd;
    ck_signals = List.rev !signals;
  }
