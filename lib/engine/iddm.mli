(** The HALOTIS simulator: the paper's Fig. 4 algorithm.

    The simulator distinguishes {e transitions} (linear ramps stored
    per signal in {!Halotis_wave.Waveform} lists) from {e events}
    (instants a ramp crosses one particular gate input's threshold
    VT).  Processing one event:

    + the gate input's logic level flips; the gate function is
      evaluated;
    + if the output value changes, the output transition is computed
      with the configured delay model (DDM or CDM) and appended to the
      output waveform — possibly truncating or annulling earlier ramps
      (degradation made flesh);
    + for every fanout input of the output signal, pending events
      invalidated by the new ramp are {e deleted} from the event queue
      (Fig. 4's "delete Ej-1" branch) and the new ramp's own VT
      crossing, when it exists, is inserted.

    The same engine runs in HALOTIS-DDM or HALOTIS-CDM mode depending
    on [config.delay_kind]; [config.cancellation] exists only for the
    ablation study (disabling it breaks the inertial treatment). *)

type config = {
  tech : Halotis_tech.Tech.t;
  overlay : Halotis_tech.Param_overlay.t;
      (** parameter corner every delay coefficient and pin threshold
          is priced at; empty (the default) is bit-identical to
          pricing straight from [tech] *)
  delay_kind : Halotis_delay.Delay_model.kind;
  cancellation : bool;
  t_stop : Halotis_util.Units.time option;
  max_events : int;  (** safety valve against oscillating circuits *)
  trace : bool;  (** record transition causality for {!explain} *)
  budget : Halotis_guard.Budget.t;
      (** resource guardrails; trips stop the run gracefully with a
          {!Halotis_guard.Stop.t} reason instead of raising.  Its
          [max_events] combines with the legacy [max_events] field (the
          tighter bound wins) *)
  watchdog : Halotis_guard.Watchdog.config option;
      (** oscillation watchdog; [None] (default) disables it *)
}

val config :
  ?overlay:Halotis_tech.Param_overlay.t ->
  ?delay_kind:Halotis_delay.Delay_model.kind ->
  ?cancellation:bool ->
  ?t_stop:Halotis_util.Units.time ->
  ?max_events:int ->
  ?trace:bool ->
  ?budget:Halotis_guard.Budget.t ->
  ?watchdog:Halotis_guard.Watchdog.config ->
  Halotis_tech.Tech.t ->
  config
(** Defaults: empty overlay, DDM, cancellation on, no time bound, 10
    million events, tracing off, unlimited budget, no watchdog. *)

type trace_entry = {
  te_signal : Halotis_netlist.Netlist.signal_id;  (** where the ramp landed *)
  te_start : Halotis_util.Units.time;  (** the ramp's start instant *)
  te_gate : Halotis_netlist.Netlist.gate_id;  (** emitting gate *)
  te_pin : int;  (** the pin whose event triggered it *)
  te_cause_signal : Halotis_netlist.Netlist.signal_id;  (** signal driving that pin *)
  te_event_time : Halotis_util.Units.time;  (** when the triggering event fired *)
}

type result = {
  circuit : Halotis_netlist.Netlist.t;
  run_config : config;
  waveforms : Halotis_wave.Waveform.t array;  (** indexed by signal id *)
  stats : Stats.t;
  end_time : Halotis_util.Units.time;  (** time of the last processed event *)
  truncated : bool;
      (** true when a guardrail (budget or watchdog halt) stopped the
          run before it quiesced or reached [t_stop]; the waveforms are
          a valid prefix of the full run *)
  stopped_by : Halotis_guard.Stop.t;
      (** the precise stop reason ([Completed] iff [not truncated]) *)
  frozen : (Halotis_netlist.Netlist.signal_id * Halotis_util.Units.time) list;
      (** signals a [Degrade]-mode watchdog froze, with the freeze
          instant — their waveforms are meaningless (X) from that time
          on; in freeze order *)
  replay_hazard : bool;
      (** the run retroactively invalidated an event it had already
          processed: a degradation delay of tp <= 0 made a gate rewrite
          its output ramp from a start at or before a crossing some
          loading pin had popped, so that crossing is absent from the
          final waveform even though its consequences happened.  A
          cone replay seeded from final waveforms ({!start_cone})
          cannot reconstruct such a history — the soundness gate of
          {!Sim.Cone}.  Equal-key pop order itself is never a hazard:
          the event queue breaks ties by intrinsic pin-slot rank, so
          every run of a spec — full or cone-restricted — resolves
          coincidences identically. *)
  trace : trace_entry list;
      (** chronological causality record of every accepted output
          transition; empty unless [config.trace] *)
}

type injection = {
  inj_signal : Halotis_netlist.Netlist.signal_id;
      (** victim signal — typically a gate output (SET strike node) *)
  inj_transitions : Halotis_wave.Transition.t list;
      (** ramps spliced into the victim waveform, time-ordered; a SET
          pulse is a leading ramp plus its reversal [width] later *)
}

val run :
  ?injections:injection list ->
  ?compiled:Compiled.t ->
  config ->
  Halotis_netlist.Netlist.t ->
  drives:(Halotis_netlist.Netlist.signal_id * Drive.t) list ->
  result
(** Simulates a circuit.  Primary inputs without a drive sit at
    logic 0.  Feedback loops are allowed when they have a DC fixed
    point (latches); see {!Dc.levels}.

    [compiled], when given, must be {!Compiled.compile} of exactly this
    netlist and [config.tech] (checked by physical equality) — the run
    then skips the flattening/coefficient setup.  Equivalent to
    [advance (start ...) ~upto:infinity].

    Each [injection] is spliced into its victim's waveform when the
    simulation clock reaches its first transition, using the engine's
    own append/fan-out machinery — so an injected runt degrades,
    truncates and threshold-crosses exactly like a native ramp (the
    substrate of {!Halotis_fault}).  Injections do not count towards
    [events_processed] or [transitions_emitted]; everything they cause
    downstream does.
    @raise Invalid_argument when the DC operating point does not settle
    (oscillating feedback), a drive names a non-input signal, or an
    injection names an unknown signal. *)

(** {1 Resumable sessions}

    A {!session} is a run that can pause between events and accept
    fresh stimulus while paused — the substrate of the [halotis serve]
    session layer.  The pause mechanism is free and exact: the main
    loop inspects the queue minimum before popping, so a session
    advanced in steps pops the same events in the same order as a
    one-shot {!run} of the same spec, and its waveforms, statistics and
    digitized edges are bit-identical (pinned by the equivalence test
    suite).  The budget monitor lives across [advance] calls, so event
    accounting is exact too.  Sessions are single-threaded. *)

type session

val start :
  ?injections:injection list ->
  ?compiled:Compiled.t ->
  config ->
  Halotis_netlist.Netlist.t ->
  drives:(Halotis_netlist.Netlist.signal_id * Drive.t) list ->
  session
(** Validates, seeds drives and injections, and returns without
    processing any event.  Same contract (and exceptions) as {!run}. *)

val start_cone :
  ?injections:injection list ->
  compiled:Compiled.t ->
  cone:Compiled.cone ->
  baseline:result ->
  levels:bool array ->
  config ->
  Halotis_netlist.Netlist.t ->
  session
(** A run restricted to a {!Compiled.cone}: fresh waveforms for the
    cone's member signals, [baseline]'s finished waveforms aliased
    read-only everywhere else, and the event queue seeded by replaying
    each boundary feed's baseline crossings (the cone's closure under
    fanout guarantees nothing ever escapes, so no runtime frontier
    check is needed).  [levels] must be the baseline's DC operating
    point ({!Dc.levels} of the same drives).

    Soundness requires the baseline to be [Completed] with
    [replay_hazard = false]; the cone session's own [replay_hazard]
    must be checked by the caller before trusting its delta (see
    {!Sim.Cone}, which drives both checks and falls back to a full run
    otherwise).  Every injection must name a cone member signal — an
    outside splice would write an aliased baseline waveform.
    @raise Invalid_argument on compiled/baseline/levels mismatches, an
    out-of-cone injection, or [config.cancellation = false] (without
    cancellation, processed events and final-waveform crossings no
    longer coincide, so the boundary seeding is unsound). *)

val advance : session -> upto:Halotis_util.Units.time -> result
(** Processes every queued event with instant [<= upto] (clamped to the
    run's horizon), then snapshots.  [upto = infinity] finishes the
    run.  The returned result aliases the session's live waveforms and
    statistics: consume it before advancing further.  Idempotent once
    {!session_finished}. *)

val session_set_input :
  session -> Halotis_netlist.Netlist.signal_id -> Halotis_wave.Transition.t list -> unit
(** Appends fresh ramps to a primary input's waveform and propagates
    them exactly as the engine's own append/fan-out machinery would
    (cancellation included), waking a quiesced session.  The caller
    must keep ramps at or after the last [advance] horizon — appending
    into already-simulated time rewrites history.
    @raise Invalid_argument for unknown or non-input signals. *)

val session_inject : session -> injection -> unit
(** Queues a live injection splice, exactly like a [start]-time
    injection whose instant has not yet been reached.  Same caveat on
    past instants as {!session_set_input}. *)

val session_time : session -> Halotis_util.Units.time
(** Time of the last processed event (the result's [end_time] so far). *)

val session_finished : session -> bool
(** No queued event can ever be processed again: the queue drained, the
    horizon was passed, or a guardrail stopped the run.  Fresh stimulus
    clears the first case; a guardrail stop is final. *)

val session_result : session -> result
(** Snapshot without advancing (same aliasing caveat as {!advance}). *)

val waveform : result -> string -> Halotis_wave.Waveform.t
(** Looks a signal's waveform up by name.
    @raise Not_found for unknown names. *)

val waveform_of_id :
  result -> Halotis_netlist.Netlist.signal_id -> Halotis_wave.Waveform.t

val explain :
  result ->
  signal:Halotis_netlist.Netlist.signal_id ->
  at:Halotis_util.Units.time ->
  trace_entry list
(** The causality chain (primary-input side first) of the ramp live on
    [signal] at time [at]: each entry names the gate that emitted the
    ramp, the pin event that triggered it, and the driving signal —
    following which leads to the previous link.  Empty when the run was
    not traced, the signal is a primary input, or it never switched
    before [at]. *)

val pp_explanation :
  result -> Format.formatter -> trace_entry list -> unit
(** One line per link: time, gate, pin, signal. *)

val output_edges :
  ?vt:Halotis_util.Units.voltage ->
  result ->
  (string * Halotis_wave.Digital.edge list) list
(** Digitized primary outputs (default threshold VDD/2), in declaration
    order. *)
