module Drive = Halotis_engine.Drive
module Transition = Halotis_wave.Transition
module Netlist = Halotis_netlist.Netlist

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

exception Parse_error of error

let fail line fmt = Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

type t = {
  slope : float;
  entries : (string * Drive.t) list;
  raw_changes : (string * (float * bool) list) list;
}

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with None -> line | Some i -> String.sub line 0 i

let parse_level lineno tok =
  match tok with
  | "0" -> false
  | "1" -> true
  | _ -> fail lineno "bad level %S (expected 0 or 1)" tok

let parse_change lineno tok =
  match String.index_opt tok '@' with
  | None -> fail lineno "bad change %S (expected LEVEL@TIME)" tok
  | Some i ->
      let level = parse_level lineno (String.sub tok 0 i) in
      let time_str = String.sub tok (i + 1) (String.length tok - i - 1) in
      (match float_of_string_opt time_str with
      | Some time when time >= 0. -> (time, level)
      | Some _ | None -> fail lineno "bad time %S" time_str)

let parse_string text =
  let lines = String.split_on_char '\n' text in
  try
    let slope = ref 100. in
    let entries = ref [] in
    let raws = ref [] in
    let seen = Hashtbl.create 8 in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        match tokenize (strip_comment raw) with
        | [] -> ()
        | [ "slope"; v ] -> (
            match float_of_string_opt v with
            | Some s when s > 0. -> slope := s
            | Some _ | None -> fail lineno "bad slope %S" v)
        | "slope" :: _ -> fail lineno "usage: slope PICOSECONDS"
        | "input" :: name :: initial :: changes ->
            if Hashtbl.mem seen name then fail lineno "duplicate input %S" name;
            Hashtbl.add seen name ();
            let initial = parse_level lineno initial in
            let changes = List.map (parse_change lineno) changes in
            let drive = Drive.of_levels ~slope:!slope ~initial changes in
            entries := (name, drive) :: !entries;
            raws := (name, changes) :: !raws
        | [ "input" ] | [ "input"; _ ] -> fail lineno "usage: input NAME INITIAL [LEVEL@TIME...]"
        | tok :: _ -> fail lineno "unknown directive %S" tok)
      lines;
    Ok { slope = !slope; entries = List.rev !entries; raw_changes = List.rev !raws }
  with Parse_error e -> Error e

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string t =
  let buf = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string buf) "slope %g\n" t.slope;
  List.iter
    (fun (name, (d : Drive.t)) ->
      Printf.ksprintf (Buffer.add_string buf) "input %s %d" name
        (if d.Drive.initial then 1 else 0);
      let level = ref d.Drive.initial in
      List.iter
        (fun (tr : Transition.t) ->
          level := not !level;
          Printf.ksprintf (Buffer.add_string buf) " %d@%g"
            (if !level then 1 else 0)
            tr.Transition.start)
        d.Drive.transitions;
      Buffer.add_char buf '\n')
    t.entries;
  Buffer.contents buf

let bind t circuit =
  let inputs = Netlist.primary_inputs circuit in
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | (name, drive) :: rest -> (
        match Netlist.find_signal circuit name with
        | None -> Error (Printf.sprintf "stimulus names unknown signal %S" name)
        | Some sid ->
            if not (List.mem sid inputs) then
              Error (Printf.sprintf "stimulus entry %S is not a primary input" name)
            else resolve ((sid, drive) :: acc) rest)
  in
  resolve [] t.entries
