(** HSV — the HALOTIS stimulus-vector file format.

    A line-oriented companion to HNL:

    {v
    # stimulus for eq2
    slope 100                  # input ramp slope in ps (default 100)
    input a0 0                 # constant low
    input a1 1                 # constant high
    input b0 0 1@3000 0@6000   # initial 0, rise at 3 ns, fall at 6 ns
    v}

    Levels are [0]/[1]; change instants are in picoseconds. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

type t = {
  slope : Halotis_util.Units.time;
  entries : (string * Halotis_engine.Drive.t) list;  (** in file order *)
  raw_changes : (string * (float * bool) list) list;
      (** per entry, the [(time, level)] pairs exactly as written —
          {!Halotis_engine.Drive.of_levels} sorts and deduplicates, so
          ordering faults are only visible here (see [Halotis_lint]) *)
}

val parse_string : string -> (t, error) result
val parse_file : string -> (t, error) result

val to_string : t -> string
(** Prints a document that {!parse_string} reads back equivalently. *)

val bind :
  t ->
  Halotis_netlist.Netlist.t ->
  ((Halotis_netlist.Netlist.signal_id * Halotis_engine.Drive.t) list, string) result
(** Resolves entry names against a circuit's primary inputs.  Errors on
    unknown names or entries naming non-input signals; inputs without
    an entry default to constant 0 (they are simply absent from the
    returned list). *)
