type scale = {
  sc_d0 : float;
  sc_d_load : float;
  sc_d_slope : float;
  sc_s0 : float;
  sc_s_load : float;
  sc_ddm_a : float;
  sc_ddm_b : float;
  sc_ddm_c : float;
}

let scale_identity =
  {
    sc_d0 = 1.0;
    sc_d_load = 1.0;
    sc_d_slope = 1.0;
    sc_s0 = 1.0;
    sc_s_load = 1.0;
    sc_ddm_a = 1.0;
    sc_ddm_b = 1.0;
    sc_ddm_c = 1.0;
  }

let uniform_scale f =
  {
    sc_d0 = f;
    sc_d_load = f;
    sc_d_slope = f;
    sc_s0 = f;
    sc_s_load = f;
    sc_ddm_a = f;
    sc_ddm_b = f;
    sc_ddm_c = f;
  }

(* Bitwise float equality: a corner at exactly 1.0 is the identity; a
   corner at 1.0 + 1e-17 is not, and must survive into the
   fingerprint.  [Float.equal] would also treat nan = nan, which is
   fine — a nan factor is degenerate either way. *)
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let scale_equal a b =
  feq a.sc_d0 b.sc_d0 && feq a.sc_d_load b.sc_d_load
  && feq a.sc_d_slope b.sc_d_slope && feq a.sc_s0 b.sc_s0
  && feq a.sc_s_load b.sc_s_load && feq a.sc_ddm_a b.sc_ddm_a
  && feq a.sc_ddm_b b.sc_ddm_b && feq a.sc_ddm_c b.sc_ddm_c

let scale_is_identity s = scale_equal s scale_identity

type entry = {
  en_rise : scale;
  en_fall : scale;
  en_vt : float;
  en_pin : (int * float) list;
}

let entry_identity =
  { en_rise = scale_identity; en_fall = scale_identity; en_vt = 1.0; en_pin = [] }

let norm_pins pins =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b)
    (List.filter (fun (_, f) -> not (feq f 1.0)) pins)

let norm_entry e = { e with en_pin = norm_pins e.en_pin }

let entry_equal a b =
  scale_equal a.en_rise b.en_rise
  && scale_equal a.en_fall b.en_fall
  && feq a.en_vt b.en_vt
  && List.length a.en_pin = List.length b.en_pin
  && List.for_all2 (fun (pa, fa) (pb, fb) -> pa = pb && feq fa fb) a.en_pin
       b.en_pin

let entry_is_identity e = entry_equal e entry_identity

module IMap = Map.Make (Int)

type t = entry IMap.t

let empty = IMap.empty
let is_empty = IMap.is_empty
let cardinal = IMap.cardinal

let set t ~gate e =
  let e = norm_entry e in
  if entry_is_identity e then IMap.remove gate t else IMap.add gate e t

let find t ~gate =
  match IMap.find_opt gate t with Some e -> e | None -> entry_identity

let edge_scale t ~gate ~rising =
  let e = find t ~gate in
  if rising then e.en_rise else e.en_fall

let vt_scale t ~gate = (find t ~gate).en_vt

let pin_scale t ~gate ~pin =
  match List.assoc_opt pin (find t ~gate).en_pin with
  | Some f -> f
  | None -> 1.0

let apply_edge s (p : Tech.edge_params) =
  {
    Tech.d0 = p.Tech.d0 *. s.sc_d0;
    d_load = p.Tech.d_load *. s.sc_d_load;
    d_slope = p.Tech.d_slope *. s.sc_d_slope;
    s0 = p.Tech.s0 *. s.sc_s0;
    s_load = p.Tech.s_load *. s.sc_s_load;
    ddm_a = p.Tech.ddm_a *. s.sc_ddm_a;
    ddm_b = p.Tech.ddm_b *. s.sc_ddm_b;
    ddm_c = p.Tech.ddm_c *. s.sc_ddm_c;
  }

let equal = IMap.equal entry_equal

let fingerprint t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "halotis-overlay v1\n";
  IMap.iter
    (fun gate e ->
      let sc tag s =
        Buffer.add_string buf
          (Printf.sprintf "%s %h %h %h %h %h %h %h %h\n" tag s.sc_d0
             s.sc_d_load s.sc_d_slope s.sc_s0 s.sc_s_load s.sc_ddm_a
             s.sc_ddm_b s.sc_ddm_c)
      in
      Buffer.add_string buf (Printf.sprintf "g %d\n" gate);
      sc "r" e.en_rise;
      sc "f" e.en_fall;
      Buffer.add_string buf (Printf.sprintf "vt %h\n" e.en_vt);
      List.iter
        (fun (pin, f) ->
          Buffer.add_string buf (Printf.sprintf "pin %d %h\n" pin f))
        e.en_pin)
    t;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let empty_fingerprint = fingerprint empty
let fold f t acc = IMap.fold f t acc
let to_list t = IMap.bindings t
let of_list l = List.fold_left (fun t (gate, e) -> set t ~gate e) empty l
