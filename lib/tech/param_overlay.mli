(** Sparse per-gate delay-parameter overlays.

    A technology ({!Tech.t}) fits the delay/degradation coefficients
    once per library cell; real silicon spreads them per device, chip
    and lot, and stress time degrades them.  An overlay is a sparse
    map from gate ids to multiplicative scale factors applied to the
    {!Tech.edge_params} coefficients (per edge), the switching
    threshold and the pin factors — the corner a Monte-Carlo sample or
    an aging law puts one circuit instance at.

    Overlays are {e explicit}: every engine prices coefficients through
    an overlay argument, and the empty overlay is guaranteed
    bit-identical to pricing straight from [Tech] (application is
    skipped entirely, not multiplied by 1.0).

    The {!fingerprint} is a content digest of the canonical
    serialization — two structurally equal overlays share it, and it
    keys compiled-circuit caches so different corners never alias. *)

type scale = {
  sc_d0 : float;
  sc_d_load : float;
  sc_d_slope : float;
  sc_s0 : float;
  sc_s_load : float;
  sc_ddm_a : float;
  sc_ddm_b : float;
  sc_ddm_c : float;
}
(** Multiplicative factors, one per {!Tech.edge_params} field. *)

val scale_identity : scale
(** All factors 1.0. *)

val scale_is_identity : scale -> bool
(** Exact (bitwise) comparison against {!scale_identity}. *)

val uniform_scale : float -> scale
(** Every factor set to the given value. *)

type entry = {
  en_rise : scale;
  en_fall : scale;
  en_vt : float;  (** multiplies every input pin's switching threshold *)
  en_pin : (int * float) list;
      (** per-pin factor scales, sorted by pin index; pins absent
          scale by 1.0 *)
}
(** One gate's corner. *)

val entry_identity : entry

type t
(** A sparse overlay: gate ids absent from the map are at the
    identity corner. *)

val empty : t
(** The identity overlay — engines skip application entirely. *)

val is_empty : t -> bool

val cardinal : t -> int
(** Number of gates with a non-identity entry. *)

val set : t -> gate:int -> entry -> t
(** [set t ~gate e] binds gate [gate] to corner [e]; an identity
    entry removes the binding instead (so [is_empty] and
    {!fingerprint} never depend on identity noise). *)

val find : t -> gate:int -> entry
(** The gate's corner; {!entry_identity} when absent. *)

val edge_scale : t -> gate:int -> rising:bool -> scale
(** The scale applied to [Tech.edge gt ~rising] for this gate. *)

val vt_scale : t -> gate:int -> float
(** The threshold multiplier for this gate's input pins. *)

val pin_scale : t -> gate:int -> pin:int -> float
(** The extra factor on [pin_factor pin] for this gate. *)

val apply_edge : scale -> Tech.edge_params -> Tech.edge_params
(** Field-wise multiplication.  Callers must skip the call entirely
    for absent entries — [apply_edge scale_identity p] is numerically
    [p] but the bit-identity guarantee rests on not calling it. *)

val equal : t -> t -> bool
(** Structural equality (same gates, bitwise-equal factors) — used by
    {!Halotis_engine.Iddm.start} to validate a caller-supplied
    compiled circuit, where the overlay may have been reconstructed
    rather than shared physically. *)

val fingerprint : t -> string
(** Hex content digest of the canonical serialization ([%h] floats,
    gates in id order).  [fingerprint empty] is the well-known empty
    fingerprint; structurally equal overlays fingerprint equally. *)

val empty_fingerprint : string
(** [fingerprint empty], precomputed. *)

val fold : (int -> entry -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over bound gates in increasing id order. *)

val to_list : t -> (int * entry) list
(** Bound gates in increasing id order. *)

val of_list : (int * entry) list -> t
(** Builds an overlay via {!set} (identity entries dropped; later
    duplicates win). *)
