(** Technology description: every per-cell number the delay models and
    the analog substrate need.

    The conventional part of the delay model (the paper's [tp0], taken
    from a "conventional delay model" [refs 1, 2]) is a linear
    load/slope macromodel:

    [tp0 = d0 + d_load * CL + d_slope * tau_in]
    [tau_out = s0 + s_load * CL]

    The degradation part follows the paper's eqs. 2–3:

    [tau = (ddm_a + ddm_b * CL) / VDD]
    [T0  = (1/2 - ddm_c / VDD) * tau_in]

    with separate parameter sets for rising and falling output edges,
    and a per-pin factor modelling the input-position dependence the
    paper mentions (the "i" subscripts of eqs. 2–3). *)

type edge_params = {
  d0 : float;  (** intrinsic delay, ps *)
  d_load : float;  (** load sensitivity, ps/fF *)
  d_slope : float;  (** input-slope sensitivity, dimensionless *)
  s0 : float;  (** intrinsic output slope, ps *)
  s_load : float;  (** output-slope load sensitivity, ps/fF *)
  ddm_a : float;  (** eq. 2 A, V.ps *)
  ddm_b : float;  (** eq. 2 B, V.ps/fF *)
  ddm_c : float;  (** eq. 3 C, V *)
}

type gate_tech = {
  rise : edge_params;  (** parameters for an output {e rising} edge *)
  fall : edge_params;
  input_cap : float;  (** input pin capacitance, fF *)
  default_vt : float;  (** default input threshold, V *)
  pin_factor : int -> float;
      (** multiplicative delay factor of input pin [i] (the eqs. 2–3
          position dependence); [pin_factor 0 = 1.0] *)
}

type t

val create :
  name:string ->
  vdd:Halotis_util.Units.voltage ->
  ?wire_cap_per_fanout:float ->
  lookup:(Halotis_logic.Gate_kind.t -> gate_tech) ->
  unit ->
  t

val name : t -> string
val vdd : t -> Halotis_util.Units.voltage

val wire_cap_per_fanout : t -> float
(** Estimated interconnect capacitance added per fanout pin, fF. *)

val gate_tech : t -> Halotis_logic.Gate_kind.t -> gate_tech

val edge : gate_tech -> rising:bool -> edge_params
(** Selects {!gate_tech.rise} or {!gate_tech.fall}. *)

val base_delay : edge_params -> pin_factor:float -> cl:float -> tau_in:float -> float
(** The conventional delay [tp0] (ps). *)

val output_slope : edge_params -> cl:float -> float
(** The output ramp full-swing time [tau_out] (ps); never below 1 ps. *)

val degradation_tau : t -> edge_params -> cl:float -> float
(** Eq. 2's tau (ps); never below 1 ps. *)

val degradation_t0 : t -> edge_params -> tau_in:float -> float
(** Eq. 3's T0 (ps); clamped to >= 0. *)

val degradation_t0_coef : t -> edge_params -> float
(** Eq. 3's slope-independent coefficient [1/2 - ddm_c / VDD] — the
    factor the delay cache stores per (gate, edge) and that static
    analyses ({!Halotis_sta}) bound the degradation map with.
    [raw_degradation_t0 t p ~tau_in = degradation_t0_coef t p *. tau_in]. *)

(** The [raw_*] variants below skip the engine-side clamps.  The clamps
    keep a simulation numerically alive, but they also hide physically
    meaningless parameter sets; static validation ([Halotis_lint]) must
    see the unclamped values. *)

val raw_output_slope : edge_params -> cl:float -> float
(** [s0 + s_load * CL], unclamped — may be <= 0 for a bad fit. *)

val raw_degradation_tau : t -> edge_params -> cl:float -> float
(** Eq. 2's tau before the 1 ps floor. *)

val raw_degradation_t0 : t -> edge_params -> tau_in:float -> float
(** Eq. 3's T0 before the >= 0 clamp; negative when [ddm_c > VDD/2]. *)
