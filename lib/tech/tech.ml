type edge_params = {
  d0 : float;
  d_load : float;
  d_slope : float;
  s0 : float;
  s_load : float;
  ddm_a : float;
  ddm_b : float;
  ddm_c : float;
}

type gate_tech = {
  rise : edge_params;
  fall : edge_params;
  input_cap : float;
  default_vt : float;
  pin_factor : int -> float;
}

type t = {
  tech_name : string;
  tech_vdd : float;
  wire_cap : float;
  lookup : Halotis_logic.Gate_kind.t -> gate_tech;
}

let create ~name ~vdd ?(wire_cap_per_fanout = 2.0) ~lookup () =
  if vdd <= 0. then invalid_arg "Tech.create: vdd must be positive";
  { tech_name = name; tech_vdd = vdd; wire_cap = wire_cap_per_fanout; lookup }

let name t = t.tech_name
let vdd t = t.tech_vdd
let wire_cap_per_fanout t = t.wire_cap
let gate_tech t kind = t.lookup kind
let edge gt ~rising = if rising then gt.rise else gt.fall

let base_delay p ~pin_factor ~cl ~tau_in =
  pin_factor *. (p.d0 +. (p.d_load *. cl) +. (p.d_slope *. tau_in))

let raw_output_slope p ~cl = p.s0 +. (p.s_load *. cl)

let raw_degradation_tau t p ~cl = (p.ddm_a +. (p.ddm_b *. cl)) /. t.tech_vdd

let degradation_t0_coef t p = 0.5 -. (p.ddm_c /. t.tech_vdd)

let raw_degradation_t0 t p ~tau_in = degradation_t0_coef t p *. tau_in

let output_slope p ~cl = Float.max 1.0 (raw_output_slope p ~cl)

let degradation_tau t p ~cl = Float.max 1.0 (raw_degradation_tau t p ~cl)

let degradation_t0 t p ~tau_in = Float.max 0.0 (raw_degradation_t0 t p ~tau_in)
