type observation = {
  metric : string;
  paper : string;
  measured : string;
  agrees : bool option;
  note : string;
}

type t = {
  exp_id : string;
  title : string;
  observations : observation list;
  data : (string * float) list;
}

let observation ?agrees ?(note = "") ~metric ~paper ~measured () =
  { metric; paper; measured; agrees; note }

let make ?(data = []) ~exp_id ~title observations = { exp_id; title; observations; data }

let verdict = function Some true -> "OK" | Some false -> "DIVERGES" | None -> "qualitative"

let render t =
  let buf = Buffer.create 512 in
  Printf.ksprintf (Buffer.add_string buf) "=== %s: %s ===\n" t.exp_id t.title;
  List.iter
    (fun o ->
      Printf.ksprintf (Buffer.add_string buf) "  %-38s paper: %-22s measured: %-22s [%s]%s\n"
        o.metric o.paper o.measured (verdict o.agrees)
        (if o.note = "" then "" else " -- " ^ o.note))
    t.observations;
  Buffer.contents buf

let render_markdown ts =
  let buf = Buffer.create 2048 in
  List.iter
    (fun t ->
      Printf.ksprintf (Buffer.add_string buf) "## %s — %s\n\n" t.exp_id t.title;
      Buffer.add_string buf "| Metric | Paper | Measured | Verdict | Note |\n";
      Buffer.add_string buf "|---|---|---|---|---|\n";
      List.iter
        (fun o ->
          Printf.ksprintf (Buffer.add_string buf) "| %s | %s | %s | %s | %s |\n" o.metric
            o.paper o.measured (verdict o.agrees) o.note)
        t.observations;
      Buffer.add_char buf '\n')
    ts;
  Buffer.contents buf
