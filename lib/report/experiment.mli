(** Structured experiment records: each benchmark emits a set of
    [observation]s so EXPERIMENTS.md's paper-vs-measured bookkeeping is
    generated, not hand-copied. *)

type observation = {
  metric : string;
  paper : string;  (** what the paper reports, verbatim-ish *)
  measured : string;
  agrees : bool option;  (** [None] when the comparison is qualitative *)
  note : string;
}

type t = {
  exp_id : string;  (** e.g. "TAB1", "FIG6" *)
  title : string;
  observations : observation list;
  data : (string * float) list;
      (** machine-readable named metrics (throughputs, counts, ...) —
          exported verbatim by the bench runner's [--json] emitter for
          regression tracking; empty for purely qualitative
          experiments *)
}

val observation :
  ?agrees:bool -> ?note:string -> metric:string -> paper:string -> measured:string -> unit ->
  observation

val make :
  ?data:(string * float) list -> exp_id:string -> title:string -> observation list -> t

val render : t -> string
(** Human-readable block with one line per observation. *)

val render_markdown : t list -> string
(** A markdown section per experiment, table of observations — the
    format EXPERIMENTS.md embeds. *)
