type t = {
  id : string;
  domain : Finding.domain;
  severity : Finding.severity;
  doc : string;
  example : string;
}

let rule id domain severity doc example = { id; domain; severity; doc; example }

let nl001 =
  rule "NL001" Finding.Netlist Finding.Error
    "signal has no driver, is not a primary input and is not a tie cell"
    "`gate g inv y ghost` where `ghost` is never produced"

let nl002 =
  rule "NL002" Finding.Netlist Finding.Warning
    "internal signal drives nothing and is not a primary output"
    "`gate g inv d b` where `d` is read by nothing and not an output"

let nl003 =
  rule "NL003" Finding.Netlist Finding.Error
    "combinational feedback: gates form a strongly connected component"
    "`gate f1 nand2 x a y` + `gate f2 inv y x`"

let nl004 =
  rule "NL004" Finding.Netlist Finding.Info
    "primary input is connected to no gate and no output"
    "`input a b unused` where `unused` appears on no gate line"

let nl005 =
  rule "NL005" Finding.Netlist Finding.Warning
    "signal fanout exceeds the configured threshold"
    "one net loading 40 pins with `--fanout-threshold 32`"

let nl006 =
  rule "NL006" Finding.Netlist Finding.Warning
    "gate is unreachable from every primary input"
    "a feedback pair fed only by itself, or a const-only cone"

let nl007 =
  rule "NL007" Finding.Netlist Finding.Info
    "gate output is fixed by tie cells and could be folded at compile time"
    "`gate g nor2 r const1 b` — the output is always 0"

let nl008 =
  rule "NL008" Finding.Netlist Finding.Warning
    "feedback loop has inverting parity (or data-dependent gates) and may oscillate"
    "a ring `inv a b` + `inv b c` + `nand2 en c a` — odd inversion count"

let nl020 =
  rule "NL020" Finding.Netlist Finding.Warning
    "fanout cones filter every feasible SET pulse: the fault-site list is degenerate"
    "a circuit whose VT filtering provably kills the canonical pulse at every site"

let tk001 =
  rule "TK001" Finding.Tech Finding.Error
    "output slope tau_out = s0 + s_load*CL is not positive at a representative load"
    "a fitted `s0 = -120 ps` at light loads"

let tk002 =
  rule "TK002" Finding.Tech Finding.Error
    "degradation tau (eq. 2) is not positive at a representative load"
    "`ddm_a < 0` with small `ddm_b * CL`"

let tk003 =
  rule "TK003" Finding.Tech Finding.Warning
    "degradation T0 (eq. 3) is negative: ddm_c exceeds VDD/2"
    "`ddm_c = 3 V` at `VDD = 5 V`"

let tk004 =
  rule "TK004" Finding.Tech Finding.Error
    "input threshold VT lies outside the open interval (0, VDD)"
    "`vt0=6.0` on a gate pin at `VDD = 5 V`"

let tk005 =
  rule "TK005" Finding.Tech Finding.Error
    "conventional delay tp0 is not positive at a representative operating point"
    "a fitted `d0 = -80 ps` at light load and fast input"

let tk006 =
  rule "TK006" Finding.Tech Finding.Warning
    "rise/fall delay asymmetry exceeds the sanity bound"
    "rise 300 ps vs fall 40 ps (7.5x) at mid grid"

let tk007 =
  rule "TK007" Finding.Tech Finding.Warning
    "DDM coefficients admit pulse amplification along a chain: the T0 dead window covers the stage delay"
    "`ddm_c ~ 0.2 V` at `VDD = 5 V` with slow inputs and a fast stage"

let lb001 =
  rule "LB001" Finding.Liberty Finding.Warning
    "cell is missing timing arcs or delay/transition tables"
    "an output pin with no `timing ()` group, or an arc without `cell_fall`"

let lb002 =
  rule "LB002" Finding.Liberty Finding.Warning
    "NLDM table is not monotone in output load"
    "`values (\"40, 250, 30\", ...)` — delay drops as CL grows"

let lb003 =
  rule "LB003" Finding.Liberty Finding.Warning
    "linear delay-model fit residual exceeds the RMSE bound"
    "tables so non-linear the CDM plane misses by > 25 ps RMSE"

let st001 =
  rule "ST001" Finding.Stim Finding.Error
    "stimulus entry drives a signal that is not a primary input"
    "`input G22 0 1@2000` where G22 is an output"

let st002 =
  rule "ST002" Finding.Stim Finding.Warning
    "change instants are not strictly increasing as written"
    "`input a 0 1@5000 0@3000`"

let st003 =
  rule "ST003" Finding.Stim Finding.Warning
    "pulse is narrower than the input slope and will be degraded or filtered"
    "`input a 0 1@1000 0@1050` under `slope 100`"

let all =
  [
    nl001; nl002; nl003; nl004; nl005; nl006; nl007; nl008; nl020;
    tk001; tk002; tk003; tk004; tk005; tk006; tk007;
    lb001; lb002; lb003;
    st001; st002; st003;
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun r -> r.id = id) all

type config = {
  overrides : (string * [ `Off | `On | `Severity of Finding.severity ]) list;
  fanout_threshold : int;
  asymmetry_bound : float;
  rmse_bound : float;
  loads : float list;
  slopes : float list;
}

let default_config =
  {
    overrides = [];
    fanout_threshold = 32;
    asymmetry_bound = 3.0;
    rmse_bound = 25.0;
    loads = [ 5.; 20.; 80. ];
    slopes = [ 50.; 200. ];
  }

let resolve config rule =
  List.fold_left
    (fun acc (id, action) -> if String.uppercase_ascii id = rule.id then action else acc)
    `On config.overrides

let enabled config rule = resolve config rule <> `Off

let severity config rule =
  match resolve config rule with `Severity s -> s | `Off | `On -> rule.severity

let emit config rule location fmt =
  Format.kasprintf
    (fun message ->
      if enabled config rule then
        Some
          {
            Finding.rule = rule.id;
            severity = severity config rule;
            domain = rule.domain;
            location;
            message;
          }
      else None)
    fmt
