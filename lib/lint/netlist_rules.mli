(** Structural rules (NL rules) over a finished netlist, built on the
    analyses of [Halotis_netlist.Check]: driver faults, all feedback
    SCCs, unused inputs, fanout budget, PI-reachability and
    constant-foldable logic. *)

val run : Rule.config -> Halotis_netlist.Netlist.t -> Finding.t list
