module Liberty = Halotis_liberty.Liberty
module Table2d = Halotis_liberty.Table2d
module Fit = Halotis_liberty.Fit
module Gate_kind = Halotis_logic.Gate_kind

let table_slots (arc : Liberty.arc) =
  [
    ("cell_rise", arc.Liberty.cell_rise);
    ("cell_fall", arc.Liberty.cell_fall);
    ("rise_transition", arc.Liberty.rise_transition);
    ("fall_transition", arc.Liberty.fall_transition);
  ]

let run config ~base lib =
  let findings = ref [] in
  let push = function Some f -> findings := f :: !findings | None -> () in
  List.iter
    (fun (cell : Liberty.cell) ->
      let loc = Finding.Cell cell.Liberty.cell_name in
      (* LB001 — arcless cells, and arcs with holes in their tables. *)
      if cell.Liberty.arcs = [] then
        push
          (Rule.emit config Rule.lb001 loc
             "output pin %s carries no timing arcs; the cell cannot be characterised"
             cell.Liberty.output_pin)
      else
        List.iter
          (fun (arc : Liberty.arc) ->
            let missing =
              List.filter_map
                (fun (name, slot) -> if slot = None then Some name else None)
                (table_slots arc)
            in
            if missing <> [] then
              push
                (Rule.emit config Rule.lb001 loc "arc from %s is missing %s"
                   arc.Liberty.related_pin
                   (String.concat ", " missing)))
          cell.Liberty.arcs;
      (* LB002 — delay and transition must not shrink as load grows.
         A 1% relative tolerance absorbs rounding in published data. *)
      List.iter
        (fun (arc : Liberty.arc) ->
          List.iter
            (fun (name, slot) ->
              match slot with
              | None -> ()
              | Some table ->
                  let span =
                    Array.fold_left
                      (fun acc row -> Array.fold_left (fun a v -> Float.max a (Float.abs v)) acc row)
                      0. (Table2d.values table)
                  in
                  if not (Table2d.monotone ~tolerance:(0.01 *. span) table `Index2) then
                    push
                      (Rule.emit config Rule.lb002 loc
                         "%s (arc from %s) decreases with output load; characterisation \
                          data is suspect"
                         name arc.Liberty.related_pin))
            (table_slots arc))
        cell.Liberty.arcs)
    lib.Liberty.cells;
  (* LB003 — how badly the linear CDM approximates the tables. *)
  (if Rule.enabled config Rule.lb003 then
     let _, qualities =
       Fit.to_tech ~base ~kind_of_cell:Fit.default_kind_of_cell lib
     in
     List.iter
       (fun (kind, (q : Fit.quality)) ->
         let worst = Float.max q.Fit.delay_rmse q.Fit.slope_rmse in
         if worst > config.Rule.rmse_bound then
           push
             (Rule.emit config Rule.lb003
                (Finding.Kind (Gate_kind.name kind))
                "fit RMSE %.1f ps (delay %.1f, slope %.1f) exceeds the %.0f ps bound; \
                 the linear model misrepresents this cell"
                worst q.Fit.delay_rmse q.Fit.slope_rmse config.Rule.rmse_bound))
       qualities);
  List.rev !findings
