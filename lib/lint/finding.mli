(** A located diagnostic produced by one lint rule. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

val severity_rank : severity -> int
(** [Error] > [Warning] > [Info]; for sorting reports worst-first. *)

type domain = Netlist | Tech | Liberty | Stim

val domain_to_string : domain -> string
val domain_of_string : string -> domain option

type location =
  | Circuit  (** the whole design *)
  | Signal of string
  | Gate of string
  | Gates of string list  (** e.g. the members of a feedback SCC *)
  | Pin of string * int  (** gate name, input pin index *)
  | Kind of string  (** a gate-kind mnemonic, e.g. ["nand2"] *)
  | Cell of string  (** a Liberty cell *)
  | Entry of string  (** a stimulus-file input entry *)

type t = {
  rule : string;  (** registry id, e.g. ["NL003"] *)
  severity : severity;
  domain : domain;
  location : location;
  message : string;
}

val pp : Format.formatter -> t -> unit
(** e.g. [error NL003 [gate f1 -> f2]: combinational feedback ...] *)

val compare : t -> t -> int
(** Worst severity first, then rule id, then message — a stable report
    order independent of rule evaluation order. *)

val to_json : t -> Halotis_util.Json.t
val of_json : Halotis_util.Json.t -> (t, string) result
