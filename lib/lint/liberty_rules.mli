(** Liberty library rules (LB rules): structural completeness of timing
    arcs, NLDM table monotonicity in load, and the residual of the
    linear CDM fit ([Fit.to_tech]) that turns tables into simulator
    coefficients. *)

val run :
  Rule.config -> base:Halotis_tech.Tech.t -> Halotis_liberty.Liberty.t -> Finding.t list
