(** @deprecated Use {!Halotis_util.Json}.  The implementation moved to
    [lib/util] so lint and fault reports share one emitter/parser; this
    alias remains for one release and will be removed. *)

include module type of struct
  include Halotis_util.Json
end
