(** The lint rule registry: every rule's id, default severity, domain
    and one-line documentation live here, so the CLI's [--list-rules],
    [doc/lint.md] and the per-domain checkers cannot drift apart. *)

type t = {
  id : string;  (** stable id: two-letter domain prefix + number *)
  domain : Finding.domain;
  severity : Finding.severity;  (** default; overridable per run *)
  doc : string;  (** one line, used verbatim in docs and [--list-rules] *)
  example : string;  (** a terse trigger, used in the doc/lint.md table *)
}

(** Netlist structure. *)

val nl001 : t  (** undriven signal *)

val nl002 : t  (** dangling internal signal *)

val nl003 : t  (** combinational feedback (one finding per SCC) *)

val nl004 : t  (** unused primary input *)

val nl005 : t  (** fanout above the configured threshold *)

val nl006 : t  (** gate unreachable from any primary input *)

val nl007 : t  (** gate output fixed by tie cells (foldable) *)

val nl008 : t  (** feedback loop with inverting parity: oscillation risk *)

val nl020 : t  (** survival analysis proves every SET site filtered: degenerate *)

(** Technology / delay-model parameters. *)

val tk001 : t  (** non-positive output slope [tau_out] *)

val tk002 : t  (** non-positive degradation [tau] (eq. 2) *)

val tk003 : t  (** negative degradation [T0] (eq. 3) *)

val tk004 : t  (** input threshold VT outside (0, VDD) *)

val tk005 : t  (** non-positive conventional delay [tp0] *)

val tk006 : t  (** rise/fall delay asymmetry beyond the sanity bound *)

val tk007 : t  (** DDM degradation window admits chain pulse amplification *)

(** Liberty libraries. *)

val lb001 : t  (** cell missing timing arcs or tables *)

val lb002 : t  (** delay/transition table non-monotone in load *)

val lb003 : t  (** linear-model fit residual above the bound *)

(** Stimuli. *)

val st001 : t  (** drive bound to a non-primary-input signal *)

val st002 : t  (** change instants not strictly increasing *)

val st003 : t  (** pulse narrower than the input slope (runt) *)

val all : t list
(** Registry order: NL*, TK*, LB*, ST*. *)

val find : string -> t option
(** Case-insensitive lookup by id. *)

(** {2 Per-run configuration} *)

type config = {
  overrides : (string * [ `Off | `On | `Severity of Finding.severity ]) list;
      (** applied left to right; the last entry matching a rule wins *)
  fanout_threshold : int;  (** NL005: max load pins per signal *)
  asymmetry_bound : float;  (** TK006: max rise/fall delay ratio *)
  rmse_bound : float;  (** LB003: max fit RMSE, ps *)
  loads : float list;  (** representative output loads, fF *)
  slopes : float list;  (** representative input slopes, ps *)
}

val default_config : config
(** Everything enabled at registry severities; fanout threshold 32,
    asymmetry bound 3x, RMSE bound 25 ps, loads [{5, 20, 80}] fF,
    slopes [{50, 200}] ps. *)

val enabled : config -> t -> bool
val severity : config -> t -> Finding.severity

val emit :
  config -> t -> Finding.location -> ('a, Format.formatter, unit, Finding.t option) format4 -> 'a
(** [emit config rule loc fmt ...] is [Some finding] carrying the
    configured severity, or [None] when the rule is disabled. *)
