(** Stimulus rules (ST rules): binding of entries to primary inputs, raw
    change-instant ordering, and runt pulses narrower than the input
    slope — exactly the inputs the paper's Fig. 1 degradation machinery
    would immediately attenuate. *)

val run :
  Rule.config ->
  Halotis_stim.Stimfile.t ->
  Halotis_netlist.Netlist.t ->
  Finding.t list
