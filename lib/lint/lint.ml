module DL = Halotis_tech.Default_lib
module Json = Halotis_util.Json

let run ?(config = Rule.default_config) ?(tech = DL.tech) ?liberty ?stim c =
  let netlist_findings = Netlist_rules.run config c in
  let tech_findings = Tech_rules.run config tech c in
  let survival_findings = Survival_rules.run config tech c in
  let liberty_findings =
    match liberty with
    | Some lib -> Liberty_rules.run config ~base:tech lib
    | None -> []
  in
  let stim_findings =
    match stim with Some s -> Stim_rules.run config s c | None -> []
  in
  List.sort Finding.compare
    (netlist_findings @ tech_findings @ survival_findings @ liberty_findings
   @ stim_findings)

let preflight ?stim ~tech c =
  run ~config:Rule.default_config ~tech ?stim c
  |> List.filter (fun (f : Finding.t) -> f.Finding.severity <> Finding.Info)

let count severity findings =
  List.length
    (List.filter (fun (f : Finding.t) -> f.Finding.severity = severity) findings)

let errors findings = count Finding.Error findings
let warnings findings = count Finding.Warning findings
let infos findings = count Finding.Info findings

let exit_code ~strict findings =
  if errors findings > 0 then 2
  else if strict && warnings findings > 0 then 1
  else 0

let summary findings =
  let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  match
    List.filter
      (fun (n, _) -> n > 0)
      [
        (errors findings, "error");
        (warnings findings, "warning");
        (infos findings, "info");
      ]
  with
  | [] -> "clean"
  | parts -> String.concat ", " (List.map (fun (n, what) -> plural n what) parts)

let pp_text fmt findings =
  List.iter (fun f -> Format.fprintf fmt "%a@." Finding.pp f) findings

let report_to_json findings =
  Json.Obj
    [
      ("tool", Json.Str "halotis-lint");
      ("version", Json.Num 1.);
      ("findings", Json.Arr (List.map Finding.to_json findings));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Num (float_of_int (errors findings)));
            ("warnings", Json.Num (float_of_int (warnings findings)));
            ("infos", Json.Num (float_of_int (infos findings)));
          ] );
    ]

let findings_of_json j =
  match Json.member "findings" j with
  | None -> Error "report has no findings array"
  | Some arr ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match Finding.of_json item with
            | Ok f -> collect (f :: acc) rest
            | Error _ as e -> e)
      in
      collect [] (Json.to_list arr)

let rules_markdown () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "| Id | Domain | Default severity | Rationale | Example |\n";
  Buffer.add_string buf "|----|--------|------------------|-----------|---------|\n";
  List.iter
    (fun (r : Rule.t) ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s | %s |\n" r.Rule.id
           (Finding.domain_to_string r.Rule.domain)
           (Finding.severity_to_string r.Rule.severity)
           r.Rule.doc r.Rule.example))
    Rule.all;
  Buffer.contents buf

let rules_json () =
  Json.Arr
    (List.map
       (fun (r : Rule.t) ->
         Json.Obj
           [
             ("id", Json.Str r.Rule.id);
             ("domain", Json.Str (Finding.domain_to_string r.Rule.domain));
             ("severity", Json.Str (Finding.severity_to_string r.Rule.severity));
             ("doc", Json.Str r.Rule.doc);
           ])
       Rule.all)
