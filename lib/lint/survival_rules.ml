module Tech = Halotis_tech.Tech
module Gate_kind = Halotis_logic.Gate_kind
module N = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Survival = Halotis_sta.Survival

let edge_name rising = if rising then "rising" else "falling"

(* TK007: the eq. 3 dead window T0 = (1/2 - ddm_c/VDD) * tau_in covers
   the stage's own nominal delay at some representative operating
   point.  Then an edge arriving up to tp0 after the previous output
   transition has its delay collapsed to (near) zero, while the
   trailing edge of a wide pulse — measured from the leading output
   edge, i.e. a pulse width later — escapes the window and keeps its
   full delay: a pulse can widen by up to tp0 per stage, so the DDM
   coefficients admit amplification along a chain of such gates.  The
   symmetric CDM crossing terms cancel over an inverting pair, so the
   window-vs-delay comparison is the whole criterion. *)
let check_kind config tech kind =
  let gt = Tech.gate_tech tech kind in
  let loc = Finding.Kind (Gate_kind.name kind) in
  let points =
    List.concat_map
      (fun cl -> List.map (fun tau_in -> (cl, tau_in)) config.Rule.slopes)
      config.Rule.loads
  in
  List.filter_map
    (fun rising ->
      let p = Tech.edge gt ~rising in
      let violation (cl, tau_in) =
        let t0 = Tech.degradation_t0 tech p ~tau_in in
        let tp0 = Tech.base_delay p ~pin_factor:1.0 ~cl ~tau_in in
        tp0 > 0. && t0 >= tp0
      in
      match List.find_opt violation points with
      | Some (cl, tau_in) ->
          Rule.emit config Rule.tk007 loc
            "%s T0 = %.2f ps >= tp0 = %.2f ps at CL = %g fF, tau_in = %g ps: \
             a pulse can widen by up to tp0 per stage"
            (edge_name rising)
            (Tech.degradation_t0 tech p ~tau_in)
            (Tech.base_delay p ~pin_factor:1.0 ~cl ~tau_in)
            cl tau_in
      | None -> None)
    [ true; false ]

let run config tech c =
  let kinds =
    let seen = Hashtbl.create 8 in
    Array.to_list (N.gates c)
    |> List.filter_map (fun (g : N.gate) ->
           if Hashtbl.mem seen g.N.kind then None
           else begin
             Hashtbl.add seen g.N.kind ();
             Some g.N.kind
           end)
  in
  let tk007_findings = List.concat_map (check_kind config tech) kinds in
  (* NL020 needs the full survival analysis, which requires an acyclic
     circuit; on a cyclic one NL003 already fires, so stay silent
     instead of tripping over Survival.analyze's diagnostic. *)
  let nl020_findings =
    match Check.topological_gates c with
    | None -> []
    | Some _ ->
        let an = Survival.analyze tech c in
        if Survival.all_sites_filtered an then
          Option.to_list
            (Rule.emit config Rule.nl020 Finding.Circuit
               "the %.0f ps / %.0f ps canonical SET survives to no primary \
                output from any of the %d candidate sites: every fault \
                campaign on this circuit is degenerate"
               (Survival.width an) (Survival.slope an)
               (List.length (Survival.candidates an)))
        else []
  in
  nl020_findings @ tk007_findings
