(** Delay-model parameter rules (TK rules): the IDDM machinery (paper
    eqs. 1-3) silently degenerates when tau, T0, tp0 or VT leave their
    physical ranges — these rules see the {e unclamped} values via
    [Tech.raw_*] and reject them before a simulation runs. *)

val run_kinds :
  Rule.config ->
  Halotis_tech.Tech.t ->
  Halotis_logic.Gate_kind.t list ->
  Finding.t list
(** Checks the given gate kinds' parameter sets at the configured
    representative loads and slopes. *)

val run :
  Rule.config -> Halotis_tech.Tech.t -> Halotis_netlist.Netlist.t -> Finding.t list
(** [run_kinds] over the kinds the netlist actually instantiates, plus
    the per-pin VT overrides recorded on its gates (TK004). *)
