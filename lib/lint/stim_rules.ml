module Stimfile = Halotis_stim.Stimfile
module Drive = Halotis_engine.Drive
module Transition = Halotis_wave.Transition
module N = Halotis_netlist.Netlist

let run config (stim : Stimfile.t) c =
  let findings = ref [] in
  let push = function Some f -> findings := f :: !findings | None -> () in
  let inputs = N.primary_inputs c in
  List.iter
    (fun (name, (drive : Drive.t)) ->
      let loc = Finding.Entry name in
      (* ST001 — entries must bind to primary inputs. *)
      (match N.find_signal c name with
      | None ->
          push
            (Rule.emit config Rule.st001 loc "no signal named %S in circuit %s" name
               (N.name c))
      | Some sid ->
          if not (List.mem sid inputs) then
            push
              (Rule.emit config Rule.st001 loc
                 "%S is %s, not a primary input; the engine cannot drive it" name
                 (if (N.signal c sid).N.is_primary_output then "a primary output"
                  else "an internal signal")));
      (* ST003 — consecutive transitions closer than the slope: the
         ramp never completes before being reversed (a runt pulse). *)
      let rec scan = function
        | (a : Transition.t) :: (b : Transition.t) :: rest ->
            let width = b.Transition.start -. a.Transition.start in
            if width < a.Transition.slope_time then
              push
                (Rule.emit config Rule.st003 loc
                   "%.0f ps pulse at t = %.0f ps is narrower than the %.0f ps slope; \
                    it will be degraded or filtered (paper fig. 1)"
                   width a.Transition.start a.Transition.slope_time);
            scan (b :: rest)
        | [ _ ] | [] -> ()
      in
      scan drive.Drive.transitions)
    stim.Stimfile.entries;
  (* ST002 — ordering faults are only visible in the raw text: binding
     sorts and deduplicates before the engine ever sees them. *)
  List.iter
    (fun (name, changes) ->
      let rec scan = function
        | (t1, _) :: ((t2, _) :: _ as rest) ->
            if t2 <= t1 then
              push
                (Rule.emit config Rule.st002 (Finding.Entry name)
                   "change at %g ps written after change at %g ps; instants must \
                    strictly increase"
                   t2 t1)
            else ();
            scan rest
        | [ _ ] | [] -> ()
      in
      scan changes)
    stim.Stimfile.raw_changes;
  List.rev !findings
