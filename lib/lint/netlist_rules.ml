module N = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Value = Halotis_logic.Value

let run config c =
  let findings = ref [] in
  let push = function Some f -> findings := f :: !findings | None -> () in
  (* NL001/NL002/NL004 — driver and load faults, per signal. *)
  Array.iter
    (fun (s : N.signal) ->
      let driven = s.N.driver <> None || s.N.is_primary_input || s.N.constant <> None in
      if not driven then
        push
          (Rule.emit config Rule.nl001
             (Finding.Signal s.N.signal_name)
             "no driver: every gate reading it sees X forever");
      if Array.length s.N.loads = 0 && not s.N.is_primary_output && s.N.constant = None
      then
        if s.N.is_primary_input then
          push
            (Rule.emit config Rule.nl004
               (Finding.Signal s.N.signal_name)
               "primary input drives nothing; stimulus applied to it is wasted")
        else
          push
            (Rule.emit config Rule.nl002
               (Finding.Signal s.N.signal_name)
               "drives nothing and is not a primary output");
      (* NL005 — fanout budget. *)
      let fanout = Array.length s.N.loads in
      if fanout > config.Rule.fanout_threshold then
        push
          (Rule.emit config Rule.nl005
             (Finding.Signal s.N.signal_name)
             "%d load pins exceed the fanout threshold of %d" fanout
             config.Rule.fanout_threshold))
    (N.signals c);
  (* NL003 — every feedback SCC, not just one witness cycle. *)
  List.iter
    (fun scc ->
      let names = List.map (N.gate_name c) scc in
      push
        (Rule.emit config Rule.nl003 (Finding.Gates names)
           "%d gate%s form a combinational feedback loop; event-driven simulation \
            cannot order them"
           (List.length scc)
           (if List.length scc = 1 then "" else "s")))
    (Check.sccs c);
  (* NL006 — gates no primary input can influence. *)
  let reachable = Check.pi_reachable_gates c in
  Array.iter
    (fun (g : N.gate) ->
      if not reachable.(g.N.gate_id) then
        push
          (Rule.emit config Rule.nl006 (Finding.Gate g.N.gate_name)
             "unreachable from every primary input; its output can never respond to \
              stimulus"))
    (N.gates c);
  (* NL007 — outputs already determined by tie cells. *)
  let const = Check.constant_signals c in
  Array.iter
    (fun (g : N.gate) ->
      match const.(g.N.output) with
      | Value.L0 | Value.L1 ->
          push
            (Rule.emit config Rule.nl007 (Finding.Gate g.N.gate_name)
               "output %s is the constant %c under tie-cell propagation; the gate is \
                foldable"
               (N.signal_name c g.N.output)
               (Value.to_char const.(g.N.output)))
      | Value.X | Value.Z -> ())
    (N.gates c);
  List.rev !findings
