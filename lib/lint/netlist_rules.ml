module N = Halotis_netlist.Netlist
module Check = Halotis_netlist.Check
module Value = Halotis_logic.Value

let run config c =
  let findings = ref [] in
  let push = function Some f -> findings := f :: !findings | None -> () in
  (* NL001/NL002/NL004 — driver and load faults, per signal. *)
  Array.iter
    (fun (s : N.signal) ->
      let driven = s.N.driver <> None || s.N.is_primary_input || s.N.constant <> None in
      if not driven then
        push
          (Rule.emit config Rule.nl001
             (Finding.Signal s.N.signal_name)
             "no driver: every gate reading it sees X forever");
      if Array.length s.N.loads = 0 && not s.N.is_primary_output && s.N.constant = None
      then
        if s.N.is_primary_input then
          push
            (Rule.emit config Rule.nl004
               (Finding.Signal s.N.signal_name)
               "primary input drives nothing; stimulus applied to it is wasted")
        else
          push
            (Rule.emit config Rule.nl002
               (Finding.Signal s.N.signal_name)
               "drives nothing and is not a primary output");
      (* NL005 — fanout budget. *)
      let fanout = Array.length s.N.loads in
      if fanout > config.Rule.fanout_threshold then
        push
          (Rule.emit config Rule.nl005
             (Finding.Signal s.N.signal_name)
             "%d load pins exceed the fanout threshold of %d" fanout
             config.Rule.fanout_threshold))
    (N.signals c);
  (* NL003 — every feedback SCC, not just one witness cycle. *)
  let sccs = Check.sccs c in
  List.iter
    (fun scc ->
      let names = List.map (N.gate_name c) scc in
      push
        (Rule.emit config Rule.nl003 (Finding.Gates names)
           "%d gate%s form a combinational feedback loop; event-driven simulation \
            cannot order them"
           (List.length scc)
           (if List.length scc = 1 then "" else "s")))
    sccs;
  (* NL008 — feedback loops likely to oscillate.  A cycle whose
     inversion count is odd (a ring oscillator) has no stable point; a
     cycle through XOR-like gates inverts or not depending on the other
     inputs.  Detected by 2-colouring each SCC over its internal edges,
     where crossing a gate flips the colour iff the gate inverts: a
     colouring conflict is an odd (inverting) cycle.  Even-parity SCCs
     (cross-coupled NAND latches) are bistable, not oscillatory, and
     stay NL003-only. *)
  let inversion_parity (k : Halotis_logic.Gate_kind.t) =
    let module GK = Halotis_logic.Gate_kind in
    match k with
    | GK.Inv | GK.Nand _ | GK.Nor _ | GK.Aoi21 | GK.Oai21 -> Some true
    | GK.Buf | GK.And _ | GK.Or _ -> Some false
    | GK.Xor _ | GK.Xnor _ | GK.Mux2 -> None
  in
  List.iter
    (fun scc ->
      let members = Hashtbl.create (List.length scc) in
      List.iter (fun g -> Hashtbl.replace members g ()) scc;
      let ambiguous =
        List.exists (fun g -> inversion_parity (N.gate c g).N.kind = None) scc
      in
      let odd_cycle =
        if ambiguous then false
        else begin
          (* colour.(relabelled gate) = cumulative inversion parity from
             the BFS root; an intra-SCC edge closing onto a different
             parity than recorded witnesses an odd cycle. *)
          let colour = Hashtbl.create (List.length scc) in
          let root = List.hd scc in
          Hashtbl.replace colour root false;
          let queue = Queue.create () in
          Queue.add root queue;
          let conflict = ref false in
          while not (Queue.is_empty queue) do
            let g = Queue.pop queue in
            let cg = Hashtbl.find colour g in
            Array.iter
              (fun (lg, _pin) ->
                if Hashtbl.mem members lg then begin
                  let flips =
                    match inversion_parity (N.gate c lg).N.kind with
                    | Some b -> b
                    | None -> false (* unreachable: ambiguous SCCs skip *)
                  in
                  let want = cg <> flips in
                  match Hashtbl.find_opt colour lg with
                  | None ->
                      Hashtbl.replace colour lg want;
                      Queue.add lg queue
                  | Some have -> if have <> want then conflict := true
                end)
              (N.signal c (N.gate c g).N.output).N.loads
          done;
          !conflict
        end
      in
      if odd_cycle || ambiguous then
        let names = List.map (N.gate_name c) scc in
        push
          (Rule.emit config Rule.nl008 (Finding.Gates names)
             "feedback loop %s and is likely to oscillate without settling; simulate \
              with --max-events or the oscillation watchdog"
             (if ambiguous then "passes through data-dependent (XOR/MUX) gates"
              else "has an odd number of inversions")))
    sccs;
  (* NL006 — gates no primary input can influence. *)
  let reachable = Check.pi_reachable_gates c in
  Array.iter
    (fun (g : N.gate) ->
      if not reachable.(g.N.gate_id) then
        push
          (Rule.emit config Rule.nl006 (Finding.Gate g.N.gate_name)
             "unreachable from every primary input; its output can never respond to \
              stimulus"))
    (N.gates c);
  (* NL007 — outputs already determined by tie cells. *)
  let const = Check.constant_signals c in
  Array.iter
    (fun (g : N.gate) ->
      match const.(g.N.output) with
      | Value.L0 | Value.L1 ->
          push
            (Rule.emit config Rule.nl007 (Finding.Gate g.N.gate_name)
               "output %s is the constant %c under tie-cell propagation; the gate is \
                foldable"
               (N.signal_name c g.N.output)
               (Value.to_char const.(g.N.output)))
      | Value.X | Value.Z -> ())
    (N.gates c);
  List.rev !findings
