(** The lint engine: runs the enabled rules of every applicable domain
    over a design, renders reports as text or JSON, and maps findings
    to process exit codes.

    Rule ids, severities and docs live in {!Rule}; domain checkers in
    [Netlist_rules], [Tech_rules], [Liberty_rules] and [Stim_rules].
    The simulators call {!preflight} before running. *)

val run :
  ?config:Rule.config ->
  ?tech:Halotis_tech.Tech.t ->
  ?liberty:Halotis_liberty.Liberty.t ->
  ?stim:Halotis_stim.Stimfile.t ->
  Halotis_netlist.Netlist.t ->
  Finding.t list
(** Netlist rules always run; tech rules run against [tech] (default:
    the built-in library) over the kinds the netlist uses; Liberty and
    stimulus rules run only when the corresponding input is given.
    Findings come back sorted worst-first ({!Finding.compare}). *)

val preflight :
  ?stim:Halotis_stim.Stimfile.t ->
  tech:Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  Finding.t list
(** The engine-relevant subset (netlist + tech + stimulus rules) at
    default configuration, filtered to warnings and errors — what
    [simulate] and [compare] print before running. *)

val errors : Finding.t list -> int
val warnings : Finding.t list -> int
val infos : Finding.t list -> int

val exit_code : strict:bool -> Finding.t list -> int
(** [2] when any error remains, [1] when warnings remain and [strict]
    is set, [0] otherwise. *)

val summary : Finding.t list -> string
(** e.g. ["2 errors, 1 warning, 3 infos"] or ["clean"]. *)

val pp_text : Format.formatter -> Finding.t list -> unit
(** One finding per line, worst first. *)

val report_to_json : Finding.t list -> Halotis_util.Json.t
(** [{ "tool": "halotis-lint", "version": 1, "findings": [...],
    "summary": {...} }] — stable enough for machine consumption. *)

val findings_of_json : Halotis_util.Json.t -> (Finding.t list, string) result
(** Inverse of {!report_to_json} (reads the ["findings"] array); the
    test suite round-trips reports through this. *)

val rules_markdown : unit -> string
(** The rules table of [doc/lint.md], generated from {!Rule.all} so the
    documentation cannot drift from the registry. *)

val rules_json : unit -> Halotis_util.Json.t
(** The registry as JSON (for [--list-rules --format json]). *)
