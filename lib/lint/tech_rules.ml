module Tech = Halotis_tech.Tech
module Gate_kind = Halotis_logic.Gate_kind
module N = Halotis_netlist.Netlist

let edge_name rising = if rising then "rising" else "falling"

(* One finding per (kind, edge, rule): the first violating operating
   point is the witness; listing every grid point would flood the
   report without adding information. *)
let check_kind config tech kind =
  let gt = Tech.gate_tech tech kind in
  let vdd = Tech.vdd tech in
  let loc = Finding.Kind (Gate_kind.name kind) in
  let findings = ref [] in
  let push = function Some f -> findings := f :: !findings | None -> () in
  let first_violation values predicate = List.find_opt predicate values in
  List.iter
    (fun rising ->
      let p = Tech.edge gt ~rising in
      (match first_violation config.Rule.loads (fun cl -> Tech.raw_output_slope p ~cl <= 0.)
       with
      | Some cl ->
          push
            (Rule.emit config Rule.tk001 loc
               "%s tau_out = %.2f ps at CL = %g fF; output ramps must take positive time"
               (edge_name rising)
               (Tech.raw_output_slope p ~cl)
               cl)
      | None -> ());
      (match
         first_violation config.Rule.loads (fun cl ->
             Tech.raw_degradation_tau tech p ~cl <= 0.)
       with
      | Some cl ->
          push
            (Rule.emit config Rule.tk002 loc
               "%s degradation tau = %.2f ps at CL = %g fF; eq. 1 needs tau > 0"
               (edge_name rising)
               (Tech.raw_degradation_tau tech p ~cl)
               cl)
      | None -> ());
      (match
         first_violation config.Rule.slopes (fun tau_in ->
             Tech.raw_degradation_t0 tech p ~tau_in < 0.)
       with
      | Some tau_in ->
          push
            (Rule.emit config Rule.tk003 loc
               "%s T0 = %.2f ps at tau_in = %g ps (ddm_c = %.2f V > VDD/2 = %.2f V)"
               (edge_name rising)
               (Tech.raw_degradation_t0 tech p ~tau_in)
               tau_in p.Tech.ddm_c (vdd /. 2.))
      | None -> ());
      let pins = List.init (Gate_kind.arity kind) Fun.id in
      let operating_points =
        List.concat_map
          (fun cl ->
            List.concat_map
              (fun tau_in -> List.map (fun pin -> (cl, tau_in, pin)) pins)
              config.Rule.slopes)
          config.Rule.loads
      in
      match
        first_violation operating_points (fun (cl, tau_in, pin) ->
            Tech.base_delay p ~pin_factor:(gt.Tech.pin_factor pin) ~cl ~tau_in <= 0.)
      with
      | Some (cl, tau_in, pin) ->
          push
            (Rule.emit config Rule.tk005 loc
               "%s tp0 = %.2f ps at CL = %g fF, tau_in = %g ps, pin %d"
               (edge_name rising)
               (Tech.base_delay p ~pin_factor:(gt.Tech.pin_factor pin) ~cl ~tau_in)
               cl tau_in pin)
      | None -> ())
    [ true; false ];
  (* TK004 on the kind's default threshold. *)
  if gt.Tech.default_vt <= 0. || gt.Tech.default_vt >= vdd then
    push
      (Rule.emit config Rule.tk004 loc "default VT = %.2f V outside (0, %.2f V)"
         gt.Tech.default_vt vdd);
  (* TK006 at a mid-grid operating point, only when both delays are
     positive (TK005 already covers the degenerate sign cases). *)
  let mid values =
    match values with
    | [] -> 1.
    | _ -> List.nth values (List.length values / 2)
  in
  let cl = mid config.Rule.loads and tau_in = mid config.Rule.slopes in
  let delay ~rising =
    Tech.base_delay (Tech.edge gt ~rising) ~pin_factor:1.0 ~cl ~tau_in
  in
  let rise = delay ~rising:true and fall = delay ~rising:false in
  if rise > 0. && fall > 0. then begin
    let ratio = Float.max (rise /. fall) (fall /. rise) in
    if ratio > config.Rule.asymmetry_bound then
      push
        (Rule.emit config Rule.tk006 loc
           "rise %.2f ps vs fall %.2f ps at CL = %g fF (ratio %.1fx > %.1fx)" rise fall
           cl ratio config.Rule.asymmetry_bound)
  end;
  List.rev !findings

let run_kinds config tech kinds =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun kind ->
      if Hashtbl.mem seen kind then []
      else begin
        Hashtbl.add seen kind ();
        check_kind config tech kind
      end)
    kinds

let run config tech c =
  let kinds =
    Array.to_list (Array.map (fun (g : N.gate) -> g.N.kind) (N.gates c))
  in
  let kind_findings = run_kinds config tech kinds in
  (* TK004 on per-pin overrides recorded in the netlist. *)
  let vdd = Tech.vdd tech in
  let override_findings =
    Array.to_list (N.gates c)
    |> List.concat_map (fun (g : N.gate) ->
           Array.to_list g.N.input_vt
           |> List.mapi (fun pin vt -> (pin, vt))
           |> List.filter_map (fun (pin, vt) ->
                  match vt with
                  | Some v when v <= 0. || v >= vdd ->
                      Rule.emit config Rule.tk004
                        (Finding.Pin (g.N.gate_name, pin))
                        "pin VT override = %.2f V outside (0, %.2f V); the input can \
                         never cross its threshold"
                        v vdd
                  | Some _ | None -> None))
  in
  kind_findings @ override_findings
