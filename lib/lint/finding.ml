module Json = Halotis_util.Json

type severity = Error | Warning | Info

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type domain = Netlist | Tech | Liberty | Stim

let domain_to_string = function
  | Netlist -> "netlist"
  | Tech -> "tech"
  | Liberty -> "liberty"
  | Stim -> "stim"

let domain_of_string = function
  | "netlist" -> Some Netlist
  | "tech" -> Some Tech
  | "liberty" -> Some Liberty
  | "stim" -> Some Stim
  | _ -> None

type location =
  | Circuit
  | Signal of string
  | Gate of string
  | Gates of string list
  | Pin of string * int
  | Kind of string
  | Cell of string
  | Entry of string

let location_strings = function
  | Circuit -> ("circuit", "")
  | Signal s -> ("signal", s)
  | Gate g -> ("gate", g)
  | Gates gs -> ("gates", String.concat " -> " gs)
  | Pin (g, pin) -> ("pin", Printf.sprintf "%s.%d" g pin)
  | Kind k -> ("kind", k)
  | Cell ce -> ("cell", ce)
  | Entry e -> ("entry", e)

let location_of_strings kind name =
  match kind with
  | "circuit" -> Some Circuit
  | "signal" -> Some (Signal name)
  | "gate" -> Some (Gate name)
  | "gates" ->
      Some
        (Gates
           (String.split_on_char '-' name
           |> List.concat_map (fun part ->
                  match String.trim part with "" | ">" -> [] | s ->
                    [ (if String.length s > 0 && s.[0] = '>' then
                         String.trim (String.sub s 1 (String.length s - 1))
                       else s) ])))
  | "pin" -> (
      match String.rindex_opt name '.' with
      | Some i -> (
          let gate = String.sub name 0 i in
          let pin = String.sub name (i + 1) (String.length name - i - 1) in
          match int_of_string_opt pin with Some p -> Some (Pin (gate, p)) | None -> None)
      | None -> None)
  | "kind" -> Some (Kind name)
  | "cell" -> Some (Cell name)
  | "entry" -> Some (Entry name)
  | _ -> None

type t = {
  rule : string;
  severity : severity;
  domain : domain;
  location : location;
  message : string;
}

let pp fmt f =
  let kind, name = location_strings f.location in
  if name = "" then
    Format.fprintf fmt "%s %s: %s" (severity_to_string f.severity) f.rule f.message
  else
    Format.fprintf fmt "%s %s [%s %s]: %s" (severity_to_string f.severity) f.rule kind
      name f.message

let compare a b =
  match Int.compare (severity_rank b.severity) (severity_rank a.severity) with
  | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.message b.message
      | c -> c)
  | c -> c

let to_json f =
  let kind, name = location_strings f.location in
  Json.Obj
    [
      ("rule", Json.Str f.rule);
      ("severity", Json.Str (severity_to_string f.severity));
      ("domain", Json.Str (domain_to_string f.domain));
      ("location", Json.Obj [ ("kind", Json.Str kind); ("name", Json.Str name) ]);
      ("message", Json.Str f.message);
    ]

let of_json j =
  let str field = Option.bind (Json.member field j) Json.to_str in
  let loc =
    match Json.member "location" j with
    | Some l -> (
        match
          ( Option.bind (Json.member "kind" l) Json.to_str,
            Option.bind (Json.member "name" l) Json.to_str )
        with
        | Some kind, Some name -> location_of_strings kind name
        | _ -> None)
    | None -> None
  in
  match
    ( str "rule",
      Option.bind (str "severity") severity_of_string,
      Option.bind (str "domain") domain_of_string,
      loc,
      str "message" )
  with
  | Some rule, Some severity, Some domain, Some location, Some message ->
      Ok { rule; severity; domain; location; message }
  | _ -> Error "finding object missing or malformed fields"
