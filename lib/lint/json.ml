(* Deprecated alias: the JSON implementation moved to
   [Halotis_util.Json] so lint and fault reports share one emitter and
   parser.  This module re-exports it for one release. *)

include Halotis_util.Json
