(** Lint rules backed by the static SET survival analysis
    ({!Halotis_sta.Survival}) and the degradation-map coefficients:

    - NL020 — every candidate fault site's canonical pulse is filtered
      before reaching a primary output, so the circuit's fault-site
      list is degenerate;
    - TK007 — the DDM dead window T0 (eq. 3) covers a stage's own
      nominal delay at a representative operating point, admitting
      pulse amplification along a chain of such gates.

    On a cyclic circuit NL020 is skipped silently (NL003 already
    reports the cycle); TK007 only needs the technology and still
    runs. *)

val run :
  Rule.config ->
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  Finding.t list
