module Tech = Halotis_tech.Tech
module Param_overlay = Halotis_tech.Param_overlay
module Netlist = Halotis_netlist.Netlist

type kind = Cdm | Ddm

let kind_to_string = function Cdm -> "CDM" | Ddm -> "DDM"

type request = {
  rising_out : bool;
  pin : int;
  tau_in : float;
  t_event : float;
  last_output_start : float option;
}

type response = { tp : float; tau_out : float; tp_nominal : float; degraded : bool }

let compute tech ~gate_tech ~cl kind req =
  let p = Tech.edge gate_tech ~rising:req.rising_out in
  let pin_factor = gate_tech.Tech.pin_factor req.pin in
  let tp0 = Tech.base_delay p ~pin_factor ~cl ~tau_in:req.tau_in in
  let tau_out = Tech.output_slope p ~cl in
  match kind with
  | Cdm -> { tp = tp0; tau_out; tp_nominal = tp0; degraded = false }
  | Ddm -> (
      match req.last_output_start with
      | None -> { tp = tp0; tau_out; tp_nominal = tp0; degraded = false }
      | Some t_last ->
          let time_since_last = req.t_event +. tp0 -. t_last in
          let tau = Tech.degradation_tau tech p ~cl in
          let t0 = Tech.degradation_t0 tech p ~tau_in:req.tau_in in
          let tp =
            Halotis_tech.Calibrate.predicted_delay ~tp0 ~tau ~t0 ~time_since_last
          in
          { tp; tau_out; tp_nominal = tp0; degraded = tp < tp0 -. 1e-9 })

let for_gate tech c ~loads gid kind req =
  let g = Netlist.gate c gid in
  let gate_tech = Tech.gate_tech tech g.Netlist.kind in
  let cl = loads.(g.Netlist.output) in
  compute tech ~gate_tech ~cl kind req

(* Per-run coefficient cache.  [Tech.gate_tech] resolves the cell
   record through the library's lookup function on every call — the
   default library even rebuilds the record — and the load term, output
   slope, degradation tau and the T0 coefficient of eqs. 2-3 are all
   invariant across a run.  The cache folds every per-(gate, edge)
   constant into flat unboxed float arrays once at setup, leaving only
   the [tau_in]- and [T]-dependent arithmetic per event.

   Layout: edge-indexed arrays use slot [2 * gid] for a rising output
   edge and [2 * gid + 1] for a falling one; per-pin factors are
   flattened with a per-gate offset table.  All partial expressions are
   evaluated exactly as {!compute} associates them, so cached responses
   are bit-identical to the uncached reference. *)
module Cache = struct
  (* Coefficients are interleaved, five per (gate, edge), so one delay
     evaluation reads a single run of adjacent floats:
       base + 0 : d0 + d_load * CL
       base + 1 : d_slope
       base + 2 : clamped output slope
       base + 3 : clamped eq. 2 tau
       base + 4 : 1/2 - C/VDD (eq. 3 before the tau_in product) *)
  type nonrec t = {
    coef : float array;  (* (2 * gate + edge) * 5, edge 0 = rising *)
    pf_off : int array;  (* gate -> offset into [pf] *)
    pf : float array;  (* flattened per-pin factors *)
    scratch : float array;  (* [0] = tp, [1] = tau_out of the last [eval] *)
  }

  let create ?(overlay = Param_overlay.empty) tech c ~loads =
    let ngates = Netlist.gate_count c in
    let coef = Array.make (10 * ngates) 0. in
    let pf_off = Array.make ngates 0 in
    let npins = ref 0 in
    for gid = 0 to ngates - 1 do
      pf_off.(gid) <- !npins;
      npins := !npins + Array.length (Netlist.gate c gid).Netlist.fanin
    done;
    let pf = Array.make (max 1 !npins) 1. in
    (* Empty overlay: never consult it, so the coefficient bytes are
       those of the historical (overlay-free) cache by construction. *)
    let scaled = not (Param_overlay.is_empty overlay) in
    for gid = 0 to ngates - 1 do
      let g = Netlist.gate c gid in
      let gt = Tech.gate_tech tech g.Netlist.kind in
      let cl = loads.(g.Netlist.output) in
      List.iter
        (fun rising ->
          let p = Tech.edge gt ~rising in
          let p =
            if scaled then
              Param_overlay.apply_edge
                (Param_overlay.edge_scale overlay ~gate:gid ~rising)
                p
            else p
          in
          let base = 5 * ((2 * gid) + if rising then 0 else 1) in
          coef.(base) <- p.Tech.d0 +. (p.Tech.d_load *. cl);
          coef.(base + 1) <- p.Tech.d_slope;
          coef.(base + 2) <- Tech.output_slope p ~cl;
          coef.(base + 3) <- Tech.degradation_tau tech p ~cl;
          coef.(base + 4) <- Tech.degradation_t0_coef tech p)
        [ true; false ];
      for pin = 0 to Array.length g.Netlist.fanin - 1 do
        pf.(pf_off.(gid) + pin) <-
          (if scaled then
             gt.Tech.pin_factor pin
             *. Param_overlay.pin_scale overlay ~gate:gid ~pin
           else gt.Tech.pin_factor pin)
      done
    done;
    { coef; pf_off; pf; scratch = Array.make 2 0. }

  let for_gate cache gid kind req =
    let base = 5 * ((2 * gid) + if req.rising_out then 0 else 1) in
    let tp0 =
      cache.pf.(cache.pf_off.(gid) + req.pin)
      *. (cache.coef.(base) +. (cache.coef.(base + 1) *. req.tau_in))
    in
    let tau_out = cache.coef.(base + 2) in
    match kind with
    | Cdm -> { tp = tp0; tau_out; tp_nominal = tp0; degraded = false }
    | Ddm -> (
        match req.last_output_start with
        | None -> { tp = tp0; tau_out; tp_nominal = tp0; degraded = false }
        | Some t_last ->
            let time_since_last = req.t_event +. tp0 -. t_last in
            let t0 = Float.max 0.0 (cache.coef.(base + 4) *. req.tau_in) in
            let tp =
              Halotis_tech.Calibrate.predicted_delay ~tp0 ~tau:cache.coef.(base + 3) ~t0
                ~time_since_last
            in
            { tp; tau_out; tp_nominal = tp0; degraded = tp < tp0 -. 1e-9 })

  (* Allocation-free [for_gate] for the event hot paths: scalar
     arguments in, results deposited in [scratch] (read them with
     {!tp} / {!tau_out} before the next [eval]).  [last_output_start]
     is [Float.nan] when the output has no previous transition —
     legitimate start instants are always finite, so the encoding is
     exact.  Float expressions are associated exactly as [for_gate]'s,
     so the two are bit-identical. *)
  let eval cache gid kind ~rising_out ~pin ~tau_in ~t_event ~last_output_start =
    let base = 5 * ((2 * gid) + if rising_out then 0 else 1) in
    let tp0 =
      cache.pf.(cache.pf_off.(gid) + pin)
      *. (cache.coef.(base) +. (cache.coef.(base + 1) *. tau_in))
    in
    cache.scratch.(1) <- cache.coef.(base + 2);
    match kind with
    | Cdm -> cache.scratch.(0) <- tp0
    | Ddm ->
        if Float.is_nan last_output_start then cache.scratch.(0) <- tp0
        else begin
          let time_since_last = t_event +. tp0 -. last_output_start in
          let t0 = Float.max 0.0 (cache.coef.(base + 4) *. tau_in) in
          cache.scratch.(0) <-
            Halotis_tech.Calibrate.predicted_delay ~tp0 ~tau:cache.coef.(base + 3) ~t0
              ~time_since_last
        end

  let tp cache = cache.scratch.(0)
  let tau_out cache = cache.scratch.(1)

  (* Read-only views of the cached per-(gate, edge) coefficients, for
     static analyses that must bound eqs. 1-3 with exactly the numbers
     the event kernel evaluates (same clamps, same associations). *)

  type edge_coefficients = {
    ec_d_base : float;  (* d0 + d_load * CL *)
    ec_d_slope : float;
    ec_tau_out : float;  (* clamped output slope *)
    ec_ddm_tau : float;  (* clamped eq. 2 tau *)
    ec_t0_coef : float;  (* 1/2 - C/VDD, eq. 3 before the tau_in product *)
  }

  let edge_coefficients cache gid ~rising =
    let base = 5 * ((2 * gid) + if rising then 0 else 1) in
    {
      ec_d_base = cache.coef.(base);
      ec_d_slope = cache.coef.(base + 1);
      ec_tau_out = cache.coef.(base + 2);
      ec_ddm_tau = cache.coef.(base + 3);
      ec_t0_coef = cache.coef.(base + 4);
    }

  let coefficient_bounds cache gid =
    let r = edge_coefficients cache gid ~rising:true in
    let f = edge_coefficients cache gid ~rising:false in
    let lo = {
      ec_d_base = Float.min r.ec_d_base f.ec_d_base;
      ec_d_slope = Float.min r.ec_d_slope f.ec_d_slope;
      ec_tau_out = Float.min r.ec_tau_out f.ec_tau_out;
      ec_ddm_tau = Float.min r.ec_ddm_tau f.ec_ddm_tau;
      ec_t0_coef = Float.min r.ec_t0_coef f.ec_t0_coef;
    }
    and hi = {
      ec_d_base = Float.max r.ec_d_base f.ec_d_base;
      ec_d_slope = Float.max r.ec_d_slope f.ec_d_slope;
      ec_tau_out = Float.max r.ec_tau_out f.ec_tau_out;
      ec_ddm_tau = Float.max r.ec_ddm_tau f.ec_ddm_tau;
      ec_t0_coef = Float.max r.ec_t0_coef f.ec_t0_coef;
    }
    in
    (lo, hi)

  let pin_factor cache gid ~pin = cache.pf.(cache.pf_off.(gid) + pin)
end
