(** The delay models of the paper.

    [Cdm] is the conventional delay model the paper compares against
    (HALOTIS-CDM): the load/slope macromodel of {!Halotis_tech.Tech}
    with no state dependence.

    [Ddm] applies the degradation law (eq. 1) on top of the same base
    delay: given the time [T] elapsed between the previous output
    transition and the (nominal) instant of the candidate one,

    [tp = tp0 * (1 - exp (-(T - T0) / tau))]

    with [tau]/[T0] from eqs. 2–3.  When [T <= T0] the computed delay
    collapses to 0: the output ramp then starts at the input event
    itself and annuls the previous ramp in the waveform store — which
    is exactly how runt pulses die in this reproduction. *)

type kind = Cdm | Ddm

val kind_to_string : kind -> string

type request = {
  rising_out : bool;  (** direction of the candidate output transition *)
  pin : int;  (** input pin whose event triggers the evaluation *)
  tau_in : float;  (** slope time of the causing input transition, ps *)
  t_event : float;  (** instant of the input event, ps *)
  last_output_start : float option;
      (** start of the most recent live output transition; [None] when
          the output never switched *)
}

type response = {
  tp : float;  (** propagation delay to the output ramp start, ps; >= 0 *)
  tau_out : float;  (** output ramp full-swing time, ps *)
  tp_nominal : float;  (** the undegraded [tp0], ps *)
  degraded : bool;  (** [tp < tp_nominal] beyond tolerance *)
}

val compute :
  Halotis_tech.Tech.t ->
  gate_tech:Halotis_tech.Tech.gate_tech ->
  cl:float ->
  kind ->
  request ->
  response
(** Evaluates the chosen model.  [cl] is the output load in fF. *)

val for_gate :
  Halotis_tech.Tech.t ->
  Halotis_netlist.Netlist.t ->
  loads:float array ->
  Halotis_netlist.Netlist.gate_id ->
  kind ->
  request ->
  response
(** Convenience wrapper that fetches [gate_tech] and [cl] from a
    netlist and a precomputed load table.  Resolves the cell record
    through the technology lookup on every call — this is the uncached
    reference; simulation hot paths should go through {!Cache}. *)

(** Per-run delay coefficient cache.

    [Tech.gate_tech] re-resolves the cell record (and, with the default
    library, re-allocates it) on every delay evaluation, and most of
    eqs. 1-3 is invariant across a run: the load term of [tp0], the
    output slope, the degradation [tau] and the [T0] coefficient depend
    only on the gate, the edge direction and the (fixed) output load.
    A [Cache.t] precomputes all of them once at [run] setup into flat
    unboxed arrays.

    Responses are bit-identical to {!for_gate}: every partial
    expression is associated exactly as the uncached path computes
    it. *)
module Cache : sig
  type t

  val create :
    ?overlay:Halotis_tech.Param_overlay.t ->
    Halotis_tech.Tech.t ->
    Halotis_netlist.Netlist.t ->
    loads:float array ->
    t
  (** [create tech c ~loads] precomputes the per-(gate, edge)
      coefficients and per-pin factors for every gate of [c].  O(gates
      + pins).  [overlay] (default empty) scales the raw
      {!Halotis_tech.Tech.edge_params} and pin factors per gate
      {e before} the derived coefficients (clamps included) are
      computed — the corner a Monte-Carlo sample puts this circuit
      instance at.  The empty overlay is skipped entirely, so the
      cache bytes are identical to the historical overlay-free
      path. *)

  val for_gate : t -> Halotis_netlist.Netlist.gate_id -> kind -> request -> response
  (** Drop-in cached equivalent of {!val-for_gate}: same request, same
      response, no table resolution. *)

  val eval :
    t ->
    Halotis_netlist.Netlist.gate_id ->
    kind ->
    rising_out:bool ->
    pin:int ->
    tau_in:float ->
    t_event:float ->
    last_output_start:float ->
    unit
  (** Allocation-free {!for_gate} for the event hot paths: scalar
      arguments instead of a {!request} ([last_output_start] is
      [Float.nan] when the output has no previous live transition), and
      the [tp] / [tau_out] results are deposited in the cache — read
      them with {!tp} and {!tau_out} before the next [eval].
      Bit-identical to {!for_gate}. *)

  val tp : t -> float
  (** Propagation delay computed by the last {!eval}, ps. *)

  val tau_out : t -> float
  (** Output ramp full-swing time computed by the last {!eval}, ps. *)

  type edge_coefficients = {
    ec_d_base : float;  (** [d0 + d_load * CL] — the load term of [tp0], ps *)
    ec_d_slope : float;  (** input-slope sensitivity of [tp0] *)
    ec_tau_out : float;  (** clamped output ramp full-swing time, ps *)
    ec_ddm_tau : float;  (** clamped eq. 2 tau, ps *)
    ec_t0_coef : float;  (** eq. 3's [1/2 - C/VDD] before the [tau_in] product *)
  }
  (** The five cached per-(gate, edge) coefficients, exactly as the
      event kernel reads them (clamps applied). *)

  val edge_coefficients : t -> Halotis_netlist.Netlist.gate_id -> rising:bool -> edge_coefficients
  (** Coefficients of one output-edge direction of a gate. *)

  val coefficient_bounds : t -> Halotis_netlist.Netlist.gate_id -> edge_coefficients * edge_coefficients
  (** [(lo, hi)] — component-wise min/max over the two edge directions
      of a gate; the conservative coefficient range static analyses
      ({!Halotis_sta.Survival}) use when the edge direction of a
      propagating pulse is not determined. *)

  val pin_factor : t -> Halotis_netlist.Netlist.gate_id -> pin:int -> float
  (** The cached per-pin delay factor. *)
end
