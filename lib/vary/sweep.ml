type step = { sw_hours : float; sw_failed : bool }
type t = { sw_steps : step list; sw_ttf : float option }

let run ?(h0 = 100.) ?(factor = 2.) ?(max_steps = 16) ?(refine = 4) ~probe () =
  if h0 <= 0. then invalid_arg "Sweep.run: h0 must be positive";
  if factor <= 1. then invalid_arg "Sweep.run: factor must exceed 1";
  if max_steps <= 0 then invalid_arg "Sweep.run: max_steps must be positive";
  if refine < 0 then invalid_arg "Sweep.run: refine must be non-negative";
  let steps = ref [] in
  let probe ~stress_hours =
    let failed = probe ~stress_hours in
    steps := { sw_hours = stress_hours; sw_failed = failed } :: !steps;
    failed
  in
  (* climb the geometric ladder until the first failure *)
  let rec climb k lo =
    if k >= max_steps then None
    else
      let h = h0 *. (factor ** float_of_int k) in
      if probe ~stress_hours:h then Some (lo, h) else climb (k + 1) h
  in
  let ttf =
    match climb 0 0. with
    | None -> None
    | Some (lo, hi) ->
        (* bisect the bracket: lo survives (or is 0), hi fails *)
        let rec bisect n lo hi =
          if n = 0 then hi
          else
            let mid = (lo +. hi) /. 2. in
            if probe ~stress_hours:mid then bisect (n - 1) lo mid
            else bisect (n - 1) mid hi
        in
        Some (bisect refine lo hi)
  in
  { sw_steps = List.rev !steps; sw_ttf = ttf }
