module Json = Halotis_util.Json
module Campaign = Halotis_fault.Campaign

type sample = {
  vs_index : int;
  vs_fingerprint : string;
  vs_propagated : int;
  vs_electrical : int;
  vs_logical : int;
  vs_timed_out : int;
  vs_masking_rate : float;
}

let sample_of_verdicts ~index ~fingerprint verdicts =
  let p, e, l, t =
    List.fold_left
      (fun (p, e, l, t) (v : Campaign.verdict) ->
        match v.Campaign.vd_outcome with
        | Campaign.Propagated -> (p + 1, e, l, t)
        | Campaign.Electrically_masked -> (p, e + 1, l, t)
        | Campaign.Logically_masked -> (p, e, l + 1, t)
        | Campaign.Timed_out -> (p, e, l, t + 1))
      (0, 0, 0, 0) verdicts
  in
  let n = List.length verdicts in
  {
    vs_index = index;
    vs_fingerprint = fingerprint;
    vs_propagated = p;
    vs_electrical = e;
    vs_logical = l;
    vs_timed_out = t;
    vs_masking_rate =
      (if n = 0 then 0. else float_of_int (n - p) /. float_of_int n);
  }

type percentiles = {
  pc_p5 : float;
  pc_p25 : float;
  pc_p50 : float;
  pc_p75 : float;
  pc_p95 : float;
  pc_mean : float;
}

let percentiles = function
  | [] -> None
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      (* nearest rank on the closed [0, n-1] index range *)
      let at p =
        let i = int_of_float (Float.round (p /. 100. *. float_of_int (n - 1))) in
        a.(max 0 (min (n - 1) i))
      in
      let mean = Array.fold_left ( +. ) 0. a /. float_of_int n in
      Some
        {
          pc_p5 = at 5.;
          pc_p25 = at 25.;
          pc_p50 = at 50.;
          pc_p75 = at 75.;
          pc_p95 = at 95.;
          pc_mean = mean;
        }

type t = {
  vr_circuit : string;
  vr_engine : string;
  vr_seed : int;
  vr_sigmas : Sampler.sigmas;
  vr_stress_hours : float;
  vr_sites : int;
  vr_nominal : sample;
  vr_samples : sample list;
  vr_flips : (int * int) list;
  vr_ttf : Sweep.t option;
}

let make ~circuit ~engine ~seed ~sigmas ~stress_hours ~nominal ~samples ?ttf () =
  let n_sites = List.length nominal in
  List.iter
    (fun (i, _, vs) ->
      if List.length vs <> n_sites then
        invalid_arg
          (Printf.sprintf
             "Vary_report.make: sample %d has %d verdicts, the nominal campaign %d" i
             (List.length vs) n_sites))
    samples;
  let nominal_outcomes =
    Array.of_list (List.map (fun (v : Campaign.verdict) -> v.Campaign.vd_outcome) nominal)
  in
  let flip_counts = Array.make n_sites 0 in
  List.iter
    (fun (_, _, vs) ->
      List.iteri
        (fun i (v : Campaign.verdict) ->
          if v.Campaign.vd_outcome <> nominal_outcomes.(i) then
            flip_counts.(i) <- flip_counts.(i) + 1)
        vs)
    samples;
  let flips =
    Array.to_list (Array.mapi (fun i k -> (i, k)) flip_counts)
    |> List.filter (fun (_, k) -> k > 0)
    |> List.sort (fun (i, a) (j, b) -> if a <> b then compare b a else compare i j)
  in
  {
    vr_circuit = circuit;
    vr_engine = engine;
    vr_seed = seed;
    vr_sigmas = sigmas;
    vr_stress_hours = stress_hours;
    vr_sites = n_sites;
    vr_nominal = sample_of_verdicts ~index:(-1) ~fingerprint:"" nominal;
    vr_samples =
      List.map (fun (i, fp, vs) -> sample_of_verdicts ~index:i ~fingerprint:fp vs) samples;
    vr_flips = flips;
    vr_ttf = ttf;
  }

let masking_percentiles t =
  percentiles (List.map (fun s -> s.vs_masking_rate) t.vr_samples)

(* --- JSON rendering --- *)

let sample_json s =
  Json.Obj
    ([ ("index", Json.Num (float_of_int s.vs_index)) ]
    @ (if s.vs_fingerprint = "" then []
       else [ ("overlay", Json.Str s.vs_fingerprint) ])
    @ [
        ("propagated", Json.Num (float_of_int s.vs_propagated));
        ("electrical", Json.Num (float_of_int s.vs_electrical));
        ("logical", Json.Num (float_of_int s.vs_logical));
        ("timed_out", Json.Num (float_of_int s.vs_timed_out));
        ("masking_rate", Json.Num s.vs_masking_rate);
      ])

let percentiles_json p =
  Json.Obj
    [
      ("p5", Json.Num p.pc_p5);
      ("p25", Json.Num p.pc_p25);
      ("p50", Json.Num p.pc_p50);
      ("p75", Json.Num p.pc_p75);
      ("p95", Json.Num p.pc_p95);
      ("mean", Json.Num p.pc_mean);
    ]

let sweep_json (s : Sweep.t) =
  Json.Obj
    [
      ( "steps",
        Json.Arr
          (List.map
             (fun (st : Sweep.step) ->
               Json.Obj
                 [
                   ("hours", Json.Num st.Sweep.sw_hours);
                   ("failed", Json.Bool st.Sweep.sw_failed);
                 ])
             s.Sweep.sw_steps) );
      ( "ttf_hours",
        match s.Sweep.sw_ttf with None -> Json.Null | Some h -> Json.Num h );
    ]

let to_json t =
  Json.Obj
    [
      ("tool", Json.Str "halotis-vary");
      ("version", Json.Num 1.);
      ("circuit", Json.Str t.vr_circuit);
      ("engine", Json.Str t.vr_engine);
      ("seed", Json.Num (float_of_int t.vr_seed));
      ( "sigmas",
        Json.Obj
          [
            ("device", Json.Num t.vr_sigmas.Sampler.sg_device);
            ("chip", Json.Num t.vr_sigmas.Sampler.sg_chip);
            ("lot", Json.Num t.vr_sigmas.Sampler.sg_lot);
          ] );
      ("stress_hours", Json.Num t.vr_stress_hours);
      ("sites", Json.Num (float_of_int t.vr_sites));
      ("samples", Json.Num (float_of_int (List.length t.vr_samples)));
      ("nominal", sample_json t.vr_nominal);
      ( "masking_rate",
        match masking_percentiles t with
        | None -> Json.Null
        | Some p -> percentiles_json p );
      ("per_sample", Json.Arr (List.map sample_json t.vr_samples));
      ( "corner_sensitive_sites",
        Json.Arr
          (List.map
             (fun (site, k) ->
               Json.Obj
                 [
                   ("site", Json.Num (float_of_int site));
                   ("flips", Json.Num (float_of_int k));
                 ])
             t.vr_flips) );
      ("ttf", match t.vr_ttf with None -> Json.Null | Some s -> sweep_json s);
    ]

let to_string t = Json.to_string (to_json t)

(* --- text rendering --- *)

let to_text t =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.bprintf b fmt in
  pf "halotis vary report\n";
  pf "circuit: %s  engine: %s  seed: %d\n" t.vr_circuit t.vr_engine t.vr_seed;
  pf "sigmas: device %.4f  chip %.4f  lot %.4f  stress: %.1f h\n"
    t.vr_sigmas.Sampler.sg_device t.vr_sigmas.Sampler.sg_chip
    t.vr_sigmas.Sampler.sg_lot t.vr_stress_hours;
  pf "%d sites x %d samples\n\n" t.vr_sites (List.length t.vr_samples);
  pf "  %-8s %10s %10s %9s %9s %12s\n" "sample" "propagated" "electrical" "logical"
    "timed-out" "masking-rate";
  let row label s =
    pf "  %-8s %10d %10d %9d %9d %12.4f\n" label s.vs_propagated s.vs_electrical
      s.vs_logical s.vs_timed_out s.vs_masking_rate
  in
  row "nominal" t.vr_nominal;
  List.iter (fun s -> row (string_of_int s.vs_index) s) t.vr_samples;
  (match masking_percentiles t with
  | None -> ()
  | Some p ->
      pf "\nmasking rate: p5 %.4f  p25 %.4f  p50 %.4f  p75 %.4f  p95 %.4f  mean %.4f\n"
        p.pc_p5 p.pc_p25 p.pc_p50 p.pc_p75 p.pc_p95 p.pc_mean);
  (match t.vr_flips with
  | [] -> pf "\nno corner-sensitive sites: every sample agrees with nominal\n"
  | flips ->
      pf "\ncorner-sensitive sites (outcome differs from nominal):\n";
      List.iter
        (fun (site, k) ->
          pf "  site %-5d flips in %d of %d samples\n" site k
            (List.length t.vr_samples))
        flips);
  (match t.vr_ttf with
  | None -> ()
  | Some s ->
      pf "\nttf sweep:\n";
      List.iter
        (fun (st : Sweep.step) ->
          pf "  %10.1f h  %s\n" st.Sweep.sw_hours
            (if st.Sweep.sw_failed then "propagates" else "masked"))
        s.Sweep.sw_steps;
      (match s.Sweep.sw_ttf with
      | Some h -> pf "  reference pulse first propagates at %.1f virtual stress hours\n" h
      | None -> pf "  reference pulse never propagates within the swept range\n"));
  Buffer.contents b
