module Prng = Halotis_util.Prng
module Netlist = Halotis_netlist.Netlist
module Overlay = Halotis_tech.Param_overlay

type sigmas = { sg_device : float; sg_chip : float; sg_lot : float }

let zero = { sg_device = 0.; sg_chip = 0.; sg_lot = 0. }
let is_zero s = s.sg_device = 0. && s.sg_chip = 0. && s.sg_lot = 0.

let sigmas ?(device = 0.) ?(chip = 0.) ?(lot = 0.) () =
  let check n v =
    if not (Float.is_finite v) || v < 0. then
      invalid_arg (Printf.sprintf "Sampler.sigmas: %s must be finite and >= 0" n)
  in
  check "device" device;
  check "chip" chip;
  check "lot" lot;
  { sg_device = device; sg_chip = chip; sg_lot = lot }

let chips_per_lot = 8
let min_scale = 0.05

(* Splitmix64-style avalanche combiner: folds one more integer into a
   63-bit stream key.  The per-(level, index, gate) keys it produces
   are what make the draws order- and process-independent. *)
let mix h k =
  let open Int64 in
  let z = add (logxor (of_int h) (mul (of_int k) 0x9E3779B97F4A7C15L)) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFF_FFFF_FFFF_FFFFL)

(* Stream tags per variation level. *)
let tag_lot = 1
and tag_chip = 2
and tag_device = 3

(* Parameter classes drawing independent spreads. *)
let cls_delay = 0
and cls_slope = 1
and cls_ddm = 2
and cls_vt = 3
and cls_pin = 4

let n_classes = 5

(* Box-Muller; [1 - u] keeps the log argument in (0, 1]. *)
let gaussian g =
  let u1 = 1.0 -. Prng.float g ~bound:1.0 in
  let u2 = Prng.float g ~bound:1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let sample ?(stress_hours = 0.) sg ~seed ~index c =
  if index < 0 then invalid_arg "Sampler.sample: negative sample index";
  if stress_hours < 0. then invalid_arg "Sampler.sample: negative stress hours";
  let gates = Netlist.gate_count c in
  if is_zero sg then
    if stress_hours = 0. then Overlay.empty
    else Aging.overlay ~stress_hours ~gates
  else begin
    (* Chip- and lot-level shifts: one gaussian per parameter class,
       shared by every gate of this sample (and, for the lot, by the
       whole chips_per_lot group of samples). *)
    let shared tag idx =
      let g = Prng.create ~seed:(mix (mix seed tag) idx) in
      Array.init n_classes (fun _ -> gaussian g)
    in
    let z_lot = shared tag_lot (index / chips_per_lot) in
    let z_chip = shared tag_chip index in
    let factor cls z_dev =
      let s =
        1.0
        +. (sg.sg_device *. z_dev)
        +. (sg.sg_chip *. z_chip.(cls))
        +. (sg.sg_lot *. z_lot.(cls))
      in
      if s < min_scale then min_scale else s
    in
    let entry_of gid =
      let g = Prng.create ~seed:(mix (mix (mix seed tag_device) index) gid) in
      let edge () =
        let fd = factor cls_delay (gaussian g) in
        let fs = factor cls_slope (gaussian g) in
        let fm = factor cls_ddm (gaussian g) in
        Aging.age_scale ~stress_hours
          {
            Overlay.sc_d0 = fd;
            sc_d_load = fd;
            sc_d_slope = fd;
            sc_s0 = fs;
            sc_s_load = fs;
            sc_ddm_a = fm;
            sc_ddm_b = fm;
            sc_ddm_c = 1.0;
          }
      in
      let en_rise = edge () in
      let en_fall = edge () in
      let en_vt = factor cls_vt (gaussian g) *. Aging.vt_scale ~stress_hours in
      let arity = Array.length (Netlist.gate c gid).Netlist.fanin in
      (* pin 0 keeps the technology convention pin_factor 0 = 1.0 *)
      let en_pin =
        List.init (max 0 (arity - 1)) (fun i ->
            (i + 1, factor cls_pin (gaussian g)))
      in
      { Overlay.en_rise; en_fall; en_vt; en_pin }
    in
    let rec go acc gid =
      if gid < 0 then acc else go (Overlay.set acc ~gate:gid (entry_of gid)) (gid - 1)
    in
    go Overlay.empty (gates - 1)
  end
