(** Hierarchical Monte-Carlo sampling of per-gate delay-model corners.

    The paper fits one coefficient set per library cell; real silicon
    spreads every coefficient across three nested levels: {e device}
    (gate-to-gate, independent), {e chip} (shared by every gate of one
    sampled circuit instance) and {e lot} (shared by a group of
    {!chips_per_lot} consecutive sample indices — consecutive chips
    come from the same wafer lot).  Each level contributes a gaussian
    relative spread, so a coefficient's multiplicative corner is

    [1 + sg_device * z_dev + sg_chip * z_chip + sg_lot * z_lot]

    (clamped to at least {!min_scale}), with independent draws per
    parameter class — conventional delay, output slope, DDM tau, VT,
    pin factor — and per output edge.

    {b Determinism.}  Every draw comes from a {!Halotis_util.Prng}
    stream keyed by hashing [(seed, level, sample-or-lot index, gate)],
    so the overlay of sample [k] is a pure function of
    [(seed, k, circuit)] — independent of evaluation order, of how many
    samples run, and of which process runs them ([vary --jobs N] workers
    reconstruct identical overlays).

    {b Bit-identity.}  Zero sigmas and zero stress return
    {!Halotis_tech.Param_overlay.empty} {e exactly} — the campaign run
    under such a sample is byte-identical to the nominal one. *)

type sigmas = {
  sg_device : float;  (** per-gate relative spread (1.0 = 100 %) *)
  sg_chip : float;  (** per-sample (chip) relative spread *)
  sg_lot : float;  (** per-lot relative spread *)
}

val zero : sigmas
val is_zero : sigmas -> bool
(** Exact: all three sigmas are [0.0]. *)

val sigmas : ?device:float -> ?chip:float -> ?lot:float -> unit -> sigmas
(** Defaults to {!zero}; sigmas must be finite and non-negative.
    @raise Invalid_argument otherwise. *)

val chips_per_lot : int
(** [8] — consecutive sample indices sharing one lot draw. *)

val min_scale : float
(** [0.05] — the clamp keeping a sampled corner physically meaningful
    (coefficients never collapse to zero or flip sign). *)

val sample :
  ?stress_hours:float ->
  sigmas ->
  seed:int ->
  index:int ->
  Halotis_netlist.Netlist.t ->
  Halotis_tech.Param_overlay.t
(** The corner of sample [index]: every gate of the circuit gets a
    sampled entry (edge scales, VT, pin factors for pins [>= 1]),
    composed with the {!Aging} law at [stress_hours] (default 0).
    Zero sigmas degrade gracefully: with stress they return the pure
    uniform aging overlay; without, the empty overlay.
    @raise Invalid_argument on a negative [index] or stress. *)
