(** Variation-campaign reports: distributions over sampled corners.

    One [halotis vary] run re-executes the same strike list once per
    sampled {!Sampler} corner; this module aggregates the per-sample
    {!Halotis_fault.Campaign.verdict} lists into the quantities the
    workload exists for:

    - the {e masking-probability distribution}: per-sample masking
      rates summarized by p5/p25/p50/p75/p95 percentiles and the mean;
    - the {e corner-sensitive sites}: for each site of the shared
      strike list, how many samples classified it differently from the
      nominal corner — the glitches that die (or come alive) on which
      corners;
    - the optional {e TTF sweep} trajectory ({!Sweep.t}).

    Both renderings are deterministic functions of the value (no
    timestamps, no hash-ordered tables), so a fixed seed reproduces
    the report byte-for-byte — the golden contract the test suite
    holds [vary] to. *)

type sample = {
  vs_index : int;  (** sample index (the {!Sampler.sample} [index]) *)
  vs_fingerprint : string;
      (** the sampled overlay's content fingerprint — the corner's
          identity across processes and re-runs *)
  vs_propagated : int;
  vs_electrical : int;
  vs_logical : int;
  vs_timed_out : int;
  vs_masking_rate : float;
}

val sample_of_verdicts :
  index:int -> fingerprint:string -> Halotis_fault.Campaign.verdict list -> sample
(** Tallies one sample's verdict list ({!Halotis_fault.Campaign}'s
    outcome taxonomy; masking rate counts everything that did not
    propagate, matching {!Halotis_fault.Campaign.masking_rate}). *)

type percentiles = {
  pc_p5 : float;
  pc_p25 : float;
  pc_p50 : float;
  pc_p75 : float;
  pc_p95 : float;
  pc_mean : float;
}

val percentiles : float list -> percentiles option
(** Nearest-rank percentiles of a non-empty list (sorted internally);
    [None] on an empty list. *)

type t = {
  vr_circuit : string;
  vr_engine : string;  (** campaign engine token *)
  vr_seed : int;  (** the shared campaign/sampling seed *)
  vr_sigmas : Sampler.sigmas;
  vr_stress_hours : float;
  vr_sites : int;  (** strikes per sample (the shared site list) *)
  vr_nominal : sample;  (** the empty-overlay campaign, index [-1] *)
  vr_samples : sample list;  (** in index order *)
  vr_flips : (int * int) list;
      (** (site index, number of samples whose outcome differs from
          nominal), descending by count then ascending by site; sites
          that never flip are omitted *)
  vr_ttf : Sweep.t option;
}

val make :
  circuit:string ->
  engine:string ->
  seed:int ->
  sigmas:Sampler.sigmas ->
  stress_hours:float ->
  nominal:Halotis_fault.Campaign.verdict list ->
  samples:(int * string * Halotis_fault.Campaign.verdict list) list ->
  ?ttf:Sweep.t ->
  unit ->
  t
(** [samples] pairs each sample's index and overlay fingerprint with
    its verdict list; every list must be site-aligned with [nominal]
    (same shared strike list, same order).
    @raise Invalid_argument when a sample's verdict count differs from
    the nominal one. *)

val masking_percentiles : t -> percentiles option
(** Percentiles of the per-sample masking rates ([None] with zero
    samples). *)

val to_json : t -> Halotis_util.Json.t
val to_string : t -> string
val to_text : t -> string
