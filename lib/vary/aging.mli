(** Virtual-stress-hours aging law over delay-model parameters.

    A stylized BTI/HCI degradation model: stress time slows the
    conventional delay macromodel and {e weakens} the degradation
    filter, following the usual sublinear power law

    [aging_scale(h) = 1 + 0.08 * (h / 1000)^0.4]

    Applied to an {!Halotis_tech.Param_overlay.scale}, the conventional
    coefficients ([d0], [d_load], [d_slope], [s0], [s_load]) are
    {e multiplied} by the factor (the gate gets slower) while the DDM
    tau coefficients ([ddm_a], [ddm_b]) are {e divided} by it (eq. 2's
    metastable window shrinks, so marginal pulses that the fresh gate
    filtered start propagating) — which is what makes a TTF sweep
    ({!Sweep}) converge: keep raising [h] and a reference pulse that
    was electrically masked eventually becomes an observable soft
    error.  [ddm_c] (eq. 3's threshold ratio) is left untouched.

    Three stylized shifts, all driven by the same power law
    [x = (h/1000)^0.4]:
    - the conventional macromodel ([d0], [d_load], [d_slope], [s0],
      [s_load]) slows mildly ([* (1 + 0.008 x)] — BTI drive loss);
    - eq. 2's tau coefficients ([ddm_a], [ddm_b]) decay strongly
      ([/ (1 + 0.08 x)] — the metastable window shrinks, so marginal
      pulses the fresh gate filtered start propagating);
    - the input switching threshold drifts toward ground
      ([* 1 / (1 + 0.08 x)] — NBTI weakening the pull-up network), so
      aged gates start seeing runt pulses the fresh circuit rejected.

    The slowdown is deliberately an order of magnitude weaker than the
    other two: a slower gate filters narrow pulses {e harder}, and a
    symmetric law would never let an aged circuit fail — the asymmetry
    is what makes a TTF sweep converge.

    [stress_hours = 0] is {e exactly} the identity — the scale factor
    is the float literal [1.0], so a zero-stress overlay stays empty
    and bit-identity with the nominal campaign holds. *)

val scale : stress_hours:float -> float
(** The strong power-law factor [1 + 0.08 x]; exactly [1.0] at zero
    stress.
    @raise Invalid_argument on negative stress. *)

val vt_scale : stress_hours:float -> float
(** The threshold-drift multiplier [1 / scale]; exactly [1.0] at zero
    stress. *)

val age_scale :
  stress_hours:float -> Halotis_tech.Param_overlay.scale -> Halotis_tech.Param_overlay.scale
(** Composes aging onto an already-sampled corner (field-wise multiply
    or divide as described above).  Identity at zero stress. *)

val entry : stress_hours:float -> Halotis_tech.Param_overlay.entry
(** The uniform aged corner of one gate (same factor on both edges,
    VT and pins untouched); {!Halotis_tech.Param_overlay.entry_identity}
    at zero stress. *)

val overlay : stress_hours:float -> gates:int -> Halotis_tech.Param_overlay.t
(** Every gate of a [gates]-gate circuit aged uniformly;
    {!Halotis_tech.Param_overlay.empty} at zero stress. *)
