(** Time-to-failure sweep over virtual stress hours.

    Ages the circuit along the {!Aging} law until a caller-supplied
    probe flips — the canonical probe re-runs one reference SET site
    (a pulse the {e fresh} circuit electrically masks) and answers
    "does it propagate now?".  The driver climbs a geometric ladder
    [h0, h0*factor, h0*factor^2, ...] until the probe first answers
    [true] (or the ladder runs out), then bisects the bracketing
    interval a fixed number of times.  Aging is monotone, so the
    refined upper bound is the reported TTF.

    Fully deterministic: probe instants are a pure function of the
    ladder parameters, and every probe outcome is recorded in
    {!t.sw_steps} (in probe order) so reports can show the whole
    trajectory. *)

type step = {
  sw_hours : float;  (** probed virtual stress, hours *)
  sw_failed : bool;  (** the reference pulse propagated at this age *)
}

type t = {
  sw_steps : step list;  (** every probe, in probe order *)
  sw_ttf : float option;
      (** smallest probed stress at which the pulse propagates (after
          bisection refinement); [None] when even the ladder's top
          never fails — the site is immune within the swept range *)
}

val run :
  ?h0:float ->
  ?factor:float ->
  ?max_steps:int ->
  ?refine:int ->
  probe:(stress_hours:float -> bool) ->
  unit ->
  t
(** Defaults: [h0 = 100.] hours, [factor = 2.], [max_steps = 16]
    ladder rungs, [refine = 4] bisection steps.  [probe] must be
    monotone in stress for the bracket refinement to be meaningful
    (the {!Aging} law is).
    @raise Invalid_argument on a non-positive [h0]/[factor <= 1]/
    non-positive [max_steps] or negative [refine]. *)
