module Overlay = Halotis_tech.Param_overlay

let power_law ~stress_hours =
  if stress_hours < 0. then invalid_arg "Aging.scale: negative stress hours";
  if stress_hours = 0. then 0. else (stress_hours /. 1000.) ** 0.4

let scale ~stress_hours = 1.0 +. (0.08 *. power_law ~stress_hours)

(* The slowdown of the conventional macromodel is deliberately an order
   of magnitude weaker than the decay of the degradation window: a
   slower gate filters narrow pulses HARDER (inertial masking grows
   with tp0), so a symmetric law would never let an aged circuit fail —
   the asymmetry is what makes a TTF sweep converge. *)
let slow_scale ~stress_hours = 1.0 +. (0.008 *. power_law ~stress_hours)

let age_scale ~stress_hours (s : Overlay.scale) =
  let a = scale ~stress_hours in
  if a = 1.0 then s
  else
    let d = slow_scale ~stress_hours in
    {
      Overlay.sc_d0 = s.Overlay.sc_d0 *. d;
      sc_d_load = s.Overlay.sc_d_load *. d;
      sc_d_slope = s.Overlay.sc_d_slope *. d;
      sc_s0 = s.Overlay.sc_s0 *. d;
      sc_s_load = s.Overlay.sc_s_load *. d;
      sc_ddm_a = s.Overlay.sc_ddm_a /. a;
      sc_ddm_b = s.Overlay.sc_ddm_b /. a;
      sc_ddm_c = s.Overlay.sc_ddm_c;
    }

let vt_scale ~stress_hours =
  let a = scale ~stress_hours in
  if a = 1.0 then 1.0 else 1.0 /. a

let entry ~stress_hours =
  let s = age_scale ~stress_hours Overlay.scale_identity in
  {
    Overlay.entry_identity with
    Overlay.en_rise = s;
    en_fall = s;
    en_vt = vt_scale ~stress_hours;
  }

let overlay ~stress_hours ~gates =
  let e = entry ~stress_hours in
  let rec go acc g =
    if g < 0 then acc else go (Overlay.set acc ~gate:g e) (g - 1)
  in
  go Overlay.empty (gates - 1)
